file(REMOVE_RECURSE
  "CMakeFiles/fig5_circuit_weak.dir/fig5_circuit_weak.cpp.o"
  "CMakeFiles/fig5_circuit_weak.dir/fig5_circuit_weak.cpp.o.d"
  "fig5_circuit_weak"
  "fig5_circuit_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_circuit_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
