# Empty dependencies file for fig5_circuit_weak.
# This may be replaced when dependencies are built.
