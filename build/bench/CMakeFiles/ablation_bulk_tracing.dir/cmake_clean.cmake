file(REMOVE_RECURSE
  "CMakeFiles/ablation_bulk_tracing.dir/ablation_bulk_tracing.cpp.o"
  "CMakeFiles/ablation_bulk_tracing.dir/ablation_bulk_tracing.cpp.o.d"
  "ablation_bulk_tracing"
  "ablation_bulk_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bulk_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
