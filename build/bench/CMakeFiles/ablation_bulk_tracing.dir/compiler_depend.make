# Empty compiler generated dependencies file for ablation_bulk_tracing.
# This may be replaced when dependencies are built.
