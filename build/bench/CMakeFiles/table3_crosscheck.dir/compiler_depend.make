# Empty compiler generated dependencies file for table3_crosscheck.
# This may be replaced when dependencies are built.
