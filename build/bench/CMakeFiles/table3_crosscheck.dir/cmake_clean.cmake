file(REMOVE_RECURSE
  "CMakeFiles/table3_crosscheck.dir/table3_crosscheck.cpp.o"
  "CMakeFiles/table3_crosscheck.dir/table3_crosscheck.cpp.o.d"
  "table3_crosscheck"
  "table3_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
