file(REMOVE_RECURSE
  "CMakeFiles/fig7_stencil_strong.dir/fig7_stencil_strong.cpp.o"
  "CMakeFiles/fig7_stencil_strong.dir/fig7_stencil_strong.cpp.o.d"
  "fig7_stencil_strong"
  "fig7_stencil_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stencil_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
