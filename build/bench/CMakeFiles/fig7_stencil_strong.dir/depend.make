# Empty dependencies file for fig7_stencil_strong.
# This may be replaced when dependencies are built.
