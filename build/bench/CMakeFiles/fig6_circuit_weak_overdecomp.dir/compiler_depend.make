# Empty compiler generated dependencies file for fig6_circuit_weak_overdecomp.
# This may be replaced when dependencies are built.
