file(REMOVE_RECURSE
  "CMakeFiles/fig6_circuit_weak_overdecomp.dir/fig6_circuit_weak_overdecomp.cpp.o"
  "CMakeFiles/fig6_circuit_weak_overdecomp.dir/fig6_circuit_weak_overdecomp.cpp.o.d"
  "fig6_circuit_weak_overdecomp"
  "fig6_circuit_weak_overdecomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_circuit_weak_overdecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
