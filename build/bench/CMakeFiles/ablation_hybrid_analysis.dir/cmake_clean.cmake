file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_analysis.dir/ablation_hybrid_analysis.cpp.o"
  "CMakeFiles/ablation_hybrid_analysis.dir/ablation_hybrid_analysis.cpp.o.d"
  "ablation_hybrid_analysis"
  "ablation_hybrid_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
