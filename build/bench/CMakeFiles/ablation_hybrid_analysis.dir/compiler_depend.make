# Empty compiler generated dependencies file for ablation_hybrid_analysis.
# This may be replaced when dependencies are built.
