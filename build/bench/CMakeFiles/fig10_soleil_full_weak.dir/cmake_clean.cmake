file(REMOVE_RECURSE
  "CMakeFiles/fig10_soleil_full_weak.dir/fig10_soleil_full_weak.cpp.o"
  "CMakeFiles/fig10_soleil_full_weak.dir/fig10_soleil_full_weak.cpp.o.d"
  "fig10_soleil_full_weak"
  "fig10_soleil_full_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_soleil_full_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
