# Empty dependencies file for fig10_soleil_full_weak.
# This may be replaced when dependencies are built.
