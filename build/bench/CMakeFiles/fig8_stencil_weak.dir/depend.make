# Empty dependencies file for fig8_stencil_weak.
# This may be replaced when dependencies are built.
