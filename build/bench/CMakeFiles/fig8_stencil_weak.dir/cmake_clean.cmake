file(REMOVE_RECURSE
  "CMakeFiles/fig8_stencil_weak.dir/fig8_stencil_weak.cpp.o"
  "CMakeFiles/fig8_stencil_weak.dir/fig8_stencil_weak.cpp.o.d"
  "fig8_stencil_weak"
  "fig8_stencil_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stencil_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
