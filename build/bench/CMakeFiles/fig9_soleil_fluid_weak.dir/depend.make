# Empty dependencies file for fig9_soleil_fluid_weak.
# This may be replaced when dependencies are built.
