file(REMOVE_RECURSE
  "CMakeFiles/fig9_soleil_fluid_weak.dir/fig9_soleil_fluid_weak.cpp.o"
  "CMakeFiles/fig9_soleil_fluid_weak.dir/fig9_soleil_fluid_weak.cpp.o.d"
  "fig9_soleil_fluid_weak"
  "fig9_soleil_fluid_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_soleil_fluid_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
