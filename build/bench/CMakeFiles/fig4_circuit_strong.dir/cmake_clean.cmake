file(REMOVE_RECURSE
  "CMakeFiles/fig4_circuit_strong.dir/fig4_circuit_strong.cpp.o"
  "CMakeFiles/fig4_circuit_strong.dir/fig4_circuit_strong.cpp.o.d"
  "fig4_circuit_strong"
  "fig4_circuit_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_circuit_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
