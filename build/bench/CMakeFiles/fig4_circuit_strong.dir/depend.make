# Empty dependencies file for fig4_circuit_strong.
# This may be replaced when dependencies are built.
