# Empty dependencies file for ablation_runtime_overhead.
# This may be replaced when dependencies are built.
