file(REMOVE_RECURSE
  "CMakeFiles/ablation_runtime_overhead.dir/ablation_runtime_overhead.cpp.o"
  "CMakeFiles/ablation_runtime_overhead.dir/ablation_runtime_overhead.cpp.o.d"
  "ablation_runtime_overhead"
  "ablation_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
