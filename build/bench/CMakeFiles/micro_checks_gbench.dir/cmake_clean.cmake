file(REMOVE_RECURSE
  "CMakeFiles/micro_checks_gbench.dir/micro_checks_gbench.cpp.o"
  "CMakeFiles/micro_checks_gbench.dir/micro_checks_gbench.cpp.o.d"
  "micro_checks_gbench"
  "micro_checks_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_checks_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
