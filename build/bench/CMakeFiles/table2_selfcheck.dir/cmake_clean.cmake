file(REMOVE_RECURSE
  "CMakeFiles/table2_selfcheck.dir/table2_selfcheck.cpp.o"
  "CMakeFiles/table2_selfcheck.dir/table2_selfcheck.cpp.o.d"
  "table2_selfcheck"
  "table2_selfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_selfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
