# Empty compiler generated dependencies file for table2_selfcheck.
# This may be replaced when dependencies are built.
