file(REMOVE_RECURSE
  "CMakeFiles/functor_test.dir/functor_test.cpp.o"
  "CMakeFiles/functor_test.dir/functor_test.cpp.o.d"
  "functor_test"
  "functor_test.pdb"
  "functor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
