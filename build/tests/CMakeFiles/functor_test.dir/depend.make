# Empty dependencies file for functor_test.
# This may be replaced when dependencies are built.
