# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/functor_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/shard_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/fill_test[1]_include.cmake")
