# Empty compiler generated dependencies file for dcr_demo.
# This may be replaced when dependencies are built.
