
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dcr_demo.cpp" "examples/CMakeFiles/dcr_demo.dir/dcr_demo.cpp.o" "gcc" "examples/CMakeFiles/dcr_demo.dir/dcr_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shard/CMakeFiles/idxl_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/idxl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idxl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/functor/CMakeFiles/idxl_functor.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/idxl_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
