file(REMOVE_RECURSE
  "CMakeFiles/dcr_demo.dir/dcr_demo.cpp.o"
  "CMakeFiles/dcr_demo.dir/dcr_demo.cpp.o.d"
  "dcr_demo"
  "dcr_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcr_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
