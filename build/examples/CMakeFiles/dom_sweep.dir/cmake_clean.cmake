file(REMOVE_RECURSE
  "CMakeFiles/dom_sweep.dir/dom_sweep.cpp.o"
  "CMakeFiles/dom_sweep.dir/dom_sweep.cpp.o.d"
  "dom_sweep"
  "dom_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dom_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
