# Empty compiler generated dependencies file for dom_sweep.
# This may be replaced when dependencies are built.
