file(REMOVE_RECURSE
  "CMakeFiles/circuit_demo.dir/circuit_demo.cpp.o"
  "CMakeFiles/circuit_demo.dir/circuit_demo.cpp.o.d"
  "circuit_demo"
  "circuit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
