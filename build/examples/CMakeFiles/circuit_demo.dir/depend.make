# Empty dependencies file for circuit_demo.
# This may be replaced when dependencies are built.
