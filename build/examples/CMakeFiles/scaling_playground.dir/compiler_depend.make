# Empty compiler generated dependencies file for scaling_playground.
# This may be replaced when dependencies are built.
