file(REMOVE_RECURSE
  "CMakeFiles/scaling_playground.dir/scaling_playground.cpp.o"
  "CMakeFiles/scaling_playground.dir/scaling_playground.cpp.o.d"
  "scaling_playground"
  "scaling_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
