# Empty compiler generated dependencies file for idxl_apps.
# This may be replaced when dependencies are built.
