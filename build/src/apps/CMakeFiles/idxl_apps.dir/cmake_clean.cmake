file(REMOVE_RECURSE
  "CMakeFiles/idxl_apps.dir/circuit.cpp.o"
  "CMakeFiles/idxl_apps.dir/circuit.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/fft.cpp.o"
  "CMakeFiles/idxl_apps.dir/fft.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/sim_specs.cpp.o"
  "CMakeFiles/idxl_apps.dir/sim_specs.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/soleil.cpp.o"
  "CMakeFiles/idxl_apps.dir/soleil.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/spmv.cpp.o"
  "CMakeFiles/idxl_apps.dir/spmv.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/stencil.cpp.o"
  "CMakeFiles/idxl_apps.dir/stencil.cpp.o.d"
  "CMakeFiles/idxl_apps.dir/tree.cpp.o"
  "CMakeFiles/idxl_apps.dir/tree.cpp.o.d"
  "libidxl_apps.a"
  "libidxl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
