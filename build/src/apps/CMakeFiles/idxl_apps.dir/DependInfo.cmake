
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/circuit.cpp" "src/apps/CMakeFiles/idxl_apps.dir/circuit.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/circuit.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/idxl_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/sim_specs.cpp" "src/apps/CMakeFiles/idxl_apps.dir/sim_specs.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/sim_specs.cpp.o.d"
  "/root/repo/src/apps/soleil.cpp" "src/apps/CMakeFiles/idxl_apps.dir/soleil.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/soleil.cpp.o.d"
  "/root/repo/src/apps/spmv.cpp" "src/apps/CMakeFiles/idxl_apps.dir/spmv.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/spmv.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/idxl_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/stencil.cpp.o.d"
  "/root/repo/src/apps/tree.cpp" "src/apps/CMakeFiles/idxl_apps.dir/tree.cpp.o" "gcc" "src/apps/CMakeFiles/idxl_apps.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/idxl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idxl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idxl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/functor/CMakeFiles/idxl_functor.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/idxl_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
