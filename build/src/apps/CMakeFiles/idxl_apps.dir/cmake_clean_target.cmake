file(REMOVE_RECURSE
  "libidxl_apps.a"
)
