# Empty dependencies file for idxl_region.
# This may be replaced when dependencies are built.
