
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/bvh.cpp" "src/region/CMakeFiles/idxl_region.dir/bvh.cpp.o" "gcc" "src/region/CMakeFiles/idxl_region.dir/bvh.cpp.o.d"
  "/root/repo/src/region/domain.cpp" "src/region/CMakeFiles/idxl_region.dir/domain.cpp.o" "gcc" "src/region/CMakeFiles/idxl_region.dir/domain.cpp.o.d"
  "/root/repo/src/region/partition_ops.cpp" "src/region/CMakeFiles/idxl_region.dir/partition_ops.cpp.o" "gcc" "src/region/CMakeFiles/idxl_region.dir/partition_ops.cpp.o.d"
  "/root/repo/src/region/region_forest.cpp" "src/region/CMakeFiles/idxl_region.dir/region_forest.cpp.o" "gcc" "src/region/CMakeFiles/idxl_region.dir/region_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
