file(REMOVE_RECURSE
  "CMakeFiles/idxl_region.dir/bvh.cpp.o"
  "CMakeFiles/idxl_region.dir/bvh.cpp.o.d"
  "CMakeFiles/idxl_region.dir/domain.cpp.o"
  "CMakeFiles/idxl_region.dir/domain.cpp.o.d"
  "CMakeFiles/idxl_region.dir/partition_ops.cpp.o"
  "CMakeFiles/idxl_region.dir/partition_ops.cpp.o.d"
  "CMakeFiles/idxl_region.dir/region_forest.cpp.o"
  "CMakeFiles/idxl_region.dir/region_forest.cpp.o.d"
  "libidxl_region.a"
  "libidxl_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
