file(REMOVE_RECURSE
  "libidxl_region.a"
)
