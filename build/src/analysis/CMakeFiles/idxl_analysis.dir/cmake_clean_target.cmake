file(REMOVE_RECURSE
  "libidxl_analysis.a"
)
