# Empty compiler generated dependencies file for idxl_analysis.
# This may be replaced when dependencies are built.
