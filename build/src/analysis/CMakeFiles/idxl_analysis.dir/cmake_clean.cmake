file(REMOVE_RECURSE
  "CMakeFiles/idxl_analysis.dir/dynamic_check.cpp.o"
  "CMakeFiles/idxl_analysis.dir/dynamic_check.cpp.o.d"
  "CMakeFiles/idxl_analysis.dir/hybrid.cpp.o"
  "CMakeFiles/idxl_analysis.dir/hybrid.cpp.o.d"
  "CMakeFiles/idxl_analysis.dir/patterns.cpp.o"
  "CMakeFiles/idxl_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/idxl_analysis.dir/static_analysis.cpp.o"
  "CMakeFiles/idxl_analysis.dir/static_analysis.cpp.o.d"
  "libidxl_analysis.a"
  "libidxl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
