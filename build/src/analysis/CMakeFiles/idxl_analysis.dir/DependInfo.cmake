
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dynamic_check.cpp" "src/analysis/CMakeFiles/idxl_analysis.dir/dynamic_check.cpp.o" "gcc" "src/analysis/CMakeFiles/idxl_analysis.dir/dynamic_check.cpp.o.d"
  "/root/repo/src/analysis/hybrid.cpp" "src/analysis/CMakeFiles/idxl_analysis.dir/hybrid.cpp.o" "gcc" "src/analysis/CMakeFiles/idxl_analysis.dir/hybrid.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/idxl_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/idxl_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/static_analysis.cpp" "src/analysis/CMakeFiles/idxl_analysis.dir/static_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/idxl_analysis.dir/static_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/functor/CMakeFiles/idxl_functor.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/idxl_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
