file(REMOVE_RECURSE
  "CMakeFiles/idxl_runtime.dir/dependence.cpp.o"
  "CMakeFiles/idxl_runtime.dir/dependence.cpp.o.d"
  "CMakeFiles/idxl_runtime.dir/mapping.cpp.o"
  "CMakeFiles/idxl_runtime.dir/mapping.cpp.o.d"
  "CMakeFiles/idxl_runtime.dir/runtime.cpp.o"
  "CMakeFiles/idxl_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/idxl_runtime.dir/serialize.cpp.o"
  "CMakeFiles/idxl_runtime.dir/serialize.cpp.o.d"
  "CMakeFiles/idxl_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/idxl_runtime.dir/thread_pool.cpp.o.d"
  "libidxl_runtime.a"
  "libidxl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
