file(REMOVE_RECURSE
  "libidxl_runtime.a"
)
