
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dependence.cpp" "src/runtime/CMakeFiles/idxl_runtime.dir/dependence.cpp.o" "gcc" "src/runtime/CMakeFiles/idxl_runtime.dir/dependence.cpp.o.d"
  "/root/repo/src/runtime/mapping.cpp" "src/runtime/CMakeFiles/idxl_runtime.dir/mapping.cpp.o" "gcc" "src/runtime/CMakeFiles/idxl_runtime.dir/mapping.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/idxl_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/idxl_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/serialize.cpp" "src/runtime/CMakeFiles/idxl_runtime.dir/serialize.cpp.o" "gcc" "src/runtime/CMakeFiles/idxl_runtime.dir/serialize.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/runtime/CMakeFiles/idxl_runtime.dir/thread_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/idxl_runtime.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/idxl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/functor/CMakeFiles/idxl_functor.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/idxl_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
