# Empty compiler generated dependencies file for idxl_runtime.
# This may be replaced when dependencies are built.
