
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/functor/affine.cpp" "src/functor/CMakeFiles/idxl_functor.dir/affine.cpp.o" "gcc" "src/functor/CMakeFiles/idxl_functor.dir/affine.cpp.o.d"
  "/root/repo/src/functor/expr.cpp" "src/functor/CMakeFiles/idxl_functor.dir/expr.cpp.o" "gcc" "src/functor/CMakeFiles/idxl_functor.dir/expr.cpp.o.d"
  "/root/repo/src/functor/projection.cpp" "src/functor/CMakeFiles/idxl_functor.dir/projection.cpp.o" "gcc" "src/functor/CMakeFiles/idxl_functor.dir/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/idxl_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
