# Empty compiler generated dependencies file for idxl_functor.
# This may be replaced when dependencies are built.
