file(REMOVE_RECURSE
  "CMakeFiles/idxl_functor.dir/affine.cpp.o"
  "CMakeFiles/idxl_functor.dir/affine.cpp.o.d"
  "CMakeFiles/idxl_functor.dir/expr.cpp.o"
  "CMakeFiles/idxl_functor.dir/expr.cpp.o.d"
  "CMakeFiles/idxl_functor.dir/projection.cpp.o"
  "CMakeFiles/idxl_functor.dir/projection.cpp.o.d"
  "libidxl_functor.a"
  "libidxl_functor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_functor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
