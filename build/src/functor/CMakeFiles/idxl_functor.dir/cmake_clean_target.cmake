file(REMOVE_RECURSE
  "libidxl_functor.a"
)
