file(REMOVE_RECURSE
  "libidxl_compiler.a"
)
