file(REMOVE_RECURSE
  "CMakeFiles/idxl_compiler.dir/compile.cpp.o"
  "CMakeFiles/idxl_compiler.dir/compile.cpp.o.d"
  "CMakeFiles/idxl_compiler.dir/transform.cpp.o"
  "CMakeFiles/idxl_compiler.dir/transform.cpp.o.d"
  "libidxl_compiler.a"
  "libidxl_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
