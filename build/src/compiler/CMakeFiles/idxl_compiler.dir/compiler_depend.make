# Empty compiler generated dependencies file for idxl_compiler.
# This may be replaced when dependencies are built.
