file(REMOVE_RECURSE
  "CMakeFiles/idxl_sim.dir/experiment.cpp.o"
  "CMakeFiles/idxl_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/idxl_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/idxl_sim.dir/pipeline_sim.cpp.o.d"
  "libidxl_sim.a"
  "libidxl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
