# Empty dependencies file for idxl_sim.
# This may be replaced when dependencies are built.
