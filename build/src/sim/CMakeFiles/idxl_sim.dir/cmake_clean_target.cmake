file(REMOVE_RECURSE
  "libidxl_sim.a"
)
