file(REMOVE_RECURSE
  "libidxl_shard.a"
)
