file(REMOVE_RECURSE
  "CMakeFiles/idxl_shard.dir/sharded_runtime.cpp.o"
  "CMakeFiles/idxl_shard.dir/sharded_runtime.cpp.o.d"
  "libidxl_shard.a"
  "libidxl_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxl_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
