# Empty compiler generated dependencies file for idxl_shard.
# This may be replaced when dependencies are built.
