// service_soak — soak test of the multi-tenant session server.
//
// Drives hundreds of concurrent clients against one in-process
// ServiceRuntime over a Unix socket: each client builds its own small
// partitioned region, then loops ⟨window of pipelined index launches,
// fence⟩ until the deadline. Reports sustained launch throughput and the
// p99 admission→issue queue wait (from the per-tenant
// idxl_task_queue_wait_ns histograms) into BENCH_service.json; the CI
// service-soak lane gates both against bench/baselines/service.json.
//
// Usage:
//   service_soak [--clients N] [--seconds S] [--window W] [--workers N]
//
// Environment: IDXL_BENCH_JSON / IDXL_BENCH_DIR place the json artifact,
// IDXL_SOAK_DIAG_DIR dumps the flight recorder + metrics on exit.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dist/smoke_tasks.hpp"
#include "fig_common.hpp"
#include "runtime/runtime.hpp"
#include "service/client.hpp"
#include "service/service_runtime.hpp"

using namespace idxl;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  int clients = 200;
  double seconds = 5.0;
  int window = 8;
  unsigned workers = 2;
};

struct ClientResult {
  uint64_t launches = 0;
  uint64_t rejects = 0;
  std::string error;
};

void run_client(const std::string& sock_path, int index, Clock::time_point deadline,
                int window, ClientResult* out) {
  try {
    service::ClientHello hello;
    hello.tenant = "soak-" + std::to_string(index % 8);  // 8 tenant labels
    hello.weight = static_cast<uint32_t>(1 + index % 4);
    service::ServiceClient client =
        service::ServiceClient::connect_unix(sock_path, hello);

    constexpr int64_t kElems = 32;
    constexpr int64_t kBlocks = 4;
    const IndexSpaceId is = client.create_index_space(Domain(Rect::line(kElems)));
    const FieldSpaceId fs = client.create_field_space();
    const FieldId f = client.allocate_field(fs, sizeof(double), "v");
    std::vector<Domain> blocks;
    for (int64_t b = 0; b < kBlocks; ++b)
      blocks.emplace_back(Rect(Point::p1(b * (kElems / kBlocks)),
                               Point::p1((b + 1) * (kElems / kBlocks) - 1)));
    const PartitionId part = client.create_partition(
        is, Rect::line(kBlocks), blocks, Disjointness::kDisjoint);
    const RegionId region = client.create_region(is, fs);
    client.fill(region, f, 0.0);

    dist::smoke::StencilArgs args;
    args.fin = f;
    const IndexLauncher launcher =
        IndexLauncher::over(Domain(Rect::line(kBlocks)))
            .with_task(client.task_id("smoke_increment"))
            .region(region, part, ProjectionFunctor::identity(1), {f},
                    Privilege::kReadWrite)
            .scalars(args);

    while (Clock::now() < deadline) {
      for (int i = 0; i < window; ++i) client.launch(launcher);
      out->launches += static_cast<uint64_t>(window);
      if (!client.fence().ok()) {
        out->error = "fence reported faults";
        return;
      }
    }
    out->rejects = client.rejects();
    client.goodbye();
  } catch (const std::exception& e) {
    out->error = e.what();
  }
}

/// p99 upper bound over the merged per-tenant queue-wait histograms
/// (power-of-two buckets: the bound is the bucket's `le` edge).
uint64_t merged_p99_ns(const obs::MetricsSnapshot& snap, const char* family_name) {
  const obs::FamilySnapshot* fam = snap.family(family_name);
  if (fam == nullptr) return 0;
  std::vector<uint64_t> counts;  // non-cumulative, merged across series
  uint64_t total = 0;
  for (const obs::SeriesSnapshot& s : fam->series) {
    if (counts.size() < s.buckets.size()) counts.resize(s.buckets.size(), 0);
    uint64_t prev = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      counts[i] += s.buckets[i].second - prev;
      prev = s.buckets[i].second;
    }
    total += s.count;
  }
  if (total == 0) return 0;
  const uint64_t target = (total * 99 + 99) / 100;
  uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target)
      return obs::Histogram::bucket_bound(i);
  }
  return UINT64_MAX;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) opt.clients = std::atoi(argv[++i]);
    else if (arg == "--seconds" && i + 1 < argc) opt.seconds = std::atof(argv[++i]);
    else if (arg == "--window" && i + 1 < argc) opt.window = std::atoi(argv[++i]);
    else if (arg == "--workers" && i + 1 < argc)
      opt.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: %s [--clients N] [--seconds S] [--window W]"
                   " [--workers N]\n", argv[0]);
      return 2;
    }
  }

  RuntimeConfig rc;
  rc.workers = opt.workers;
  service::ServiceConfig sc;
  sc.max_sessions = static_cast<uint32_t>(opt.clients) + 8;
  service::ServiceRuntime server(std::make_unique<Runtime>(rc), sc);
  const std::string sock_path =
      "/tmp/idxl-soak-" + std::to_string(::getpid()) + ".sock";
  server.listen_unix(sock_path);

  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::microseconds(static_cast<int64_t>(opt.seconds * 1e6));
  std::vector<ClientResult> results(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int i = 0; i < opt.clients; ++i)
    threads.emplace_back(run_client, sock_path, i, deadline, opt.window,
                         &results[static_cast<std::size_t>(i)]);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  uint64_t launches = 0, rejects = 0;
  int failed = 0;
  for (const ClientResult& r : results) {
    launches += r.launches;
    rejects += r.rejects;
    if (!r.error.empty()) {
      if (failed < 5)
        std::fprintf(stderr, "service_soak: client failed: %s\n", r.error.c_str());
      ++failed;
    }
  }
  server.drain();

  const obs::MetricsSnapshot snap = server.metrics().snapshot();
  const uint64_t p99_ns = merged_p99_ns(snap, "idxl_task_queue_wait_ns");
  const double throughput = launches / elapsed;

  std::printf(
      "service_soak: %d clients, %.1fs: %llu launches (%.0f/s), "
      "p99 queue wait %.3f ms, %llu rejects, %d failed clients, "
      "%llu sessions opened\n",
      opt.clients, elapsed, static_cast<unsigned long long>(launches),
      throughput, static_cast<double>(p99_ns) / 1e6,
      static_cast<unsigned long long>(rejects), failed,
      static_cast<unsigned long long>(
          snap.value("idxl_service_sessions_total", {{"event", "opened"}})));

  bench::BenchJson payload;
  payload.field("clients", opt.clients)
      .field("window", opt.window)
      .field("elapsed_s", elapsed)
      .field("launches", launches)
      .field("throughput_per_s", throughput)
      .field("p99_queue_wait_ns", p99_ns)
      .field("rejects", rejects)
      .field("failed_clients", failed)
      .field("sessions",
             snap.value("idxl_service_sessions_total", {{"event", "opened"}}));
  bench::write_bench_json("service", std::move(payload), snap);

  if (const char* dir = std::getenv("IDXL_SOAK_DIAG_DIR")) {
    std::ofstream(std::string(dir) + "/service_flight.json")
        << server.flight_recorder().json();
    std::ofstream(std::string(dir) + "/service_metrics.prom")
        << snap.prometheus_text();
  }
  ::unlink(sock_path.c_str());
  return failed == 0 ? 0 : 1;
}
