// Figure 7's stencil, re-run for real on the distributed backend: the same
// PRK star workload across 1-4 actual OS processes (fork-mode workers), with
// results verified against the serial reference. Writes BENCH_dist.json.
//
// Unlike the fig7 binary (which simulates the paper's 512-node sweep), every
// number here is a measured wall-clock throughput of real multi-process
// execution, so the series doubles as a regression check on the wire path.
// Each rank count runs twice — the star-hub baseline (every task outcome
// broadcast everywhere) and the delta data plane (halo-only transfers over
// direct worker links) — and the JSON carries both series plus the measured
// bytes-moved reduction, which CI gates against bench/baselines/dist.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "dist/dist_runtime.hpp"
#include "dist/smoke_tasks.hpp"
#include "fig_common.hpp"
#include "region/partition_ops.hpp"

using namespace idxl;

namespace {

struct Result {
  uint32_t ranks;
  double cells_per_s;
  double seconds;
  double max_err;
  dist::DataPlaneStats stats;
};

/// One measured run. `traced` turns on full distributed tracing (profiling
/// in every process, clock probes, merged trace at shutdown); `trace_path`
/// and `metrics_path` additionally write the merged Chrome trace and the
/// rank-aggregated metrics JSON — the CI artifacts.
Result run_once(uint32_t ranks, const apps::StencilParams& params, int iters,
                bool delta, bool traced = false,
                const std::string& trace_path = "",
                const std::string& metrics_path = "", bool warmup = false) {
  dist::DistConfig dc;
  dc.ranks = ranks;
  dc.runtime.workers = 2;
  dc.delta_transfers = delta;
  dc.runtime.enable_profiling = traced;
  dc.trace_path = trace_path;
  dist::DistributedRuntime rt(dc);
  auto& forest = rt.forest();
  const IndexSpaceId is =
      forest.create_index_space(Domain(Rect::box2(params.nx, params.ny)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fin = forest.allocate_field(fs, sizeof(double), "in");
  const FieldId fout = forest.allocate_field(fs, sizeof(double), "out");
  const RegionId grid = forest.create_region(is, fs);
  const PartitionId blocks =
      partition_equal(forest, is, Rect::box2(params.px, params.py));
  const PartitionId halos = partition_halo(forest, is, blocks, params.radius);
  {
    Accessor<double> in(forest, grid, fin, Privilege::kWrite);
    Accessor<double> out(forest, grid, fout, Privilege::kWrite);
    for (const Point& p : Rect::box2(params.nx, params.ny)) {
      in.write(p, static_cast<double>(p[0] + p[1]));
      out.write(p, 0.0);
    }
  }
  const TaskFnId st = rt.register_task("smoke_stencil", dist::smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", dist::smoke::increment_body);
  const TaskFnId noop = rt.register_task("bench_noop", [](TaskContext&) {});

  dist::smoke::StencilArgs args;
  args.fin = fin;
  args.fout = fout;
  args.radius = params.radius;
  args.nx = params.nx;
  args.ny = params.ny;
  const Domain dom = Domain(Rect::box2(params.px, params.py));
  const auto id = ProjectionFunctor::identity(2);

  // The first launch forks and handshakes the workers; the overhead gate
  // compares steady-state iteration cost, so it warms that up off-clock
  // with a read-only no-op that leaves the grid untouched.
  if (warmup) {
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(noop)
                         .region(grid, blocks, id, {fin}, Privilege::kRead));
    rt.wait_all();
  }

  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(st)
                         .scalars(ArgBuffer::of(args))
                         .region(grid, halos, id, {fin}, Privilege::kRead)
                         .region(grid, blocks, id, {fout},
                                 Privilege::kReadWrite));
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(inc)
                         .scalars(ArgBuffer::of(args))
                         .region(grid, blocks, id, {fin},
                                 Privilege::kReadWrite));
  }
  rt.wait_all();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Result r{ranks, 0.0, 0.0, 0.0, {}};
  r.seconds = seconds;
  r.cells_per_s =
      static_cast<double>(params.nx) * static_cast<double>(params.ny) * iters /
      seconds;
  r.stats = rt.data_plane_stats();
  if (!metrics_path.empty()) {
    const std::string json = rt.cluster_metrics_json();
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  const std::vector<double> expect =
      apps::StencilApp::reference_output(params, iters);
  auto acc = rt.read_region<double>(grid, fout);
  std::size_t i = 0;
  for (const Point& p : Rect::box2(params.nx, params.ny))
    r.max_err = std::max(r.max_err, std::abs(acc.read(p) - expect[i++]));
  if (!rt.fault_report().ok()) r.max_err = HUGE_VAL;
  return r;
}

}  // namespace

/// Directory prefix shared with BENCH_dist.json for the trace/metrics
/// artifacts ($IDXL_BENCH_DIR, default cwd).
std::string artifact_path(const char* file) {
  std::string path;
  if (const char* dir = std::getenv("IDXL_BENCH_DIR")) {
    path = dir;
    if (!path.empty() && path.back() != '/') path += '/';
  }
  path += file;
  return path;
}

int main() {
  // The tracing-overhead comparison below needs the untraced arms genuinely
  // untraced; a stray IDXL_TRACE from the environment would force profiling
  // on in every run and hide the cost being measured.
  unsetenv("IDXL_TRACE");
  apps::StencilParams params;
  params.nx = params.ny = 96;
  params.px = params.py = 4;
  params.radius = 1;
  const int iters = 8;

  std::printf("Distributed stencil (real processes): %lldx%lld grid, "
              "%lldx%lld blocks, %d iterations\n",
              static_cast<long long>(params.nx),
              static_cast<long long>(params.ny),
              static_cast<long long>(params.px),
              static_cast<long long>(params.py), iters);
  std::printf("%8s %10s %14s %12s %12s %12s %10s\n", "ranks", "plane",
              "cells/s", "hub_bytes", "relay_bytes", "p2p_bytes", "max_err");

  bool ok = true;
  std::string points_hub = "[", points_delta = "[";
  Result hub4{}, delta4{};
  for (const uint32_t ranks : {1u, 2u, 3u, 4u}) {
    for (const bool delta : {false, true}) {
      const Result r = run_once(ranks, params, iters, delta);
      std::printf("%8u %10s %14.3e %12llu %12llu %12llu %10.3g\n", r.ranks,
                  delta ? "delta+p2p" : "star-hub", r.cells_per_s,
                  static_cast<unsigned long long>(r.stats.bytes_hub),
                  static_cast<unsigned long long>(r.stats.bytes_relay),
                  static_cast<unsigned long long>(r.stats.bytes_p2p),
                  r.max_err);
      ok = ok && r.max_err < 1e-12;
      std::string& points = delta ? points_delta : points_hub;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s[%u, %.6g, %llu]",
                    points.size() > 1 ? "," : "", r.ranks, r.cells_per_s,
                    static_cast<unsigned long long>(r.stats.bytes_total()));
      points += buf;
      if (ranks == 4) (delta ? delta4 : hub4) = r;
    }
  }
  points_hub += ']';
  points_delta += ']';

  // The tentpole number: payload bytes moved at 4 processes, delta+p2p
  // against the star-hub broadcast of the same program.
  const double reduction =
      delta4.stats.bytes_total() > 0
          ? static_cast<double>(hub4.stats.bytes_total()) /
                static_cast<double>(delta4.stats.bytes_total())
          : 0.0;
  std::printf("bytes moved @4 ranks: star-hub %llu, delta+p2p %llu "
              "(%.2fx reduction)\n",
              static_cast<unsigned long long>(hub4.stats.bytes_total()),
              static_cast<unsigned long long>(delta4.stats.bytes_total()),
              reduction);

  // Tracing overhead at 4 ranks, delta+p2p: best-of-5 wall clock with the
  // full distributed-tracing stack on (profiling in every process, clock
  // probes, trace-context stamping) against best-of-5 with it off. CI gates
  // the ratio at 1.05. The last traced run also writes the CI artifacts:
  // the merged clock-aligned Chrome trace and the cluster metrics JSON.
  const std::string trace_artifact = artifact_path("dist_stencil_trace.json");
  const std::string metrics_artifact =
      artifact_path("dist_stencil_cluster_metrics.json");
  // The sweep above uses deliberately tiny blocks (576 cells) to stress the
  // wire path; there an iteration is almost entirely IPC wake/sleep latency,
  // and a 5% budget on a mostly-idle denominator gates scheduler jitter, not
  // tracing. The overhead arms use production-shaped blocks instead so the
  // ratio measures tracing cost against real work.
  apps::StencilParams oparams = params;
  oparams.nx = oparams.ny = 512;  // 16k cells per block task
  const int oiters = iters * 2;   // longer arms shrink relative jitter
  double best_off = HUGE_VAL, best_on = HUGE_VAL;
  bool traced_ok = true;
  const int reps = 5;  // best-of-5: the gate compares floors, not averages
  for (int rep = 0; rep < reps; ++rep) {
    const Result off = run_once(4, oparams, oiters, /*delta=*/true,
                                /*traced=*/false, "", "", /*warmup=*/true);
    best_off = std::min(best_off, off.seconds);
    const bool last = rep == reps - 1;
    const Result on =
        run_once(4, oparams, oiters, /*delta=*/true, /*traced=*/true,
                 last ? trace_artifact : std::string(),
                 last ? metrics_artifact : std::string(), /*warmup=*/true);
    best_on = std::min(best_on, on.seconds);
    traced_ok = traced_ok && off.max_err < 1e-12 && on.max_err < 1e-12;
  }
  ok = ok && traced_ok;
  const double overhead_ratio = best_off > 0 ? best_on / best_off : HUGE_VAL;
  std::printf("tracing overhead @4 ranks: off %.3fs, on %.3fs (ratio %.3f)\n",
              best_off, best_on, overhead_ratio);
  std::printf("artifacts: %s, %s\n", trace_artifact.c_str(),
              metrics_artifact.c_str());

  bench::BenchJson payload;
  payload
      .field("description",
             "PRK star stencil on the DistributedRuntime, 1-4 fork-mode "
             "processes; points are [ranks, cells/s, payload_bytes] per data "
             "plane, verified bit-identical to the serial reference")
      .field("grid", std::to_string(params.nx) + "x" + std::to_string(params.ny))
      .field("iterations", iters)
      .raw("points_star_hub", points_hub)
      .raw("points_delta_p2p", points_delta)
      .field("bytes_hub_4ranks", hub4.stats.bytes_total())
      .field("bytes_delta_4ranks", delta4.stats.bytes_total())
      .field("bytes_p2p_4ranks", delta4.stats.bytes_p2p)
      .field("bytes_reduction_4ranks", reduction)
      .field("cells_per_s_hub_4ranks", hub4.cells_per_s)
      .field("cells_per_s_delta_4ranks", delta4.cells_per_s)
      .field("tracing_off_best_s", best_off)
      .field("tracing_on_best_s", best_on)
      .field("tracing_overhead_ratio", overhead_ratio)
      .field("verified", ok ? "true" : "false");
  bench::write_bench_json("dist", std::move(payload));

  if (!ok) {
    std::printf("FAILED: distributed result diverged from the reference\n");
    return 1;
  }
  return 0;
}
