// Figure 4: Circuit strong scaling, 5.1e6 wires total, 1-512 nodes,
// throughput in 1e6 wires/s, four configurations (DCR x IDX).
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "fig4", "Figure 4: Circuit strong scaling (5.1e6 wires)", "10^6 wires/s",
      [](uint32_t n) { return apps::circuit_strong_spec(n); }, sim::four_configs(),
      /*max_nodes=*/512,
      [](const sim::SimResult& r, uint32_t) {
        return 5.1e6 / r.seconds_per_iteration / 1e6;
      },
      "DCR+IDX best at scale (~1.6x over DCR-only in the paper); No-DCR "
      "configurations flatten early as node 0's issuance serializes.");
  return 0;
}
