// Figure 10: Soleil-X (fluid, particle and DOM) weak scaling, 1-32 nodes.
// Three curves: DCR+IDX with the dynamic projection-functor checks, the
// same with checks elided, and DCR without index launches. The DOM module's
// non-trivial projection functors are what the checks verify.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  std::vector<sim::SimConfig> configs(3);
  configs[0].dcr = true;
  configs[0].idx = true;
  configs[0].dynamic_checks = true;
  configs[1].dcr = true;
  configs[1].idx = true;
  configs[1].dynamic_checks = false;
  configs[2].dcr = true;
  configs[2].idx = false;

  const auto nodes = sim::nodes_up_to(32);
  std::vector<sim::Series> series(3);
  series[0].label = "DCR, IDX (dyn check)";
  series[1].label = "DCR, IDX (no check)";
  series[2].label = "DCR, No IDX";
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (uint32_t n : nodes) {
      sim::SimConfig config = configs[c];
      config.nodes = n;
      const auto r = sim::simulate(apps::soleil_full_spec(n), config);
      series[c].points.emplace_back(n, 1.0 / r.seconds_per_iteration);
    }
  }
  sim::print_figure("Figure 10: Soleil-X full (fluid+particles+DOM) weak scaling",
                    "iterations/s per node", nodes, series);
  std::printf(
      "paper shape: DOM sweeps scale worse than forall parallelism (~64%% "
      "efficiency at 32 nodes); the dynamic-check and no-check curves are "
      "indistinguishable — the hybrid analysis is effectively free.\n");
  bench::write_figure_json(
      "fig10", "Figure 10: Soleil-X full (fluid+particles+DOM) weak scaling",
      "iterations/s per node", nodes, series);
  return 0;
}
