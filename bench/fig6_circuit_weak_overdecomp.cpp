// Figure 6: Circuit weak scaling, overdecomposed 10x, tracing disabled.
// With tracing out of the way, index launches win with and without DCR.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "fig6", "Figure 6: Circuit weak scaling, overdecomposed 10x, no tracing",
      "10^6 wires/s per node",
      [](uint32_t n) { return apps::circuit_weak_overdecomposed_spec(n); },
      sim::four_configs(/*tracing=*/false),
      /*max_nodes=*/1024,
      [](const sim::SimResult& r, uint32_t n) {
        return 2e5 * n / r.seconds_per_iteration / n / 1e6;
      },
      "without tracing, IDX beats No-IDX under both DCR and No-DCR; the "
      "overdecomposition magnifies the bulk-movement savings.");
  return 0;
}
