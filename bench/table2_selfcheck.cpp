// Table 2: elapsed time (microseconds) of the dynamic self-check for the
// paper's four projection-functor families, over launch domains of size
// 1e3..1e6 with one sub-collection per domain point. Each cell averages 5
// runs, as in the paper's protocol. All functors are chosen safe, so the
// early exit never fires and the full O(|D|) loop is timed.
#include <cstdio>

#include "analysis/dynamic_check.hpp"
#include "analysis/static_analysis.hpp"
#include "support/stats.hpp"

using namespace idxl;

namespace {

double measure_us(const ProjectionFunctor& f, int64_t domain_size) {
  const Domain domain = Domain::line(domain_size);
  const Rect colors = Rect::line(domain_size);
  // Warm up once (compiles the functor, faults pages), then time 5 runs.
  {
    const auto r = dynamic_self_check(f, colors, domain);
    IDXL_ASSERT_MSG(r.safe, "table functor must be conflict-free");
  }
  RunningStats stats;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    const auto r = dynamic_self_check(f, colors, domain);
    stats.add(watch.elapsed_us());
    IDXL_ASSERT(r.safe);
  }
  return stats.mean();
}

}  // namespace

int main() {
  const int64_t sizes[] = {1'000, 10'000, 100'000, 1'000'000};

  struct Row {
    const char* name;
    ProjectionFunctor functor;
  };
  // The paper's four families (Table 2). The modular shift and quadratic
  // coefficients are chosen so every functor is injective over each domain
  // (quadratic values beyond the color space are skipped by the Listing-3
  // bounds check, as in the original setup where the partition size equals
  // the launch domain).
  const Row rows[] = {
      {"Identity  i", ProjectionFunctor::identity(1)},
      {"Linear    a*i + b", ProjectionFunctor::affine1d(3, 7)},
      {"Modular   (i+k) mod N", ProjectionFunctor::modular1d(5, 1'000'000)},
      {"Quadratic a*i^2 + b*i + c",
       ProjectionFunctor::symbolic(
           {make_add(make_add(make_mul(make_coord(0), make_coord(0)),
                              make_mul(make_const(3), make_coord(0))),
                     make_const(5))},
           "i^2 + 3i + 5")},
  };

  std::printf("Table 2: dynamic self-check elapsed times (us), mean of 5 runs\n");
  std::printf("%-28s", "Projection functor");
  for (int64_t s : sizes) std::printf("%12lld", static_cast<long long>(s));
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-28s", row.name);
    for (int64_t s : sizes) std::printf("%12.1f", measure_us(row.functor, s));
    std::printf("\n");
  }
  std::printf(
      "paper shape: linear in |D| along each row; all entries low "
      "single-digit milliseconds at |D| = 1e6 (the paper reports 1.3-2.4 ms "
      "on a Xeon E5-2690v3).\n");

  // Static-coverage delta: which of the table's families each static tier
  // decides. A kYes row skips its dynamic check entirely — at |D| = 1e6
  // that converts the milliseconds above into a constant-time proof.
  const auto tri_name = [](Tri t) {
    return t == Tri::kYes ? "kYes" : t == Tri::kNo ? "kNo" : "kUnknown";
  };
  std::printf("\nStatic coverage (self-check injectivity), |D| = 1e6:\n");
  std::printf("%-28s%14s%22s\n", "Projection functor", "baseline", "abstract-interp");
  const Domain cover_domain = Domain::line(1'000'000);
  int base_definite = 0, ext_definite = 0;
  for (const Row& row : rows) {
    const Tri base = static_injectivity(row.functor, cover_domain, false);
    const Tri ext = static_injectivity(row.functor, cover_domain, true);
    base_definite += base != Tri::kUnknown;
    ext_definite += ext != Tri::kUnknown;
    std::printf("%-28s%14s%22s\n", row.name, tri_name(base), tri_name(ext));
  }
  std::printf(
      "decided statically: %d/4 baseline -> %d/4 with the interval x "
      "congruence abstract interpreter (modular and quadratic rows no longer "
      "need their dynamic check).\n",
      base_definite, ext_definite);
  return 0;
}
