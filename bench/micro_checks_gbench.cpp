// google-benchmark microbenchmarks of the dynamic-check kernels backing
// Tables 2/3 — finer-grained statistics (per-point ns, big-O fit) than the
// paper-format tables, useful when tuning the checker itself.
#include <benchmark/benchmark.h>

#include "analysis/dynamic_check.hpp"

namespace idxl {
namespace {

void BM_SelfCheckIdentity(benchmark::State& state) {
  const auto f = ProjectionFunctor::identity(1);
  const int64_t n = state.range(0);
  const Domain domain = Domain::line(n);
  const Rect colors = Rect::line(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_self_check(f, colors, domain));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SelfCheckIdentity)->Range(1 << 10, 1 << 20)->Complexity(benchmark::oN);

void BM_SelfCheckModular(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto f = ProjectionFunctor::modular1d(5, n);
  const Domain domain = Domain::line(n);
  const Rect colors = Rect::line(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_self_check(f, colors, domain));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SelfCheckModular)->Range(1 << 10, 1 << 20)->Complexity(benchmark::oN);

void BM_SelfCheckQuadratic(benchmark::State& state) {
  const auto f = ProjectionFunctor::symbolic(
      {make_add(make_mul(make_coord(0), make_coord(0)), make_coord(0))});
  const int64_t n = state.range(0);
  const Domain domain = Domain::line(n);
  const Rect colors = Rect::line(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_self_check(f, colors, domain));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SelfCheckQuadratic)->Range(1 << 10, 1 << 20)->Complexity(benchmark::oN);

void BM_SelfCheckOpaque(benchmark::State& state) {
  // The generic (non-specialized) path: an opaque callable.
  const auto f = ProjectionFunctor::opaque(
      [](const Point& p) { return Point::p1(p[0] * 3 + 1); }, 1, "opaque affine");
  const int64_t n = state.range(0);
  const Domain domain = Domain::line(n);
  const Rect colors = Rect::line(3 * n + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_self_check(f, colors, domain));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SelfCheckOpaque)->Range(1 << 10, 1 << 18)->Complexity(benchmark::oN);

void BM_CrossCheckArgs(benchmark::State& state) {
  const int64_t n = 1 << 16;
  const auto num_args = static_cast<int>(state.range(0));
  const Domain domain = Domain::line(n);
  const Rect colors = Rect::line(2 * n);
  std::vector<ProjectionFunctor> functors;
  functors.push_back(ProjectionFunctor::affine1d(2, 0));
  for (int a = 1; a < num_args; ++a)
    functors.push_back(ProjectionFunctor::affine1d(2, 1));
  std::vector<CheckArg> args;
  for (int a = 0; a < num_args; ++a) {
    CheckArg ca;
    ca.functor = &functors[static_cast<std::size_t>(a)];
    ca.color_space = colors;
    ca.partition_disjoint = true;
    ca.partition_uid = 1;
    ca.collection_uid = 1;
    ca.priv = a == 0 ? Privilege::kWrite : Privilege::kRead;
    args.push_back(ca);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_cross_check(args, domain));
  }
}
BENCHMARK(BM_CrossCheckArgs)->DenseRange(2, 5);

}  // namespace
}  // namespace idxl

BENCHMARK_MAIN();
