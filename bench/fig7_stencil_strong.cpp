// Figure 7: Stencil strong scaling, 9e8 cells total, throughput in 1e9 cells/s.
#include <cstdio>
#include <cstdlib>

#include "apps/stencil.hpp"
#include "runtime/runtime.hpp"
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "fig7", "Figure 7: Stencil strong scaling (9e8 cells)", "10^9 cells/s",
      [](uint32_t n) { return apps::stencil_strong_spec(n); }, sim::four_configs(),
      /*max_nodes=*/512,
      [](const sim::SimResult& r, uint32_t) {
        return 9e8 / r.seconds_per_iteration / 1e9;
      },
      "same ordering as Circuit but a smaller DCR+IDX margin (~1.2x in the "
      "paper): stencil iterations are longer, so runtime costs amortize "
      "further.");

  // IDXL_TRACE=<path>: profile a real (in-process) stencil run of the same
  // shape at small scale and write a Chrome-trace JSON alongside the
  // simulated figure.
  if (const char* path = std::getenv("IDXL_TRACE")) {
    RuntimeConfig cfg;
    cfg.enable_profiling = true;
    Runtime rt(cfg);
    apps::StencilParams params;
    params.nx = params.ny = 192;
    params.px = params.py = 4;
    params.radius = 2;
    apps::StencilApp app(rt, params);
    app.run(/*iterations=*/10);
    rt.profiler().write_chrome_trace(path);
    std::printf("wrote Chrome trace of a profiled in-process run to %s "
                "(%zu events)\n",
                path, rt.profiler().event_count());
  }
  return 0;
}
