// Figure 7: Stencil strong scaling, 9e8 cells total, throughput in 1e9 cells/s.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "Figure 7: Stencil strong scaling (9e8 cells)", "10^9 cells/s",
      [](uint32_t n) { return apps::stencil_strong_spec(n); }, sim::four_configs(),
      /*max_nodes=*/512,
      [](const sim::SimResult& r, uint32_t) {
        return 9e8 / r.seconds_per_iteration / 1e9;
      },
      "same ordering as Circuit but a smaller DCR+IDX margin (~1.2x in the "
      "paper): stencil iterations are longer, so runtime costs amortize "
      "further.");
  return 0;
}
