// Table 3: elapsed time (microseconds) of the dynamic cross-check for 2-5
// arguments on the same partition, showing linear scaling in both the
// launch-domain size and the argument count. The partition has twice as
// many sub-collections as the domain has points (the paper's setup); one
// write argument strides the even colors, the remaining read arguments
// stride the odd colors, so images never conflict and the full check runs.
#include <cstdio>
#include <vector>

#include "analysis/dynamic_check.hpp"
#include "analysis/static_analysis.hpp"
#include "support/stats.hpp"

using namespace idxl;

namespace {

double measure_us(int num_args, int64_t domain_size) {
  const Domain domain = Domain::line(domain_size);
  const Rect colors = Rect::line(2 * domain_size);

  std::vector<ProjectionFunctor> functors;
  functors.push_back(ProjectionFunctor::affine1d(2, 0));  // write: even colors
  for (int a = 1; a < num_args; ++a)
    functors.push_back(ProjectionFunctor::affine1d(2, 1));  // reads: odd colors

  std::vector<CheckArg> args;
  for (int a = 0; a < num_args; ++a) {
    CheckArg ca;
    ca.functor = &functors[static_cast<std::size_t>(a)];
    ca.color_space = colors;
    ca.partition_disjoint = true;
    ca.partition_uid = 1;
    ca.collection_uid = 1;
    ca.priv = a == 0 ? Privilege::kWrite : Privilege::kRead;
    args.push_back(ca);
  }

  {
    const auto r = dynamic_cross_check(args, domain);
    IDXL_ASSERT_MSG(r.safe, "table arguments must be conflict-free");
  }
  RunningStats stats;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    const auto r = dynamic_cross_check(args, domain);
    stats.add(watch.elapsed_us());
    IDXL_ASSERT(r.safe);
  }
  return stats.mean();
}

}  // namespace

int main() {
  const int64_t sizes[] = {1'000, 10'000, 100'000, 1'000'000};

  std::printf(
      "Table 3: dynamic cross-check elapsed times (us) for multiple arguments "
      "on one partition, mean of 5 runs\n");
  std::printf("%-22s", "Number of arguments");
  for (int64_t s : sizes) std::printf("%12lld", static_cast<long long>(s));
  std::printf("\n");
  for (int args = 2; args <= 5; ++args) {
    std::printf("%-22d", args);
    for (int64_t s : sizes) std::printf("%12.1f", measure_us(args, s));
    std::printf("\n");
  }
  std::printf(
      "paper shape: linear in |D| along each row and linear in the argument "
      "count down each column (single shared bitmask, not pairwise).\n");

  // Static-coverage delta: the write argument strides even colors (2i) and
  // every read argument strides odd colors (2i+1) — residue classes mod 2
  // that the interval x congruence domain separates without touching the
  // launch domain. The baseline image-box test cannot (the boxes overlap),
  // so the whole table above becomes statically dischargeable.
  const auto tri_name = [](Tri t) {
    return t == Tri::kYes ? "kYes" : t == Tri::kNo ? "kNo" : "kUnknown";
  };
  const Domain cover_domain = Domain::line(1'000'000);
  const auto fw = ProjectionFunctor::affine1d(2, 0);
  const auto fr = ProjectionFunctor::affine1d(2, 1);
  const Tri base = static_images_disjoint(fw, fr, cover_domain, false);
  const Tri ext = static_images_disjoint(fw, fr, cover_domain, true);
  std::printf(
      "\nStatic coverage (write-vs-read images disjoint), |D| = 1e6:\n"
      "  baseline image boxes:   %s\n"
      "  abstract interpretation: %s (residue separation mod 2)\n",
      tri_name(base), tri_name(ext));
  return 0;
}
