// Figure 8: Stencil weak scaling, 9e8 cells per node, 1-1024 nodes.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "fig8", "Figure 8: Stencil weak scaling (9e8 cells/node)",
      "10^9 cells/s per node",
      [](uint32_t n) { return apps::stencil_weak_spec(n); }, sim::four_configs(),
      /*max_nodes=*/1024,
      [](const sim::SimResult& r, uint32_t n) {
        return 9e8 * n / r.seconds_per_iteration / n / 1e9;
      },
      "DCR with and without IDX diverge from around 512 nodes, later than "
      "Circuit because the per-iteration kernel time is larger.");
  return 0;
}
