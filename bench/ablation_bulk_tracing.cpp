// Ablation: the paper's stated future work (§6.2.1) — tracing integrated
// with bulk task launches. With per-task tracing, No-DCR+IDX is slightly
// *worse* than No-DCR+No-IDX (the Fig. 5 reversal: tracing forces expansion
// before distribution). Bulk tracing removes the forced expansion, so index
// launches keep their benefit even without DCR.
#include "fig_common.hpp"

int main() {
  using namespace idxl;

  std::vector<sim::SimConfig> configs(3);
  configs[0].dcr = false;
  configs[0].idx = true;
  configs[0].tracing = true;  // per-task tracing: the interference case
  configs[1].dcr = false;
  configs[1].idx = true;
  configs[1].tracing = true;
  configs[1].bulk_tracing = true;  // the future-work fix
  configs[2].dcr = false;
  configs[2].idx = false;
  configs[2].tracing = true;

  const auto nodes = sim::nodes_up_to(1024);
  std::vector<sim::Series> series(3);
  series[0].label = "IDX, per-task trace";
  series[1].label = "IDX, bulk trace";
  series[2].label = "No IDX, per-task trace";
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (uint32_t n : nodes) {
      sim::SimConfig config = configs[c];
      config.nodes = n;
      const auto r = sim::simulate(apps::circuit_weak_overdecomposed_spec(n), config);
      series[c].points.emplace_back(n, 2e5 / r.seconds_per_iteration / 1e6);
    }
  }
  sim::print_figure(
      "Ablation: bulk-launch tracing (No-DCR, circuit weak, overdecomposed 10x)",
      "10^6 wires/s per node", nodes, series);
  std::printf(
      "expected: bulk tracing restores the index-launch advantage without "
      "DCR — the curve that matches the paper's proposed fix.\n");
  bench::write_figure_json(
      "ablation_bulk_tracing",
      "Ablation: bulk-launch tracing (No-DCR, circuit weak, overdecomposed 10x)",
      "10^6 wires/s per node", nodes, series);
  return 0;
}
