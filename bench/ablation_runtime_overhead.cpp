// Ablation on the *real* runtime (not the machine simulator): wall-clock
// issuance cost of an index launch vs the equivalent per-task loop, and the
// effect of trace replay on dependence analysis. Task bodies are no-ops so
// the measurement isolates runtime overhead — the quantity index launches
// exist to compress.
#include <cstdio>

#include "fig_common.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "support/stats.hpp"

using namespace idxl;

namespace {

struct Setup {
  Runtime rt;
  RegionId region;
  PartitionId blocks;
  TaskFnId noop;

  Setup(RuntimeConfig cfg, int64_t tasks) : rt(cfg) {
    auto& forest = rt.forest();
    const IndexSpaceId is = forest.create_index_space(Domain::line(tasks * 4));
    const FieldSpaceId fs = forest.create_field_space();
    forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(tasks));
    noop = rt.register_task("noop", [](TaskContext&) {});
  }

  double issue_us_per_task(int64_t tasks, int launches, bool traced) {
    IndexLauncher launcher;
    launcher.task = noop;
    launcher.domain = Domain::line(tasks);
    launcher.args = {{region, blocks, ProjectionFunctor::identity(1), {0},
                      Privilege::kReadWrite, ReductionOp::kNone}};
    // Warmup launch (captures the trace when tracing is used).
    if (traced) rt.begin_trace(1);
    rt.execute_index(launcher);
    if (traced) rt.end_trace(1);
    rt.wait_all();

    Stopwatch watch;
    for (int l = 0; l < launches; ++l) {
      if (traced) rt.begin_trace(1);
      rt.execute_index(launcher);
      if (traced) rt.end_trace(1);
    }
    rt.wait_all();
    return watch.elapsed_us() / static_cast<double>(launches) /
           static_cast<double>(tasks);
  }
};

}  // namespace

int main() {
  const int64_t task_counts[] = {64, 256, 1024};
  const int launches = 20;

  std::printf("Ablation: real-runtime issuance+analysis overhead, us per task\n");
  std::printf("%-34s", "configuration");
  for (int64_t t : task_counts) std::printf("%10lld", static_cast<long long>(t));
  std::printf("   (tasks per launch)\n");

  std::string rows_json = "[";
  auto row = [&](const char* name, bool idx, bool traced) {
    std::printf("%-34s", name);
    if (rows_json.size() > 1) rows_json += ',';
    rows_json += "{\"label\": " + bench::BenchJson::quote(name) +
                 ", \"us_per_task\": [";
    for (int64_t t : task_counts) {
      RuntimeConfig cfg;
      cfg.enable_index_launches = idx;
      cfg.workers = 2;
      Setup setup(cfg, t);
      const double us = setup.issue_us_per_task(t, launches, traced);
      std::printf("%10.2f", us);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.6g", t == task_counts[0] ? "" : ",", us);
      rows_json += buf;
    }
    rows_json += "]}";
    std::printf("\n");
  };

  row("index launch", true, false);
  row("index launch + tracing", true, true);
  row("task loop (No IDX)", false, false);
  rows_json += ']';
  std::printf(
      "expected: the index launch's per-task cost falls with |D| (one bulk "
      "call amortized); the task loop pays a full runtime call per task.\n");

  bench::BenchJson payload;
  std::string counts = "[";
  for (int64_t t : task_counts) {
    if (counts.size() > 1) counts += ',';
    counts += std::to_string(t);
  }
  counts += ']';
  payload.raw("tasks_per_launch", std::move(counts));
  payload.field("launches", launches);
  payload.raw("rows", std::move(rows_json));
  bench::write_bench_json("ablation_runtime_overhead", std::move(payload));
  return 0;
}
