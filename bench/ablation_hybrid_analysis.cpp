// Ablation: what the *hybrid* design buys over an always-dynamic analysis.
// For statically dischargeable launches (identity/affine functors) the
// hybrid analysis is O(1) — it never touches the launch domain — while a
// pure-dynamic design pays the O(|D|) bitmask loop on every launch. For
// residual functors (modular), both designs pay the same dynamic cost.
#include <cstdio>

#include "analysis/hybrid.hpp"
#include "support/stats.hpp"

using namespace idxl;

namespace {

double measure_us(const ProjectionFunctor& f, int64_t domain_size, bool force_dynamic) {
  const Domain domain = Domain::line(domain_size);
  const Rect colors = Rect::line(domain_size);
  CheckArg arg;
  arg.functor = &f;
  arg.color_space = colors;
  arg.partition_disjoint = true;
  arg.partition_uid = 1;
  arg.collection_uid = 1;
  arg.priv = Privilege::kWrite;
  const std::vector<CheckArg> args = {arg};

  RunningStats stats;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    if (force_dynamic) {
      // A design without the static half: always run Listing 3.
      const auto r = dynamic_cross_check(args, domain);
      IDXL_ASSERT(r.safe);
    } else {
      const auto report = analyze_launch_safety(args, domain);
      IDXL_ASSERT(report.safe());
    }
    stats.add(watch.elapsed_us());
  }
  return stats.mean();
}

}  // namespace

int main() {
  const int64_t sizes[] = {1'000, 10'000, 100'000, 1'000'000};

  std::printf("Ablation: hybrid (static-first) vs always-dynamic analysis (us)\n");
  std::printf("%-34s", "Launch / analysis");
  for (int64_t s : sizes) std::printf("%12lld", static_cast<long long>(s));
  std::printf("\n");

  const auto identity = ProjectionFunctor::identity(1);
  const auto modular = ProjectionFunctor::modular1d(5, 1'000'000);

  std::printf("%-34s", "identity, hybrid (static hit)");
  for (int64_t s : sizes) std::printf("%12.2f", measure_us(identity, s, false));
  std::printf("\n%-34s", "identity, always-dynamic");
  for (int64_t s : sizes) std::printf("%12.2f", measure_us(identity, s, true));
  std::printf("\n%-34s", "modular, hybrid (dynamic path)");
  for (int64_t s : sizes) std::printf("%12.2f", measure_us(modular, s, false));
  std::printf("\n%-34s", "modular, always-dynamic");
  for (int64_t s : sizes) std::printf("%12.2f", measure_us(modular, s, true));
  std::printf(
      "\nexpected: the static hit stays O(1) as |D| grows; the other three "
      "rows grow linearly and match each other.\n");
  return 0;
}
