// Ablation: what the *hybrid* design buys over an always-dynamic analysis.
// For statically dischargeable launches (identity/affine functors) the
// hybrid analysis is O(1) — it never touches the launch domain — while a
// pure-dynamic design pays the O(|D|) bitmask loop on every launch. For
// residual functors (modular), both designs pay the same dynamic cost.
#include <cstdio>

#include "analysis/hybrid.hpp"
#include "fig_common.hpp"
#include "support/stats.hpp"

using namespace idxl;

namespace {

std::vector<CheckArg> one_write_arg(const ProjectionFunctor& f, const Rect& colors) {
  CheckArg arg;
  arg.functor = &f;
  arg.color_space = colors;
  arg.partition_disjoint = true;
  arg.partition_uid = 1;
  arg.collection_uid = 1;
  arg.priv = Privilege::kWrite;
  return {arg};
}

double measure_us(const ProjectionFunctor& f, int64_t domain_size, bool force_dynamic) {
  const Domain domain = Domain::line(domain_size);
  const Rect colors = Rect::line(domain_size);
  const std::vector<CheckArg> args = one_write_arg(f, colors);

  RunningStats stats;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    if (force_dynamic) {
      // A design without the static half: always run Listing 3.
      const auto r = dynamic_cross_check(args, domain);
      IDXL_ASSERT(r.safe);
    } else {
      const auto report = analyze_launch_safety(args, domain);
      IDXL_ASSERT(report.safe());
    }
    stats.add(watch.elapsed_us());
  }
  return stats.mean();
}

/// Repeated launches of one site, as an iterative workload issues them. With
/// the cache the first rep misses and every later rep is a lookup; without
/// it every rep pays the full (here: dynamic) analysis again.
double measure_repeat_us(const ProjectionFunctor& f, int64_t domain_size,
                         bool with_cache) {
  const Domain domain = Domain::line(domain_size);
  const Rect colors = Rect::line(domain_size);
  const std::vector<CheckArg> args = one_write_arg(f, colors);

  VerdictCache cache;  // persists across reps, like a Runtime's cache
  AnalysisOptions options;
  if (with_cache) options.verdict_cache = &cache;

  RunningStats stats;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    const auto report = analyze_launch_safety(args, domain, options);
    IDXL_ASSERT(report.safe());
    stats.add(watch.elapsed_us());
  }
  if (with_cache) IDXL_ASSERT(cache.counters().hits == 4);
  return stats.mean();
}

}  // namespace

int main() {
  const std::vector<int64_t> sizes = {1'000, 10'000, 100'000, 1'000'000};

  const auto identity = ProjectionFunctor::identity(1);
  const auto modular = ProjectionFunctor::modular1d(5, 1'000'000);

  struct Row {
    const char* label;
    std::vector<double> us;
  };
  std::vector<Row> analysis_rows = {
      {"identity, hybrid (static hit)", {}},
      {"identity, always-dynamic", {}},
      {"modular, hybrid (dynamic path)", {}},
      {"modular, always-dynamic", {}},
  };
  for (int64_t s : sizes) {
    analysis_rows[0].us.push_back(measure_us(identity, s, false));
    analysis_rows[1].us.push_back(measure_us(identity, s, true));
    analysis_rows[2].us.push_back(measure_us(modular, s, false));
    analysis_rows[3].us.push_back(measure_us(modular, s, true));
  }

  std::printf("Ablation: hybrid (static-first) vs always-dynamic analysis (us)\n");
  std::printf("%-34s", "Launch / analysis");
  for (int64_t s : sizes) std::printf("%12lld", static_cast<long long>(s));
  std::printf("\n");
  for (const Row& row : analysis_rows) {
    std::printf("%-34s", row.label);
    for (double v : row.us) std::printf("%12.2f", v);
    std::printf("\n");
  }
  std::printf(
      "expected: the static hit stays O(1) as |D| grows; the other three "
      "rows grow linearly and match each other.\n");

  // Verdict-cache ablation on the worst case for re-analysis: a modular
  // functor whose verdict needs the O(|D|) dynamic check. The mean over 5
  // reps amortizes one miss against four cache hits.
  std::vector<Row> cache_rows = {
      {"modular, cache off", {}},
      {"modular, cache on", {}},
  };
  for (int64_t s : sizes) {
    cache_rows[0].us.push_back(measure_repeat_us(modular, s, false));
    cache_rows[1].us.push_back(measure_repeat_us(modular, s, true));
  }
  std::printf("\nVerdict cache, repeated launches of one modular site (us, mean of 5)\n");
  std::printf("%-34s", "Launch / cache");
  for (int64_t s : sizes) std::printf("%12lld", static_cast<long long>(s));
  std::printf("\n");
  for (const Row& row : cache_rows) {
    std::printf("%-34s", row.label);
    for (double v : row.us) std::printf("%12.2f", v);
    std::printf("\n");
  }
  std::printf(
      "expected: cache-off matches the dynamic-path row above; cache-on "
      "approaches one fifth of it (the single miss), since hits cost only a "
      "key build and a map lookup.\n");

  auto rows_json = [](const std::vector<Row>& rows) {
    std::string out = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"label\": " + bench::BenchJson::quote(rows[i].label) +
             ", \"us\": [";
      for (std::size_t j = 0; j < rows[i].us.size(); ++j) {
        if (j != 0) out += ',';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", rows[i].us[j]);
        out += buf;
      }
      out += "]}";
    }
    out += ']';
    return out;
  };
  bench::BenchJson payload;
  std::string size_list = "[";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i != 0) size_list += ',';
    size_list += std::to_string(sizes[i]);
  }
  size_list += ']';
  payload.raw("domain_sizes", std::move(size_list));
  payload.raw("analysis_us", rows_json(analysis_rows));
  payload.raw("verdict_cache_us", rows_json(cache_rows));
  bench::write_bench_json("ablation_hybrid_analysis", std::move(payload));
  return 0;
}
