// Figure 9: Soleil-X (fluid only) weak scaling, iterations/s per node,
// DCR+IDX vs DCR+No-IDX.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  std::vector<sim::SimConfig> configs(2);
  configs[0].dcr = true;
  configs[0].idx = true;
  configs[1].dcr = true;
  configs[1].idx = false;

  bench::run_figure(
      "fig9", "Figure 9: Soleil-X fluid-only weak scaling", "iterations/s per node",
      [](uint32_t n) { return apps::soleil_fluid_spec(n); }, configs,
      /*max_nodes=*/512,
      [](const sim::SimResult& r, uint32_t) { return 1.0 / r.seconds_per_iteration; },
      "index launches improve parallel efficiency (the paper reports 78% at "
      "512 nodes) and keep the code scaling to higher node counts.");
  return 0;
}
