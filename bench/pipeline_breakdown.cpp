// Pipeline breakdown (the quantitative companion to the paper's Figs. 2/3):
// for Circuit weak scaling at three node counts, show where runtime-
// processor time goes per configuration — summed busy seconds per pipeline
// stage across all nodes and timed iterations. The IDX columns' issuance
// stays flat while the No-IDX columns' issuance scales with total task
// count; distribution only appears where the configuration actually moves
// task descriptors.
#include <algorithm>
#include <chrono>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/circuit.hpp"
#include "apps/sim_specs.hpp"
#include "fig_common.hpp"
#include "functor/expr.hpp"
#include "region/partition_ops.hpp"
#include "sim/experiment.hpp"

using namespace idxl;
using namespace idxl::sim;

// ---------- issue-phase microbenchmark (two-tier dependence analysis) ----------
//
// How long does the issuing thread spend per point when issuing a safe
// disjoint-partition index launch at |D| = 1024? Compares the group-level
// dependence path (one summary test per argument, per-color walks, chunked
// worker-side closure building) against the same program with
// enable_group_analysis = false (per-point tracker scans). Writes machine-
// readable results to BENCH_issue.json (see bench_json_path() for the
// override knobs), including the measured cost of the on-by-default flight
// recorder on the same issue path.

struct IssueBench {
  double issue_s = 0;        // issuing-thread seconds across timed launches
  double points_per_sec = 0;
  uint64_t group_edges = 0;
  uint64_t dependence_edges = 0;
  uint64_t dependence_tests = 0;
  obs::MetricsSnapshot metrics;  // the runtime's registry after the run
};

static IssueBench bench_issue_phase(bool group, int64_t pieces, int iters,
                                    bool flight_recorder = true) {
  RuntimeConfig cfg;
  cfg.enable_group_analysis = group;
  cfg.enable_flight_recorder = flight_recorder;
  Runtime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(pieces * 16));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(pieces));
  const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(pieces))
          .with_task(noop)
          .region(region, blocks, ProjectionFunctor::identity(1), {fv},
                  Privilege::kReadWrite);

  for (int i = 0; i < 3; ++i) rt.execute_index(launcher);  // warm caches/tables
  rt.wait_all();

  // Pause the workers for the timed loop so the measurement isolates the
  // issuing thread (analysis, dependence wiring, node creation) — otherwise
  // worker execution shares the cores and pollutes the issue-phase number.
  // Time with the issuing thread's CPU clock, not wall clock: on a shared
  // machine preemption by unrelated processes inflates wall time by far
  // more than the effects this microbenchmark resolves.
  rt.pool().pause();
  const RuntimeStats before = rt.stats();
  timespec t0{}, t1{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
  for (int i = 0; i < iters; ++i) rt.execute_index(launcher);
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
  rt.pool().resume();
  rt.wait_all();
  const RuntimeStats after = rt.stats();

  IssueBench r;
  r.issue_s = static_cast<double>(t1.tv_sec - t0.tv_sec) +
              static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
  r.points_per_sec = static_cast<double>(iters) * static_cast<double>(pieces) / r.issue_s;
  r.group_edges = after.group_edges - before.group_edges;
  r.dependence_edges = after.dependence_edges - before.dependence_edges;
  r.dependence_tests = after.dependence_tests - before.dependence_tests;
  r.metrics = rt.metrics().snapshot();
  return r;
}

// ---------- inter-launch interference phase ----------
//
// Residue-class writer chain: `stride` launches over one disjoint partition,
// launch j writing colors ≡ j (mod stride) of the same field. Every launch
// pair shares the field, so without the inter-launch analysis each launch
// pays the cross-launch group walk; with it, the analyzer proves the images
// separated (certified kDisjoint) once per pair, and after the first epoch
// the cached verdicts let every later epoch skip all stride-1 walks with
// zero fresh pair tests.

struct InterLaunchBench {
  double issue_s = 0;          // issuing-thread seconds, steady-state epoch
  uint64_t pair_tests = 0;     // fresh analyzer runs, cumulative (warm + timed)
  uint64_t steady_tests = 0;   // fresh analyzer runs in the timed epoch alone
  uint64_t skips = 0;          // cross-launch walks skipped in the timed epoch
};

static InterLaunchBench bench_inter_launch(bool analysis, int64_t pieces,
                                           int stride) {
  RuntimeConfig cfg;
  cfg.enable_interference_analysis = analysis;
  Runtime rt(cfg);
  auto& forest = rt.forest();
  const int64_t colors = pieces * stride;
  const IndexSpaceId is = forest.create_index_space(Domain::line(colors * 4));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(colors));
  const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});
  std::vector<IndexLauncher> launchers;
  launchers.reserve(static_cast<std::size_t>(stride));
  for (int j = 0; j < stride; ++j)
    launchers.push_back(
        IndexLauncher::over(Domain::line(pieces))
            .with_task(noop)
            .region(region, blocks,
                    ProjectionFunctor::symbolic({make_add(
                        make_mul(make_const(stride), make_coord(0)),
                        make_const(j))}),
                    {fv}, Privilege::kWrite));

  // Warm epoch: safety verdicts and all stride*(stride-1)/2 pair verdicts
  // land in their caches — the cost real programs pay once per launch-site
  // set. The fence clears the interference history; the pair cache persists.
  for (const IndexLauncher& l : launchers) rt.execute_index(l);
  rt.wait_all();

  // Best-of-N steady-state epochs: one epoch is a few hundred microseconds,
  // well inside scheduler-noise territory, and the CI gate compares the
  // on/off epochs as a ratio. Counter deltas come from the fastest epoch
  // (every steady epoch produces identical counts anyway).
  InterLaunchBench r;
  const int epochs = 7;
  for (int e = 0; e < epochs; ++e) {
    rt.pool().pause();
    const RuntimeStats before = rt.stats();
    timespec t0{}, t1{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
    for (const IndexLauncher& l : launchers) rt.execute_index(l);
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
    const RuntimeStats after = rt.stats();
    rt.pool().resume();
    rt.wait_all();
    const double s = static_cast<double>(t1.tv_sec - t0.tv_sec) +
                     static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
    if (e == 0 || s < r.issue_s) {
      r.issue_s = s;
      r.pair_tests = after.interference_pair_tests;
      r.steady_tests =
          after.interference_pair_tests - before.interference_pair_tests;
      r.skips = after.interference_skips - before.interference_skips;
    }
  }
  return r;
}

// Best-of-N repetitions: single-run timings on a loaded (or single-core)
// machine carry first-run bias — page faults, allocator growth, cold
// branch predictors — that dwarfs the effects being measured. The minimum
// over several fresh runtimes is the standard noise-resistant estimator
// for a lower-bound cost.
static IssueBench best_of(int reps, bool group, int64_t pieces, int iters,
                          bool flight_recorder = true) {
  IssueBench best;
  for (int r = 0; r < reps; ++r) {
    IssueBench b = bench_issue_phase(group, pieces, iters, flight_recorder);
    if (r == 0 || b.issue_s < best.issue_s) best = std::move(b);
  }
  return best;
}

static void issue_phase_breakdown() {
  const int64_t pieces = 1024;
  const int iters = 50;
  const int reps = 5;
  const IssueBench grp = best_of(reps, /*group=*/true, pieces, iters);
  const IssueBench pp = best_of(reps, /*group=*/false, pieces, iters);
  const double speedup = pp.issue_s / grp.issue_s;

  std::printf("\nIssue-phase microbenchmark: |D| = %lld, %d timed launches, "
              "disjoint partition, identity functor\n",
              static_cast<long long>(pieces), iters);
  std::printf("%-12s%14s%16s%16s%16s%14s\n", "config", "issue s", "points/s",
              "launch edges", "dep edges", "dep tests");
  std::printf("%-12s%14.4f%16.0f%16llu%16llu%14llu\n", "group", grp.issue_s,
              grp.points_per_sec, static_cast<unsigned long long>(grp.group_edges),
              static_cast<unsigned long long>(grp.dependence_edges),
              static_cast<unsigned long long>(grp.dependence_tests));
  std::printf("%-12s%14.4f%16.0f%16llu%16llu%14llu\n", "per-point", pp.issue_s,
              pp.points_per_sec, static_cast<unsigned long long>(pp.group_edges),
              static_cast<unsigned long long>(pp.dependence_edges),
              static_cast<unsigned long long>(pp.dependence_tests));
  std::printf("issue-phase speedup (per point): %.2fx\n", speedup);

  // Inter-launch phase: pair-test counts and walk skips with the analysis
  // on vs off, on the residue-class writer chain (16 launches per epoch).
  const int inter_stride = 16;
  const int64_t inter_pieces = 512;
  const InterLaunchBench il_on =
      bench_inter_launch(/*analysis=*/true, inter_pieces, inter_stride);
  const InterLaunchBench il_off =
      bench_inter_launch(/*analysis=*/false, inter_pieces, inter_stride);
  std::printf("\nInter-launch interference phase: %d residue-class writers, "
              "%lld colors each, one shared field\n",
              inter_stride, static_cast<long long>(inter_pieces));
  std::printf("%-12s%14s%16s%16s%14s\n", "config", "issue s", "pair tests",
              "steady tests", "walks skipped");
  std::printf("%-12s%14.4f%16llu%16llu%14llu\n", "analysis", il_on.issue_s,
              static_cast<unsigned long long>(il_on.pair_tests),
              static_cast<unsigned long long>(il_on.steady_tests),
              static_cast<unsigned long long>(il_on.skips));
  std::printf("%-12s%14.4f%16llu%16llu%14llu\n", "baseline", il_off.issue_s,
              static_cast<unsigned long long>(il_off.pair_tests),
              static_cast<unsigned long long>(il_off.steady_tests),
              static_cast<unsigned long long>(il_off.skips));

  // What does the on-by-default flight recorder cost on this exact path?
  // Toggle recording on and off on ONE runtime (Runtime::
  // set_flight_recording), interleaved at a fine grain — 5-launch
  // segments, hundreds of them — and sum each configuration's
  // issuing-thread CPU time. Machine-load bursts last far longer than a
  // segment, so they contaminate both configurations equally and cancel
  // in the ratio; coarse schemes (fresh process or long segment per
  // configuration, wall clocks, best-of-N) all carry noise an order of
  // magnitude above the effect measured (the acceptance budget is 5%).
  // Per-point events are constructed inside the chunk jobs on the
  // workers, so the issuing thread only pays one clock read per launch
  // plus the launch-level records.
  const int oh_trials = 3;
  const int oh_segments = 400;  // alternating on/off, 5 launches each
  double on_s = 0, off_s = 0;
  std::vector<double> trial_pcts;
  {
    RuntimeConfig cfg;
    cfg.enable_group_analysis = true;
    cfg.enable_flight_recorder = true;
    Runtime rt(cfg);
    auto& forest = rt.forest();
    const IndexSpaceId is = forest.create_index_space(Domain::line(pieces * 16));
    const FieldSpaceId fs = forest.create_field_space();
    const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
    const RegionId region = forest.create_region(is, fs);
    const PartitionId blocks = partition_equal(forest, is, Rect::line(pieces));
    const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});
    const IndexLauncher launcher =
        IndexLauncher::over(Domain::line(pieces))
            .with_task(noop)
            .region(region, blocks, ProjectionFunctor::identity(1), {fv},
                    Privilege::kReadWrite);
    for (int i = 0; i < 10; ++i) rt.execute_index(launcher);
    rt.wait_all();

    std::vector<std::pair<double, double>> trials;  // (on_s, off_s)
    for (int trial = 0; trial < oh_trials; ++trial) {
      double on = 0, off = 0;
      for (int seg = 0; seg < oh_segments; ++seg) {
        const bool recorder_on = (seg % 2 == 0);
        rt.wait_all();  // quiesce: set_flight_recording needs an idle runtime
        rt.set_flight_recording(recorder_on);
        timespec t0{}, t1{};
        clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
        for (int i = 0; i < 5; ++i) rt.execute_index(launcher);
        clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
        (recorder_on ? on : off) +=
            static_cast<double>(t1.tv_sec - t0.tv_sec) +
            static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
      }
      rt.wait_all();
      trials.emplace_back(on, off);
      trial_pcts.push_back((on / off - 1.0) * 100.0);
    }
    // Median trial: robust to one trial landing inside a load regime shift.
    std::vector<double> sorted = trial_pcts;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    for (std::size_t i = 0; i < trial_pcts.size(); ++i) {
      if (trial_pcts[i] == median) {
        on_s = trials[i].first;
        off_s = trials[i].second;
        break;
      }
    }
  }
  const double recorder_overhead_pct = (on_s / off_s - 1.0) * 100.0;
  std::printf("flight-recorder issue-phase overhead: %.2f%% "
              "(median of %d interleaved trials: on %.4fs vs off %.4fs; "
              "all trials:", recorder_overhead_pct, oh_trials, on_s, off_s);
  for (double pct : trial_pcts) std::printf(" %+.2f%%", pct);
  std::printf(")\n");

  auto config_json = [](const IssueBench& r) {
    bench::BenchJson b;
    b.field("issue_s", r.issue_s)
        .field("points_per_sec", r.points_per_sec)
        .field("group_edges", r.group_edges)
        .field("dependence_edges", r.dependence_edges)
        .field("dependence_tests", r.dependence_tests);
    std::string out = "{";
    for (std::size_t i = 0; i < b.fields().size(); ++i) {
      if (i != 0) out += ", ";
      out += bench::BenchJson::quote(b.fields()[i].first) + ": " + b.fields()[i].second;
    }
    out += '}';
    return out;
  };
  bench::BenchJson payload;
  payload.field("domain", static_cast<int64_t>(pieces))
      .field("launches", iters)
      .raw("group", config_json(grp))
      .raw("per_point", config_json(pp))
      .field("issue_speedup", speedup)
      .field("interference_pair_tests", il_on.pair_tests)
      .field("interference_steady_pair_tests", il_on.steady_tests)
      .field("interference_pairs_skipped", il_on.skips)
      .field("interference_pair_tests_off", il_off.pair_tests)
      .field("interference_pairs_skipped_off", il_off.skips)
      .field("interference_issue_s_on", il_on.issue_s)
      .field("interference_issue_s_off", il_off.issue_s)
      .field("flight_recorder_on_s", on_s)
      .field("flight_recorder_off_s", off_s)
      .field("flight_recorder_overhead_pct", recorder_overhead_pct);
  // The metrics snapshot comes from the runtime that ran the reported
  // (group, recorder-on) configuration.
  bench::write_bench_json("issue", std::move(payload), grp.metrics);
}

// The simulator predicts the stage breakdown; the in-process runtime can
// *measure* one. Run the real Circuit app under the profiler and print busy
// time per pipeline event; with IDXL_TRACE=<path> in the environment, also
// write a Chrome-trace JSON of the run.
static void measured_breakdown() {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  Runtime rt(cfg);
  apps::CircuitParams params;
  params.pieces = 16;
  params.iterations = 10;
  apps::CircuitApp app(rt, params);
  app.run(params.iterations);

  std::printf("\nMeasured on the in-process runtime (Circuit, %lld pieces, "
              "%d iterations):\n",
              static_cast<long long>(params.pieces), params.iterations);
  std::printf("%s", rt.profiler().summary().c_str());
  if (const char* path = std::getenv("IDXL_TRACE")) {
    rt.profiler().write_chrome_trace(path);
    std::printf("wrote Chrome trace to %s\n", path);
  }
}

int main() {
  for (uint32_t nodes : {16u, 256u, 1024u}) {
    std::printf("\nCircuit weak scaling, %u nodes — busy seconds by stage "
                "(all nodes, 10 iterations)\n",
                nodes);
    std::printf("%-18s%12s%12s%12s%12s%12s\n", "config", "issue+log", "dynchk",
                "distribute", "physical", "kernel");
    for (const SimConfig& base : four_configs()) {
      SimConfig config = base;
      config.nodes = nodes;
      const SimResult r = simulate(apps::circuit_weak_spec(nodes), config);
      std::printf("%-18s%12.4f%12.4f%12.4f%12.4f%12.1f\n", config.label().c_str(),
                  r.stages.issue_s, r.stages.check_s, r.stages.distribution_s,
                  r.stages.physical_s, r.stages.kernel_s);
    }
  }
  std::printf(
      "\nexpected: IDX issuance is per-launch (flat in total task count); "
      "No-IDX issuance grows ~linearly with nodes under DCR (replicated) and "
      "concentrates on node 0 without DCR.\n");

  issue_phase_breakdown();
  measured_breakdown();
  return 0;
}
