// Pipeline breakdown (the quantitative companion to the paper's Figs. 2/3):
// for Circuit weak scaling at three node counts, show where runtime-
// processor time goes per configuration — summed busy seconds per pipeline
// stage across all nodes and timed iterations. The IDX columns' issuance
// stays flat while the No-IDX columns' issuance scales with total task
// count; distribution only appears where the configuration actually moves
// task descriptors.
#include <cstdio>
#include <cstdlib>

#include "apps/circuit.hpp"
#include "apps/sim_specs.hpp"
#include "sim/experiment.hpp"

using namespace idxl;
using namespace idxl::sim;

// The simulator predicts the stage breakdown; the in-process runtime can
// *measure* one. Run the real Circuit app under the profiler and print busy
// time per pipeline event; with IDXL_TRACE=<path> in the environment, also
// write a Chrome-trace JSON of the run.
static void measured_breakdown() {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  Runtime rt(cfg);
  apps::CircuitParams params;
  params.pieces = 16;
  params.iterations = 10;
  apps::CircuitApp app(rt, params);
  app.run(params.iterations);

  std::printf("\nMeasured on the in-process runtime (Circuit, %lld pieces, "
              "%d iterations):\n",
              static_cast<long long>(params.pieces), params.iterations);
  std::printf("%s", rt.profiler().summary().c_str());
  if (const char* path = std::getenv("IDXL_TRACE")) {
    rt.profiler().write_chrome_trace(path);
    std::printf("wrote Chrome trace to %s\n", path);
  }
}

int main() {
  for (uint32_t nodes : {16u, 256u, 1024u}) {
    std::printf("\nCircuit weak scaling, %u nodes — busy seconds by stage "
                "(all nodes, 10 iterations)\n",
                nodes);
    std::printf("%-18s%12s%12s%12s%12s%12s\n", "config", "issue+log", "dynchk",
                "distribute", "physical", "kernel");
    for (const SimConfig& base : four_configs()) {
      SimConfig config = base;
      config.nodes = nodes;
      const SimResult r = simulate(apps::circuit_weak_spec(nodes), config);
      std::printf("%-18s%12.4f%12.4f%12.4f%12.4f%12.1f\n", config.label().c_str(),
                  r.stages.issue_s, r.stages.check_s, r.stages.distribution_s,
                  r.stages.physical_s, r.stages.kernel_s);
    }
  }
  std::printf(
      "\nexpected: IDX issuance is per-launch (flat in total task count); "
      "No-IDX issuance grows ~linearly with nodes under DCR (replicated) and "
      "concentrates on node 0 without DCR.\n");

  measured_breakdown();
  return 0;
}
