// Pipeline breakdown (the quantitative companion to the paper's Figs. 2/3):
// for Circuit weak scaling at three node counts, show where runtime-
// processor time goes per configuration — summed busy seconds per pipeline
// stage across all nodes and timed iterations. The IDX columns' issuance
// stays flat while the No-IDX columns' issuance scales with total task
// count; distribution only appears where the configuration actually moves
// task descriptors.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/circuit.hpp"
#include "apps/sim_specs.hpp"
#include "region/partition_ops.hpp"
#include "sim/experiment.hpp"

using namespace idxl;
using namespace idxl::sim;

// ---------- issue-phase microbenchmark (two-tier dependence analysis) ----------
//
// How long does the issuing thread spend per point when issuing a safe
// disjoint-partition index launch at |D| = 1024? Compares the group-level
// dependence path (one summary test per argument, per-color walks, chunked
// worker-side closure building) against the same program with
// enable_group_analysis = false (per-point tracker scans). Writes machine-
// readable results to BENCH_issue.json (override with IDXL_BENCH_JSON).

struct IssueBench {
  double issue_s = 0;        // issuing-thread seconds across timed launches
  double points_per_sec = 0;
  uint64_t group_edges = 0;
  uint64_t dependence_edges = 0;
  uint64_t dependence_tests = 0;
};

static IssueBench bench_issue_phase(bool group, int64_t pieces, int iters) {
  RuntimeConfig cfg;
  cfg.enable_group_analysis = group;
  Runtime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(pieces * 16));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(pieces));
  const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(pieces))
          .with_task(noop)
          .region(region, blocks, ProjectionFunctor::identity(1), {fv},
                  Privilege::kReadWrite);

  for (int i = 0; i < 3; ++i) rt.execute_index(launcher);  // warm caches/tables
  rt.wait_all();

  const RuntimeStats before = rt.stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) rt.execute_index(launcher);
  const auto t1 = std::chrono::steady_clock::now();
  rt.wait_all();
  const RuntimeStats after = rt.stats();

  IssueBench r;
  r.issue_s = std::chrono::duration<double>(t1 - t0).count();
  r.points_per_sec = static_cast<double>(iters) * static_cast<double>(pieces) / r.issue_s;
  r.group_edges = after.group_edges - before.group_edges;
  r.dependence_edges = after.dependence_edges - before.dependence_edges;
  r.dependence_tests = after.dependence_tests - before.dependence_tests;
  return r;
}

static void issue_phase_breakdown() {
  const int64_t pieces = 1024;
  const int iters = 50;
  const IssueBench grp = bench_issue_phase(/*group=*/true, pieces, iters);
  const IssueBench pp = bench_issue_phase(/*group=*/false, pieces, iters);
  const double speedup = pp.issue_s / grp.issue_s;

  std::printf("\nIssue-phase microbenchmark: |D| = %lld, %d timed launches, "
              "disjoint partition, identity functor\n",
              static_cast<long long>(pieces), iters);
  std::printf("%-12s%14s%16s%16s%16s%14s\n", "config", "issue s", "points/s",
              "launch edges", "dep edges", "dep tests");
  std::printf("%-12s%14.4f%16.0f%16llu%16llu%14llu\n", "group", grp.issue_s,
              grp.points_per_sec, static_cast<unsigned long long>(grp.group_edges),
              static_cast<unsigned long long>(grp.dependence_edges),
              static_cast<unsigned long long>(grp.dependence_tests));
  std::printf("%-12s%14.4f%16.0f%16llu%16llu%14llu\n", "per-point", pp.issue_s,
              pp.points_per_sec, static_cast<unsigned long long>(pp.group_edges),
              static_cast<unsigned long long>(pp.dependence_edges),
              static_cast<unsigned long long>(pp.dependence_tests));
  std::printf("issue-phase speedup (per point): %.2fx\n", speedup);

  const char* path = std::getenv("IDXL_BENCH_JSON");
  if (path == nullptr) path = "BENCH_issue.json";
  if (FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"domain\": %lld,\n"
                 "  \"launches\": %d,\n"
                 "  \"group\": {\"issue_s\": %.6f, \"points_per_sec\": %.0f, "
                 "\"group_edges\": %llu, \"dependence_edges\": %llu, "
                 "\"dependence_tests\": %llu},\n"
                 "  \"per_point\": {\"issue_s\": %.6f, \"points_per_sec\": %.0f, "
                 "\"group_edges\": %llu, \"dependence_edges\": %llu, "
                 "\"dependence_tests\": %llu},\n"
                 "  \"issue_speedup\": %.3f\n"
                 "}\n",
                 static_cast<long long>(pieces), iters, grp.issue_s,
                 grp.points_per_sec, static_cast<unsigned long long>(grp.group_edges),
                 static_cast<unsigned long long>(grp.dependence_edges),
                 static_cast<unsigned long long>(grp.dependence_tests), pp.issue_s,
                 pp.points_per_sec, static_cast<unsigned long long>(pp.group_edges),
                 static_cast<unsigned long long>(pp.dependence_edges),
                 static_cast<unsigned long long>(pp.dependence_tests), speedup);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
}

// The simulator predicts the stage breakdown; the in-process runtime can
// *measure* one. Run the real Circuit app under the profiler and print busy
// time per pipeline event; with IDXL_TRACE=<path> in the environment, also
// write a Chrome-trace JSON of the run.
static void measured_breakdown() {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  Runtime rt(cfg);
  apps::CircuitParams params;
  params.pieces = 16;
  params.iterations = 10;
  apps::CircuitApp app(rt, params);
  app.run(params.iterations);

  std::printf("\nMeasured on the in-process runtime (Circuit, %lld pieces, "
              "%d iterations):\n",
              static_cast<long long>(params.pieces), params.iterations);
  std::printf("%s", rt.profiler().summary().c_str());
  if (const char* path = std::getenv("IDXL_TRACE")) {
    rt.profiler().write_chrome_trace(path);
    std::printf("wrote Chrome trace to %s\n", path);
  }
}

int main() {
  for (uint32_t nodes : {16u, 256u, 1024u}) {
    std::printf("\nCircuit weak scaling, %u nodes — busy seconds by stage "
                "(all nodes, 10 iterations)\n",
                nodes);
    std::printf("%-18s%12s%12s%12s%12s%12s\n", "config", "issue+log", "dynchk",
                "distribute", "physical", "kernel");
    for (const SimConfig& base : four_configs()) {
      SimConfig config = base;
      config.nodes = nodes;
      const SimResult r = simulate(apps::circuit_weak_spec(nodes), config);
      std::printf("%-18s%12.4f%12.4f%12.4f%12.4f%12.1f\n", config.label().c_str(),
                  r.stages.issue_s, r.stages.check_s, r.stages.distribution_s,
                  r.stages.physical_s, r.stages.kernel_s);
    }
  }
  std::printf(
      "\nexpected: IDX issuance is per-launch (flat in total task count); "
      "No-IDX issuance grows ~linearly with nodes under DCR (replicated) and "
      "concentrates on node 0 without DCR.\n");

  issue_phase_breakdown();
  measured_breakdown();
  return 0;
}
