#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/sim_specs.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace idxl::bench {

// ---------------------------------------------------------------------------
// Unified bench artifacts: every bench binary writes BENCH_<name>.json with
// the same envelope —
//   {"name": "<name>", <bench-specific payload>, "metrics": {...}}
// — where "metrics" is an obs::MetricsRegistry snapshot (the bench's own
// Runtime registry when it drives the real runtime, the global registry
// otherwise). CI uploads the whole BENCH_*.json set as artifacts.
// ---------------------------------------------------------------------------

/// Where `BENCH_<name>.json` lands: $IDXL_BENCH_JSON overrides the full
/// path, $IDXL_BENCH_DIR picks the directory, default is the cwd.
inline std::string bench_json_path(const std::string& name) {
  if (const char* p = std::getenv("IDXL_BENCH_JSON")) return p;
  std::string path;
  if (const char* dir = std::getenv("IDXL_BENCH_DIR")) {
    path = dir;
    if (!path.empty() && path.back() != '/') path += '/';
  }
  path += "BENCH_" + name + ".json";
  return path;
}

/// Ordered field accumulator for a BENCH_<name>.json payload. Scalar
/// field() overloads format the value; raw() takes a preformatted JSON
/// fragment (arrays, nested objects, a metrics snapshot).
class BenchJson {
 public:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  BenchJson& raw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
    return *this;
  }
  BenchJson& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  BenchJson& field(const std::string& key, uint64_t v) { return raw(key, std::to_string(v)); }
  BenchJson& field(const std::string& key, int64_t v) { return raw(key, std::to_string(v)); }
  BenchJson& field(const std::string& key, int v) { return raw(key, std::to_string(v)); }
  BenchJson& field(const std::string& key, const std::string& v) { return raw(key, quote(v)); }
  BenchJson& field(const std::string& key, const char* v) { return raw(key, quote(v)); }

  const std::vector<std::pair<std::string, std::string>>& fields() const { return fields_; }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write `BENCH_<name>.json`: the payload fields wrapped in the common
/// envelope, with `metrics` appended. Pass the snapshot of the Runtime that
/// actually ran the bench when there is one; the default global registry
/// keeps the schema uniform for simulator-only benches.
inline void write_bench_json(
    const std::string& name, BenchJson payload,
    const obs::MetricsSnapshot& metrics = obs::MetricsRegistry::global().snapshot()) {
  payload.raw("metrics", metrics.json());
  const std::string path = bench_json_path(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs("{\n", f);
  std::fprintf(f, "  \"name\": %s", BenchJson::quote(name).c_str());
  for (const auto& [key, value] : payload.fields())
    std::fprintf(f, ",\n  %s: %s", BenchJson::quote(key).c_str(), value.c_str());
  std::fputs("\n}\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// JSON for one figure's sweep: every series' (nodes, value) points.
inline std::string figure_series_json(const std::vector<sim::Series>& series) {
  std::string out = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"label\": " + BenchJson::quote(series[i].label) + ", \"points\": [";
    for (std::size_t j = 0; j < series[i].points.size(); ++j) {
      if (j != 0) out += ',';
      char buf[64];
      std::snprintf(buf, sizeof(buf), "[%u, %.6g]", series[i].points[j].first,
                    series[i].points[j].second);
      out += buf;
    }
    out += "]}";
  }
  out += ']';
  return out;
}

/// Emit BENCH_<name>.json for a printed figure (shared by run_figure and
/// the hand-rolled sweeps like the bulk-tracing ablation).
inline void write_figure_json(const std::string& name, const std::string& title,
                              const std::string& unit,
                              const std::vector<uint32_t>& nodes,
                              const std::vector<sim::Series>& series) {
  BenchJson payload;
  payload.field("title", title).field("unit", unit);
  std::string node_list = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) node_list += ',';
    node_list += std::to_string(nodes[i]);
  }
  node_list += ']';
  payload.raw("nodes", std::move(node_list));
  payload.raw("series", figure_series_json(series));
  write_bench_json(name, std::move(payload));
}

/// Shared driver for the scaling figures: sweep node counts over the given
/// configurations, print the paper-style series, append the shape notes the
/// original figure supports, and write BENCH_<name>.json.
inline void run_figure(const std::string& name, const std::string& title,
                       const std::string& unit,
                       const std::function<sim::AppSpec(uint32_t)>& app,
                       const std::vector<sim::SimConfig>& configs,
                       uint32_t max_nodes,
                       const std::function<double(const sim::SimResult&, uint32_t)>& metric,
                       const std::string& shape_note) {
  const auto nodes = sim::nodes_up_to(max_nodes);
  const auto series = sim::run_scaling_experiment(app, configs, nodes, metric);
  sim::print_figure(title, unit, nodes, series);
  if (!shape_note.empty()) std::printf("paper shape: %s\n", shape_note.c_str());
  write_figure_json(name, title, unit, nodes, series);
}

}  // namespace idxl::bench
