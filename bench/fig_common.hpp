#pragma once

#include <cstdio>
#include <string>

#include "apps/sim_specs.hpp"
#include "sim/experiment.hpp"

namespace idxl::bench {

/// Shared driver for the scaling figures: sweep node counts over the given
/// configurations, print the paper-style series, and append the shape notes
/// the original figure supports.
inline void run_figure(const std::string& title, const std::string& unit,
                       const std::function<sim::AppSpec(uint32_t)>& app,
                       const std::vector<sim::SimConfig>& configs,
                       uint32_t max_nodes,
                       const std::function<double(const sim::SimResult&, uint32_t)>& metric,
                       const std::string& shape_note) {
  const auto nodes = sim::nodes_up_to(max_nodes);
  const auto series = sim::run_scaling_experiment(app, configs, nodes, metric);
  sim::print_figure(title, unit, nodes, series);
  if (!shape_note.empty()) std::printf("paper shape: %s\n", shape_note.c_str());
}

}  // namespace idxl::bench
