// Figure 5: Circuit weak scaling, 2e5 wires per node, 1-1024 nodes,
// throughput per node in 1e6 wires/s.
#include "fig_common.hpp"

int main() {
  using namespace idxl;
  bench::run_figure(
      "fig5", "Figure 5: Circuit weak scaling (2e5 wires/node)",
      "10^6 wires/s per node",
      [](uint32_t n) { return apps::circuit_weak_spec(n); }, sim::four_configs(),
      /*max_nodes=*/1024,
      [](const sim::SimResult& r, uint32_t n) {
        return 2e5 * n / r.seconds_per_iteration / n / 1e6;
      },
      "DCR+IDX holds high efficiency to 1024 nodes; DCR without IDX decays as "
      "replicated per-task issuance grows with total task count; with tracing "
      "enabled, No-DCR+IDX sits slightly below No-DCR+No-IDX (forced "
      "expansion before distribution).");
  return 0;
}
