#include <gtest/gtest.h>

#include <set>

#include "apps/circuit.hpp"
#include "apps/fft.hpp"
#include "apps/soleil.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "apps/tree.hpp"

namespace idxl::apps {
namespace {

// ---------- Circuit ----------

class CircuitValidation
    : public ::testing::TestWithParam<std::tuple<int64_t, int, bool>> {};

TEST_P(CircuitValidation, MatchesSerialReference) {
  const auto [pieces, pct_external, idx_enabled] = GetParam();
  CircuitParams params;
  params.pieces = pieces;
  params.nodes_per_piece = 12;
  params.wires_per_piece = 24;
  params.pct_external = pct_external;
  params.iterations = 5;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  CircuitApp app(rt, params);
  app.run(params.iterations);

  const auto expected = CircuitApp::reference_voltages(params, params.iterations);
  const auto actual = app.voltages();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-11) << "node " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CircuitValidation,
    ::testing::Values(std::make_tuple(1, 0, true), std::make_tuple(4, 10, true),
                      std::make_tuple(8, 30, true), std::make_tuple(4, 10, false),
                      std::make_tuple(6, 50, true)));

TEST(CircuitTest, AllLaunchesRunAsIndexLaunches) {
  CircuitParams params;
  Runtime rt;
  CircuitApp app(rt, params);
  EXPECT_TRUE(app.run_iteration());
  rt.wait_all();
  // 3 launches, each one bulk runtime call, all statically verified.
  EXPECT_EQ(rt.stats().runtime_calls, 3u);
  EXPECT_EQ(rt.stats().index_launches, 3u);
  EXPECT_EQ(rt.stats().launches_safe_static, 3u);
  EXPECT_EQ(rt.stats().launches_unsafe, 0u);
  EXPECT_EQ(rt.stats().point_tasks, 3u * static_cast<uint64_t>(params.pieces));
}

TEST(CircuitTest, DeterministicAcrossRuns) {
  CircuitParams params;
  params.pieces = 4;
  params.pct_external = 20;
  auto run_once = [&] {
    Runtime rt;
    CircuitApp app(rt, params);
    app.run(4);
    return app.voltages();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CircuitTest, CurrentsFlowAcrossPieces) {
  CircuitParams params;
  params.pieces = 4;
  params.pct_external = 50;
  Runtime rt;
  CircuitApp app(rt, params);
  app.run(1);
  const auto currents = app.currents();
  double total = 0;
  for (double c : currents) total += std::abs(c);
  EXPECT_GT(total, 0.0);
}

// ---------- Stencil ----------

class StencilValidation
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t, bool>> {};

TEST_P(StencilValidation, MatchesSerialReference) {
  const auto [n, p, radius, idx_enabled] = GetParam();
  StencilParams params;
  params.nx = n;
  params.ny = n;
  params.px = p;
  params.py = p;
  params.radius = radius;
  params.iterations = 4;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  StencilApp app(rt, params);
  app.run(params.iterations);

  const auto expected = StencilApp::reference_output(params, params.iterations);
  const auto actual = app.output();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-10) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(Configs, StencilValidation,
                         ::testing::Values(std::make_tuple(24, 2, 2, true),
                                           std::make_tuple(36, 3, 2, true),
                                           std::make_tuple(32, 4, 1, true),
                                           std::make_tuple(24, 2, 2, false),
                                           std::make_tuple(30, 1, 3, true)));

TEST(StencilTest, LaunchesAreStaticallyVerified) {
  StencilParams params;
  Runtime rt;
  StencilApp app(rt, params);
  EXPECT_TRUE(app.run_iteration());
  rt.wait_all();
  EXPECT_EQ(rt.stats().launches_safe_static, 2u);
  EXPECT_EQ(rt.stats().launches_safe_dynamic, 0u);
}

TEST(StencilTest, InputGrowsByIterations) {
  StencilParams params;
  params.iterations = 3;
  Runtime rt;
  StencilApp app(rt, params);
  app.run(3);
  const auto in = app.input();
  // in(0,0) started at 0 and was incremented 3 times.
  EXPECT_DOUBLE_EQ(in[0], 3.0);
}

// ---------- MiniSoleil ----------

class SoleilValidation : public ::testing::TestWithParam<std::tuple<int64_t, int64_t,
                                                                    int64_t, bool>> {};

TEST_P(SoleilValidation, MatchesSerialReference) {
  const auto [bx, by, bz, idx_enabled] = GetParam();
  SoleilParams params;
  params.bx = bx;
  params.by = by;
  params.bz = bz;
  params.cx = 3;
  params.cy = 3;
  params.cz = 3;
  params.iterations = 3;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  SoleilApp app(rt, params);
  app.run(params.iterations);

  const auto ref = SoleilApp::reference(params, params.iterations);
  const auto temp = app.temperatures();
  ASSERT_EQ(temp.size(), ref.temperature.size());
  for (std::size_t i = 0; i < temp.size(); ++i)
    ASSERT_NEAR(temp[i], ref.temperature[i], 1e-10) << "cell " << i;

  for (int d = 0; d < 8; ++d) {
    const auto intensity = app.intensity(d);
    const auto& expected = ref.intensity[static_cast<std::size_t>(d)];
    ASSERT_EQ(intensity.size(), expected.size());
    for (std::size_t i = 0; i < intensity.size(); ++i)
      ASSERT_NEAR(intensity[i], expected[i], 1e-10) << "dir " << d << " block " << i;
  }

  const auto ptemp = app.particle_temps();
  ASSERT_EQ(ptemp.size(), ref.particle_temp.size());
  for (std::size_t i = 0; i < ptemp.size(); ++i)
    ASSERT_NEAR(ptemp[i], ref.particle_temp[i], 1e-10) << "particle " << i;
}

INSTANTIATE_TEST_SUITE_P(Configs, SoleilValidation,
                         ::testing::Values(std::make_tuple(2, 2, 2, true),
                                           std::make_tuple(3, 2, 2, true),
                                           std::make_tuple(1, 1, 1, true),
                                           std::make_tuple(2, 2, 2, false),
                                           std::make_tuple(4, 1, 2, true)));

TEST(SoleilTest, FluidOnlyConfigurationMatchesReference) {
  // The paper's Fig. 9 configuration: fluid module alone.
  SoleilParams params;
  params.bx = params.by = params.bz = 2;
  params.enable_dom = false;
  params.enable_particles = false;
  params.iterations = 4;
  Runtime rt;
  SoleilApp app(rt, params);
  const auto stats = app.run_iteration();
  EXPECT_EQ(stats.launches, 2);  // diffuse + copy only
  EXPECT_EQ(stats.dynamic_checked, 0);
  app.run(params.iterations - 1);

  const auto ref = SoleilApp::reference(params, params.iterations);
  const auto temp = app.temperatures();
  for (std::size_t i = 0; i < temp.size(); ++i)
    ASSERT_NEAR(temp[i], ref.temperature[i], 1e-10) << i;
  // Radiation never ran.
  for (double v : app.intensity(0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SoleilTest, DomSweepsUseDynamicChecks) {
  SoleilParams params;
  params.bx = params.by = params.bz = 2;
  Runtime rt;
  SoleilApp app(rt, params);
  const auto stats = app.run_iteration();
  rt.wait_all();

  EXPECT_EQ(stats.launches, stats.index_launches);  // nothing fell back
  // Every multi-block interior wavefront needs the dynamic check; with a
  // 2x2x2 grid each sweep has wavefronts of sizes 1,3,3,1 — the two
  // size-3 fronts go dynamic, and the size-1 fronts are trivially static.
  EXPECT_EQ(stats.dynamic_checked, 8 * 2);
  EXPECT_GT(rt.stats().launches_safe_dynamic, 0u);
  EXPECT_EQ(rt.stats().launches_unsafe, 0u);
}

TEST(SoleilTest, DynamicChecksCanBeDisabledWithSameResult) {
  SoleilParams params;
  params.bx = params.by = params.bz = 2;
  params.iterations = 2;

  auto run_with = [&](bool checks) {
    RuntimeConfig cfg;
    cfg.enable_dynamic_checks = checks;
    Runtime rt(cfg);
    SoleilApp app(rt, params);
    app.run(params.iterations);
    return app.temperatures();
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

TEST(SoleilTest, SweepSignsCoverAllCorners) {
  std::set<std::array<int, 3>> seen;
  for (int d = 0; d < 8; ++d) seen.insert(sweep_signs(d));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SoleilTest, IntensityDecreasesAwayFromInflowCorner) {
  // For direction 0 (+++), the sweep enters at block (0,0,0); intensity
  // attenuates with distance from the inflow boundary when the source is
  // small relative to the boundary intensity.
  SoleilParams params;
  params.bx = params.by = params.bz = 3;
  params.boundary_intensity = 100.0;
  Runtime rt;
  SoleilApp app(rt, params);
  app.run(1);
  const auto intensity = app.intensity(0);
  auto at = [&](int64_t x, int64_t y, int64_t z) {
    return intensity[static_cast<std::size_t>((x * 3 + y) * 3 + z)];
  };
  EXPECT_GT(at(0, 0, 0), at(1, 1, 1));
  EXPECT_GT(at(1, 1, 1), at(2, 2, 2));
}

// ---------- FFT (Fig. 1c pattern) ----------

class FftValidation : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, bool>> {};

TEST_P(FftValidation, MatchesReferenceDft) {
  const auto [n, blocks, idx_enabled] = GetParam();
  FftParams params;
  params.n = n;
  params.blocks = blocks;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  FftApp app(rt, params);
  app.run_forward();

  const auto expected = FftApp::reference_dft(app.input());
  const auto actual = app.result();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i)
    ASSERT_NEAR(std::abs(actual[i] - expected[i]), 0.0, 1e-8) << "bin " << i;
}

INSTANTIATE_TEST_SUITE_P(Configs, FftValidation,
                         ::testing::Values(std::make_tuple(16, 4, true),
                                           std::make_tuple(64, 8, true),
                                           std::make_tuple(128, 16, true),
                                           std::make_tuple(64, 8, false),
                                           std::make_tuple(32, 32, true),
                                           std::make_tuple(64, 1, true)));

TEST(FftTest, CrossStagesUseDynamicChecks) {
  FftParams params;
  params.n = 64;
  params.blocks = 8;
  Runtime rt;
  FftApp app(rt, params);
  // Block size 8: spans 16, 32, 64 cross blocks -> 3 dynamically checked
  // butterfly launches.
  EXPECT_EQ(app.run_forward(), 3);
  rt.wait_all();
  EXPECT_EQ(rt.stats().launches_unsafe, 0u);
  EXPECT_EQ(rt.stats().launches_safe_dynamic, 3u);
}

TEST(FftTest, InverseRoundTripsToInput) {
  FftParams params;
  params.n = 64;
  params.blocks = 8;
  Runtime rt;
  FftApp app(rt, params);
  app.run_forward();
  app.run_inverse();
  const auto back = app.result();
  for (std::size_t i = 0; i < back.size(); ++i)
    ASSERT_NEAR(std::abs(back[i] - app.input()[i]), 0.0, 1e-10) << i;
}

TEST(FftTest, ImpulseTransformsToConstant) {
  // Analytical sanity: FFT of delta(0) is all-ones. Overwrite the input
  // with an impulse before running.
  FftParams params;
  params.n = 32;
  params.blocks = 4;
  Runtime rt;
  FftApp app(rt, params);
  // The generated input is random; verify against the DFT of that same
  // input shifted: simpler—check Parseval instead: sum |x|^2 * n == sum |X|^2.
  app.run_forward();
  const auto spectrum = app.result();
  double time_energy = 0, freq_energy = 0;
  for (const auto& v : app.input()) time_energy += std::norm(v);
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(params.n),
              1e-6 * time_energy * static_cast<double>(params.n));
}

// ---------- SpMV (Fig. 1f pattern, derived partitions) ----------

class SpmvValidation
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t, bool>> {};

TEST_P(SpmvValidation, MultiplyMatchesReference) {
  const auto [n, row_blocks, nnz, idx_enabled] = GetParam();
  SpmvParams params;
  params.n = n;
  params.row_blocks = row_blocks;
  params.nnz_per_row = nnz;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  SpmvApp app(rt, params);
  const auto x0 = app.x();
  app.multiply();

  const auto expected = SpmvApp::reference_multiply(params, x0);
  const auto actual = app.y();
  for (std::size_t i = 0; i < actual.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-12) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(Configs, SpmvValidation,
                         ::testing::Values(std::make_tuple(32, 4, 3, true),
                                           std::make_tuple(64, 8, 5, true),
                                           std::make_tuple(48, 6, 1, true),
                                           std::make_tuple(64, 8, 5, false),
                                           std::make_tuple(16, 16, 2, true)));

TEST(SpmvTest, PowerIterationTracksReference) {
  SpmvParams params;
  Runtime rt;
  SpmvApp app(rt, params);
  double norm_value = 0;
  for (int s = 0; s < 12; ++s) norm_value = app.power_step();
  // Dominant-eigenvalue estimate; cross-block reduction order differs from
  // the serial fold, so allow a loose tolerance.
  EXPECT_NEAR(norm_value, SpmvApp::reference_power(params, 12), 1e-6);
}

TEST(SpmvTest, AllLaunchesStaticallyVerified) {
  SpmvParams params;
  Runtime rt;
  SpmvApp app(rt, params);
  app.power_step();
  rt.wait_all();
  EXPECT_EQ(rt.stats().launches_safe_dynamic, 0u);
  EXPECT_EQ(rt.stats().launches_unsafe, 0u);
  EXPECT_GT(rt.stats().launches_safe_static, 0u);
}

// ---------- Tree (Fig. 1e pattern) ----------

class TreeValidation : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TreeValidation, ReduceAndBroadcast) {
  const auto [levels, idx_enabled] = GetParam();
  TreeParams params;
  params.levels = levels;

  RuntimeConfig cfg;
  cfg.enable_index_launches = idx_enabled;
  Runtime rt(cfg);
  TreeApp app(rt, params);

  double expected = 0;
  for (double v : app.initial_leaves()) expected += v;
  EXPECT_NEAR(app.reduce_sum(), expected, 1e-9);

  app.broadcast(3.25);
  for (double v : app.leaves()) ASSERT_DOUBLE_EQ(v, 3.25);
}

INSTANTIATE_TEST_SUITE_P(Configs, TreeValidation,
                         ::testing::Values(std::make_tuple(1, true),
                                           std::make_tuple(4, true),
                                           std::make_tuple(8, true),
                                           std::make_tuple(5, false)));

TEST(TreeTest, BroadcastChecksInterleavedWrites) {
  TreeParams params;
  params.levels = 6;
  Runtime rt;
  TreeApp app(rt, params);
  // All but the root level have interleaved 2i / 2i+1 write images —
  // verified dynamically.
  EXPECT_EQ(app.broadcast(1.0), params.levels - 1);
  rt.wait_all();
  EXPECT_EQ(rt.stats().launches_unsafe, 0u);
}

TEST(TreeTest, LaunchDomainsShrinkPerLevel) {
  // The Fig. 1e structure: 6 combine launches with widths 32..1 — index
  // launches are per-level descriptors, not per-task streams.
  TreeParams params;
  params.levels = 6;
  Runtime rt;
  TreeApp app(rt, params);
  app.reduce_sum();
  EXPECT_EQ(rt.stats().index_launches, 6u);
  EXPECT_EQ(rt.stats().point_tasks, 32u + 16 + 8 + 4 + 2 + 1);
}

}  // namespace
}  // namespace idxl::apps
