#include <gtest/gtest.h>

#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"

namespace idxl {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  FieldId fn = 0;
  RegionId region;
  PartitionId blocks;

  Fixture() {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(32));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    fn = forest.allocate_field(fs, sizeof(int64_t), "n");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(4));
  }
};

TEST(FillTest, FillsEveryElement) {
  Fixture fx;
  fx.rt.fill(fx.region, fx.fv, 2.5);
  fx.rt.fill(fx.region, fx.fn, int64_t{-7});
  fx.rt.wait_all();
  auto v = fx.rt.read_region<double>(fx.region, fx.fv);
  auto n = fx.rt.read_region<int64_t>(fx.region, fx.fn);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(v.read(Point::p1(i)), 2.5);
    EXPECT_EQ(n.read(Point::p1(i)), -7);
  }
}

TEST(FillTest, FillIsOrderedAgainstLaunches) {
  // launch(write i) ; fill(0) ; launch(v += 1): result must be exactly 1
  // everywhere — the fill must neither race ahead of the first launch nor
  // lag behind the second.
  Fixture fx;
  const TaskFnId stamp = fx.rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId bump = fx.rt.register_task("bump", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, acc.read(p) + 1.0); });
  });
  IndexLauncher l1;
  l1.task = stamp;
  l1.domain = Domain::line(4);
  l1.args = {{fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
              Privilege::kWrite, ReductionOp::kNone}};
  fx.rt.execute_index(l1);
  fx.rt.fill(fx.region, fx.fv, 0.0);
  IndexLauncher l2 = l1;
  l2.task = bump;
  l2.args[0].privilege = Privilege::kReadWrite;
  fx.rt.execute_index(l2);
  fx.rt.wait_all();

  auto v = fx.rt.read_region<double>(fx.region, fx.fv);
  for (int64_t i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(v.read(Point::p1(i)), 1.0);
}

TEST(FillTest, SubregionFillLeavesSiblingsUntouched) {
  Fixture fx;
  fx.rt.fill(fx.region, fx.fv, 9.0);
  const RegionId block1 = fx.rt.forest().subregion(fx.region, fx.blocks, Point::p1(1));
  fx.rt.fill(block1, fx.fv, -1.0);
  fx.rt.wait_all();
  auto v = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(v.read(Point::p1(0)), 9.0);
  EXPECT_DOUBLE_EQ(v.read(Point::p1(8)), -1.0);   // block 1 covers [8, 16)
  EXPECT_DOUBLE_EQ(v.read(Point::p1(15)), -1.0);
  EXPECT_DOUBLE_EQ(v.read(Point::p1(16)), 9.0);
}

TEST(FillTest, PatternSizeMismatchThrows) {
  Fixture fx;
  EXPECT_THROW(fx.rt.fill(fx.region, fx.fv, int32_t{1}), RuntimeError);
  fx.rt.wait_all();
}

}  // namespace
}  // namespace idxl
