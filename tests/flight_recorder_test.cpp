#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/watchdog.hpp"
#include "region/partition_ops.hpp"
#include "runtime/mapping.hpp"
#include "runtime/runtime.hpp"
#include "test_json.hpp"

namespace idxl {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;
using obs::LifecycleDetail;
using obs::LifecycleEvent;
using testjson::JsonParser;
using testjson::JValue;

FlightEvent ev(LifecycleEvent kind, uint64_t ts, uint64_t seq = FlightEvent::kNone) {
  FlightEvent e;
  e.kind = kind;
  e.ts_ns = ts;  // explicit (non-zero) so tests are deterministic
  e.seq = seq;
  return e;
}

TEST(FlightRecorderTest, RecordsEventsOldestFirst) {
  FlightRecorder rec(true, 8);
  rec.record(ev(LifecycleEvent::kIssued, 10, 1));
  rec.record(ev(LifecycleEvent::kRunning, 20, 1));
  rec.record(ev(LifecycleEvent::kComplete, 30, 1));

  const std::vector<FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].kind, LifecycleEvent::kIssued);
  EXPECT_EQ(snap[1].kind, LifecycleEvent::kRunning);
  EXPECT_EQ(snap[2].kind, LifecycleEvent::kComplete);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(FlightRecorderTest, RingWrapsAroundKeepingTheNewest) {
  FlightRecorder rec(true, 4);
  for (uint64_t i = 0; i < 10; ++i)
    rec.record(ev(LifecycleEvent::kIssued, i + 1, i));

  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);

  const std::vector<FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].seq, 6 + i);
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder rec(false, 8);
  EXPECT_FALSE(rec.enabled());
  rec.record(ev(LifecycleEvent::kIssued, 1, 0));
  const FlightEvent pair[2] = {ev(LifecycleEvent::kRunning, 2, 0),
                               ev(LifecycleEvent::kComplete, 3, 0)};
  rec.record2(pair[0], pair[1]);
  rec.record_batch(pair);
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.json(), "[]");
}

TEST(FlightRecorderTest, PerWorkerRingsPreserveEachThreadsOrder) {
  constexpr int kThreads = 4;
  constexpr uint64_t kEvents = 200;
  FlightRecorder rec(true, kEvents);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        FlightEvent e = ev(LifecycleEvent::kIssued,
                           i * kThreads + static_cast<uint64_t>(t) + 1, i);
        e.launch = static_cast<uint64_t>(t);  // tag the recording thread
        rec.record(e);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(rec.recorded(), kThreads * kEvents);
  EXPECT_EQ(rec.overwritten(), 0u);

  // The merged snapshot is ts-ordered; within it, each thread's events must
  // appear in the order that thread recorded them (seq 0, 1, 2, ...).
  const std::vector<FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), kThreads * kEvents);
  uint64_t next_seq[kThreads] = {};
  for (const FlightEvent& e : snap) {
    ASSERT_LT(e.launch, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(e.seq, next_seq[e.launch]++);
  }
}

TEST(FlightRecorderTest, Record2SharesOneTimestamp) {
  FlightRecorder rec(true, 8);
  FlightEvent a = ev(LifecycleEvent::kRunning, 0, 7);
  FlightEvent b = ev(LifecycleEvent::kComplete, 0, 7);
  rec.record2(a, b);

  const std::vector<FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // b's unset timestamp inherits a's: one clock read for the pair.
  EXPECT_EQ(snap[0].ts_ns, snap[1].ts_ns);
  EXPECT_EQ(snap[0].kind, LifecycleEvent::kRunning);
  EXPECT_EQ(snap[1].kind, LifecycleEvent::kComplete);
}

TEST(FlightRecorderTest, RecordBatchAppendsPreStampedEvents) {
  FlightRecorder rec(true, 8);
  std::vector<FlightEvent> batch;
  for (uint64_t i = 0; i < 5; ++i)
    batch.push_back(ev(LifecycleEvent::kIssued, 100 + i, i));
  rec.record_batch(batch);

  const std::vector<FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i].seq, i);
    EXPECT_EQ(snap[i].ts_ns, 100 + i);
  }
}

TEST(FlightRecorderTest, TailReturnsTheMostRecentEventsOldestFirst) {
  FlightRecorder rec(true, 16);
  for (uint64_t i = 0; i < 10; ++i)
    rec.record(ev(LifecycleEvent::kIssued, i + 1, i));

  const std::vector<FlightEvent> last = rec.tail(3);
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last[0].seq, 7u);
  EXPECT_EQ(last[1].seq, 8u);
  EXPECT_EQ(last[2].seq, 9u);
  EXPECT_EQ(rec.tail(100).size(), 10u);  // clamped to what exists
}

TEST(FlightRecorderTest, ResetDropsAllEvents) {
  FlightRecorder rec(true, 8);
  rec.record(ev(LifecycleEvent::kIssued, 1, 0));
  rec.reset();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorderTest, JsonIsWellFormedAndCarriesEveryField) {
  FlightRecorder rec(true, 8);
  FlightEvent e = ev(LifecycleEvent::kReady, 42, 3);
  e.launch = 9;
  e.edge = 2;
  const int64_t coord[2] = {1, 5};
  e.set_point(coord, 2);
  rec.record(e);
  FlightEvent f = ev(LifecycleEvent::kAnalyzed, 50);
  f.detail = LifecycleDetail::kSafeStatic;
  rec.record(f);

  JValue root;
  ASSERT_TRUE(JsonParser(rec.json()).parse(root));
  ASSERT_EQ(root.kind, JValue::kArray);
  ASSERT_EQ(root.array.size(), 2u);

  const JValue& ready = root.array[0];
  EXPECT_EQ(ready.get("event")->string, "ready");
  EXPECT_EQ(ready.get("ts_ns")->number, 42);
  EXPECT_EQ(ready.get("seq")->number, 3);
  EXPECT_EQ(ready.get("launch")->number, 9);
  EXPECT_EQ(ready.get("edge")->number, 2);
  ASSERT_NE(ready.get("point"), nullptr);
  ASSERT_EQ(ready.get("point")->array.size(), 2u);
  EXPECT_EQ(ready.get("point")->array[1].number, 5);

  const JValue& analyzed = root.array[1];
  EXPECT_EQ(analyzed.get("event")->string, "analyzed");
  EXPECT_EQ(analyzed.get("detail")->string, "safe-static");
  EXPECT_EQ(analyzed.get("seq"), nullptr);   // kNone fields are omitted
  EXPECT_EQ(analyzed.get("point"), nullptr); // dim == 0
}

// ---------------------------------------------------------------------------
// Runtime integration: the recorder is on by default and sees the whole
// task lifecycle, with launch ids shared with the Chrome trace.
// ---------------------------------------------------------------------------

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

bool has_event(const std::vector<FlightEvent>& events, LifecycleEvent kind) {
  for (const FlightEvent& e : events)
    if (e.kind == kind) return true;
  return false;
}

TEST(FlightRecorderTest, RuntimeRecordsTheFullTaskLifecycle) {
  Fixture fx(32, 8);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId scale = fx.rt.register_task("scale", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, acc.read(p) * 2.0); });
  });
  auto launch = [&](TaskFnId fn, Privilege priv) {
    fx.rt.execute_index(IndexLauncher::over(Domain::line(8))
                            .with_task(fn)
                            .region(fx.region, fx.blocks,
                                    ProjectionFunctor::identity(1), {fx.fv},
                                    priv));
  };
  launch(fill, Privilege::kWrite);
  launch(scale, Privilege::kReadWrite);
  fx.rt.wait_all();

  ASSERT_TRUE(fx.rt.flight_recorder().enabled());
  const std::vector<FlightEvent> events = fx.rt.flight_recorder().snapshot();

  // Launch-level records: issue, verdict, expansion — tagged with a launch
  // id but no task seq.
  EXPECT_TRUE(has_event(events, LifecycleEvent::kFence));
  bool saw_analyzed = false, saw_expanded = false;
  for (const FlightEvent& e : events) {
    if (e.kind == LifecycleEvent::kAnalyzed) {
      saw_analyzed = true;
      EXPECT_EQ(e.seq, FlightEvent::kNone);
      EXPECT_NE(e.launch, FlightEvent::kNone);
      EXPECT_EQ(e.detail, LifecycleDetail::kSafeStatic);
    }
    if (e.kind == LifecycleEvent::kExpanded) saw_expanded = true;
  }
  EXPECT_TRUE(saw_analyzed);
  EXPECT_TRUE(saw_expanded);

  // Task-level records: every point task moves issued -> ready -> running ->
  // complete, in that order, and keeps its launch id end to end.
  struct Seen {
    uint64_t mask = 0;  // bit per lifecycle stage, set in pipeline order
    uint64_t launch = FlightEvent::kNone;
  };
  std::map<uint64_t, Seen> tasks;
  auto stage_bit = [](LifecycleEvent k) -> uint64_t {
    switch (k) {
      case LifecycleEvent::kIssued: return 1;
      case LifecycleEvent::kReady: return 2;
      case LifecycleEvent::kRunning: return 4;
      case LifecycleEvent::kComplete: return 8;
      default: return 0;
    }
  };
  for (const FlightEvent& e : events) {
    const uint64_t bit = stage_bit(e.kind);
    if (bit == 0 || e.seq == FlightEvent::kNone) continue;
    Seen& s = tasks[e.seq];
    // Each stage must arrive after every earlier stage (ts-sorted snapshot).
    EXPECT_EQ(s.mask, bit - 1) << "task " << e.seq << " out of order at "
                               << obs::lifecycle_event_name(e.kind);
    s.mask |= bit;
    if (s.launch == FlightEvent::kNone) s.launch = e.launch;
    EXPECT_EQ(e.launch, s.launch) << "launch id changed mid-lifecycle";
  }
  ASSERT_EQ(tasks.size(), 16u);  // 2 launches x 8 points
  for (const auto& [seq, s] : tasks) EXPECT_EQ(s.mask, 15u) << "task " << seq;

  // A task whose dependence is outstanding when it is issued gets a kReady
  // event naming the edge that unblocked it. Gate the predecessor so the
  // successor is provably blocked at issue time.
  std::atomic<bool> release{false};
  const TaskFnId gate = fx.rt.register_task("gate", [&](TaskContext&) {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  const TaskFnId after = fx.rt.register_task("after", [](TaskContext&) {});
  fx.rt.execute(TaskLauncher::for_task(gate).region(fx.region, {fx.fv},
                                                    Privilege::kWrite));
  fx.rt.execute(TaskLauncher::for_task(after).region(fx.region, {fx.fv},
                                                     Privilege::kWrite));
  release.store(true, std::memory_order_release);
  fx.rt.wait_all();

  // The two new tasks are the ones with seqs the index launches did not use.
  const std::vector<FlightEvent> all = fx.rt.flight_recorder().snapshot();
  uint64_t gate_seq = FlightEvent::kNone;
  for (const FlightEvent& e : all)
    if (e.kind == LifecycleEvent::kIssued && e.seq != FlightEvent::kNone &&
        !tasks.count(e.seq)) {
      gate_seq = e.seq;  // first new issue is the gate task
      break;
    }
  ASSERT_NE(gate_seq, FlightEvent::kNone);
  bool saw_edge = false;
  for (const FlightEvent& e : all)
    if (e.kind == LifecycleEvent::kReady && e.edge == gate_seq) saw_edge = true;
  EXPECT_TRUE(saw_edge) << "successor's kReady never named the gate edge";
}

TEST(FlightRecorderTest, ConfigCanDisableTheRecorder) {
  RuntimeConfig cfg;
  cfg.enable_flight_recorder = false;
  Fixture fx(8, 1, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute(TaskLauncher::for_task(noop).region(fx.region, {fx.fv},
                                                    Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_FALSE(fx.rt.flight_recorder().enabled());
  EXPECT_TRUE(fx.rt.flight_recorder().snapshot().empty());
}

TEST(FlightRecorderTest, EnvOverridesDisableRecorderAndSizeRing) {
  ::setenv("IDXL_FLIGHT_RECORDER", "0", 1);
  {
    Runtime rt;
    EXPECT_FALSE(rt.flight_recorder().enabled());
  }
  ::unsetenv("IDXL_FLIGHT_RECORDER");

  ::setenv("IDXL_FLIGHT_CAPACITY", "4", 1);
  {
    Runtime rt;
    EXPECT_TRUE(rt.flight_recorder().enabled());
    EXPECT_EQ(rt.flight_recorder().capacity(), 4u);
  }
  ::unsetenv("IDXL_FLIGHT_CAPACITY");
}

// ---------------------------------------------------------------------------
// Stall watchdog: wedge a task and check the report names the blocked task,
// the waits-for edge, and the recent lifecycle events.
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, WatchdogNamesBlockedTaskEdgeAndRecentEvents) {
  RuntimeConfig cfg;
  cfg.enable_watchdog = true;
  cfg.watchdog_check_period_ms = 5;
  cfg.watchdog_stall_window_ms = 25;
  cfg.watchdog_dump_path = ::testing::TempDir() + "idxl_stall_report.txt";
  Fixture fx(8, 1, cfg);
  ASSERT_NE(fx.rt.watchdog(), nullptr);

  std::mutex mu;
  std::condition_variable cv;
  bool have_report = false;
  obs::StallReport report;
  fx.rt.watchdog()->set_on_stall([&](const obs::StallReport& r) {
    std::lock_guard<std::mutex> lock(mu);
    report = r;
    have_report = true;
    cv.notify_all();
  });

  std::atomic<bool> release{false};
  const TaskFnId wedge = fx.rt.register_task("wedge", [&](TaskContext&) {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const TaskFnId victim = fx.rt.register_task("victim", [](TaskContext&) {});

  // wedge writes the region; victim writes it too -> victim waits for wedge.
  fx.rt.execute(TaskLauncher::for_task(wedge).region(fx.region, {fx.fv},
                                                     Privilege::kWrite));
  fx.rt.execute(TaskLauncher::for_task(victim).region(fx.region, {fx.fv},
                                                      Privilege::kWrite));

  {
    std::unique_lock<std::mutex> lock(mu);
    const bool fired = cv.wait_for(lock, std::chrono::seconds(10),
                                   [&] { return have_report; });
    ASSERT_TRUE(fired) << "watchdog never fired";
  }
  release.store(true, std::memory_order_release);
  fx.rt.wait_all();

  EXPECT_GE(fx.rt.watchdog()->stalls_detected(), 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.pending, 2u);

  // The waits-for graph must name the victim, blocked on the wedge's seq.
  const obs::BlockedTask* wedged = nullptr;
  const obs::BlockedTask* blocked = nullptr;
  for (const auto& t : report.blocked) {
    if (t.label.find("wedge") != std::string::npos) wedged = &t;
    if (t.label.find("victim") != std::string::npos) blocked = &t;
  }
  ASSERT_NE(wedged, nullptr);
  ASSERT_NE(blocked, nullptr);
  EXPECT_TRUE(wedged->waits_for.empty());  // it runs; it waits on nothing
  ASSERT_EQ(blocked->waits_for.size(), 1u);
  EXPECT_EQ(blocked->waits_for[0], wedged->seq);

  // The flight-recorder tail rode along and shows how we got here.
  ASSERT_FALSE(report.recent.empty());
  EXPECT_TRUE(has_event(report.recent, LifecycleEvent::kIssued));

  // The stall itself was recorded as a lifecycle event, and the report text
  // landed at the configured dump path with the metrics snapshot attached.
  EXPECT_TRUE(has_event(fx.rt.flight_recorder().snapshot(),
                        LifecycleEvent::kStall));
  std::FILE* f = std::fopen(cfg.watchdog_dump_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("stall report"), std::string::npos);
  EXPECT_NE(text.find("waits for"), std::string::npos);
  EXPECT_NE(text.find("idxl_point_tasks_total"), std::string::npos);
  std::remove(cfg.watchdog_dump_path.c_str());
}

TEST(FlightRecorderTest, WatchdogStaysQuietWhenWorkCompletes) {
  RuntimeConfig cfg;
  cfg.enable_watchdog = true;
  cfg.watchdog_check_period_ms = 5;
  cfg.watchdog_stall_window_ms = 50;
  Fixture fx(32, 8, cfg);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, 1.0); });
  });
  for (int rep = 0; rep < 4; ++rep) {
    fx.rt.execute_index(IndexLauncher::over(Domain::line(8))
                            .with_task(fill)
                            .region(fx.region, fx.blocks,
                                    ProjectionFunctor::identity(1), {fx.fv},
                                    Privilege::kWrite));
    fx.rt.wait_all();
  }
  EXPECT_EQ(fx.rt.watchdog()->stalls_detected(), 0u);
}

}  // namespace
}  // namespace idxl
