#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_runtime.hpp"

namespace idxl {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0, fw = 0;
  RegionId grid;
  PartitionId blocks;
  PartitionId halos;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    fw = forest.allocate_field(fs, sizeof(double), "w");
    grid = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
    halos = partition_halo(forest, is, blocks, 1);
  }
};

bool has_event(const std::vector<obs::FlightEvent>& events,
               obs::LifecycleEvent kind) {
  for (const obs::FlightEvent& e : events)
    if (e.kind == kind) return true;
  return false;
}

bool poisoned_contains(const FaultReport& report, uint64_t launch,
                       const Point& point) {
  for (const TaskFault& f : report.poisoned)
    if (f.launch == launch && f.point == point) return true;
  return false;
}

// --- failure semantics ----------------------------------------------------

TEST(FaultTest, ExplicitFailPoisonsDownstreamReaders) {
  Fixture fx(8, 4);
  const TaskFnId writer = fx.rt.register_task("writer", [](TaskContext& ctx) {
    if (ctx.point[0] == 1) ctx.fail("boom");
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 1.0); });
  });
  const TaskFnId reader = fx.rt.register_task("reader", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(1);
    ctx.region(1).domain().for_each(
        [&](const Point& p) { out.write(p, in.read(p) + 1.0); });
  });
  const auto id = ProjectionFunctor::identity(1);
  const LaunchResult w = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4)).with_task(writer).region(
          fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite));
  const LaunchResult r = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4))
          .with_task(reader)
          .region(fx.grid, fx.blocks, id, {fx.fv}, Privilege::kRead)
          .region(fx.grid, fx.blocks, id, {fx.fw}, Privilege::kWrite));
  fx.rt.wait_all();

  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kExplicit);
  EXPECT_EQ(report.failures[0].launch, w.launch_id);
  EXPECT_EQ(report.failures[0].point, Point::p1(1));
  EXPECT_EQ(report.failures[0].message, "boom");
  EXPECT_EQ(report.failures[0].attempts, 1u);

  // The dependent reader of block 1 is poisoned; its root names the culprit.
  ASSERT_EQ(report.poisoned.size(), 1u);
  EXPECT_EQ(report.poisoned[0].launch, r.launch_id);
  EXPECT_EQ(report.poisoned[0].point, Point::p1(1));
  EXPECT_EQ(report.poisoned[0].root, report.failures[0].seq);
  EXPECT_EQ(report.poisoned[0].attempts, 0u);

  // Independent siblings ran: their outputs are live, block 1's are not.
  auto out = fx.rt.read_region<double>(fx.grid, fx.fw);
  EXPECT_DOUBLE_EQ(out.read(Point::p1(0)), 2.0);
  EXPECT_DOUBLE_EQ(out.read(Point::p1(2)), 0.0);  // poisoned: never written
  EXPECT_DOUBLE_EQ(out.read(Point::p1(6)), 2.0);

  EXPECT_EQ(fx.rt.stats().tasks_failed, 1u);
  EXPECT_EQ(fx.rt.stats().tasks_poisoned, 1u);
  // for_launch() slices the report by launch id.
  EXPECT_TRUE(report.for_launch(w.launch_id).poisoned.empty());
  EXPECT_EQ(report.for_launch(r.launch_id).poisoned.size(), 1u);
}

TEST(FaultTest, ExceptionIsCapturedAsTaskFailure) {
  Fixture fx(8, 4);
  const TaskFnId bad = fx.rt.register_task("bad", [](TaskContext& ctx) {
    if (ctx.point[0] == 2) throw std::runtime_error("kaboom");
  });
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(bad)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kException);
  EXPECT_EQ(report.failures[0].message, "kaboom");
  EXPECT_TRUE(report.poisoned.empty());
}

TEST(FaultTest, PoisonReachesTransitiveReadersButNotSiblings) {
  Fixture fx(8, 4);
  const TaskFnId writer = fx.rt.register_task("writer", [](TaskContext& ctx) {
    if (ctx.point[0] == 0) ctx.fail("root cause");
  });
  const TaskFnId mid = fx.rt.register_task("mid", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(1);
    ctx.region(1).domain().for_each(
        [&](const Point& p) { out.write(p, in.read(p)); });
  });
  const TaskFnId leaf = fx.rt.register_task("leaf", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(1);
    (void)in;
  });
  const auto id = ProjectionFunctor::identity(1);
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4)).with_task(writer).region(
      fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite));
  const LaunchResult m = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4))
          .with_task(mid)
          .region(fx.grid, fx.blocks, id, {fx.fv}, Privilege::kRead)
          .region(fx.grid, fx.blocks, id, {fx.fw}, Privilege::kWrite));
  const LaunchResult l = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4)).with_task(leaf).region(
          fx.grid, fx.blocks, id, {fx.fw}, Privilege::kRead));
  fx.rt.wait_all();

  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  const uint64_t root = report.failures[0].seq;
  // Point 0's whole downstream chain is poisoned, all naming the same root.
  EXPECT_TRUE(poisoned_contains(report, m.launch_id, Point::p1(0)));
  EXPECT_TRUE(poisoned_contains(report, l.launch_id, Point::p1(0)));
  for (const TaskFault& f : report.poisoned) EXPECT_EQ(f.root, root);
  // Independent siblings (other blocks) are untouched.
  EXPECT_FALSE(poisoned_contains(report, m.launch_id, Point::p1(1)));
  EXPECT_FALSE(poisoned_contains(report, l.launch_id, Point::p1(3)));
  EXPECT_EQ(report.poisoned.size(), 2u);
}

// --- deterministic fault injection ---------------------------------------

TEST(FaultTest, InjectedFaultFiresForExactLaunchPointAttempt) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(2));
  cfg.fault_plan = plan;
  Fixture fx(8, 4, cfg);
  std::atomic<int> ran{0};
  const TaskFnId count = fx.rt.register_task("count", [&](TaskContext& ctx) {
    (void)ctx;
    ran.fetch_add(1);
  });
  const LaunchResult r = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4)).with_task(count).region(
          fx.grid, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
          Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_EQ(ran.load(), 3);  // the injected point's body never ran
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kInjected);
  EXPECT_EQ(report.failures[0].launch, r.launch_id);
  EXPECT_EQ(report.failures[0].point, Point::p1(2));
  EXPECT_EQ(fx.rt.stats().fault_injections, 1u);
}

TEST(FaultTest, FaultPlanParseRoundTrip) {
  const FaultPlan plan = FaultPlan::parse("3@(1,2):2;0@(5);random:42:0.5");
  EXPECT_TRUE(plan.should_fail(3, Point::p2(1, 2), 2));
  EXPECT_FALSE(plan.should_fail(3, Point::p2(1, 2), 1));
  EXPECT_TRUE(plan.should_fail(0, Point::p1(5), 0));
  // Round trip: parse(to_string) injects the identical explicit set.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_TRUE(again.should_fail(3, Point::p2(1, 2), 2));
  EXPECT_TRUE(again.should_fail(0, Point::p1(5), 0));
  EXPECT_EQ(again.to_string(), plan.to_string());
  EXPECT_THROW(FaultPlan::parse("not-a-plan"), RuntimeError);
}

TEST(FaultTest, SeededRandomPlanIsAPureFunction) {
  const FaultPlan a = FaultPlan::random(7, 0.25);
  const FaultPlan b = FaultPlan::random(7, 0.25);
  int hits = 0;
  for (int64_t i = 0; i < 400; ++i) {
    const bool fa = a.should_fail(3, Point::p1(i), 0);
    EXPECT_EQ(fa, b.should_fail(3, Point::p1(i), 0));
    hits += fa ? 1 : 0;
  }
  EXPECT_GT(hits, 40);   // ~100 expected
  EXPECT_LT(hits, 200);
  // Different seeds decide differently somewhere.
  const FaultPlan c = FaultPlan::random(8, 0.25);
  bool diverged = false;
  for (int64_t i = 0; i < 400 && !diverged; ++i)
    diverged = a.should_fail(3, Point::p1(i), 0) != c.should_fail(3, Point::p1(i), 0);
  EXPECT_TRUE(diverged);
}

FaultReport run_seeded_program(uint64_t seed) {
  RuntimeConfig cfg;
  cfg.fault_plan = std::make_shared<FaultPlan>(FaultPlan::random(seed, 0.15));
  Fixture fx(64, 16, cfg);
  const TaskFnId step = fx.rt.register_task("step", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  for (int it = 0; it < 3; ++it)
    fx.rt.execute_index(IndexLauncher::over(Domain::line(16)).with_task(step).region(
        fx.grid, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
        Privilege::kWrite));
  fx.rt.wait_all();
  return fx.rt.fault_report();
}

TEST(FaultTest, SeededPlanIsBitForBitReproducible) {
  const FaultReport first = run_seeded_program(1234);
  const FaultReport second = run_seeded_program(1234);
  EXPECT_FALSE(first.ok());  // rate 0.15 over 48 tasks: essentially certain
  EXPECT_EQ(first, second);  // same failed points, same poisoned set
  EXPECT_EQ(first.to_string(), second.to_string());
}

// --- retry / timeout ------------------------------------------------------

TEST(FaultTest, RetrySucceedsOnAttemptK) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(2), 0).fail(0, Point::p1(2), 1);
  cfg.fault_plan = plan;
  Fixture fx(8, 4, cfg);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, 1.0 + ctx.attempt()); });
  });
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(fill)
                          .retries(3)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_TRUE(fx.rt.fault_report().ok());  // retried to success: not a fault
  EXPECT_EQ(fx.rt.stats().retry_attempts, 2u);
  EXPECT_EQ(fx.rt.stats().retries_succeeded, 1u);
  EXPECT_EQ(fx.rt.stats().fault_injections, 2u);
  auto acc = fx.rt.read_region<double>(fx.grid, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(4)), 3.0);  // block 2 wrote on attempt 2
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 1.0);  // others on attempt 0
}

TEST(FaultTest, RetriesExhaustedReportsTerminalFault) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  for (uint32_t k = 0; k < 3; ++k) plan->fail(0, Point::p1(1), k);
  cfg.fault_plan = plan;
  Fixture fx(8, 4, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(noop)
                          .retries(2)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kInjected);
  EXPECT_EQ(report.failures[0].attempts, 3u);  // attempts 0, 1, 2 all ran
  EXPECT_EQ(fx.rt.stats().retry_attempts, 2u);
  EXPECT_EQ(fx.rt.stats().retries_succeeded, 0u);
}

TEST(FaultTest, BackoffDelaysRetry) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(0), 0).fail(0, Point::p1(0), 1);
  cfg.fault_plan = plan;
  Fixture fx(8, 1, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const auto start = std::chrono::steady_clock::now();
  fx.rt.execute_index(IndexLauncher::over(Domain::line(1))
                          .with_task(noop)
                          .retries(3)
                          .backoff(40)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(fx.rt.fault_report().ok());
  // Exponential backoff: 40 ms before attempt 1, 80 ms before attempt 2.
  EXPECT_GE(elapsed.count(), 100);
}

TEST(FaultTest, TimeoutCancelsSleepingTask) {
  Fixture fx(8, 1);
  const TaskFnId sleepy = fx.rt.register_task("sleepy", [](TaskContext& ctx) {
    // Cooperative cancellation: poll between bounded sleeps. The 2 s cap
    // keeps a broken timeout from hanging the suite.
    for (int i = 0; i < 400; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ctx.check_cancelled();
    }
  });
  fx.rt.execute(TaskLauncher::for_task(sleepy)
                    .timeout(50)
                    .region(fx.grid, {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kTimeout);
  EXPECT_EQ(fx.rt.stats().tasks_failed, 1u);
}

TEST(FaultTest, TimeoutIsNotRetried) {
  Fixture fx(8, 1);
  std::atomic<int> attempts{0};
  const TaskFnId sleepy = fx.rt.register_task("sleepy", [&](TaskContext& ctx) {
    attempts.fetch_add(1);
    for (int i = 0; i < 400; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ctx.check_cancelled();
    }
  });
  fx.rt.execute(TaskLauncher::for_task(sleepy)
                    .timeout(30)
                    .retries(5)
                    .region(fx.grid, {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_EQ(attempts.load(), 1);  // cancellation is terminal, not retryable
  ASSERT_EQ(fx.rt.fault_report().failures.size(), 1u);
  EXPECT_EQ(fx.rt.fault_report().failures[0].kind, FaultKind::kTimeout);
}

// --- watchdog cancel action ----------------------------------------------

TEST(FaultTest, WatchdogCancelsStalledLaunch) {
  RuntimeConfig cfg;
  cfg.enable_watchdog = true;
  cfg.watchdog_check_period_ms = 10;
  cfg.watchdog_stall_window_ms = 100;
  cfg.watchdog_cancel = true;
  cfg.watchdog_dump_path = "/dev/null";
  Fixture fx(8, 1, cfg);
  const TaskFnId stuck = fx.rt.register_task("stuck", [](TaskContext& ctx) {
    // Spins forever unless cancelled: the stall the watchdog must break.
    for (int i = 0; i < 4000; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ctx.check_cancelled();
    }
  });
  fx.rt.execute(TaskLauncher::for_task(stuck).region(fx.grid, {fx.fv},
                                                     Privilege::kWrite));
  fx.rt.wait_all();  // returns because the watchdog cancelled the run
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kCancelled);

  // clear_faults() re-arms the runtime after a cancel_all().
  fx.rt.clear_faults();
  std::atomic<bool> ran{false};
  const TaskFnId ok = fx.rt.register_task("ok", [&](TaskContext&) { ran = true; });
  fx.rt.execute(TaskLauncher::for_task(ok).region(fx.grid, {fx.fw},
                                                  Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(fx.rt.fault_report().ok());
}

// --- traces ---------------------------------------------------------------

TEST(FaultTest, InvalidatedTraceRecaptures) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(0));  // fails iteration 0's launch only
  cfg.fault_plan = plan;
  Fixture fx(8, 4, cfg);
  std::atomic<int> ran{0};
  const TaskFnId tick = fx.rt.register_task("tick", [&](TaskContext&) { ran++; });
  // No region arguments: iterations are independent, so the poison stays
  // inside iteration 0 and later iterations can re-capture cleanly.
  for (int it = 0; it < 4; ++it) {
    fx.rt.begin_trace(9);
    fx.rt.execute_index(IndexLauncher::over(Domain::line(4)).with_task(tick));
    fx.rt.end_trace(9);
  }
  fx.rt.wait_all();
  // Iteration 0 captured but contained a failure -> invalidated, not kept.
  // Iteration 1 re-captures; iterations 2 and 3 replay.
  EXPECT_EQ(fx.rt.stats().traced_tasks_replayed, 2u * 4u);
  ASSERT_EQ(fx.rt.fault_report().failures.size(), 1u);
  EXPECT_EQ(fx.rt.fault_report().failures[0].kind, FaultKind::kInjected);
  EXPECT_EQ(ran.load(), 15);  // 16 tasks minus the injected one
}

// --- differential: a zero plan changes nothing ----------------------------

std::vector<double> run_stencil(RuntimeConfig cfg) {
  const int64_t n = 64, pieces = 8;
  Fixture fx(n, pieces, cfg);
  const TaskFnId init = fx.rt.register_task("init", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId step = fx.rt.register_task("step", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(1);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& p) {
      double v = in.read(p);
      const Point l = Point::p1(p[0] - 1), r = Point::p1(p[0] + 1);
      if (halo.contains(l)) v += in.read(l);
      if (halo.contains(r)) v += in.read(r);
      out.write(p, v);
    });
  });
  const TaskFnId copy = fx.rt.register_task("copy", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(1);
    auto out = ctx.region(1).accessor<double>(0);
    ctx.region(1).domain().for_each(
        [&](const Point& p) { out.write(p, in.read(p)); });
  });
  const auto id = ProjectionFunctor::identity(1);
  fx.rt.execute_index(IndexLauncher::over(Domain::line(pieces)).with_task(init).region(
      fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite));
  for (int it = 0; it < 3; ++it) {
    fx.rt.execute_index(IndexLauncher::over(Domain::line(pieces))
                            .with_task(step)
                            .region(fx.grid, fx.halos, id, {fx.fv}, Privilege::kRead)
                            .region(fx.grid, fx.blocks, id, {fx.fw}, Privilege::kWrite));
    fx.rt.execute_index(IndexLauncher::over(Domain::line(pieces))
                            .with_task(copy)
                            .region(fx.grid, fx.blocks, id, {fx.fw}, Privilege::kRead)
                            .region(fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite));
  }
  fx.rt.wait_all();
  EXPECT_TRUE(fx.rt.fault_report().ok());
  auto acc = fx.rt.read_region<double>(fx.grid, fx.fv);
  std::vector<double> out;
  for (int64_t i = 0; i < n; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

TEST(FaultTest, EmptyFaultPlanLeavesRegionContentsIdentical) {
  const std::vector<double> baseline = run_stencil(RuntimeConfig{});
  RuntimeConfig cfg;
  cfg.fault_plan = std::make_shared<FaultPlan>();  // installed but empty
  EXPECT_EQ(run_stencil(cfg), baseline);
}

// --- observability --------------------------------------------------------

TEST(FaultTest, FaultsEmitMetricsAndFlightRecorderEvents) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(1), 0);
  cfg.fault_plan = plan;
  Fixture fx(8, 4, cfg);
  const TaskFnId writer = fx.rt.register_task("writer", [](TaskContext&) {});
  const TaskFnId reader = fx.rt.register_task("reader", [](TaskContext&) {});
  const auto id = ProjectionFunctor::identity(1);
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4)).with_task(writer).region(
      fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite));
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4)).with_task(reader).region(
      fx.grid, fx.blocks, id, {fx.fv}, Privilege::kRead));
  fx.rt.wait_all();

  const obs::MetricsSnapshot snap = fx.rt.metrics().snapshot();
  EXPECT_EQ(snap.value("idxl_fault_tasks_total", {{"kind", "injected"}}), 1u);
  EXPECT_EQ(snap.value("idxl_fault_poisoned_total"), 1u);
  EXPECT_EQ(snap.value("idxl_fault_injections_total"), 1u);

  const std::vector<obs::FlightEvent> events = fx.rt.flight_recorder().snapshot();
  EXPECT_TRUE(has_event(events, obs::LifecycleEvent::kFailed));
  EXPECT_TRUE(has_event(events, obs::LifecycleEvent::kPoisoned));
  for (const obs::FlightEvent& e : events) {
    if (e.kind == obs::LifecycleEvent::kFailed) {
      EXPECT_EQ(e.detail, obs::LifecycleDetail::kInjected);
    }
  }
}

TEST(FaultTest, RetriesEmitMetricsAndFlightRecorderEvents) {
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(0), 0);
  cfg.fault_plan = plan;
  Fixture fx(8, 1, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(1))
                          .with_task(noop)
                          .retries(1)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  const obs::MetricsSnapshot snap = fx.rt.metrics().snapshot();
  EXPECT_EQ(snap.value("idxl_retry_attempts_total"), 1u);
  EXPECT_EQ(snap.value("idxl_retry_succeeded_total"), 1u);
  const std::vector<obs::FlightEvent> events = fx.rt.flight_recorder().snapshot();
  bool saw_retry = false;
  for (const obs::FlightEvent& e : events)
    if (e.kind == obs::LifecycleEvent::kRetry) {
      saw_retry = true;
      EXPECT_EQ(e.edge, 1u);  // the attempt number about to run
    }
  EXPECT_TRUE(saw_retry);
}

// --- environment override -------------------------------------------------

TEST(FaultTest, EnvSpecInstallsPlan) {
  ::setenv("IDXL_FAULT_PLAN", "0@(3)", 1);
  Fixture fx(8, 4);
  ::unsetenv("IDXL_FAULT_PLAN");
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4)).with_task(noop).region(
      fx.grid, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
      Privilege::kWrite));
  fx.rt.wait_all();
  const FaultReport report = fx.rt.fault_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].point, Point::p1(3));
  EXPECT_EQ(report.failures[0].kind, FaultKind::kInjected);
}

// --- acceptance demo: 1024-point launch survives a failure via retry ------

TEST(FaultTest, ThousandPointLaunchSurvivesInjectedFailureViaRetry) {
  constexpr int64_t kPoints = 1024;
  RuntimeConfig cfg;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(137), 0);  // one mid-launch casualty, first attempt
  cfg.fault_plan = plan;
  Fixture fx(kPoints, kPoints, cfg);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0]) * 2.0); });
  });
  const LaunchResult r = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(kPoints))
          .with_task(fill)
          .retries(2)
          .region(fx.grid, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_TRUE(r.ran_as_index_launch);
  EXPECT_TRUE(fx.rt.fault_report().ok());
  EXPECT_EQ(fx.rt.stats().retries_succeeded, 1u);
  auto acc = fx.rt.read_region<double>(fx.grid, fx.fv);
  for (int64_t i = 0; i < kPoints; ++i)
    ASSERT_DOUBLE_EQ(acc.read(Point::p1(i)), static_cast<double>(i) * 2.0) << i;
}

// --- sharded runtime ------------------------------------------------------

TEST(ShardedFaultTest, FaultReportPropagatesAcrossShards) {
  ShardedConfig cfg;
  cfg.shards = 2;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(1));  // owned by shard 0 (block sharding, 4 pieces)
  cfg.fault_plan = plan;
  ShardedRuntime rt(cfg);
  auto& forest = rt.forest();
  const auto is = forest.create_index_space(Domain::line(8));
  const auto fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const FieldId fw = forest.allocate_field(fs, sizeof(double), "w");
  const RegionId grid = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(4));
  const PartitionId halos = partition_halo(forest, is, blocks, 1);
  const TaskFnId writer = rt.register_task("writer", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 1.0); });
  });
  const TaskFnId reader = rt.register_task("reader", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(1);
    ctx.region(1).domain().for_each(
        [&](const Point& p) { out.write(p, in.read(p)); });
  });
  const auto id = ProjectionFunctor::identity(1);
  const FaultReport report = rt.run([&](ShardContext& ctx) {
    IndexLauncher w;
    w.task = writer;
    w.domain = Domain::line(4);
    w.args = {{grid, blocks, id, {fv}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(w);
    IndexLauncher r;
    r.task = reader;
    r.domain = Domain::line(4);
    r.args = {{grid, halos, id, {fv}, Privilege::kRead, ReductionOp::kNone},
              {grid, blocks, id, {fw}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(r);
  });
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FaultKind::kInjected);
  EXPECT_EQ(report.failures[0].launch, 0u);
  EXPECT_EQ(report.failures[0].point, Point::p1(1));
  // The failed writer (shard 0's point 1) poisons halo readers 0..2 —
  // point 2 is owned by shard 1, so the poison crossed the shard boundary.
  EXPECT_TRUE(poisoned_contains(report, 1, Point::p1(0)));
  EXPECT_TRUE(poisoned_contains(report, 1, Point::p1(1)));
  EXPECT_TRUE(poisoned_contains(report, 1, Point::p1(2)));
  EXPECT_FALSE(poisoned_contains(report, 1, Point::p1(3)));
  EXPECT_EQ(rt.fault_report(), report);
}

TEST(ShardedFaultTest, RetryRecoversAcrossShards) {
  ShardedConfig cfg;
  cfg.shards = 2;
  auto plan = std::make_shared<FaultPlan>();
  plan->fail(0, Point::p1(3), 0);  // shard 1's point fails once
  cfg.fault_plan = plan;
  ShardedRuntime rt(cfg);
  auto& forest = rt.forest();
  const auto is = forest.create_index_space(Domain::line(8));
  const auto fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId grid = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(4));
  const TaskFnId fill = rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const FaultReport report = rt.run([&](ShardContext& ctx) {
    IndexLauncher l;
    l.task = fill;
    l.domain = Domain::line(4);
    l.max_retries = 2;
    l.args = {{grid, blocks, ProjectionFunctor::identity(1), {fv},
               Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(l);
  });
  EXPECT_TRUE(report.ok());
  auto acc = rt.read_region<double>(grid, fv);
  for (int64_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(acc.read(Point::p1(i)), static_cast<double>(i));
  EXPECT_EQ(rt.metrics().snapshot().value("idxl_retry_succeeded_total"), 1u);
}

// --- fault-injection soak (nightly CI scales the knobs up) ----------------

// Every poisoned task must name a recorded root failure that precedes it.
void check_report_invariants(const FaultReport& report) {
  for (const TaskFault& p : report.poisoned) {
    EXPECT_EQ(p.kind, FaultKind::kPoisoned);
    EXPECT_LT(p.root, p.seq);
    bool found = false;
    for (const TaskFault& f : report.failures) found = found || f.seq == p.root;
    EXPECT_TRUE(found) << "poisoned task names unknown root " << p.root;
  }
  for (const TaskFault& f : report.failures) EXPECT_GE(f.attempts, 1u);
}

// --- fence-time auto-dump -------------------------------------------------

TEST(FaultTest, FenceWithNewFaultsDumpsStateToStderr) {
  // A fence that observes new task faults auto-dumps the flight-recorder
  // tail and metrics snapshot (IDXL_DUMP_ON_FAULT defaults on).
  unsetenv("IDXL_DUMP_ON_FAULT");
  Fixture fx(8, 4);
  const TaskFnId boom = fx.rt.register_task("boom", [](TaskContext& ctx) {
    if (ctx.point[0] == 2) ctx.fail("kaput");
  });
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(boom)
                          .region(fx.grid, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  testing::internal::CaptureStderr();
  fx.rt.wait_all();
  const std::string dump = testing::internal::GetCapturedStderr();
  EXPECT_NE(dump.find("fence observed new task faults"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("1 failures"), std::string::npos) << dump;
  EXPECT_NE(dump.find("lifecycle events"), std::string::npos) << dump;

  // The same faults again at the next fence: already dumped, stay quiet.
  testing::internal::CaptureStderr();
  fx.rt.wait_all();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(FaultTest, FaultDumpHonorsOptOut) {
  ASSERT_EQ(setenv("IDXL_DUMP_ON_FAULT", "0", 1), 0);
  Fixture fx(8, 4);
  const TaskFnId boom = fx.rt.register_task(
      "boom", [](TaskContext& ctx) { ctx.fail("kaput"); });
  fx.rt.execute(TaskLauncher::for_task(boom).region(fx.grid, {fx.fv},
                                                    Privilege::kWrite));
  testing::internal::CaptureStderr();
  fx.rt.wait_all();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  unsetenv("IDXL_DUMP_ON_FAULT");
}

TEST(FaultSoak, RandomPlansKeepReportsConsistentAndReproducible) {
  // Nightly stress: IDXL_SOAK_SEEDS=200 IDXL_SOAK_BASE_SEED=$RANDOM.
  // On failure the seed is in the assertion trace — replay locally with
  // IDXL_SOAK_SEEDS=1 IDXL_SOAK_BASE_SEED=<seed>.
  const char* n_env = std::getenv("IDXL_SOAK_SEEDS");
  const char* base_env = std::getenv("IDXL_SOAK_BASE_SEED");
  const uint64_t seeds = n_env != nullptr ? std::strtoull(n_env, nullptr, 10) : 3;
  const uint64_t base =
      base_env != nullptr ? std::strtoull(base_env, nullptr, 10) : 20260806;
  for (uint64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("IDXL_SOAK_BASE_SEED=" + std::to_string(seed));
    const FaultReport report = run_seeded_program(seed);
    check_report_invariants(report);
    EXPECT_EQ(report, run_seeded_program(seed));  // deterministic replay
  }
}

}  // namespace
}  // namespace idxl
