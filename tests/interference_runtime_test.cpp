// Runtime wiring of the inter-launch interference analysis: certified
// kDisjoint pair verdicts short-circuit the group-tier dependence walk, the
// verdicts are cached across fences, and the certificate bundle travels
// between runtimes (driver exports, worker validates — never trusts).
#include <gtest/gtest.h>

#include "analysis/interference.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"

namespace idxl {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  FieldId fw = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    fw = forest.allocate_field(fs, sizeof(double), "w");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

TaskFnId register_store(Runtime& rt) {
  return rt.register_task("store", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(ctx.arg<FieldId>());
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, 1.0); });
  });
}

IndexLauncher writer(const Fixture& fx, TaskFnId task, FieldId field,
                     ProjectionFunctor functor, int64_t n = 16) {
  return IndexLauncher::over(Domain::line(n))
      .with_task(task)
      .region(fx.region, fx.blocks, std::move(functor), {field},
              Privilege::kWrite)
      .scalars(field);
}

// ---------- local skip path ----------

// Two writer launches on the same tree touching disjoint fields: the second
// launch's group walk would test every point against the first launch's uses
// and find nothing. The field-disjointness certificate proves that up front,
// so the walk is skipped and the per-use counters stay at zero.
TEST(InterferenceRuntimeTest, DisjointFieldWritersSkipGroupWalk) {
  Fixture fx(64, 16);
  const TaskFnId store = register_store(fx.rt);
  fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
  fx.rt.execute_index(writer(fx, store, fx.fw, ProjectionFunctor::identity(1)));
  fx.rt.wait_all();

  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 2u);
  EXPECT_EQ(stats.interference_pair_tests, 1u);
  EXPECT_EQ(stats.interference_skips, 1u);
  EXPECT_EQ(stats.dependence_tests, 0u);
  EXPECT_EQ(stats.dependence_edges, 0u);

  for (FieldId f : {fx.fv, fx.fw}) {
    auto acc = fx.rt.read_region<double>(fx.region, f);
    Domain::line(64).for_each(
        [&](const Point& p) { EXPECT_DOUBLE_EQ(acc.read(p), 1.0); });
  }
}

// Same program with the analysis disabled: the second launch's scan walks
// the first launch's 16 uses (one per shared color) — the baseline cost the
// certificate removes.
TEST(InterferenceRuntimeTest, KnobOffRunsTheBaselineWalk) {
  RuntimeConfig cfg;
  cfg.enable_interference_analysis = false;
  Fixture fx(64, 16, cfg);
  const TaskFnId store = register_store(fx.rt);
  fx.rt.pool().pause();  // keep launch 1's uses live while launch 2 issues
  fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
  fx.rt.execute_index(writer(fx, store, fx.fw, ProjectionFunctor::identity(1)));
  const RuntimeStats stats = fx.rt.stats();
  fx.rt.pool().resume();
  fx.rt.wait_all();

  EXPECT_EQ(stats.group_launches, 2u);
  EXPECT_EQ(stats.interference_pair_tests, 0u);
  EXPECT_EQ(stats.interference_skips, 0u);
  EXPECT_EQ(stats.dependence_tests, 16u);  // per-color probe of launch 1's uses
  EXPECT_EQ(stats.dependence_edges, 0u);   // disjoint fields: no edge emitted
}

// Writers whose functor images overlap must not skip: the pair verdict is
// kInterferes (with a validated witness inside the analyzer), the walk runs,
// and every second-launch point chains behind its same-color predecessor.
TEST(InterferenceRuntimeTest, OverlappingWritersStillWalk) {
  Fixture fx(64, 16);
  const TaskFnId store = register_store(fx.rt);
  fx.rt.pool().pause();  // keep launch 1's uses live while launch 2 issues
  fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
  fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
  const RuntimeStats stats = fx.rt.stats();
  fx.rt.pool().resume();
  fx.rt.wait_all();

  EXPECT_EQ(stats.group_launches, 2u);
  EXPECT_EQ(stats.interference_pair_tests, 1u);
  EXPECT_EQ(stats.interference_skips, 0u);
  EXPECT_EQ(stats.dependence_edges, 16u);  // one edge per shared color
}

// Image-separated writers of the *same* field: launch A covers the even
// colors (2i), launch B the odd ones (2i + 1). The residue-class certificate
// proves separation, so B skips even though the union field masks collide.
TEST(InterferenceRuntimeTest, ResidueSeparatedWritersSkip) {
  Fixture fx(64, 16);
  const TaskFnId store = register_store(fx.rt);
  const auto strided = [](int64_t offset) {
    return ProjectionFunctor::symbolic(
        {make_add(make_mul(make_const(2), make_coord(0)), make_const(offset))});
  };
  fx.rt.execute_index(writer(fx, store, fx.fv, strided(0), 8));
  fx.rt.execute_index(writer(fx, store, fx.fv, strided(1), 8));
  fx.rt.wait_all();

  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 2u);
  EXPECT_EQ(stats.interference_pair_tests, 1u);
  EXPECT_EQ(stats.interference_skips, 1u);
  EXPECT_EQ(stats.dependence_edges, 0u);
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  Domain::line(64).for_each(
      [&](const Point& p) { EXPECT_DOUBLE_EQ(acc.read(p), 1.0); });
}

// ---------- cache behaviour across fences ----------

// Pair verdicts are properties of launch *shapes*, not of runtime state, so
// the cache must survive the fences that reset both dependence tiers: the
// second epoch re-tests the pair but is served from the cache.
TEST(InterferenceRuntimeTest, VerdictsPersistAcrossFences) {
  Fixture fx(64, 16);
  const TaskFnId store = register_store(fx.rt);
  for (int epoch = 0; epoch < 3; ++epoch) {
    fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
    fx.rt.execute_index(writer(fx, store, fx.fw, ProjectionFunctor::identity(1)));
    fx.rt.wait_all();
  }
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.interference_pair_tests, 1u);  // analyzed once, ever
  EXPECT_EQ(stats.interference_skips, 3u);       // skipped every epoch
  EXPECT_EQ(stats.interference_cache_hits, 2u);  // epochs 2 and 3
}

// ---------- import/export (the dist-facing surface) ----------

// A worker-style runtime (import_only) never analyzes: without an imported
// bundle the pair stays unresolved and the walk runs.
TEST(InterferenceRuntimeTest, ImportOnlyModeNeverAnalyzes) {
  RuntimeConfig cfg;
  cfg.interference_import_only = true;
  Fixture fx(64, 16, cfg);
  const TaskFnId store = register_store(fx.rt);
  fx.rt.pool().pause();
  fx.rt.execute_index(writer(fx, store, fx.fv, ProjectionFunctor::identity(1)));
  fx.rt.execute_index(writer(fx, store, fx.fw, ProjectionFunctor::identity(1)));
  const RuntimeStats stats = fx.rt.stats();
  fx.rt.pool().resume();
  fx.rt.wait_all();

  EXPECT_EQ(stats.interference_pair_tests, 0u);
  EXPECT_EQ(stats.interference_skips, 0u);
  EXPECT_EQ(stats.dependence_tests, 16u);
}

// Driver analyzes and exports; an import_only worker adopts the bundle off
// the launch descriptor, validates the certificate against its own live
// summaries, and skips — without ever running the analyzer.
TEST(InterferenceRuntimeTest, BundleOnDescriptorAuthorizesWorkerSkip) {
  Fixture driver(64, 16);
  const TaskFnId d_store = register_store(driver.rt);
  driver.rt.execute_index(
      writer(driver, d_store, driver.fv, ProjectionFunctor::identity(1)));
  driver.rt.execute_index(
      writer(driver, d_store, driver.fw, ProjectionFunctor::identity(1)));
  driver.rt.wait_all();
  const std::vector<std::byte> bundle = driver.rt.export_interference_bundle();
  ASSERT_FALSE(bundle.empty());

  RuntimeConfig cfg;
  cfg.interference_import_only = true;
  Fixture worker(64, 16, cfg);
  const TaskFnId w_store = register_store(worker.rt);
  IndexLauncher first =
      writer(worker, w_store, worker.fv, ProjectionFunctor::identity(1));
  first.analysis_bundle = bundle;  // rides the descriptor, as in dist mode
  worker.rt.execute_index(first);
  worker.rt.execute_index(
      writer(worker, w_store, worker.fw, ProjectionFunctor::identity(1)));
  worker.rt.wait_all();

  const RuntimeStats stats = worker.rt.stats();
  EXPECT_EQ(stats.interference_pair_tests, 0u);  // worker never analyzed
  EXPECT_EQ(stats.interference_skips, 1u);
  EXPECT_GE(stats.interference_imported, 1u);
  EXPECT_GE(stats.interference_validated, 1u);
  EXPECT_EQ(stats.interference_rejected, 0u);
  EXPECT_EQ(stats.dependence_tests, 0u);
}

// A poisoned certificate — valid framing, corrupt payload — must be refused
// at first lookup: the entry is rejected, no skip happens, and the walk runs
// exactly as if nothing had been imported.
TEST(InterferenceRuntimeTest, PoisonedCertificateIsRejectedNotTrusted) {
  Fixture driver(64, 16);
  const TaskFnId d_store = register_store(driver.rt);
  driver.rt.execute_index(
      writer(driver, d_store, driver.fv, ProjectionFunctor::identity(1)));
  driver.rt.execute_index(
      writer(driver, d_store, driver.fw, ProjectionFunctor::identity(1)));
  driver.rt.wait_all();

  auto entries = driver.rt.interference_cache().exportable();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_FALSE(entries[0].second.empty());
  entries[0].second.back() ^= std::byte{0x01};  // flip one certificate bit
  const std::vector<std::byte> poisoned =
      encode_interference_bundle(std::move(entries));

  RuntimeConfig cfg;
  cfg.interference_import_only = true;
  Fixture worker(64, 16, cfg);
  const TaskFnId w_store = register_store(worker.rt);
  worker.rt.import_interference_bundle(poisoned);
  worker.rt.pool().pause();
  worker.rt.execute_index(
      writer(worker, w_store, worker.fv, ProjectionFunctor::identity(1)));
  worker.rt.execute_index(
      writer(worker, w_store, worker.fw, ProjectionFunctor::identity(1)));
  const RuntimeStats stats = worker.rt.stats();
  worker.rt.pool().resume();
  worker.rt.wait_all();

  EXPECT_EQ(stats.interference_skips, 0u);
  EXPECT_GE(stats.interference_rejected, 1u);
  EXPECT_EQ(stats.interference_validated, 0u);
  EXPECT_EQ(stats.dependence_tests, 16u);  // fell back to the walk
}

// Malformed framing (truncation) refuses the whole bundle instead of
// importing a prefix.
TEST(InterferenceRuntimeTest, TruncatedBundleIsRefusedWholesale) {
  Fixture driver(64, 16);
  const TaskFnId store = register_store(driver.rt);
  driver.rt.execute_index(
      writer(driver, store, driver.fv, ProjectionFunctor::identity(1)));
  driver.rt.execute_index(
      writer(driver, store, driver.fw, ProjectionFunctor::identity(1)));
  driver.rt.wait_all();
  std::vector<std::byte> bundle = driver.rt.export_interference_bundle();
  bundle.resize(bundle.size() - 3);

  Fixture worker(64, 16);
  worker.rt.import_interference_bundle(bundle);
  EXPECT_EQ(worker.rt.stats().interference_imported, 0u);
  EXPECT_EQ(worker.rt.interference_cache().size(), 0u);
}

}  // namespace
}  // namespace idxl
