#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "region/partition_ops.hpp"
#include "runtime/mapping.hpp"
#include "runtime/runtime.hpp"

namespace idxl {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

TEST(RuntimeTest, SingleTaskWritesRegion) {
  Fixture fx(8, 1);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  fx.rt.execute(TaskLauncher::for_task(fill).region(fx.region, {fx.fv},
                                                    Privilege::kWrite));
  fx.rt.wait_all();
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(5)), 5.0);
  EXPECT_EQ(fx.rt.stats().point_tasks, 1u);
}

TEST(RuntimeTest, IndexLaunchIdentityIsSafeStaticAndOneCall) {
  Fixture fx(64, 16);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
  });
  const LaunchResult result = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(fill)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();

  EXPECT_TRUE(result.ran_as_index_launch);
  EXPECT_EQ(result.safety.outcome, SafetyOutcome::kSafeStatic);
  // O(1) issuance: one runtime call for 16 tasks.
  EXPECT_EQ(fx.rt.stats().runtime_calls, 1u);
  EXPECT_EQ(fx.rt.stats().point_tasks, 16u);

  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  // Element 63 belongs to block 15.
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(63)), 15.0);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 0.0);
}

TEST(RuntimeTest, NoIdxModeIssuesPerTaskCalls) {
  RuntimeConfig cfg;
  cfg.enable_index_launches = false;
  Fixture fx(64, 16, cfg);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
  });
  const LaunchResult result = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(fill)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();

  EXPECT_FALSE(result.ran_as_index_launch);
  // O(P) issuance in No-IDX mode (the paper's baseline configuration).
  EXPECT_EQ(fx.rt.stats().runtime_calls, 16u);
  EXPECT_EQ(fx.rt.stats().point_tasks, 16u);
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(63)), 15.0);
}

TEST(RuntimeTest, ProgramOrderAcrossLaunches) {
  // Launch 1 writes v[i] = i; launch 2 reads left neighbor's halo and adds.
  Fixture fx(40, 4);
  auto& forest = fx.rt.forest();
  const PartitionId halos = partition_halo(forest, fx.is, fx.blocks, 1);

  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId smooth = fx.rt.register_task("smooth", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(0);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& p) {
      double sum = in.read(p);
      const Point l = Point::p1(p[0] - 1), r = Point::p1(p[0] + 1);
      if (halo.contains(l)) sum += in.read(l);
      if (halo.contains(r)) sum += in.read(r);
      out.write(p, sum);
    });
  });

  // Second region for output (separate tree).
  const RegionId out_region = forest.create_region(fx.is, fx.fs);

  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(fill)
                          .region(fx.region, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));

  const auto r2 = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(4))
          .with_task(smooth)
          .region(fx.region, halos, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kRead)
          .region(out_region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_TRUE(r2.ran_as_index_launch);

  auto acc = fx.rt.read_region<double>(out_region, fx.fv);
  // Interior point 17: 16+17+18.
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(17)), 51.0);
  // Block-boundary point 9 reads neighbor block's value 10 via the halo —
  // this is only correct if launch 2 waited for *all* of launch 1's
  // relevant writers.
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(9)), 8.0 + 9.0 + 10.0);
  // Edge point 0: 0+1.
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 1.0);
}

TEST(RuntimeTest, UnsafeLaunchFallsBackSequentially) {
  // write q[i % 3] over [0,6): unsafe as an index launch; the fallback task
  // loop must still produce the sequential semantics: q[c] ends up with the
  // LAST i mapping to c.
  Fixture fx(3, 3);
  const TaskFnId stamp = fx.rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
  });
  const LaunchResult result = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(6))
          .with_task(stamp)
          .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(0, 3),
                  {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();

  EXPECT_FALSE(result.ran_as_index_launch);
  EXPECT_EQ(result.safety.outcome, SafetyOutcome::kUnsafe);
  EXPECT_EQ(fx.rt.stats().launches_unsafe, 1u);

  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  // Block c is last written by i = c + 3.
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 3.0);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(1)), 4.0);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(2)), 5.0);
}

TEST(RuntimeTest, StrictUnsafeThrows) {
  RuntimeConfig cfg;
  cfg.strict_unsafe = true;
  Fixture fx(3, 3, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  EXPECT_THROW(
      fx.rt.execute_index(
          IndexLauncher::over(Domain::line(6))
              .with_task(noop)
              .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(0, 3),
                      {fx.fv}, Privilege::kWrite)),
      RuntimeError);
}

TEST(RuntimeTest, ReductionIntoSingleCell) {
  // Every task of the launch reduces its block's sum into one global cell
  // via a constant projection functor — safe because reductions are exempt
  // from self-checks.
  Fixture fx(100, 10);
  auto& forest = fx.rt.forest();
  const IndexSpaceId sum_is = forest.create_index_space(Domain::line(1));
  const RegionId sum_region = forest.create_region(sum_is, fx.fs);
  const PartitionId sum_part = partition_equal(forest, sum_is, Rect::line(1));

  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId reduce = fx.rt.register_task("reduce", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(0);
    double sum = 0;
    ctx.region(0).domain().for_each([&](const Point& p) { sum += in.read(p); });
    out.reduce(Point::p1(0), sum);
  });

  fx.rt.execute_index(IndexLauncher::over(Domain::line(10))
                          .with_task(fill)
                          .region(fx.region, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));

  const auto r = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(10))
          .with_task(reduce)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kRead)
          .region(sum_region, sum_part,
                  ProjectionFunctor::symbolic({make_const(0)}), {fx.fv},
                  Privilege::kReduce, ReductionOp::kSum));
  fx.rt.wait_all();
  EXPECT_TRUE(r.ran_as_index_launch);

  auto acc = fx.rt.read_region<double>(sum_region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 99.0 * 100.0 / 2.0);
}

TEST(RuntimeTest, ScalarArgsReachTasks) {
  Fixture fx(4, 1);
  struct Params {
    double scale;
    int64_t offset;
  };
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    const auto& params = ctx.arg<Params>();
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, params.scale * static_cast<double>(p[0] + params.offset));
    });
  });
  fx.rt.execute(TaskLauncher::for_task(fill)
                    .region(fx.region, {fx.fv}, Privilege::kWrite)
                    .scalars(Params{2.5, 10}));
  fx.rt.wait_all();
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(3)), 2.5 * 13.0);
}

TEST(RuntimeTest, IterativeStencilMatchesSerialReference) {
  const int64_t n = 60, pieces = 6, iters = 8;
  Fixture fx(n, pieces);
  auto& forest = fx.rt.forest();
  const FieldId f_new = forest.allocate_field(fx.fs, sizeof(double), "v_new");
  // Recreate region so it has both fields.
  const RegionId grid = forest.create_region(fx.is, fx.fs);
  const PartitionId blocks = partition_equal(forest, fx.is, Rect::line(pieces));
  const PartitionId halos = partition_halo(forest, fx.is, blocks, 1);

  const TaskFnId init = fx.rt.register_task("init", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, p[0] % 7 == 0 ? 100.0 : 0.0);
    });
  });
  const TaskFnId step = fx.rt.register_task("step", [f_new](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(f_new);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& p) {
      double acc_val = in.read(p) * 0.5;
      const Point l = Point::p1(p[0] - 1), r = Point::p1(p[0] + 1);
      if (halo.contains(l)) acc_val += in.read(l) * 0.25;
      if (halo.contains(r)) acc_val += in.read(r) * 0.25;
      out.write(p, acc_val);
    });
  });
  const TaskFnId copy_back = fx.rt.register_task("copy", [f_new](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(f_new);
    auto out = ctx.region(1).accessor<double>(0);
    ctx.region(1).domain().for_each([&](const Point& p) { out.write(p, in.read(p)); });
  });

  fx.rt.execute(
      TaskLauncher::for_task(init).region(grid, {fx.fv}, Privilege::kWrite));

  for (int64_t it = 0; it < iters; ++it) {
    const auto rs = fx.rt.execute_index(
        IndexLauncher::over(Domain::line(pieces))
            .with_task(step)
            .region(grid, halos, ProjectionFunctor::identity(1), {fx.fv},
                    Privilege::kRead)
            .region(grid, blocks, ProjectionFunctor::identity(1), {f_new},
                    Privilege::kWrite));
    EXPECT_TRUE(rs.ran_as_index_launch);

    fx.rt.execute_index(
        IndexLauncher::over(Domain::line(pieces))
            .with_task(copy_back)
            .region(grid, blocks, ProjectionFunctor::identity(1), {f_new},
                    Privilege::kRead)
            .region(grid, blocks, ProjectionFunctor::identity(1), {fx.fv},
                    Privilege::kWrite));
  }
  fx.rt.wait_all();

  // Serial reference.
  std::vector<double> ref(n);
  for (int64_t i = 0; i < n; ++i) ref[static_cast<std::size_t>(i)] = i % 7 == 0 ? 100.0 : 0.0;
  for (int64_t it = 0; it < iters; ++it) {
    std::vector<double> next(n);
    for (int64_t i = 0; i < n; ++i) {
      double v = ref[static_cast<std::size_t>(i)] * 0.5;
      if (i > 0) v += ref[static_cast<std::size_t>(i - 1)] * 0.25;
      if (i < n - 1) v += ref[static_cast<std::size_t>(i + 1)] * 0.25;
      next[static_cast<std::size_t>(i)] = v;
    }
    ref = std::move(next);
  }
  auto acc = fx.rt.read_region<double>(grid, fx.fv);
  for (int64_t i = 0; i < n; ++i)
    ASSERT_NEAR(acc.read(Point::p1(i)), ref[static_cast<std::size_t>(i)], 1e-12) << i;
}

TEST(RuntimeTest, TraceCaptureAndReplayProduceSameResults) {
  const int64_t n = 32, pieces = 4;
  Fixture fx(n, pieces);
  auto& forest = fx.rt.forest();
  const PartitionId halos = partition_halo(forest, fx.is, fx.blocks, 1);
  const FieldId f_new = forest.allocate_field(fx.fs, sizeof(double), "v_new");
  const RegionId grid = forest.create_region(fx.is, fx.fs);
  const PartitionId blocks = partition_equal(forest, fx.is, Rect::line(pieces));
  const PartitionId ghosts = partition_halo(forest, fx.is, blocks, 1);
  (void)halos;

  const TaskFnId init = fx.rt.register_task("init", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId step = fx.rt.register_task("step", [f_new](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    auto out = ctx.region(1).accessor<double>(f_new);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& p) {
      double v = in.read(p);
      const Point l = Point::p1(p[0] - 1);
      if (halo.contains(l)) v += in.read(l);
      out.write(p, v);
    });
  });
  const TaskFnId copy_back = fx.rt.register_task("copy", [f_new](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(f_new);
    auto out = ctx.region(1).accessor<double>(0);
    ctx.region(1).domain().for_each([&](const Point& p) { out.write(p, in.read(p)); });
  });

  fx.rt.execute(
      TaskLauncher::for_task(init).region(grid, {fx.fv}, Privilege::kWrite));

  auto run_iteration = [&] {
    fx.rt.execute_index(
        IndexLauncher::over(Domain::line(pieces))
            .with_task(step)
            .region(grid, ghosts, ProjectionFunctor::identity(1), {fx.fv},
                    Privilege::kRead)
            .region(grid, blocks, ProjectionFunctor::identity(1), {f_new},
                    Privilege::kWrite));
    fx.rt.execute_index(
        IndexLauncher::over(Domain::line(pieces))
            .with_task(copy_back)
            .region(grid, blocks, ProjectionFunctor::identity(1), {f_new},
                    Privilege::kRead)
            .region(grid, blocks, ProjectionFunctor::identity(1), {fx.fv},
                    Privilege::kWrite));
  };

  // Iteration 1 captures the trace; iterations 2..5 replay it.
  for (int it = 0; it < 5; ++it) {
    fx.rt.begin_trace(7);
    run_iteration();
    fx.rt.end_trace(7);
  }
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.stats().traced_tasks_replayed, 4u * 2u * pieces);

  // Serial reference: v[i] += v[i-1], 5 times (Jacobi-style with copy).
  std::vector<double> ref(n);
  std::iota(ref.begin(), ref.end(), 0.0);
  for (int it = 0; it < 5; ++it) {
    std::vector<double> next(n);
    for (int64_t i = 0; i < n; ++i)
      next[static_cast<std::size_t>(i)] =
          ref[static_cast<std::size_t>(i)] + (i > 0 ? ref[static_cast<std::size_t>(i - 1)] : 0.0);
    ref = std::move(next);
  }
  auto acc = fx.rt.read_region<double>(grid, fx.fv);
  for (int64_t i = 0; i < n; ++i)
    ASSERT_NEAR(acc.read(Point::p1(i)), ref[static_cast<std::size_t>(i)], 1e-9) << i;
}

TEST(RuntimeTest, TraceReplayDivergenceDetected) {
  Fixture fx(8, 2);
  const TaskFnId a = fx.rt.register_task("a", [](TaskContext&) {});
  const TaskFnId b = fx.rt.register_task("b", [](TaskContext&) {});

  fx.rt.begin_trace(1);
  fx.rt.execute(TaskLauncher::for_task(a));
  fx.rt.end_trace(1);

  fx.rt.begin_trace(1);
  EXPECT_THROW(fx.rt.execute(TaskLauncher::for_task(b)),
               RuntimeError);  // diverges from capture
}

// Regression: a predecessor that had already *completed* by the time a later
// conflicting task was analyzed used to compact out of the trackers without
// reporting an edge. During trace capture that edge is load-bearing — on
// replay both tasks re-execute concurrently, and the missing ordering
// surfaced as an intermittent data race (ASan flake in
// DifferentialTest.RegionContentsMatchAcrossConfigs). Capture must keep
// done-clean uses and record their edges; covers both dependence tiers.
TEST(RuntimeTest, TraceCaptureKeepsEdgesToCompletedPredecessors) {
  for (const bool group : {true, false}) {
    RuntimeConfig cfg;
    cfg.record_task_graph = true;
    cfg.enable_group_analysis = group;
    Fixture fx(16, 4, cfg);
    const TaskFnId bump = fx.rt.register_task("bump", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, acc.read(p) + 1.0); });
    });
    const IndexLauncher launcher =
        IndexLauncher::over(Domain::line(4))
            .with_task(bump)
            .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                    {fx.fv}, Privilege::kReadWrite);

    fx.rt.begin_trace(11);
    fx.rt.execute_index(launcher);
    // Let the first launch fully retire mid-capture: its tracker uses are
    // now done-clean — exactly the state that used to vanish edgeless.
    fx.rt.pool().wait_idle();
    fx.rt.execute_index(launcher);
    fx.rt.end_trace(11);
    fx.rt.wait_all();
    // Point i of launch 2 (seq 4+i) must order after point i of launch 1
    // (seq i); cross-color pairs of the disjoint partition stay edge-free.
    ASSERT_EQ(fx.rt.task_graph_edges().size(), 4u) << "group=" << group;
    for (const auto& [from, to] : fx.rt.task_graph_edges())
      EXPECT_EQ(to, from + 4) << "group=" << group;

    // Replay re-executes both launches; the captured edges must come along.
    fx.rt.begin_trace(11);
    fx.rt.execute_index(launcher);
    fx.rt.execute_index(launcher);
    fx.rt.end_trace(11);
    fx.rt.wait_all();
    EXPECT_EQ(fx.rt.stats().traced_tasks_replayed, 8u) << "group=" << group;
    ASSERT_EQ(fx.rt.task_graph_edges().size(), 8u) << "group=" << group;
    for (const auto& [from, to] : fx.rt.task_graph_edges())
      EXPECT_EQ(to, from + 4) << "group=" << group;
  }
}

TEST(RuntimeTest, TaskGraphExport) {
  RuntimeConfig cfg;
  cfg.record_task_graph = true;
  Fixture fx(16, 4, cfg);
  // Pause the pool so launch 1's points are still live when launch 2's
  // dependences are analyzed; completed uses are compacted out of the
  // tracker, so ungated tiny tasks would race the edge count below.
  // Paused workers enqueue without executing — a deterministic gate.
  fx.rt.pool().pause();
  const TaskFnId stamp = fx.rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 1.0); });
  });
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(4))
          .with_task(stamp)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kReadWrite);
  fx.rt.execute_index(launcher);
  fx.rt.execute_index(launcher);
  fx.rt.pool().resume();
  fx.rt.wait_all();

  const std::string dot = fx.rt.export_task_graph_dot();
  // 8 nodes; launch 2's task i depends on launch 1's task i -> 4 edges.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '['), 1 + 8);  // node attrs + header
  EXPECT_NE(dot.find("stamp@(0)"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(dot.begin(), dot.end(), '>')), 4);

  // Without recording, export throws.
  Fixture plain(16, 4);
  EXPECT_THROW(plain.rt.export_task_graph_dot(), RuntimeError);
}

TEST(RuntimeTest, EmptyDomainLaunchThrows) {
  Fixture fx(8, 2);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  EXPECT_THROW(fx.rt.execute_index(
                   IndexLauncher::over(Domain::from_points({})).with_task(noop)),
               RuntimeError);
}

TEST(RuntimeTest, UnknownTaskIdThrows) {
  Fixture fx(8, 2);
  EXPECT_THROW(
      fx.rt.execute_index(IndexLauncher::over(Domain::line(2)).with_task(999)),
      RuntimeError);
  EXPECT_THROW(fx.rt.execute(TaskLauncher::for_task(999)), RuntimeError);
}

TEST(RuntimeTest, FunctorColorOutsidePartitionThrows) {
  Fixture fx(8, 2);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  // Functor maps beyond the 2-color partition; reads are exempt from
  // safety checks, so the failure surfaces at subregion resolution.
  EXPECT_THROW(
      fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                              .with_task(noop)
                              .region(fx.region, fx.blocks,
                                      ProjectionFunctor::identity(1), {fx.fv},
                                      Privilege::kRead)),
      RuntimeError);
}

TEST(RuntimeDeathTest, ReadWithoutPrivilegeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture fx(8, 2);
  const TaskFnId bad = fx.rt.register_task("bad", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    (void)acc.read(Point::p1(0));  // declared write-only
  });
  const TaskLauncher launcher = TaskLauncher::for_task(bad).region(
      fx.region, {fx.fv}, Privilege::kWrite);
  EXPECT_DEATH(
      {
        fx.rt.execute(launcher);
        fx.rt.wait_all();
      },
      "privilege");
}

TEST(RuntimeDeathTest, OutOfBoundsAccessAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture fx(8, 2);
  const TaskFnId bad = fx.rt.register_task("bad", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    acc.write(Point::p1(7), 1.0);  // block 0 covers [0, 4)
  });
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(1))
          .with_task(bad)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kWrite);
  EXPECT_DEATH(
      {
        fx.rt.execute_index(launcher);
        fx.rt.wait_all();
      },
      "bounds");
}

TEST(RuntimeTest, FutureReducesTaskReturnValues) {
  Fixture fx(100, 10);
  const TaskFnId block_sum = fx.rt.register_task("block_sum", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    double sum = 0;
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(p[0]));
      sum += static_cast<double>(p[0]);
    });
    ctx.return_value = sum;
  });
  IndexLauncher launcher =
      IndexLauncher::over(Domain::line(10))
          .with_task(block_sum)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kWrite)
          .reduce(ReductionOp::kSum);
  LaunchResult r = fx.rt.execute_index(launcher);
  ASSERT_TRUE(r.future.valid());
  EXPECT_DOUBLE_EQ(r.future.get(fx.rt), 99.0 * 100.0 / 2.0);

  // Max across blocks: block b holds values up to 10b+9.
  launcher.result_redop = ReductionOp::kMax;
  const TaskFnId block_max = fx.rt.register_task("block_max", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    double best = -1e300;
    ctx.region(0).domain().for_each([&](const Point& p) {
      best = std::max(best, acc.read(p));
      acc.write(p, best);
    });
    ctx.return_value = best;
  });
  launcher.task = block_max;
  launcher.args[0].privilege = Privilege::kReadWrite;
  LaunchResult r2 = fx.rt.execute_index(launcher);
  EXPECT_DOUBLE_EQ(r2.future.get(fx.rt), 99.0);
}

TEST(RuntimeTest, FutureWorksInNoIdxAndFallbackModes) {
  auto run_mode = [](bool idx, const ProjectionFunctor& functor, int64_t domain) {
    RuntimeConfig cfg;
    cfg.enable_index_launches = idx;
    Fixture fx(30, 3, cfg);
    const TaskFnId one = fx.rt.register_task("one", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 1.0); });
      ctx.return_value = 1.0;
    });
    return fx.rt
        .execute_index(IndexLauncher::over(Domain::line(domain))
                           .with_task(one)
                           .region(fx.region, fx.blocks, functor, {fx.fv},
                                   Privilege::kWrite)
                           .reduce(ReductionOp::kSum))
        .future.get(fx.rt);
  };
  // Index-launch path, task-loop (No-IDX) path, and the unsafe-fallback
  // path (i % 3 over 6 points) all produce the complete reduction.
  EXPECT_DOUBLE_EQ(run_mode(true, ProjectionFunctor::identity(1), 3), 3.0);
  EXPECT_DOUBLE_EQ(run_mode(false, ProjectionFunctor::identity(1), 3), 3.0);
  EXPECT_DOUBLE_EQ(run_mode(true, ProjectionFunctor::modular1d(0, 3), 6), 6.0);
}

TEST(RuntimeTest, EmptyFutureThrows) {
  Fixture fx(8, 2);
  Future empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.get(fx.rt), RuntimeError);
}

TEST(RuntimeTest, ExtendedStaticAnalysisAvoidsDynamicCheck) {
  RuntimeConfig cfg;
  cfg.extended_static_analysis = true;
  Fixture fx(40, 10, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const LaunchResult r = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(10))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(3, 10),
                  {fx.fv}, Privilege::kWrite));
  EXPECT_EQ(r.safety.outcome, SafetyOutcome::kSafeStatic);
  EXPECT_EQ(r.safety.dynamic_points, 0u);
  fx.rt.wait_all();
}

TEST(RuntimeTest, RepeatedLaunchesHitVerdictCache) {
  // Iterative workloads re-launch the same site every step; after the first
  // analysis, the verdict comes from the launch-site cache.
  Fixture fx(40, 10);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const auto launch = [&] {
    return fx.rt.execute_index(
        IndexLauncher::over(Domain::line(10))
            .with_task(noop)
            .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(3, 10),
                    {fx.fv}, Privilege::kWrite));
  };
  const LaunchResult first = launch();
  EXPECT_FALSE(first.safety.cache_hit);
  EXPECT_EQ(first.safety.outcome, SafetyOutcome::kSafeDynamic);
  EXPECT_EQ(first.safety.dynamic_points, 10u);
  for (int i = 0; i < 4; ++i) {
    const LaunchResult r = launch();
    EXPECT_TRUE(r.safety.cache_hit);
    EXPECT_EQ(r.safety.outcome, SafetyOutcome::kSafeDynamic);
    EXPECT_EQ(r.safety.dynamic_points, 0u);  // analysis was not redone
  }
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.stats().verdict_cache_hits, 4u);
  EXPECT_EQ(fx.rt.stats().verdict_cache_misses, 1u);
  EXPECT_EQ(fx.rt.verdict_cache().counters().hits, 4u);
}

TEST(RuntimeTest, VerdictCacheCanBeDisabled) {
  RuntimeConfig cfg;
  cfg.enable_verdict_cache = false;
  Fixture fx(40, 10, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  for (int i = 0; i < 3; ++i) {
    const LaunchResult r = fx.rt.execute_index(
        IndexLauncher::over(Domain::line(10))
            .with_task(noop)
            .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(3, 10),
                    {fx.fv}, Privilege::kWrite));
    EXPECT_FALSE(r.safety.cache_hit);
    EXPECT_EQ(r.safety.dynamic_points, 10u);  // re-analyzed every launch
  }
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.stats().verdict_cache_hits, 0u);
  EXPECT_EQ(fx.rt.verdict_cache().size(), 0u);
}

TEST(RuntimeTest, RapidReissueStress) {
  // Regression test for an issuance race: a dependency that completes the
  // instant its successor edge is published must not double-trigger the
  // successor. Reproduces with no-op tasks whose predecessors finish faster
  // than the issuing thread can raise the pending count.
  RuntimeConfig cfg;
  cfg.workers = 2;
  Fixture fx(256, 64, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(64))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kReadWrite);
  for (int i = 0; i < 50; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.stats().point_tasks, 50u * 64u);
}

TEST(RuntimeTest, DisjointPartitionSkipsDomainTests) {
  // Whole-partition reasoning in the tracker: repeated launches over one
  // disjoint partition should need far fewer pairwise dependence tests
  // than the quadratic all-pairs scan.
  Fixture fx(256, 64);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(64))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1),
                  {fx.fv}, Privilege::kReadWrite);
  for (int i = 0; i < 10; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();
  // Each task conflicts only with its same-color predecessor: the tests
  // performed stay linear in tasks, far below the 64x64 pairwise bound.
  EXPECT_LT(fx.rt.stats().dependence_tests, 10u * 64u * 8u);
}

// ---------- sharding / slicing functors ----------

TEST(MappingTest, BlockShardingPartitionsDomain) {
  BlockShardingFunctor sharder;
  const Domain d = Domain::line(100);
  std::vector<int> counts(4, 0);
  d.for_each([&](const Point& p) { ++counts[sharder.shard(p, d, 4)]; });
  for (int c : counts) EXPECT_EQ(c, 25);
  // Contiguity: shard of point 0 is 0, of point 99 is 3.
  EXPECT_EQ(sharder.shard(Point::p1(0), d, 4), 0u);
  EXPECT_EQ(sharder.shard(Point::p1(99), d, 4), 3u);
}

TEST(MappingTest, BlockShardingLocalPoints) {
  BlockShardingFunctor sharder;
  const Domain d = Domain::line(10);
  const auto local = sharder.local_points(d, 1, 3);
  // Shards of 10 over 3: idx*3/10 -> shard 1 owns idx 4..6.
  ASSERT_EQ(local.size(), 3u);
  EXPECT_EQ(local[0], Point::p1(4));
  EXPECT_EQ(local[2], Point::p1(6));
}

TEST(MappingTest, CyclicShardingRoundRobins) {
  CyclicShardingFunctor sharder;
  const Domain d = Domain::line(8);
  EXPECT_EQ(sharder.shard(Point::p1(0), d, 3), 0u);
  EXPECT_EQ(sharder.shard(Point::p1(1), d, 3), 1u);
  EXPECT_EQ(sharder.shard(Point::p1(2), d, 3), 2u);
  EXPECT_EQ(sharder.shard(Point::p1(3), d, 3), 0u);
}

TEST(MappingTest, ShardingWorksOnSparseDomains) {
  BlockShardingFunctor sharder;
  std::vector<Point> pts;
  for (int i = 0; i < 12; i += 2) pts.push_back(Point::p1(i));
  const Domain d = Domain::from_points(pts);
  std::vector<int> counts(2, 0);
  d.for_each([&](const Point& p) { ++counts[sharder.shard(p, d, 2)]; });
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
}

TEST(MappingTest, BinarySlicingCoversDomainExactly) {
  BinarySlicingFunctor slicer;
  Slice root;
  root.domain = Domain(Rect::box2(16, 16));
  root.node_lo = 0;
  root.node_hi = 7;

  // Recursively expand to leaves and verify the leaves tile the domain with
  // one leaf per node.
  std::vector<Slice> leaves;
  auto expand = [&](auto&& self, const Slice& s) -> void {
    const auto children = slicer.slice(s);
    if (children.size() == 1 && children[0].node_lo == s.node_lo &&
        children[0].node_hi == s.node_hi) {
      leaves.push_back(s);
      return;
    }
    for (const Slice& c : children) self(self, c);
  };
  expand(expand, root);

  ASSERT_EQ(leaves.size(), 8u);
  int64_t total = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].node_lo, leaves[i].node_hi);
    total += leaves[i].domain.volume();
    for (std::size_t j = i + 1; j < leaves.size(); ++j)
      EXPECT_TRUE(leaves[i].domain.disjoint_from(leaves[j].domain));
  }
  EXPECT_EQ(total, 256);
}

TEST(MappingTest, BinarySlicingSparseDomain) {
  BinarySlicingFunctor slicer;
  std::vector<Point> pts;
  for (int i = 0; i < 7; ++i) pts.push_back(Point::p1(i * 3));
  Slice root;
  root.domain = Domain::from_points(pts);
  root.node_lo = 0;
  root.node_hi = 1;
  const auto children = slicer.slice(root);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].domain.volume() + children[1].domain.volume(), 7);
  EXPECT_TRUE(children[0].domain.disjoint_from(children[1].domain));
}

}  // namespace
}  // namespace idxl
