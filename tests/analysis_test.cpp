#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/absint.hpp"
#include "analysis/hybrid.hpp"
#include "support/rng.hpp"

namespace idxl {
namespace {

// Brute-force injectivity oracle.
bool brute_injective(const ProjectionFunctor& f, const Domain& d, const Rect& colors) {
  std::unordered_set<int64_t> seen;
  bool injective = true;
  d.for_each([&](const Point& p) {
    if (!injective) return;
    const Point c = f(p);
    if (!colors.contains(c)) return;  // Listing 3 skips out-of-bounds colors
    if (!seen.insert(colors.linearize(c)).second) injective = false;
  });
  return injective;
}

// ---------- static_injectivity ----------

TEST(StaticInjectivityTest, IdentityIsInjective) {
  EXPECT_EQ(static_injectivity(ProjectionFunctor::identity(1), Domain::line(100)),
            Tri::kYes);
  EXPECT_EQ(static_injectivity(ProjectionFunctor::identity(3),
                               Domain(Rect::box3(4, 4, 4))),
            Tri::kYes);
}

TEST(StaticInjectivityTest, ConstantIsNotInjective) {
  EXPECT_EQ(static_injectivity(ProjectionFunctor::symbolic({make_const(3)}),
                               Domain::line(10)),
            Tri::kNo);
  // ...unless the domain has a single point.
  EXPECT_EQ(static_injectivity(ProjectionFunctor::symbolic({make_const(3)}),
                               Domain::line(1)),
            Tri::kYes);
}

TEST(StaticInjectivityTest, AffineInjectiveIffNonDegenerate) {
  EXPECT_EQ(static_injectivity(ProjectionFunctor::affine1d(2, 5), Domain::line(50)),
            Tri::kYes);
  EXPECT_EQ(static_injectivity(ProjectionFunctor::affine1d(-1, 0), Domain::line(50)),
            Tri::kYes);
  // a == 0 degenerates to a constant.
  EXPECT_EQ(static_injectivity(ProjectionFunctor::affine1d(0, 5), Domain::line(50)),
            Tri::kNo);
}

TEST(StaticInjectivityTest, SumOfCoordsNotInjectiveOnGrid) {
  const auto f = ProjectionFunctor::symbolic({make_add(make_coord(0), make_coord(1))});
  EXPECT_EQ(static_injectivity(f, Domain(Rect::box2(4, 4))), Tri::kNo);
}

TEST(StaticInjectivityTest, SumOfCoordsInjectiveOnDiagonalSliceIsUnknown) {
  // On an anti-diagonal the null vector (1,-1) never connects two domain
  // points... but it does: (0,3)+(1,-1)=(1,2) which IS in the slice. So
  // x+y is constant on the slice — the static analyzer may prove kNo via
  // the witness search. Either kNo or kUnknown is sound; never kYes.
  std::vector<Point> diag;
  for (int x = 0; x < 4; ++x) diag.push_back(Point::p2(x, 3 - x));
  const auto f = ProjectionFunctor::symbolic({make_add(make_coord(0), make_coord(1))});
  EXPECT_NE(static_injectivity(f, Domain::from_points(diag)), Tri::kYes);
}

TEST(StaticInjectivityTest, ModularIsUnknown) {
  EXPECT_EQ(static_injectivity(ProjectionFunctor::modular1d(1, 5), Domain::line(5)),
            Tri::kUnknown);
}

TEST(StaticInjectivityTest, QuadraticIsUnknown) {
  const auto f = ProjectionFunctor::symbolic(
      {make_add(make_mul(make_coord(0), make_coord(0)), make_coord(0))});
  EXPECT_EQ(static_injectivity(f, Domain::line(10)), Tri::kUnknown);
}

TEST(StaticInjectivityTest, OpaqueIsUnknown) {
  const auto f = ProjectionFunctor::opaque([](const Point& p) { return p; }, 1);
  EXPECT_EQ(static_injectivity(f, Domain::line(10)), Tri::kUnknown);
}

// Property: the static verdict is *sound* against the brute-force oracle.
TEST(StaticInjectivityTest, SoundnessProperty) {
  Rng rng(99);
  const Rect colors(Point::p1(-500), Point::p1(500));
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t a = rng.next_in(-3, 3);
    const int64_t b = rng.next_in(-10, 10);
    const auto f = ProjectionFunctor::affine1d(a, b);
    const Domain d = Domain::line(rng.next_in(1, 40));
    const Tri verdict = static_injectivity(f, d);
    const bool actual = brute_injective(f, d, colors);
    if (verdict == Tri::kYes) {
      EXPECT_TRUE(actual) << "a=" << a << " b=" << b;
    }
    if (verdict == Tri::kNo) {
      EXPECT_FALSE(actual) << "a=" << a << " b=" << b;
    }
  }
}

// ---------- extended static classifier ----------

TEST(ExtendedStaticTest, ModularInjectiveWithinPeriod) {
  // (i + 3) mod 10 over [0, 10): one full period -> statically injective.
  EXPECT_EQ(static_injectivity(ProjectionFunctor::modular1d(3, 10), Domain::line(10),
                               /*extended=*/true),
            Tri::kYes);
  // Baseline analyzer still says unknown.
  EXPECT_EQ(static_injectivity(ProjectionFunctor::modular1d(3, 10), Domain::line(10),
                               /*extended=*/false),
            Tri::kUnknown);
}

TEST(ExtendedStaticTest, ModularNonInjectiveBeyondPeriod) {
  // i mod 3 over [0, 5): collision at (0, 3) — provable, values nonnegative.
  EXPECT_EQ(static_injectivity(ProjectionFunctor::modular1d(0, 3), Domain::line(5),
                               /*extended=*/true),
            Tri::kNo);
}

TEST(ExtendedStaticTest, ModularGcdPeriod) {
  // (2i) mod 10: period 10/gcd(2,10) = 5. Injective over [0,5), not [0,6).
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_mul(make_const(2), make_coord(0)), make_const(10))});
  EXPECT_EQ(static_injectivity(f, Domain::line(5), true), Tri::kYes);
  EXPECT_EQ(static_injectivity(f, Domain::line(6), true), Tri::kNo);
}

TEST(ExtendedStaticTest, ModularMixedSignRefutedWithWitness) {
  // (i - 3) mod 3 over [0, 6): values span negative and positive, but
  // congruent inputs still collide (e.g. f(0) = f(3) = 0) — the abstract
  // interpreter probes the stride-3 candidates and verifies a concrete pair.
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_sub(make_coord(0), make_const(3)), make_const(3))});
  RaceWitness w;
  EXPECT_EQ(static_injectivity(f, Domain::line(6), true, &w), Tri::kNo);
  EXPECT_TRUE(witness_valid(f, Domain::line(6), w));
}

TEST(ExtendedStaticTest, MonotoneQuadraticInjective) {
  // i^2 + 3i + 5 over [0, 100): strictly increasing.
  const auto f = ProjectionFunctor::symbolic(
      {make_add(make_add(make_mul(make_coord(0), make_coord(0)),
                         make_mul(make_const(3), make_coord(0))),
                make_const(5))});
  EXPECT_EQ(static_injectivity(f, Domain::line(100), true), Tri::kYes);
  EXPECT_EQ(static_injectivity(f, Domain::line(100), false), Tri::kUnknown);
}

TEST(ExtendedStaticTest, NonMonotoneQuadraticRefutedWithWitness) {
  // i^2 over [-3, 3]: the parabola turns inside the domain, so symmetric
  // points collide — the vertex probe finds (-k, k) and verifies it.
  const auto f = ProjectionFunctor::symbolic({make_mul(make_coord(0), make_coord(0))});
  const Domain dom(Rect(Point::p1(-3), Point::p1(3)));
  RaceWitness w;
  EXPECT_EQ(static_injectivity(f, dom, true, &w), Tri::kNo);
  EXPECT_TRUE(witness_valid(f, dom, w));
  EXPECT_NE(w.p1, w.p2);
}

// Property: the extended classifier is sound against brute force for random
// modular and quadratic functors.
TEST(ExtendedStaticTest, SoundnessProperty) {
  Rng rng(4242);
  const Rect colors(Point::p1(-2000), Point::p1(2000));
  for (int trial = 0; trial < 400; ++trial) {
    ProjectionFunctor f = ProjectionFunctor::identity(1);
    if (rng.next_below(2) == 0) {
      const int64_t a = rng.next_in(-4, 4);
      const int64_t b = rng.next_in(-8, 8);
      const int64_t n = rng.next_in(1, 12);
      f = ProjectionFunctor::symbolic({make_mod(
          make_add(make_mul(make_const(a), make_coord(0)), make_const(b)),
          make_const(n))});
    } else {
      const int64_t q = rng.next_in(-3, 3);
      const int64_t a = rng.next_in(-6, 6);
      f = ProjectionFunctor::symbolic(
          {make_add(make_mul(make_const(q), make_mul(make_coord(0), make_coord(0))),
                    make_mul(make_const(a), make_coord(0)))});
    }
    const int64_t lo = rng.next_in(-10, 10);
    const Domain d(Rect(Point::p1(lo), Point::p1(lo + rng.next_in(0, 20))));
    const Tri verdict = static_injectivity(f, d, /*extended=*/true);
    const bool actual = brute_injective(f, d, colors);
    if (verdict == Tri::kYes) {
      EXPECT_TRUE(actual) << f.to_string() << " over " << d.to_string();
    }
    if (verdict == Tri::kNo) {
      EXPECT_FALSE(actual) << f.to_string() << " over " << d.to_string();
    }
  }
}

TEST(ExtendedStaticTest, SameSlopeImagesDecided) {
  const Domain d = Domain::line(10);
  // Interleaved 2i vs 2i+1: different residues mod 2 -> disjoint.
  EXPECT_EQ(static_images_disjoint(ProjectionFunctor::affine1d(2, 0),
                                   ProjectionFunctor::affine1d(2, 1), d, true),
            Tri::kYes);
  // i vs i+3: shift 3 fits in a 10-wide domain -> overlap proven.
  EXPECT_EQ(static_images_disjoint(ProjectionFunctor::affine1d(1, 0),
                                   ProjectionFunctor::affine1d(1, 3), d, true),
            Tri::kNo);
  // 3i vs 3i+6: shift 2 fits -> overlap; 3i vs 3i+30: shift 10 doesn't.
  EXPECT_EQ(static_images_disjoint(ProjectionFunctor::affine1d(3, 0),
                                   ProjectionFunctor::affine1d(3, 6), d, true),
            Tri::kNo);
  EXPECT_EQ(static_images_disjoint(ProjectionFunctor::affine1d(3, 0),
                                   ProjectionFunctor::affine1d(3, 30), d, true),
            Tri::kYes);
  // Baseline analyzer leaves the interleaved case unknown.
  EXPECT_EQ(static_images_disjoint(ProjectionFunctor::affine1d(2, 0),
                                   ProjectionFunctor::affine1d(2, 1), d, false),
            Tri::kUnknown);
}

TEST(ExtendedStaticTest, SameSlopeImagesSoundnessProperty) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t a = rng.next_in(1, 5) * (rng.next_below(2) ? 1 : -1);
    const auto f = ProjectionFunctor::affine1d(a, rng.next_in(-10, 10));
    const auto g = ProjectionFunctor::affine1d(a, rng.next_in(-10, 10));
    const Domain d = Domain::line(rng.next_in(1, 20));
    const Tri verdict = static_images_disjoint(f, g, d, true);

    std::unordered_set<int64_t> fi;
    bool overlap = false;
    d.for_each([&](const Point& p) { fi.insert(f(p)[0]); });
    d.for_each([&](const Point& p) {
      if (fi.count(g(p)[0])) overlap = true;
    });
    if (verdict == Tri::kYes) {
      EXPECT_FALSE(overlap);
    }
    if (verdict == Tri::kNo) {
      EXPECT_TRUE(overlap);
    }
    // This family is fully decidable: never unknown.
    EXPECT_NE(verdict, Tri::kUnknown);
  }
}

TEST(ExtendedStaticTest, HybridSkipsDynamicCheckWhenExtendedProves) {
  const auto f = ProjectionFunctor::modular1d(3, 10);
  CheckArg arg;
  arg.functor = &f;
  arg.color_space = Rect::line(10);
  arg.partition_disjoint = true;
  arg.partition_uid = 1;
  arg.collection_uid = 1;
  arg.priv = Privilege::kWrite;
  std::vector<CheckArg> args = {arg};

  AnalysisOptions extended;
  extended.extended_static = true;
  const auto report = analyze_launch_safety(args, Domain::line(10), extended);
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeStatic);
  EXPECT_EQ(report.dynamic_points, 0u);
}

// ---------- static_images_disjoint ----------

TEST(StaticImagesDisjointTest, IdenticalFunctorsOverlap) {
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(1, 0);
  EXPECT_EQ(static_images_disjoint(f, g, Domain::line(10)), Tri::kNo);
}

TEST(StaticImagesDisjointTest, ShiftedBeyondDomainDisjoint) {
  // f = i, g = i + 100 over [0,10): image boxes [0,9] and [100,109].
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(1, 100);
  EXPECT_EQ(static_images_disjoint(f, g, Domain::line(10)), Tri::kYes);
}

TEST(StaticImagesDisjointTest, OverlappingBoxesUnknown) {
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(1, 5);
  EXPECT_EQ(static_images_disjoint(f, g, Domain::line(10)), Tri::kUnknown);
}

TEST(StaticImagesDisjointTest, ModularUnknown) {
  const auto f = ProjectionFunctor::modular1d(0, 7);
  const auto g = ProjectionFunctor::modular1d(3, 7);
  EXPECT_EQ(static_images_disjoint(f, g, Domain::line(7)), Tri::kUnknown);
}

// ---------- dynamic_self_check (Listing 3) ----------

TEST(DynamicSelfCheckTest, IdentityPasses) {
  const auto f = ProjectionFunctor::identity(1);
  const auto r = dynamic_self_check(f, Rect::line(100), Domain::line(100));
  EXPECT_TRUE(r.safe);
  EXPECT_EQ(r.points_evaluated, 100u);
}

TEST(DynamicSelfCheckTest, PaperExampleIMod3Over5Fails) {
  // The paper's running example: i % 3 over [0, 5) is not injective.
  const auto f = ProjectionFunctor::modular1d(0, 3);
  const auto r = dynamic_self_check(f, Rect::line(3), Domain::line(5));
  EXPECT_FALSE(r.safe);
  // Early exit: the duplicate appears at i=3 (4th evaluation).
  EXPECT_EQ(r.points_evaluated, 4u);
}

TEST(DynamicSelfCheckTest, ModularInjectiveWhenDomainFits) {
  const auto f = ProjectionFunctor::modular1d(2, 5);
  EXPECT_TRUE(dynamic_self_check(f, Rect::line(5), Domain::line(5)).safe);
}

TEST(DynamicSelfCheckTest, OutOfBoundsColorsAreSkipped) {
  // f(i) = i - 10 over [0,20): colors [-10,9]; negatives skipped per the
  // bounds check in Listing 3, the rest unique -> safe.
  const auto f = ProjectionFunctor::affine1d(1, -10);
  const auto r = dynamic_self_check(f, Rect::line(10), Domain::line(20));
  EXPECT_TRUE(r.safe);
}

TEST(DynamicSelfCheckTest, QuadraticSafe) {
  // i*i over [0,10) is injective (no negatives in domain).
  const auto f = ProjectionFunctor::symbolic({make_mul(make_coord(0), make_coord(0))});
  EXPECT_TRUE(dynamic_self_check(f, Rect::line(100), Domain::line(10)).safe);
}

TEST(DynamicSelfCheckTest, QuadraticUnsafeWithNegatives) {
  // i*i collides for i and -i.
  const auto f = ProjectionFunctor::symbolic({make_mul(make_coord(0), make_coord(0))});
  const Domain d(Rect(Point::p1(-3), Point::p1(3)));
  EXPECT_FALSE(dynamic_self_check(f, Rect::line(100), d).safe);
}

TEST(DynamicSelfCheckTest, MultiDimLinearization) {
  // 3-D diagonal slice projected to (x,y): duplicates exist iff two wave
  // cells share (x,y). For the x+y+z=k wavefront, (x,y) determines z, so
  // the projection is injective — exactly the DOM safety argument.
  std::vector<Point> wave;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        if (x + y + z == 4) wave.push_back(Point::p3(x, y, z));
  const auto f = ProjectionFunctor::symbolic({make_coord(0), make_coord(1)}, "xy");
  const auto r = dynamic_self_check(f, Rect::box2(4, 4), Domain::from_points(wave));
  EXPECT_TRUE(r.safe);

  // Projecting to (x) alone is NOT injective on the wavefront.
  const auto g = ProjectionFunctor::symbolic({make_coord(0)}, "x");
  EXPECT_FALSE(dynamic_self_check(g, Rect::line(4), Domain::from_points(wave)).safe);
}

TEST(DynamicSelfCheckTest, OpaqueFunctorWorks) {
  const auto f = ProjectionFunctor::opaque(
      [](const Point& p) { return Point::p1(p[0] / 2); }, 1);
  EXPECT_FALSE(dynamic_self_check(f, Rect::line(10), Domain::line(10)).safe);
}

// Property: the dynamic check is sound AND complete vs the brute oracle.
class DynamicCheckProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicCheckProperty, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    // Random functor: affine, modular, quadratic or div.
    ProjectionFunctor f = ProjectionFunctor::identity(1);
    switch (rng.next_below(4)) {
      case 0: f = ProjectionFunctor::affine1d(rng.next_in(-3, 3), rng.next_in(-5, 5)); break;
      case 1: f = ProjectionFunctor::modular1d(rng.next_in(0, 7), rng.next_in(1, 9)); break;
      case 2:
        f = ProjectionFunctor::symbolic(
            {make_add(make_mul(make_coord(0), make_coord(0)),
                      make_mul(make_const(rng.next_in(-2, 2)), make_coord(0)))});
        break;
      default:
        f = ProjectionFunctor::symbolic(
            {make_div(make_coord(0), make_const(rng.next_in(1, 4)))});
        break;
    }
    const Domain d = Domain::line(rng.next_in(1, 30));
    const Rect colors = Rect::line(rng.next_in(1, 40));
    const bool expected = brute_injective(f, d, colors);
    EXPECT_EQ(dynamic_self_check(f, colors, d).safe, expected)
        << f.to_string() << " over " << d.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicCheckProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- dynamic_cross_check ----------

CheckArg make_arg(const ProjectionFunctor& f, const Rect& colors, Privilege priv,
                  uint32_t partition_uid = 1, uint32_t collection_uid = 1,
                  bool disjoint = true) {
  CheckArg a;
  a.functor = &f;
  a.color_space = colors;
  a.partition_disjoint = disjoint;
  a.partition_uid = partition_uid;
  a.collection_uid = collection_uid;
  a.priv = priv;
  return a;
}

TEST(DynamicCrossCheckTest, DisjointImagesPass) {
  // write p[2i], read p[2i+1]: images interleave but never collide.
  const auto fw = ProjectionFunctor::affine1d(2, 0);
  const auto fr = ProjectionFunctor::affine1d(2, 1);
  std::vector<CheckArg> args = {make_arg(fw, Rect::line(20), Privilege::kWrite),
                                make_arg(fr, Rect::line(20), Privilege::kRead)};
  EXPECT_TRUE(dynamic_cross_check(args, Domain::line(10)).safe);
}

TEST(DynamicCrossCheckTest, WriteReadCollisionCaught) {
  // write p[i], read p[i+1]: task i+1 reads what task i writes... actually
  // writes {0..9}, reads {1..10} — overlap on {1..9} -> conflict.
  const auto fw = ProjectionFunctor::affine1d(1, 0);
  const auto fr = ProjectionFunctor::affine1d(1, 1);
  std::vector<CheckArg> args = {make_arg(fw, Rect::line(20), Privilege::kWrite),
                                make_arg(fr, Rect::line(20), Privilege::kRead)};
  EXPECT_FALSE(dynamic_cross_check(args, Domain::line(10)).safe);
}

TEST(DynamicCrossCheckTest, WritesCheckedBeforeReadsRegardlessOfOrder) {
  // Same as above but with the read argument listed first; the §4 ordering
  // (writes first) must still catch the conflict.
  const auto fw = ProjectionFunctor::affine1d(1, 0);
  const auto fr = ProjectionFunctor::affine1d(1, 1);
  std::vector<CheckArg> args = {make_arg(fr, Rect::line(20), Privilege::kRead),
                                make_arg(fw, Rect::line(20), Privilege::kWrite)};
  EXPECT_FALSE(dynamic_cross_check(args, Domain::line(10)).safe);
}

TEST(DynamicCrossCheckTest, ReadsDoNotConflictWithReads) {
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(1, 0);  // same image, both read
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kRead),
                                make_arg(g, Rect::line(10), Privilege::kRead)};
  const auto r = dynamic_cross_check(args, Domain::line(10));
  EXPECT_TRUE(r.safe);
  EXPECT_EQ(r.points_evaluated, 0u);  // group skipped entirely: no writer
}

TEST(DynamicCrossCheckTest, WriteWriteCollisionCaught) {
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(-1, 9);  // mirror: meets f at 4/5
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite),
                                make_arg(g, Rect::line(10), Privilege::kWrite)};
  EXPECT_FALSE(dynamic_cross_check(args, Domain::line(10)).safe);
}

TEST(DynamicCrossCheckTest, SeparatePartitionsUseSeparateBitmasks) {
  // Identical functors on *different* partitions never collide here.
  const auto f = ProjectionFunctor::affine1d(1, 0);
  const auto g = ProjectionFunctor::affine1d(1, 0);
  std::vector<CheckArg> args = {
      make_arg(f, Rect::line(10), Privilege::kWrite, /*partition=*/1),
      make_arg(g, Rect::line(10), Privilege::kWrite, /*partition=*/2)};
  EXPECT_TRUE(dynamic_cross_check(args, Domain::line(10)).safe);
}

TEST(DynamicCrossCheckTest, SelfDuplicateOfWriterCaught) {
  const auto f = ProjectionFunctor::modular1d(0, 3);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(3), Privilege::kWrite)};
  EXPECT_FALSE(dynamic_cross_check(args, Domain::line(5)).safe);
}

TEST(DynamicCrossCheckTest, ManyArgsLinearCost) {
  // 5 read args + 1 write arg, all safe: evaluations = 6 * |D|.
  const auto fw = ProjectionFunctor::affine1d(6, 0);
  std::vector<ProjectionFunctor> readers;
  for (int k = 1; k < 6; ++k) readers.push_back(ProjectionFunctor::affine1d(6, k));
  std::vector<CheckArg> args = {make_arg(fw, Rect::line(60), Privilege::kWrite)};
  for (const auto& fr : readers)
    args.push_back(make_arg(fr, Rect::line(60), Privilege::kRead));
  const auto r = dynamic_cross_check(args, Domain::line(10));
  EXPECT_TRUE(r.safe);
  EXPECT_EQ(r.points_evaluated, 60u);
}

// ---------- hybrid analyze_launch_safety ----------

TEST(HybridTest, TriviallySafeStatic) {
  const auto f = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeStatic);
  EXPECT_EQ(report.dynamic_points, 0u);
}

TEST(HybridTest, ReadOnlyAlwaysSafeEvenNonInjective) {
  const auto f = ProjectionFunctor::modular1d(0, 3);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(3), Privilege::kRead)};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kSafeStatic);
}

TEST(HybridTest, ReductionExemptFromSelfCheck) {
  // Constant functor with reduce privilege: all tasks reduce into one
  // sub-collection — safe (§3 self-check exemption).
  const auto f = ProjectionFunctor::symbolic({make_const(0)});
  auto arg = make_arg(f, Rect::line(1), Privilege::kReduce);
  arg.redop = ReductionOp::kSum;
  std::vector<CheckArg> args = {arg};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(100)).outcome,
            SafetyOutcome::kSafeStatic);
}

TEST(HybridTest, WriteOnAliasedPartitionUnsafe) {
  const auto f = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {
      make_arg(f, Rect::line(10), Privilege::kWrite, 1, 1, /*disjoint=*/false)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  EXPECT_EQ(report.outcome, SafetyOutcome::kUnsafe);
  EXPECT_NE(report.reason.find("aliased"), std::string::npos);
}

TEST(HybridTest, StaticallyNonInjectiveWriteUnsafe) {
  const auto f = ProjectionFunctor::affine1d(0, 3);  // constant
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kUnsafe);
}

TEST(HybridTest, PaperExampleListing2) {
  // foo(p[i], q[i%3]) over [0,5): reads p, writes q. Write functor i%3 is
  // not statically analyzable -> dynamic check -> conflict -> unsafe.
  const auto fp = ProjectionFunctor::identity(1);
  const auto fq = ProjectionFunctor::modular1d(0, 3);
  std::vector<CheckArg> args = {
      make_arg(fp, Rect::line(5), Privilege::kRead, 1, 1),
      make_arg(fq, Rect::line(3), Privilege::kWrite, 2, 2)};
  const auto report = analyze_launch_safety(args, Domain::line(5));
  EXPECT_EQ(report.outcome, SafetyOutcome::kUnsafe);
  EXPECT_GT(report.dynamic_points, 0u);
}

TEST(HybridTest, ModularSafeCaseGoesDynamic) {
  const auto f = ProjectionFunctor::modular1d(3, 10);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeDynamic);
  EXPECT_EQ(report.dynamic_points, 10u);
}

TEST(HybridTest, DynamicChecksCanBeDisabled) {
  const auto f = ProjectionFunctor::modular1d(3, 10);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  AnalysisOptions options;
  options.enable_dynamic_checks = false;
  const auto report = analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeUnchecked);
  EXPECT_EQ(report.dynamic_points, 0u);
}

TEST(HybridTest, CrossCheckSamePartitionDisjointImagesStatic) {
  // write p[i], read p[i + N]: image boxes provably disjoint -> static.
  const auto fw = ProjectionFunctor::affine1d(1, 0);
  const auto fr = ProjectionFunctor::affine1d(1, 100);
  std::vector<CheckArg> args = {
      make_arg(fw, Rect::line(200), Privilege::kWrite, 1, 1),
      make_arg(fr, Rect::line(200), Privilege::kRead, 1, 1)};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kSafeStatic);
}

TEST(HybridTest, CrossCheckIdenticalFunctorsWithWriterUnsafe) {
  const auto fw = ProjectionFunctor::affine1d(1, 0);
  const auto fr = ProjectionFunctor::affine1d(1, 0);
  std::vector<CheckArg> args = {
      make_arg(fw, Rect::line(10), Privilege::kWrite, 1, 1),
      make_arg(fr, Rect::line(10), Privilege::kRead, 1, 1)};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kUnsafe);
}

TEST(HybridTest, CrossCheckUnknownImagesGoDynamic) {
  // write p[2i], read p[2i+1]: boxes overlap, images actually disjoint.
  const auto fw = ProjectionFunctor::affine1d(2, 0);
  const auto fr = ProjectionFunctor::affine1d(2, 1);
  std::vector<CheckArg> args = {
      make_arg(fw, Rect::line(20), Privilege::kWrite, 1, 1),
      make_arg(fr, Rect::line(20), Privilege::kRead, 1, 1)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeDynamic);
}

TEST(HybridTest, DifferentCollectionsIndependent) {
  // Write on two different collections with wild functors on one of them:
  // cross-check passes by rule 2; self-check still applies per-arg.
  const auto fw = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {
      make_arg(fw, Rect::line(10), Privilege::kWrite, 1, /*collection=*/1),
      make_arg(fw, Rect::line(10), Privilege::kWrite, 2, /*collection=*/2)};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kSafeStatic);
}

TEST(HybridTest, OverlappingPartitionsOfSameCollectionUnsafe) {
  // Write through partition 1, read through partition 2, same collection:
  // no §3 rule can discharge this pair.
  const auto f = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {
      make_arg(f, Rect::line(10), Privilege::kWrite, 1, 1),
      make_arg(f, Rect::line(10), Privilege::kRead, 2, 1)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  EXPECT_EQ(report.outcome, SafetyOutcome::kUnsafe);
}

TEST(HybridTest, PairIndependentCallbackOverrides) {
  // Same as above, but the runtime knows the partitions' parents are
  // actually disjoint sub-collections.
  const auto f = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {
      make_arg(f, Rect::line(10), Privilege::kWrite, 1, 1),
      make_arg(f, Rect::line(10), Privilege::kRead, 2, 1)};
  const auto report = analyze_launch_safety(
      args, Domain::line(10), {}, [](std::size_t, std::size_t) { return true; });
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeStatic);
}

TEST(HybridTest, ReductionsSameOpSafeDifferentOpsChecked) {
  const auto f = ProjectionFunctor::symbolic({make_const(0)});
  auto a = make_arg(f, Rect::line(1), Privilege::kReduce, 1, 1);
  a.redop = ReductionOp::kSum;
  auto b = a;
  // Same op: rule 1 applies.
  std::vector<CheckArg> args = {a, b};
  EXPECT_EQ(analyze_launch_safety(args, Domain::line(10)).outcome,
            SafetyOutcome::kSafeStatic);
  // Different ops on the same constant target: interference.
  b.redop = ReductionOp::kMax;
  std::vector<CheckArg> args2 = {a, b};
  EXPECT_EQ(analyze_launch_safety(args2, Domain::line(10)).outcome,
            SafetyOutcome::kUnsafe);
}

TEST(HybridTest, DomSweepPlaneProjectionSafeDynamic) {
  // The Soleil-X DOM pattern (§6.2.3): launch over a 3-D wavefront, write
  // through the (x,y) plane projection. Safe iff no duplicate (x,y) pairs
  // in the wavefront — true for x+y+z = k slices; only the dynamic check
  // can see it.
  std::vector<Point> wave;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        if (x + y + z == 4) wave.push_back(Point::p3(x, y, z));
  const auto f = ProjectionFunctor::symbolic({make_coord(0), make_coord(1)}, "xy");
  std::vector<CheckArg> args = {make_arg(f, Rect::box2(4, 4), Privilege::kWrite)};
  const auto report = analyze_launch_safety(args, Domain::from_points(wave));
  EXPECT_EQ(report.outcome, SafetyOutcome::kSafeDynamic);
}

// ---------- abstract interpretation: transfer functions ----------

TEST(AbsIntTest, ModTransferKeepsResidueClass) {
  // (4i + 1) % 8 over i in [0, 7]: concrete image {1, 5}. The congruence
  // component survives the mod: gcd(4, 8) = 4, residue 1.
  const ExprPtr e = make_mod(
      make_add(make_mul(make_const(4), make_coord(0)), make_const(1)), make_const(8));
  const auto v = abs_eval(*e, Rect::line(8));
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->contains(1));
  EXPECT_TRUE(v->contains(5));
  EXPECT_FALSE(v->contains(2));  // 2 ≢ 1 (mod 4)
  EXPECT_FALSE(v->contains(3));
  EXPECT_FALSE(v->contains(9));  // outside [0, 8)
}

TEST(AbsIntTest, DivTransferExactWhenDivisorDividesClass) {
  // (8i) / 4 over i in [0, 7] = 2i: the divisor divides both modulus and
  // residue, so the congruence transfers exactly (even numbers only).
  const ExprPtr e = make_div(make_mul(make_const(8), make_coord(0)), make_const(4));
  const auto v = abs_eval(*e, Rect::line(8));
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->contains(0));
  EXPECT_TRUE(v->contains(2));
  EXPECT_TRUE(v->contains(14));
  EXPECT_FALSE(v->contains(1));
  EXPECT_FALSE(v->contains(16));
}

TEST(AbsIntTest, CompositionThreadsCongruenceThroughLayers) {
  // ((2i + 1) % 6) * 10 over i in [0, 9]: inner is odd (mod 2 == 1), the
  // %6 keeps oddness (gcd(2,6) = 2), the *10 scales class and interval.
  const ExprPtr e = make_mul(
      make_mod(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)),
               make_const(6)),
      make_const(10));
  const auto v = abs_eval(*e, Rect::line(10));
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->contains(10));
  EXPECT_TRUE(v->contains(30));
  EXPECT_TRUE(v->contains(50));
  EXPECT_FALSE(v->contains(20));  // even multiple of 10: wrong residue
  EXPECT_FALSE(v->contains(15));  // not a multiple of 10
  EXPECT_FALSE(v->contains(70));  // beyond hi = 50
}

TEST(AbsIntTest, TransferSoundnessOnRandomExpressions) {
  // Abstract evaluation over-approximates: every concrete value of a random
  // expression over a random box must be contained in its abstract value.
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const auto gen = [&](auto&& self, int depth) -> ExprPtr {
      if (depth == 0 || rng.next_below(3) == 0) {
        return rng.next_below(2) == 0
                   ? make_const(rng.next_in(-9, 9))
                   : make_coord(static_cast<int>(rng.next_below(2)));
      }
      switch (rng.next_below(6)) {
        case 0: return make_add(self(self, depth - 1), self(self, depth - 1));
        case 1: return make_sub(self(self, depth - 1), self(self, depth - 1));
        case 2: return make_mul(self(self, depth - 1), self(self, depth - 1));
        case 3: return make_neg(self(self, depth - 1));
        case 4: return make_div(self(self, depth - 1), make_const(rng.next_in(1, 5)));
        default: return make_mod(self(self, depth - 1), make_const(rng.next_in(1, 5)));
      }
    };
    const ExprPtr e = gen(gen, 4);
    const Rect box = Rect::box2(static_cast<int64_t>(rng.next_in(1, 5)),
                                static_cast<int64_t>(rng.next_in(1, 5)));
    const auto v = abs_eval(*e, box);
    if (!v) continue;  // overflow bail is always sound
    for (const Point& p : box)
      EXPECT_TRUE(v->contains(e->eval(p)))
          << e->to_string() << " at " << p.to_string() << " abs " << v->to_string();
  }
}

TEST(AbsIntTest, DisjointnessByIntervalAndResidue) {
  const auto even = abs_eval(*make_mul(make_const(2), make_coord(0)), Rect::line(50));
  const auto odd = abs_eval(
      *make_add(make_mul(make_const(2), make_coord(0)), make_const(1)), Rect::line(50));
  ASSERT_TRUE(even && odd);
  EXPECT_TRUE(abs_disjoint(*even, *odd));    // incompatible residues mod 2
  EXPECT_FALSE(abs_disjoint(*even, *even));
  const auto lo = abs_range(0, 9);
  const auto hi = abs_range(10, 20);
  ASSERT_TRUE(lo && hi);
  EXPECT_TRUE(abs_disjoint(*lo, *hi));       // disjoint intervals
}

TEST(AbsIntTest, OverflowDegradesToUnanalyzable) {
  const ExprPtr e = make_mul(make_const(INT64_MAX), make_coord(0));
  EXPECT_FALSE(abs_eval(*e, Rect::line(10)).has_value());
  EXPECT_FALSE(checked_add(INT64_MAX, 1).has_value());
  EXPECT_FALSE(checked_mul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(checked_neg(INT64_MIN).has_value());
}

// ---------- abstract interpretation: injectivity proofs ----------

TEST(AbsIntInjectivityTest, StridedModularProvenInjective) {
  // (2i) % 8 over [0, 4): collisions need a delta that is a multiple of
  // 8 / gcd(2, 8) = 4, impossible within extent 4 — proven, not sampled.
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_mul(make_const(2), make_coord(0)), make_const(8))});
  EXPECT_EQ(static_injectivity(f, Domain::line(4), true), Tri::kYes);
  // Over [0, 8) the stride-4 delta fits: refuted with a concrete witness.
  RaceWitness w;
  EXPECT_EQ(static_injectivity(f, Domain::line(8), true, &w), Tri::kNo);
  EXPECT_TRUE(witness_valid(f, Domain::line(8), w));
}

TEST(AbsIntInjectivityTest, DelinearizationPairProvenInjective) {
  // (i % 8, i / 8) over [0, 64): the canonical 1-D → 2-D delinearization.
  // The mod component collides only at multiples of 8; the div component
  // (nonnegative dividend) only within a window of 7 — empty intersection.
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_coord(0), make_const(8)), make_div(make_coord(0), make_const(8))});
  EXPECT_EQ(static_injectivity(f, Domain::line(64), true), Tri::kYes);
  EXPECT_EQ(static_injectivity(f, Domain::line(64), false), Tri::kUnknown);
}

TEST(AbsIntInjectivityTest, ScaledDivComposition) {
  // (4i + 1) / 4 == i over [0, 10): the quotient window collapses to zero
  // once the inner stride exceeds it.
  const auto f = ProjectionFunctor::symbolic({make_div(
      make_add(make_mul(make_const(4), make_coord(0)), make_const(1)), make_const(4))});
  EXPECT_EQ(static_injectivity(f, Domain::line(10), true), Tri::kYes);
}

TEST(AbsIntInjectivityTest, MultiDimPerAxisResidueSeparation) {
  // ((2·i0) % 8, i1) over a 4×4 box: axis 0 is decided by the residue
  // argument above, axis 1 by the coordinate component — both proven, so
  // the whole multi-dimensional functor is injective.
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_mul(make_const(2), make_coord(0)), make_const(8)),
       make_coord(1)});
  EXPECT_EQ(static_injectivity(f, Domain(Rect::box2(4, 4)), true), Tri::kYes);
  EXPECT_EQ(static_injectivity(f, Domain(Rect::box2(4, 4)), false), Tri::kUnknown);
}

TEST(AbsIntInjectivityTest, UnusedAxisRefutedWithWitness) {
  // (i0) over a 4×4 box ignores i1: two points differing only in i1 write
  // the same color. The analyzer verifies and returns that concrete pair.
  const auto f = ProjectionFunctor::symbolic({make_coord(0)});
  RaceWitness w;
  EXPECT_EQ(static_injectivity(f, Domain(Rect::box2(4, 4)), true, &w), Tri::kNo);
  EXPECT_TRUE(witness_valid(f, Domain(Rect::box2(4, 4)), w));
}

TEST(AbsIntInjectivityTest, ComposedModOfModRefutedByProbe) {
  // (i % 6) % 3 over [0, 6): not a linear-inside-mod shape, so no stride
  // proof applies — the probe stage still finds and verifies f(0) = f(3).
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_mod(make_coord(0), make_const(6)), make_const(3))});
  RaceWitness w;
  EXPECT_EQ(static_injectivity(f, Domain::line(6), true, &w), Tri::kNo);
  EXPECT_TRUE(witness_valid(f, Domain::line(6), w));
}

// ---------- race witnesses from the hybrid analysis ----------

TEST(WitnessTest, StaticRefutationCarriesValidWitness) {
  const auto f = ProjectionFunctor::symbolic({make_const(3)});
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  const auto report = analyze_launch_safety(args, Domain::line(10));
  ASSERT_EQ(report.outcome, SafetyOutcome::kUnsafe);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_EQ(report.witness->arg_i, 0u);
  EXPECT_EQ(report.witness->arg_j, 0u);
  EXPECT_TRUE(witness_valid(f, Domain::line(10), *report.witness));
  EXPECT_NE(report.reason.find("witness"), std::string::npos);
}

TEST(WitnessTest, DynamicRefutationCarriesValidWitness) {
  // Paper Listing 2: write functor i%3 over [0,5) fails the dynamic check;
  // the failure is reconstructed into a concrete colliding pair.
  const auto fp = ProjectionFunctor::identity(1);
  const auto fq = ProjectionFunctor::opaque(
      [](const Point& p) { return Point::p1(p[0] % 3); }, 1);
  std::vector<CheckArg> args = {
      make_arg(fp, Rect::line(5), Privilege::kRead, 1, 1),
      make_arg(fq, Rect::line(3), Privilege::kWrite, 2, 2)};
  const auto report = analyze_launch_safety(args, Domain::line(5));
  ASSERT_EQ(report.outcome, SafetyOutcome::kUnsafe);
  ASSERT_TRUE(report.witness.has_value());
  const RaceWitness& w = *report.witness;
  EXPECT_EQ(w.arg_i, 1u);  // indices remapped to the analyzed args span
  EXPECT_EQ(w.arg_j, 1u);
  EXPECT_TRUE(witness_valid(fq, Domain::line(5), w));
}

TEST(WitnessTest, CrossArgWitnessAllowsEqualPoints) {
  // write p[i], read p[2i]: task 0's read and write touch block 0 — fine —
  // but task 1 reads block 2 while task 2 writes it. Any valid witness
  // relates two *different* argument slots.
  const auto fw = ProjectionFunctor::identity(1);
  const auto fr = ProjectionFunctor::affine1d(2, 0);
  std::vector<CheckArg> args = {
      make_arg(fw, Rect::line(10), Privilege::kWrite),
      make_arg(fr, Rect::line(10), Privilege::kRead)};
  const auto report = analyze_launch_safety(args, Domain::line(5));
  ASSERT_EQ(report.outcome, SafetyOutcome::kUnsafe);
  ASSERT_TRUE(report.witness.has_value());
  const RaceWitness& w = *report.witness;
  EXPECT_NE(w.arg_i, w.arg_j);
  const ProjectionFunctor& fi = w.arg_i == 0 ? fw : fr;
  const ProjectionFunctor& fj = w.arg_j == 0 ? fw : fr;
  EXPECT_TRUE(witness_valid(fi, fj, Domain::line(5), w));
}

TEST(WitnessTest, WitnessValidRejectsFabrications) {
  const auto f = ProjectionFunctor::identity(1);
  RaceWitness w;
  w.p1 = Point::p1(1);
  w.p2 = Point::p1(2);
  w.color = Point::p1(1);
  EXPECT_FALSE(witness_valid(f, Domain::line(10), w));  // f(p2) != color
  w.p2 = Point::p1(1);
  EXPECT_FALSE(witness_valid(f, Domain::line(10), w));  // self pair must differ
  w.p1 = Point::p1(50);
  EXPECT_FALSE(witness_valid(f, Domain::line(10), w));  // out of domain
}

// ---------- launch-site verdict cache ----------

TEST(VerdictCacheTest, OpaqueFunctorsAreUncacheable) {
  const auto f = ProjectionFunctor::opaque([](const Point& p) { return p; }, 1);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  AnalysisOptions options;
  EXPECT_FALSE(VerdictCache::key(args, Domain::line(10), options).has_value());

  VerdictCache cache;
  options.verdict_cache = &cache;
  analyze_launch_safety(args, Domain::line(10), options);
  analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_EQ(cache.counters().hits, 0u);
  EXPECT_EQ(cache.counters().uncacheable, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCacheTest, KeyDistinguishesSites) {
  const auto f = ProjectionFunctor::modular1d(3, 10);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  AnalysisOptions options;
  const auto k1 = VerdictCache::key(args, Domain::line(10), options);
  const auto k2 = VerdictCache::key(args, Domain::line(11), options);   // domain
  args[0].priv = Privilege::kRead;
  const auto k3 = VerdictCache::key(args, Domain::line(10), options);   // privilege
  args[0].priv = Privilege::kWrite;
  options.extended_static = true;
  const auto k4 = VerdictCache::key(args, Domain::line(10), options);   // options
  ASSERT_TRUE(k1 && k2 && k3 && k4);
  EXPECT_NE(*k1, *k2);
  EXPECT_NE(*k1, *k3);
  EXPECT_NE(*k1, *k4);
}

TEST(VerdictCacheTest, RepeatedLaunchHitsAndSkipsDynamicWork) {
  const auto f = ProjectionFunctor::modular1d(3, 10);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  VerdictCache cache;
  AnalysisOptions options;
  options.verdict_cache = &cache;

  const auto first = analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_EQ(first.outcome, SafetyOutcome::kSafeDynamic);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.dynamic_points, 10u);
  EXPECT_EQ(first.cache_misses, 1u);

  const auto second = analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_EQ(second.outcome, SafetyOutcome::kSafeDynamic);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.dynamic_points, 0u);  // no work redone
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A different domain is a different site: miss, not a wrong-verdict hit.
  const auto third = analyze_launch_safety(args, Domain::line(7), options);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(cache.counters().misses, 2u);
}

TEST(VerdictCacheTest, ClearInvalidates) {
  const auto f = ProjectionFunctor::identity(1);
  std::vector<CheckArg> args = {make_arg(f, Rect::line(10), Privilege::kWrite)};
  VerdictCache cache;
  AnalysisOptions options;
  options.verdict_cache = &cache;
  analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  const auto report = analyze_launch_safety(args, Domain::line(10), options);
  EXPECT_FALSE(report.cache_hit);
  EXPECT_EQ(cache.counters().misses, 2u);
}

TEST(VerdictCacheTest, CachedUnsafeVerdictKeepsWitness) {
  const auto f = ProjectionFunctor::symbolic({make_mod(make_coord(0), make_const(3))});
  std::vector<CheckArg> args = {make_arg(f, Rect::line(3), Privilege::kWrite)};
  VerdictCache cache;
  AnalysisOptions options;
  options.verdict_cache = &cache;
  options.extended_static = true;
  analyze_launch_safety(args, Domain::line(5), options);
  const auto hit = analyze_launch_safety(args, Domain::line(5), options);
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_EQ(hit.outcome, SafetyOutcome::kUnsafe);
  ASSERT_TRUE(hit.witness.has_value());
  EXPECT_TRUE(witness_valid(f, Domain::line(5), *hit.witness));
}

// ---------- acceptance: static coverage strictly increases ----------

TEST(StaticCoverageTest, ExtendedTierStrictlyIncreasesDefiniteVerdicts) {
  // The table-2 style functor families. For each, the verdict of both
  // classifier tiers is checked against brute force (zero regressions) and
  // the number of *definite* verdicts must strictly grow with the
  // abstract-interpretation tier.
  struct Family {
    const char* name;
    ProjectionFunctor f;
    Domain d;
  };
  const std::vector<Family> families = {
      {"identity", ProjectionFunctor::identity(1), Domain::line(50)},
      {"affine", ProjectionFunctor::affine1d(3, -1), Domain::line(30)},
      {"constant", ProjectionFunctor::symbolic({make_const(3)}), Domain::line(10)},
      {"rank-deficient", ProjectionFunctor::symbolic({make_add(make_coord(0), make_coord(1))}),
       Domain(Rect::box2(4, 4))},
      {"modular-shift", ProjectionFunctor::modular1d(3, 10), Domain::line(10)},
      {"modular-collide", ProjectionFunctor::modular1d(0, 3), Domain::line(10)},
      {"strided-mod-fit", ProjectionFunctor::symbolic({make_mod(
           make_mul(make_const(2), make_coord(0)), make_const(8))}), Domain::line(4)},
      {"strided-mod-wrap", ProjectionFunctor::symbolic({make_mod(
           make_mul(make_const(2), make_coord(0)), make_const(8))}), Domain::line(8)},
      {"div-block", ProjectionFunctor::symbolic({make_div(make_coord(0), make_const(4))}),
       Domain::line(16)},
      {"delinearize", ProjectionFunctor::symbolic({make_mod(make_coord(0), make_const(8)),
           make_div(make_coord(0), make_const(8))}), Domain::line(64)},
      {"quad-monotone", ProjectionFunctor::symbolic({make_add(
           make_mul(make_coord(0), make_coord(0)), make_mul(make_const(3), make_coord(0)))}),
       Domain::line(20)},
      {"quad-vertex", ProjectionFunctor::symbolic({make_mul(make_coord(0), make_coord(0))}),
       Domain(Rect(Point::p1(-3), Point::p1(3)))},
      {"multidim-residue", ProjectionFunctor::symbolic({make_mod(
           make_mul(make_const(2), make_coord(0)), make_const(8)), make_coord(1)}),
       Domain(Rect::box2(4, 4))},
  };

  const auto brute = [](const ProjectionFunctor& f, const Domain& d) {
    std::unordered_set<std::string> seen;
    bool injective = true;
    d.for_each([&](const Point& p) {
      if (injective && !seen.insert(f(p).to_string()).second) injective = false;
    });
    return injective;
  };

  int definite_base = 0, definite_ext = 0;
  for (const Family& fam : families) {
    const bool truth = brute(fam.f, fam.d);
    const Tri base = static_injectivity(fam.f, fam.d, false);
    RaceWitness w;
    const Tri ext = static_injectivity(fam.f, fam.d, true, &w);
    // Soundness: a definite verdict from either tier matches brute force.
    if (base != Tri::kUnknown) {
      EXPECT_EQ(base == Tri::kYes, truth) << fam.name << " (baseline)";
    }
    if (ext != Tri::kUnknown) {
      EXPECT_EQ(ext == Tri::kYes, truth) << fam.name << " (extended)";
    }
    // Zero regressions: the extended tier never loses a definite verdict.
    if (base != Tri::kUnknown) {
      EXPECT_EQ(ext, base) << fam.name;
    }
    // Every kNo from the extended tier ships a verifiable witness.
    if (ext == Tri::kNo) {
      EXPECT_TRUE(witness_valid(fam.f, fam.d, w)) << fam.name;
    }
    definite_base += base != Tri::kUnknown;
    definite_ext += ext != Tri::kUnknown;
  }
  EXPECT_GT(definite_ext, definite_base);
  // Every interval×congruence-decidable family above is decided.
  EXPECT_EQ(definite_ext, static_cast<int>(families.size()));
}

}  // namespace
}  // namespace idxl
