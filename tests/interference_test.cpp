#include "analysis/interference.hpp"

#include <gtest/gtest.h>

#include "analysis/certificate.hpp"
#include "analysis/witness.hpp"
#include "functor/expr.hpp"
#include "functor/projection.hpp"

namespace idxl {
namespace {

ProjectionFunctor sym1(ExprPtr e, std::string name = "f") {
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::move(e));
  return ProjectionFunctor::symbolic(std::move(exprs), std::move(name));
}

LaunchArgSummary make_arg(ProjectionFunctor f, Domain d,
                          Privilege priv = Privilege::kReadWrite,
                          uint64_t fields = 1, uint32_t partition = 1,
                          bool disjoint = true, uint32_t collection = 1) {
  LaunchArgSummary s;
  const int od = f.output_dim();
  s.functor = std::move(f);
  s.domain = std::move(d);
  s.color_space = od == 2 ? Rect::box2(1 << 12, 1 << 12) : Rect::line(1 << 20);
  s.partition_uid = partition;
  s.partition_disjoint = disjoint;
  s.collection_uid = collection;
  s.field_mask = fields;
  s.priv = priv;
  return s;
}

/// A kDisjoint verdict is only acceptable with a certificate that (a) the
/// independent checker validates and (b) survives an encode/decode round
/// trip and validates again — the exact path a worker rank runs.
void expect_certified_disjoint(const LaunchArgSummary& a,
                               const LaunchArgSummary& b) {
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint) << r.reason;
  ASSERT_TRUE(r.certificate.has_value());
  std::string why;
  EXPECT_TRUE(CertificateChecker::validate(*r.certificate, a.side(), b.side(), &why))
      << why;
  const auto bytes = encode_certificate(*r.certificate);
  const auto decoded = decode_certificate(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(CertificateChecker::validate(*decoded, a.side(), b.side(), &why))
      << why;
}

void expect_witnessed_interference(const LaunchArgSummary& a,
                                   const LaunchArgSummary& b) {
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kInterferes) << r.reason;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(
      pair_witness_valid(a.functor, a.domain, b.functor, b.domain, *r.witness));
}

// --- the eight cross-family kDisjoint launch-pair shapes ---

TEST(InterferenceShapes, AffineTimesAffine) {
  // 2i vs 2i+1: residue classes 0 and 1 mod 2.
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  expect_certified_disjoint(make_arg(f, Domain::line(8)),
                            make_arg(g, Domain::line(8)));
}

TEST(InterferenceShapes, AffineTimesStrided) {
  // 4i vs 2i+1: classes 0 mod 4 and 1 mod 2 are incompatible mod 2.
  const auto f = sym1(make_mul(make_const(4), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  expect_certified_disjoint(make_arg(f, Domain::line(8)),
                            make_arg(g, Domain::line(8)));
}

TEST(InterferenceShapes, ComposedTimesQuotient) {
  // 2*(i%4) vs 2*(i/2)+1: both reduce to even-vs-odd.
  const auto f = sym1(
      make_mul(make_const(2), make_mod(make_coord(0), make_const(4))));
  const auto g = sym1(make_add(
      make_mul(make_const(2), make_div(make_coord(0), make_const(2))),
      make_const(1)));
  expect_certified_disjoint(make_arg(f, Domain::line(8)),
                            make_arg(g, Domain::line(8)));
}

TEST(InterferenceShapes, DisjointResidueClasses) {
  // 3i vs 3i+1: classes 0 and 1 mod 3.
  const auto f = sym1(make_mul(make_const(3), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(3), make_coord(0)), make_const(1)));
  expect_certified_disjoint(make_arg(f, Domain::line(16)),
                            make_arg(g, Domain::line(16)));
}

TEST(InterferenceShapes, DisjointIntervals) {
  // i vs i+1000 over [0,8): images [0,7] and [1000,1007].
  const auto f = sym1(make_coord(0));
  const auto g = sym1(make_add(make_coord(0), make_const(1000)));
  expect_certified_disjoint(make_arg(f, Domain::line(8)),
                            make_arg(g, Domain::line(8)));
}

TEST(InterferenceShapes, IdenticalFunctorDifferentCollections) {
  // Same identity functor, but the two args partition different trees.
  const auto a = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kReadWrite, 1, 1, true, /*collection=*/1);
  const auto b = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kReadWrite, 1, 2, true, /*collection=*/2);
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint) << r.reason;
  ASSERT_TRUE(r.certificate.has_value());
  EXPECT_EQ(r.certificate->kind, CertKind::kDistinctCollections);
  expect_certified_disjoint(a, b);
}

TEST(InterferenceShapes, DelinearizedPairs) {
  // (i/8, i%8) vs (i/8+8, i%8) over [0,64): first components [0,7] vs [8,15].
  std::vector<ExprPtr> ea;
  ea.push_back(make_div(make_coord(0), make_const(8)));
  ea.push_back(make_mod(make_coord(0), make_const(8)));
  std::vector<ExprPtr> eb;
  eb.push_back(make_add(make_div(make_coord(0), make_const(8)), make_const(8)));
  eb.push_back(make_mod(make_coord(0), make_const(8)));
  const auto f = ProjectionFunctor::symbolic(std::move(ea), "delin");
  const auto g = ProjectionFunctor::symbolic(std::move(eb), "delin+8");
  expect_certified_disjoint(make_arg(f, Domain::line(64)),
                            make_arg(g, Domain::line(64)));
}

TEST(InterferenceShapes, QuadraticTimesAffine) {
  // 4i² vs 4i+2: classes 0 and 2 mod 4.
  const auto f = sym1(
      make_mul(make_const(4), make_mul(make_coord(0), make_coord(0))));
  const auto g = sym1(make_add(make_mul(make_const(4), make_coord(0)), make_const(2)));
  expect_certified_disjoint(make_arg(f, Domain::line(8)),
                            make_arg(g, Domain::line(8)));
}

// --- further certified rules ---

TEST(Interference, DisjointFieldMasks) {
  const auto a = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kReadWrite, /*fields=*/0b01);
  const auto b = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kReadWrite, /*fields=*/0b10);
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  EXPECT_EQ(r.certificate->kind, CertKind::kFieldsDisjoint);
  expect_certified_disjoint(a, b);
}

TEST(Interference, BothReadOnly) {
  const auto a = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kRead);
  const auto b = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kRead);
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  EXPECT_EQ(r.certificate->kind, CertKind::kReadOnly);
  expect_certified_disjoint(a, b);
}

TEST(Interference, SparseDomainsUseBoundingBoxSoundly) {
  // Sparse diagonal slices: bounding boxes widen the image, which can only
  // lose verdicts, never fabricate them. 2i vs 2i+1 still separates.
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  const Domain sparse = Domain::from_points({Point::p1(0), Point::p1(3), Point::p1(6)});
  expect_certified_disjoint(make_arg(f, sparse), make_arg(g, sparse));
}

// --- kInterferes with validated witnesses ---

TEST(Interference, IdenticalWritersInterfere) {
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  expect_witnessed_interference(make_arg(f, Domain::line(8)),
                                make_arg(f, Domain::line(8)));
}

TEST(Interference, OverlappingAffineImagesInterfere) {
  // 2i vs i+2 share color 2 (i=1 / i=0).
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_coord(0), make_const(2)));
  expect_witnessed_interference(make_arg(f, Domain::line(8)),
                                make_arg(g, Domain::line(8)));
}

TEST(Interference, OpaqueCollisionFoundByProbe) {
  const auto f = ProjectionFunctor::opaque(
      [](const Point& p) { return Point::p1(p[0] / 2); }, 1, "half");
  expect_witnessed_interference(make_arg(f, Domain::line(8)),
                                make_arg(f, Domain::line(8)));
}

TEST(Interference, ReaderVsWriterSameColorInterferes) {
  const auto f = sym1(make_coord(0));
  expect_witnessed_interference(
      make_arg(f, Domain::line(8), Privilege::kRead),
      make_arg(f, Domain::line(8), Privilege::kReadWrite));
}

// --- kUnknown: the analysis refuses uncertified conclusions ---

TEST(Interference, AliasedPartitionStaysUnknown) {
  // Distinct colors of an *aliased* partition may still overlap, so even
  // even-vs-odd separation proves nothing.
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  const auto a = make_arg(f, Domain::line(8), Privilege::kReadWrite, 1, 1, false);
  const auto b = make_arg(g, Domain::line(8), Privilege::kReadWrite, 1, 1, false);
  EXPECT_EQ(analyze_interference(a, b).verdict, PairVerdict::kUnknown);
}

TEST(Interference, ProbeWithoutCertificateStaysUnknown) {
  // (i*i)%7 over [0,3) hits {0,1,4}; the constant 2 misses it — but the
  // abstract domain cannot prove that, and an exhaustive probe carries no
  // certificate, so the verdict must stay kUnknown (no uncertified skips).
  const auto f = sym1(make_mod(make_mul(make_coord(0), make_coord(0)), make_const(7)));
  const auto g = sym1(make_const(2));
  const auto a = make_arg(f, Domain::line(3));
  const auto b = make_arg(g, Domain::line(3));
  const InterferenceResult r = analyze_interference(a, b);
  EXPECT_EQ(r.verdict, PairVerdict::kUnknown);
  EXPECT_FALSE(r.certificate.has_value());
}

// --- the independent checker rejects every forgery ---

TEST(CertificateChecker, RejectsTamperedResidueClaim) {
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  const auto a = make_arg(f, Domain::line(8));
  const auto b = make_arg(g, Domain::line(8));
  InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  Certificate forged = *r.certificate;
  // Claim the even image is actually the odd class — a lie about 2i.
  forged.lhs.back().val.rem = 1;
  EXPECT_FALSE(CertificateChecker::validate(forged, a.side(), b.side()));
}

TEST(CertificateChecker, RejectsCertificateAgainstDifferentFunctors) {
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  const auto a = make_arg(f, Domain::line(8));
  const auto b = make_arg(g, Domain::line(8));
  InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  // Replaying the proof against an interfering pair (2i vs 2i) must fail
  // the structural match.
  EXPECT_FALSE(CertificateChecker::validate(*r.certificate, a.side(), a.side()));
}

TEST(CertificateChecker, RejectsMalformedClaims) {
  const auto f = sym1(make_coord(0));
  const auto a = make_arg(f, Domain::line(8));
  const auto b = make_arg(sym1(make_add(make_coord(0), make_const(1000))),
                          Domain::line(8));
  InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  Certificate forged = *r.certificate;
  forged.lhs.back().val.mod = -3;  // structurally impossible
  EXPECT_FALSE(CertificateChecker::validate(forged, a.side(), b.side()));
}

TEST(CertificateChecker, RejectsReadOnlyCertificateForWriter) {
  Certificate cert;
  cert.kind = CertKind::kReadOnly;
  const auto a = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kReadWrite);
  const auto b = make_arg(ProjectionFunctor::identity(1), Domain::line(8),
                          Privilege::kRead);
  EXPECT_FALSE(CertificateChecker::validate(cert, a.side(), b.side()));
}

TEST(CertificateChecker, RejectsNonDisjointPartitionForImageSeparation) {
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  const auto a = make_arg(f, Domain::line(8));
  const auto b = make_arg(g, Domain::line(8));
  InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  auto aliased_a = a;
  auto aliased_b = b;
  aliased_a.partition_disjoint = aliased_b.partition_disjoint = false;
  EXPECT_FALSE(CertificateChecker::validate(*r.certificate, aliased_a.side(),
                                            aliased_b.side()));
}

TEST(Certificate, EveryBitFlipFailsDecode) {
  const auto f = sym1(make_mul(make_const(2), make_coord(0)));
  const auto g = sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1)));
  InterferenceResult r =
      analyze_interference(make_arg(f, Domain::line(8)), make_arg(g, Domain::line(8)));
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  const auto bytes = encode_certificate(*r.certificate);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = bytes;
      corrupt[i] ^= static_cast<std::byte>(1 << bit);
      EXPECT_FALSE(decode_certificate(corrupt.data(), corrupt.size()).has_value())
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Certificate, TruncationAndEmptyFailDecode) {
  const auto f = sym1(make_coord(0));
  InterferenceResult r = analyze_interference(
      make_arg(f, Domain::line(8)),
      make_arg(sym1(make_add(make_coord(0), make_const(1000))), Domain::line(8)));
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);
  const auto bytes = encode_certificate(*r.certificate);
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_FALSE(decode_certificate(bytes.data(), n).has_value());
  EXPECT_FALSE(decode_certificate(nullptr, 0).has_value());
}

// --- InterferenceCache ---

TEST(InterferenceCache, KeyIsOrderCanonical) {
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  const auto kab = interference_key(a, b);
  const auto kba = interference_key(b, a);
  ASSERT_TRUE(kab.has_value());
  EXPECT_EQ(*kab, *kba);
}

TEST(InterferenceCache, OpaqueFunctorsAreUncacheable) {
  const auto f = ProjectionFunctor::opaque(
      [](const Point& p) { return p; }, 1, "opq");
  const auto a = make_arg(f, Domain::line(8));
  const auto b = make_arg(ProjectionFunctor::identity(1), Domain::line(8));
  EXPECT_FALSE(interference_key(a, b).has_value());
}

TEST(InterferenceCache, InsertThenLookupHits) {
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  const auto key = interference_key(a, b);
  ASSERT_TRUE(key.has_value());
  InterferenceCache cache;
  EXPECT_FALSE(cache.lookup(*key, a, b).has_value());
  cache.insert(*key, analyze_interference(a, b));
  const auto v = cache.lookup(*key, a, b);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, PairVerdict::kDisjoint);
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(InterferenceCache, ImportedCertificateValidatedOnFirstUse) {
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  const auto key = interference_key(a, b);
  const InterferenceResult r = analyze_interference(a, b);
  ASSERT_EQ(r.verdict, PairVerdict::kDisjoint);

  InterferenceCache cache;
  cache.insert_unchecked(*key, encode_certificate(*r.certificate));
  EXPECT_EQ(cache.counters().imported, 1u);
  // Lookup in *swapped* order must still validate (the shipped lhs/rhs
  // orientation is not guaranteed to match the local one).
  const auto v = cache.lookup(*key, b, a);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, PairVerdict::kDisjoint);
  EXPECT_EQ(cache.counters().validated, 1u);
  // Second lookup: already promoted, no re-validation.
  ASSERT_TRUE(cache.lookup(*key, a, b).has_value());
  EXPECT_EQ(cache.counters().validated, 1u);
  EXPECT_EQ(cache.counters().hits, 2u);
}

TEST(InterferenceCache, PoisonedCertificateRejectedAndErased) {
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  const auto key = interference_key(a, b);
  const InterferenceResult r = analyze_interference(a, b);
  auto bytes = encode_certificate(*r.certificate);
  bytes[bytes.size() / 2] ^= std::byte{0x40};  // poisoned in transit

  InterferenceCache cache;
  cache.insert_unchecked(*key, bytes);
  EXPECT_FALSE(cache.lookup(*key, a, b).has_value());
  EXPECT_EQ(cache.counters().rejected, 1u);
  EXPECT_EQ(cache.size(), 0u);  // erased, later lookups are plain misses
}

TEST(InterferenceCache, ForgedCertificateForWrongPairRejected) {
  // A checksum-valid certificate for (2i, 2i+1) imported under the key of
  // an *interfering* pair (2i, 2i) must be refused by the checker.
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  const InterferenceResult r = analyze_interference(a, b);
  const auto self_key = interference_key(a, a);
  InterferenceCache cache;
  cache.insert_unchecked(*self_key, encode_certificate(*r.certificate));
  EXPECT_FALSE(cache.lookup(*self_key, a, a).has_value());
  EXPECT_EQ(cache.counters().rejected, 1u);
}

TEST(InterferenceCache, ExportableCarriesOnlyCheckedDisjointEntries) {
  const auto a = make_arg(sym1(make_mul(make_const(2), make_coord(0))), Domain::line(8));
  const auto b = make_arg(
      sym1(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      Domain::line(8));
  InterferenceCache cache;
  cache.insert(*interference_key(a, b), analyze_interference(a, b));
  cache.insert(*interference_key(a, a), analyze_interference(a, a));  // kInterferes
  const auto out = cache.exportable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, *interference_key(a, b));
  const auto cert = decode_certificate(out[0].second.data(), out[0].second.size());
  ASSERT_TRUE(cert.has_value());
  EXPECT_TRUE(CertificateChecker::validate(*cert, a.side(), b.side()));
}

}  // namespace
}  // namespace idxl
