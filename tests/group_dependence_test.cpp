// Tests for the two-tier (group-level + per-point) dependence analysis and
// the bulk point-task expansion path, plus the satellites that rode along:
// ThreadPool::submit_batch, live dependence_tests stats, and the linear-time
// task-graph DOT export.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_pool.hpp"

namespace idxl {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  FieldId fw = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    fw = forest.allocate_field(fs, sizeof(double), "w");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

TaskFnId register_bump(Runtime& rt) {
  return rt.register_task("bump", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, acc.read(p) + 1.0); });
  });
}

// ---------- group fast path ----------

TEST(GroupDependenceTest, DisjointLaunchesTakeGroupPath) {
  Fixture fx(64, 16);
  const TaskFnId bump = register_bump(fx.rt);
  fx.rt.fill(fx.region, fx.fv, 0.0);
  fx.rt.wait_all();  // fence: the fill's per-point use is forgotten

  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(16))
          .with_task(bump)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite);
  for (int i = 0; i < 3; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();

  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 3u);
  EXPECT_EQ(stats.group_fallbacks, 0u);
  // Launch-level summary conflicts: the first launch finds no prior state,
  // each subsequent one fires exactly one O(1) test per region argument.
  EXPECT_EQ(stats.group_edges, 2u);
  EXPECT_EQ(stats.point_tasks, 3u * 16u + 1u);  // +1 fill

  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  Domain::line(64).for_each(
      [&](const Point& p) { EXPECT_DOUBLE_EQ(acc.read(p), 3.0); });
}

TEST(GroupDependenceTest, GroupEdgesScaleWithArgsNotPoints) {
  Fixture fx(1024, 256);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(256))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite);
  for (int i = 0; i < 10; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();

  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 10u);
  // O(args) group edges: 9 conflicting launches x 1 argument — nowhere near
  // the 10 x 256 per-point figure, let alone |D|^2.
  EXPECT_EQ(stats.group_edges, 9u);
  // Each point chains only to its same-color predecessor: the per-use walks
  // stay linear in tasks, and so do the emitted edges (predecessors that
  // already completed are legitimately dropped, so these are upper bounds).
  EXPECT_LE(stats.dependence_tests, 10u * 256u);
  EXPECT_LE(stats.dependence_edges, 9u * 256u);
}

TEST(GroupDependenceTest, ReadOnlyLaunchesSkipTheWalkEntirely) {
  Fixture fx(64, 16);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher reader =
      IndexLauncher::over(Domain::line(16))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kRead);
  for (int i = 0; i < 5; ++i) fx.rt.execute_index(reader);
  fx.rt.wait_all();
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 5u);
  // Reader-vs-reader never conflicts: the launch-level summary test says so
  // once per launch, and no per-color list is ever walked.
  EXPECT_EQ(stats.group_edges, 0u);
  EXPECT_EQ(stats.dependence_tests, 0u);
  EXPECT_EQ(stats.dependence_edges, 0u);
}

// ---------- fallbacks ----------

TEST(GroupDependenceTest, AliasedPartitionFallsBack) {
  Fixture fx(64, 8);
  PartitionId halo = partition_halo(fx.rt.forest(), fx.is, fx.blocks, 1);
  const TaskFnId stencil = fx.rt.register_task("stencil", [](TaskContext& ctx) {
    auto out = ctx.region(0).accessor<double>(0);
    auto in = ctx.region(1).accessor<double>(1);
    double sum = 0.0;
    ctx.region(1).domain().for_each([&](const Point& p) { sum += in.read(p); });
    ctx.region(0).domain().for_each(
        [&](const Point& p) { out.write(p, out.read(p) + sum); });
  });
  fx.rt.fill(fx.region, fx.fv, 0.0);
  fx.rt.fill(fx.region, fx.fw, 1.0);
  fx.rt.wait_all();

  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(8))
          .with_task(stencil)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite)
          .region(fx.region, halo, ProjectionFunctor::identity(1), {fx.fw},
                  Privilege::kRead);
  const LaunchResult result = fx.rt.execute_index(launcher);
  fx.rt.wait_all();

  EXPECT_TRUE(result.ran_as_index_launch);  // safe, just not groupable
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 0u);
  EXPECT_EQ(stats.group_fallbacks, 1u);
  // Interior blocks read radius-1 halos of 8 ones; boundary blocks one less.
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(0)), 9.0);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(12)), 10.0);
}

TEST(GroupDependenceTest, OpaqueFunctorFallsBack) {
  Fixture fx(64, 16);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const LaunchResult result = fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(noop)
          .region(fx.region, fx.blocks,
                  ProjectionFunctor::opaque([](const Point& p) { return p; }, 1),
                  {fx.fv}, Privilege::kWrite));
  fx.rt.wait_all();
  EXPECT_TRUE(result.ran_as_index_launch);
  EXPECT_EQ(result.safety.outcome, SafetyOutcome::kSafeDynamic);
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 0u);
  EXPECT_EQ(stats.group_fallbacks, 1u);
}

TEST(GroupDependenceTest, ConfigKnobForcesPerPointPath) {
  RuntimeConfig cfg;
  cfg.enable_group_analysis = false;
  Fixture fx(64, 16, cfg);
  const TaskFnId bump = register_bump(fx.rt);
  fx.rt.fill(fx.region, fx.fv, 0.0);
  fx.rt.wait_all();
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(16))
          .with_task(bump)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite);
  for (int i = 0; i < 3; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 0u);
  EXPECT_EQ(stats.group_fallbacks, 0u);  // not counted when the knob is off
  EXPECT_EQ(stats.group_edges, 0u);
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);  // same schedule either way
  Domain::line(64).for_each(
      [&](const Point& p) { EXPECT_DOUBLE_EQ(acc.read(p), 3.0); });
}

// ---------- materialization and contamination ----------

TEST(GroupDependenceTest, SingleTaskMaterializesGroupState) {
  Fixture fx(64, 16);
  const TaskFnId init = fx.rt.register_task("init", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId sum_task = fx.rt.register_task("sum", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    double sum = 0.0;
    ctx.region(0).domain().for_each([&](const Point& p) { sum += acc.read(p); });
    ctx.return_value = sum;
  });

  fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(init)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kWrite));
  // Single-task read of the whole region: the group summary must flush into
  // the per-point tracker so the read orders after all 16 writers.
  const LaunchResult sum_result =
      fx.rt.execute(TaskLauncher::for_task(sum_task)
                        .region(fx.region, {fx.fv}, Privilege::kRead)
                        .reduce(ReductionOp::kSum));
  EXPECT_DOUBLE_EQ(sum_result.future.get(fx.rt), 63.0 * 64.0 / 2.0);

  RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 1u);
  EXPECT_EQ(stats.group_materializations, 1u);
  // The seeded entries carried the 16 writers into the per-point tracker:
  // the whole-region read collected an edge to each still-live one.
  EXPECT_LE(stats.dependence_edges, 16u);

  // Future::get's wait_all fenced both tiers: the tree is group-analyzable
  // again, not stuck on the per-point path forever.
  fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(init)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kWrite));
  fx.rt.wait_all();
  stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 2u);
  EXPECT_EQ(stats.group_fallbacks, 0u);
}

TEST(GroupDependenceTest, ContaminatedTreeFallsBackUntilFence) {
  Fixture fx(64, 16);
  const TaskFnId bump = register_bump(fx.rt);
  // The fill is a per-point (single-task) use with no prior group state:
  // nothing to materialize, but the tree must still be contaminated or the
  // next group launch would miss its edge to the fill.
  fx.rt.fill(fx.region, fx.fv, 5.0);
  fx.rt.execute_index(
      IndexLauncher::over(Domain::line(16))
          .with_task(bump)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite));
  fx.rt.wait_all();
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.group_launches, 0u);
  EXPECT_EQ(stats.group_fallbacks, 1u);
  EXPECT_EQ(stats.group_materializations, 0u);
  auto acc = fx.rt.read_region<double>(fx.region, fx.fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p1(13)), 6.0);
}

// ---------- live stats (satellite) ----------

TEST(GroupDependenceTest, DependenceTestsAreLiveMidRun) {
  RuntimeConfig cfg;
  cfg.workers = 2;
  Fixture fx(64, 16, cfg);
  std::atomic<bool> release{false};
  const TaskFnId gated = fx.rt.register_task("gated", [&release](TaskContext&) {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(16))
          .with_task(gated)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite);
  fx.rt.execute_index(launcher);
  fx.rt.execute_index(launcher);
  // No wait_all has run: the counter must already reflect the issue-time
  // walks (it used to be synced only inside wait_all).
  const RuntimeStats mid = fx.rt.stats();
  EXPECT_EQ(mid.group_launches, 2u);
  EXPECT_EQ(mid.group_edges, 1u);
  EXPECT_GE(mid.dependence_tests, 16u);
  release.store(true, std::memory_order_release);
  fx.rt.wait_all();
}

// ---------- submit_batch (satellite) ----------

TEST(ThreadPoolTest, SubmitBatchRunsEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i)
    jobs.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.submit_batch(std::move(jobs));
  pool.submit_batch({});  // empty batch is a no-op
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

// ---------- DOT export (satellite) ----------

TEST(GroupDependenceTest, DotExportOfLargeGraphIsBounded) {
  RuntimeConfig cfg;
  cfg.record_task_graph = true;
  Fixture fx(4096, 1024, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  const IndexLauncher launcher =
      IndexLauncher::over(Domain::line(1024))
          .with_task(noop)
          .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {fx.fv},
                  Privilege::kReadWrite);
  for (int i = 0; i < 10; ++i) fx.rt.execute_index(launcher);
  fx.rt.wait_all();
  ASSERT_EQ(fx.rt.task_graph_nodes().size(), 10240u);

  const auto start = std::chrono::steady_clock::now();
  const std::string dot = fx.rt.export_task_graph_dot();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Linear-time export: a 10k-node graph is milliseconds. The bound is
  // generous (CI noise), but the old quadratic string building would be
  // orders of magnitude past any per-node budget.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
  EXPECT_NE(dot.find("digraph tasks"), std::string::npos);
  EXPECT_NE(dot.find("t10239"), std::string::npos);
}

// ---------- differential stress: group vs per-point ----------

// A randomized launch sequence, issued identically under several configs.
struct ProgramOp {
  enum Kind { kBump, kShiftRead, kHaloRead, kOpaqueBump } kind = kBump;
  int64_t shift = 0;   // modular functor offset
  FieldId field = 0;   // primary field
};

/// The field ids a program op's task body should touch (arg bodies can't
/// hardcode ids: ops swap the roles of the two fields).
struct FieldPair {
  FieldId a = 0;
  FieldId b = 0;
};

std::vector<ProgramOp> random_program(uint32_t seed, std::size_t n_ops) {
  std::mt19937 rng(seed);
  std::vector<ProgramOp> ops(n_ops);
  for (ProgramOp& op : ops) {
    op.kind = static_cast<ProgramOp::Kind>(rng() % 4);
    op.shift = static_cast<int64_t>(rng() % 8);
    op.field = rng() % 2;
  }
  return ops;
}

// Issue `ops` against `fx` (8 pieces over 64 elements). Bodies are gated so
// nothing completes while issuing — dependence edges then depend only on the
// program, not on scheduling races, and the recorded edge sets of the group
// and per-point paths can be compared exactly.
void issue_program(Fixture& fx, const std::vector<ProgramOp>& ops,
                   TaskFnId gated_touch, PartitionId halo) {
  for (const ProgramOp& op : ops) {
    const FieldId f = op.field == 0 ? fx.fv : fx.fw;
    const FieldId g = op.field == 0 ? fx.fw : fx.fv;
    IndexLauncher launcher = IndexLauncher::over(Domain::line(8)).with_task(gated_touch);
    launcher.scalars(FieldPair{f, g});
    switch (op.kind) {
      case ProgramOp::kBump:
        launcher.region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {f},
                        Privilege::kReadWrite);
        break;
      case ProgramOp::kShiftRead:
        // Update f through identity while reading g through a rotation:
        // different fields, so safe — and the read arg's summary test runs
        // against whatever state g accumulated.
        launcher
            .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {f},
                    Privilege::kReadWrite)
            .region(fx.region, fx.blocks, ProjectionFunctor::modular1d(op.shift, 8),
                    {g}, Privilege::kRead);
        break;
      case ProgramOp::kHaloRead:
        launcher
            .region(fx.region, fx.blocks, ProjectionFunctor::identity(1), {f},
                    Privilege::kReadWrite)
            .region(fx.region, halo, ProjectionFunctor::identity(1), {g},
                    Privilege::kRead);
        break;
      case ProgramOp::kOpaqueBump:
        launcher.region(
            fx.region, fx.blocks,
            ProjectionFunctor::opaque(
                [shift = op.shift](const Point& p) {
                  return Point::p1((p[0] + shift) % 8);
                },
                1),
            {f}, Privilege::kReadWrite);
        break;
    }
    fx.rt.execute_index(launcher);
  }
}

TEST(DifferentialTest, GroupAndPerPointPathsEmitIdenticalEdgeSets) {
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    const std::vector<ProgramOp> ops = random_program(seed, 24);
    std::vector<std::pair<uint64_t, uint64_t>> edge_sets[2];
    std::vector<std::pair<uint64_t, std::string>> node_sets[2];
    for (int variant = 0; variant < 2; ++variant) {
      RuntimeConfig cfg;
      cfg.enable_group_analysis = variant == 0;
      cfg.record_task_graph = true;
      cfg.workers = 2;
      Fixture fx(64, 8, cfg);
      PartitionId halo = partition_halo(fx.rt.forest(), fx.is, fx.blocks, 1);
      std::atomic<bool> release{false};
      const TaskFnId gated =
          fx.rt.register_task("gated", [&release](TaskContext&) {
            while (!release.load(std::memory_order_acquire))
              std::this_thread::yield();
          });
      issue_program(fx, ops, gated, halo);
      release.store(true, std::memory_order_release);
      fx.rt.wait_all();
      edge_sets[variant] = fx.rt.task_graph_edges();
      std::sort(edge_sets[variant].begin(), edge_sets[variant].end());
      node_sets[variant] = fx.rt.task_graph_nodes();
    }
    // Same program, same issue order: node seqs and labels line up 1:1, and
    // the happens-before edge sets must be identical.
    EXPECT_EQ(node_sets[0], node_sets[1]) << "seed " << seed;
    EXPECT_EQ(edge_sets[0], edge_sets[1]) << "seed " << seed;
  }
}

// Deterministic arithmetic bodies: under any legal schedule that preserves
// the discovered edges, the final region contents are a pure function of
// the program. Compares group path, forced per-point path, and the No-IDX
// task loop, with traces and fills mixed in.
TEST(DifferentialTest, RegionContentsMatchAcrossConfigs) {
  for (uint32_t seed = 10; seed <= 13; ++seed) {
    const std::vector<ProgramOp> ops = random_program(seed, 18);
    std::vector<std::vector<double>> contents;
    for (int variant = 0; variant < 3; ++variant) {
      RuntimeConfig cfg;
      cfg.enable_group_analysis = variant == 0;
      cfg.enable_index_launches = variant != 2;
      Fixture fx(64, 8, cfg);
      PartitionId halo = partition_halo(fx.rt.forest(), fx.is, fx.blocks, 1);
      const TaskFnId touch = fx.rt.register_task("touch", [](TaskContext& ctx) {
        const auto& fp = ctx.arg<FieldPair>();
        auto acc = ctx.region(0).accessor<double>(fp.a);
        double extra = 0.0;
        if (ctx.regions.size() > 1) {
          auto in = ctx.region(1).accessor<double>(fp.b);
          ctx.region(1).domain().for_each(
              [&](const Point& p) { extra += in.read(p); });
        }
        ctx.region(0).domain().for_each([&](const Point& p) {
          acc.write(p, acc.read(p) * 0.5 + extra + static_cast<double>(p[0]));
        });
      });
      fx.rt.fill(fx.region, fx.fv, 1.0);
      fx.rt.fill(fx.region, fx.fw, 2.0);
      fx.rt.wait_all();

      issue_program(fx, ops, touch, halo);
      // Trace a fixed safe segment twice: first pass captures (through
      // whichever dependence tier applies), second pass replays it.
      const std::vector<ProgramOp> segment = random_program(seed + 100, 4);
      for (int rep = 0; rep < 2; ++rep) {
        fx.rt.begin_trace(seed);
        issue_program(fx, segment, touch, halo);
        fx.rt.end_trace(seed);
      }
      issue_program(fx, ops, touch, halo);
      fx.rt.wait_all();

      std::vector<double> values;
      for (FieldId f : {fx.fv, fx.fw}) {
        auto acc = fx.rt.read_region<double>(fx.region, f);
        Domain::line(64).for_each([&](const Point& p) { values.push_back(acc.read(p)); });
      }
      contents.push_back(std::move(values));
    }
    EXPECT_EQ(contents[0], contents[1]) << "seed " << seed << " (per-point)";
    EXPECT_EQ(contents[0], contents[2]) << "seed " << seed << " (No-IDX)";
  }
}

}  // namespace
}  // namespace idxl
