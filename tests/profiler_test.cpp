#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/profiler.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "runtime/serialize.hpp"
#include "test_json.hpp"

namespace idxl {
namespace {

using testjson::JsonParser;
using testjson::JValue;

void spin_for(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

// ---------- profiler core ----------

TEST(ProfilerTest, SpanNestingIsContained) {
  Profiler prof(/*enabled=*/true);
  const uint32_t outer_name = prof.intern("outer");
  const uint32_t inner_name = prof.intern("inner");
  {
    ProfileScope outer(&prof, ProfCategory::kPhase, outer_name);
    spin_for(std::chrono::microseconds(200));
    {
      ProfileScope inner(&prof, ProfCategory::kPhase, inner_name);
      spin_for(std::chrono::microseconds(200));
    }
    spin_for(std::chrono::microseconds(200));
  }
  const auto events = prof.events();
  ASSERT_EQ(events.size(), 2u);
  const ProfileEvent* outer_ev = nullptr;
  const ProfileEvent* inner_ev = nullptr;
  for (const ProfileEvent& ev : events) {
    if (ev.name == outer_name) outer_ev = &ev;
    if (ev.name == inner_name) inner_ev = &ev;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // The inner span nests strictly inside the outer one.
  EXPECT_GE(inner_ev->start_ns, outer_ev->start_ns);
  EXPECT_LE(inner_ev->start_ns + inner_ev->dur_ns,
            outer_ev->start_ns + outer_ev->dur_ns);
  EXPECT_LT(inner_ev->dur_ns, outer_ev->dur_ns);
  // Both recorded from this (non-worker) thread.
  EXPECT_EQ(outer_ev->worker, -1);
  EXPECT_EQ(outer_ev->tid, inner_ev->tid);
}

TEST(ProfilerTest, ScopeCloseEndsSpanEarlyAndOnlyOnce) {
  Profiler prof(/*enabled=*/true);
  const uint32_t name = prof.intern("early");
  {
    ProfileScope s(&prof, ProfCategory::kPhase, name);
    s.close();
    spin_for(std::chrono::microseconds(500));
    s.close();  // second close is a no-op
  }
  const auto events = prof.events();
  ASSERT_EQ(events.size(), 1u);
  // The span ended at close(), not at scope exit after the 500us spin.
  EXPECT_LT(events[0].dur_ns, 400'000u);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler prof(/*enabled=*/false);
  {
    ProfileScope s(&prof, ProfCategory::kPhase, 0);
    ProfileScope p = prof.phase("setup");
  }
  prof.record(ProfCategory::kTask, 0, 0, 100, 1);
  const uint64_t deps[] = {0};
  prof.record_edges(1, deps);
  EXPECT_EQ(prof.event_count(), 0u);
  EXPECT_TRUE(prof.task_samples().empty());
}

TEST(ProfilerTest, RuntimeWithProfilingDisabledStaysEmpty) {
  Fixture fx(32, 4);  // default config: enable_profiling = false
  ASSERT_FALSE(fx.rt.profiler().enabled());
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(noop)
                          .region(fx.region, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kReadWrite));
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.profiler().event_count(), 0u);
}

// ---------- critical path ----------

TEST(ProfilerTest, CriticalPathOfDiamondIsLongestChain) {
  // diamond: 0 (10ns) fans out to 1 (20ns) and 2 (30ns), which join at
  // 3 (5ns); the critical path goes through the slower middle task.
  const std::vector<TaskSample> samples = {
      {0, 10, {}},
      {1, 20, {0}},
      {2, 30, {0}},
      {3, 5, {1, 2}},
  };
  const CriticalPathReport r = critical_path(samples);
  EXPECT_EQ(r.total_task_ns, 65u);
  EXPECT_EQ(r.critical_path_ns, 10u + 30u + 5u);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[0], 0u);
  EXPECT_EQ(r.path[1], 2u);
  EXPECT_EQ(r.path[2], 3u);
  EXPECT_NEAR(r.max_speedup(), 65.0 / 45.0, 1e-12);
}

TEST(ProfilerTest, CriticalPathOfIndependentTasksIsTheLongestTask) {
  const std::vector<TaskSample> samples = {{0, 7, {}}, {1, 11, {}}, {2, 3, {}}};
  const CriticalPathReport r = critical_path(samples);
  EXPECT_EQ(r.total_task_ns, 21u);
  EXPECT_EQ(r.critical_path_ns, 11u);
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path[0], 1u);
}

TEST(ProfilerTest, RuntimeRecordsDependenceChainAsCriticalPath) {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  cfg.workers = 2;
  Fixture fx(16, 1, cfg);
  // Pause the pool until every launch has been issued: a predecessor that
  // completes before its successor issues is (correctly) dropped from the
  // dependence edges, which would break the chain nondeterministically.
  // Paused workers enqueue without executing — a deterministic gate.
  fx.rt.pool().pause();
  const TaskFnId spin = fx.rt.register_task(
      "spin", [](TaskContext&) { spin_for(std::chrono::microseconds(100)); });
  // Three read-write launches over the same region: a 3-task chain.
  for (int i = 0; i < 3; ++i)
    fx.rt.execute(TaskLauncher::for_task(spin).region(fx.region, {fx.fv},
                                                      Privilege::kReadWrite));
  fx.rt.pool().resume();
  fx.rt.wait_all();

  const CriticalPathReport r = fx.rt.profiler().critical_path();
  EXPECT_EQ(r.path.size(), 3u);
  EXPECT_GT(r.critical_path_ns, 0u);
  EXPECT_EQ(r.total_task_ns, r.critical_path_ns);  // a pure chain
}

// ---------- chrome trace export ----------

TEST(ProfilerTest, ChromeTraceIsValidJsonWithMonotoneTimestampsPerLane) {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  Fixture fx(64, 4, cfg);
  auto& forest = fx.rt.forest();
  const PartitionId halos = partition_halo(forest, fx.is, fx.blocks, 1);
  const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
  });
  const TaskFnId smooth = fx.rt.register_task("smooth", [](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(0);
    (void)in.read(ctx.region(0).domain().bounds().lo);
  });
  for (int it = 0; it < 3; ++it) {
    fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                            .with_task(fill)
                            .region(fx.region, fx.blocks,
                                    ProjectionFunctor::identity(1), {fx.fv},
                                    Privilege::kReadWrite));
    fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                            .with_task(smooth)
                            .region(fx.region, halos,
                                    ProjectionFunctor::identity(1), {fx.fv},
                                    Privilege::kRead));
  }
  fx.rt.wait_all();

  // Round-trip through a file, as the profile_stencil example does.
  const std::string path =
      testing::TempDir() + "/profiler_test.trace.json";
  fx.rt.profiler().write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_EQ(json, fx.rt.profiler().chrome_trace_json());

  JValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << json.substr(0, 400);
  ASSERT_EQ(root.kind, JValue::kObject);
  const JValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JValue::kArray);
  ASSERT_FALSE(events->array.empty());

  std::unordered_map<int, double> last_ts;  // per-lane monotonicity
  std::unordered_map<std::string, int> cat_count;
  for (const JValue& ev : events->array) {
    ASSERT_EQ(ev.kind, JValue::kObject);
    const JValue* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue;  // thread-name metadata
    ASSERT_EQ(ph->string, "X");
    const JValue* tid = ev.get("tid");
    const JValue* ts = ev.get("ts");
    const JValue* dur = ev.get("dur");
    const JValue* cat = ev.get("cat");
    const JValue* name = ev.get("name");
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    ASSERT_NE(cat, nullptr);
    ASSERT_NE(name, nullptr);
    EXPECT_GE(dur->number, 0.0);
    const int lane = static_cast<int>(tid->number);
    const auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(ts->number, it->second) << "lane " << lane;
    }
    last_ts[lane] = ts->number;
    ++cat_count[cat->string];
  }
  // The instrumented pipeline stages all show up.
  EXPECT_GT(cat_count["task"], 0);
  EXPECT_GT(cat_count["dependence"], 0);
  EXPECT_GT(cat_count["safety"], 0);
  EXPECT_GT(cat_count["issue"], 0);
  EXPECT_EQ(cat_count["task"], 3 * 2 * 4);  // 3 iterations x 2 launches x 4 pts

  std::remove(path.c_str());
}

TEST(ProfilerTest, TaskEventsCarryWorkerAndQueueWait) {
  RuntimeConfig cfg;
  cfg.enable_profiling = true;
  cfg.workers = 2;
  Fixture fx(32, 4, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(4))
                          .with_task(noop)
                          .region(fx.region, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kWrite));
  fx.rt.wait_all();
  int task_events = 0;
  for (const ProfileEvent& ev : fx.rt.profiler().events()) {
    if (ev.cat != ProfCategory::kTask) continue;
    ++task_events;
    EXPECT_GE(ev.worker, 0);
    EXPECT_LT(ev.worker, 2);
    EXPECT_NE(ev.seq, ProfileEvent::kNoSeq);
  }
  EXPECT_EQ(task_events, 4);
}

TEST(ProfilerTest, ResetDropsEvents) {
  Profiler prof(/*enabled=*/true);
  { ProfileScope s = prof.phase("p"); }
  EXPECT_EQ(prof.event_count(), 1u);
  prof.reset();
  EXPECT_EQ(prof.event_count(), 0u);
  { ProfileScope s = prof.phase("q"); }
  EXPECT_EQ(prof.event_count(), 1u);  // buffers still usable after reset
}

// ---------- builder API equivalence ----------

TEST(BuilderTest, IndexLauncherBuilderMatchesAggregateBytes) {
  struct Args {
    double dt;
  };
  IndexLauncher aggregate;
  aggregate.task = 7;
  aggregate.domain = Domain::line(16);
  aggregate.args = {{RegionId{2}, PartitionId{3}, ProjectionFunctor::modular1d(3, 16),
                     {0, 1}, Privilege::kReadWrite, ReductionOp::kNone},
                    {RegionId{4}, PartitionId{5}, ProjectionFunctor::identity(1),
                     {2}, Privilege::kReduce, ReductionOp::kSum}};
  aggregate.scalar_args = ArgBuffer::of(Args{0.25});
  aggregate.assume_verified = true;
  aggregate.result_redop = ReductionOp::kMax;

  const IndexLauncher built =
      IndexLauncher::over(Domain::line(16))
          .with_task(7)
          .region(RegionId{2}, PartitionId{3}, ProjectionFunctor::modular1d(3, 16),
                  {0, 1}, Privilege::kReadWrite)
          .region(RegionId{4}, PartitionId{5}, ProjectionFunctor::identity(1),
                  {2}, Privilege::kReduce, ReductionOp::kSum)
          .scalars(Args{0.25})
          .reduce(ReductionOp::kMax)
          .verified();

  // The serialized descriptor is the launcher's full identity (it is what
  // DCR hashes for replication checks): byte equality ⇒ the two forms are
  // interchangeable everywhere.
  EXPECT_EQ(serialize_launcher(aggregate), serialize_launcher(built));
}

TEST(BuilderTest, TaskLauncherBuilderMatchesAggregate) {
  TaskLauncher aggregate;
  aggregate.task = 3;
  aggregate.args = {{RegionId{1}, {0, 2}, Privilege::kWrite, ReductionOp::kNone}};
  aggregate.scalar_args = ArgBuffer::of(int64_t{42});
  aggregate.point = Point::p1(5);
  aggregate.launch_domain = Domain::line(8);
  aggregate.result_redop = ReductionOp::kSum;

  const TaskLauncher built =
      TaskLauncher::for_task(3)
          .region(RegionId{1}, {0, 2}, Privilege::kWrite)
          .scalars(int64_t{42})
          .at(Point::p1(5), Domain::line(8))
          .reduce(ReductionOp::kSum);

  EXPECT_EQ(built.task, aggregate.task);
  ASSERT_EQ(built.args.size(), aggregate.args.size());
  EXPECT_EQ(built.args[0].region, aggregate.args[0].region);
  EXPECT_EQ(built.args[0].fields, aggregate.args[0].fields);
  EXPECT_EQ(built.args[0].privilege, aggregate.args[0].privilege);
  EXPECT_EQ(built.args[0].redop, aggregate.args[0].redop);
  EXPECT_EQ(built.scalar_args.raw(), aggregate.scalar_args.raw());
  EXPECT_EQ(built.point, aggregate.point);
  EXPECT_EQ(built.launch_domain.volume(), aggregate.launch_domain.volume());
  EXPECT_EQ(built.result_redop, aggregate.result_redop);
}

TEST(BuilderTest, BuilderAndAggregateLaunchesBehaveIdentically) {
  auto run = [](bool use_builder) {
    Fixture fx(32, 4);
    const TaskFnId fill = fx.rt.register_task("fill", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      double sum = 0;
      ctx.region(0).domain().for_each([&](const Point& p) {
        acc.write(p, static_cast<double>(p[0]));
        sum += static_cast<double>(p[0]);
      });
      ctx.return_value = sum;
    });
    IndexLauncher launcher;
    if (use_builder) {
      launcher = IndexLauncher::over(Domain::line(4))
                     .with_task(fill)
                     .region(fx.region, fx.blocks,
                             ProjectionFunctor::identity(1), {fx.fv},
                             Privilege::kWrite)
                     .reduce(ReductionOp::kSum);
    } else {
      launcher.task = fill;
      launcher.domain = Domain::line(4);
      launcher.args = {{fx.region, fx.blocks, ProjectionFunctor::identity(1),
                        {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
      launcher.result_redop = ReductionOp::kSum;
    }
    LaunchResult r = fx.rt.execute_index(launcher);
    return r.future.get(fx.rt);
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
  EXPECT_DOUBLE_EQ(run(true), 31.0 * 32.0 / 2.0);
}

// ---------- execute() returns LaunchResult ----------

TEST(BuilderTest, SingleLaunchReturnsUniformLaunchResult) {
  Fixture fx(8, 1);
  const TaskFnId ret = fx.rt.register_task("ret", [](TaskContext& ctx) {
    ctx.return_value = 2.5;
  });
  const LaunchResult plain = fx.rt.execute(TaskLauncher::for_task(ret));
  EXPECT_FALSE(plain.ran_as_index_launch);
  EXPECT_EQ(plain.safety.outcome, SafetyOutcome::kSafeStatic);
  EXPECT_FALSE(plain.future.valid());

  const LaunchResult collected = fx.rt.execute(
      TaskLauncher::for_task(ret).reduce(ReductionOp::kSum));
  ASSERT_TRUE(collected.future.valid());
  EXPECT_DOUBLE_EQ(collected.future.get(fx.rt), 2.5);
}

}  // namespace
}  // namespace idxl
