#include <gtest/gtest.h>

#include "functor/affine.hpp"
#include "functor/projection.hpp"
#include "support/rng.hpp"

namespace idxl {
namespace {

// ---------- Expr ----------

TEST(ExprTest, EvalArithmetic) {
  // 3*i0 + i1 - 2
  const ExprPtr e = make_sub(
      make_add(make_mul(make_const(3), make_coord(0)), make_coord(1)), make_const(2));
  EXPECT_EQ(e->eval(Point::p2(4, 7)), 17);
  EXPECT_EQ(e->to_string(), "(((3 * i0) + i1) - 2)");
  EXPECT_EQ(e->max_coord(), 1);
}

TEST(ExprTest, DivModSemantics) {
  const ExprPtr mod = make_mod(make_coord(0), make_const(3));
  EXPECT_EQ(mod->eval(Point::p1(7)), 1);
  EXPECT_EQ(mod->eval(Point::p1(-7)), -1);  // C++ remainder semantics
  const ExprPtr div = make_div(make_coord(0), make_const(2));
  EXPECT_EQ(div->eval(Point::p1(5)), 2);
  EXPECT_EQ(div->eval(Point::p1(-5)), -2);  // truncating
}

TEST(ExprTest, NegAndEquality) {
  const ExprPtr a = make_neg(make_coord(0));
  EXPECT_EQ(a->eval(Point::p1(5)), -5);
  const ExprPtr b = make_neg(make_coord(0));
  const ExprPtr c = make_neg(make_coord(1));
  EXPECT_TRUE(expr_equal(*a, *b));
  EXPECT_FALSE(expr_equal(*a, *c));
}

// Property: CompiledExpr agrees with tree evaluation on random expressions.
TEST(CompiledExprTest, MatchesTreeEvalOnRandomExprs) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random expression tree of depth <= 4 over 2 coords.
    auto build = [&](auto&& self, int depth) -> ExprPtr {
      const uint64_t pick = rng.next_below(depth == 0 ? 2 : 8);
      switch (pick) {
        case 0: return make_const(rng.next_in(-9, 9));
        case 1: return make_coord(static_cast<int>(rng.next_below(2)));
        case 2: return make_add(self(self, depth - 1), self(self, depth - 1));
        case 3: return make_sub(self(self, depth - 1), self(self, depth - 1));
        case 4: return make_mul(self(self, depth - 1), self(self, depth - 1));
        case 5: return make_neg(self(self, depth - 1));
        case 6: return make_div(self(self, depth - 1), make_const(rng.next_in(1, 5)));
        default: return make_mod(self(self, depth - 1), make_const(rng.next_in(1, 5)));
      }
    };
    const ExprPtr e = build(build, 4);
    const CompiledExpr compiled(*e);
    for (int i = 0; i < 20; ++i) {
      const Point p = Point::p2(rng.next_in(-50, 50), rng.next_in(-50, 50));
      EXPECT_EQ(compiled.eval(p), e->eval(p)) << e->to_string() << " at " << p;
    }
  }
}

// ---------- ProjectionFunctor ----------

TEST(ProjectionFunctorTest, Identity) {
  const auto f = ProjectionFunctor::identity(2);
  EXPECT_TRUE(f.is_symbolic());
  EXPECT_EQ(f(Point::p2(3, 5)), Point::p2(3, 5));
  EXPECT_EQ(f.name(), "identity");
}

TEST(ProjectionFunctorTest, Affine1D) {
  const auto f = ProjectionFunctor::affine1d(3, -1);
  EXPECT_EQ(f(Point::p1(4)), Point::p1(11));
}

TEST(ProjectionFunctorTest, Modular1D) {
  const auto f = ProjectionFunctor::modular1d(2, 5);
  EXPECT_EQ(f(Point::p1(4)), Point::p1(1));
}

TEST(ProjectionFunctorTest, Opaque) {
  const auto f = ProjectionFunctor::opaque(
      [](const Point& p) { return Point::p1(p[0] * p[0]); }, 1, "square");
  EXPECT_FALSE(f.is_symbolic());
  EXPECT_EQ(f(Point::p1(5)), Point::p1(25));
}

TEST(ProjectionFunctorTest, MultiDimOutput) {
  // 3-D sweep point -> 2-D exchange plane (y, z), the DOM idiom.
  const auto f =
      ProjectionFunctor::symbolic({make_coord(1), make_coord(2)}, "yz-plane");
  EXPECT_EQ(f(Point::p3(7, 2, 9)), Point::p2(2, 9));
}

TEST(ProjectionFunctorTest, DefinitelyEqual) {
  const auto a = ProjectionFunctor::affine1d(2, 1);
  const auto b = ProjectionFunctor::affine1d(2, 1);
  const auto c = ProjectionFunctor::affine1d(2, 2);
  EXPECT_TRUE(a.definitely_equal(b));
  EXPECT_FALSE(a.definitely_equal(c));
  const auto op = ProjectionFunctor::opaque([](const Point& p) { return p; }, 1);
  EXPECT_FALSE(op.definitely_equal(op));  // opaque never provably equal
}

TEST(ProjectionFunctorTest, EvalIntoMatchesCallOperator) {
  const auto f = ProjectionFunctor::symbolic(
      {make_mod(make_coord(0), make_const(4)), make_div(make_coord(0), make_const(4))});
  f.ensure_compiled();
  int64_t out[2];
  for (int i = 0; i < 30; ++i) {
    f.eval_into(Point::p1(i), out);
    const Point p = f(Point::p1(i));
    EXPECT_EQ(out[0], p[0]);
    EXPECT_EQ(out[1], p[1]);
  }
}

// ---------- AffineMap extraction ----------

TEST(AffineMapTest, ExtractIdentity) {
  const auto f = ProjectionFunctor::identity(3);
  const auto m = extract_affine_map(f, 3);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->is_identity());
  EXPECT_FALSE(m->is_constant());
  EXPECT_EQ(m->column_rank(), 3);
}

TEST(AffineMapTest, ExtractConstant) {
  const auto f = ProjectionFunctor::symbolic({make_const(7)});
  const auto m = extract_affine_map(f, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->is_constant());
  EXPECT_EQ(m->column_rank(), 0);
  ASSERT_TRUE(m->small_null_vector().has_value());
}

TEST(AffineMapTest, ExtractGeneralAffine) {
  // (2*i0 - i1 + 3, i1 * 4)
  const auto f = ProjectionFunctor::symbolic(
      {make_add(make_sub(make_mul(make_const(2), make_coord(0)), make_coord(1)),
                make_const(3)),
       make_mul(make_coord(1), make_const(4))});
  const auto m = extract_affine_map(f, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->a[0][0], 2);
  EXPECT_EQ(m->a[0][1], -1);
  EXPECT_EQ(m->b[0], 3);
  EXPECT_EQ(m->a[1][1], 4);
  EXPECT_EQ(m->column_rank(), 2);
  EXPECT_EQ(m->apply(Point::p2(1, 2)), Point::p2(3, 8));
}

TEST(AffineMapTest, NonAffineRejected) {
  EXPECT_FALSE(extract_affine_map(
                   ProjectionFunctor::symbolic({make_mul(make_coord(0), make_coord(0))}), 1)
                   .has_value());
  EXPECT_FALSE(
      extract_affine_map(ProjectionFunctor::modular1d(1, 4), 1).has_value());
  EXPECT_FALSE(extract_affine_map(
                   ProjectionFunctor::symbolic({make_div(make_coord(0), make_const(2))}), 1)
                   .has_value());
  EXPECT_FALSE(extract_affine_map(
                   ProjectionFunctor::opaque([](const Point& p) { return p; }, 1), 1)
                   .has_value());
}

TEST(AffineMapTest, RankDeficientProjection) {
  // (i0 + i1) as a map from 2-D to 1-D: rank 1, null vector (1, -1).
  const auto f = ProjectionFunctor::symbolic({make_add(make_coord(0), make_coord(1))});
  const auto m = extract_affine_map(f, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->column_rank(), 1);
  const auto v = m->small_null_vector();
  ASSERT_TRUE(v.has_value());
  int64_t dot = m->a[0][0] * (*v)[0] + m->a[0][1] * (*v)[1];
  EXPECT_EQ(dot, 0);
}

TEST(AffineMapTest, PermutationHasFullRank) {
  // (i1, i0): a coordinate swap is injective.
  const auto f = ProjectionFunctor::symbolic({make_coord(1), make_coord(0)});
  const auto m = extract_affine_map(f, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->column_rank(), 2);
  EXPECT_FALSE(m->small_null_vector().has_value());
}

// Property: for random small affine maps, column_rank == in_dim implies no
// collisions on a dense grid, and small_null_vector implies a real one.
TEST(AffineMapTest, RankPredictsCollisionsProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int in_dim = 2;
    std::vector<ExprPtr> exprs;
    for (int r = 0; r < 2; ++r) {
      ExprPtr e = make_const(rng.next_in(-2, 2));
      for (int c = 0; c < in_dim; ++c)
        e = make_add(e, make_mul(make_const(rng.next_in(-2, 2)), make_coord(c)));
      exprs.push_back(e);
    }
    const auto f = ProjectionFunctor::symbolic(std::move(exprs));
    const auto m = extract_affine_map(f, in_dim);
    ASSERT_TRUE(m.has_value());

    // Brute-force collision detection over a 6x6 grid.
    bool collision = false;
    const Rect grid = Rect::box2(6, 6);
    std::vector<Point> images;
    for (const Point& p : grid) images.push_back(f(p));
    for (std::size_t i = 0; i < images.size() && !collision; ++i)
      for (std::size_t j = i + 1; j < images.size(); ++j)
        if (images[i] == images[j]) {
          collision = true;
          break;
        }

    if (m->column_rank() == in_dim) {
      EXPECT_FALSE(collision) << "full-rank map collided";
    }
    if (const auto v = m->small_null_vector()) {
      // A null vector within the grid implies a collision exists.
      bool vector_fits = std::abs((*v)[0]) < 6 && std::abs((*v)[1]) < 6;
      if (vector_fits) {
        EXPECT_TRUE(collision);
      }
    }
  }
}

}  // namespace
}  // namespace idxl
