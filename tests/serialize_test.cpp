#include <gtest/gtest.h>

#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "runtime/serialize.hpp"
#include "support/rng.hpp"

namespace idxl {
namespace {

IndexLauncher sample_launcher(int64_t domain_size) {
  IndexLauncher launcher;
  launcher.task = 7;
  launcher.domain = Domain::line(domain_size);
  launcher.scalar_args = ArgBuffer::of(int64_t{42});
  ProjectedArg arg;
  arg.parent = RegionId{3};
  arg.partition = PartitionId{5};
  arg.functor = ProjectionFunctor::modular1d(2, domain_size);
  arg.fields = {0, 2};
  arg.privilege = Privilege::kWrite;
  launcher.args = {arg};
  return launcher;
}

TEST(SerializeTest, DescriptorSizeIndependentOfDomainVolume) {
  // The paper's O(1) representation claim, directly: the encoded size of a
  // dense-domain index launch does not grow with the number of tasks.
  const auto small = serialize_launcher(sample_launcher(8));
  const auto large = serialize_launcher(sample_launcher(1'000'000));
  EXPECT_EQ(small.size(), large.size());
  EXPECT_LT(large.size(), 256u);  // a fraction of the simulator's slice size
}

TEST(SerializeTest, SparseDomainsEncodeTheirPoints) {
  IndexLauncher launcher = sample_launcher(8);
  std::vector<Point> wave;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      if (x + y == 3) wave.push_back(Point::p2(x, y));
  launcher.domain = Domain::from_points(wave);
  launcher.args[0].functor = ProjectionFunctor::symbolic({make_coord(0)});
  const auto bytes = serialize_launcher(launcher);
  const IndexLauncher back = deserialize_launcher(bytes);
  EXPECT_EQ(back.domain, launcher.domain);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  IndexLauncher launcher = sample_launcher(64);
  launcher.assume_verified = true;
  launcher.result_redop = ReductionOp::kMax;
  ProjectedArg extra;
  extra.parent = RegionId{9};
  extra.partition = PartitionId{11};
  extra.functor = ProjectionFunctor::symbolic(
      {make_div(make_coord(0), make_const(4)),
       make_neg(make_sub(make_coord(0), make_const(2)))});
  extra.fields = {1};
  extra.privilege = Privilege::kReduce;
  extra.redop = ReductionOp::kSum;
  launcher.args.push_back(extra);

  const IndexLauncher back = deserialize_launcher(serialize_launcher(launcher));
  EXPECT_EQ(back.task, launcher.task);
  EXPECT_EQ(back.domain, launcher.domain);
  EXPECT_EQ(back.assume_verified, launcher.assume_verified);
  EXPECT_EQ(back.result_redop, launcher.result_redop);
  ASSERT_EQ(back.args.size(), launcher.args.size());
  for (std::size_t i = 0; i < back.args.size(); ++i) {
    EXPECT_EQ(back.args[i].parent.id, launcher.args[i].parent.id);
    EXPECT_EQ(back.args[i].partition.id, launcher.args[i].partition.id);
    EXPECT_EQ(back.args[i].privilege, launcher.args[i].privilege);
    EXPECT_EQ(back.args[i].redop, launcher.args[i].redop);
    EXPECT_EQ(back.args[i].fields, launcher.args[i].fields);
    EXPECT_TRUE(back.args[i].functor.definitely_equal(launcher.args[i].functor));
  }
  EXPECT_EQ(back.scalar_args.as<int64_t>(), 42);
}

TEST(SerializeTest, RoundTrippedLauncherExecutesIdentically) {
  auto run = [](bool round_trip) {
    Runtime rt;
    auto& forest = rt.forest();
    const IndexSpaceId is = forest.create_index_space(Domain::line(24));
    const FieldSpaceId fs = forest.create_field_space();
    const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
    const RegionId region = forest.create_region(is, fs);
    const PartitionId blocks = partition_equal(forest, is, Rect::line(6));
    const TaskFnId stamp = rt.register_task("stamp", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
    });
    IndexLauncher launcher;
    launcher.task = stamp;
    launcher.domain = Domain::line(6);
    launcher.args = {{region, blocks, ProjectionFunctor::modular1d(2, 6), {fv},
                      Privilege::kWrite, ReductionOp::kNone}};
    if (round_trip) launcher = deserialize_launcher(serialize_launcher(launcher));
    rt.execute_index(launcher);
    rt.wait_all();
    std::vector<double> out;
    auto acc = rt.read_region<double>(region, fv);
    for (int64_t i = 0; i < 24; ++i) out.push_back(acc.read(Point::p1(i)));
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SerializeTest, OpaqueFunctorRejected) {
  IndexLauncher launcher = sample_launcher(8);
  launcher.args[0].functor =
      ProjectionFunctor::opaque([](const Point& p) { return p; }, 1);
  EXPECT_THROW(serialize_launcher(launcher), RuntimeError);
}

TEST(SerializeTest, TruncatedInputThrows) {
  auto bytes = serialize_launcher(sample_launcher(8));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_launcher(bytes), RuntimeError);
}

TEST(SerializeTest, ExprRoundTripProperty) {
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    auto build = [&](auto&& self, int depth) -> ExprPtr {
      const uint64_t pick = rng.next_below(depth == 0 ? 2 : 8);
      switch (pick) {
        case 0: return make_const(rng.next_in(-100, 100));
        case 1: return make_coord(static_cast<int>(rng.next_below(3)));
        case 2: return make_add(self(self, depth - 1), self(self, depth - 1));
        case 3: return make_sub(self(self, depth - 1), self(self, depth - 1));
        case 4: return make_mul(self(self, depth - 1), self(self, depth - 1));
        case 5: return make_neg(self(self, depth - 1));
        case 6: return make_div(self(self, depth - 1), make_const(rng.next_in(1, 9)));
        default: return make_mod(self(self, depth - 1), make_const(rng.next_in(1, 9)));
      }
    };
    const ExprPtr e = build(build, 4);
    Serializer s;
    serialize_expr(s, *e);
    Deserializer d(s.bytes());
    const ExprPtr back = deserialize_expr(d);
    EXPECT_TRUE(expr_equal(*e, *back)) << e->to_string();
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  // Every descriptor leads with the ⟨magic, version⟩ header; a stream that
  // does not is rejected before any field is parsed.
  auto bytes = serialize_launcher(sample_launcher(8));
  bytes[0] = std::byte{0xFF};
  EXPECT_THROW(deserialize_launcher(bytes), RuntimeError);
}

TEST(SerializeTest, RejectsVersionMismatch) {
  auto bytes = serialize_launcher(sample_launcher(8));
  bytes[4] = std::byte{kWireVersion + 1};  // version byte follows the magic
  EXPECT_THROW(deserialize_launcher(bytes), RuntimeError);
}

TEST(SerializeTest, RejectsTruncatedDescriptor) {
  auto bytes = serialize_launcher(sample_launcher(8));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_launcher(bytes), RuntimeError);
}

}  // namespace
}  // namespace idxl
