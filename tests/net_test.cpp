// Transport-layer tests: framing edge cases (every split and corruption a
// TCP stream can produce) and Connection/PeerMonitor behaviour over loopback
// socketpairs — no real network, tier-1 safe.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace idxl::net {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

TEST(FrameTest, EncodePollRoundTrip) {
  const auto payload = bytes_of("hello");
  const auto wire = encode_frame(7, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame f;
  ASSERT_TRUE(reader.poll(f));
  EXPECT_EQ(f.type, 7);
  EXPECT_EQ(f.payload, payload);
  EXPECT_FALSE(reader.poll(f));
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameTest, EmptyPayload) {
  const auto wire = encode_frame(3, nullptr, 0);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame f;
  ASSERT_TRUE(reader.poll(f));
  EXPECT_EQ(f.type, 3);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameTest, PartialReadsByteAtATime) {
  // The kernel may hand back any split, down to single bytes across the
  // header/payload boundary.
  const auto payload = bytes_of("partial reads");
  const auto wire = encode_frame(9, payload);
  FrameReader reader;
  Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.feed(&wire[i], 1);
    ASSERT_FALSE(reader.poll(f)) << "frame completed early at byte " << i;
  }
  reader.feed(&wire[wire.size() - 1], 1);
  ASSERT_TRUE(reader.poll(f));
  EXPECT_EQ(f.type, 9);
  EXPECT_EQ(f.payload, payload);
}

TEST(FrameTest, CoalescedFrames) {
  // ... and conversely may coalesce many messages into one read.
  std::vector<std::byte> wire;
  for (uint8_t t = 1; t <= 4; ++t) {
    const auto one = encode_frame(t, bytes_of("x"));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame f;
  for (uint8_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(reader.poll(f));
    EXPECT_EQ(f.type, t);
  }
  EXPECT_FALSE(reader.poll(f));
}

TEST(FrameTest, RejectsBadMagic) {
  auto wire = encode_frame(1, bytes_of("p"));
  wire[0] = std::byte{0xFF};
  FrameReader reader;
  EXPECT_THROW(reader.feed(wire.data(), wire.size()), RuntimeError);
}

TEST(FrameTest, RejectsVersionMismatch) {
  auto wire = encode_frame(1, bytes_of("p"));
  wire[4] = std::byte{kNetVersion + 1};
  FrameReader reader;
  EXPECT_THROW(reader.feed(wire.data(), wire.size()), RuntimeError);
}

TEST(FrameTest, RejectsNonzeroReserved) {
  auto wire = encode_frame(1, bytes_of("p"));
  wire[6] = std::byte{1};
  FrameReader reader;
  EXPECT_THROW(reader.feed(wire.data(), wire.size()), RuntimeError);
}

TEST(FrameTest, RejectsOversizedPayload) {
  // A header announcing > kMaxFramePayload is a protocol violation, not an
  // allocation request.
  auto wire = encode_frame(1, nullptr, 0);
  const uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  FrameReader reader;
  EXPECT_THROW(reader.feed(wire.data(), wire.size()), RuntimeError);
}

TEST(FrameTest, AcceptsPayloadAtExactLimit) {
  // kMaxFramePayload itself is legal; only strictly-greater is a violation.
  // Validate from the header alone — materializing 64 MiB proves nothing
  // check_header doesn't.
  auto wire = encode_frame(1, nullptr, 0);
  const uint32_t limit = static_cast<uint32_t>(kMaxFramePayload);
  std::memcpy(&wire[8], &limit, sizeof(limit));
  FrameReader reader;
  EXPECT_NO_THROW(reader.feed(wire.data(), wire.size()));
  Frame f;
  EXPECT_FALSE(reader.poll(f));  // payload not arrived yet, frame incomplete
  EXPECT_EQ(reader.pending_bytes(), kFrameHeaderSize);
}

TEST(FrameTest, OversizedPayloadRejectedAtHeaderBoundary) {
  // Fail-fast contract: the violation surfaces the moment the 12th header
  // byte lands, not after buffering any of the announced 64 MiB + 1.
  auto wire = encode_frame(1, nullptr, 0);
  const uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  FrameReader reader;
  reader.feed(wire.data(), kFrameHeaderSize - 1);
  Frame f;
  EXPECT_FALSE(reader.poll(f));
  EXPECT_THROW(reader.feed(&wire[kFrameHeaderSize - 1], 1), RuntimeError);
}

TEST(ConnectionTest, RoundTripAndCounters) {
  obs::MetricsRegistry metrics;
  auto [a, b] = Socket::pair();
  NetObs obs;
  obs.metrics = &metrics;
  obs.type_name = [](uint8_t) { return "test"; };
  Connection left(std::move(a), "right", obs);
  Connection right(std::move(b), "left", obs);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> got;
  right.start_recv([&](Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(std::move(f));
    cv.notify_all();
  });

  const auto payload = bytes_of("ping");
  left.send(5, payload);
  left.send(5, payload);
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return got.size() == 2; }));
  }
  EXPECT_EQ(got[0].type, 5);
  EXPECT_EQ(got[0].payload, payload);

  left.drain();
  const auto snap = metrics.snapshot();
  const obs::Labels labels{{"peer", "right"}, {"type", "test"}};
  EXPECT_EQ(snap.value("idxl_net_frames_sent_total", labels), 2u);
  EXPECT_EQ(snap.value("idxl_net_bytes_sent_total", labels),
            2 * (kFrameHeaderSize + payload.size()));
  const obs::Labels rlabels{{"peer", "left"}, {"type", "test"}};
  EXPECT_EQ(snap.value("idxl_net_frames_recv_total", rlabels), 2u);

  left.close();
  right.close();
}

TEST(ConnectionTest, MidMessageDisconnect) {
  // Peer dies after a partial frame: the receive loop must surface an
  // error, not hang or deliver a truncated frame.
  auto [a, b] = Socket::pair();
  const auto wire = encode_frame(2, bytes_of("truncated payload"));
  a.write_all(wire.data(), wire.size() - 5);
  a.close();

  Connection right(std::move(b), "peer", NetObs{});
  std::vector<Frame> got;
  const std::string err = right.recv_loop([&](Frame& f) { got.push_back(f); });
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(got.empty());
  right.close();
}

TEST(ConnectionTest, CleanEofIsNotAnError) {
  auto [a, b] = Socket::pair();
  {
    const auto wire = encode_frame(2, bytes_of("whole"));
    a.write_all(wire.data(), wire.size());
    a.close();  // orderly shutdown on a frame boundary
  }
  Connection right(std::move(b), "peer", NetObs{});
  std::size_t frames = 0;
  const std::string err = right.recv_loop([&](Frame&) { ++frames; });
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(frames, 1u);
  right.close();
}

TEST(ConnectionTest, OversizedFrameIsAConnectionError) {
  // A peer announcing an over-limit payload must tear the connection down
  // with a diagnosable error — not allocate, not hang waiting for payload.
  auto [a, b] = Socket::pair();
  auto wire = encode_frame(2, nullptr, 0);
  const uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  a.write_all(wire.data(), wire.size());

  Connection right(std::move(b), "hostile", NetObs{});
  std::vector<Frame> got;
  const std::string err = right.recv_loop([&](Frame& f) { got.push_back(f); });
  EXPECT_NE(err.find("frame size limit"), std::string::npos) << err;
  EXPECT_TRUE(got.empty());
  right.close();
  a.close();
}

TEST(SocketTest, WriteAllSurvivesShortWrites) {
  // A payload far beyond the kernel's socketpair buffer forces write_all
  // through many partial writes while the reader drains in arbitrary chunks;
  // the reassembled frame must be bit-identical.
  std::vector<std::byte> payload(8u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>((i * 2654435761u) >> 24);
  const auto wire = encode_frame(6, payload);

  auto [a, b] = Socket::pair();
  std::thread writer([&] {
    a.write_all(wire.data(), wire.size());
    a.close();
  });

  FrameReader reader;
  Frame f;
  bool done = false;
  std::byte chunk[4096];
  while (!done) {
    const std::size_t n = b.read_some(chunk, sizeof(chunk));
    ASSERT_GT(n, 0u) << "EOF before the frame completed";
    reader.feed(chunk, n);
    done = reader.poll(f);
  }
  writer.join();
  EXPECT_EQ(f.type, 6);
  EXPECT_EQ(f.payload, payload);
  b.close();
}

TEST(ConnectionTest, SendAfterCloseThrows) {
  auto [a, b] = Socket::pair();
  Connection left(std::move(a), "peer", NetObs{});
  left.close();
  EXPECT_THROW(left.send(1, {}), RuntimeError);
}

TEST(PeerMonitorTest, DetectsSilentPeer) {
  obs::MetricsRegistry metrics;
  auto [a, b] = Socket::pair();
  NetObs obs;
  obs.metrics = &metrics;
  Connection left(std::move(a), "peer", obs);
  // `b` is alive but never sends: after the stall window the monitor must
  // fire exactly once for the episode.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> stalled;
  PeerMonitor monitor({&left}, /*ping_type=*/10, /*period_ms=*/10,
                      /*stall_window_ms=*/50, &metrics,
                      [&](const std::string& peer) {
                        std::lock_guard<std::mutex> lock(mu);
                        stalled.push_back(peer);
                        cv.notify_all();
                      });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !stalled.empty(); }));
  }
  monitor.stop();
  EXPECT_EQ(stalled[0], "peer");
  EXPECT_GE(metrics.snapshot().value("idxl_net_peer_stalls_total"), 1u);
  left.close();
  b.close();
}

}  // namespace
}  // namespace idxl::net
