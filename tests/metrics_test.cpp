#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "test_json.hpp"

namespace idxl {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Labels;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using testjson::JsonParser;
using testjson::JValue;

// ---------- handles ----------

TEST(MetricsTest, CounterCountsAndGaugeMoves) {
  MetricsRegistry reg;
  const Counter c = reg.counter("requests_total", "requests");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  const Gauge g = reg.gauge("queue_depth", "depth");
  g.set(7);
  g.add(5);
  g.sub(13);
  EXPECT_EQ(g.value(), -1);
}

TEST(MetricsTest, DefaultHandlesAreInert) {
  // Instrumented code holds default handles until wiring happens; they must
  // absorb writes without crashing.
  Counter c;
  Gauge g;
  Histogram h;
  c.inc(3);
  g.set(-5);
  h.observe(100);
  EXPECT_EQ(c.value(), 0u);  // reads come back empty... (shared sink)
  (void)g;
  (void)h;
}

TEST(MetricsTest, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry reg;
  const Counter a = reg.counter("hits_total", "", {{"tier", "l1"}, {"op", "read"}});
  // Label order must not matter.
  const Counter b = reg.counter("hits_total", "", {{"op", "read"}, {"tier", "l1"}});
  const Counter other = reg.counter("hits_total", "", {{"op", "write"}, {"tier", "l1"}});
  a.inc();
  b.inc();
  other.inc(5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("hits_total", {{"tier", "l1"}, {"op", "read"}}), 2u);
  EXPECT_EQ(snap.value("hits_total", {{"op", "write"}, {"tier", "l1"}}), 5u);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x_total");
  EXPECT_THROW(reg.gauge("x_total"), RuntimeError);
  EXPECT_THROW(reg.histogram("x_total"), RuntimeError);
}

// ---------- histograms ----------

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), obs::kHistogramBuckets - 1);
  // bucket_bound(i) is the inclusive upper edge: bit_width(bound) == i.
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_bound(obs::kHistogramBuckets - 1), UINT64_MAX);
}

TEST(MetricsTest, HistogramSnapshotIsCumulativeWithInf) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("latency_ns", "latency");
  h.observe(0);
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  const obs::SeriesSnapshot* s = snap.series("latency_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 5u);
  EXPECT_EQ(s->sum, 107u);
  // Buckets are (le, cumulative) with a final +Inf (le == UINT64_MAX)
  // carrying the total count.
  ASSERT_FALSE(s->buckets.empty());
  EXPECT_EQ(s->buckets.back().first, UINT64_MAX);
  EXPECT_EQ(s->buckets.back().second, 5u);
  uint64_t prev = 0;
  for (const auto& [le, cum] : s->buckets) {
    EXPECT_GE(cum, prev);  // cumulative counts never decrease
    prev = cum;
  }
  // le=3 must cover the 0,1,3,3 observations.
  for (const auto& [le, cum] : s->buckets) {
    if (le == 3) {
      EXPECT_EQ(cum, 4u);
    }
  }
}

// ---------- concurrency ----------

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry reg;
  const Counter c = reg.counter("ops_total");
  const Histogram h = reg.histogram("val");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(i % 1024);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("ops_total"), kThreads * kPerThread);
  EXPECT_EQ(snap.series("val")->count, kThreads * kPerThread);
}

TEST(MetricsTest, SnapshotIsSafeWhileWritersRun) {
  MetricsRegistry reg;
  const Counter c = reg.counter("live_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) c.inc();
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const uint64_t now = reg.snapshot().value("live_total");
    EXPECT_GE(now, last);  // monotone under concurrent increments
    last = now;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// ---------- collectors & sampler ----------

TEST(MetricsTest, CollectorsRefreshGaugesAtSnapshot) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("derived");
  int truth = 0;
  reg.add_collector([g, &truth] { g.set(truth); });
  truth = 41;
  EXPECT_EQ(static_cast<int64_t>(reg.snapshot().value("derived")), 41);
  truth = 17;
  EXPECT_EQ(static_cast<int64_t>(reg.snapshot().value("derived")), 17);
}

TEST(MetricsTest, SamplerRunsUntilStopped) {
  MetricsRegistry reg;
  std::atomic<int> samples{0};
  reg.start_sampler(1, [&] { samples.fetch_add(1); });
  EXPECT_TRUE(reg.sampler_running());
  while (samples.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  reg.stop_sampler();
  EXPECT_FALSE(reg.sampler_running());
}

// ---------- exporters (golden) ----------

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  const Counter c = reg.counter("idxl_demo_total", "a demo counter", {{"kind", "x"}});
  c.inc(3);
  const Gauge g = reg.gauge("idxl_demo_depth", "a demo gauge");
  g.set(-2);
  const Histogram h = reg.histogram("idxl_demo_ns", "a demo histogram");
  h.observe(1);
  h.observe(3);

  const std::string text = reg.snapshot().prometheus_text();
  const std::string expected =
      "# HELP idxl_demo_total a demo counter\n"
      "# TYPE idxl_demo_total counter\n"
      "idxl_demo_total{kind=\"x\"} 3\n"
      "# HELP idxl_demo_depth a demo gauge\n"
      "# TYPE idxl_demo_depth gauge\n"
      "idxl_demo_depth -2\n"
      "# HELP idxl_demo_ns a demo histogram\n"
      "# TYPE idxl_demo_ns histogram\n"
      "idxl_demo_ns_bucket{le=\"1\"} 1\n"
      "idxl_demo_ns_bucket{le=\"3\"} 2\n"
      "idxl_demo_ns_bucket{le=\"+Inf\"} 2\n"
      "idxl_demo_ns_sum 4\n"
      "idxl_demo_ns_count 2\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsTest, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("esc_total", "", {{"path", "a\"b\\c"}}).inc();
  const std::string text = reg.snapshot().prometheus_text();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\"} 1"), std::string::npos) << text;
}

TEST(MetricsTest, PrometheusEscapesNewlinesInLabelsAndHelp) {
  MetricsRegistry reg;
  reg.counter("nl_total", "line one\nline two", {{"msg", "a\nb"}}).inc();
  const std::string text = reg.snapshot().prometheus_text();
  // A raw newline inside a label value or HELP line would split the series
  // across exposition lines; both must come out as the two-char escape.
  EXPECT_NE(text.find("# HELP nl_total line one\\nline two"),
            std::string::npos) << text;
  EXPECT_NE(text.find("nl_total{msg=\"a\\nb\"} 1"), std::string::npos) << text;
}

TEST(MetricsTest, ClusterAggregationLabelsRanksAndRollsUp) {
  // Two ranks report the same counter family; one adds a histogram. The
  // aggregate must carry each rank's series under a rank label plus a
  // rank="all" roll-up per family, in one exposition.
  MetricsRegistry r0, r1;
  r0.counter("idxl_tasks_total", "tasks", {{"kind", "point"}}).inc(3);
  r1.counter("idxl_tasks_total", "tasks", {{"kind", "point"}}).inc(5);
  const Histogram h0 = r0.histogram("idxl_dur_ns", "durations");
  h0.observe(1);
  h0.observe(3);
  const Histogram h1 = r1.histogram("idxl_dur_ns", "durations");
  h1.observe(3);

  const MetricsSnapshot cluster = obs::aggregate_cluster(
      {{0, r0.snapshot()}, {1, r1.snapshot()}});
  EXPECT_EQ(cluster.value("idxl_tasks_total",
                          {{"kind", "point"}, {"rank", "0"}}), 3u);
  EXPECT_EQ(cluster.value("idxl_tasks_total",
                          {{"kind", "point"}, {"rank", "1"}}), 5u);
  EXPECT_EQ(cluster.value("idxl_tasks_total",
                          {{"kind", "point"}, {"rank", "all"}}), 8u);

  // Histogram roll-up: counts and sums add, cumulative buckets rebuild.
  const obs::SeriesSnapshot* all =
      cluster.series("idxl_dur_ns", {{"rank", "all"}});
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->count, 3u);
  EXPECT_EQ(all->sum, 7u);
  ASSERT_FALSE(all->buckets.empty());
  EXPECT_EQ(all->buckets.back().first, UINT64_MAX);
  EXPECT_EQ(all->buckets.back().second, 3u);
  for (const auto& [le, cum] : all->buckets) {
    if (le == 3) {
      EXPECT_EQ(cum, 3u);  // 1, 3, 3 all le 3
    }
  }

  // The rendered exposition keeps Prometheus conformance: one HELP/TYPE
  // block per family, every series rank-labeled, histograms cumulative.
  const std::string text = cluster.prometheus_text();
  EXPECT_NE(text.find("# TYPE idxl_tasks_total counter"), std::string::npos);
  EXPECT_NE(text.find("idxl_tasks_total{kind=\"point\",rank=\"0\"} 3"),
            std::string::npos) << text;
  EXPECT_NE(text.find("idxl_tasks_total{kind=\"point\",rank=\"all\"} 8"),
            std::string::npos) << text;
  EXPECT_NE(text.find("idxl_dur_ns_bucket{rank=\"all\",le=\"+Inf\"} 3"),
            std::string::npos) << text;
  EXPECT_NE(text.find("idxl_dur_ns_sum{rank=\"all\"} 7"), std::string::npos);
  EXPECT_NE(text.find("idxl_dur_ns_count{rank=\"all\"} 3"), std::string::npos);
  // Exactly one HELP line per family even though both ranks declared it.
  EXPECT_EQ(text.find("# HELP idxl_tasks_total"),
            text.rfind("# HELP idxl_tasks_total"));
}

TEST(MetricsTest, ClusterAggregationPassesPreLabeledSeriesThrough) {
  // A series already carrying a rank label (a re-aggregated snapshot) must
  // pass through untouched and stay out of the roll-up.
  MetricsRegistry r0;
  r0.counter("x_total", "", {{"rank", "9"}}).inc(100);
  r0.counter("x_total", "").inc(1);
  const MetricsSnapshot cluster = obs::aggregate_cluster({{0, r0.snapshot()}});
  EXPECT_EQ(cluster.value("x_total", {{"rank", "9"}}), 100u);
  EXPECT_EQ(cluster.value("x_total", {{"rank", "0"}}), 1u);
  EXPECT_EQ(cluster.value("x_total", {{"rank", "all"}}), 1u);  // no 100
}

TEST(MetricsTest, JsonExportParsesAndRoundTrips) {
  MetricsRegistry reg;
  reg.counter("c_total", "help text", {{"k", "v"}}).inc(9);
  reg.histogram("h_ns").observe(5);
  JValue doc;
  ASSERT_TRUE(JsonParser(reg.snapshot().json()).parse(doc));
  const JValue* families = doc.get("metrics");
  ASSERT_NE(families, nullptr);
  ASSERT_EQ(families->kind, JValue::kArray);
  ASSERT_EQ(families->array.size(), 2u);
  const JValue& counter = families->array[0];
  EXPECT_EQ(counter.get("name")->string, "c_total");
  EXPECT_EQ(counter.get("help")->string, "help text");
  EXPECT_EQ(counter.get("type")->string, "counter");
  const JValue& series = counter.get("series")->array[0];
  EXPECT_EQ(series.get("value")->number, 9);
  EXPECT_EQ(series.get("labels")->get("k")->string, "v");
  const JValue& hist = families->array[1];
  EXPECT_EQ(hist.get("type")->string, "histogram");
  EXPECT_EQ(hist.get("series")->array[0].get("count")->number, 1);
  EXPECT_EQ(hist.get("series")->array[0].get("sum")->number, 5);
  ASSERT_NE(hist.get("series")->array[0].get("buckets"), nullptr);
}

// ---------- runtime integration ----------

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  RegionId region;
  PartitionId blocks;

  explicit Fixture(int64_t n, int64_t pieces, RuntimeConfig cfg = {}) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
  }
};

TEST(MetricsTest, OneSnapshotReachesEveryRuntimeCounter) {
  RuntimeConfig cfg;
  Fixture fx(64, 8, cfg);
  const TaskFnId noop = fx.rt.register_task("noop", [](TaskContext&) {});
  fx.rt.execute_index(IndexLauncher::over(Domain::line(8))
                          .with_task(noop)
                          .region(fx.region, fx.blocks,
                                  ProjectionFunctor::identity(1), {fx.fv},
                                  Privilege::kReadWrite));
  fx.rt.wait_all();

  const MetricsSnapshot snap = fx.rt.metrics().snapshot();
  // Runtime counters, safety verdicts, cache and pool gauges, recorder
  // counters and task histograms all come out of the single snapshot.
  EXPECT_EQ(snap.value("idxl_point_tasks_total"), 8u);
  EXPECT_EQ(snap.value("idxl_tasks_completed_total"), 8u);
  EXPECT_EQ(snap.value("idxl_launches_total", {{"kind", "index"}}), 1u);
  EXPECT_EQ(snap.value("idxl_launch_safety_total", {{"outcome", "safe_static"}}), 1u);
  ASSERT_NE(snap.series("idxl_task_duration_ns"), nullptr);
  EXPECT_EQ(snap.series("idxl_task_duration_ns")->count, 8u);
  EXPECT_EQ(snap.series("idxl_task_queue_wait_ns")->count, 8u);
  EXPECT_GT(snap.value("idxl_pool_workers"), 0u);
  EXPECT_GT(snap.value("idxl_flight_recorder_events"), 0u);
  ASSERT_NE(snap.series("idxl_verdict_cache_misses"), nullptr);

  // stats() reads through the same snapshot: both views agree.
  const RuntimeStats stats = fx.rt.stats();
  EXPECT_EQ(stats.point_tasks, 8u);
  EXPECT_EQ(stats.tasks_completed, 8u);
  EXPECT_EQ(stats.index_launches, 1u);
  EXPECT_EQ(stats.launches_safe_static, 1u);
}

TEST(MetricsTest, StatsHammeredDuringLiveRunIsConsistent) {
  // The PR-3 era stats() read plain fields racily; now every counter is a
  // registry atomic, so concurrent readers must see monotone, coherent
  // values while tasks complete underneath them.
  Fixture fx(256, 64);
  const TaskFnId spin = fx.rt.register_task("spin", [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  std::atomic<bool> stop{false};
  uint64_t last_completed = 0;
  bool ordered = true;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const RuntimeStats s = fx.rt.stats();
      if (s.tasks_completed < last_completed) ordered = false;
      if (s.tasks_completed > s.point_tasks) ordered = false;  // never >100%
      last_completed = s.tasks_completed;
    }
  });
  for (int it = 0; it < 20; ++it) {
    fx.rt.execute_index(IndexLauncher::over(Domain::line(64))
                            .with_task(spin)
                            .region(fx.region, fx.blocks,
                                    ProjectionFunctor::identity(1), {fx.fv},
                                    Privilege::kReadWrite));
  }
  fx.rt.wait_all();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(fx.rt.stats().tasks_completed, 20u * 64u);
}

}  // namespace
}  // namespace idxl
