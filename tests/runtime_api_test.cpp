// The RuntimeApi facade contract: one workload, written once against the
// interface, must produce identical results on the local, sharded and
// distributed backends, and make_runtime() must honour config and
// $IDXL_BACKEND.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "dist/backend.hpp"
#include "dist/dist_runtime.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_runtime.hpp"

namespace idxl {
namespace {

constexpr int64_t kElements = 64;
constexpr int64_t kPieces = 8;

/// The backend-independent workload: fill, one statically-safe launch, one
/// launch only the dynamic check can prove, then read back.
std::vector<double> run_workload(RuntimeApi& rt) {
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId value = forest.allocate_field(fs, sizeof(double), "value");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId pieces = partition_equal(forest, is, Rect::line(kPieces));

  const TaskFnId write_idx = rt.register_task("write_idx", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(ctx.point[0] + 1));
    });
  });
  const TaskFnId scale = rt.register_task("scale", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, acc.read(p) * 10.0); });
  });

  rt.fill(region, value, -1.0);
  rt.execute_index(IndexLauncher::over(Domain::line(kPieces))
                       .with_task(write_idx)
                       .region(region, pieces, ProjectionFunctor::identity(1),
                               {value}, Privilege::kWrite));
  rt.execute_index(IndexLauncher::over(Domain::line(kPieces))
                       .with_task(scale)
                       .region(region, pieces,
                               ProjectionFunctor::modular1d(3, kPieces),
                               {value}, Privilege::kReadWrite));
  rt.wait_all();
  EXPECT_TRUE(rt.fault_report().ok());

  auto acc = rt.read_region<double>(region, value);
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> expected() {
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i)
    out.push_back(static_cast<double>(i / (kElements / kPieces) + 1) * 10.0);
  return out;
}

TEST(RuntimeApiTest, SameWorkloadOnEveryBackend) {
  for (const dist::Backend backend :
       {dist::Backend::kLocal, dist::Backend::kSharded, dist::Backend::kDist}) {
    dist::BackendConfig config;
    config.backend = backend;
    config.runtime.workers = 2;
    config.shards = 2;
    config.dist.ranks = 2;
    const auto rt = dist::make_runtime(config);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(run_workload(*rt), expected())
        << "backend=" << dist::backend_name(backend);
  }
}

TEST(RuntimeApiTest, StatsMapOntoCommonShape) {
  dist::BackendConfig config;
  config.runtime.workers = 2;
  for (const dist::Backend backend :
       {dist::Backend::kLocal, dist::Backend::kSharded, dist::Backend::kDist}) {
    config.backend = backend;
    const auto rt = dist::make_runtime(config);
    run_workload(*rt);
    const RuntimeStats stats = rt->stats();
    // 3 issuance calls (fill + 2 launches) expanded to kPieces point tasks
    // each — every backend reports through the same counters. The sharded
    // backend replays the stream once per shard, so point totals there are
    // per-shard sums; all backends agree the launches were index launches.
    EXPECT_GE(stats.index_launches, 2u) << dist::backend_name(backend);
    EXPECT_GE(stats.point_tasks, static_cast<uint64_t>(2 * kPieces));
    EXPECT_EQ(stats.tasks_failed, 0u);
  }
}

TEST(RuntimeApiTest, ShardedSingleTaskLaunchThrows) {
  // ShardContext has no partition-free region arguments, so the sharded
  // facade cannot express a single-task launch; it must refuse loudly.
  dist::BackendConfig config;
  config.backend = dist::Backend::kSharded;
  const auto rt = dist::make_runtime(config);
  const TaskFnId noop = rt->register_task("noop", [](TaskContext&) {});
  EXPECT_THROW(rt->execute(TaskLauncher::for_task(noop)), RuntimeError);
}

TEST(RuntimeApiTest, RunContractOnEveryBackend) {
  // RuntimeApi::run = program + fence + merged report, on any backend.
  for (const dist::Backend backend :
       {dist::Backend::kLocal, dist::Backend::kSharded, dist::Backend::kDist}) {
    dist::BackendConfig config;
    config.backend = backend;
    config.runtime.workers = 2;
    const auto rt = dist::make_runtime(config);
    std::vector<double> got;
    const FaultReport report =
        rt->run([&](RuntimeApi& api) { got = run_workload(api); });
    EXPECT_TRUE(report.ok()) << dist::backend_name(backend);
    EXPECT_EQ(got, expected()) << dist::backend_name(backend);
  }
}

TEST(RuntimeApiTest, EnvSelectsBackend) {
  ASSERT_EQ(setenv("IDXL_BACKEND", "sharded", 1), 0);
  auto rt = dist::make_runtime();
  EXPECT_NE(dynamic_cast<ShardedRuntime*>(rt.get()), nullptr);

  ASSERT_EQ(setenv("IDXL_BACKEND", "dist", 1), 0);
  ASSERT_EQ(setenv("IDXL_DIST_RANKS", "1", 1), 0);
  rt = dist::make_runtime();
  auto* dist_rt = dynamic_cast<dist::DistributedRuntime*>(rt.get());
  ASSERT_NE(dist_rt, nullptr);
  EXPECT_EQ(dist_rt->ranks(), 1u);

  ASSERT_EQ(setenv("IDXL_BACKEND", "local", 1), 0);
  rt = dist::make_runtime();
  EXPECT_NE(dynamic_cast<Runtime*>(rt.get()), nullptr);

  ASSERT_EQ(setenv("IDXL_BACKEND", "bogus", 1), 0);
  EXPECT_THROW(dist::make_runtime(), RuntimeError);
  ASSERT_EQ(unsetenv("IDXL_BACKEND"), 0);
  ASSERT_EQ(unsetenv("IDXL_DIST_RANKS"), 0);
}

TEST(RuntimeApiTest, DeprecatedFutureShimStillWorks) {
  // Future::get(Runtime&) predates RuntimeApi::get; both resolve the same
  // reduction.
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(8));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId pieces = partition_equal(forest, is, Rect::line(8));
  const TaskFnId one = rt.register_task("one", [](TaskContext& ctx) {
    ctx.return_value = 1.0;
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 1.0); });
  });
  const LaunchResult r = rt.execute_index(
      IndexLauncher::over(Domain::line(8))
          .with_task(one)
          .reduce(ReductionOp::kSum)
          .region(region, pieces, ProjectionFunctor::identity(1), {f},
                  Privilege::kWrite));
  ASSERT_TRUE(r.future.valid());
  EXPECT_EQ(rt.get(r.future), 8.0);       // the RuntimeApi way
  EXPECT_EQ(r.future.get(rt), 8.0);       // the deprecated shim
}

}  // namespace
}  // namespace idxl
