// Unit tests for the cluster-trace machinery added with distributed tracing:
// the shared json_escape helper, the midpoint clock estimator, the
// clock-aligned trace merge (orphans, flow edges, union critical path), the
// merged stall dump, and the Telemetry / MetricsSnapshot wire codecs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "net/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_merge.hpp"
#include "test_json.hpp"

namespace idxl {
namespace {

using obs::ClusterTrace;
using obs::RankStall;
using obs::RankTrace;
using testjson::JsonParser;
using testjson::JValue;

// ---------- json_escape (the one shared definition) ----------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  std::string out;
  obs::json_escape(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
  EXPECT_EQ(obs::json_quote("x\"y"), "\"x\\\"y\"");
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  std::string out = "prefix:";
  obs::json_escape(out, "plain text 123");
  EXPECT_EQ(out, "prefix:plain text 123");
}

// ---------- midpoint clock estimator ----------

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TEST(ClockTableTest, PingGetsPongWithEchoedT1) {
  net::ClockTable table;
  const std::vector<std::byte> ping = net::ClockTable::make_ping();
  net::ClockProbe probe;
  ASSERT_TRUE(net::ClockProbe::decode(ping, probe));
  EXPECT_EQ(probe.pong, 0u);
  EXPECT_GT(probe.t1_ns, 0u);

  const std::vector<std::byte> pong = table.on_probe(7, ping);
  ASSERT_FALSE(pong.empty());
  net::ClockProbe reply;
  ASSERT_TRUE(net::ClockProbe::decode(pong, reply));
  EXPECT_EQ(reply.pong, 1u);
  EXPECT_EQ(reply.t1_ns, probe.t1_ns);  // originator's stamp echoed back
  EXPECT_GT(reply.t2_ns, 0u);
  // Answering a ping absorbs nothing: no estimate for the peer yet.
  EXPECT_FALSE(table.estimate(7).valid);
}

TEST(ClockTableTest, PongYieldsMidpointEstimate) {
  net::ClockTable table;
  // Craft a pong claiming the peer's clock runs 1s ahead: t2 = t1 + 1s while
  // the local turnaround (t3 - t1) stays tiny, so the midpoint estimate must
  // land close to +1s.
  constexpr int64_t kAhead = 1'000'000'000;
  net::ClockProbe pong;
  pong.pong = 1;
  pong.t1_ns = steady_now_ns();
  pong.t2_ns = pong.t1_ns + kAhead;
  EXPECT_TRUE(table.on_probe(3, pong.encode()).empty());

  const net::ClockEstimate est = table.estimate(3);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.samples, 1u);
  EXPECT_GT(est.rtt_ns, 0u);
  // offset = t2 - (t1+t3)/2 = kAhead - rtt/2: within ±rtt of the truth.
  EXPECT_NEAR(static_cast<double>(est.offset_ns), static_cast<double>(kAhead),
              static_cast<double>(est.rtt_ns) + 1e6);
}

TEST(ClockTableTest, LegacyHeartbeatPayloadIsIgnored) {
  net::ClockTable table;
  EXPECT_TRUE(table.on_probe(1, {}).empty());
  std::vector<std::byte> junk(3, std::byte{0x5a});
  EXPECT_TRUE(table.on_probe(1, junk).empty());
  EXPECT_FALSE(table.estimate(1).valid);
}

TEST(ClockTableTest, ExportsOffsetGauges) {
  obs::MetricsRegistry reg;
  net::ClockTable table(&reg);
  net::ClockProbe pong;
  pong.pong = 1;
  pong.t1_ns = steady_now_ns();
  pong.t2_ns = pong.t1_ns;
  (void)table.on_probe(2, pong.encode());
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_NE(snap.series("idxl_net_clock_offset_ns", {{"rank", "2"}}), nullptr);
  EXPECT_NE(snap.series("idxl_net_clock_rtt_ns", {{"rank", "2"}}), nullptr);
}

// ---------- trace merge ----------

/// Two-rank fixture: rank 0 executed task seq=5 (a kTask span); rank 1
/// recorded the receiving apply span parented on it.
ClusterTrace make_linked_trace() {
  ClusterTrace trace;
  RankTrace r0;
  r0.rank = 0;
  r0.epoch_ns = 1'000'000;
  r0.names = {"producer", "xfer-apply"};
  ProfileEvent task;
  task.name = 0;
  task.cat = ProfCategory::kTask;
  task.seq = 5;
  task.start_ns = 100;
  task.dur_ns = 50;
  r0.spans.push_back(task);
  trace.ranks.push_back(std::move(r0));

  RankTrace r1;
  r1.rank = 1;
  r1.epoch_ns = 3'000'000;
  r1.clock_offset_ns = 2'000'000;  // perfectly cancels the epoch skew
  r1.rtt_ns = 10'000;
  r1.names = {"producer", "xfer-apply"};
  ProfileEvent apply;
  apply.name = 1;
  apply.cat = ProfCategory::kExchange;
  apply.seq = 5;
  apply.start_ns = 400;
  apply.dur_ns = 20;
  apply.parent = 5;
  apply.origin = 0;
  r1.spans.push_back(apply);
  trace.ranks.push_back(std::move(r1));
  return trace;
}

TEST(TraceMergeTest, ResolvedRemoteParentIsNotAnOrphan) {
  const ClusterTrace trace = make_linked_trace();
  EXPECT_TRUE(trace.orphans().empty());
  EXPECT_EQ(trace.transfer_edges(), 1u);
}

TEST(TraceMergeTest, MissingParentSpanIsAnOrphan) {
  ClusterTrace trace = make_linked_trace();
  trace.ranks[0].spans.clear();  // the producing span was never recorded
  const std::vector<obs::OrphanSpan> orphans = trace.orphans();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].rank, 1u);
  EXPECT_EQ(orphans[0].parent, 5u);
  EXPECT_EQ(orphans[0].origin, 0u);
  EXPECT_EQ(trace.transfer_edges(), 0u);
}

TEST(TraceMergeTest, UnknownOriginRankIsAnOrphan) {
  ClusterTrace trace = make_linked_trace();
  trace.ranks[1].spans[0].origin = 9;  // no rank 9 in the merge
  EXPECT_EQ(trace.orphans().size(), 1u);
}

TEST(TraceMergeTest, ChromeJsonHasLanesFlowsAndAlignment) {
  const ClusterTrace trace = make_linked_trace();
  const std::string json = trace.chrome_trace_json();

  JValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json;
  // One process lane per rank.
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  // The resolved transfer edge becomes a flow-start/flow-end pair keyed by
  // the producing task's seq.
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":5"), std::string::npos);
  // Each rank carries its clock-alignment note.
  EXPECT_NE(json.find("\"name\":\"clock-align\""), std::string::npos);
  EXPECT_NE(json.find("\"offset_ns\":2000000"), std::string::npos);
}

TEST(TraceMergeTest, ClockOffsetAlignsTimestampsAcrossRanks) {
  // Rank 1's epoch is 2ms later but its clock is judged 2ms ahead, so after
  // alignment its apply span (local start 400ns) must land at 400ns on the
  // shared timeline too — after the producer span at 100ns, not 2ms away.
  const ClusterTrace trace = make_linked_trace();
  const std::string json = trace.chrome_trace_json();
  // Producer: aligned epoch 1e6 + 100 over a base of 1e6 -> ts 0.100us.
  EXPECT_NE(json.find("\"ts\":0.100"), std::string::npos) << json;
  // Apply: (3e6 - 2e6 + 400) - 1e6 -> ts 0.400us, not ~2000us.
  EXPECT_NE(json.find("\"ts\":0.400"), std::string::npos) << json;
}

TEST(TraceMergeTest, CriticalPathUnionsReplicatedGraphs) {
  // Control replication: both ranks record the same dependence edges, but
  // each task's duration is nonzero only on its executing rank. The union
  // must chain the real durations: 100 + 200 on the 1 -> 2 path.
  ClusterTrace trace;
  RankTrace r0;
  r0.rank = 0;
  r0.samples.push_back({1, 100, {}});
  r0.samples.push_back({2, 0, {1}});  // external copy: zero duration
  trace.ranks.push_back(std::move(r0));
  RankTrace r1;
  r1.rank = 1;
  r1.samples.push_back({1, 0, {}});
  r1.samples.push_back({2, 200, {1}});
  trace.ranks.push_back(std::move(r1));

  const CriticalPathReport cp = trace.critical_path();
  EXPECT_EQ(cp.total_task_ns, 300u);
  EXPECT_EQ(cp.critical_path_ns, 300u);
  ASSERT_EQ(cp.path.size(), 2u);
  EXPECT_EQ(cp.path[0], 1u);
  EXPECT_EQ(cp.path[1], 2u);
}

TEST(TraceMergeTest, LongCriticalPathEventStaysWellFormedJson) {
  // A 64-hop chain of 11-digit seqs renders a critical-path event far past
  // any reasonable stack buffer; the emitted JSON must stay balanced rather
  // than truncate mid-object (regression: a 224-byte snprintf cut the event
  // short and corrupted the whole trace file).
  ClusterTrace trace;
  RankTrace r0;
  r0.rank = 0;
  uint64_t prev = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t seq = 10'000'000'000ull + i * 7;
    std::vector<uint64_t> deps;
    if (prev != 0) deps.push_back(prev);
    r0.samples.push_back({seq, 100, std::move(deps)});
    prev = seq;
  }
  trace.ranks.push_back(std::move(r0));

  const std::string json = trace.chrome_trace_json();
  EXPECT_NE(json.find("cluster-critical-path"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  long braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---------- merged stall dump ----------

TEST(StallMergeTest, NamesTheBlockingRank) {
  // Rank 0 waits on seq 3, which it lists as a pending external; rank 1
  // does not — rank 1 is executing it and owes the cluster its TaskDone.
  std::vector<RankStall> ranks(2);
  ranks[0].rank = 0;
  obs::BlockedTask blocked;
  blocked.seq = 7;
  blocked.label = "stencil(1,0)";
  blocked.waits_for = {3};
  ranks[0].report.blocked.push_back(blocked);
  ranks[0].pending_externals = {3};
  ranks[1].rank = 1;

  const std::string dump = obs::merged_stall_dump(ranks);
  EXPECT_NE(dump.find("blocking task: seq 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("blocking rank: 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("-- rank 0 --"), std::string::npos);
  EXPECT_NE(dump.find("-- rank 1 --"), std::string::npos);
}

TEST(StallMergeTest, NoEdgesMeansTransportStall) {
  std::vector<RankStall> ranks(1);
  ranks[0].rank = 0;
  const std::string dump = obs::merged_stall_dump(ranks);
  EXPECT_NE(dump.find("outside the task graph"), std::string::npos) << dump;
}

// ---------- wire codecs ----------

TEST(TelemetryCodecTest, MetricsSnapshotRoundTripsExactly) {
  obs::MetricsRegistry reg;
  reg.counter("idxl_demo_total", "a demo counter", {{"kind", "x"}}).inc(3);
  reg.gauge("idxl_demo_depth", "a demo gauge").set(-2);
  const obs::Histogram h = reg.histogram("idxl_demo_ns", "a demo histogram");
  h.observe(1);
  h.observe(300);
  const obs::MetricsSnapshot snap = reg.snapshot();

  const obs::MetricsSnapshot back = dist::deserialize_metrics_snapshot(
      dist::serialize_metrics_snapshot(snap));
  EXPECT_EQ(back.taken_ns, snap.taken_ns);
  // Byte-identical exposition is the strongest cheap equality check.
  EXPECT_EQ(back.prometheus_text(), snap.prometheus_text());
  EXPECT_EQ(back.json(), snap.json());
}

TEST(TelemetryCodecTest, TelemetryRoundTripsEveryField) {
  dist::Telemetry t;
  t.rank = 3;
  t.flavor = static_cast<uint8_t>(dist::TelemetryFlavor::kStallPush);
  t.epoch_ns = 123456789;
  t.names = {"alpha", "beta \"quoted\""};
  ProfileEvent ev;
  ev.name = 1;
  ev.cat = ProfCategory::kExchange;
  ev.worker = 2;
  ev.tid = 4;
  ev.start_ns = 10;
  ev.dur_ns = 20;
  ev.seq = 30;
  ev.queue_wait_ns = 5;
  ev.launch = 7;
  ev.parent = 30;
  ev.origin = 1;
  t.spans.push_back(ev);
  t.samples.push_back({30, 20, {10, 11}});
  obs::FlightEvent fe;
  fe.ts_ns = 99;
  fe.seq = 30;
  fe.launch = 7;
  fe.edge = 11;
  const int64_t coord[2] = {1, -2};
  fe.set_point(coord, 2);
  fe.worker = 1;
  t.recent.push_back(fe);
  obs::MetricsRegistry reg;
  reg.counter("c_total").inc(4);
  t.metrics = reg.snapshot();
  t.completed = 40;
  t.pending = 2;
  t.window_ms = 500;
  obs::BlockedTask blocked;
  blocked.seq = 31;
  blocked.launch = 7;
  blocked.label = "stuck";
  blocked.waits_for = {30};
  t.blocked.push_back(blocked);
  t.pending_externals = {30, 32};

  const dist::Telemetry back = dist::decode_telemetry(dist::encode_telemetry(t));
  EXPECT_EQ(back.rank, t.rank);
  EXPECT_EQ(back.flavor, t.flavor);
  EXPECT_EQ(back.epoch_ns, t.epoch_ns);
  EXPECT_EQ(back.names, t.names);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].name, ev.name);
  EXPECT_EQ(back.spans[0].cat, ev.cat);
  EXPECT_EQ(back.spans[0].worker, ev.worker);
  EXPECT_EQ(back.spans[0].tid, ev.tid);
  EXPECT_EQ(back.spans[0].start_ns, ev.start_ns);
  EXPECT_EQ(back.spans[0].dur_ns, ev.dur_ns);
  EXPECT_EQ(back.spans[0].seq, ev.seq);
  EXPECT_EQ(back.spans[0].queue_wait_ns, ev.queue_wait_ns);
  EXPECT_EQ(back.spans[0].launch, ev.launch);
  EXPECT_EQ(back.spans[0].parent, ev.parent);
  EXPECT_EQ(back.spans[0].origin, ev.origin);
  EXPECT_TRUE(back.spans[0].remote_parent());
  ASSERT_EQ(back.samples.size(), 1u);
  EXPECT_EQ(back.samples[0].seq, 30u);
  EXPECT_EQ(back.samples[0].dur_ns, 20u);
  EXPECT_EQ(back.samples[0].deps, (std::vector<uint64_t>{10, 11}));
  ASSERT_EQ(back.recent.size(), 1u);
  EXPECT_EQ(back.recent[0].ts_ns, fe.ts_ns);
  EXPECT_EQ(back.recent[0].seq, fe.seq);
  EXPECT_EQ(back.recent[0].edge, fe.edge);
  EXPECT_EQ(back.recent[0].dim, 2);
  EXPECT_EQ(back.recent[0].coord[0], 1);
  EXPECT_EQ(back.recent[0].coord[1], -2);
  EXPECT_EQ(back.metrics.value("c_total"), 4u);
  EXPECT_EQ(back.completed, t.completed);
  EXPECT_EQ(back.pending, t.pending);
  EXPECT_EQ(back.window_ms, t.window_ms);
  ASSERT_EQ(back.blocked.size(), 1u);
  EXPECT_EQ(back.blocked[0].seq, 31u);
  EXPECT_EQ(back.blocked[0].label, "stuck");
  EXPECT_EQ(back.blocked[0].waits_for, (std::vector<uint64_t>{30}));
  EXPECT_EQ(back.pending_externals, t.pending_externals);
}

}  // namespace
}  // namespace idxl
