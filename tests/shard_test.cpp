#include <gtest/gtest.h>

#include "region/partition_ops.hpp"
#include "shard/sharded_runtime.hpp"

namespace idxl {
namespace {

struct ShardedFixture {
  ShardedRuntime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0, fw = 0;
  RegionId grid;
  PartitionId blocks;
  PartitionId halos;
  TaskFnId init = 0, step = 0, copy = 0;

  explicit ShardedFixture(ShardedConfig cfg, int64_t n, int64_t pieces) : rt(cfg) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    fw = forest.allocate_field(fs, sizeof(double), "w");
    grid = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
    halos = partition_halo(forest, is, blocks, 1);

    init = rt.register_task("init", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, static_cast<double>(p[0])); });
    });
    step = rt.register_task("step", [](TaskContext& ctx) {
      auto in = ctx.region(0).accessor<double>(0);
      auto out = ctx.region(1).accessor<double>(1);
      const Domain& halo = ctx.region(0).domain();
      ctx.region(1).domain().for_each([&](const Point& p) {
        double v = in.read(p);
        const Point l = Point::p1(p[0] - 1), r = Point::p1(p[0] + 1);
        if (halo.contains(l)) v += in.read(l);
        if (halo.contains(r)) v += in.read(r);
        out.write(p, v);
      });
    });
    copy = rt.register_task("copy", [](TaskContext& ctx) {
      auto in = ctx.region(0).accessor<double>(1);
      auto out = ctx.region(1).accessor<double>(0);
      ctx.region(1).domain().for_each([&](const Point& p) { out.write(p, in.read(p)); });
    });
  }

  void issue_program(ShardContext& ctx, int64_t pieces, int iterations) {
    const auto id = ProjectionFunctor::identity(1);
    IndexLauncher init_l;
    init_l.task = init;
    init_l.domain = Domain::line(pieces);
    init_l.args = {{grid, blocks, id, {fv}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(init_l);

    for (int it = 0; it < iterations; ++it) {
      IndexLauncher s;
      s.task = step;
      s.domain = Domain::line(pieces);
      s.args = {{grid, halos, id, {fv}, Privilege::kRead, ReductionOp::kNone},
                {grid, blocks, id, {fw}, Privilege::kWrite, ReductionOp::kNone}};
      ctx.execute_index(s);
      IndexLauncher c;
      c.task = copy;
      c.domain = Domain::line(pieces);
      c.args = {{grid, blocks, id, {fw}, Privilege::kRead, ReductionOp::kNone},
                {grid, blocks, id, {fv}, Privilege::kWrite, ReductionOp::kNone}};
      ctx.execute_index(c);
    }
  }

  std::vector<double> values(int64_t n) {
    auto acc = rt.read_region<double>(grid, fv);
    std::vector<double> out;
    for (int64_t i = 0; i < n; ++i) out.push_back(acc.read(Point::p1(i)));
    return out;
  }
};

std::vector<double> serial_reference(int64_t n, int iterations) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = static_cast<double>(i);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(static_cast<std::size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      double x = v[static_cast<std::size_t>(i)];
      if (i > 0) x += v[static_cast<std::size_t>(i - 1)];
      if (i < n - 1) x += v[static_cast<std::size_t>(i + 1)];
      next[static_cast<std::size_t>(i)] = x;
    }
    v = std::move(next);
  }
  return v;
}

class ShardedStencil
    : public ::testing::TestWithParam<std::tuple<uint32_t, int64_t, bool>> {};

TEST_P(ShardedStencil, MatchesSerialReferenceAcrossShardCounts) {
  const auto [shards, pieces, distributed] = GetParam();
  const int64_t n = 48;
  const int iterations = 6;
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.distributed_storage = distributed;
  ShardedFixture fx(cfg, n, pieces);

  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, iterations); });

  const auto expected = serial_reference(n, iterations);
  const auto actual = fx.values(n);
  for (int64_t i = 0; i < n; ++i)
    ASSERT_NEAR(actual[static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)], 1e-9)
        << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShardedStencil,
    ::testing::Values(std::make_tuple(1u, 8, false), std::make_tuple(2u, 8, false),
                      std::make_tuple(4u, 8, false), std::make_tuple(3u, 6, false),
                      std::make_tuple(8u, 8, false),
                      // Distributed storage: per-shard replicas + copies.
                      std::make_tuple(1u, 8, true), std::make_tuple(2u, 8, true),
                      std::make_tuple(4u, 8, true), std::make_tuple(3u, 6, true),
                      std::make_tuple(8u, 8, true)));

TEST(ShardedRuntimeTest, DistributedStoragePerformsInterShardCopies) {
  // Halo reads at shard boundaries need producer bytes from neighboring
  // shards' replicas; the copy planner must have fired.
  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.distributed_storage = true;
  ShardedFixture fx(cfg, 48, 8);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, 8, 3); });
  uint64_t copies = 0;
  for (uint32_t s = 0; s < 4; ++s) copies += fx.rt.stats(s).copies_planned;
  EXPECT_GT(copies, 0u);

  // Shared-storage mode plans none.
  ShardedConfig shared_cfg;
  shared_cfg.shards = 4;
  ShardedFixture shared_fx(shared_cfg, 48, 8);
  shared_fx.rt.run([&](ShardContext& ctx) { shared_fx.issue_program(ctx, 8, 3); });
  for (uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(shared_fx.rt.stats(s).copies_planned, 0u);
}

TEST(ShardedRuntimeTest, DistributedStorageRepeatedRunsChainState) {
  // With distributed storage, a second run() starts from the synchronized
  // results of the first: two runs of k iterations each must equal one run
  // of 2k.
  const int64_t pieces = 4;
  auto run_split = [&](int first, int second) {
    ShardedConfig cfg;
    cfg.shards = 2;
    cfg.distributed_storage = true;
    ShardedFixture fx(cfg, 24, pieces);
    // The init launch must only happen once (the helper always inits, so
    // issue manually here).
    fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, first); });
    fx.rt.run([&](ShardContext& ctx) {
      const auto id = ProjectionFunctor::identity(1);
      for (int it = 0; it < second; ++it) {
        IndexLauncher s;
        s.task = fx.step;
        s.domain = Domain::line(pieces);
        s.args = {{fx.grid, fx.halos, id, {fx.fv}, Privilege::kRead, ReductionOp::kNone},
                  {fx.grid, fx.blocks, id, {fx.fw}, Privilege::kWrite, ReductionOp::kNone}};
        ctx.execute_index(s);
        IndexLauncher c;
        c.task = fx.copy;
        c.domain = Domain::line(pieces);
        c.args = {{fx.grid, fx.blocks, id, {fx.fw}, Privilege::kRead, ReductionOp::kNone},
                  {fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
        ctx.execute_index(c);
      }
    });
    return fx.values(24);
  };
  const auto split = run_split(2, 3);
  const auto expected = serial_reference(24, 5);
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_NEAR(split[i], expected[i], 1e-9) << i;
}

TEST(ShardedRuntimeTest, WorkIsActuallyDistributed) {
  const int64_t pieces = 8;
  ShardedConfig cfg;
  cfg.shards = 4;
  ShardedFixture fx(cfg, 48, pieces);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 3); });

  uint64_t total_local = 0;
  const uint64_t total_tasks = (1 + 3 * 2) * static_cast<uint64_t>(pieces);
  for (uint32_t s = 0; s < 4; ++s) {
    const ShardStats& stats = fx.rt.stats(s);
    // Replication: every shard issued and analyzed everything...
    EXPECT_EQ(stats.launches_issued, 1u + 3u * 2u);
    EXPECT_EQ(stats.points_analyzed, total_tasks);
    // ...but executed only its share.
    EXPECT_LT(stats.local_tasks, total_tasks);
    EXPECT_GT(stats.local_tasks, 0u);
    total_local += stats.local_tasks;
  }
  EXPECT_EQ(total_local, total_tasks);
}

TEST(ShardedRuntimeTest, CrossShardDependenciesExist) {
  // Halo reads cross block boundaries, so with block sharding some
  // dependencies must cross shards.
  ShardedConfig cfg;
  cfg.shards = 4;
  ShardedFixture fx(cfg, 48, 8);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, 8, 3); });
  uint64_t remote = 0;
  for (uint32_t s = 0; s < 4; ++s) remote += fx.rt.stats(s).remote_dependencies;
  EXPECT_GT(remote, 0u);
}

TEST(ShardedRuntimeTest, IdxModeIsBulkIssuance) {
  const int64_t pieces = 8;
  auto run_mode = [&](bool idx) {
    ShardedConfig cfg;
    cfg.shards = 2;
    cfg.enable_index_launches = idx;
    ShardedFixture fx(cfg, 48, pieces);
    fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 2); });
    return fx.rt.stats(0).runtime_calls;
  };
  const uint64_t launches = 1 + 2 * 2;
  EXPECT_EQ(run_mode(true), launches);
  EXPECT_EQ(run_mode(false), launches * static_cast<uint64_t>(pieces));
}

TEST(ShardedRuntimeTest, ControlDivergenceDetected) {
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedFixture fx(cfg, 48, 8);
  EXPECT_THROW(fx.rt.run([&](ShardContext& ctx) {
    // Shard-dependent control flow: each shard issues a different
    // descriptor at the same program point.
    IndexLauncher l;
    l.task = fx.init;
    l.domain = Domain::line(ctx.shard_id() + 1);
    l.args = {{fx.grid, fx.blocks, ProjectionFunctor::identity(1),
               {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(l);
  }),
               RuntimeError);
}

TEST(ShardedRuntimeTest, UnsafeLaunchRejected) {
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedFixture fx(cfg, 48, 8);
  EXPECT_THROW(fx.rt.run([&](ShardContext& ctx) {
    IndexLauncher l;
    l.task = fx.init;
    l.domain = Domain::line(16);
    l.args = {{fx.grid, fx.blocks, ProjectionFunctor::modular1d(0, 8),
               {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(l);
  }),
               RuntimeError);
}

TEST(ShardedRuntimeTest, CyclicShardingWorksToo) {
  const int64_t pieces = 8;
  ShardedConfig cfg;
  cfg.shards = 3;
  cfg.sharding = std::make_shared<CyclicShardingFunctor>();
  ShardedFixture fx(cfg, 48, pieces);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 4); });
  const auto expected = serial_reference(48, 4);
  const auto actual = fx.values(48);
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-9) << i;
}

class ShardedWavefront : public ::testing::TestWithParam<bool> {};

TEST_P(ShardedWavefront, SparseWavefrontsWithDynamicChecksUnderDcr) {
  // A DOM-style sweep under control replication: sparse diagonal launch
  // domains whose plane-projection functors need the dynamic check, which
  // every shard replicates and agrees on. Runs with shared and with
  // distributed (replica + copy) storage.
  ShardedConfig cfg;
  cfg.shards = 3;
  cfg.distributed_storage = GetParam();
  ShardedRuntime rt(cfg);
  auto& forest = rt.forest();
  const int64_t bx = 3, by = 3;
  const IndexSpaceId plane_is = forest.create_index_space(Domain(Rect::box2(bx, by)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId plane = forest.create_region(plane_is, fs);
  const PartitionId cells = partition_equal(forest, plane_is, Rect::box2(bx, by));

  // Sweep task: cell (x,y) = max(left, up) + 1, reading the neighbor cells
  // through shifted (wrapped) projection functors; boundary cells skip the
  // wrapped reads.
  const TaskFnId relax = rt.register_task("relax", [](TaskContext& ctx) {
    auto own = ctx.region(0).accessor<double>(0);
    auto left = ctx.region(1).accessor<double>(0);
    auto up = ctx.region(2).accessor<double>(0);
    const Point p = ctx.point;
    double best = 0;
    if (p[0] > 0) best = std::max(best, left.read(Point::p2(p[0] - 1, p[1])));
    if (p[1] > 0) best = std::max(best, up.read(Point::p2(p[0], p[1] - 1)));
    own.write(Point::p2(p[0], p[1]), best + 1.0);
  });

  // ((x + bx - 1) mod bx, y) and (x, (y + by - 1) mod by): the wrapped
  // neighbor selections — non-affine, so every multi-point wavefront goes
  // through the replicated dynamic check.
  const auto f_left = ProjectionFunctor::symbolic(
      {make_mod(make_add(make_coord(0), make_const(bx - 1)), make_const(bx)),
       make_coord(1)},
      "left");
  const auto f_up = ProjectionFunctor::symbolic(
      {make_coord(0),
       make_mod(make_add(make_coord(1), make_const(by - 1)), make_const(by))},
      "up");

  rt.run([&](ShardContext& ctx) {
    for (int64_t w = 0; w <= bx + by - 2; ++w) {
      std::vector<Point> wave;
      for (int64_t x = 0; x < bx; ++x)
        for (int64_t y = 0; y < by; ++y)
          if (x + y == w) wave.push_back(Point::p2(x, y));
      IndexLauncher l;
      l.task = relax;
      l.domain = Domain::from_points(std::move(wave));
      l.args = {{plane, cells, ProjectionFunctor::identity(2), {fv},
                 Privilege::kWrite, ReductionOp::kNone},
                {plane, cells, f_left, {fv}, Privilege::kRead, ReductionOp::kNone},
                {plane, cells, f_up, {fv}, Privilege::kRead, ReductionOp::kNone}};
      ctx.execute_index(l);
    }
  });

  auto acc = rt.read_region<double>(plane, fv);
  for (int64_t x = 0; x < bx; ++x)
    for (int64_t y = 0; y < by; ++y)
      EXPECT_DOUBLE_EQ(acc.read(Point::p2(x, y)), static_cast<double>(x + y + 1));
}

INSTANTIATE_TEST_SUITE_P(Storage, ShardedWavefront, ::testing::Bool());

TEST(ShardedRuntimeTest, ShardsShareTheVerdictCache) {
  // Every shard replicates the safety analysis of every launch; with the
  // shared verdict cache, only the first shard to reach a site pays for it
  // (modulo a benign race when several shards miss the same key at once).
  const int64_t pieces = 4;
  const int iterations = 3;
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedFixture fx(cfg, 24, pieces);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, iterations); });

  // 1 init + 2 launch sites per iteration, analyzed by both shards.
  const uint64_t lookups = 2 * (1 + 2 * static_cast<uint64_t>(iterations));
  const auto c = fx.rt.verdict_cache().counters();
  EXPECT_EQ(c.hits + c.misses, lookups);
  EXPECT_LE(c.misses, 3u * 2u);       // at most one racing miss per site per shard
  EXPECT_GE(c.hits, lookups - 6u);
  EXPECT_EQ(fx.rt.verdict_cache().size(), 3u);  // three distinct sites
}

TEST(ShardedRuntimeTest, ShardsShareTheInterferenceCache) {
  // Two writer launches on disjoint fields of one tree: the certified
  // kDisjoint pair verdict lets every shard skip the replicated per-point
  // conflict probe for the second launch. The pair cache is shared, so at
  // most one shard (per racing miss) pays for the analysis.
  const int64_t pieces = 4;
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedFixture fx(cfg, 24, pieces);
  const TaskFnId store_w = fx.rt.register_task("store_w", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(1);
    ctx.region(0).domain().for_each([&](const Point& p) { acc.write(p, 7.0); });
  });
  fx.rt.run([&](ShardContext& ctx) {
    const auto id = ProjectionFunctor::identity(1);
    IndexLauncher a;
    a.task = fx.init;
    a.domain = Domain::line(pieces);
    a.args = {{fx.grid, fx.blocks, id, {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(a);
    IndexLauncher b;
    b.task = store_w;
    b.domain = Domain::line(pieces);
    b.args = {{fx.grid, fx.blocks, id, {fx.fw}, Privilege::kWrite, ReductionOp::kNone}};
    ctx.execute_index(b);
  });

  // The skip decision is replicated: every shard skipped launch b's probe.
  for (uint32_t s = 0; s < cfg.shards; ++s)
    EXPECT_EQ(fx.rt.stats(s).interference_skips, 1u) << "shard " << s;
  // One pair in the shared cache; one lookup per shard, at most one racing
  // analysis per shard.
  const auto c = fx.rt.interference_cache().counters();
  EXPECT_EQ(c.hits + c.misses, 2u);
  EXPECT_EQ(fx.rt.interference_cache().size(), 1u);
  const RuntimeStats agg = fx.rt.stats();
  EXPECT_GE(agg.interference_pair_tests, 1u);
  EXPECT_LE(agg.interference_pair_tests, 2u);
  EXPECT_EQ(agg.interference_skips, 1u);

  auto v = fx.rt.read_region<double>(fx.grid, fx.fv);
  auto w = fx.rt.read_region<double>(fx.grid, fx.fw);
  for (int64_t i = 0; i < 24; ++i) {
    EXPECT_DOUBLE_EQ(v.read(Point::p1(i)), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(w.read(Point::p1(i)), 7.0);
  }
}

TEST(ShardedRuntimeTest, InterferenceKnobOffMatchesResults) {
  // Same stencil program with and without the inter-launch analysis: the
  // skip must never change observable results, only the probe counts.
  const int64_t pieces = 4;
  std::vector<double> results[2];
  for (int variant = 0; variant < 2; ++variant) {
    ShardedConfig cfg;
    cfg.shards = 2;
    cfg.enable_interference_analysis = variant == 0;
    ShardedFixture fx(cfg, 24, pieces);
    fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 3); });
    results[variant] = fx.values(24);
    if (variant != 0) {
      EXPECT_EQ(fx.rt.stats().interference_pair_tests, 0u);
    }
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(ShardedRuntimeTest, RepeatedRunsAreIndependent) {
  const int64_t pieces = 4;
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedFixture fx(cfg, 24, pieces);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 2); });
  const auto first = fx.values(24);
  fx.rt.run([&](ShardContext& ctx) { fx.issue_program(ctx, pieces, 2); });
  // Second run re-initializes and re-runs the same 2 iterations: identical.
  EXPECT_EQ(fx.values(24), first);
}

}  // namespace
}  // namespace idxl
