// Data-plane tests for the distributed runtime (docs/DISTRIBUTED.md "Data
// plane"): VersionMap coherence planning in isolation, then the three wire
// configurations — star-hub broadcast, delta via driver relay, delta over
// direct worker links — run differentially against the local reference,
// including forced peer-link failure and fault-poison merging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "dist/dist_runtime.hpp"
#include "dist/smoke_tasks.hpp"
#include "dist/version_map.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"

namespace idxl::dist {
namespace {

// --- VersionMap unit tests -------------------------------------------------

const RegionId kRoot{0};
const RegionId kProdA{10};
const RegionId kProdB{11};

TEST(VersionMapTest, UntouchedSpaceIsCurrentEverywhere) {
  VersionMap vm(4);
  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, Rect::box2(8, 8), /*dest=*/3, out);
  EXPECT_TRUE(out.empty());  // version 0 = the broadcast bootstrap state
  EXPECT_EQ(vm.entry_count(kRoot, 0), 0u);
}

TEST(VersionMapTest, WriteThenRemoteReadShipsOnce) {
  VersionMap vm(2);
  const Rect block{Point::p2(0, 0), Point::p2(3, 3)};
  vm.note_write(kRoot, 0, block, /*owner=*/1, kProdA);

  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, block, /*dest=*/0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src, 1u);
  EXPECT_EQ(out[0].producer, kProdA);
  EXPECT_EQ(out[0].rect, block);

  // The shipped span is now current at dest: planning again is a no-op.
  out.clear();
  vm.plan_read(kRoot, 0, block, /*dest=*/0, out);
  EXPECT_TRUE(out.empty());
}

TEST(VersionMapTest, OwnerNeverShipsToItself) {
  VersionMap vm(2);
  const Rect block{Point::p2(0, 0), Point::p2(3, 3)};
  vm.note_write(kRoot, 0, block, /*owner=*/1, kProdA);
  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, block, /*dest=*/1, out);
  EXPECT_TRUE(out.empty());
}

TEST(VersionMapTest, HaloReadClipsToWrittenSpan) {
  // Stencil shape: rank 1 wrote its 4x4 block; rank 0 reads a halo rect one
  // cell into it. Only the overlap strip ships — not the whole block, and
  // nothing for the halo's version-0 remainder.
  VersionMap vm(2);
  const Rect block{Point::p2(4, 0), Point::p2(7, 3)};
  vm.note_write(kRoot, 0, block, /*owner=*/1, kProdA);
  const Rect halo{Point::p2(0, 0), Point::p2(4, 3)};
  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, halo, /*dest=*/0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rect, Rect(Point::p2(4, 0), Point::p2(4, 3)));
  // The entry split: the shipped strip and the still-exclusive remainder.
  EXPECT_EQ(vm.entry_count(kRoot, 0), 2u);
}

TEST(VersionMapTest, NewWriteInvalidatesShippedCopies) {
  VersionMap vm(2);
  const Rect block{Point::p2(0, 0), Point::p2(3, 3)};
  vm.note_write(kRoot, 0, block, /*owner=*/1, kProdA);
  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, block, /*dest=*/0, out);
  ASSERT_EQ(out.size(), 1u);

  // Version bump: the old copy at rank 0 is stale again.
  vm.note_write(kRoot, 0, block, /*owner=*/1, kProdB);
  out.clear();
  vm.plan_read(kRoot, 0, block, /*dest=*/0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].producer, kProdB);
  EXPECT_GT(out[0].version, 1u);
}

TEST(VersionMapTest, BroadcastWriteNeedsNoTransfers) {
  VersionMap vm(4);
  const Rect block{Point::p2(0, 0), Point::p2(3, 3)};
  vm.note_write_everywhere(kRoot, 0, block, /*owner=*/2, kProdA);
  std::vector<Transfer> out;
  for (uint32_t dest = 0; dest < 4; ++dest)
    vm.plan_read(kRoot, 0, block, dest, out);
  EXPECT_TRUE(out.empty());
}

TEST(VersionMapTest, OverlappingWritesStayDisjoint) {
  // A second write punching through the middle of an earlier one must leave
  // a disjoint partition: reads see each span's latest producer exactly once.
  VersionMap vm(2);
  vm.note_write(kRoot, 0, Rect{Point::p2(0, 0), Point::p2(7, 7)}, 1, kProdA);
  vm.note_write(kRoot, 0, Rect{Point::p2(2, 2), Point::p2(5, 5)}, 1, kProdB);
  std::vector<Transfer> out;
  vm.plan_read(kRoot, 0, Rect{Point::p2(0, 0), Point::p2(7, 7)}, 0, out);
  int64_t covered = 0;
  for (const Transfer& t : out) {
    covered += t.rect.volume();
    for (const Transfer& u : out)
      if (&t != &u) EXPECT_TRUE(t.rect.intersection(u.rect).empty());
  }
  EXPECT_EQ(covered, 64);
  const int64_t inner = std::accumulate(
      out.begin(), out.end(), int64_t{0}, [](int64_t acc, const Transfer& t) {
        return acc + (t.producer == kProdB ? t.rect.volume() : 0);
      });
  EXPECT_EQ(inner, 16);  // exactly the punched 4x4 belongs to the new write
}

// --- differential wire-configuration tests ---------------------------------

struct Grid {
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fin;
  FieldId fout;
  RegionId region;
  PartitionId blocks;
  PartitionId halos;
};

constexpr int64_t kNx = 24, kNy = 24, kPx = 2, kPy = 2, kRadius = 1;
constexpr int kIters = 3;

Grid make_grid(RegionForest& forest) {
  Grid g;
  g.is = forest.create_index_space(Domain(Rect::box2(kNx, kNy)));
  g.fs = forest.create_field_space();
  g.fin = forest.allocate_field(g.fs, sizeof(double), "in");
  g.fout = forest.allocate_field(g.fs, sizeof(double), "out");
  g.region = forest.create_region(g.is, g.fs);
  g.blocks = partition_equal(forest, g.is, Rect::box2(kPx, kPy));
  g.halos = partition_halo(forest, g.is, g.blocks, kRadius);
  return g;
}

void init_grid(RegionForest& forest, const Grid& g) {
  Accessor<double> in(forest, g.region, g.fin, Privilege::kWrite);
  Accessor<double> out(forest, g.region, g.fout, Privilege::kWrite);
  for (const Point& p : Rect::box2(kNx, kNy)) {
    in.write(p, static_cast<double>(p[0] + p[1]));
    out.write(p, 0.0);
  }
}

void run_stencil(RuntimeApi& rt, const Grid& g, TaskFnId stencil,
                 TaskFnId increment, int iters) {
  smoke::StencilArgs a;
  a.fin = 0;
  a.fout = 1;
  a.radius = kRadius;
  a.nx = kNx;
  a.ny = kNy;
  const Domain dom = Domain(Rect::box2(kPx, kPy));
  const auto id = ProjectionFunctor::identity(2);
  const auto args = ArgBuffer::of(a);
  for (int it = 0; it < iters; ++it) {
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(stencil)
                         .scalars(args)
                         .region(g.region, g.halos, id, {g.fin},
                                 Privilege::kRead)
                         .region(g.region, g.blocks, id, {g.fout},
                                 Privilege::kReadWrite));
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(increment)
                         .scalars(args)
                         .region(g.region, g.blocks, id, {g.fin},
                                 Privilege::kReadWrite));
  }
  rt.wait_all();
}

std::vector<double> read_field(RuntimeApi& rt, const Grid& g, FieldId f) {
  auto acc = rt.read_region<double>(g.region, f);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(kNx * kNy));
  for (const Point& p : Rect::box2(kNx, kNy)) out.push_back(acc.read(p));
  return out;
}

struct PlaneRun {
  std::vector<double> fin, fout;
  FaultReport report;
  DataPlaneStats stats;
  bool delta = false;
};

PlaneRun run_plane(uint32_t ranks, bool delta, bool p2p, bool fail_links,
                   std::shared_ptr<const FaultPlan> plan = nullptr) {
  DistConfig dc;
  dc.ranks = ranks;
  dc.runtime.workers = 2;
  dc.runtime.fault_plan = std::move(plan);
  dc.delta_transfers = delta;
  dc.p2p = p2p;
  dc.fail_peer_links = fail_links;
  DistributedRuntime rt(dc);
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  run_stencil(rt, g, st, inc, kIters);
  PlaneRun out;
  out.stats = rt.data_plane_stats();
  out.delta = rt.delta_transfers();
  out.fin = read_field(rt, g, g.fin);
  out.fout = read_field(rt, g, g.fout);
  out.report = rt.fault_report();
  return out;
}

std::vector<double> local_reference(
    std::shared_ptr<const FaultPlan> plan, std::vector<double>* fin_out,
    FaultReport* report_out) {
  RuntimeConfig rc;
  rc.workers = 2;
  rc.fault_plan = std::move(plan);
  Runtime rt(std::move(rc));
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  // Id parity with the dist backend's pre-registered fill/xfer pair.
  (void)rt.register_task("idxl_dist_fill", [](TaskContext&) {});
  (void)rt.register_task("idxl_xfer", [](TaskContext&) {});
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  run_stencil(rt, g, st, inc, kIters);
  if (fin_out) *fin_out = read_field(rt, g, g.fin);
  if (report_out) *report_out = rt.fault_report();
  return read_field(rt, g, g.fout);
}

TEST(DataPlaneTest, ThreeConfigurationsBitIdentical) {
  std::vector<double> ref_fin;
  const std::vector<double> ref_fout =
      local_reference(nullptr, &ref_fin, nullptr);

  const PlaneRun hub = run_plane(3, /*delta=*/false, /*p2p=*/false, false);
  const PlaneRun relay = run_plane(3, /*delta=*/true, /*p2p=*/false, false);
  const PlaneRun p2p = run_plane(3, /*delta=*/true, /*p2p=*/true, false);

  for (const PlaneRun* r : {&hub, &relay, &p2p}) {
    EXPECT_TRUE(r->report.ok());
    EXPECT_EQ(r->fout, ref_fout);
    EXPECT_EQ(r->fin, ref_fin);
  }

  // Every byte on the expected route and nowhere else.
  EXPECT_GT(hub.stats.bytes_hub, 0u);
  EXPECT_EQ(hub.stats.bytes_delta(), 0u);
  EXPECT_GT(relay.stats.bytes_relay, 0u);
  EXPECT_EQ(relay.stats.bytes_p2p, 0u);
  EXPECT_GT(p2p.stats.bytes_p2p, 0u);

  // The point of the delta plane: strictly fewer payload bytes than the
  // star-hub broadcast of every written block to every rank.
  EXPECT_LT(relay.stats.bytes_total(), hub.stats.bytes_total());
  EXPECT_LT(p2p.stats.bytes_total(), hub.stats.bytes_total());
}

TEST(DataPlaneTest, SeveredPeerLinksFallBackToRelay) {
  // fail_peer_links brings the direct links up, then severs them before
  // first use: every delta payload must fail over to the driver relay and
  // the answer must not change.
  const std::vector<double> ref_fout = local_reference(nullptr, nullptr, nullptr);
  const PlaneRun broken = run_plane(3, /*delta=*/true, /*p2p=*/true,
                                    /*fail_links=*/true);
  EXPECT_TRUE(broken.report.ok());
  EXPECT_EQ(broken.fout, ref_fout);
  EXPECT_EQ(broken.stats.bytes_p2p, 0u);
  EXPECT_GT(broken.stats.bytes_relay, 0u);
}

/// Config-independent fault identity. Both seq and launch ids are stream
/// positions, and delta transfer launches interleave the stream — so
/// normalize each report's launch ids to their rank among the launches the
/// report mentions (only user launches appear; internal transfers are kept
/// out of FaultReport), and pair that with the task's point.
struct FaultIds {
  std::vector<std::tuple<uint64_t, int64_t, int64_t>> failures, poisoned;
  friend bool operator==(const FaultIds& a, const FaultIds& b) {
    return a.failures == b.failures && a.poisoned == b.poisoned;
  }
};

FaultIds fault_ids(const FaultReport& report) {
  std::vector<uint64_t> launches;
  for (const TaskFault& f : report.failures) launches.push_back(f.launch);
  for (const TaskFault& f : report.poisoned) launches.push_back(f.launch);
  std::sort(launches.begin(), launches.end());
  launches.erase(std::unique(launches.begin(), launches.end()),
                 launches.end());
  const auto rank_of = [&](uint64_t launch) {
    return static_cast<uint64_t>(
        std::lower_bound(launches.begin(), launches.end(), launch) -
        launches.begin());
  };
  FaultIds out;
  const auto collect = [&](const std::vector<TaskFault>& faults,
                           std::vector<std::tuple<uint64_t, int64_t, int64_t>>&
                               ids) {
    for (const TaskFault& f : faults)
      ids.emplace_back(rank_of(f.launch), f.point[0],
                       f.point.dim > 1 ? f.point[1] : 0);
    std::sort(ids.begin(), ids.end());
  };
  collect(report.failures, out.failures);
  collect(report.poisoned, out.poisoned);
  return out;
}

TEST(DataPlaneTest, PoisonClosureAgreesAcrossConfigurations) {
  // Inject a remote fault and compare the merged reports: the relay and p2p
  // planes replicate the identical stream, so their reports match field for
  // field; the star-hub run numbers its (xfer-free) stream differently but
  // must fail and poison the same user tasks, and every configuration's
  // survivor data must match the local reference.
  auto plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail(/*launch=*/0, Point::p2(1, 1)));
  std::vector<double> ref_fin;
  FaultReport ref_report;
  const std::vector<double> ref_fout =
      local_reference(plan, &ref_fin, &ref_report);
  ASSERT_FALSE(ref_report.ok());

  const PlaneRun hub = run_plane(2, false, false, false, plan);
  const PlaneRun relay = run_plane(2, true, false, false, plan);
  const PlaneRun p2p = run_plane(2, true, true, false, plan);

  EXPECT_EQ(relay.report.failures, p2p.report.failures);
  EXPECT_EQ(relay.report.poisoned, p2p.report.poisoned);

  const FaultIds ref_ids = fault_ids(ref_report);
  for (const PlaneRun* r : {&hub, &relay, &p2p}) {
    EXPECT_TRUE(fault_ids(r->report) == ref_ids);
    EXPECT_EQ(r->fout, ref_fout);
    EXPECT_EQ(r->fin, ref_fin);
  }
}

TEST(VersionMapTest, RejectsRanksBeyondMaskWidth) {
  // The currency mask is 64 bits wide; DistributedRuntime auto-disables the
  // delta plane past that, so the map itself must refuse rather than wrap.
  EXPECT_THROW(VersionMap(65), RuntimeError);
  EXPECT_NO_THROW(VersionMap(64));
}

}  // namespace
}  // namespace idxl::dist
