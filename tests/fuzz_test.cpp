#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "analysis/certificate.hpp"
#include "analysis/interference.hpp"
#include "analysis/witness.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_runtime.hpp"
#include "support/rng.hpp"

namespace idxl {
namespace {

// Differential fuzzing of the execution strategies. A random sequence of
// index launches — random functors (many non-injective), privileges and
// domains — is run under several configurations. Because unsafe launches
// fall back to the sequential task loop, *every* generated program is
// valid, and all configurations must produce bit-identical region contents:
//
//   * index launches enabled (hybrid checks decide per launch)
//   * index launches disabled (the paper's No-IDX baseline)
//   * extended static analysis (more launches verified without checks)
//
// This exercises the safety analysis, the fallback branch, dependence
// tracking across random read/write/reduce patterns, and the executor.

constexpr int64_t kElements = 60;
constexpr int64_t kPieces = 6;

struct Program {
  struct Launch {
    int64_t domain_size;     // 1..6
    int functor_kind;        // selects from the pool below
    int64_t k;               // functor parameter
    int privilege_kind;      // 0 write, 1 read-write, 2 reduce
    bool sparse_domain;
  };
  std::vector<Launch> launches;
};

Program random_program(uint64_t seed) {
  Rng rng(seed);
  Program prog;
  const int n = static_cast<int>(rng.next_in(4, 14));
  for (int i = 0; i < n; ++i) {
    Program::Launch l;
    l.domain_size = rng.next_in(2, kPieces);
    l.functor_kind = static_cast<int>(rng.next_below(5));
    l.k = rng.next_in(0, 5);
    l.privilege_kind = static_cast<int>(rng.next_below(3));
    l.sparse_domain = rng.next_below(4) == 0;
    prog.launches.push_back(l);
  }
  return prog;
}

ProjectionFunctor make_functor(const Program::Launch& l) {
  switch (l.functor_kind) {
    case 0: return ProjectionFunctor::identity(1);
    case 1: return ProjectionFunctor::modular1d(l.k, kPieces);  // (i+k) mod 6
    case 2:  // (i*i + k) mod 6 — quadratic, often non-injective
      return ProjectionFunctor::symbolic(
          {make_mod(make_add(make_mul(make_coord(0), make_coord(0)), make_const(l.k)),
                    make_const(kPieces))});
    case 3:  // (2i + k) mod 6
      return ProjectionFunctor::symbolic(
          {make_mod(make_add(make_mul(make_const(2), make_coord(0)), make_const(l.k)),
                    make_const(kPieces))});
    default:  // i / 2 — non-injective gather
      return ProjectionFunctor::symbolic({make_div(make_coord(0), make_const(2))});
  }
}

std::vector<double> run_program(const Program& prog, const RuntimeConfig& cfg) {
  Runtime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(kPieces));

  {
    Accessor<double> acc(forest, region, fv, Privilege::kWrite);
    for (int64_t i = 0; i < kElements; ++i)
      acc.write(Point::p1(i), static_cast<double>(i % 7));
  }

  // Task bodies for the three privilege kinds. Each mixes the launch point
  // into the data so ordering mistakes change results.
  const TaskFnId t_write = rt.register_task("w", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(ctx.point[0] + p[0] % 3));
    });
  });
  const TaskFnId t_rw = rt.register_task("rw", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, acc.read(p) * 0.5 + static_cast<double>(ctx.point[0]));
    });
  });
  const TaskFnId t_reduce = rt.register_task("red", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.reduce(p, static_cast<double>(1 + ctx.point[0])); });
  });

  for (const Program::Launch& l : prog.launches) {
    IndexLauncher launcher;
    launcher.domain = Domain::line(l.domain_size);
    if (l.sparse_domain) {
      std::vector<Point> pts;
      for (int64_t i = 0; i < l.domain_size; i += 2) pts.push_back(Point::p1(i));
      if (pts.empty()) pts.push_back(Point::p1(0));
      launcher.domain = Domain::from_points(std::move(pts));
    }
    ProjectedArg arg;
    arg.parent = region;
    arg.partition = blocks;
    arg.functor = make_functor(l);
    arg.fields = {fv};
    switch (l.privilege_kind) {
      case 0:
        launcher.task = t_write;
        arg.privilege = Privilege::kWrite;
        break;
      case 1:
        launcher.task = t_rw;
        arg.privilege = Privilege::kReadWrite;
        break;
      default:
        launcher.task = t_reduce;
        arg.privilege = Privilege::kReduce;
        arg.redop = ReductionOp::kSum;
        break;
    }
    launcher.args = {arg};
    rt.execute_index(launcher);
  }
  rt.wait_all();

  auto acc = rt.read_region<double>(region, fv);
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, AllStrategiesAgree) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    const Program prog = random_program(GetParam() * 1000 + trial);

    RuntimeConfig idx;
    RuntimeConfig noidx;
    noidx.enable_index_launches = false;
    RuntimeConfig extended;
    extended.extended_static_analysis = true;
    RuntimeConfig few_workers;
    few_workers.workers = 1;

    const auto baseline = run_program(prog, idx);
    EXPECT_EQ(run_program(prog, noidx), baseline) << "No-IDX diverged";
    EXPECT_EQ(run_program(prog, extended), baseline) << "extended-static diverged";
    EXPECT_EQ(run_program(prog, few_workers), baseline) << "1-worker diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range<uint64_t>(1, 9));

// Two-argument variant: launches carry a read and a write argument on the
// same partition, driving the §3 cross-check rules (static image tests,
// field-disjointness, the multi-argument dynamic bitmask) plus fallback.
std::vector<double> run_two_arg_program(uint64_t seed, const RuntimeConfig& cfg) {
  Rng rng(seed);
  Runtime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fa = forest.allocate_field(fs, sizeof(double), "a");
  const FieldId fb = forest.allocate_field(fs, sizeof(double), "b");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(kPieces));

  {
    Accessor<double> a(forest, region, fa, Privilege::kWrite);
    Accessor<double> b(forest, region, fb, Privilege::kWrite);
    for (int64_t i = 0; i < kElements; ++i) {
      a.write(Point::p1(i), static_cast<double>(i));
      b.write(Point::p1(i), static_cast<double>(-i));
    }
  }

  const TaskFnId mix = rt.register_task("mix", [](TaskContext& ctx) {
    const FieldId in_field = ctx.arg<FieldId>();
    auto in = ctx.region(0).accessor<double>(in_field);
    auto out = ctx.region(1).accessor<double>(in_field ^ 1u);
    double sum = static_cast<double>(ctx.point[0]);
    ctx.region(0).domain().for_each([&](const Point& p) { sum += in.read(p) * 0.125; });
    ctx.region(1).domain().for_each(
        [&](const Point& p) { out.write(p, sum + static_cast<double>(p[0] % 5)); });
  });

  const int launches = static_cast<int>(rng.next_in(4, 10));
  for (int l = 0; l < launches; ++l) {
    IndexLauncher launcher;
    launcher.task = mix;
    launcher.domain = Domain::line(rng.next_in(2, kPieces));
    const FieldId in_field = rng.next_below(2) ? fa : fb;
    launcher.scalar_args = ArgBuffer::of(in_field);

    auto pick = [&rng]() -> ProjectionFunctor {
      switch (rng.next_below(4)) {
        case 0: return ProjectionFunctor::identity(1);
        case 1: return ProjectionFunctor::modular1d(rng.next_in(0, 5), kPieces);
        case 2: return ProjectionFunctor::affine1d(1, rng.next_in(0, 2));
        default:
          return ProjectionFunctor::symbolic(
              {make_mod(make_mul(make_const(2), make_coord(0)), make_const(kPieces))});
      }
    };
    launcher.args = {
        {region, blocks, pick(), {in_field}, Privilege::kRead, ReductionOp::kNone},
        {region, blocks, pick(), {in_field ^ 1u}, Privilege::kWrite, ReductionOp::kNone}};

    // Affine offsets can select colors beyond the partition; such launches
    // are invalid and must throw identically in every configuration. Probe
    // with the functor directly and skip those.
    bool in_bounds = true;
    launcher.domain.for_each([&](const Point& p) {
      for (const auto& arg : launcher.args)
        if (arg.functor(p)[0] >= kPieces) in_bounds = false;
    });
    if (!in_bounds) continue;
    rt.execute_index(launcher);
  }
  rt.wait_all();

  auto a = rt.read_region<double>(region, fa);
  auto b = rt.read_region<double>(region, fb);
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i) {
    out.push_back(a.read(Point::p1(i)));
    out.push_back(b.read(Point::p1(i)));
  }
  return out;
}

class TwoArgDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoArgDifferentialFuzz, AllStrategiesAgree) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    const uint64_t seed = GetParam() * 7919 + trial;
    RuntimeConfig idx;
    RuntimeConfig noidx;
    noidx.enable_index_launches = false;
    RuntimeConfig extended;
    extended.extended_static_analysis = true;

    const auto baseline = run_two_arg_program(seed, idx);
    EXPECT_EQ(run_two_arg_program(seed, noidx), baseline) << "No-IDX diverged";
    EXPECT_EQ(run_two_arg_program(seed, extended), baseline)
        << "extended-static diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoArgDifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 7));

// Cross-runtime fuzz: the same random program on the single in-process
// runtime and on the sharded (control-replicated) runtime — with shared and
// with distributed storage — must produce identical region contents. The
// functor pool is constrained to launches the sharded mode accepts
// (injective writers; reductions may alias).
struct SafeLaunch {
  int64_t domain_size;
  int functor_kind;  // 0 identity, 1 (i+k)%6 full period, 2 reduce-quadratic
  int64_t k;
  int privilege_kind;  // 0 write, 1 rw, 2 reduce
};

std::vector<SafeLaunch> random_safe_program(uint64_t seed) {
  Rng rng(seed);
  std::vector<SafeLaunch> prog;
  const int n = static_cast<int>(rng.next_in(4, 12));
  for (int i = 0; i < n; ++i) {
    SafeLaunch l;
    l.privilege_kind = static_cast<int>(rng.next_below(3));
    if (l.privilege_kind == 2) {
      l.functor_kind = 2;  // reductions tolerate non-injective functors
      l.domain_size = rng.next_in(2, kPieces);
    } else {
      l.functor_kind = static_cast<int>(rng.next_below(2));
      // The modular functor is injective only over a full period.
      l.domain_size = l.functor_kind == 1 ? kPieces : rng.next_in(2, kPieces);
    }
    l.k = rng.next_in(0, 5);
    prog.push_back(l);
  }
  return prog;
}

template <typename IssueFn>
void issue_safe_program(const std::vector<SafeLaunch>& prog, RegionId region,
                        PartitionId blocks, FieldId fv, TaskFnId t_write, TaskFnId t_rw,
                        TaskFnId t_reduce, IssueFn&& issue) {
  for (const SafeLaunch& l : prog) {
    IndexLauncher launcher;
    launcher.domain = Domain::line(l.domain_size);
    ProjectedArg arg;
    arg.parent = region;
    arg.partition = blocks;
    arg.fields = {fv};
    switch (l.functor_kind) {
      case 0: arg.functor = ProjectionFunctor::identity(1); break;
      case 1: arg.functor = ProjectionFunctor::modular1d(l.k, kPieces); break;
      default:
        arg.functor = ProjectionFunctor::symbolic({make_mod(
            make_add(make_mul(make_coord(0), make_coord(0)), make_const(l.k)),
            make_const(kPieces))});
        break;
    }
    switch (l.privilege_kind) {
      case 0:
        launcher.task = t_write;
        arg.privilege = Privilege::kWrite;
        break;
      case 1:
        launcher.task = t_rw;
        arg.privilege = Privilege::kReadWrite;
        break;
      default:
        launcher.task = t_reduce;
        arg.privilege = Privilege::kReduce;
        arg.redop = ReductionOp::kSum;
        break;
    }
    launcher.args = {arg};
    issue(launcher);
  }
}

TaskFn fuzz_write_body() {
  return [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(ctx.point[0] * 2 + p[0] % 3));
    });
  };
}
TaskFn fuzz_rw_body() {
  return [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, acc.read(p) * 0.5 + static_cast<double>(ctx.point[0]));
    });
  };
}
TaskFn fuzz_reduce_body() {
  return [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.reduce(p, static_cast<double>(1 + ctx.point[0])); });
  };
}

std::vector<double> run_safe_single(const std::vector<SafeLaunch>& prog) {
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(kPieces));
  {
    Accessor<double> acc(forest, region, fv, Privilege::kWrite);
    for (int64_t i = 0; i < kElements; ++i)
      acc.write(Point::p1(i), static_cast<double>(i % 7));
  }
  const TaskFnId w = rt.register_task("w", fuzz_write_body());
  const TaskFnId rw = rt.register_task("rw", fuzz_rw_body());
  const TaskFnId red = rt.register_task("red", fuzz_reduce_body());
  issue_safe_program(prog, region, blocks, fv, w, rw, red,
                     [&](const IndexLauncher& l) { rt.execute_index(l); });
  rt.wait_all();
  auto acc = rt.read_region<double>(region, fv);
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> run_safe_sharded(const std::vector<SafeLaunch>& prog,
                                     uint32_t shards, bool distributed) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.distributed_storage = distributed;
  ShardedRuntime rt(cfg);
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(kElements));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::line(kPieces));
  {
    Accessor<double> acc(forest, region, fv, Privilege::kWrite);
    for (int64_t i = 0; i < kElements; ++i)
      acc.write(Point::p1(i), static_cast<double>(i % 7));
  }
  const TaskFnId w = rt.register_task("w", fuzz_write_body());
  const TaskFnId rw = rt.register_task("rw", fuzz_rw_body());
  const TaskFnId red = rt.register_task("red", fuzz_reduce_body());
  rt.run([&](ShardContext& ctx) {
    issue_safe_program(prog, region, blocks, fv, w, rw, red,
                       [&](const IndexLauncher& l) { ctx.execute_index(l); });
  });
  auto acc = rt.read_region<double>(region, fv);
  std::vector<double> out;
  for (int64_t i = 0; i < kElements; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

class CrossRuntimeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossRuntimeFuzz, ShardedMatchesSingleRuntime) {
  for (uint64_t trial = 0; trial < 5; ++trial) {
    const auto prog = random_safe_program(GetParam() * 104729 + trial);
    const auto baseline = run_safe_single(prog);
    EXPECT_EQ(run_safe_sharded(prog, 1, false), baseline) << "1 shard";
    EXPECT_EQ(run_safe_sharded(prog, 3, false), baseline) << "3 shards shared";
    EXPECT_EQ(run_safe_sharded(prog, 3, true), baseline) << "3 shards distributed";
    EXPECT_EQ(run_safe_sharded(prog, 4, true), baseline) << "4 shards distributed";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossRuntimeFuzz, ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Differential oracle for the extended static classifier: random symbolic
// functors over random dense domains, checked against exhaustive evaluation.
// The abstract interpreter must never contradict the ground truth —
//
//   kYes ⇒ the exhaustive dynamic check finds no collision, and
//   kNo  ⇒ the reported witness pair actually collides (re-evaluated here).
//
// kUnknown is always permitted; the property under test is soundness.
// ---------------------------------------------------------------------------

ExprPtr random_expr(Rng& rng, int dim, int depth) {
  if (depth == 0 || rng.next_below(3) == 0) {
    return rng.next_below(2) == 0
               ? make_const(rng.next_in(-6, 6))
               : make_coord(static_cast<int>(rng.next_below(static_cast<uint64_t>(dim))));
  }
  switch (rng.next_below(7)) {
    case 0: return make_add(random_expr(rng, dim, depth - 1), random_expr(rng, dim, depth - 1));
    case 1: return make_sub(random_expr(rng, dim, depth - 1), random_expr(rng, dim, depth - 1));
    case 2: return make_mul(random_expr(rng, dim, depth - 1), random_expr(rng, dim, depth - 1));
    case 3: return make_neg(random_expr(rng, dim, depth - 1));
    case 4: return make_div(random_expr(rng, dim, depth - 1), make_const(rng.next_in(1, 6)));
    default: return make_mod(random_expr(rng, dim, depth - 1), make_const(rng.next_in(1, 8)));
  }
}

class StaticOracleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StaticOracleFuzz, ExtendedStaticNeverContradictsExhaustiveCheck) {
  Rng rng(GetParam() * 6151);
  int definite = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const int dim = static_cast<int>(rng.next_in(1, 2));
    const int out_dim = static_cast<int>(rng.next_in(1, 2));
    std::vector<ExprPtr> exprs;
    for (int c = 0; c < out_dim; ++c) exprs.push_back(random_expr(rng, dim, 3));
    const ProjectionFunctor f = ProjectionFunctor::symbolic(std::move(exprs));

    Domain domain = dim == 1
        ? Domain::line(rng.next_in(1, 24))
        : Domain(Rect::box2(rng.next_in(1, 6), rng.next_in(1, 6)));
    if (rng.next_below(4) == 0) {
      // Shifted boxes exercise negative coordinates and mixed-sign ranges.
      const int64_t shift = rng.next_in(-8, 8);
      const Rect b = domain.bounds();
      Point lo = b.lo, hi = b.hi;
      for (int d = 0; d < b.dim(); ++d) {
        lo[d] += shift;
        hi[d] += shift;
      }
      domain = Domain(Rect(lo, hi));
    }

    // Exhaustive ground truth (no color-space clipping: the static verdict
    // speaks about functor collisions over the whole domain).
    std::unordered_set<std::string> seen;
    bool truth = true;
    domain.for_each([&](const Point& p) {
      if (truth && !seen.insert(f(p).to_string()).second) truth = false;
    });

    RaceWitness w;
    const Tri verdict = static_injectivity(f, domain, /*extended=*/true, &w);
    if (verdict == Tri::kYes) {
      EXPECT_TRUE(truth) << "unsound kYes for " << f.to_string() << " over "
                         << domain.to_string();
      ++definite;
    } else if (verdict == Tri::kNo) {
      EXPECT_FALSE(truth) << "kNo for injective " << f.to_string();
      EXPECT_TRUE(witness_valid(f, domain, w))
          << "bogus witness for " << f.to_string() << " over " << domain.to_string()
          << ": " << w.to_string();
      ++definite;
    }
  }
  // The classifier must actually decide a healthy share of random functors,
  // or the soundness assertions above would be vacuous.
  EXPECT_GT(definite, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticOracleFuzz, ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Differential oracle for the inter-launch pair analysis
// (analysis/interference.hpp): random launch-argument pairs, checked against
// exhaustive cross-evaluation of both functors. Soundness properties:
//
//   kDisjoint   ⇒ a certificate is present, the independent checker accepts
//                 it against the live sides, and the fact it claims is true
//                 (for image separation: no colliding point pair exists).
//   kInterferes ⇒ the witness re-validates, and the pair genuinely races
//                 (shared fields, shared collection, at least one writer,
//                 and the functors really collide at the witness points).
//
// kUnknown is always permitted; it only costs the dynamic walk.
// ---------------------------------------------------------------------------

LaunchArgSummary random_pair_summary(Rng& rng, int out_dim) {
  LaunchArgSummary s;
  std::vector<ExprPtr> exprs;
  for (int c = 0; c < out_dim; ++c) exprs.push_back(random_expr(rng, /*dim=*/1, 2));
  s.functor = ProjectionFunctor::symbolic(std::move(exprs));
  s.domain = Domain::line(rng.next_in(1, 12));
  s.color_space = Rect::line(8);
  s.partition_uid = 7;  // both sides share the partition unless flipped below
  s.partition_disjoint = rng.next_below(4) != 0;
  s.collection_uid = static_cast<uint32_t>(1 + rng.next_below(2));
  s.field_mask = static_cast<uint64_t>(rng.next_in(1, 3));
  switch (rng.next_below(4)) {
    case 0: s.priv = Privilege::kRead; break;
    case 1: s.priv = Privilege::kWrite; break;
    case 2: s.priv = Privilege::kReadWrite; break;
    default:
      s.priv = Privilege::kReduce;
      s.redop = ReductionOp::kSum;
      break;
  }
  return s;
}

bool images_collide(const LaunchArgSummary& a, const LaunchArgSummary& b) {
  bool collide = false;
  a.domain.for_each([&](const Point& pa) {
    if (collide) return;
    const Point ca = a.functor(pa);
    b.domain.for_each([&](const Point& pb) {
      if (!collide && ca == b.functor(pb)) collide = true;
    });
  });
  return collide;
}

class PairOracleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairOracleFuzz, PairVerdictsNeverContradictExhaustiveCheck) {
  Rng rng(GetParam() * 9973);
  int disjoint = 0, interferes = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int out_dim = rng.next_below(4) == 0 ? 2 : 1;
    const int out_dim_b = rng.next_below(8) == 0 ? 3 - out_dim : out_dim;
    LaunchArgSummary a = random_pair_summary(rng, out_dim);
    LaunchArgSummary b = random_pair_summary(rng, out_dim_b);

    const InterferenceResult r = analyze_interference(a, b);
    if (r.verdict == PairVerdict::kDisjoint) {
      ++disjoint;
      ASSERT_TRUE(r.certificate.has_value()) << "uncertified kDisjoint: " << r.reason;
      std::string why;
      EXPECT_TRUE(CertificateChecker::validate(*r.certificate, a.side(), b.side(), &why))
          << "checker rejected the analyzer's own certificate: " << why;
      switch (r.certificate->kind) {
        case CertKind::kFieldsDisjoint:
          EXPECT_EQ(a.field_mask & b.field_mask, uint64_t{0}) << r.reason;
          break;
        case CertKind::kDistinctCollections:
          EXPECT_NE(a.collection_uid, b.collection_uid) << r.reason;
          break;
        case CertKind::kReadOnly:
          EXPECT_FALSE(a.writes() || b.writes()) << r.reason;
          break;
        case CertKind::kImageSeparation:
          EXPECT_FALSE(images_collide(a, b))
              << "unsound image separation for " << a.functor.to_string() << " vs "
              << b.functor.to_string() << ": " << r.reason;
          break;
      }
    } else if (r.verdict == PairVerdict::kInterferes) {
      ++interferes;
      ASSERT_TRUE(r.witness.has_value()) << "unwitnessed kInterferes: " << r.reason;
      EXPECT_TRUE(pair_witness_valid(a.functor, a.domain, b.functor, b.domain,
                                     *r.witness))
          << "bogus pair witness: " << r.witness->to_string();
      EXPECT_NE(a.field_mask & b.field_mask, uint64_t{0});
      EXPECT_EQ(a.collection_uid, b.collection_uid);
      EXPECT_TRUE(a.writes() || b.writes());
      EXPECT_TRUE(images_collide(a, b));
    }
  }
  // The analyzer must decide a healthy share of random pairs, or the
  // soundness assertions above would be vacuous.
  EXPECT_GT(disjoint, 50);
  EXPECT_GT(interferes, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairOracleFuzz, ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Certificate wire-format fuzz: every certificate the analyzer emits must
// survive an encode/decode round trip bit-exactly and still satisfy the
// checker, and *any* single-bit corruption of the encoded form must fail
// decode (the FNV-1a checksum turns transit corruption into a clean
// reject). The same holds one level up for certificate bundles: a flipped
// bit either breaks the framing outright or corrupts an entry whose
// certificate blob then refuses to decode — corruption is never silent.
// ---------------------------------------------------------------------------

class CertificateFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertificateFuzz, RoundTripsSurviveAndBitFlipsAreRejected) {
  Rng rng(GetParam() * 7561);
  int certs = 0;
  std::vector<std::pair<std::string, std::vector<std::byte>>> entries;
  std::unordered_set<std::string> keys;
  for (int trial = 0; trial < 300; ++trial) {
    const int out_dim = rng.next_below(4) == 0 ? 2 : 1;
    LaunchArgSummary a = random_pair_summary(rng, out_dim);
    LaunchArgSummary b = random_pair_summary(rng, out_dim);
    const InterferenceResult r = analyze_interference(a, b);
    if (r.verdict != PairVerdict::kDisjoint) continue;
    ++certs;

    const std::vector<std::byte> bytes = encode_certificate(*r.certificate);
    const auto decoded = decode_certificate(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value()) << "round trip failed";
    EXPECT_EQ(encode_certificate(*decoded), bytes) << "re-encode not canonical";
    EXPECT_TRUE(CertificateChecker::validate(*decoded, a.side(), b.side()))
        << "decoded certificate no longer validates";

    for (int flip = 0; flip < 16; ++flip) {
      std::vector<std::byte> bad = bytes;
      const std::size_t i = rng.next_below(bad.size());
      bad[i] ^= std::byte{static_cast<unsigned char>(1u << rng.next_below(8))};
      EXPECT_FALSE(decode_certificate(bad.data(), bad.size()).has_value())
          << "bit flip at byte " << i << " survived decode";
    }
    EXPECT_FALSE(decode_certificate(bytes.data(), bytes.size() - 1).has_value())
        << "truncation survived decode";

    const auto key = interference_key(a, b);
    if (key && keys.insert(*key).second) entries.emplace_back(*key, bytes);
  }
  ASSERT_GT(certs, 20) << "too few certificates generated to exercise the format";

  // Bundle framing round trip (entries come back sorted by key)...
  const std::vector<std::byte> bundle = encode_interference_bundle(entries);
  const auto dec = decode_interference_bundle(bundle.data(), bundle.size());
  ASSERT_TRUE(dec.has_value());
  std::sort(entries.begin(), entries.end());
  EXPECT_EQ(*dec, entries);

  // ...and corruption: a flip may land in the header/lengths (framing
  // reject), a key (entry mismatch), or a certificate blob (which must then
  // fail decode_certificate). It must never decode back to the original.
  for (int flip = 0; flip < 64; ++flip) {
    std::vector<std::byte> bad = bundle;
    const std::size_t i = rng.next_below(bad.size());
    bad[i] ^= std::byte{static_cast<unsigned char>(1u << rng.next_below(8))};
    const auto d2 = decode_interference_bundle(bad.data(), bad.size());
    if (!d2) continue;
    EXPECT_NE(*d2, entries) << "bit flip at byte " << i << " vanished";
    if (d2->size() != entries.size()) continue;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const auto& cert_bytes = (*d2)[e].second;
      if (cert_bytes != entries[e].second) {
        EXPECT_FALSE(
            decode_certificate(cert_bytes.data(), cert_bytes.size()).has_value())
            << "corrupted certificate blob in entry " << e << " still decodes";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificateFuzz, ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace idxl
