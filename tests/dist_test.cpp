// End-to-end tests of the multi-process runtime (src/dist): fork-mode
// workers are real child processes connected over socketpairs, so these
// tests exercise the full wire protocol — handshake, launch broadcast,
// TaskDone relay, fence report verification and shutdown drain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dist/dist_runtime.hpp"
#include "dist/protocol.hpp"
#include "dist/smoke_tasks.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "runtime/serialize.hpp"

namespace idxl::dist {
namespace {

struct Grid {
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fin;
  FieldId fout;
  RegionId region;
  PartitionId blocks;
  PartitionId halos;
};

constexpr int64_t kNx = 24, kNy = 24, kPx = 2, kPy = 2, kRadius = 1;
constexpr int kIters = 3;

Grid make_grid(RegionForest& forest) {
  Grid g;
  g.is = forest.create_index_space(Domain(Rect::box2(kNx, kNy)));
  g.fs = forest.create_field_space();
  g.fin = forest.allocate_field(g.fs, sizeof(double), "in");
  g.fout = forest.allocate_field(g.fs, sizeof(double), "out");
  g.region = forest.create_region(g.is, g.fs);
  g.blocks = partition_equal(forest, g.is, Rect::box2(kPx, kPy));
  g.halos = partition_halo(forest, g.is, g.blocks, kRadius);
  return g;
}

void init_grid(RegionForest& forest, const Grid& g) {
  Accessor<double> in(forest, g.region, g.fin, Privilege::kWrite);
  Accessor<double> out(forest, g.region, g.fout, Privilege::kWrite);
  for (const Point& p : Rect::box2(kNx, kNy)) {
    in.write(p, static_cast<double>(p[0] + p[1]));
    out.write(p, 0.0);
  }
}

smoke::StencilArgs stencil_args() {
  smoke::StencilArgs a;
  a.fin = 0;
  a.fout = 1;
  a.radius = kRadius;
  a.nx = kNx;
  a.ny = kNy;
  return a;
}

/// Issue `iters` stencil+increment iterations — the identical stream on
/// whichever backend `rt` is.
void run_stencil(RuntimeApi& rt, const Grid& g, TaskFnId stencil,
                 TaskFnId increment, int iters, uint32_t retries = 0) {
  const Domain dom = Domain(Rect::box2(kPx, kPy));
  const auto id = ProjectionFunctor::identity(2);
  const auto args = ArgBuffer::of(stencil_args());
  for (int it = 0; it < iters; ++it) {
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(stencil)
                         .scalars(args)
                         .retries(retries)
                         .region(g.region, g.halos, id, {g.fin},
                                 Privilege::kRead)
                         .region(g.region, g.blocks, id, {g.fout},
                                 Privilege::kReadWrite));
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(increment)
                         .scalars(args)
                         .retries(retries)
                         .region(g.region, g.blocks, id, {g.fin},
                                 Privilege::kReadWrite));
  }
  rt.wait_all();
}

std::vector<double> read_field(RuntimeApi& rt, const Grid& g, FieldId f) {
  auto acc = rt.read_region<double>(g.region, f);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(kNx * kNy));
  for (const Point& p : Rect::box2(kNx, kNy)) out.push_back(acc.read(p));
  return out;
}

/// The same workload on a plain local Runtime — the reference every
/// distributed assertion compares against.
struct LocalRun {
  std::vector<double> fin, fout;
  FaultReport report;
};

LocalRun run_local(std::shared_ptr<const FaultPlan> plan = nullptr,
                   uint32_t retries = 0) {
  RuntimeConfig rc;
  rc.workers = 2;
  rc.fault_plan = std::move(plan);
  Runtime rt(std::move(rc));
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  // Id parity with the dist backend's pre-registered fill/xfer pair.
  const TaskFnId fill = rt.register_task("idxl_dist_fill", [](TaskContext&) {});
  (void)fill;
  const TaskFnId xfer = rt.register_task("idxl_xfer", [](TaskContext&) {});
  (void)xfer;
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  run_stencil(rt, g, st, inc, kIters, retries);
  LocalRun out;
  out.fin = read_field(rt, g, g.fin);
  out.fout = read_field(rt, g, g.fout);
  out.report = rt.fault_report();
  return out;
}

struct DistRun {
  std::vector<double> fin, fout;
  FaultReport report;
  uint64_t launch_bytes = 0;  ///< wire bytes of kLaunch frames to rank 1
  uint64_t launch_frames = 0;
};

DistRun run_dist(uint32_t ranks, std::shared_ptr<const FaultPlan> plan = nullptr,
                 uint32_t retries = 0, int iters = kIters, bool delta = true) {
  DistConfig dc;
  dc.ranks = ranks;
  dc.runtime.workers = 2;
  dc.runtime.fault_plan = std::move(plan);
  dc.delta_transfers = delta;
  DistributedRuntime rt(dc);
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  run_stencil(rt, g, st, inc, iters, retries);
  DistRun out;
  out.fin = read_field(rt, g, g.fin);
  out.fout = read_field(rt, g, g.fout);
  out.report = rt.fault_report();
  if (ranks > 1) {
    const auto snap = rt.metrics().snapshot();
    const obs::Labels labels{{"peer", "rank-1"}, {"type", "launch"}};
    out.launch_bytes = snap.value("idxl_net_bytes_sent_total", labels);
    out.launch_frames = snap.value("idxl_net_frames_sent_total", labels);
  }
  return out;
}

TEST(DistTest, StencilBitIdenticalAcrossProcesses) {
  const LocalRun local = run_local();
  ASSERT_TRUE(local.report.ok());
  for (const uint32_t ranks : {2u, 3u}) {
    const DistRun dist = run_dist(ranks);
    EXPECT_TRUE(dist.report.ok());
    // Bit-identical, not approximately equal: both backends execute the
    // same launch stream over the same deterministic task bodies.
    EXPECT_EQ(local.fout, dist.fout) << "ranks=" << ranks;
    EXPECT_EQ(local.fin, dist.fin) << "ranks=" << ranks;
  }
}

TEST(DistTest, DegenerateSingleRank) {
  const DistRun solo = run_dist(1);
  const LocalRun local = run_local();
  EXPECT_TRUE(solo.report.ok());
  EXPECT_EQ(local.fout, solo.fout);
}

TEST(DistTest, RemoteFaultMatchesLocalPoisonClosure) {
  // Point (1,1) of launch 0 is owned by the last rank (owner_of on the 2x2
  // domain), so the injection fires in a *remote* process; the merged report
  // must match the one a purely local run produces, fault for fault.
  // Delta transfers interleave xfer nodes into the seq stream (and a
  // poisoned producer legitimately poisons them too), so the seq-by-seq
  // closure comparison runs against the star-hub data plane; the delta
  // planes' fault semantics are covered by dist_data_plane_test.
  auto plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail(/*launch=*/0, Point::p2(1, 1)));
  const LocalRun local = run_local(plan);
  const DistRun dist = run_dist(2, plan, 0, kIters, /*delta=*/false);
  ASSERT_FALSE(local.report.ok());
  EXPECT_EQ(local.report.failures, dist.report.failures);
  EXPECT_EQ(local.report.poisoned, dist.report.poisoned);
  // Survivor data is also identical: poisoning skipped the same tasks.
  EXPECT_EQ(local.fout, dist.fout);
}

TEST(DistTest, RemoteRetrySucceeds) {
  // One injected failure on attempt 0 of a remote point; with a retry
  // budget the second attempt succeeds and the run is clean.
  auto plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail(/*launch=*/0, Point::p2(1, 1), /*attempt=*/0));
  const DistRun dist = run_dist(2, plan, /*retries=*/2);
  EXPECT_TRUE(dist.report.ok())
      << "failures=" << dist.report.failures.size();
  const LocalRun clean = run_local();
  EXPECT_EQ(clean.fout, dist.fout);
}

TEST(DistTest, LaunchWireBytesIndependentOfDomainVolume) {
  // The paper's core claim carried onto the wire: a dense index launch
  // ships as an O(1) descriptor, so bytes-per-launch cannot grow with |D|.
  const auto id = ProjectionFunctor::identity(1);
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(1024));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId r = forest.create_region(is, fs);
  const PartitionId small = partition_equal(forest, is, Rect::line(4));
  const PartitionId large = partition_equal(forest, is, Rect::line(256));

  const auto bytes_for = [&](int64_t pieces, PartitionId part) {
    return serialize_launcher(IndexLauncher::over(Domain::line(pieces))
                                  .with_task(0)
                                  .region(r, part, id, {f}, Privilege::kWrite))
        .size();
  };
  EXPECT_EQ(bytes_for(4, small), bytes_for(256, large));
}

TEST(DistTest, LaunchFramesAndPerLaunchBytesScaleWithLaunchCountOnly) {
  // Same assertion measured on the actual wire: double the iteration count
  // and kLaunch traffic doubles — bytes per launch frame stays constant,
  // independent of how many point tasks each launch expands to (16 here).
  const DistRun three = run_dist(2, nullptr, 0, /*iters=*/3);
  const DistRun six = run_dist(2, nullptr, 0, /*iters=*/6);
  ASSERT_GT(three.launch_frames, 0u);
  EXPECT_EQ(six.launch_frames, 2 * three.launch_frames);
  EXPECT_EQ(six.launch_bytes, 2 * three.launch_bytes);
  EXPECT_EQ(three.launch_bytes % three.launch_frames, 0u);
}

/// Two single-field writer launches per iteration — group-eligible (disjoint
/// blocks, identity functor) with a certified kDisjoint pair (disjoint field
/// masks), so the driver analyzes, skips the cross-launch walk, and ships
/// the certificate bundle on every kLaunch frame.
struct FieldWriterRun {
  std::vector<double> fin, fout;
  RuntimeStats stats;
  uint64_t launch_bytes = 0;
};

FieldWriterRun run_field_writers(uint32_t ranks, bool analysis, int iters) {
  DistConfig dc;
  dc.ranks = ranks;
  dc.runtime.workers = 2;
  dc.runtime.enable_interference_analysis = analysis;
  DistributedRuntime rt(dc);
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  const TaskFnId win = rt.register_task("write_in", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0] - p[1])); });
  });
  const TaskFnId wout = rt.register_task("write_out", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(1);
    ctx.region(0).domain().for_each(
        [&](const Point& p) { acc.write(p, static_cast<double>(p[0] * p[1])); });
  });
  const Domain dom = Domain(Rect::box2(kPx, kPy));
  const auto id = ProjectionFunctor::identity(2);
  for (int it = 0; it < iters; ++it) {
    rt.execute_index(IndexLauncher::over(dom).with_task(win).region(
        g.region, g.blocks, id, {g.fin}, Privilege::kWrite));
    rt.execute_index(IndexLauncher::over(dom).with_task(wout).region(
        g.region, g.blocks, id, {g.fout}, Privilege::kWrite));
  }
  rt.wait_all();
  FieldWriterRun out;
  out.fin = read_field(rt, g, g.fin);
  out.fout = read_field(rt, g, g.fout);
  out.stats = rt.stats();
  if (ranks > 1) {
    const auto snap = rt.metrics().snapshot();
    out.launch_bytes = snap.value("idxl_net_bytes_sent_total",
                                  obs::Labels{{"peer", "rank-1"}, {"type", "launch"}});
  }
  return out;
}

TEST(DistTest, CertificateBundleFlowsToWorkers) {
  // Driver side of the certificate pipeline, observed end to end: rank 0
  // analyzes the disjoint-field pair once, skips the cross-launch walks,
  // and the kLaunch frames to rank 1 carry the (non-empty) bundle — they
  // are strictly larger than the same program's frames with the analysis
  // off. Worker-side validation of a shipped bundle is pinned down
  // in-process by interference_runtime_test (same descriptor path).
  const FieldWriterRun on = run_field_writers(2, /*analysis=*/true, /*iters=*/3);
  const FieldWriterRun off = run_field_writers(2, /*analysis=*/false, /*iters=*/3);
  EXPECT_GE(on.stats.interference_pair_tests, 1u);
  EXPECT_GE(on.stats.interference_skips, 1u);
  EXPECT_EQ(off.stats.interference_pair_tests, 0u);
  EXPECT_EQ(off.stats.interference_skips, 0u);
  ASSERT_GT(on.launch_bytes, 0u);
  EXPECT_GT(on.launch_bytes, off.launch_bytes);
  // The skip changes scheduling only, never data: all three runs agree.
  const FieldWriterRun solo = run_field_writers(1, /*analysis=*/true, /*iters=*/3);
  EXPECT_EQ(on.fin, off.fin);
  EXPECT_EQ(on.fout, off.fout);
  EXPECT_EQ(on.fin, solo.fin);
  EXPECT_EQ(on.fout, solo.fout);
}

TEST(DistTest, PoisonedCertificateOnWireIsRejected) {
  // A worker trusts nothing: corrupt one certificate byte inside an
  // otherwise well-formed bundle, round-trip it through the actual kLaunch
  // wire encoding (serialize_launcher → deserialize_launcher, the exact
  // path WorkerSession::on_frame runs), and the import-only rank must
  // reject the forgery at first lookup and fall back to the full walk.
  RuntimeConfig driver_rc;
  driver_rc.workers = 2;
  Runtime driver(std::move(driver_rc));
  const Grid dg = make_grid(driver.forest());
  const TaskFnId dnop = driver.register_task("nop", [](TaskContext&) {});
  const Domain dom = Domain(Rect::box2(kPx, kPy));
  const auto id = ProjectionFunctor::identity(2);
  driver.execute_index(IndexLauncher::over(dom).with_task(dnop).region(
      dg.region, dg.blocks, id, {dg.fin}, Privilege::kWrite));
  driver.execute_index(IndexLauncher::over(dom).with_task(dnop).region(
      dg.region, dg.blocks, id, {dg.fout}, Privilege::kWrite));
  driver.wait_all();
  std::vector<std::byte> bundle = driver.export_interference_bundle();
  ASSERT_GT(driver.interference_cache().size(), 0u);
  bundle.back() ^= std::byte{0x01};  // flip one bit of the last cert blob

  RuntimeConfig worker_rc;
  worker_rc.workers = 2;
  worker_rc.interference_import_only = true;
  Runtime worker(std::move(worker_rc));
  const Grid wg = make_grid(worker.forest());
  const TaskFnId wnop = worker.register_task("nop", [](TaskContext&) {});
  auto launch = [&](FieldId f, std::vector<std::byte> payload) {
    IndexLauncher l = IndexLauncher::over(dom).with_task(wnop).region(
        wg.region, wg.blocks, id, {f}, Privilege::kWrite);
    l.analysis_bundle = std::move(payload);
    worker.execute_index(deserialize_launcher(serialize_launcher(l)));
  };
  launch(wg.fin, bundle);
  launch(wg.fout, {});
  worker.wait_all();
  const auto c = worker.interference_cache().counters();
  EXPECT_GE(c.imported, 1u);
  EXPECT_GE(c.rejected, 1u);
  EXPECT_EQ(c.validated, 0u);
  EXPECT_EQ(worker.stats().interference_skips, 0u);
}

TEST(DistTest, RegisterAfterStartThrows) {
  DistConfig dc;
  dc.ranks = 1;
  DistributedRuntime rt(dc);
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  run_stencil(rt, g, st, inc, 1);
  EXPECT_THROW(rt.register_task("late", smoke::stencil_body), RuntimeError);
}

TEST(DistTest, OwnerOfPartitionsEveryDomain) {
  // Every point maps to exactly one rank and the blocks are contiguous and
  // balanced; rank 0 owns degenerate domains outright.
  const Domain dom(Rect::box2(4, 4));
  for (const uint32_t nranks : {1u, 2u, 3u, 5u, 16u, 17u}) {
    std::vector<int64_t> counts(nranks, 0);
    uint32_t last = 0;
    for (const Point& p : Rect::box2(4, 4)) {
      const uint32_t o = owner_of(dom, p, nranks);
      ASSERT_LT(o, nranks);
      ASSERT_GE(o, last) << "ownership must be monotone in row-major order";
      last = o;
      ++counts[o];
    }
    const int64_t lo = dom.volume() / nranks;
    for (const int64_t c : counts) {
      EXPECT_GE(c, std::max<int64_t>(lo, 0));
      EXPECT_LE(c, lo + 1);
    }
  }
  EXPECT_EQ(owner_of(Domain::line(1), Point::p1(0), 8), 0u);
}

}  // namespace
}  // namespace idxl::dist
