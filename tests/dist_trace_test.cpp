// Distributed-tracing integration tests: run the stencil workload across
// real worker processes in each wire configuration (star-hub, relay-delta,
// p2p-delta) with profiling on, then check the driver's merged cluster view
// — span-parent integrity (no orphan remote spans), heartbeat clock
// alignment, rank-labeled metrics aggregation, and the merged Chrome trace
// written at shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist_runtime.hpp"
#include "dist/smoke_tasks.hpp"
#include "region/partition_ops.hpp"
#include "runtime/runtime.hpp"
#include "test_json.hpp"

namespace idxl::dist {
namespace {

using testjson::JsonParser;
using testjson::JValue;

struct Grid {
  FieldId fin;
  FieldId fout;
  RegionId region;
  PartitionId blocks;
  PartitionId halos;
};

constexpr int64_t kNx = 16, kNy = 16, kPx = 2, kPy = 2, kRadius = 1;

Grid make_grid(RegionForest& forest) {
  Grid g;
  const IndexSpaceId is =
      forest.create_index_space(Domain(Rect::box2(kNx, kNy)));
  const FieldSpaceId fs = forest.create_field_space();
  g.fin = forest.allocate_field(fs, sizeof(double), "in");
  g.fout = forest.allocate_field(fs, sizeof(double), "out");
  g.region = forest.create_region(is, fs);
  g.blocks = partition_equal(forest, is, Rect::box2(kPx, kPy));
  g.halos = partition_halo(forest, is, g.blocks, kRadius);
  return g;
}

void init_grid(RegionForest& forest, const Grid& g) {
  Accessor<double> in(forest, g.region, g.fin, Privilege::kWrite);
  Accessor<double> out(forest, g.region, g.fout, Privilege::kWrite);
  for (const Point& p : Rect::box2(kNx, kNy)) {
    in.write(p, static_cast<double>(p[0] + p[1]));
    out.write(p, 0.0);
  }
}

void run_stencil(DistributedRuntime& rt, const Grid& g, int iters) {
  const TaskFnId st = rt.register_task("smoke_stencil", smoke::stencil_body);
  const TaskFnId inc =
      rt.register_task("smoke_increment", smoke::increment_body);
  smoke::StencilArgs a;
  a.fin = 0;
  a.fout = 1;
  a.radius = kRadius;
  a.nx = kNx;
  a.ny = kNy;
  const Domain dom = Domain(Rect::box2(kPx, kPy));
  const auto id = ProjectionFunctor::identity(2);
  const auto args = ArgBuffer::of(a);
  for (int it = 0; it < iters; ++it) {
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(st)
                         .scalars(args)
                         .region(g.region, g.halos, id, {g.fin},
                                 Privilege::kRead)
                         .region(g.region, g.blocks, id, {g.fout},
                                 Privilege::kReadWrite));
    rt.execute_index(IndexLauncher::over(dom)
                         .with_task(inc)
                         .scalars(args)
                         .region(g.region, g.blocks, id, {g.fin},
                                 Privilege::kReadWrite));
  }
  rt.wait_all();
}

DistConfig traced_config(uint32_t ranks, bool delta, bool p2p) {
  DistConfig dc;
  dc.ranks = ranks;
  dc.runtime.workers = 2;
  dc.runtime.enable_profiling = true;
  dc.delta_transfers = delta;
  dc.p2p = p2p;
  dc.heartbeat_period_ms = 25;  // fast clock probes for the offset tests
  return dc;
}

// The ISSUE acceptance test: across all three wire configurations every
// remote-parented span (xfer-apply, done-apply) must resolve to a recorded
// producing task span on its origin rank — no orphans, at 4 ranks.
TEST(DistTraceTest, SpanParentIntegrityAcrossConfigs) {
  struct Config {
    const char* name;
    bool delta, p2p;
  };
  const Config configs[] = {{"star-hub", false, false},
                            {"relay-delta", true, false},
                            {"p2p-delta", true, true}};
  for (const Config& c : configs) {
    SCOPED_TRACE(c.name);
    DistributedRuntime rt(traced_config(4, c.delta, c.p2p));
    const Grid g = make_grid(rt.forest());
    init_grid(rt.forest(), g);
    run_stencil(rt, g, /*iters=*/3);

    const obs::ClusterTrace trace = rt.collect_cluster_trace();
    ASSERT_EQ(trace.ranks.size(), 4u);
    for (const obs::OrphanSpan& o : trace.orphans())
      ADD_FAILURE() << c.name << ": orphan span on rank " << o.rank
                    << " parent seq " << o.parent << " origin rank "
                    << o.origin;
    // Remote work happened, so the merge must have resolved transfer edges.
    EXPECT_GT(trace.transfer_edges(), 0u);
    // Every rank shipped its spans and every rank executed something.
    for (const obs::RankTrace& r : trace.ranks) {
      EXPECT_FALSE(r.spans.empty()) << "rank " << r.rank;
      EXPECT_FALSE(r.names.empty()) << "rank " << r.rank;
    }
  }
}

TEST(DistTraceTest, ClockOffsetsWithinRttBound) {
  DistributedRuntime rt(traced_config(4, /*delta=*/true, /*p2p=*/true));
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  run_stencil(rt, g, /*iters=*/1);
  // Let a few heartbeat ping-pong probes complete.
  for (int spin = 0; spin < 100 && !rt.clock_estimate(3).valid; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  for (uint32_t rank = 1; rank < 4; ++rank) {
    const net::ClockEstimate est = rt.clock_estimate(rank);
    ASSERT_TRUE(est.valid) << "rank " << rank;
    EXPECT_GT(est.rtt_ns, 0u);
    // Forked processes share the hardware clock: the true offset is 0, and
    // the midpoint estimate is correct to ±rtt/2 per sample (1ms cushion
    // for EWMA mixing of samples with different RTTs).
    const uint64_t bound = est.rtt_ns + 1'000'000;
    EXPECT_LE(static_cast<uint64_t>(std::abs(est.offset_ns)), bound)
        << "rank " << rank << " offset " << est.offset_ns << " rtt "
        << est.rtt_ns;
  }
  // The driver's own registry exports the estimates as gauges.
  const obs::MetricsSnapshot snap = rt.local().metrics().snapshot();
  EXPECT_NE(snap.series("idxl_net_clock_offset_ns", {{"rank", "1"}}), nullptr);

  // The merged trace carries the alignment per rank.
  const obs::ClusterTrace trace = rt.collect_cluster_trace();
  ASSERT_EQ(trace.ranks.size(), 4u);
  for (const obs::RankTrace& r : trace.ranks) {
    if (r.rank != 0) {
      EXPECT_GT(r.rtt_ns, 0u) << "rank " << r.rank;
    }
  }
}

TEST(DistTraceTest, ClusterMetricsCarryEveryRank) {
  DistributedRuntime rt(traced_config(4, /*delta=*/true, /*p2p=*/true));
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  run_stencil(rt, g, /*iters=*/2);

  const obs::MetricsSnapshot cluster = rt.cluster_metrics();
  // One snapshot holds the same family from all four ranks plus a roll-up.
  uint64_t sum = 0;
  for (uint32_t rank = 0; rank < 4; ++rank) {
    const obs::SeriesSnapshot* s = cluster.series(
        "idxl_tasks_completed_total", {{"rank", std::to_string(rank)}});
    ASSERT_NE(s, nullptr) << "rank " << rank;
    EXPECT_GT(s->counter, 0u) << "rank " << rank;
    sum += s->counter;
  }
  EXPECT_EQ(cluster.value("idxl_tasks_completed_total", {{"rank", "all"}}),
            sum);

  const std::string prom = rt.cluster_prometheus();
  for (const char* needle :
       {"rank=\"0\"", "rank=\"1\"", "rank=\"2\"", "rank=\"3\"",
        "rank=\"all\""})
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;

  JValue doc;
  ASSERT_TRUE(JsonParser(rt.cluster_metrics_json()).parse(doc));
  ASSERT_NE(doc.get("metrics"), nullptr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(DistTraceTest, ShutdownWritesMergedChromeTrace) {
  const std::string path = testing::TempDir() + "idxl_merged_trace.json";
  std::remove(path.c_str());
  {
    DistConfig dc = traced_config(4, /*delta=*/true, /*p2p=*/true);
    dc.runtime.enable_profiling = false;  // trace_path must force it on
    dc.trace_path = path;
    DistributedRuntime rt(dc);
    const Grid g = make_grid(rt.forest());
    init_grid(rt.forest(), g);
    run_stencil(rt, g, /*iters=*/2);
  }  // destructor fences, pulls telemetry, writes the merged trace

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  JValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc));
  // Process lanes for all four ranks.
  for (const char* lane : {"\"name\":\"rank 0\"", "\"name\":\"rank 1\"",
                           "\"name\":\"rank 2\"", "\"name\":\"rank 3\""})
    EXPECT_NE(json.find(lane), std::string::npos) << lane;
  // Flow events connect transfer producers to their apply spans.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Clock-alignment notes are embedded per rank.
  EXPECT_NE(json.find("\"name\":\"clock-align\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(DistTraceTest, TraceEnvVarOverridesConfig) {
  const std::string path = testing::TempDir() + "idxl_env_trace.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("IDXL_TRACE", path.c_str(), 1), 0);
  {
    DistConfig dc = traced_config(2, /*delta=*/true, /*p2p=*/true);
    dc.runtime.enable_profiling = false;  // IDXL_TRACE must force it on
    DistributedRuntime rt(dc);
    const Grid g = make_grid(rt.forest());
    init_grid(rt.forest(), g);
    run_stencil(rt, g, /*iters=*/1);
  }
  unsetenv("IDXL_TRACE");

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  JValue doc;
  EXPECT_TRUE(JsonParser(json).parse(doc));
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(DistTraceTest, DegenerateSingleRankTraceStillMerges) {
  DistConfig dc = traced_config(1, /*delta=*/true, /*p2p=*/false);
  DistributedRuntime rt(dc);
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  run_stencil(rt, g, /*iters=*/1);
  const obs::ClusterTrace trace = rt.collect_cluster_trace();
  ASSERT_EQ(trace.ranks.size(), 1u);
  EXPECT_TRUE(trace.orphans().empty());
  EXPECT_FALSE(trace.ranks[0].spans.empty());
  JValue doc;
  EXPECT_TRUE(JsonParser(trace.chrome_trace_json()).parse(doc));
}

TEST(DistTraceTest, DistributedStallDumpListsEveryRank) {
  // Not a stall — just the on-demand merged dump: every rank section must
  // be present (workers only push on a real watchdog stall, so only the
  // driver's section is guaranteed content; the dump must not block).
  DistributedRuntime rt(traced_config(2, /*delta=*/true, /*p2p=*/true));
  const Grid g = make_grid(rt.forest());
  init_grid(rt.forest(), g);
  run_stencil(rt, g, /*iters=*/1);
  const std::string dump = rt.distributed_stall_dump();
  EXPECT_NE(dump.find("idxl cluster stall dump"), std::string::npos);
  EXPECT_NE(dump.find("-- rank 0 --"), std::string::npos);
}

}  // namespace
}  // namespace idxl::dist
