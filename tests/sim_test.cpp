#include <gtest/gtest.h>

#include "apps/sim_specs.hpp"
#include "sim/experiment.hpp"
#include "sim/pipeline_sim.hpp"

namespace idxl::sim {
namespace {

using apps::circuit_strong_spec;
using apps::circuit_weak_overdecomposed_spec;
using apps::circuit_weak_spec;
using apps::soleil_full_spec;
using apps::stencil_weak_spec;

SimConfig config(uint32_t nodes, bool dcr, bool idx, bool tracing = true,
                 bool checks = true) {
  SimConfig c;
  c.nodes = nodes;
  c.dcr = dcr;
  c.idx = idx;
  c.tracing = tracing;
  c.dynamic_checks = checks;
  return c;
}

TEST(LocalTaskCountTest, BalancedBlocks) {
  EXPECT_EQ(local_task_count(10, 4, 0), 3);
  EXPECT_EQ(local_task_count(10, 4, 1), 3);
  EXPECT_EQ(local_task_count(10, 4, 2), 2);
  EXPECT_EQ(local_task_count(10, 4, 3), 2);
  int64_t total = 0;
  for (uint32_t n = 0; n < 7; ++n) total += local_task_count(23, 7, n);
  EXPECT_EQ(total, 23);
  // Fewer tasks than nodes: some nodes idle.
  EXPECT_EQ(local_task_count(3, 8, 0), 1);
  EXPECT_EQ(local_task_count(3, 8, 7), 0);
}

TEST(PipelineSimTest, SingleNodeSanity) {
  const AppSpec app = circuit_weak_spec(1);
  const SimResult r = simulate(app, config(1, true, true));
  EXPECT_GT(r.seconds_per_iteration, 0.0);
  // 2e5 wires at ~220ns/wire across 3 phases: tens of ms per iteration.
  EXPECT_GT(r.seconds_per_iteration, 0.02);
  EXPECT_LT(r.seconds_per_iteration, 0.2);
  EXPECT_EQ(r.messages, 0u);  // DCR distributes without communication
}

TEST(PipelineSimTest, IndexLaunchIsBulkIssuance) {
  // Runtime ops with IDX are per-launch; without, per-task. 64 nodes,
  // 3 launches/iter: the op counts must differ by roughly |D|.
  const AppSpec app = circuit_weak_spec(64);
  const SimResult idx = simulate(app, config(64, true, true));
  const SimResult noidx = simulate(app, config(64, true, false));
  EXPECT_LT(idx.runtime_ops, noidx.runtime_ops / 4);
}

TEST(PipelineSimTest, BroadcastTreeMessageCount) {
  // No-DCR + IDX with tracing off distributes each launch over a tree:
  // N-1 slice messages per launch.
  const uint32_t nodes = 32;
  AppSpec app = circuit_weak_spec(nodes);
  app.warmup = 0;
  app.iterations = 1;
  const SimResult r = simulate(app, config(nodes, false, true, /*tracing=*/false));
  EXPECT_EQ(r.messages, static_cast<uint64_t>(nodes - 1) * app.iteration.size());
}

TEST(PipelineSimTest, PerTaskSendsWithoutIdx) {
  const uint32_t nodes = 32;
  AppSpec app = circuit_weak_spec(nodes);
  app.warmup = 0;
  app.iterations = 1;
  const SimResult r = simulate(app, config(nodes, false, false));
  // All tasks not owned by node 0 travel individually.
  const uint64_t remote_per_launch = nodes - 1;
  EXPECT_EQ(r.messages, remote_per_launch * app.iteration.size());
}

TEST(PipelineSimTest, DcrIdxBeatsDcrNoIdxAtScale) {
  // The Fig. 5 divergence: replicated per-task issuance makes DCR-No-IDX
  // per-node cost grow with total task count.
  const uint32_t nodes = 1024;
  const AppSpec app = circuit_weak_spec(nodes);
  const SimResult idx = simulate(app, config(nodes, true, true));
  const SimResult noidx = simulate(app, config(nodes, true, false));
  EXPECT_LT(idx.seconds_per_iteration, noidx.seconds_per_iteration);
  // At small scale the difference is minor.
  const SimResult idx_small = simulate(circuit_weak_spec(2), config(2, true, true));
  const SimResult noidx_small = simulate(circuit_weak_spec(2), config(2, true, false));
  EXPECT_NEAR(idx_small.seconds_per_iteration / noidx_small.seconds_per_iteration, 1.0,
              0.1);
}

TEST(PipelineSimTest, BestConfigIsDcrIdxOnStrongScaling) {
  const uint32_t nodes = 512;
  const AppSpec app = circuit_strong_spec(nodes);
  double best = 1e300;
  int best_idx = -1;
  const auto configs = four_configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SimConfig c = configs[i];
    c.nodes = nodes;
    const double t = simulate(app, c).seconds_per_iteration;
    if (t < best) {
      best = t;
      best_idx = static_cast<int>(i);
    }
  }
  EXPECT_EQ(best_idx, 0);  // DCR, IDX
}

TEST(PipelineSimTest, TracingInterferenceWithoutDcr) {
  // Fig. 5 effect: with tracing, No-DCR+IDX is slightly *worse* than
  // No-DCR+No-IDX (forced expansion + re-issuance).
  const uint32_t nodes = 64;
  const AppSpec app = circuit_weak_spec(nodes);
  const SimResult idx = simulate(app, config(nodes, false, true, /*tracing=*/true));
  const SimResult noidx = simulate(app, config(nodes, false, false, /*tracing=*/true));
  EXPECT_GE(idx.seconds_per_iteration, noidx.seconds_per_iteration * 0.999);

  // Fig. 6 effect: tracing off + overdecomposition, IDX wins without DCR.
  const AppSpec over = circuit_weak_overdecomposed_spec(nodes);
  const SimResult idx_nt = simulate(over, config(nodes, false, true, /*tracing=*/false));
  const SimResult noidx_nt =
      simulate(over, config(nodes, false, false, /*tracing=*/false));
  EXPECT_LT(idx_nt.seconds_per_iteration, noidx_nt.seconds_per_iteration);
}

TEST(PipelineSimTest, BulkTracingRemovesTheInterference) {
  // The paper's future-work fix: with bulk-launch tracing, No-DCR+IDX beats
  // No-DCR+No-IDX even with tracing enabled.
  const uint32_t nodes = 256;
  const AppSpec over = circuit_weak_overdecomposed_spec(nodes);
  SimConfig bulk = config(nodes, false, true, /*tracing=*/true);
  bulk.bulk_tracing = true;
  const SimResult idx_bulk = simulate(over, bulk);
  const SimResult idx_pertask = simulate(over, config(nodes, false, true, true));
  const SimResult noidx = simulate(over, config(nodes, false, false, true));
  EXPECT_LT(idx_bulk.seconds_per_iteration, noidx.seconds_per_iteration);
  EXPECT_LT(idx_bulk.seconds_per_iteration, idx_pertask.seconds_per_iteration);
  // Distribution goes back to the O(log N) tree.
  EXPECT_LT(idx_bulk.messages, noidx.messages / 4);
}

TEST(PipelineSimTest, Fig6IdxWinsWithDcrToo) {
  const uint32_t nodes = 256;
  const AppSpec over = circuit_weak_overdecomposed_spec(nodes);
  const SimResult idx = simulate(over, config(nodes, true, true, /*tracing=*/false));
  const SimResult noidx = simulate(over, config(nodes, true, false, /*tracing=*/false));
  EXPECT_LT(idx.seconds_per_iteration, noidx.seconds_per_iteration);
}

TEST(PipelineSimTest, WeakScalingEfficiencyDecaysGracefullyForDcrIdx) {
  const SimResult one = simulate(circuit_weak_spec(1), config(1, true, true));
  const SimResult big = simulate(circuit_weak_spec(1024), config(1024, true, true));
  const double efficiency = one.seconds_per_iteration / big.seconds_per_iteration;
  EXPECT_GT(efficiency, 0.6);   // stays useful at 1024 nodes
  EXPECT_LT(efficiency, 1.01);  // but can't exceed ideal
}

TEST(PipelineSimTest, StencilDivergenceLaterThanCircuit) {
  // Stencil iterations are longer, so the DCR±IDX divergence shows up at
  // higher node counts (Fig. 8 vs Fig. 5).
  auto gap = [&](const AppSpec& app, uint32_t nodes) {
    const double a = simulate(app, config(nodes, true, true)).seconds_per_iteration;
    const double b = simulate(app, config(nodes, true, false)).seconds_per_iteration;
    return b / a;
  };
  const double circuit_gap = gap(circuit_weak_spec(512), 512);
  const double stencil_gap = gap(stencil_weak_spec(512), 512);
  EXPECT_GT(circuit_gap, stencil_gap);
}

TEST(PipelineSimTest, DynamicCheckCostNegligible) {
  // Fig. 10: the Soleil-X DOM dynamic checks cost well under a percent.
  const uint32_t nodes = 32;
  const AppSpec app = soleil_full_spec(nodes);
  const SimResult with = simulate(app, config(nodes, true, true, true, /*checks=*/true));
  const SimResult without =
      simulate(app, config(nodes, true, true, true, /*checks=*/false));
  EXPECT_GT(with.check_seconds, 0.0);
  EXPECT_EQ(without.check_seconds, 0.0);
  const double rel = (with.seconds_per_iteration - without.seconds_per_iteration) /
                     without.seconds_per_iteration;
  EXPECT_LT(std::abs(rel), 0.02);
}

TEST(PipelineSimTest, SweepChainsOverlap) {
  // The 8 DOM directions run in independent chains; iteration time must be
  // far less than the serial sum of all chains' latencies.
  const uint32_t nodes = 8;
  const AppSpec app = soleil_full_spec(nodes);
  const SimResult r = simulate(app, config(nodes, true, true));
  double serial_kernels = 0.0;
  for (const LaunchSpec& l : app.iteration)
    serial_kernels +=
        static_cast<double>(l.tasks) * l.kernel_s / static_cast<double>(nodes);
  // One node's GPU work is `serial_kernels`; the chain structure should not
  // inflate the iteration beyond a small multiple of that (the wavefronts
  // of a chain land on specific nodes, so perfect overlap is impossible).
  EXPECT_LT(r.seconds_per_iteration, 4.0 * serial_kernels + 0.05);
}

TEST(PipelineSimTest, DcrIdxDominatesEverywhereProperty) {
  // Invariant across apps and node counts: the DCR+IDX configuration is
  // never meaningfully slower than any other configuration (ties within
  // jitter allowed). This is the paper's bottom-line claim.
  const std::vector<std::function<AppSpec(uint32_t)>> apps = {
      [](uint32_t n) { return circuit_weak_spec(n); },
      [](uint32_t n) { return circuit_strong_spec(n); },
      [](uint32_t n) { return stencil_weak_spec(n); },
  };
  for (const auto& app_builder : apps) {
    for (uint32_t nodes : {1u, 16u, 128u, 1024u}) {
      const AppSpec app = app_builder(nodes);
      const double best =
          simulate(app, config(nodes, true, true)).seconds_per_iteration;
      for (const SimConfig& base : four_configs()) {
        SimConfig c = base;
        c.nodes = nodes;
        EXPECT_LE(best, simulate(app, c).seconds_per_iteration * 1.02)
            << app.name << " @ " << nodes << " vs " << c.label();
      }
    }
  }
}

TEST(PipelineSimTest, Fig4HeadlineSpeedupPinned) {
  // The paper's headline strong-scaling number: DCR+IDX ~1.6x over
  // DCR+No-IDX on Circuit at 512 nodes. Pin our model within a band so
  // cost-model drift is caught.
  const AppSpec app = circuit_strong_spec(512);
  const double idx =
      simulate(app, config(512, true, true)).seconds_per_iteration;
  const double noidx =
      simulate(app, config(512, true, false)).seconds_per_iteration;
  const double speedup = noidx / idx;
  EXPECT_GT(speedup, 1.25);
  EXPECT_LT(speedup, 2.2);
}

TEST(PipelineSimTest, Fig5EfficiencyPinned) {
  // Weak scaling: DCR+IDX efficiency at 1024 nodes in the 80-95% band
  // (paper: 85%).
  const double t1 =
      simulate(circuit_weak_spec(1), config(1, true, true)).seconds_per_iteration;
  const double t1024 = simulate(circuit_weak_spec(1024), config(1024, true, true))
                           .seconds_per_iteration;
  const double efficiency = t1 / t1024;
  EXPECT_GT(efficiency, 0.80);
  EXPECT_LT(efficiency, 0.97);
}

TEST(PipelineSimTest, CausalityLowerBound) {
  // Iteration time can never beat the per-node GPU work (with jitter >= 0).
  for (uint32_t nodes : {1u, 8u, 64u}) {
    const AppSpec app = circuit_weak_spec(nodes);
    double kernels = 0;
    for (const LaunchSpec& l : app.iteration)
      kernels += l.kernel_s;  // 1 task per node per launch in this workload
    const SimResult r = simulate(app, config(nodes, true, true));
    EXPECT_GE(r.seconds_per_iteration, kernels * 0.999) << nodes;
  }
}

TEST(PipelineSimTest, StrongScalingThroughputMonotoneUntilSaturation) {
  // Adding nodes must never slow the best configuration down dramatically;
  // throughput is monotone (within jitter) until the runtime-bound regime.
  double prev = 0;
  for (uint32_t nodes = 1; nodes <= 128; nodes *= 2) {
    const double thr =
        1.0 / simulate(circuit_strong_spec(nodes), config(nodes, true, true))
                  .seconds_per_iteration;
    EXPECT_GT(thr, prev * 0.95) << nodes;
    prev = thr;
  }
}

TEST(PipelineSimTest, CheckCostAccountedOnlyWhenEnabledAndIdx) {
  const AppSpec app = soleil_full_spec(8);
  // No-IDX never evaluates projection functors as launches, so no check
  // cost is charged even with checks "on".
  const SimResult noidx = simulate(app, config(8, true, false, true, true));
  EXPECT_EQ(noidx.check_seconds, 0.0);
}

TEST(PipelineSimTest, DeterministicAcrossRuns) {
  const AppSpec app = circuit_weak_spec(16);
  const SimResult a = simulate(app, config(16, true, true));
  const SimResult b = simulate(app, config(16, true, true));
  EXPECT_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
  EXPECT_EQ(a.runtime_ops, b.runtime_ops);
}

TEST(ExperimentTest, RunScalingExperimentShapes) {
  const auto nodes = nodes_up_to(8);
  ASSERT_EQ(nodes.size(), 4u);
  const auto series = run_scaling_experiment(
      [](uint32_t n) { return circuit_weak_spec(n); }, four_configs(), nodes,
      [](const SimResult& r, uint32_t) { return 1.0 / r.seconds_per_iteration; });
  ASSERT_EQ(series.size(), 4u);
  for (const auto& s : series) {
    EXPECT_EQ(s.points.size(), nodes.size());
    for (const auto& [n, v] : s.points) EXPECT_GT(v, 0.0);
  }
  EXPECT_EQ(series[0].label, "DCR, IDX");
  EXPECT_EQ(series[3].label, "No DCR, No IDX");
}

}  // namespace
}  // namespace idxl::sim
