#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace idxl::testjson {

// ---------- a minimal JSON parser (validation only) ----------
//
// Just enough of RFC 8259 to prove an exporter's output is well-formed and
// to walk its structure; intentionally strict — any syntax error fails the
// parse and therefore the test. Shared by the profiler, metrics and
// flight-recorder exporter tests.

struct JValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* get(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }
  bool literal(std::string_view lit) {
    if (end_ - p_ < static_cast<std::ptrdiff_t>(lit.size())) return false;
    if (std::string_view(p_, lit.size()) != lit) return false;
    p_ += lit.size();
    return true;
  }
  bool value(JValue& out) {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JValue::kString; return string(out.string);
      case 't': out.kind = JValue::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = JValue::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = JValue::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool object(JValue& out) {
    out.kind = JValue::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !string(key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array(JValue& out) {
    out.kind = JValue::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool string(std::string& out) {
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            p_ += 4;  // keep escapes opaque; content doesn't matter here
            out += '?';
            break;
          }
          default: return false;
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }
  bool number(JValue& out) {
    out.kind = JValue::kNumber;
    char* after = nullptr;
    out.number = std::strtod(p_, &after);
    if (after == p_ || after > end_) return false;
    p_ = after;
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace idxl::testjson
