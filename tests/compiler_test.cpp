#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/transform.hpp"
#include "region/partition_ops.hpp"

namespace idxl::regent {
namespace {

struct Fixture {
  Runtime rt;
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId fv = 0;
  RegionId region;
  PartitionId blocks;
  TaskFnId stamp = 0;  // writes the launch point into every element
  TaskFnId touch = 0;  // reads arg0, writes arg1

  explicit Fixture(int64_t n, int64_t pieces) {
    auto& forest = rt.forest();
    is = forest.create_index_space(Domain::line(n));
    fs = forest.create_field_space();
    fv = forest.allocate_field(fs, sizeof(double), "v");
    region = forest.create_region(is, fs);
    blocks = partition_equal(forest, is, Rect::line(pieces));
    stamp = rt.register_task("stamp", [](TaskContext& ctx) {
      auto acc = ctx.region(0).accessor<double>(0);
      ctx.region(0).domain().for_each(
          [&](const Point& p) { acc.write(p, static_cast<double>(ctx.point[0])); });
    });
    touch = rt.register_task("touch", [](TaskContext& ctx) {
      auto in = ctx.region(0).accessor<double>(0);
      auto out = ctx.region(1).accessor<double>(0);
      double sum = 0;
      ctx.region(0).domain().for_each([&](const Point& p) { sum += in.read(p); });
      ctx.region(1).domain().for_each([&](const Point& p) { out.write(p, sum); });
    });
  }

  std::vector<double> values() {
    rt.wait_all();
    auto acc = rt.read_region<double>(region, fv);
    std::vector<double> out;
    const auto& dom = rt.forest().domain(is);
    dom.for_each([&](const Point& p) { out.push_back(acc.read(p)); });
    return out;
  }
};

TaskCallStmt write_call(const Fixture& fx, std::vector<ExprPtr> index) {
  TaskCallStmt call;
  call.task = fx.stamp;
  call.args = {{fx.region, fx.blocks, std::move(index), {fx.fv}, Privilege::kWrite,
                ReductionOp::kNone}};
  return call;
}

TEST(CompilerTest, IdentityLoopBecomesIndexLaunch) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {write_call(fx, {make_coord(0)})};

  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);
  EXPECT_TRUE(compiled.diagnostics().eligible);

  const LoopRunResult run = compiled.execute(fx.rt);
  EXPECT_TRUE(run.ran_as_index_launch);
  EXPECT_FALSE(run.dynamic_check_ran);
  fx.rt.wait_all();
  // Statically verified: the runtime performed no safety analysis.
  EXPECT_EQ(fx.rt.stats().launches_assumed_verified, 1u);
  EXPECT_EQ(fx.rt.stats().runtime_calls, 1u);

  const auto v = fx.values();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[31], 7.0);
}

TEST(CompilerTest, SafeModularLoopCompilesToBareIndexLaunch) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  // (i + 3) % 8 is injective over [0,8): the abstract interpreter's
  // residue-class analysis proves it at compile time, so the optimizer
  // emits a bare index launch with no dynamic guard at all.
  loop.body = {write_call(
      fx, {make_mod(make_add(make_coord(0), make_const(3)), make_const(8))})};

  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);

  const LoopRunResult run = compiled.execute(fx.rt);
  EXPECT_FALSE(run.dynamic_check_ran);
  EXPECT_TRUE(run.ran_as_index_launch);
  EXPECT_EQ(run.dynamic_check_points, 0u);

  const auto v = fx.values();
  // Block (i+3)%8 is stamped with i: block 0 stamped by i=5.
  EXPECT_DOUBLE_EQ(v[0], 5.0);
}

TEST(CompilerTest, PaperListing2FallsBackToTaskLoop) {
  // foo(p[i], q[i%3]) over [0,5): write functor i%3 collides. The extended
  // static tier now refutes it at compile time (with a concrete witness
  // pair), so the optimizer emits the original task loop directly — no
  // run-time guard is ever evaluated.
  Fixture fx(12, 3);  // q: 3 blocks
  auto& forest = fx.rt.forest();
  const IndexSpaceId p_is = forest.create_index_space(Domain::line(25));
  const RegionId p_region = forest.create_region(p_is, fx.fs);
  const PartitionId p_blocks = partition_equal(forest, p_is, Rect::line(5));

  ForLoop loop;
  loop.domain = Domain::line(5);
  TaskCallStmt call;
  call.task = fx.touch;
  call.args = {{p_region, p_blocks, {make_coord(0)}, {fx.fv}, Privilege::kRead,
                ReductionOp::kNone},
               {fx.region, fx.blocks, {make_mod(make_coord(0), make_const(3))},
                {fx.fv}, Privilege::kWrite, ReductionOp::kNone}};
  loop.body = {call};

  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kTaskLoop);
  ASSERT_TRUE(compiled.diagnostics().witness.has_value());
  EXPECT_NE(compiled.explain().find("witness:"), std::string::npos);

  const LoopRunResult run = compiled.execute(fx.rt);
  EXPECT_FALSE(run.dynamic_check_ran);
  EXPECT_FALSE(run.ran_as_index_launch);
  fx.rt.wait_all();
  EXPECT_EQ(fx.rt.stats().single_launches, 5u);  // the original task loop
}

TEST(CompilerTest, ConstantWriteFunctorIsStaticallyUnsafe) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {write_call(fx, {make_const(2)})};

  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kTaskLoop);
  EXPECT_TRUE(compiled.diagnostics().eligible);
  EXPECT_NE(compiled.diagnostics().reason.find("unsafe"), std::string::npos);

  // Still executes with sequential semantics: block 2 stamped by last i.
  compiled.execute(fx.rt);
  const auto v = fx.values();
  EXPECT_DOUBLE_EQ(v[8], 7.0);  // block 2 covers [8, 12)
}

TEST(CompilerTest, AffineNonDegenerateIsStatic) {
  Fixture fx(64, 16);
  ForLoop loop;
  loop.domain = Domain::line(8);
  // 2i + 1 hits odd blocks only — injective, statically provable.
  loop.body = {write_call(
      fx, {make_add(make_mul(make_const(2), make_coord(0)), make_const(1))})};
  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);
}

TEST(CompilerTest, CarriedAssignmentMakesLoopIneligible) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {CarriedAssignStmt{"x", make_coord(0)}, write_call(fx, {make_coord(0)})};
  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kTaskLoop);
  EXPECT_FALSE(compiled.diagnostics().eligible);
  EXPECT_NE(compiled.diagnostics().reason.find("loop-carried"), std::string::npos);
}

TEST(CompilerTest, OpaqueStatementMakesLoopIneligible) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {OpaqueStmt{"calls into external library"},
               write_call(fx, {make_coord(0)})};
  EXPECT_EQ(compile_loop(loop, fx.rt.forest()).strategy(), LoopStrategy::kTaskLoop);
}

TEST(CompilerTest, TwoCallsMakeLoopIneligible) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {write_call(fx, {make_coord(0)}), write_call(fx, {make_coord(0)})};
  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_FALSE(compiled.diagnostics().eligible);
}

TEST(CompilerTest, VarDeclsAndAccumulatorsArePermitted) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {VarDeclStmt{"tmp", make_mul(make_coord(0), make_const(2))},
               ScalarAccumStmt{"total", ReductionOp::kSum, make_coord(0)},
               ScalarAccumStmt{"biggest", ReductionOp::kMax, make_coord(0)},
               write_call(fx, {make_coord(0)})};
  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);

  const LoopRunResult run = compiled.execute(fx.rt);
  EXPECT_EQ(run.scalars.at("total"), 28);   // 0+..+7
  EXPECT_EQ(run.scalars.at("biggest"), 7);
}

TEST(CompilerTest, CompiledMatchesInterpreterOnGuardedFallback) {
  // Property: whatever the strategy, final region contents equal the
  // interpreted (sequential) loop.
  for (int64_t k : {1, 2, 3, 5, 8}) {
    Fixture compiled_fx(24, 8);
    Fixture interp_fx(24, 8);
    auto make = [&](Fixture& fx) {
      ForLoop loop;
      loop.domain = Domain::line(8);
      loop.body = {write_call(
          fx, {make_mod(make_mul(make_coord(0), make_const(k)), make_const(8))})};
      return loop;
    };
    compile_loop(make(compiled_fx), compiled_fx.rt.forest()).execute(compiled_fx.rt);
    interpret_loop(make(interp_fx), interp_fx.rt);
    EXPECT_EQ(compiled_fx.values(), interp_fx.values()) << "k=" << k;
  }
}

TEST(CompilerTest, TwoDimensionalLoopCompiles) {
  // for (i, j) in [0,2)x[0,3) do stamp(q[(i, j)]) end over a 2-D partition.
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(4, 6)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::box2(2, 3));
  const TaskFnId stamp = rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(ctx.point[0] * 10 + ctx.point[1]));
    });
  });

  ForLoop loop;
  loop.domain = Domain(Rect::box2(2, 3));
  TaskCallStmt call;
  call.task = stamp;
  call.args = {{region, blocks, {make_coord(0), make_coord(1)}, {fv},
                Privilege::kWrite, ReductionOp::kNone}};
  loop.body = {call};

  const CompiledLoop compiled = compile_loop(loop, forest);
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);
  compiled.execute(rt);
  rt.wait_all();
  auto acc = rt.read_region<double>(region, fv);
  // Block (1,2) covers cells (2..3, 4..5).
  EXPECT_DOUBLE_EQ(acc.read(Point::p2(3, 5)), 12.0);
}

TEST(CompilerTest, TransposedTwoDimLoopIsStaticallySafe) {
  // stamp(q[(j, i)]): a coordinate permutation — full-rank affine map.
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(4, 4)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::box2(2, 2));
  const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});

  ForLoop loop;
  loop.domain = Domain(Rect::box2(2, 2));
  TaskCallStmt call;
  call.task = noop;
  call.args = {{region, blocks, {make_coord(1), make_coord(0)}, {fv},
                Privilege::kWrite, ReductionOp::kNone}};
  loop.body = {call};
  EXPECT_EQ(compile_loop(loop, forest).strategy(), LoopStrategy::kIndexLaunch);
}

TEST(CompilerTest, WavefrontLoopIsGuardedAndPasses) {
  // The DOM idiom at the compiler level: loop over a sparse 3-D wavefront,
  // write a 2-D plane partition through (x, y).
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId plane = forest.create_index_space(Domain(Rect::box2(3, 3)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(plane, fs);
  const PartitionId cells = partition_equal(forest, plane, Rect::box2(3, 3));
  const TaskFnId noop = rt.register_task("noop", [](TaskContext&) {});

  std::vector<Point> wave;
  for (int x = 0; x < 3; ++x)
    for (int y = 0; y < 3; ++y)
      for (int z = 0; z < 3; ++z)
        if (x + y + z == 3) wave.push_back(Point::p3(x, y, z));

  ForLoop loop;
  loop.domain = Domain::from_points(wave);
  TaskCallStmt call;
  call.task = noop;
  call.args = {{region, cells, {make_coord(0), make_coord(1)}, {fv},
                Privilege::kWrite, ReductionOp::kNone}};
  loop.body = {call};

  const CompiledLoop compiled = compile_loop(loop, forest);
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kGuardedIndexLaunch);
  const LoopRunResult run = compiled.execute(rt);
  EXPECT_TRUE(run.dynamic_check_ran);
  EXPECT_TRUE(run.dynamic_check_passed);
  EXPECT_TRUE(run.ran_as_index_launch);
  rt.wait_all();
}

TEST(CompilerTest, CrossLoopVerdictsSurfaceInDiagnostics) {
  // Three compiled loops writing the same field: even colors (2i), odd
  // colors (2i+1), then even colors again. The whole-program pass proves
  // the even/odd pairs disjoint by residue-class image separation (with a
  // checker-validated certificate) and refutes the even/even pair with a
  // validated racing witness — all surfaced in CompileDiagnostics.
  Fixture fx(32, 8);
  auto make = [&](ExprPtr e) {
    ForLoop l;
    l.domain = Domain::line(4);
    l.body = {write_call(fx, {std::move(e)})};
    return l;
  };
  std::vector<CompiledLoop> prog;
  prog.push_back(
      compile_loop(make(make_mul(make_const(2), make_coord(0))), fx.rt.forest()));
  prog.push_back(compile_loop(
      make(make_add(make_mul(make_const(2), make_coord(0)), make_const(1))),
      fx.rt.forest()));
  prog.push_back(
      compile_loop(make(make_mul(make_const(2), make_coord(0))), fx.rt.forest()));
  for (const CompiledLoop& c : prog)
    ASSERT_EQ(c.strategy(), LoopStrategy::kIndexLaunch);

  cross_analyze_program(prog, fx.rt.forest());

  EXPECT_TRUE(prog[0].diagnostics().inter_launch.empty());
  ASSERT_EQ(prog[1].diagnostics().inter_launch.size(), 1u);
  const InterLaunchVerdict& odd_even = prog[1].diagnostics().inter_launch[0];
  EXPECT_EQ(odd_even.earlier_loop, 0u);
  EXPECT_EQ(odd_even.verdict, PairVerdict::kDisjoint);
  EXPECT_TRUE(odd_even.certified);

  ASSERT_EQ(prog[2].diagnostics().inter_launch.size(), 2u);
  const InterLaunchVerdict& even_even = prog[2].diagnostics().inter_launch[0];
  EXPECT_EQ(even_even.earlier_loop, 0u);
  EXPECT_EQ(even_even.verdict, PairVerdict::kInterferes);
  ASSERT_TRUE(even_even.witness.has_value());
  const InterLaunchVerdict& even_odd = prog[2].diagnostics().inter_launch[1];
  EXPECT_EQ(even_odd.earlier_loop, 1u);
  EXPECT_EQ(even_odd.verdict, PairVerdict::kDisjoint);
  EXPECT_TRUE(even_odd.certified);

  const std::string report = prog[2].explain();
  EXPECT_NE(report.find("inter-launch:"), std::string::npos);
  EXPECT_NE(report.find("interferes"), std::string::npos);
  EXPECT_NE(report.find("(certified)"), std::string::npos);
  EXPECT_NE(report.find("witness"), std::string::npos);
}

// ---------- loop-nest flattening ----------

TEST(TransformTest, PerfectNestFlattensToMultiDimLaunch) {
  // for i = 0, 2 do for j = 0, 3 do stamp(q[(i, j)]) end end
  Runtime rt;
  auto& forest = rt.forest();
  const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(4, 6)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId fv = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId region = forest.create_region(is, fs);
  const PartitionId blocks = partition_equal(forest, is, Rect::box2(2, 3));
  const TaskFnId stamp = rt.register_task("stamp", [](TaskContext& ctx) {
    auto acc = ctx.region(0).accessor<double>(0);
    ctx.region(0).domain().for_each([&](const Point& p) {
      acc.write(p, static_cast<double>(ctx.point[0] * 10 + ctx.point[1]));
    });
  });

  TaskCallStmt call;
  call.task = stamp;
  call.args = {{region, blocks, {make_coord(0), make_coord(1)}, {fv},
                Privilege::kWrite, ReductionOp::kNone}};
  NestedLoopStmt inner;
  inner.domain = Domain::line(3);
  inner.body->push_back(call);
  ForLoop outer;
  outer.domain = Domain::line(2);
  outer.body = {inner};

  // Unflattened: ineligible (nested loop).
  EXPECT_EQ(compile_loop(outer, forest).strategy(), LoopStrategy::kTaskLoop);
  EXPECT_EQ(nest_depth(outer), 2);

  const ForLoop flat = flatten_loops(outer);
  EXPECT_EQ(nest_depth(flat), 1);
  EXPECT_EQ(flat.domain.dim(), 2);
  EXPECT_EQ(flat.domain.volume(), 6);

  const CompiledLoop compiled = compile_loop(flat, forest);
  EXPECT_EQ(compiled.strategy(), LoopStrategy::kIndexLaunch);
  compiled.execute(rt);
  rt.wait_all();
  auto acc = rt.read_region<double>(region, fv);
  EXPECT_DOUBLE_EQ(acc.read(Point::p2(3, 5)), 12.0);  // block (1,2)
}

TEST(TransformTest, ThreeLevelNestFlattens) {
  NestedLoopStmt level3;
  level3.domain = Domain::line(2);
  level3.body->push_back(OpaqueStmt{"work"});
  NestedLoopStmt level2;
  level2.domain = Domain::line(3);
  level2.body->push_back(level3);
  ForLoop outer;
  outer.domain = Domain::line(4);
  outer.body = {level2};

  EXPECT_EQ(nest_depth(outer), 3);
  const ForLoop flat = flatten_loops(outer);
  EXPECT_EQ(flat.domain.dim(), 3);
  EXPECT_EQ(flat.domain.volume(), 24);
}

TEST(TransformTest, ImperfectNestStopsFlattening) {
  // A task call *between* the loops blocks the collapse.
  TaskCallStmt call;
  call.task = 0;
  NestedLoopStmt inner;
  inner.domain = Domain::line(3);
  ForLoop outer;
  outer.domain = Domain::line(2);
  outer.body = {call, inner};
  const ForLoop flat = flatten_loops(outer);
  EXPECT_EQ(flat.domain.dim(), 1);  // unchanged
}

TEST(TransformTest, SimpleStatementsAreHoisted) {
  NestedLoopStmt inner;
  inner.domain = Domain::line(3);
  inner.body->push_back(OpaqueStmt{"inner work"});
  ForLoop outer;
  outer.domain = Domain::line(2);
  outer.body = {VarDeclStmt{"tmp", make_coord(0)}, inner};
  const ForLoop flat = flatten_loops(outer);
  EXPECT_EQ(flat.domain.dim(), 2);
  EXPECT_EQ(flat.body.size(), 2u);  // hoisted decl + inner body
  EXPECT_TRUE(std::holds_alternative<VarDeclStmt>(flat.body[0]));
}

TEST(TransformTest, DimensionalityCapRespected) {
  // 5 nested 1-D loops exceed kMaxDim = 4: flattening stops at 4.
  ForLoop loop;
  loop.domain = Domain::line(2);
  NestedLoopStmt* tail = nullptr;
  for (int level = 0; level < 4; ++level) {
    NestedLoopStmt nested;
    nested.domain = Domain::line(2);
    if (tail == nullptr) {
      loop.body = {nested};
      tail = &std::get<NestedLoopStmt>(loop.body[0]);
    } else {
      tail->body->push_back(nested);
      tail = &std::get<NestedLoopStmt>(tail->body->back());
    }
  }
  const ForLoop flat = flatten_loops(loop);
  EXPECT_LE(flat.domain.dim(), kMaxDim);
  EXPECT_EQ(flat.domain.dim(), 4);
}

TEST(CompilerTest, ExplainMentionsStrategy) {
  Fixture fx(32, 8);
  ForLoop loop;
  loop.domain = Domain::line(8);
  loop.body = {write_call(fx, {make_coord(0)})};
  const CompiledLoop compiled = compile_loop(loop, fx.rt.forest());
  const std::string text = compiled.explain();
  EXPECT_NE(text.find("index-launch"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
}

}  // namespace
}  // namespace idxl::regent
