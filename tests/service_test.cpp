// Tests for the multi-tenant session server (src/service): fair-share
// scheduling, typed quota rejects, per-session namespace isolation,
// graceful drain, poisoned-session eviction, and the ThreadPool
// timer-vs-destructor shutdown ordering the service's restart-heavy
// lifecycle depends on.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/task_registry.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_pool.hpp"
#include "service/client.hpp"
#include "service/fair_share.hpp"
#include "service/service_runtime.hpp"

using namespace idxl;
using namespace idxl::service;

namespace {

// A task body that always fails terminally — the poisoned-session tests
// launch it to fault one tenant without touching any region.
void failing_body(TaskContext&) { throw std::runtime_error("svc boom"); }
IDXL_DIST_REGISTER_TASK(svc_test_fail, failing_body);

std::unique_ptr<RuntimeApi> local_backend(unsigned workers = 2) {
  RuntimeConfig config;
  config.workers = workers;
  return std::make_unique<Runtime>(config);
}

/// Per-client fixture state: a 1-D region of doubles partitioned into
/// disjoint blocks, filled with `init`.
struct ClientRegion {
  IndexSpaceId is;
  FieldSpaceId fs;
  FieldId f = 0;
  PartitionId part;
  RegionId region;
};

ClientRegion setup_region(ServiceClient& c, int64_t elems, int64_t nblocks,
                          double init) {
  ClientRegion r;
  r.is = c.create_index_space(Domain(Rect::line(elems)));
  r.fs = c.create_field_space();
  r.f = c.allocate_field(r.fs, sizeof(double), "v");
  std::vector<Domain> blocks;
  const int64_t bs = elems / nblocks;
  for (int64_t b = 0; b < nblocks; ++b)
    blocks.emplace_back(Rect(Point::p1(b * bs), Point::p1((b + 1) * bs - 1)));
  r.part = c.create_partition(r.is, Rect::line(nblocks), blocks,
                              Disjointness::kDisjoint);
  r.region = c.create_region(r.is, r.fs);
  c.fill(r.region, r.f, init);
  return r;
}

IndexLauncher increment_launch(ServiceClient& c, const ClientRegion& r,
                               int64_t nblocks) {
  struct Args {
    FieldId fin = 0;
    FieldId fout = 1;
    int64_t radius = 1, nx = 0, ny = 0;
  } args;
  args.fin = r.f;
  return IndexLauncher::over(Domain(Rect::line(nblocks)))
      .with_task(c.task_id("smoke_increment"))
      .region(r.region, r.part, ProjectionFunctor::identity(1), {r.f},
              Privilege::kReadWrite)
      .scalars(args);
}

}  // namespace

// --- FairShareQueue units -------------------------------------------------

TEST(FairShare, WeightedPopRatioIsExact) {
  FairShareQueue<int> q;
  q.add_session(1, 4);
  q.add_session(2, 1);
  for (int i = 0; i < 25; ++i) {
    q.push(1, i);
    q.push(2, i);
  }
  int from1 = 0, from2 = 0;
  uint64_t sid = 0;
  int item = 0;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(q.pop(&sid, &item));
    (sid == 1 ? from1 : from2)++;
  }
  // Weight 4 vs 1: exactly a 4:1 split over any aligned window.
  EXPECT_EQ(from1, 20);
  EXPECT_EQ(from2, 5);
  EXPECT_EQ(q.size(), 25u);
}

TEST(FairShare, IdleSessionBanksNoCredit) {
  FairShareQueue<int> q;
  q.add_session(1, 1);
  q.add_session(2, 1);
  for (int i = 0; i < 10; ++i) q.push(1, i);
  uint64_t sid = 0;
  int item = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(&sid, &item));
    EXPECT_EQ(sid, 1u);
  }
  // Session 2 slept through 4 quanta; its pass clamps to the current
  // virtual time, so it gets one turn — not four back-to-back.
  for (int i = 0; i < 4; ++i) q.push(2, i);
  std::vector<uint64_t> order;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.pop(&sid, &item));
    order.push_back(sid);
  }
  const std::vector<uint64_t> expect = {2, 1, 2, 1, 2, 1, 2, 1};
  EXPECT_EQ(order, expect);
}

TEST(FairShare, RemoveSessionReturnsBacklog) {
  FairShareQueue<int> q;
  q.add_session(7, 2);
  q.push(7, 1);
  q.push(7, 2);
  q.push(7, 3);
  EXPECT_EQ(q.session_depth(7), 3u);
  const std::vector<int> dropped = q.remove_session(7);
  EXPECT_EQ(dropped.size(), 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.has_session(7));
  EXPECT_TRUE(q.remove_session(7).empty());
}

// --- quota enforcement ----------------------------------------------------

TEST(ServiceQuota, InFlightQuotaIsTypedRejectNotHang) {
  ServiceConfig config;
  config.quota.max_in_flight = 4;
  ServiceRuntime server(local_backend(), config);
  const uint16_t port = server.listen_tcp();
  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);

  const ClientRegion r = setup_region(client, 64, 4, 0.0);
  ASSERT_TRUE(client.fence().ok());

  server.pause_scheduler();
  std::vector<uint64_t> tags;
  for (int i = 0; i < 4; ++i)
    tags.push_back(client.launch(increment_launch(client, r, 4)));
  while (server.queued() < 4) std::this_thread::yield();

  // The 5th launch exceeds max_in_flight: the receive thread answers with
  // a typed reject immediately, even though the scheduler is stopped.
  const uint64_t over = client.launch(increment_launch(client, r, 4));
  const LaunchAck rejected = client.await_ack(over);
  EXPECT_EQ(rejected.code, Err::kQuotaInFlight);
  EXPECT_EQ(client.rejects(), 1u);

  server.resume_scheduler();
  for (const uint64_t tag : tags) EXPECT_EQ(client.await_ack(tag).code, Err::kOk);
  ASSERT_TRUE(client.fence().ok());

  const std::vector<std::byte> bytes = client.read_field(r.region, r.f);
  double v = 0;
  std::memcpy(&v, bytes.data(), sizeof(double));
  EXPECT_EQ(v, 4.0);  // exactly the four admitted launches ran
  client.goodbye();
}

TEST(ServiceQuota, RegionBytesQuotaIsTypedSetupReject) {
  ServiceConfig config;
  config.quota.max_region_bytes = 1024;
  ServiceRuntime server(local_backend(), config);
  const uint16_t port = server.listen_tcp();
  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);

  // 1024 doubles = 8 KiB > the 1 KiB quota: the whole batch must be
  // rejected atomically with a typed code, applying nothing.
  const IndexSpaceId is = client.create_index_space(Domain(Rect::line(1024)));
  const FieldSpaceId fs = client.create_field_space();
  client.allocate_field(fs, sizeof(double), "v");
  client.create_region(is, fs);
  try {
    client.flush_setup();
    FAIL() << "setup exceeding the region-bytes quota must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), Err::kQuotaRegionBytes);
  }
  EXPECT_EQ(server.backend().forest().region_count(), 0u);
}

// --- namespace isolation --------------------------------------------------

TEST(ServiceIsolation, ForeignHandlesAreTypedRejects) {
  ServiceRuntime server(local_backend());
  const uint16_t port = server.listen_tcp();

  ServiceClient owner = ServiceClient::connect_tcp("127.0.0.1", port);
  const ClientRegion r = setup_region(owner, 64, 4, 0.0);
  ASSERT_TRUE(owner.fence().ok());

  // The intruder names region/partition 0 — valid backend ids (they belong
  // to `owner`), but not in the intruder's namespace: typed kForeignRegion.
  ServiceClient intruder = ServiceClient::connect_tcp("127.0.0.1", port);
  IndexLauncher foreign =
      IndexLauncher::over(Domain(Rect::line(4)))
          .with_task(intruder.task_id("smoke_increment"))
          .region(RegionId{0}, PartitionId{0}, ProjectionFunctor::identity(1),
                  {0}, Privilege::kReadWrite);
  try {
    intruder.launch_checked(foreign);
    FAIL() << "foreign handles must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), Err::kForeignRegion);
  }

  // An out-of-range task index is equally typed.
  IndexLauncher bad_task = IndexLauncher::over(Domain(Rect::line(2)));
  bad_task.task = 10000;
  try {
    intruder.launch_checked(bad_task);
    FAIL() << "unknown task must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), Err::kUnknownTask);
  }

  // The owner's data is untouched by the rejected launches.
  ASSERT_TRUE(owner.fence().ok());
  const std::vector<std::byte> bytes = owner.read_field(r.region, r.f);
  double v = 0;
  std::memcpy(&v, bytes.data(), sizeof(double));
  EXPECT_EQ(v, 0.0);
  owner.goodbye();
  intruder.goodbye();
}

// --- fair-share scheduling under contention -------------------------------

TEST(ServiceFairShare, WeightedIssueOrderUnderContention) {
  ServiceRuntime server(local_backend());
  const uint16_t port = server.listen_tcp();

  ClientHello heavy_hello;
  heavy_hello.tenant = "heavy";
  heavy_hello.weight = 4;
  ServiceClient heavy = ServiceClient::connect_tcp("127.0.0.1", port, heavy_hello);
  ClientHello light_hello;
  light_hello.tenant = "light";
  light_hello.weight = 1;
  ServiceClient light = ServiceClient::connect_tcp("127.0.0.1", port, light_hello);

  const ClientRegion hr = setup_region(heavy, 64, 4, 0.0);
  const ClientRegion lr = setup_region(light, 64, 4, 0.0);
  ASSERT_TRUE(heavy.fence().ok());
  ASSERT_TRUE(light.fence().ok());

  // Stack up 10 launches per tenant while the scheduler is stopped, then
  // release it and recover the issue order from the backend launch ids the
  // acks carry.
  server.pause_scheduler();
  std::vector<uint64_t> heavy_tags, light_tags;
  for (int i = 0; i < 10; ++i) {
    heavy_tags.push_back(heavy.launch(increment_launch(heavy, hr, 4)));
    light_tags.push_back(light.launch(increment_launch(light, lr, 4)));
  }
  while (server.queued() < 20) std::this_thread::yield();
  server.resume_scheduler();

  std::vector<std::pair<uint64_t, bool>> issued;  // (backend launch id, heavy?)
  for (const uint64_t tag : heavy_tags) {
    const LaunchAck ack = heavy.await_ack(tag);
    ASSERT_EQ(ack.code, Err::kOk);
    issued.emplace_back(ack.launch, true);
  }
  for (const uint64_t tag : light_tags) {
    const LaunchAck ack = light.await_ack(tag);
    ASSERT_EQ(ack.code, Err::kOk);
    issued.emplace_back(ack.launch, false);
  }
  std::sort(issued.begin(), issued.end());
  int heavy_in_first_10 = 0;
  for (int i = 0; i < 10; ++i) heavy_in_first_10 += issued[i].second ? 1 : 0;
  // Weight 4 vs 1: stride scheduling issues exactly 8 heavy + 2 light in
  // the first 10 slots (H L H H H H L H H H).
  EXPECT_EQ(heavy_in_first_10, 8);

  ASSERT_TRUE(heavy.fence().ok());
  ASSERT_TRUE(light.fence().ok());
  heavy.goodbye();
  light.goodbye();
}

// --- graceful drain -------------------------------------------------------

TEST(ServiceDrain, DrainCompletesInFlightLaunches) {
  ServiceRuntime server(local_backend());
  const uint16_t port = server.listen_tcp();
  ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);

  const ClientRegion r = setup_region(client, 64, 4, 0.0);
  ASSERT_TRUE(client.fence().ok());
  const uint64_t points_before = server.backend().stats().point_tasks;

  // Stage 10 admitted-but-unissued launches, then drain while they are
  // queued: drain must finish them, not drop them.
  server.pause_scheduler();
  std::vector<uint64_t> tags;
  for (int i = 0; i < 10; ++i)
    tags.push_back(client.launch(increment_launch(client, r, 4)));
  while (server.queued() < 10) std::this_thread::yield();
  std::thread drainer([&server] { server.drain(); });
  server.resume_scheduler();
  drainer.join();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.active_sessions(), 0u);

  // Every admitted launch was issued, retired, and acked before the close.
  for (const uint64_t tag : tags)
    EXPECT_EQ(client.await_ack(tag).code, Err::kOk);
  // ... and actually executed: 10 launches x 4 points.
  EXPECT_EQ(server.backend().stats().point_tasks, points_before + 10u * 4u);

  // Anything after the drain is a typed refusal (or a dead socket).
  EXPECT_ANY_THROW(client.fence());
}

TEST(ServiceDrain, DrainingServerRefusesNewSessions) {
  ServiceRuntime server(local_backend());
  const uint16_t port = server.listen_tcp();
  server.drain();
  try {
    ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
    FAIL() << "draining server must refuse the handshake";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), Err::kDraining);
  }
}

// --- eviction of a poisoned session ---------------------------------------

TEST(ServiceEviction, EvictedPoisonedSessionLeaksNothing) {
  ServiceRuntime server(local_backend());
  const uint16_t port = server.listen_tcp();

  ClientHello hello;
  hello.tenant = "poisoned";
  ServiceClient victim = ServiceClient::connect_tcp("127.0.0.1", port, hello);
  IndexLauncher boom = IndexLauncher::over(Domain(Rect::line(2)))
                           .with_task(victim.task_id("svc_test_fail"));
  for (int i = 0; i < 3; ++i) victim.launch(boom);

  // The faults are the session's own, surfaced through its fence.
  const FaultReport report = victim.fence();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures.size(), 3u * 2u);  // 3 launches x 2 points

  ASSERT_TRUE(server.evict(victim.session(), "poisoned tenant"));
  EXPECT_ANY_THROW({
    for (;;) victim.fence();  // the eviction error frame breaks the loop
  });
  // Teardown is asynchronous; once it lands, the session id is unknown.
  while (server.evict(victim.session(), "twice"))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // A fresh tenant gets a clean runtime: no leaked pool slots (its work
  // completes), and no leaked faults (its report is empty).
  ServiceClient fresh = ServiceClient::connect_tcp("127.0.0.1", port);
  const ClientRegion r = setup_region(fresh, 64, 4, 1.0);
  for (int i = 0; i < 5; ++i) fresh.launch(increment_launch(fresh, r, 4));
  const FaultReport clean = fresh.fence();
  EXPECT_TRUE(clean.ok());
  const std::vector<std::byte> bytes = fresh.read_field(r.region, r.f);
  double v = 0;
  std::memcpy(&v, bytes.data(), sizeof(double));
  EXPECT_EQ(v, 6.0);
  fresh.goodbye();
  server.drain();
  EXPECT_EQ(server.active_sessions(), 0u);
}

// --- restart-heavy lifecycles ---------------------------------------------

TEST(ServiceLifecycle, RepeatedStartStopCyclesRunClean) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    ServiceRuntime server(local_backend());
    const uint16_t port = server.listen_tcp();
    ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", port);
    const ClientRegion r = setup_region(client, 32, 4, 0.0);
    // Retry + backoff exercises ThreadPool::submit_after — the timer thread
    // must shut down cleanly when the ServiceRuntime (and its backend) dies
    // right after.
    IndexLauncher boom = IndexLauncher::over(Domain(Rect::line(2)))
                             .with_task(client.task_id("svc_test_fail"));
    boom.max_retries = 2;
    boom.retry_backoff_ms = 1;
    client.launch(boom);
    client.launch(increment_launch(client, r, 4));
    // No goodbye, no drain: the destructor must handle a live session with
    // in-flight retrying work.
  }
}

TEST(ThreadPoolTimer, DestructorVsFiringTimerSubmitRace) {
  // Regression: a timer callback firing outside the lock may submit() real
  // work concurrently with the destructor. The old single-phase shutdown
  // aborted on the "submit after shutdown" assert; the two-phase destructor
  // must retire the timer thread first, accepting those submissions.
  for (int i = 0; i < 100; ++i) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      for (int t = 0; t < 8; ++t)
        pool.submit_after([&pool, &ran] { pool.submit([&ran] { ++ran; }); },
                          0);
      // Destroy immediately: callbacks are firing right now.
    }
    // Any callback that fired before phase 1 finished had its submission
    // accepted and drained; none may have been lost mid-pool.
    EXPECT_LE(ran.load(), 8);
  }
}
