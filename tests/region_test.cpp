#include <gtest/gtest.h>

#include "region/accessor.hpp"
#include "region/bvh.hpp"
#include "region/partition_ops.hpp"
#include "region/region_forest.hpp"
#include "support/bitvector.hpp"
#include "support/rng.hpp"

namespace idxl {
namespace {

// ---------- Point / Rect ----------

TEST(PointTest, ConstructionAndIndexing) {
  const Point p = Point::p3(1, -2, 3);
  EXPECT_EQ(p.dim, 3);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], -2);
  EXPECT_EQ(p[2], 3);
  EXPECT_EQ(p.to_string(), "(1,-2,3)");
}

TEST(PointTest, Arithmetic) {
  const Point a = Point::p2(3, 4), b = Point::p2(1, -1);
  EXPECT_EQ(a + b, Point::p2(4, 3));
  EXPECT_EQ(a - b, Point::p2(2, 5));
}

TEST(PointTest, LexicographicOrder) {
  EXPECT_LT(Point::p2(0, 5), Point::p2(1, 0));
  EXPECT_LT(Point::p2(1, 0), Point::p2(1, 1));
  EXPECT_FALSE(Point::p2(1, 1) < Point::p2(1, 1));
}

TEST(RectTest, VolumeAndEmpty) {
  EXPECT_EQ(Rect::line(10).volume(), 10);
  EXPECT_EQ(Rect::box2(3, 4).volume(), 12);
  EXPECT_EQ(Rect::box3(2, 3, 4).volume(), 24);
  Rect empty(Point::p1(5), Point::p1(4));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.volume(), 0);
}

TEST(RectTest, ContainsAndIntersection) {
  const Rect r = Rect::box2(10, 10);
  EXPECT_TRUE(r.contains(Point::p2(0, 0)));
  EXPECT_TRUE(r.contains(Point::p2(9, 9)));
  EXPECT_FALSE(r.contains(Point::p2(10, 0)));
  const Rect s(Point::p2(5, 5), Point::p2(14, 14));
  const Rect i = r.intersection(s);
  EXPECT_EQ(i, Rect(Point::p2(5, 5), Point::p2(9, 9)));
  const Rect far(Point::p2(20, 20), Point::p2(30, 30));
  EXPECT_TRUE(r.intersection(far).empty());
  EXPECT_FALSE(r.overlaps(far));
}

TEST(RectTest, LinearizeRoundTrip) {
  const Rect r(Point::p3(-1, 2, 0), Point::p3(3, 4, 2));
  int64_t expected = 0;
  for (const Point& p : r) {
    EXPECT_EQ(r.linearize(p), expected);
    EXPECT_EQ(r.delinearize(expected), p);
    ++expected;
  }
  EXPECT_EQ(expected, r.volume());
}

TEST(RectTest, IterationCoversRowMajor) {
  const Rect r = Rect::box2(2, 3);
  std::vector<Point> pts(r.begin(), r.end());
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0], Point::p2(0, 0));
  EXPECT_EQ(pts[1], Point::p2(0, 1));
  EXPECT_EQ(pts[3], Point::p2(1, 0));
  EXPECT_EQ(pts[5], Point::p2(1, 2));
}

TEST(RectTest, EmptyIterationYieldsNothing) {
  Rect empty(Point::p1(1), Point::p1(0));
  EXPECT_EQ(empty.begin(), empty.end());
}

// ---------- Domain ----------

TEST(DomainTest, DenseBasics) {
  const Domain d = Domain::line(100);
  EXPECT_TRUE(d.dense());
  EXPECT_EQ(d.volume(), 100);
  EXPECT_TRUE(d.contains(Point::p1(0)));
  EXPECT_TRUE(d.contains(Point::p1(99)));
  EXPECT_FALSE(d.contains(Point::p1(100)));
}

TEST(DomainTest, SparseDeduplicatesAndSorts) {
  const Domain d = Domain::from_points(
      {Point::p1(5), Point::p1(1), Point::p1(5), Point::p1(9)});
  EXPECT_FALSE(d.dense());
  EXPECT_EQ(d.volume(), 3);
  EXPECT_TRUE(d.contains(Point::p1(5)));
  EXPECT_FALSE(d.contains(Point::p1(2)));
  const auto pts = d.points();
  EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
}

TEST(DomainTest, SparseThatFillsBoxNormalizesToDense) {
  const Domain d = Domain::from_points(
      {Point::p1(2), Point::p1(3), Point::p1(4)});
  EXPECT_TRUE(d.dense());
  EXPECT_EQ(d.bounds(), Rect(Point::p1(2), Point::p1(4)));
}

TEST(DomainTest, DisjointFrom) {
  const Domain a = Domain::line(10);
  const Domain b(Rect(Point::p1(10), Point::p1(19)));
  EXPECT_TRUE(a.disjoint_from(b));
  const Domain c(Rect(Point::p1(9), Point::p1(12)));
  EXPECT_FALSE(a.disjoint_from(c));
  // Sparse vs dense with overlapping bounds but no common points.
  const Domain sparse = Domain::from_points({Point::p1(10), Point::p1(14)});
  const Domain dense(Rect(Point::p1(11), Point::p1(13)));
  EXPECT_TRUE(sparse.disjoint_from(dense));
  EXPECT_TRUE(dense.disjoint_from(sparse));
}

TEST(DomainTest, ContainsDomain) {
  const Domain a = Domain::line(10);
  EXPECT_TRUE(a.contains_domain(Domain::from_points({Point::p1(0), Point::p1(9)})));
  EXPECT_FALSE(a.contains_domain(Domain::from_points({Point::p1(0), Point::p1(10)})));
  EXPECT_TRUE(a.contains_domain(Domain::from_points({})));
}

TEST(DomainTest, Intersection) {
  const Domain a(Rect::line(10));
  const Domain b = Domain::from_points({Point::p1(3), Point::p1(12)});
  const Domain i = a.intersection(b);
  EXPECT_EQ(i.volume(), 1);
  EXPECT_TRUE(i.contains(Point::p1(3)));
}

TEST(DomainTest, DiagonalSliceIsSparse) {
  // 3-D diagonal wavefront, the DOM sweep launch-domain shape.
  std::vector<Point> wave;
  const int n = 4;
  for (int x = 0; x < n; ++x)
    for (int y = 0; y < n; ++y)
      for (int z = 0; z < n; ++z)
        if (x + y + z == 3) wave.push_back(Point::p3(x, y, z));
  const Domain d = Domain::from_points(wave);
  EXPECT_FALSE(d.dense());
  EXPECT_EQ(d.volume(), 10);  // C(3+2,2)
}

// ---------- BitVector ----------

TEST(BitVectorTest, SetTestClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_FALSE(bv.any());
  bv.set(0);
  bv.set(64);
  bv.set(129);
  EXPECT_TRUE(bv.test(0));
  EXPECT_TRUE(bv.test(64));
  EXPECT_TRUE(bv.test(129));
  EXPECT_FALSE(bv.test(1));
  EXPECT_EQ(bv.count(), 3u);
  bv.clear();
  EXPECT_FALSE(bv.any());
}

TEST(BitVectorTest, TestAndSet) {
  BitVector bv(10);
  EXPECT_FALSE(bv.test_and_set(3));
  EXPECT_TRUE(bv.test_and_set(3));
}

TEST(BitVectorTest, Intersects) {
  BitVector a(100), b(100);
  a.set(50);
  b.set(51);
  EXPECT_FALSE(a.intersects(b));
  b.set(50);
  EXPECT_TRUE(a.intersects(b));
}

// ---------- RegionForest ----------

TEST(RegionForestTest, IndexAndFieldSpaces) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(16));
  EXPECT_EQ(forest.domain(is).volume(), 16);
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f0 = forest.allocate_field(fs, sizeof(double), "x");
  const FieldId f1 = forest.allocate_field(fs, sizeof(int32_t), "flag");
  EXPECT_EQ(forest.field(fs, f0).size, sizeof(double));
  EXPECT_EQ(forest.field(fs, f1).name, "flag");
  EXPECT_EQ(forest.fields(fs).size(), 2u);
}

TEST(RegionForestTest, EqualPartition1D) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(10));
  const PartitionId p = partition_equal(forest, is, Rect::line(3));
  EXPECT_TRUE(forest.is_disjoint(p));
  EXPECT_TRUE(forest.verify_disjoint(p));
  // 10 into 3: sizes 4,3,3 and they tile the space.
  int64_t total = 0;
  for (const Point& c : forest.color_space(p))
    total += forest.domain(forest.subspace(p, c)).volume();
  EXPECT_EQ(total, 10);
  EXPECT_EQ(forest.domain(forest.subspace(p, Point::p1(0))).volume(), 4);
}

TEST(RegionForestTest, EqualPartition2D) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(8, 9)));
  const PartitionId p = partition_equal(forest, is, Rect::box2(2, 3));
  EXPECT_TRUE(forest.is_disjoint(p));
  int64_t total = 0;
  for (const Point& c : forest.color_space(p))
    total += forest.domain(forest.subspace(p, c)).volume();
  EXPECT_EQ(total, 72);
}

TEST(RegionForestTest, HaloPartitionIsAliased) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(12));
  const PartitionId blocks = partition_equal(forest, is, Rect::line(4));
  const PartitionId halos = partition_halo(forest, is, blocks, 1);
  EXPECT_FALSE(forest.is_disjoint(halos));
  EXPECT_FALSE(forest.verify_disjoint(halos));
  // Interior halo blocks are the 3-wide block grown by 1 on both sides.
  const Domain& h1 = forest.domain(forest.subspace(halos, Point::p1(1)));
  EXPECT_EQ(h1.bounds(), Rect(Point::p1(2), Point::p1(6)));
  // Boundary blocks clip to the parent.
  const Domain& h0 = forest.domain(forest.subspace(halos, Point::p1(0)));
  EXPECT_EQ(h0.bounds(), Rect(Point::p1(0), Point::p1(3)));
}

TEST(RegionForestTest, PartitionByColoring) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(20));
  const PartitionId p = partition_by_coloring(
      forest, is, Rect::line(4),
      [](const Point& pt) { return Point::p1(pt[0] % 4); });
  EXPECT_TRUE(forest.is_disjoint(p));
  const Domain& sub0 = forest.domain(forest.subspace(p, Point::p1(0)));
  EXPECT_EQ(sub0.volume(), 5);
  EXPECT_TRUE(sub0.contains(Point::p1(16)));
  EXPECT_FALSE(sub0.contains(Point::p1(17)));
}

TEST(RegionForestTest, MultiColoringMayAlias) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(10));
  const PartitionId p = partition_by_multi_coloring(
      forest, is, Rect::line(2), [](const Point& pt, std::vector<Point>& out) {
        out.push_back(Point::p1(0));
        if (pt[0] >= 5) out.push_back(Point::p1(1));
      });
  EXPECT_FALSE(forest.is_disjoint(p));
  EXPECT_EQ(forest.domain(forest.subspace(p, Point::p1(0))).volume(), 10);
  EXPECT_EQ(forest.domain(forest.subspace(p, Point::p1(1))).volume(), 5);
}

TEST(RegionForestTest, PartitionSubspaceMustStayInParent) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(10));
  EXPECT_THROW(forest.create_partition(is, Rect::line(1),
                                       {Domain(Rect(Point::p1(5), Point::p1(12)))},
                                       Disjointness::kAliased),
               RuntimeError);
}

TEST(RegionForestTest, SubregionViewsShareStorage) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(10));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId root = forest.create_region(is, fs);
  const PartitionId p = partition_equal(forest, is, Rect::line(2));
  const RegionId left = forest.subregion(root, p, Point::p1(0));
  const RegionId right = forest.subregion(root, p, Point::p1(1));
  EXPECT_NE(left, right);
  EXPECT_EQ(forest.field_data(left, f), forest.field_data(root, f));
  EXPECT_EQ(forest.field_data(right, f), forest.field_data(root, f));
  // Cached: same handle on repeat.
  EXPECT_EQ(forest.subregion(root, p, Point::p1(0)), left);
}

TEST(RegionForestTest, RegionsInterfere) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(10));
  const FieldSpaceId fs = forest.create_field_space();
  forest.allocate_field(fs, sizeof(double), "v");
  const RegionId r1 = forest.create_region(is, fs);
  const RegionId r2 = forest.create_region(is, fs);  // separate tree
  EXPECT_FALSE(forest.regions_interfere(r1, r2));
  const PartitionId p = partition_equal(forest, is, Rect::line(2));
  const RegionId a = forest.subregion(r1, p, Point::p1(0));
  const RegionId b = forest.subregion(r1, p, Point::p1(1));
  EXPECT_FALSE(forest.regions_interfere(a, b));  // disjoint siblings
  EXPECT_TRUE(forest.regions_interfere(a, r1));  // subregion vs root
}

TEST(RegionForestTest, AccessorReadWrite) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(4, 4)));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId root = forest.create_region(is, fs);
  {
    Accessor<double> w(forest, root, f, Privilege::kWrite);
    for (const Point& p : Rect::box2(4, 4)) w.write(p, static_cast<double>(p[0] * 10 + p[1]));
  }
  Accessor<double> r(forest, root, f, Privilege::kRead);
  EXPECT_DOUBLE_EQ(r.read(Point::p2(3, 2)), 32.0);
}

TEST(RegionForestTest, AccessorReduction) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(1));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "sum");
  const RegionId root = forest.create_region(is, fs);
  Accessor<double> red(forest, root, f, Privilege::kReduce, ReductionOp::kSum);
  red.reduce(Point::p1(0), 2.0);
  red.reduce(Point::p1(0), 3.5);
  Accessor<double> r(forest, root, f, Privilege::kRead);
  EXPECT_DOUBLE_EQ(r.read(Point::p1(0)), 5.5);
}

TEST(RegionForestTest, AccessorTypeSizeMismatchThrows) {
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(4));
  const FieldSpaceId fs = forest.create_field_space();
  const FieldId f = forest.allocate_field(fs, sizeof(double), "v");
  const RegionId root = forest.create_region(is, fs);
  EXPECT_THROW((Accessor<int32_t>(forest, root, f, Privilege::kRead)), RuntimeError);
}

// ---------- RectBVH ----------

TEST(RectBVHTest, EmptyAndSingle) {
  RectBVH bvh;
  int hits = 0;
  bvh.query(Rect::line(10), [&](uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);

  bvh.build({{Rect::line(5), 42}});
  bvh.query(Rect(Point::p1(4), Point::p1(8)), [&](uint32_t id) {
    ++hits;
    EXPECT_EQ(id, 42u);
  });
  EXPECT_EQ(hits, 1);
}

TEST(RectBVHTest, MatchesBruteForceProperty) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::pair<Rect, uint32_t>> items;
    const int n = static_cast<int>(rng.next_in(1, 200));
    for (int i = 0; i < n; ++i) {
      const int64_t x = rng.next_in(-100, 100), y = rng.next_in(-100, 100);
      items.emplace_back(
          Rect(Point::p2(x, y), Point::p2(x + rng.next_in(0, 20), y + rng.next_in(0, 20))),
          static_cast<uint32_t>(i));
    }
    RectBVH bvh;
    auto copy = items;
    bvh.build(std::move(copy));

    for (int q = 0; q < 20; ++q) {
      const int64_t x = rng.next_in(-110, 110), y = rng.next_in(-110, 110);
      const Rect query(Point::p2(x, y),
                       Point::p2(x + rng.next_in(0, 30), y + rng.next_in(0, 30)));
      std::vector<uint32_t> got;
      bvh.query(query, [&](uint32_t id) { got.push_back(id); });
      std::vector<uint32_t> expected;
      for (const auto& [rect, id] : items)
        if (rect.overlaps(query)) expected.push_back(id);
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(RectBVHTest, PointQueryVisitsLogarithmically) {
  // 4096 disjoint unit intervals; a point query should visit O(log n)
  // nodes, far fewer than n.
  std::vector<std::pair<Rect, uint32_t>> items;
  for (int64_t i = 0; i < 4096; ++i)
    items.emplace_back(Rect(Point::p1(2 * i), Point::p1(2 * i)),
                       static_cast<uint32_t>(i));
  RectBVH bvh;
  bvh.build(std::move(items));
  int hits = 0;
  bvh.query(Rect(Point::p1(1000), Point::p1(1000)), [&](uint32_t) { ++hits; });
  EXPECT_EQ(hits, 1);
  EXPECT_LT(bvh.last_query_visits(), 200u);  // ~12 levels * small constants
}

TEST(DependentPartitioningTest, PreimagePartitionsEdgesByNodeOwner) {
  // 12 "edges" each pointing at a node; nodes partitioned into 3 blocks of
  // 4; preimage groups edges by the block their target lives in.
  RegionForest forest;
  const IndexSpaceId nodes = forest.create_index_space(Domain::line(12));
  const IndexSpaceId edges = forest.create_index_space(Domain::line(12));
  const PartitionId node_blocks = partition_equal(forest, nodes, Rect::line(3));
  const PartitionId by_target = partition_preimage(
      forest, edges, node_blocks,
      [](const Point& e) { return Point::p1((e[0] * 5) % 12); });
  EXPECT_TRUE(forest.is_disjoint(by_target));
  // Every edge lands in exactly one bucket.
  int64_t total = 0;
  for (const Point& c : forest.color_space(by_target))
    total += forest.domain(forest.subspace(by_target, c)).volume();
  EXPECT_EQ(total, 12);
  // Edge 1 points at node 5 -> block 1.
  EXPECT_TRUE(forest.domain(forest.subspace(by_target, Point::p1(1)))
                  .contains(Point::p1(1)));
}

TEST(DependentPartitioningTest, ImageComputesTouchedNodes) {
  RegionForest forest;
  const IndexSpaceId nodes = forest.create_index_space(Domain::line(12));
  const IndexSpaceId edges = forest.create_index_space(Domain::line(6));
  const PartitionId edge_blocks = partition_equal(forest, edges, Rect::line(2));
  // Edge e touches nodes 2e and 2e+1; block 0 holds edges {0,1,2}.
  const PartitionId touched = partition_image_multi(
      forest, nodes, edge_blocks, [](const Point& e, std::vector<Point>& out) {
        out.push_back(Point::p1(2 * e[0]));
        out.push_back(Point::p1(2 * e[0] + 1));
      });
  const Domain& t0 = forest.domain(forest.subspace(touched, Point::p1(0)));
  EXPECT_EQ(t0.volume(), 6);
  EXPECT_TRUE(t0.contains(Point::p1(5)));
  EXPECT_FALSE(t0.contains(Point::p1(6)));
  EXPECT_TRUE(forest.is_disjoint(touched));  // this image happens to be disjoint
}

TEST(DependentPartitioningTest, OverlappingImageIsAliased) {
  RegionForest forest;
  const IndexSpaceId range = forest.create_index_space(Domain::line(4));
  const IndexSpaceId domain = forest.create_index_space(Domain::line(8));
  const PartitionId blocks = partition_equal(forest, domain, Rect::line(2));
  // Every domain point maps to node 0: images overlap across colors.
  const PartitionId img = partition_image(forest, range, blocks,
                                          [](const Point&) { return Point::p1(0); });
  EXPECT_FALSE(forest.is_disjoint(img));
}

TEST(DependentPartitioningTest, ImageRejectsOutOfRangePoints) {
  RegionForest forest;
  const IndexSpaceId range = forest.create_index_space(Domain::line(4));
  const IndexSpaceId domain = forest.create_index_space(Domain::line(8));
  const PartitionId blocks = partition_equal(forest, domain, Rect::line(2));
  EXPECT_THROW(partition_image(forest, range, blocks,
                               [](const Point& p) { return Point::p1(p[0] + 100); }),
               RuntimeError);
}

TEST(DependentPartitioningTest, PreimageRoundTripsImage) {
  // Property: for a function f and disjoint range partition P,
  // subspace(preimage(f, P), c) maps under f into subspace(P, c).
  RegionForest forest;
  Rng rng(17);
  const IndexSpaceId range = forest.create_index_space(Domain::line(20));
  const IndexSpaceId domain = forest.create_index_space(Domain::line(40));
  const PartitionId range_blocks = partition_equal(forest, range, Rect::line(5));
  std::vector<int64_t> targets;
  for (int i = 0; i < 40; ++i) targets.push_back(rng.next_in(0, 19));
  const PartitionId pre = partition_preimage(
      forest, domain, range_blocks,
      [&targets](const Point& p) {
        return Point::p1(targets[static_cast<std::size_t>(p[0])]);
      });
  for (const Point& c : forest.color_space(pre)) {
    const Domain& bucket = forest.domain(forest.subspace(pre, c));
    const Domain& target = forest.domain(forest.subspace(range_blocks, c));
    bucket.for_each([&](const Point& x) {
      EXPECT_TRUE(target.contains(
          Point::p1(targets[static_cast<std::size_t>(x[0])])));
    });
  }
}

// Property: partition_equal tiles the parent exactly, for many shapes.
class EqualPartitionProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(EqualPartitionProperty, TilesExactly) {
  const auto [n, pieces] = GetParam();
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(n));
  const PartitionId p = partition_equal(forest, is, Rect::line(pieces));
  EXPECT_TRUE(forest.verify_disjoint(p));
  int64_t total = 0;
  int64_t max_sz = 0, min_sz = n;
  for (const Point& c : forest.color_space(p)) {
    const int64_t v = forest.domain(forest.subspace(p, c)).volume();
    total += v;
    max_sz = std::max(max_sz, v);
    min_sz = std::min(min_sz, v);
  }
  EXPECT_EQ(total, n);
  EXPECT_LE(max_sz - min_sz, 1);  // balanced
}

INSTANTIATE_TEST_SUITE_P(Shapes, EqualPartitionProperty,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(7, 3),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(100, 7),
                                           std::make_tuple(1024, 32),
                                           std::make_tuple(5, 5)));

// Property: halo partitions always contain their block.
class HaloContainsBlockProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(HaloContainsBlockProperty, HaloContainsBlock) {
  const auto [n, pieces, radius] = GetParam();
  RegionForest forest;
  const IndexSpaceId is = forest.create_index_space(Domain::line(n));
  const PartitionId blocks = partition_equal(forest, is, Rect::line(pieces));
  const PartitionId halos = partition_halo(forest, is, blocks, radius);
  for (const Point& c : forest.color_space(blocks)) {
    const Domain& block = forest.domain(forest.subspace(blocks, c));
    const Domain& halo = forest.domain(forest.subspace(halos, c));
    EXPECT_TRUE(halo.contains_domain(block));
    EXPECT_LE(halo.volume(), block.volume() + 2 * radius);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HaloContainsBlockProperty,
                         ::testing::Values(std::make_tuple(12, 4, 1),
                                           std::make_tuple(100, 10, 2),
                                           std::make_tuple(64, 8, 3),
                                           std::make_tuple(9, 3, 0)));

}  // namespace
}  // namespace idxl
