#include "service/client.hpp"

#include <utility>

#include "runtime/serialize.hpp"
#include "support/error.hpp"

namespace idxl::service {

ServiceClient ServiceClient::connect_tcp(const std::string& host, uint16_t port,
                                         ClientHello hello) {
  return ServiceClient(net::Socket::connect_tcp(host, port), std::move(hello));
}

ServiceClient ServiceClient::connect_unix(const std::string& path,
                                          ClientHello hello) {
  return ServiceClient(net::Socket::connect_unix(path), std::move(hello));
}

ServiceClient::ServiceClient(net::Socket sock, ClientHello hello)
    : sock_(std::move(sock)) {
  send_frame(Msg::kHello, encode_client_hello(hello));
  for (;;) {
    net::Frame f = next_frame();
    const Msg kind = static_cast<Msg>(f.type);
    if (kind == Msg::kPing) continue;
    if (kind == Msg::kError) {
      const ErrorMsg e = decode_error(f.payload);
      throw ServiceError(e.code, "session refused: " + e.message);
    }
    IDXL_REQUIRE(kind == Msg::kWelcome, "service handshake: unexpected frame");
    welcome_ = decode_welcome(f.payload);
    break;
  }
  for (std::size_t i = 0; i < welcome_.tasks.size(); ++i)
    task_index_.emplace(welcome_.tasks[i], static_cast<TaskFnId>(i));
}

TaskFnId ServiceClient::task_id(const std::string& name) const {
  auto it = task_index_.find(name);
  if (it == task_index_.end())
    throw ServiceError(Err::kUnknownTask, "task not exported: " + name);
  return it->second;
}

// --- mirror-forest setup --------------------------------------------------

IndexSpaceId ServiceClient::create_index_space(Domain domain) {
  return mirror_.create_index_space(std::move(domain));
}
FieldSpaceId ServiceClient::create_field_space() {
  return mirror_.create_field_space();
}
FieldId ServiceClient::allocate_field(FieldSpaceId fs, std::size_t size,
                                      std::string name) {
  return mirror_.allocate_field(fs, size, std::move(name));
}
PartitionId ServiceClient::create_partition(IndexSpaceId parent,
                                            const Rect& color_space,
                                            std::vector<Domain> subspaces,
                                            Disjointness d) {
  return mirror_.create_partition(parent, color_space, std::move(subspaces), d);
}
RegionId ServiceClient::create_region(IndexSpaceId is, FieldSpaceId fs) {
  return mirror_.create_region(is, fs);
}
RegionId ServiceClient::subregion(RegionId parent, PartitionId p,
                                  const Point& color) {
  return mirror_.subregion(parent, p, color);
}

void ServiceClient::flush_setup() {
  const std::vector<SetupOp>& journal = mirror_.setup_journal();
  if (setup_sent_ == journal.size()) return;
  const std::vector<SetupOp> batch(journal.begin() + setup_sent_,
                                   journal.end());
  const uint64_t tag = next_tag_++;
  send_frame(Msg::kSetup, encode_tagged(tag, encode_setup_ops(batch)));
  while (setup_acks_.find(tag) == setup_acks_.end()) pump_one();
  SetupAck ack = std::move(setup_acks_[tag]);
  setup_acks_.erase(tag);
  if (ack.code != Err::kOk)
    throw ServiceError(ack.code, "setup rejected: " + ack.error);
  setup_sent_ = journal.size();
}

// --- launches -------------------------------------------------------------

uint64_t ServiceClient::launch(const IndexLauncher& launcher) {
  flush_setup();
  const uint64_t tag = next_tag_++;
  send_frame(Msg::kLaunch, encode_tagged(tag, serialize_launcher(launcher)));
  ++outstanding_;
  return tag;
}

void ServiceClient::launch_checked(const IndexLauncher& launcher) {
  const LaunchAck ack = await_ack(launch(launcher));
  if (ack.code != Err::kOk)
    throw ServiceError(ack.code, "launch rejected: " + ack.error);
}

uint64_t ServiceClient::single(const TaskLauncher& launcher) {
  flush_setup();
  const uint64_t tag = next_tag_++;
  send_frame(Msg::kSingle,
             encode_tagged(tag, serialize_task_launcher(launcher)));
  ++outstanding_;
  return tag;
}

void ServiceClient::single_checked(const TaskLauncher& launcher) {
  const LaunchAck ack = await_ack(single(launcher));
  if (ack.code != Err::kOk)
    throw ServiceError(ack.code, "launch rejected: " + ack.error);
}

void ServiceClient::fill(RegionId r, FieldId f, const void* pattern,
                         std::size_t size) {
  flush_setup();
  Fill msg;
  msg.tag = next_tag_++;
  msg.region = r.id;
  msg.field = f;
  msg.pattern.assign(static_cast<const std::byte*>(pattern),
                     static_cast<const std::byte*>(pattern) + size);
  send_frame(Msg::kFill, encode_fill(msg));
  ++outstanding_;
  const LaunchAck ack = await_ack(msg.tag);
  if (ack.code != Err::kOk)
    throw ServiceError(ack.code, "fill rejected: " + ack.error);
}

LaunchAck ServiceClient::await_ack(uint64_t tag) {
  while (acks_.find(tag) == acks_.end()) pump_one();
  LaunchAck ack = std::move(acks_[tag]);
  acks_.erase(tag);
  return ack;
}

FaultReport ServiceClient::fence() {
  flush_setup();
  const uint64_t tag = next_tag_++;
  send_frame(Msg::kFence, encode_fence(tag));
  while (fence_acks_.find(tag) == fence_acks_.end()) pump_one();
  FenceAck ack = std::move(fence_acks_[tag]);
  fence_acks_.erase(tag);
  return std::move(ack.report);
}

std::vector<std::byte> ServiceClient::read_field(RegionId r, FieldId f) {
  flush_setup();
  ReadReq req;
  req.tag = next_tag_++;
  req.region = r.id;
  req.field = f;
  send_frame(Msg::kRead, encode_read(req));
  while (datas_.find(req.tag) == datas_.end()) pump_one();
  Data d = std::move(datas_[req.tag]);
  datas_.erase(req.tag);
  if (d.code != Err::kOk)
    throw ServiceError(d.code, "read rejected: " + d.error);
  return std::move(d.bytes);
}

void ServiceClient::goodbye() {
  send_frame(Msg::kGoodbye, {});
  while (!bye_acked_) pump_one();
}

// --- wire plumbing --------------------------------------------------------

void ServiceClient::send_frame(Msg type, const std::vector<std::byte>& payload) {
  const std::vector<std::byte> wire =
      net::encode_frame(static_cast<uint8_t>(type), payload);
  sock_.write_all(wire.data(), wire.size());
}

net::Frame ServiceClient::next_frame() {
  net::Frame f;
  while (!reader_.poll(f)) {
    std::byte buf[16384];
    const std::size_t n = sock_.read_some(buf, sizeof(buf));
    if (n == 0)
      throw ServiceError(Err::kEvicted, "server closed the connection");
    reader_.feed(buf, n);
  }
  return f;
}

void ServiceClient::pump_one() {
  net::Frame f = next_frame();
  switch (static_cast<Msg>(f.type)) {
    case Msg::kLaunchAck: {
      LaunchAck ack = decode_launch_ack(f.payload);
      if (outstanding_ > 0) --outstanding_;
      if (ack.code != Err::kOk) ++rejects_;
      acks_.emplace(ack.tag, std::move(ack));
      break;
    }
    case Msg::kSetupAck: {
      SetupAck ack = decode_setup_ack(f.payload);
      setup_acks_.emplace(ack.tag, std::move(ack));
      break;
    }
    case Msg::kFenceAck: {
      FenceAck ack = decode_fence_ack(f.payload);
      fence_acks_.emplace(ack.tag, std::move(ack));
      break;
    }
    case Msg::kData: {
      Data d = decode_data(f.payload);
      datas_.emplace(d.tag, std::move(d));
      break;
    }
    case Msg::kByeAck:
      bye_acked_ = true;
      break;
    case Msg::kError: {
      const ErrorMsg e = decode_error(f.payload);
      throw ServiceError(e.code, e.message.empty() ? err_name(e.code)
                                                   : e.message);
    }
    case Msg::kPing:
      break;
    default:
      throw ServiceError(Err::kBadMessage, "unexpected frame from server");
  }
}

}  // namespace idxl::service
