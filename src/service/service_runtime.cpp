#include "service/service_runtime.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "dist/task_registry.hpp"
#include "runtime/runtime.hpp"
#include "runtime/serialize.hpp"
#include "support/error.hpp"

namespace idxl::service {

namespace {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool launch_class(Msg m) {
  return m == Msg::kLaunch || m == Msg::kSingle || m == Msg::kFill;
}

/// Every client->server request payload opens with a u64 tag.
uint64_t peek_tag(const std::vector<std::byte>& payload) {
  Deserializer d(payload);
  return d.get_u64();
}

}  // namespace

ServiceRuntime::ServiceRuntime(std::unique_ptr<RuntimeApi> backend,
                               ServiceConfig config)
    : config_(config),
      backend_(std::move(backend)),
      recorder_(config.enable_flight_recorder, config.flight_recorder_capacity) {
  IDXL_REQUIRE(backend_ != nullptr, "ServiceRuntime needs a backend");
  net_obs_.metrics = &metrics_;
  net_obs_.recorder = config_.enable_flight_recorder ? &recorder_ : nullptr;
  net_obs_.type_name = msg_name;

  sessions_opened_ = metrics_.counter("idxl_service_sessions_total",
                                      "session lifecycle events by kind",
                                      {{"event", "opened"}});
  sessions_closed_ =
      metrics_.counter("idxl_service_sessions_total", "", {{"event", "closed"}});
  evictions_count_ =
      metrics_.counter("idxl_service_evictions_total", "forced session teardowns");
  epochs_ = metrics_.counter("idxl_service_epochs_total",
                             "backend flush epochs (wait_all + retire)");
  flush_ns_ = metrics_.histogram("idxl_service_flush_ns", "epoch flush duration");
  active_gauge_ =
      metrics_.gauge("idxl_service_active_sessions", "live client sessions");
  queue_depth_gauge_ = metrics_.gauge("idxl_service_queue_depth",
                                      "admitted items awaiting the scheduler");
  unretired_gauge_ = metrics_.gauge("idxl_service_unretired_launches",
                                    "issued launches not yet retired");
  metrics_.add_collector([this] {
    std::unique_lock<std::mutex> lk(mu_);
    active_gauge_.set(static_cast<int64_t>(sessions_.size()));
    queue_depth_gauge_.set(static_cast<int64_t>(queue_.size()));
    unretired_gauge_.set(static_cast<int64_t>(unretired_));
  });

  // The scheduler thread is the backend's single issuing thread for its
  // whole life — including task registration, which must precede the first
  // launch on every backend. The constructor blocks until the table is in.
  std::mutex ready_mu;
  std::condition_variable ready_cv;
  bool ready = false;
  scheduler_ = std::thread([this, &ready_mu, &ready_cv, &ready] {
    for (auto& [name, fn] : dist::all_named_tasks()) {
      task_names_.push_back(name);
      task_ids_.push_back(backend_->register_task(name, fn));
    }
    {
      std::lock_guard<std::mutex> lk(ready_mu);
      ready = true;
    }
    ready_cv.notify_all();
    scheduler_main();
  });
  std::unique_lock<std::mutex> lk(ready_mu);
  ready_cv.wait(lk, [&ready] { return ready; });
}

ServiceRuntime::~ServiceRuntime() {
  // Stop accepting first so drain() converges.
  {
    std::lock_guard<std::mutex> lk(listen_mu_);
    for (int fd : listener_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : acceptors_)
    if (t.joinable()) t.join();
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // Every session is closed; destroy the connection objects (joins their
  // sender/receiver threads).
  std::lock_guard<std::mutex> lk(conns_mu_);
  conns_.clear();
}

uint16_t ServiceRuntime::listen_tcp(uint16_t port) {
  net::Socket l = net::Socket::listen_tcp(port);
  const uint16_t bound = l.bound_port();
  {
    std::lock_guard<std::mutex> lk(listen_mu_);
    listener_fds_.push_back(l.fd());
  }
  acceptors_.emplace_back(
      [this, l = std::move(l)]() mutable { accept_main(std::move(l)); });
  return bound;
}

void ServiceRuntime::listen_unix(const std::string& path) {
  net::Socket l = net::Socket::listen_unix(path);
  {
    std::lock_guard<std::mutex> lk(listen_mu_);
    listener_fds_.push_back(l.fd());
  }
  acceptors_.emplace_back(
      [this, l = std::move(l)]() mutable { accept_main(std::move(l)); });
}

void ServiceRuntime::accept_main(net::Socket listener) {
  for (;;) {
    net::Socket client;
    try {
      client = listener.accept();
    } catch (const RuntimeError&) {
      return;  // listener shut down
    }
    if (!client.valid()) return;
    serve_socket(std::move(client));
  }
}

void ServiceRuntime::serve_socket(net::Socket sock) {
  auto c = std::make_unique<Conn>();
  c->conn = std::make_unique<net::Connection>(std::move(sock), "client", net_obs_);
  Conn* raw = c.get();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.push_back(std::move(c));
  }
  raw->conn->start_recv(
      [this, raw](net::Frame& f) { on_frame(*raw, f); },
      [this, raw](const std::string& err) { on_close(*raw, err); });
}

void ServiceRuntime::on_frame(Conn& c, net::Frame& frame) {
  const Msg kind = static_cast<Msg>(frame.type);
  if (kind == Msg::kPing) return;
  if (c.session == nullptr) {
    handle_hello(c, frame);
    return;
  }
  std::shared_ptr<Session>& s = c.session;
  if (launch_class(kind)) {
    admit(c, kind, frame);
    return;
  }
  if (kind == Msg::kSetup || kind == Msg::kFence || kind == Msg::kRead ||
      kind == Msg::kGoodbye) {
    std::lock_guard<std::mutex> lk(mu_);
    if (s->dead.load(std::memory_order_acquire) || !queue_.has_session(s->sid))
      return;  // teardown racing the last frames; the kError frame answers
    // Cost 0: control messages must not distort the weighted launch
    // schedule (a setup-heavy session would otherwise start its launches
    // with a banked or spent pass).
    queue_.push(s->sid, WorkItem{kind, std::move(frame.payload), now_ns()},
                /*cost=*/0);
    cv_.notify_one();
    return;
  }
  // Unknown type from an established session: answer and evict.
  try {
    c.conn->send(static_cast<uint8_t>(Msg::kError),
                 encode_error({Err::kBadMessage, "unknown message type"}));
  } catch (const RuntimeError&) {
  }
  evict(s->sid, "protocol violation");
}

void ServiceRuntime::handle_hello(Conn& c, const net::Frame& frame) {
  const auto refuse = [&](Err code, const std::string& why) {
    try {
      c.conn->send(static_cast<uint8_t>(Msg::kError), encode_error({code, why}));
      c.conn->drain();
    } catch (const RuntimeError&) {
    }
    c.conn->shutdown_read();
  };
  if (static_cast<Msg>(frame.type) != Msg::kHello) {
    refuse(Err::kBadMessage, "expected hello");
    return;
  }
  ClientHello hello;
  try {
    hello = decode_client_hello(frame.payload);
  } catch (const RuntimeError& e) {
    refuse(Err::kBadMessage, e.what());
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    refuse(Err::kDraining, "server is draining");
    return;
  }
  auto s = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (sessions_.size() >= config_.max_sessions) {
      // fall through to refuse outside the lock
      s = nullptr;
    } else {
      s->sid = next_sid_++;
      s->tenant = hello.tenant.empty()
                      ? "client-" + std::to_string(s->sid)
                      : hello.tenant;
      s->weight = std::clamp<uint32_t>(hello.weight, 1, config_.quota.max_weight);
      s->quota = config_.quota;
      s->conn = c.conn.get();
      sessions_.emplace(s->sid, s);
      queue_.add_session(s->sid, s->weight);
    }
  }
  if (s == nullptr) {
    metrics_
        .counter("idxl_service_admission_rejects_total",
                 "admissions refused, by tenant and reason",
                 {{"reason", err_name(Err::kQuotaSessions)},
                  {"tenant", hello.tenant.empty() ? "unknown" : hello.tenant}})
        .inc();
    refuse(Err::kQuotaSessions, "server at max_sessions");
    return;
  }
  s->queue_wait = metrics_.histogram("idxl_task_queue_wait_ns",
                                     "admission -> issue scheduler latency",
                                     {{"tenant", s->tenant}});
  s->launches = metrics_.counter("idxl_service_launches_total",
                                 "launches issued to the backend",
                                 {{"tenant", s->tenant}});
  c.session = s;
  sessions_opened_.inc();
  record_session_event(obs::LifecycleEvent::kSessionOpen, s->sid);
  Welcome w;
  w.session = s->sid;
  w.tenant = s->tenant;
  w.weight = s->weight;
  w.max_in_flight = s->quota.max_in_flight;
  w.max_region_bytes = s->quota.max_region_bytes;
  w.tasks = task_names_;
  try {
    c.conn->send(static_cast<uint8_t>(Msg::kWelcome), encode_welcome(w));
  } catch (const RuntimeError&) {
  }
}

void ServiceRuntime::admit(Conn& c, Msg kind, net::Frame& frame) {
  Session& s = *c.session;
  uint64_t tag = 0;
  try {
    tag = peek_tag(frame.payload);
  } catch (const RuntimeError&) {
    try {
      c.conn->send(static_cast<uint8_t>(Msg::kError),
                   encode_error({Err::kBadMessage, "truncated request"}));
    } catch (const RuntimeError&) {
    }
    evict(s.sid, "truncated request");
    return;
  }
  if (s.dead.load(std::memory_order_acquire)) {
    reject(s, *c.conn, tag, Err::kEvicted, "session closed");
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    reject(s, *c.conn, tag, Err::kDraining, "server is draining");
    return;
  }
  // In-flight quota, enforced here so a flooding client gets an immediate
  // typed answer instead of unbounded queue growth.
  uint32_t cur = s.in_flight.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= s.quota.max_in_flight) {
      metrics_
          .counter("idxl_service_quota_trips_total",
                   "quota enforcement events, by tenant and kind",
                   {{"kind", "in_flight"}, {"tenant", s.tenant}})
          .inc();
      reject(s, *c.conn, tag, Err::kQuotaInFlight, "in-flight quota reached");
      return;
    }
    if (s.in_flight.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel))
      break;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.dead.load(std::memory_order_acquire) || !queue_.has_session(s.sid)) {
      s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    queue_.push(s.sid, WorkItem{kind, std::move(frame.payload), now_ns()});
  }
  cv_.notify_one();
}

void ServiceRuntime::reject(Session& s, net::Connection& conn, uint64_t tag,
                            Err code, const std::string& detail) {
  metrics_
      .counter("idxl_service_admission_rejects_total",
               "admissions refused, by tenant and reason",
               {{"reason", err_name(code)}, {"tenant", s.tenant}})
      .inc();
  record_session_event(obs::LifecycleEvent::kRejected, s.sid,
                       static_cast<uint64_t>(code));
  LaunchAck ack;
  ack.tag = tag;
  ack.code = code;
  ack.error = detail;
  try {
    conn.send(static_cast<uint8_t>(Msg::kLaunchAck), encode_launch_ack(ack));
  } catch (const RuntimeError&) {
  }
}

void ServiceRuntime::on_close(Conn& c, const std::string&) {
  if (c.session != nullptr && !c.session->dead.load(std::memory_order_acquire))
    evict(c.session->sid, "");  // peer vanished; silent teardown
  c.gone.store(true, std::memory_order_release);
}

bool ServiceRuntime::evict(uint64_t session, std::string reason) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    if (it->second->dead.exchange(true, std::memory_order_acq_rel))
      return true;  // teardown already queued
    evictions_.emplace_back(session, std::move(reason));
  }
  cv_.notify_all();
  return true;
}

void ServiceRuntime::drain() {
  draining_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lk(mu_);
  cv_.notify_all();
  idle_cv_.wait(lk, [this] {
    return sessions_.empty() && queue_.empty() && unretired_ == 0 &&
           evictions_.empty();
  });
}

std::size_t ServiceRuntime::active_sessions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

std::size_t ServiceRuntime::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ServiceRuntime::pause_scheduler() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void ServiceRuntime::resume_scheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServiceRuntime::record_session_event(obs::LifecycleEvent ev, uint64_t sid,
                                          uint64_t edge) {
  if (!config_.enable_flight_recorder) return;
  obs::FlightEvent e;
  e.kind = ev;
  e.seq = sid;
  e.edge = edge;
  recorder_.record(e);
}

// --- scheduler ----------------------------------------------------------

void ServiceRuntime::scheduler_main() {
  for (;;) {
    std::shared_ptr<Session> s;
    WorkItem item;
    bool have_item = false;
    bool do_flush = false;
    bool do_drain_closeout = false;
    std::vector<std::pair<uint64_t, std::string>> evs;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] {
        if (stop_ || !evictions_.empty()) return true;
        if (paused_) return false;
        if (!queue_.empty()) return true;
        if (unretired_ > 0 || fence_or_bye_pending_) return true;
        return draining_.load(std::memory_order_acquire) && !sessions_.empty();
      });
      if (stop_) return;
      if (!evictions_.empty()) {
        evs.swap(evictions_);
      } else if (!queue_.empty()) {
        uint64_t sid = 0;
        have_item = queue_.pop(&sid, &item);
        if (have_item) {
          auto it = sessions_.find(sid);
          if (it != sessions_.end()) s = it->second;
        }
      } else if (unretired_ > 0 || fence_or_bye_pending_) {
        do_flush = true;
      } else {
        do_drain_closeout = true;
      }
    }
    for (auto& [sid, reason] : evs) finish_eviction(sid, reason, true);
    if (have_item && s != nullptr) process(s, std::move(item));
    if (do_flush) flush_epoch();
    if (do_drain_closeout) {
      std::vector<std::shared_ptr<Session>> all;
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto& [sid, sess] : sessions_) {
          sess->dead.store(true, std::memory_order_release);
          all.push_back(sess);
        }
      }
      for (auto& sess : all) {
        send_safe(*sess, Msg::kError,
                  encode_error({Err::kDraining, "server draining"}));
        sess->conn->close();
        std::lock_guard<std::mutex> lk(mu_);
        close_session_locked(sess);
      }
      idle_cv_.notify_all();
      reap_conns();
    }
  }
}

void ServiceRuntime::process(const std::shared_ptr<Session>& sp, WorkItem item) {
  Session& s = *sp;
  s.queue_wait.observe(now_ns() - item.enqueue_ns);
  try {
    switch (item.kind) {
      case Msg::kSetup: {
        auto [tag, body] = decode_tagged(item.payload);
        do_setup(s, tag, body);
        break;
      }
      case Msg::kLaunch:
      case Msg::kSingle: {
        auto [tag, body] = decode_tagged(item.payload);
        do_launch(s, item.kind, tag, body);
        break;
      }
      case Msg::kFill:
        do_fill(s, decode_fill(item.payload));
        break;
      case Msg::kFence: {
        s.pending_fences.push_back(decode_fence(item.payload));
        std::lock_guard<std::mutex> lk(mu_);
        fence_or_bye_pending_ = true;
        break;
      }
      case Msg::kRead:
        do_read(s, decode_read(item.payload));
        break;
      case Msg::kGoodbye: {
        s.bye_pending = true;
        std::lock_guard<std::mutex> lk(mu_);
        fence_or_bye_pending_ = true;
        break;
      }
      default:
        break;
    }
  } catch (const RuntimeError& e) {
    // A payload that passed the receive thread's tag peek but fails full
    // decode here: answer once, then tear the session down.
    send_safe(s, Msg::kError,
              encode_error({Err::kBadMessage, std::string("bad payload: ") + e.what()}));
    if (launch_class(item.kind)) s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    evict(s.sid, "undecodable payload");
  }
}

Err ServiceRuntime::translate_index(Session& s, IndexLauncher& l,
                                    std::string* why) {
  if (l.task >= task_ids_.size()) {
    *why = "task index " + std::to_string(l.task) + " out of range";
    return Err::kUnknownTask;
  }
  l.task = task_ids_[l.task];
  for (ProjectedArg& a : l.args) {
    if (a.parent.id >= s.region_map.size() ||
        a.partition.id >= s.part_map.size()) {
      *why = "region/partition handle outside this session's namespace";
      return Err::kForeignRegion;
    }
    a.parent.id = s.region_map[a.parent.id];
    a.partition.id = s.part_map[a.partition.id];
  }
  return Err::kOk;
}

Err ServiceRuntime::translate_single(Session& s, TaskLauncher& l,
                                     std::string* why) {
  if (l.task >= task_ids_.size()) {
    *why = "task index " + std::to_string(l.task) + " out of range";
    return Err::kUnknownTask;
  }
  l.task = task_ids_[l.task];
  for (RegionArg& a : l.args) {
    if (a.region.id >= s.region_map.size()) {
      *why = "region handle outside this session's namespace";
      return Err::kForeignRegion;
    }
    a.region.id = s.region_map[a.region.id];
  }
  return Err::kOk;
}

void ServiceRuntime::do_launch(Session& s, Msg kind, uint64_t tag,
                               const std::vector<std::byte>& body) {
  const auto fail = [&](Err code, const std::string& why) {
    reject(s, *s.conn, tag, code, why);
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  };
  std::string why;
  LaunchResult result;
  try {
    if (kind == Msg::kLaunch) {
      IndexLauncher l = deserialize_launcher(body);
      const Err code = translate_index(s, l, &why);
      if (code != Err::kOk) return fail(code, why);
      result = backend_->execute_index(l);
    } else {
      TaskLauncher l = deserialize_task_launcher(body);
      const Err code = translate_single(s, l, &why);
      if (code != Err::kOk) return fail(code, why);
      result = backend_->execute(l);
    }
  } catch (const RuntimeError& e) {
    return fail(Err::kBackend, e.what());
  }
  s.epoch_issued.push_back(result.launch_id);
  s.launches.inc();
  record_session_event(obs::LifecycleEvent::kAdmitted, s.sid, result.launch_id);
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++unretired_;
    flush_now = unretired_ >= config_.epoch_max_unretired;
  }
  LaunchAck ack;
  ack.tag = tag;
  ack.code = Err::kOk;
  ack.launch = result.launch_id;
  send_safe(s, Msg::kLaunchAck, encode_launch_ack(ack));
  if (flush_now) flush_epoch();
}

void ServiceRuntime::do_fill(Session& s, const Fill& f) {
  const auto fail = [&](Err code, const std::string& why) {
    reject(s, *s.conn, f.tag, code, why);
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  };
  if (f.region >= s.region_map.size())
    return fail(Err::kForeignRegion, "region handle outside this session");
  try {
    backend_->fill_bytes_region(RegionId{s.region_map[f.region]}, f.field,
                                f.pattern.data(), f.pattern.size());
  } catch (const RuntimeError& e) {
    return fail(Err::kBackend, e.what());
  }
  // Fills complete within the call (each backend fences or issues its own
  // internal task); retire immediately.
  s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  LaunchAck ack;
  ack.tag = f.tag;
  ack.code = Err::kOk;
  send_safe(s, Msg::kLaunchAck, encode_launch_ack(ack));
}

void ServiceRuntime::do_read(Session& s, const ReadReq& r) {
  Data d;
  d.tag = r.tag;
  if (r.region >= s.region_map.size()) {
    d.code = Err::kForeignRegion;
    d.error = "region handle outside this session";
    return send_safe(s, Msg::kData, encode_data(d));
  }
  // Retire outstanding launches first so the read observes their writes
  // (and pending fences get answered rather than waiting behind the read).
  flush_epoch();
  try {
    backend_->sync_for_read();
    RegionForest& forest = backend_->forest();
    const RegionId rid{s.region_map[r.region]};
    const RegionInfo& info = forest.region(rid);
    IDXL_REQUIRE(info.root == info.handle, "read requires a root region");
    const FieldInfo& fi = forest.field(info.fspace, r.field);
    const std::byte* p = forest.field_data(rid, r.field);
    const auto vol =
        static_cast<std::size_t>(forest.storage_bounds(rid).volume());
    d.bytes.assign(p, p + vol * fi.size);
  } catch (const RuntimeError& e) {
    d.code = Err::kBackend;
    d.error = e.what();
  }
  send_safe(s, Msg::kData, encode_data(d));
}

Err ServiceRuntime::apply_setup(Session& s, const std::vector<SetupOp>& ops,
                                std::string* why) {
  RegionForest& forest = backend_->forest();
  // Pre-scan: validate every handle operand and total the new root-region
  // bytes, so the batch applies atomically or not at all.
  std::vector<Domain> batch_ispaces;  // client ids >= ispace_base
  const std::size_t ispace_base = s.ispace_map.size();
  std::vector<uint64_t> fsb = s.fspace_bytes;
  uint64_t new_bytes = 0;
  for (const SetupOp& op : ops) {
    switch (op.kind) {
      case SetupOp::Kind::kIndexSpace:
        batch_ispaces.push_back(op.domain);
        break;
      case SetupOp::Kind::kFieldSpace:
        fsb.push_back(0);
        break;
      case SetupOp::Kind::kField:
        if (op.a >= fsb.size()) {
          *why = "field space handle outside this session";
          return Err::kForeignRegion;
        }
        fsb[op.a] += op.b;
        break;
      case SetupOp::Kind::kPartition: {
        const std::size_t client_parent = op.a;
        if (client_parent >= ispace_base + batch_ispaces.size()) {
          *why = "index space handle outside this session";
          return Err::kForeignRegion;
        }
        for (const Domain& sub : op.subspaces) batch_ispaces.push_back(sub);
        break;
      }
      case SetupOp::Kind::kRegion: {
        if (op.a >= ispace_base + batch_ispaces.size() || op.b >= fsb.size()) {
          *why = "index/field space handle outside this session";
          return Err::kForeignRegion;
        }
        const Domain& dom = op.a >= ispace_base
                                ? batch_ispaces[op.a - ispace_base]
                                : forest.domain(IndexSpaceId{s.ispace_map[op.a]});
        new_bytes += static_cast<uint64_t>(dom.bounds().volume()) * fsb[op.b];
        break;
      }
      case SetupOp::Kind::kSubregion:
        // Subregions are views (no storage, no quota impact); their region/
        // partition operands may be created earlier in this same batch, so
        // they are validated during the apply loop below.
        break;
    }
  }
  if (s.region_bytes + new_bytes > s.quota.max_region_bytes) {
    metrics_
        .counter("idxl_service_quota_trips_total",
                 "quota enforcement events, by tenant and kind",
                 {{"kind", "region_bytes"}, {"tenant", s.tenant}})
        .inc();
    *why = "region bytes quota exceeded (" +
           std::to_string(s.region_bytes + new_bytes) + " > " +
           std::to_string(s.quota.max_region_bytes) + ")";
    return Err::kQuotaRegionBytes;
  }
  // Apply. A forest precondition failure mid-batch poisons the session (the
  // caller evicts), since client and server namespaces can no longer agree.
  for (const SetupOp& op : ops) {
    switch (op.kind) {
      case SetupOp::Kind::kIndexSpace:
        s.ispace_map.push_back(forest.create_index_space(op.domain).id);
        break;
      case SetupOp::Kind::kFieldSpace:
        s.fspace_map.push_back(forest.create_field_space().id);
        s.fspace_bytes.push_back(0);
        break;
      case SetupOp::Kind::kField:
        forest.allocate_field(FieldSpaceId{s.fspace_map[op.a]}, op.b, op.name);
        s.fspace_bytes[op.a] += op.b;
        break;
      case SetupOp::Kind::kPartition: {
        const auto base = static_cast<uint32_t>(forest.index_space_count());
        const PartitionId pid = forest.create_partition(
            IndexSpaceId{s.ispace_map[op.a]}, op.color_space, op.subspaces,
            static_cast<Disjointness>(op.disjointness));
        s.part_map.push_back(pid.id);
        // The subspace index spaces created inside create_partition get the
        // next sequential ids on both sides; mirror them into the map.
        for (std::size_t i = 0; i < op.subspaces.size(); ++i)
          s.ispace_map.push_back(base + static_cast<uint32_t>(i));
        break;
      }
      case SetupOp::Kind::kRegion: {
        const RegionId rid = forest.create_region(
            IndexSpaceId{s.ispace_map[op.a]}, FieldSpaceId{s.fspace_map[op.b]});
        s.region_map.push_back(rid.id);
        s.region_bytes +=
            static_cast<uint64_t>(forest.storage_bounds(rid).volume()) *
            s.fspace_bytes[op.b];
        break;
      }
      case SetupOp::Kind::kSubregion: {
        if (op.a >= s.region_map.size() || op.b >= s.part_map.size()) {
          *why = "subregion parent outside this session";
          return Err::kForeignRegion;
        }
        const RegionId rid =
            forest.subregion(RegionId{s.region_map[op.a]},
                             PartitionId{s.part_map[op.b]}, op.color);
        s.region_map.push_back(rid.id);
        break;
      }
    }
  }
  return Err::kOk;
}

void ServiceRuntime::do_setup(Session& s, uint64_t tag,
                              const std::vector<std::byte>& body) {
  SetupAck ack;
  ack.tag = tag;
  std::string why;
  try {
    const std::vector<SetupOp> ops = decode_setup_ops(body);
    ack.code = apply_setup(s, ops, &why);
    ack.error = why;
  } catch (const RuntimeError& e) {
    ack.code = Err::kSetupFailed;
    ack.error = e.what();
  }
  send_safe(s, Msg::kSetupAck, encode_setup_ack(ack));
  if (ack.code == Err::kSetupFailed) {
    // Namespaces may have diverged mid-batch; the session cannot continue.
    evict(s.sid, "setup failed: " + ack.error);
  }
}

void ServiceRuntime::flush_epoch() {
  const uint64_t t0 = now_ns();
  try {
    backend_->wait_all();
  } catch (const RuntimeError& e) {
    std::fprintf(stderr, "idxl-service: backend fence failed: %s\n", e.what());
  }
  const FaultReport full = backend_->fault_report();
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all.reserve(sessions_.size());
    for (auto& [sid, s] : sessions_) all.push_back(s);
  }
  std::vector<std::shared_ptr<Session>> closing;
  for (auto& sp : all) {
    Session& s = *sp;
    if (!s.epoch_issued.empty()) {
      for (const uint64_t launch : s.epoch_issued) {
        FaultReport fr = full.for_launch(launch);
        for (TaskFault& f : fr.failures) s.fault_log.failures.push_back(std::move(f));
        for (TaskFault& f : fr.poisoned) s.fault_log.poisoned.push_back(std::move(f));
      }
      s.in_flight.fetch_sub(static_cast<uint32_t>(s.epoch_issued.size()),
                            std::memory_order_acq_rel);
      s.epoch_issued.clear();
    }
    for (const uint64_t tag : s.pending_fences) {
      FenceAck fa;
      fa.tag = tag;
      fa.report = s.fault_log;
      send_safe(s, Msg::kFenceAck, encode_fence_ack(fa));
    }
    s.pending_fences.clear();
    if (s.bye_pending) closing.push_back(sp);
  }
  // A local backend's FaultLog would otherwise grow for the server's whole
  // life; faults are now attributed per session, so drop the global log.
  if (auto* rt = dynamic_cast<Runtime*>(backend_.get())) rt->clear_faults();
  for (auto& sp : closing) {
    sp->dead.store(true, std::memory_order_release);
    send_safe(*sp, Msg::kByeAck, {});
    sp->conn->close();
    std::lock_guard<std::mutex> lk(mu_);
    queue_.remove_session(sp->sid);  // nothing queued: bye was its last item
    close_session_locked(sp);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    unretired_ = 0;
    fence_or_bye_pending_ = false;
  }
  idle_cv_.notify_all();
  epochs_.inc();
  flush_ns_.observe(now_ns() - t0);
  reap_conns();
}

void ServiceRuntime::finish_eviction(uint64_t sid, const std::string& reason,
                                     bool notify) {
  std::shared_ptr<Session> s;
  std::vector<WorkItem> dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    s = it->second;
    dropped = queue_.remove_session(sid);
  }
  for (const WorkItem& item : dropped)
    if (launch_class(item.kind))
      s->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  // Issued launches cannot be recalled: retire them (attributing their
  // faults) before the session record goes away, so no pool slot or
  // unretired count leaks.
  if (!s->epoch_issued.empty() || !s->pending_fences.empty() || s->bye_pending)
    flush_epoch();
  {
    // flush_epoch may have already closed it (bye_pending path).
    std::lock_guard<std::mutex> lk(mu_);
    if (sessions_.find(sid) == sessions_.end()) return;
  }
  if (notify && !reason.empty()) {
    send_safe(*s, Msg::kError, encode_error({Err::kEvicted, reason}));
    evictions_count_.inc();
    record_session_event(obs::LifecycleEvent::kEvicted, sid);
  }
  s->conn->close();
  {
    std::lock_guard<std::mutex> lk(mu_);
    close_session_locked(s);
  }
  idle_cv_.notify_all();
  reap_conns();
}

void ServiceRuntime::close_session_locked(const std::shared_ptr<Session>& s) {
  s->dead.store(true, std::memory_order_release);
  if (queue_.has_session(s->sid)) queue_.remove_session(s->sid);
  if (sessions_.erase(s->sid) > 0) {
    sessions_closed_.inc();
    record_session_event(obs::LifecycleEvent::kSessionClose, s->sid);
  }
}

void ServiceRuntime::send_safe(Session& s, Msg type,
                               const std::vector<std::byte>& payload) {
  try {
    s.conn->send(static_cast<uint8_t>(type), payload);
  } catch (const RuntimeError&) {
    // peer gone; teardown handles the rest
  }
}

void ServiceRuntime::reap_conns() {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->gone.load(std::memory_order_acquire) &&
          (c->session == nullptr || c->session->dead.load(std::memory_order_acquire)) &&
          c->conn->closed()) {
        dead.push_back(std::move(c));
      }
    }
    std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) { return c == nullptr; });
  }
  // Destroyed outside the lock: Connection's destructor joins its threads.
  dead.clear();
}

void serve_until(ServiceRuntime&, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

}  // namespace idxl::service
