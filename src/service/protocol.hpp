#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "region/region_forest.hpp"
#include "runtime/fault.hpp"
#include "runtime/serialize.hpp"

namespace idxl::service {

/// Protocol messages of the multi-tenant session server, carried as the
/// `type` byte of a net frame. The range starts at 64 so a service frame
/// can never be confused with a distributed-runtime frame (dist::Msg stops
/// well short of that) if a client ever dials the wrong port.
enum class Msg : uint8_t {
  kHello = 64,  ///< client -> server: tenant name + requested weight
  kWelcome,     ///< server -> client: session id, granted quota, task table
  kSetup,       ///< client -> server: batch of forest SetupOps (client ids)
  kSetupAck,    ///< server -> client: batch applied (or rejected atomically)
  kLaunch,      ///< client -> server: tagged serialized IndexLauncher
  kSingle,      ///< client -> server: tagged serialized TaskLauncher
  kFill,        ///< client -> server: tagged fill_bytes_region request
  kLaunchAck,   ///< server -> client: admission/issue outcome for one tag
  kFence,       ///< client -> server: quiesce my launches, report my faults
  kFenceAck,    ///< server -> client: fence tag + session-scoped FaultReport
  kRead,        ///< client -> server: fetch a root region field's bytes
  kData,        ///< server -> client: the bytes (or a typed refusal)
  kGoodbye,     ///< client -> server: orderly session end
  kByeAck,      ///< server -> client: session closed, connection follows
  kError,       ///< server -> client: fatal session error (eviction, drain)
  kPing,        ///< either direction: keepalive, never answered
};

/// Metric-label name per message type (net::NetObs::type_name).
const char* msg_name(uint8_t type);

/// Typed error codes surfaced to clients. Everything a client can get wrong
/// (and everything the server does *to* a session) maps to one of these —
/// quota trips and evictions are answers, never silent drops or hangs.
enum class Err : uint8_t {
  kOk = 0,
  kQuotaInFlight,     ///< max in-flight launches reached; retry after a fence
  kQuotaRegionBytes,  ///< setup batch would exceed the region-bytes quota
  kQuotaSessions,     ///< server at max_sessions; connection refused
  kDraining,          ///< server is draining; no new sessions or launches
  kEvicted,           ///< the server tore this session down
  kBadMessage,        ///< frame failed to decode
  kUnknownTask,       ///< task table index out of range
  kForeignRegion,     ///< a handle that is not in this session's namespace
  kSetupFailed,       ///< forest construction rejected the op batch
  kBackend,           ///< the backend refused the call (RuntimeError text)
};

const char* err_name(Err e);

/// Thrown by ServiceClient when the server answers with a non-kOk code.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(Err code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  Err code() const { return code_; }

 private:
  Err code_;
};

// --- payload codecs ------------------------------------------------------

struct ClientHello {
  std::string tenant;   ///< metric label; "" = server assigns "client-<sid>"
  uint32_t weight = 1;  ///< requested fair-share weight (server may clamp)
};
std::vector<std::byte> encode_client_hello(const ClientHello& h);
ClientHello decode_client_hello(const std::vector<std::byte>& bytes);

struct Welcome {
  uint64_t session = 0;
  std::string tenant;            ///< effective label, echoed back
  uint32_t weight = 1;           ///< granted weight
  uint32_t max_in_flight = 0;    ///< granted quota
  uint64_t max_region_bytes = 0;
  /// Registered task names, sorted; the index in this table is the wire
  /// TaskFnId the client uses in its launchers.
  std::vector<std::string> tasks;
};
std::vector<std::byte> encode_welcome(const Welcome& w);
Welcome decode_welcome(const std::vector<std::byte>& bytes);

/// A batch of forest-construction ops in the client's namespace (client
/// ids, assigned sequentially by the client's mirror forest). Applied
/// atomically: the server pre-scans the batch against the region-bytes
/// quota and either applies every op or none.
std::vector<std::byte> encode_setup_ops(const std::vector<SetupOp>& ops);
std::vector<SetupOp> decode_setup_ops(const std::vector<std::byte>& bytes);

struct SetupAck {
  uint64_t tag = 0;
  Err code = Err::kOk;
  std::string error;
};
std::vector<std::byte> encode_setup_ack(const SetupAck& a);
SetupAck decode_setup_ack(const std::vector<std::byte>& bytes);

/// kSetup / kLaunch / kSingle payloads: [u64 tag][descriptor bytes].
std::vector<std::byte> encode_tagged(uint64_t tag,
                                     const std::vector<std::byte>& body);
std::pair<uint64_t, std::vector<std::byte>> decode_tagged(
    const std::vector<std::byte>& bytes);

struct Fill {
  uint64_t tag = 0;
  uint32_t region = 0;  ///< client region id
  FieldId field = 0;
  std::vector<std::byte> pattern;
};
std::vector<std::byte> encode_fill(const Fill& f);
Fill decode_fill(const std::vector<std::byte>& bytes);

struct LaunchAck {
  uint64_t tag = 0;
  Err code = Err::kOk;
  uint64_t launch = UINT64_MAX;  ///< backend launch id (valid when kOk)
  std::string error;
};
std::vector<std::byte> encode_launch_ack(const LaunchAck& a);
LaunchAck decode_launch_ack(const std::vector<std::byte>& bytes);

std::vector<std::byte> encode_fence(uint64_t tag);
uint64_t decode_fence(const std::vector<std::byte>& bytes);

struct FenceAck {
  uint64_t tag = 0;
  /// Session-scoped cumulative fault report: only this session's launches.
  FaultReport report;
};
std::vector<std::byte> encode_fence_ack(const FenceAck& a);
FenceAck decode_fence_ack(const std::vector<std::byte>& bytes);

struct ReadReq {
  uint64_t tag = 0;
  uint32_t region = 0;  ///< client region id (must be a root)
  FieldId field = 0;
};
std::vector<std::byte> encode_read(const ReadReq& r);
ReadReq decode_read(const std::vector<std::byte>& bytes);

struct Data {
  uint64_t tag = 0;
  Err code = Err::kOk;
  std::vector<std::byte> bytes;
  std::string error;
};
std::vector<std::byte> encode_data(const Data& d);
Data decode_data(const std::vector<std::byte>& bytes);

struct ErrorMsg {
  Err code = Err::kEvicted;
  std::string message;
};
std::vector<std::byte> encode_error(const ErrorMsg& e);
ErrorMsg decode_error(const std::vector<std::byte>& bytes);

}  // namespace idxl::service
