// idxl-served — the always-on multi-tenant session server.
//
// Wraps a RuntimeApi backend (local by default; IDXL_BACKEND=sharded picks
// control replication) in a ServiceRuntime and serves launch streams from
// many concurrent clients over TCP or a Unix socket. SIGTERM/SIGINT trigger
// a graceful drain: in-flight launches finish, pending fences are answered,
// then every session closes. See docs/SERVICE.md.
//
// Usage:
//   idxl-served --listen <port>          # TCP on 127.0.0.1:<port> (0 = ephemeral)
//   idxl-served --listen-unix <path>     # AF_UNIX at <path>
//   idxl-served ... --max-in-flight <n> --max-region-mb <n> --max-sessions <n>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <exception>
#include <string>

#include "dist/backend.hpp"
#include "service/service_runtime.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--listen <port> | --listen-unix <path>)"
               " [--max-in-flight <n>] [--max-region-mb <n>]"
               " [--max-sessions <n>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::string unix_path;
  idxl::service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--listen-unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--max-in-flight" && i + 1 < argc) {
      config.quota.max_in_flight = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-region-mb" && i + 1 < argc) {
      config.quota.max_region_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i])) << 20;
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      config.max_sessions = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }
  if ((port < 0) == unix_path.empty()) return usage(argv[0]);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    idxl::service::ServiceRuntime service(idxl::dist::make_runtime(), config);
    if (unix_path.empty()) {
      const uint16_t bound = service.listen_tcp(static_cast<uint16_t>(port));
      // Announce the bound port (ephemeral-port runs scrape this line).
      std::printf("idxl-served listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(bound));
    } else {
      service.listen_unix(unix_path);
      std::printf("idxl-served listening on %s\n", unix_path.c_str());
    }
    std::fflush(stdout);
    idxl::service::serve_until(service, g_stop);
    std::printf("idxl-served: draining\n");
    std::fflush(stdout);
    service.drain();
    std::printf("idxl-served: drained, exiting\n");
    std::fflush(stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "idxl-served: %s\n", e.what());
    return 1;
  }
}
