#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/socket.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/api.hpp"
#include "service/fair_share.hpp"
#include "service/protocol.hpp"

namespace idxl::service {

/// Per-session resource limits. Defaults are deliberately generous; the
/// daemon and tests tighten them.
struct SessionQuota {
  /// Launches admitted but not yet retired (retirement happens at epoch
  /// flushes). Admission past this answers kQuotaInFlight immediately —
  /// a typed reject, never a hang.
  uint32_t max_in_flight = 256;
  /// Total root-region storage bytes a session may create. Checked by an
  /// atomic pre-scan of each setup batch (whole batch applies or none).
  uint64_t max_region_bytes = 64ull << 20;
  /// Ceiling on the fair-share weight a client may request in its Hello.
  uint32_t max_weight = 16;
};

struct ServiceConfig {
  SessionQuota quota;          ///< granted to every session
  uint32_t max_sessions = 1024;
  /// Epoch flush threshold: the scheduler fences the backend (retiring all
  /// issued launches, attributing faults, answering pending client fences)
  /// once this many launches are issued-but-unretired. The scheduler also
  /// flushes whenever it would otherwise go idle, so latency is bounded by
  /// load, not by this constant.
  uint32_t epoch_max_unretired = 256;
  bool enable_flight_recorder = true;
  std::size_t flight_recorder_capacity = obs::FlightRecorder::kDefaultCapacity;
};

/// Long-lived multi-tenant front end over any RuntimeApi backend: accepts
/// launch streams over src/net framing from many concurrent clients, giving
/// each session an isolated region namespace (its ops replay into the shared
/// backend forest under per-session handle translation — separate region
/// trees, so sessions never interfere in dependence analysis), a quota, and
/// a fair-share weight honored by a weighted virtual-time admission queue.
///
/// Threading: every client connection runs its own receive thread, which
/// only decodes the admission-relevant prefix, enforces the in-flight quota
/// (typed immediate rejects) and enqueues; ONE scheduler thread owns every
/// backend interaction — task registration, setup replay, launches, fences,
/// reads — so the RuntimeApi single-threaded-issuance contract holds for
/// every backend by construction. Issued launches retire in epochs: the
/// scheduler fences when the unretired count crosses the threshold or when
/// it would otherwise go idle, attributing faults per session via
/// FaultReport::for_launch and answering all pending client fences with one
/// backend wait_all().
///
/// Backend notes: the sharded backend cannot express single-task launches
/// (kSingle answers a typed kBackend error there); the distributed backend
/// freezes forest setup at its first launch, so sessions joining later
/// cannot create regions — see docs/SERVICE.md.
class ServiceRuntime {
 public:
  explicit ServiceRuntime(std::unique_ptr<RuntimeApi> backend,
                          ServiceConfig config = {});
  ~ServiceRuntime();

  ServiceRuntime(const ServiceRuntime&) = delete;
  ServiceRuntime& operator=(const ServiceRuntime&) = delete;

  /// Accept clients on 127.0.0.1:`port` (0 = ephemeral); returns the bound
  /// port. May be combined with listen_unix; each spawns one accept thread.
  uint16_t listen_tcp(uint16_t port = 0);
  void listen_unix(const std::string& path);

  /// Adopt an already-connected socket as a client (tests: socketpair).
  void serve_socket(net::Socket sock);

  /// Stop admitting (new sessions and new launches answer kDraining),
  /// finish every queued and issued launch, answer pending fences, then
  /// close every session. Idempotent; the destructor drains too.
  void drain();

  /// Forcibly tear a session down: queued launches answer kEvicted, issued
  /// ones are retired at a forced flush (their faults attributed normally),
  /// then the client gets kError{kEvicted, reason} and the connection
  /// closes. Returns false if the session id is unknown.
  bool evict(uint64_t session, std::string reason);

  std::size_t active_sessions() const;
  /// Items admitted but not yet issued (tests synchronize on this while the
  /// scheduler is paused).
  std::size_t queued() const;
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Service-level registry: per-tenant queue-wait, admission rejects,
  /// quota trips, session lifecycle. Backend metrics live in
  /// backend().metrics() — distinct registries, no collisions.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  RuntimeApi& backend() { return *backend_; }

  /// Deterministic test gate: a paused scheduler admits and enqueues but
  /// issues nothing, so tests can stack up contention and assert exact
  /// fair-share order on resume.
  void pause_scheduler();
  void resume_scheduler();

  /// Tasks served to clients (sorted names; wire TaskFnId = index).
  const std::vector<std::string>& task_names() const { return task_names_; }

 private:
  struct Session {
    uint64_t sid = 0;
    std::string tenant;
    uint32_t weight = 1;
    SessionQuota quota;
    /// Admitted (queued or issued-but-unretired) launch-class items.
    std::atomic<uint32_t> in_flight{0};
    /// Evicted/closing: receive threads reject every further frame.
    std::atomic<bool> dead{false};
    /// The session's connection; owned by the Conn entry in conns_, which
    /// outlives the session (reaped only after `dead` is set).
    net::Connection* conn = nullptr;

    // --- scheduler-owned state ---
    std::vector<uint32_t> ispace_map;  ///< client id -> backend id
    std::vector<uint32_t> fspace_map;
    std::vector<uint32_t> part_map;
    std::vector<uint32_t> region_map;
    std::vector<uint64_t> fspace_bytes;  ///< client fspace id -> field bytes
    uint64_t region_bytes = 0;
    std::vector<uint64_t> epoch_issued;  ///< backend launch ids, this epoch
    FaultReport fault_log;               ///< cumulative, session-scoped
    std::vector<uint64_t> pending_fences;
    bool bye_pending = false;

    obs::Histogram queue_wait;  ///< idxl_task_queue_wait_ns{tenant}
    obs::Counter launches;      ///< idxl_service_launches_total{tenant}
  };

  /// One client connection (pre- or post-Hello). The Connection's receive
  /// thread drives on_frame; `session` is set by the Hello handshake.
  struct Conn {
    std::unique_ptr<net::Connection> conn;
    std::shared_ptr<Session> session;
    std::atomic<bool> gone{false};  ///< receive loop exited; safe to reap
  };

  /// One admitted unit of work, decoded and issued on the scheduler thread.
  struct WorkItem {
    Msg kind = Msg::kLaunch;
    std::vector<std::byte> payload;
    uint64_t enqueue_ns = 0;
  };

  void scheduler_main();
  void accept_main(net::Socket listener);
  void on_frame(Conn& c, net::Frame& frame);
  void on_close(Conn& c, const std::string& error);
  void handle_hello(Conn& c, const net::Frame& frame);
  /// Admission for launch-class frames: in-flight quota + drain/evict
  /// checks, typed immediate rejects, then enqueue under the fair queue.
  void admit(Conn& c, Msg kind, net::Frame& frame);
  void reject(Session& s, net::Connection& conn, uint64_t tag, Err code,
              const std::string& detail);

  // --- scheduler-side processing ---
  void process(const std::shared_ptr<Session>& s, WorkItem item);
  void do_setup(Session& s, uint64_t tag, const std::vector<std::byte>& body);
  void do_launch(Session& s, Msg kind, uint64_t tag,
                 const std::vector<std::byte>& body);
  void do_fill(Session& s, const Fill& f);
  void do_read(Session& s, const ReadReq& r);
  /// Fence the backend, retire every issued launch, attribute faults to
  /// sessions, answer pending fences and goodbyes.
  void flush_epoch();
  void finish_eviction(uint64_t sid, const std::string& reason, bool notify);
  void close_session_locked(const std::shared_ptr<Session>& s);
  void record_session_event(obs::LifecycleEvent ev, uint64_t sid,
                            uint64_t edge = obs::FlightEvent::kNone);
  void reap_conns();

  Err translate_index(Session& s, IndexLauncher& l, std::string* why);
  Err translate_single(Session& s, TaskLauncher& l, std::string* why);
  /// Atomic batch apply with quota pre-scan; fills `why` on failure.
  Err apply_setup(Session& s, const std::vector<SetupOp>& ops, std::string* why);

  void send_safe(Session& s, Msg type, const std::vector<std::byte>& payload);

  ServiceConfig config_;
  std::unique_ptr<RuntimeApi> backend_;
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder recorder_;
  net::NetObs net_obs_;

  std::vector<TaskFnId> task_ids_;  ///< wire task index -> backend TaskFnId
  std::vector<std::string> task_names_;

  mutable std::mutex mu_;  ///< sessions_, queue_, evictions_, scheduler state
  std::condition_variable cv_;        ///< wakes the scheduler
  std::condition_variable idle_cv_;   ///< drain() waits here
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  FairShareQueue<WorkItem> queue_;
  std::vector<std::pair<uint64_t, std::string>> evictions_;
  uint64_t next_sid_ = 1;
  uint64_t unretired_ = 0;  ///< issued launches not yet retired (mu_)
  bool fence_or_bye_pending_ = false;  ///< any session awaits a flush (mu_)
  bool paused_ = false;
  bool stop_ = false;
  std::atomic<bool> draining_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::thread scheduler_;
  std::vector<std::thread> acceptors_;
  std::vector<int> listener_fds_;  ///< closed to unblock accept threads
  std::mutex listen_mu_;

  // service-level metric cells
  obs::Counter sessions_opened_, sessions_closed_, evictions_count_;
  obs::Counter epochs_;
  obs::Histogram flush_ns_;
  obs::Gauge active_gauge_, queue_depth_gauge_, unretired_gauge_;
};

/// Convenience: serve forever until SIGTERM/SIGINT-style shutdown is
/// requested by the caller flipping `stop`; used by the idxl-served daemon.
void serve_until(ServiceRuntime& service, const std::atomic<bool>& stop);

}  // namespace idxl::service
