#include "service/protocol.hpp"

#include "dist/protocol.hpp"
#include "support/error.hpp"

namespace idxl::service {

const char* msg_name(uint8_t type) {
  switch (static_cast<Msg>(type)) {
    case Msg::kHello: return "hello";
    case Msg::kWelcome: return "welcome";
    case Msg::kSetup: return "setup";
    case Msg::kSetupAck: return "setup_ack";
    case Msg::kLaunch: return "launch";
    case Msg::kSingle: return "single";
    case Msg::kFill: return "fill";
    case Msg::kLaunchAck: return "launch_ack";
    case Msg::kFence: return "fence";
    case Msg::kFenceAck: return "fence_ack";
    case Msg::kRead: return "read";
    case Msg::kData: return "data";
    case Msg::kGoodbye: return "goodbye";
    case Msg::kByeAck: return "bye_ack";
    case Msg::kError: return "error";
    case Msg::kPing: return "ping";
  }
  return "unknown";
}

const char* err_name(Err e) {
  switch (e) {
    case Err::kOk: return "ok";
    case Err::kQuotaInFlight: return "quota_in_flight";
    case Err::kQuotaRegionBytes: return "quota_region_bytes";
    case Err::kQuotaSessions: return "quota_sessions";
    case Err::kDraining: return "draining";
    case Err::kEvicted: return "evicted";
    case Err::kBadMessage: return "bad_message";
    case Err::kUnknownTask: return "unknown_task";
    case Err::kForeignRegion: return "foreign_region";
    case Err::kSetupFailed: return "setup_failed";
    case Err::kBackend: return "backend";
  }
  return "unknown";
}

std::vector<std::byte> encode_client_hello(const ClientHello& h) {
  Serializer s;
  s.put_header();
  s.put_string(h.tenant);
  s.put_u32(h.weight);
  return s.take();
}

ClientHello decode_client_hello(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("service hello");
  ClientHello h;
  h.tenant = d.get_string();
  h.weight = d.get_u32();
  return h;
}

std::vector<std::byte> encode_welcome(const Welcome& w) {
  Serializer s;
  s.put_header();
  s.put_u64(w.session);
  s.put_string(w.tenant);
  s.put_u32(w.weight);
  s.put_u32(w.max_in_flight);
  s.put_u64(w.max_region_bytes);
  s.put_u32(static_cast<uint32_t>(w.tasks.size()));
  for (const std::string& t : w.tasks) s.put_string(t);
  return s.take();
}

Welcome decode_welcome(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  d.check_header("service welcome");
  Welcome w;
  w.session = d.get_u64();
  w.tenant = d.get_string();
  w.weight = d.get_u32();
  w.max_in_flight = d.get_u32();
  w.max_region_bytes = d.get_u64();
  const uint32_t n = d.get_u32();
  w.tasks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) w.tasks.push_back(d.get_string());
  return w;
}

// The forest-journal codec already exists for the distributed bootstrap;
// a setup batch is a dist::Setup with no task table and no storage.
std::vector<std::byte> encode_setup_ops(const std::vector<SetupOp>& ops) {
  dist::Setup s;
  s.journal = ops;
  return dist::encode_setup(s);
}

std::vector<SetupOp> decode_setup_ops(const std::vector<std::byte>& bytes) {
  return dist::decode_setup(bytes).journal;
}

std::vector<std::byte> encode_setup_ack(const SetupAck& a) {
  Serializer s;
  s.put_u64(a.tag);
  s.put_u8(static_cast<uint8_t>(a.code));
  s.put_string(a.error);
  return s.take();
}

SetupAck decode_setup_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  SetupAck a;
  a.tag = d.get_u64();
  a.code = static_cast<Err>(d.get_u8());
  a.error = d.get_string();
  return a;
}

std::vector<std::byte> encode_tagged(uint64_t tag,
                                     const std::vector<std::byte>& body) {
  Serializer s;
  s.put_u64(tag);
  s.put_blob(body);
  return s.take();
}

std::pair<uint64_t, std::vector<std::byte>> decode_tagged(
    const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  const uint64_t tag = d.get_u64();
  return {tag, d.get_blob()};
}

std::vector<std::byte> encode_fill(const Fill& f) {
  Serializer s;
  s.put_u64(f.tag);
  s.put_u32(f.region);
  s.put_u32(f.field);
  s.put_blob(f.pattern);
  return s.take();
}

Fill decode_fill(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  Fill f;
  f.tag = d.get_u64();
  f.region = d.get_u32();
  f.field = d.get_u32();
  f.pattern = d.get_blob();
  return f;
}

std::vector<std::byte> encode_launch_ack(const LaunchAck& a) {
  Serializer s;
  s.put_u64(a.tag);
  s.put_u8(static_cast<uint8_t>(a.code));
  s.put_u64(a.launch);
  s.put_string(a.error);
  return s.take();
}

LaunchAck decode_launch_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  LaunchAck a;
  a.tag = d.get_u64();
  a.code = static_cast<Err>(d.get_u8());
  a.launch = d.get_u64();
  a.error = d.get_string();
  return a;
}

std::vector<std::byte> encode_fence(uint64_t tag) {
  Serializer s;
  s.put_u64(tag);
  return s.take();
}

uint64_t decode_fence(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  return d.get_u64();
}

std::vector<std::byte> encode_fence_ack(const FenceAck& a) {
  Serializer s;
  s.put_u64(a.tag);
  s.put_blob(serialize_fault_report(a.report));
  return s.take();
}

FenceAck decode_fence_ack(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  FenceAck a;
  a.tag = d.get_u64();
  a.report = deserialize_fault_report(d.get_blob());
  return a;
}

std::vector<std::byte> encode_read(const ReadReq& r) {
  Serializer s;
  s.put_u64(r.tag);
  s.put_u32(r.region);
  s.put_u32(r.field);
  return s.take();
}

ReadReq decode_read(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  ReadReq r;
  r.tag = d.get_u64();
  r.region = d.get_u32();
  r.field = d.get_u32();
  return r;
}

std::vector<std::byte> encode_data(const Data& dd) {
  Serializer s;
  s.put_u64(dd.tag);
  s.put_u8(static_cast<uint8_t>(dd.code));
  s.put_blob(dd.bytes);
  s.put_string(dd.error);
  return s.take();
}

Data decode_data(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  Data dd;
  dd.tag = d.get_u64();
  dd.code = static_cast<Err>(d.get_u8());
  dd.bytes = d.get_blob();
  dd.error = d.get_string();
  return dd;
}

std::vector<std::byte> encode_error(const ErrorMsg& e) {
  Serializer s;
  s.put_u8(static_cast<uint8_t>(e.code));
  s.put_string(e.message);
  return s.take();
}

ErrorMsg decode_error(const std::vector<std::byte>& bytes) {
  Deserializer d(bytes);
  ErrorMsg e;
  e.code = static_cast<Err>(d.get_u8());
  e.message = d.get_string();
  return e;
}

}  // namespace idxl::service
