#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace idxl::service {

/// Weighted fair admission queue: virtual-time stride scheduling over
/// per-session FIFO backlogs. Each session carries a `pass` value; pop()
/// always serves the backlogged session with the smallest pass (ties break
/// to the lower session id, so ordering is fully deterministic and unit
/// tests can assert exact schedules), then advances that session's pass by
/// cost * kScale / weight. A session that goes idle and comes back has its
/// pass clamped up to the global virtual time, so sleeping never banks
/// credit — the classic start-time fairness fix.
///
/// Over any contended interval, sessions receive service proportional to
/// their weights: weight 4 vs weight 1 yields a 4:1 pop ratio.
///
/// Deliberately unsynchronized — the ServiceRuntime wraps it in its own
/// mutex + condition variable; tests drive it directly.
template <typename T>
class FairShareQueue {
 public:
  /// Pass-per-unit-cost for weight 1. Large enough that integer division
  /// by any sane weight keeps plenty of resolution.
  static constexpr uint64_t kScale = 1 << 16;

  void add_session(uint64_t sid, uint32_t weight) {
    IDXL_REQUIRE(weight > 0, "fair-share weight must be positive");
    auto [it, inserted] = sessions_.emplace(sid, Session{});
    IDXL_REQUIRE(inserted, "fair-share session added twice");
    it->second.weight = weight;
    it->second.pass = vtime_;
  }

  /// Drop the session and return its queued items (the caller owns any
  /// per-item teardown: reject replies, quota release ...).
  std::vector<T> remove_session(uint64_t sid) {
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) return {};
    std::vector<T> dropped;
    dropped.reserve(it->second.backlog.size());
    for (auto& item : it->second.backlog) dropped.push_back(std::move(item));
    size_ -= it->second.backlog.size();
    sessions_.erase(it);
    return dropped;
  }

  bool has_session(uint64_t sid) const { return sessions_.count(sid) != 0; }

  /// Enqueue one item for `sid`. `cost` scales how far this item pushes the
  /// session's pass when served (1 = one scheduling quantum; 0 = free —
  /// control messages ride along without distorting the launch schedule).
  void push(uint64_t sid, T item, uint64_t cost = 1) {
    auto it = sessions_.find(sid);
    IDXL_REQUIRE(it != sessions_.end(), "fair-share push to unknown session");
    Session& s = it->second;
    if (s.backlog.empty() && s.pass < vtime_) s.pass = vtime_;
    s.backlog.emplace_back(std::move(item));
    s.costs.push_back(cost);
    ++size_;
  }

  /// Serve the next item under weighted fairness. Returns false when every
  /// backlog is empty.
  bool pop(uint64_t* sid_out, T* item_out) {
    Session* best = nullptr;
    uint64_t best_sid = 0;
    for (auto& [sid, s] : sessions_) {  // std::map: ascending sid = tie-break
      if (s.backlog.empty()) continue;
      if (best == nullptr || s.pass < best->pass) {
        best = &s;
        best_sid = sid;
      }
    }
    if (best == nullptr) return false;
    vtime_ = best->pass;
    *sid_out = best_sid;
    *item_out = std::move(best->backlog.front());
    best->backlog.pop_front();
    best->pass += best->costs.front() * kScale / best->weight;
    best->costs.pop_front();
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t session_depth(uint64_t sid) const {
    auto it = sessions_.find(sid);
    return it == sessions_.end() ? 0 : it->second.backlog.size();
  }

 private:
  struct Session {
    uint32_t weight = 1;
    uint64_t pass = 0;
    std::deque<T> backlog;
    std::deque<uint64_t> costs;  // parallel to backlog
  };

  std::map<uint64_t, Session> sessions_;
  uint64_t vtime_ = 0;
  std::size_t size_ = 0;
};

}  // namespace idxl::service
