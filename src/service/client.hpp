#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "region/region_forest.hpp"
#include "runtime/fault.hpp"
#include "runtime/types.hpp"
#include "service/protocol.hpp"

namespace idxl::service {

/// Synchronous client of a ServiceRuntime. Deliberately thread-less (raw
/// Socket + FrameReader on the calling thread), so the soak bench can run
/// hundreds of clients without hundreds of extra sender/receiver threads.
///
/// Region setup happens against a local *mirror* forest — create_* calls
/// return client-namespace handles immediately, and the accumulated journal
/// ops are flushed to the server lazily (before the next launch / fence /
/// read), each batch applied atomically server-side. Launchers are built
/// against the client handles; projection functors must be expression-based
/// (identity / symbolic), since opaque callables cannot cross the wire.
///
/// Launches pipeline: launch() fires and returns a tag without waiting; acks
/// are pumped whenever the client next reads (await_ack, fence, read_field).
/// launch_checked() waits for the ack and throws ServiceError on a typed
/// reject — what the quota tests assert on. Any kError frame from the server
/// (eviction, drain) surfaces as a thrown ServiceError from whatever call
/// was reading.
class ServiceClient {
 public:
  static ServiceClient connect_tcp(const std::string& host, uint16_t port,
                                   ClientHello hello = {});
  static ServiceClient connect_unix(const std::string& path,
                                    ClientHello hello = {});
  /// Handshake over an already-connected socket (tests: Socket::pair()).
  explicit ServiceClient(net::Socket sock, ClientHello hello = {});
  ~ServiceClient() = default;  // silent close; the server evicts the session

  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  const Welcome& welcome() const { return welcome_; }
  uint64_t session() const { return welcome_.session; }

  /// Wire task id for a registered task name; throws ServiceError
  /// (kUnknownTask) if the server does not export it.
  TaskFnId task_id(const std::string& name) const;

  // --- region setup (client-namespace handles, lazily flushed) ---
  IndexSpaceId create_index_space(Domain domain);
  FieldSpaceId create_field_space();
  FieldId allocate_field(FieldSpaceId fs, std::size_t size, std::string name);
  PartitionId create_partition(IndexSpaceId parent, const Rect& color_space,
                               std::vector<Domain> subspaces, Disjointness d);
  RegionId create_region(IndexSpaceId is, FieldSpaceId fs);
  RegionId subregion(RegionId parent, PartitionId p, const Point& color);

  /// Ship any unflushed setup ops now (atomic batch). Throws ServiceError
  /// on a typed reject (e.g. kQuotaRegionBytes) — after which the client's
  /// mirror and the server namespace have diverged and this client must not
  /// issue further setup or launches.
  void flush_setup();

  /// Fire-and-forget index launch; returns the tag (await_ack to check).
  uint64_t launch(const IndexLauncher& launcher);
  /// Launch + wait for the ack; throws ServiceError on a typed reject.
  void launch_checked(const IndexLauncher& launcher);

  /// Single-task variants (the sharded backend answers kBackend).
  uint64_t single(const TaskLauncher& launcher);
  void single_checked(const TaskLauncher& launcher);

  /// Fill a field of a (root) region; waits for the ack.
  void fill(RegionId r, FieldId f, const void* pattern, std::size_t size);
  template <typename T>
  void fill(RegionId r, FieldId f, const T& value) {
    fill(r, f, &value, sizeof(T));
  }

  /// Block until the ack for `tag` arrives (pumping other frames).
  LaunchAck await_ack(uint64_t tag);

  /// Quiesce this session's launches server-side; returns the session-scoped
  /// cumulative FaultReport.
  FaultReport fence();

  /// Fetch the raw bytes of `field` of root region `r` (server fences
  /// first, so all acknowledged launches are visible).
  std::vector<std::byte> read_field(RegionId r, FieldId f);

  /// Orderly session end: waits for the server's kByeAck.
  void goodbye();

  /// Launch-class requests sent but not yet acknowledged.
  std::size_t outstanding() const { return outstanding_; }
  /// Non-kOk launch acks observed so far (quota trips, backend refusals).
  uint64_t rejects() const { return rejects_; }

 private:
  void send_frame(Msg type, const std::vector<std::byte>& payload);
  net::Frame next_frame();
  /// Read and dispatch one frame into the pending-reply tables.
  void pump_one();

  net::Socket sock_;
  net::FrameReader reader_;
  Welcome welcome_;
  std::map<std::string, TaskFnId> task_index_;

  RegionForest mirror_;
  std::size_t setup_sent_ = 0;  ///< journal ops already flushed

  uint64_t next_tag_ = 1;
  std::size_t outstanding_ = 0;
  uint64_t rejects_ = 0;
  std::map<uint64_t, LaunchAck> acks_;
  std::map<uint64_t, SetupAck> setup_acks_;
  std::map<uint64_t, FenceAck> fence_acks_;
  std::map<uint64_t, Data> datas_;
  bool bye_acked_ = false;
};

}  // namespace idxl::service
