#include "shard/sharded_runtime.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "runtime/serialize.hpp"

namespace idxl {

namespace {

uint64_t fnv1a(const std::vector<std::byte>& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardedRuntime::ShardedRuntime(ShardedConfig config) : config_(std::move(config)) {
  IDXL_REQUIRE(config_.shards >= 1, "need at least one shard");
  if (config_.sharding == nullptr)
    config_.sharding = std::make_shared<BlockShardingFunctor>();
  if (auto plan = FaultPlan::from_env()) config_.fault_plan = std::move(plan);
  profiler_ = std::make_unique<Profiler>(config_.enable_profiling);
  if (config_.enable_profiling) prof_ = profiler_.get();
  const unsigned per_shard =
      config_.workers_per_shard == 0 ? 1 : config_.workers_per_shard;
  pools_.reserve(config_.shards);
  for (uint32_t s = 0; s < config_.shards; ++s)
    pools_.push_back(std::make_unique<ThreadPool>(
        per_shard, static_cast<int>(s * per_shard)));
  shard_cells_.reserve(config_.shards);
  for (uint32_t s = 0; s < config_.shards; ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    ShardCells cells;
    cells.launches_issued =
        metrics_.counter("idxl_shard_launches_total",
                         "launches issued (replicated on every shard)", labels);
    cells.runtime_calls = metrics_.counter(
        "idxl_shard_runtime_calls_total",
        "issuance calls: 1/launch with IDX, |D|/launch without", labels);
    cells.points_analyzed = metrics_.counter(
        "idxl_shard_points_analyzed_total", "replicated analysis work", labels);
    cells.local_tasks = metrics_.counter("idxl_shard_local_tasks_total",
                                         "tasks this shard executed", labels);
    cells.remote_dependencies =
        metrics_.counter("idxl_shard_remote_dependencies_total",
                         "edges that crossed a shard boundary", labels);
    cells.copies_planned =
        metrics_.counter("idxl_shard_copies_planned_total",
                         "inter-shard data movements planned", labels);
    cells.interference_pair_tests =
        metrics_.counter("idxl_shard_interference_pair_tests_total",
                         "inter-launch pair analyses this shard ran", labels);
    cells.interference_skips = metrics_.counter(
        "idxl_shard_interference_skips_total",
        "per-arg conflict probes skipped on a checked certificate", labels);
    cells.write_log = metrics_.gauge(
        "idxl_shard_write_log_entries",
        "replicated write-log records (distributed storage)", labels);
    shard_cells_.push_back(cells);
  }
  // Run-wide fault/retry families, same names as the single runtime so the
  // OBSERVABILITY metric tables apply to both.
  const char* fault_help = "tasks that reached a terminal fault, by root cause";
  fault_cells_.fault_exception =
      metrics_.counter("idxl_fault_tasks_total", fault_help, {{"kind", "exception"}});
  fault_cells_.fault_explicit =
      metrics_.counter("idxl_fault_tasks_total", fault_help, {{"kind", "explicit"}});
  fault_cells_.fault_injected =
      metrics_.counter("idxl_fault_tasks_total", fault_help, {{"kind", "injected"}});
  fault_cells_.fault_timeout =
      metrics_.counter("idxl_fault_tasks_total", fault_help, {{"kind", "timeout"}});
  fault_cells_.fault_cancelled =
      metrics_.counter("idxl_fault_tasks_total", fault_help, {{"kind", "cancelled"}});
  fault_cells_.fault_poisoned = metrics_.counter(
      "idxl_fault_poisoned_total", "tasks skipped because an ancestor failed");
  fault_cells_.fault_injections = metrics_.counter(
      "idxl_fault_injections_total", "FaultPlan injections that fired");
  fault_cells_.retry_attempts = metrics_.counter(
      "idxl_retry_attempts_total", "task re-executions after a retryable fault");
  fault_cells_.retry_succeeded = metrics_.counter(
      "idxl_retry_succeeded_total", "tasks that completed on a retry attempt");
  shard_base_.resize(config_.shards);
  replicas_.resize(config_.shards);
}

obs::Counter& ShardedRuntime::fault_cell(FaultKind kind) {
  switch (kind) {
    case FaultKind::kExplicit: return fault_cells_.fault_explicit;
    case FaultKind::kInjected: return fault_cells_.fault_injected;
    case FaultKind::kTimeout: return fault_cells_.fault_timeout;
    case FaultKind::kCancelled: return fault_cells_.fault_cancelled;
    default: return fault_cells_.fault_exception;
  }
}

ShardedRuntime::Replica& ShardedRuntime::replica(uint32_t shard, uint32_t root) {
  // Callers hold forest_mu_ (creation reads the forest's setup-time
  // storage); replica_mu_ orders concurrent shard threads.
  std::lock_guard<std::mutex> lock(replica_mu_);
  auto [it, inserted] = replicas_[shard].try_emplace(root);
  if (inserted) {
    const RegionId root_region{root};
    const auto volume =
        static_cast<std::size_t>(forest_.storage_bounds(root_region).volume());
    for (const FieldInfo& f : forest_.fields(forest_.region(root_region).fspace)) {
      const std::byte* src = forest_.field_data(root_region, f.id);
      it->second.data.emplace(
          f.id, std::vector<std::byte>(src, src + volume * f.size));
    }
  }
  return it->second;
}

void ShardedRuntime::synchronize_storage() {
  drain();
  std::lock_guard<std::mutex> forest_lock(forest_mu_);
  std::lock_guard<std::mutex> table_lock(table_mu_);
  std::vector<ShardWriteRecord> log = write_log_;
  std::sort(log.begin(), log.end(), [](const ShardWriteRecord& a,
                                       const ShardWriteRecord& b) { return a.seq < b.seq; });
  for (const ShardWriteRecord& rec : log) {
    const RegionId root_region{rec.root};
    const Rect bounds = forest_.storage_bounds(root_region);
    Replica& src = replica(rec.shard, rec.root);
    for (const FieldInfo& f : forest_.fields(forest_.region(root_region).fspace)) {
      if (!(rec.fields & (uint64_t{1} << f.id))) continue;
      std::byte* dst = forest_.field_data(root_region, f.id);
      const std::byte* s = src.data.at(f.id).data();
      forest_.domain(rec.ispace).for_each([&](const Point& p) {
        const auto off = static_cast<std::size_t>(bounds.linearize(p)) * f.size;
        std::memcpy(dst + off, s + off, f.size);
      });
    }
  }
}


ShardedRuntime::~ShardedRuntime() { drain(); }

TaskFnId ShardedRuntime::register_task(std::string name, TaskFn fn) {
  IDXL_REQUIRE(static_cast<bool>(fn), "task body must be callable");
  task_prof_names_.push_back(prof_ != nullptr ? prof_->intern(name) : 0);
  task_registry_.emplace_back(std::move(name), std::move(fn));
  return static_cast<TaskFnId>(task_registry_.size() - 1);
}

TaskNodePtr ShardedRuntime::event_for(uint64_t key) {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto [it, inserted] = events_.try_emplace(key);
  if (inserted) {
    it->second = std::make_shared<TaskNode>();
    // The key doubles as the global program-order sequence number; set at
    // creation (under the lock) so any shard can read it for edge records.
    it->second->seq = key;
  }
  return it->second;
}

void ShardedRuntime::check_replication(uint64_t seq, uint64_t hash) {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto [it, inserted] = launch_hashes_.try_emplace(seq, hash);
  IDXL_REQUIRE(inserted || it->second == hash,
               "control divergence: shards issued different launch descriptors "
               "for the same program point");
}

void ShardedRuntime::schedule(uint32_t owner, const TaskNodePtr& node,
                              const std::vector<TaskNodePtr>& deps) {
  node->owner.store(owner, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  for (const TaskNodePtr& dep : deps) {
    node->pending.fetch_add(1, std::memory_order_relaxed);
    if (!dep->add_successor(node)) {
      // Completed dep: trivially satisfied, but a faulted one still poisons.
      inherit_poison(*dep, *node);
      node->pending.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (node->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) make_ready(node);
}

std::function<void()> ShardedRuntime::node_job(TaskNodePtr node) {
  const uint64_t ready_ns = prof_ != nullptr ? prof_->now_ns() : 0;
  return [this, node = std::move(node), ready_ns] {
    // Poison gate: a failed ancestor (on any shard) atomic-min'd its root
    // into poison_root before readying us over the shared event.
    const uint64_t proot = node->poison_root.load(std::memory_order_acquire);
    if (proot != UINT64_MAX) {
      finish_fault(node, FaultKind::kPoisoned, proot, 0, {});
      return;
    }
    if (node->cancel_flag.load(std::memory_order_acquire)) {
      finish_fault(node, FaultKind::kCancelled, node->seq, 0,
                   "cancelled before start");
      return;
    }
    FaultKind fk = FaultKind::kNone;
    std::string msg;
    if (config_.fault_plan != nullptr &&
        config_.fault_plan->should_fail(node->launch, node->point, node->attempt)) {
      // Injections replace the body execution for this attempt.
      fk = FaultKind::kInjected;
      fault_cells_.fault_injections.inc();
      msg = "injected fault";
    } else {
      const uint32_t owner = node->owner.load(std::memory_order_relaxed);
      uint64_t timer = 0;
      if (node->timeout_ms > 0)
        timer = pools_[owner]->submit_after(
            [n = node] {
              n->timed_out.store(true, std::memory_order_release);
              n->cancel_flag.store(true, std::memory_order_release);
            },
            node->timeout_ms);
      try {
        FaultFrameScope frame(
            FaultFrame{&node->cancel_flag, nullptr, node->attempt});
        if (prof_ != nullptr) {
          const uint64_t start_ns = prof_->now_ns();
          node->work();
          prof_->record(ProfCategory::kTask, node->prof_name, start_ns,
                        prof_->now_ns(), node->seq, start_ns - ready_ns);
        } else {
          node->work();
        }
      } catch (const TaskCancelled&) {
        fk = node->timed_out.load(std::memory_order_acquire)
                 ? FaultKind::kTimeout
                 : FaultKind::kCancelled;
        msg = fk == FaultKind::kTimeout ? "timed out" : "cancelled";
      } catch (const TaskFailure& e) {
        fk = FaultKind::kExplicit;
        msg = e.what();
      } catch (const std::exception& e) {
        fk = FaultKind::kException;
        msg = e.what();
      } catch (...) {
        fk = FaultKind::kException;
        msg = "unknown exception";
      }
      if (timer != 0) pools_[owner]->cancel_timer(timer);
    }

    if (fk == FaultKind::kNone) {
      if (node->attempt > 0) fault_cells_.retry_succeeded.inc();
      node->work = nullptr;
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      fan_out(node, UINT64_MAX);
      return;
    }

    const bool retryable = fk == FaultKind::kException ||
                           fk == FaultKind::kExplicit ||
                           fk == FaultKind::kInjected;
    if (retryable && node->attempt < node->max_retries) {
      ++node->attempt;
      fault_cells_.retry_attempts.inc();
      const uint32_t owner = node->owner.load(std::memory_order_relaxed);
      const uint64_t delay =
          node->backoff_ms == 0
              ? 0
              : static_cast<uint64_t>(node->backoff_ms) << (node->attempt - 1);
      if (delay == 0) {
        pools_[owner]->submit(node_job(node));
      } else {
        pools_[owner]->submit_after(
            [this, owner, n = node]() mutable {
              pools_[owner]->submit(node_job(std::move(n)));
            },
            delay);
      }
      return;  // the task is still outstanding; no fan-out yet
    }
    finish_fault(node, fk, node->seq, node->attempt + 1, std::move(msg));
  };
}

void ShardedRuntime::finish_fault(const TaskNodePtr& node, FaultKind kind,
                                  uint64_t root, uint32_t attempts,
                                  std::string message) {
  node->fault.store(static_cast<uint8_t>(kind), std::memory_order_release);
  // Publish the root for late edges (inherit_poison) before complete().
  node->poison_root.store(root, std::memory_order_release);
  TaskFault f;
  f.seq = node->seq;
  f.launch = node->launch;
  f.point = node->point;
  f.attempts = attempts;
  f.kind = kind;
  f.root = root;
  f.message = std::move(message);
  faults_.record(std::move(f));
  if (kind == FaultKind::kPoisoned)
    fault_cells_.fault_poisoned.inc();
  else
    fault_cell(kind).inc();
  node->work = nullptr;
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  fan_out(node, root);
}

void ShardedRuntime::fan_out(const TaskNodePtr& node, uint64_t poison) {
  // Fan out to every successor this completion readied, grouped by owner
  // pool so each pool's queue lock is taken once per completion. Poison
  // propagates over the same edges — atomic-min of the root seq *before*
  // the pending decrement, so a readied successor always observes it.
  std::vector<TaskNodePtr> ready;
  for (const TaskNodePtr& succ : node->complete()) {
    if (poison != UINT64_MAX) {
      uint64_t cur = succ->poison_root.load(std::memory_order_relaxed);
      while (poison < cur && !succ->poison_root.compare_exchange_weak(
                                 cur, poison, std::memory_order_acq_rel))
        ;
    }
    if (succ->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready.push_back(succ);
  }
  if (ready.size() == 1) {
    make_ready(ready.front());
  } else if (!ready.empty()) {
    std::unordered_map<uint32_t, std::vector<std::function<void()>>> by_owner;
    for (TaskNodePtr& succ : ready) {
      const uint32_t owner = succ->owner.load(std::memory_order_relaxed);
      by_owner[owner].push_back(node_job(std::move(succ)));
    }
    for (auto& [owner, jobs] : by_owner)
      pools_[owner]->submit_batch(std::move(jobs));
  }
}

void ShardedRuntime::make_ready(const TaskNodePtr& node) {
  // Ready tasks execute on their owner's pool — cross-shard completions
  // hand work to the right "node", which is all the network a
  // single-address-space model needs.
  pools_[node->owner.load(std::memory_order_relaxed)]->submit(node_job(node));
}

void ShardedRuntime::drain() {
  // Pools go momentarily idle while waiting on cross-shard events, so a
  // single wait_idle() per pool is not enough; poll the global outstanding
  // count.
  for (;;) {
    for (auto& pool : pools_) pool->wait_idle();
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  for (auto& pool : pools_) pool->wait_idle();
}

FaultReport ShardedRuntime::run(const std::function<void(ShardContext&)>& program) {
  // Start from a clean slate so launch sequence numbers from a previous
  // run() cannot alias old (completed) events.
  drain();
  faults_.clear();  // each run() reports its own faults
  if (config_.distributed_storage) {
    // Persist the previous run's results into the forest, then restart the
    // replicas from that authoritative state.
    synchronize_storage();
    // Scoped separately: synchronize_storage() acquires replica_mu_ while
    // holding table_mu_, so holding both here in the other order would be
    // a lock-order inversion.
    {
      std::lock_guard<std::mutex> replica_lock(replica_mu_);
      for (auto& per_shard : replicas_) per_shard.clear();
    }
    {
      std::lock_guard<std::mutex> table_lock(table_mu_);
      write_log_.clear();
    }
  }
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    events_.clear();
    launch_hashes_.clear();
  }

  std::vector<std::thread> threads;
  std::mutex error_mu;
  std::exception_ptr first_error;

  // Counters are monotone; snapshot the baselines so stats() views this
  // run's deltas. No shard thread exists yet, so plain reads are race-free.
  for (uint32_t s = 0; s < config_.shards; ++s) {
    const ShardCells& c = shard_cells_[s];
    shard_base_[s] = ShardStats{c.launches_issued.value(), c.runtime_calls.value(),
                                c.points_analyzed.value(), c.local_tasks.value(),
                                c.remote_dependencies.value(),
                                c.copies_planned.value(),
                                c.interference_pair_tests.value(),
                                c.interference_skips.value()};
    c.write_log.set(0);
  }

  threads.reserve(config_.shards);
  for (uint32_t s = 0; s < config_.shards; ++s) {
    threads.emplace_back([&, s] {
      ShardContext ctx(*this, s);
      try {
        program(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (s == 0 && config_.distributed_storage) {
        // Shard 0's (replicated, hence authoritative) log feeds the final
        // gather in synchronize_storage().
        std::lock_guard<std::mutex> lock(table_mu_);
        write_log_ = ctx.write_log_;
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  drain();
  return faults_.report();
}

ShardStats ShardedRuntime::stats(uint32_t shard) const {
  IDXL_REQUIRE(shard < shard_cells_.size(), "bad shard id");
  const ShardCells& c = shard_cells_[shard];
  const ShardStats& base = shard_base_[shard];
  ShardStats s;
  s.launches_issued = c.launches_issued.value() - base.launches_issued;
  s.runtime_calls = c.runtime_calls.value() - base.runtime_calls;
  s.points_analyzed = c.points_analyzed.value() - base.points_analyzed;
  s.local_tasks = c.local_tasks.value() - base.local_tasks;
  s.remote_dependencies = c.remote_dependencies.value() - base.remote_dependencies;
  s.copies_planned = c.copies_planned.value() - base.copies_planned;
  s.interference_pair_tests =
      c.interference_pair_tests.value() - base.interference_pair_tests;
  s.interference_skips = c.interference_skips.value() - base.interference_skips;
  return s;
}

ShardContext::ShardContext(ShardedRuntime& rt, uint32_t shard)
    : rt_(&rt), shard_(shard), tracker_(rt.forest_) {}

uint32_t ShardContext::shard_count() const { return rt_->config_.shards; }

LaunchResult ShardContext::execute_index(const IndexLauncher& launcher) {
  ShardedRuntime& rt = *rt_;
  IDXL_REQUIRE(launcher.task < rt.task_registry_.size(), "unknown task id");
  IDXL_REQUIRE(!launcher.domain.empty(), "index launch over an empty domain");
  ProfileScope issue_scope(rt.prof_, ProfCategory::kIssue,
                           rt.prof_ != nullptr
                               ? rt.task_prof_names_[launcher.task]
                               : Profiler::kNameIssue);

  const uint64_t seq = next_launch_++;
  // Control-replication contract: every shard must issue the identical
  // descriptor at the identical program point.
  rt.check_replication(seq, fnv1a(serialize_launcher(launcher)));

  const ShardedRuntime::ShardCells& cells = rt.shard_cells_[shard_];
  cells.launches_issued.inc();
  cells.runtime_calls.inc(rt.config_.enable_index_launches
                              ? 1
                              : static_cast<uint64_t>(launcher.domain.volume()));

  // Safety analysis, replicated on every shard (deterministic: all agree).
  LaunchResult result;
  result.launch_id = seq;
  result.ran_as_index_launch = true;
  if (!launcher.assume_verified) {
    std::vector<CheckArg> check_args;
    check_args.reserve(launcher.args.size());
    {
      // Forest reads race with subregion creation on other shard threads
      // (the per-point loop below mutates the forest under forest_mu_).
      std::lock_guard<std::mutex> lock(rt.forest_mu_);
      for (const ProjectedArg& pa : launcher.args) {
        CheckArg ca;
        ca.functor = &pa.functor;
        ca.color_space = rt.forest_.color_space(pa.partition);
        ca.partition_disjoint = rt.forest_.is_disjoint(pa.partition);
        ca.partition_uid = pa.partition.id;
        ca.collection_uid = rt.forest_.region(pa.parent).tree_id;
        ca.field_mask = field_mask(pa.fields);
        ca.priv = pa.privilege;
        ca.redop = pa.redop;
        check_args.push_back(ca);
      }
    }
    AnalysisOptions options;
    options.enable_dynamic_checks = rt.config_.enable_dynamic_checks;
    options.profiler = rt.prof_;
    if (rt.config_.enable_verdict_cache) options.verdict_cache = &rt.verdict_cache_;
    auto pair_independent = [&](std::size_t i, std::size_t j) {
      std::lock_guard<std::mutex> lock(rt.forest_mu_);
      return rt.forest_.partitions_independent(
          launcher.args[i].parent, launcher.args[i].partition,
          launcher.args[j].parent, launcher.args[j].partition);
    };
    ProfileScope safety_scope(rt.prof_, ProfCategory::kSafety,
                              Profiler::kNameSafetyCheck);
    const SafetyReport report =
        analyze_launch_safety(check_args, launcher.domain, options, pair_independent);
    safety_scope.close();
    IDXL_REQUIRE(report.safe(), ("unsafe index launch in sharded mode: " +
                                 report.reason).c_str());
    result.safety = report;
  }

  // Inter-launch interference: decide once per argument whether the
  // replicated per-point conflict probe below may be skipped on a checked
  // certificate. The pair cache is shared (first shard to miss analyzes)
  // but the verdicts are deterministic, so every shard replicates the
  // identical skip decision — and the identical dependence edges. History
  // records every launch (even assume_verified ones, which the safety
  // analysis skipped): a later launch must be tested against ALL recorded
  // uses or the skip is unsound.
  const std::size_t n_args = launcher.args.size();
  std::vector<bool> skip_scan(n_args, false);
  if (rt.config_.enable_interference_analysis) {
    std::vector<LaunchArgSummary> summaries;
    std::vector<LazyFingerprint> fps(n_args);
    summaries.reserve(n_args);
    {
      std::lock_guard<std::mutex> lock(rt.forest_mu_);
      for (const ProjectedArg& pa : launcher.args) {
        LaunchArgSummary s;
        s.functor = pa.functor;
        s.domain = launcher.domain;
        s.color_space = rt.forest_.color_space(pa.partition);
        s.partition_uid = pa.partition.id;
        s.partition_disjoint = rt.forest_.is_disjoint(pa.partition);
        s.collection_uid = rt.forest_.region(pa.parent).tree_id;
        s.field_mask = field_mask(pa.fields);
        s.priv = pa.privilege;
        s.redop = pa.redop;
        summaries.push_back(std::move(s));
      }
    }
    // Same gating as the local runtime's group tier: writer skips need a
    // points-independent launch (kSafeStatic/kSafeDynamic), reductions are
    // ordered serially only by the probe, and overlapping same-launch args
    // keep their probe regardless of cross-launch verdicts.
    const bool pair_analysis =
        !launcher.assume_verified &&
        (result.safety.outcome == SafetyOutcome::kSafeStatic ||
         result.safety.outcome == SafetyOutcome::kSafeDynamic);
    for (std::size_t a = 0; a < n_args; ++a) {
      bool same_launch_overlap = false;
      for (std::size_t o = 0; o < n_args; ++o)
        if (o != a && summaries[o].collection_uid == summaries[a].collection_uid &&
            (summaries[o].field_mask & summaries[a].field_mask) != 0 &&
            (summaries[o].writes() || summaries[a].writes()))
          same_launch_overlap = true;
      if (pair_analysis && !same_launch_overlap &&
          launcher.args[a].privilege != Privilege::kReduce) {
        ProfileScope pair_scope(rt.prof_, ProfCategory::kSafety,
                                Profiler::kNameSafetyCheck);
        uint64_t pair_tests = 0;
        skip_scan[a] = interference_history_.certified_disjoint(
            summaries[a].collection_uid, summaries[a], fps[a],
            rt.interference_cache_, /*analyze=*/true, &pair_tests);
        cells.interference_pair_tests.inc(pair_tests);
        if (skip_scan[a]) cells.interference_skips.inc();
      }
    }
    for (std::size_t a = 0; a < n_args; ++a)
      interference_history_.record(summaries[a].collection_uid,
                                   std::move(summaries[a]), std::move(fps[a]));
  }

  // Replicated per-point analysis + owner-only task construction.
  const TaskFn& body = rt.task_registry_[launcher.task].second;
  int64_t rank = 0;
  launcher.domain.for_each([&](const Point& p) {
    const uint64_t key = (seq << 24) | static_cast<uint64_t>(rank);
    IDXL_REQUIRE(rank < (1 << 24), "launch too large for sharded-mode keys");
    ++rank;
    const TaskNodePtr node = rt.event_for(key);
    const uint32_t owner =
        rt.config_.sharding->shard(p, launcher.domain, rt.config_.shards);
    node->owner.store(owner, std::memory_order_relaxed);
    cells.points_analyzed.inc();

    // Forest mutations (subregion creation) and reads race across shard
    // threads; one coarse lock keeps the demo honest and simple.
    //
    // In distributed-storage mode, each region argument is additionally
    // resolved against the owner shard's replica, and "copy-ins" are
    // planned: for every logged remote write overlapping the data this task
    // touches, the overlapping bytes move from the writer shard's replica
    // into the owner's, inside the task closure — after the dependence
    // edges have made the producers complete. This is Legion's implicit
    // data movement, made explicit.
    struct ResolvedCopy {
      uint64_t seq;
      Domain overlap;
      Rect bounds;
      struct FieldCopy {
        const std::byte* src;
        std::byte* dst;
        std::size_t size;
      };
      std::vector<FieldCopy> fields;
    };
    std::vector<TaskNodePtr> deps;
    std::vector<PhysicalRegion> regions;
    std::vector<ResolvedCopy> copies;
    {
      ProfileScope dep_scope(rt.prof_, ProfCategory::kDependence,
                             Profiler::kNameDependence, key);
      std::lock_guard<std::mutex> lock(rt.forest_mu_);
      for (std::size_t ai = 0; ai < launcher.args.size(); ++ai) {
        const ProjectedArg& pa = launcher.args[ai];
        const Point color = pa.functor(p);
        const RegionId region = rt.forest_.subregion(pa.parent, pa.partition, color);
        const RegionInfo& info = rt.forest_.region(region);
        const bool through_disjoint =
            info.through.valid() && rt.forest_.is_disjoint(info.through);
        const uint64_t mask = field_mask(pa.fields);
        // Every shard records every use: the replicated analysis of DCR.
        // Certified-disjoint args record without probing (scan = false).
        tracker_.record_use(info.tree_id, info.ispace, mask,
                            privilege_writes(pa.privilege), info.through,
                            through_disjoint, node, deps,
                            /*keep_done=*/false, /*scan=*/!skip_scan[ai]);

        if (owner == shard_) {
          if (!rt.config_.distributed_storage) {
            regions.emplace_back(rt.forest_, region, pa.fields, pa.privilege, pa.redop);
          } else {
            ShardedRuntime::Replica& mine = rt.replica(shard_, info.root.id);
            std::vector<PhysicalRegion::ResolvedField> resolved;
            for (FieldId f : pa.fields)
              resolved.push_back(PhysicalRegion::ResolvedField{
                  f, mine.data.at(f).data(), rt.forest_.field(info.fspace, f).size});
            regions.emplace_back(region, &rt.forest_.region_domain(region),
                                 rt.forest_.storage_bounds(region), std::move(resolved),
                                 pa.privilege, pa.redop);
            // Plan copy-ins: resolve, per element and field, the *latest*
            // writer of the data this task touches (the log is already in
            // program order), and copy only bytes whose latest writer is a
            // different shard — an earlier remote write must never clobber
            // a later local one.
            for (FieldId f : pa.fields) {
              std::unordered_map<Point, uint32_t, PointHash> latest;
              for (const ShardWriteRecord& rec : write_log_) {
                if (rec.root != info.root.id || !(rec.fields & (uint64_t{1} << f)))
                  continue;
                const Domain overlap = rt.forest_.domain(rec.ispace)
                                           .intersection(rt.forest_.domain(info.ispace));
                overlap.for_each([&](const Point& q) { latest[q] = rec.shard; });
              }
              // Group the remote-owned points by source shard.
              std::unordered_map<uint32_t, std::vector<Point>> by_shard;
              for (const auto& [q, src_shard] : latest)
                if (src_shard != shard_) by_shard[src_shard].push_back(q);
              for (auto& [src_shard, points] : by_shard) {
                ResolvedCopy copy;
                copy.seq = key;
                copy.overlap = Domain::from_points(std::move(points));
                copy.bounds = rt.forest_.storage_bounds(region);
                ShardedRuntime::Replica& src = rt.replica(src_shard, info.root.id);
                copy.fields.push_back(ResolvedCopy::FieldCopy{
                    src.data.at(f).data(), mine.data.at(f).data(),
                    rt.forest_.field(info.fspace, f).size});
                copies.push_back(std::move(copy));
                cells.copies_planned.inc();
              }
            }
          }
        }
        // Every shard appends the identical write record (replicated log).
        if (rt.config_.distributed_storage && privilege_writes(pa.privilege)) {
          write_log_.push_back({key, info.root.id, info.ispace, mask, owner});
          cells.write_log.set(static_cast<int64_t>(write_log_.size()));
        }
      }
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

    if (owner != shard_) return;  // someone else executes this point

    cells.local_tasks.inc();
    for (const TaskNodePtr& dep : deps)
      if (dep->owner.load(std::memory_order_relaxed) != shard_)
        cells.remote_dependencies.inc();
    if (rt.prof_ != nullptr) {
      // Owner-only: every shard discovers the identical edges; recording
      // them once keeps the critical-path graph free of duplicates.
      std::vector<uint64_t> dep_seqs;
      dep_seqs.reserve(deps.size());
      for (const TaskNodePtr& dep : deps) dep_seqs.push_back(dep->seq);
      rt.prof_->record_edges(key, dep_seqs);
    }

    // Apply planned copy-ins in program order (a later writer's bytes must
    // land last when plans overlap). Reorder via an index sort: gcc 12's
    // -Wmaybe-uninitialized misfires on std::sort's swap of the
    // Domain-bearing struct.
    {
      std::vector<std::size_t> order(copies.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&copies](std::size_t a, std::size_t b) {
        return copies[a].seq < copies[b].seq;
      });
      std::vector<ResolvedCopy> sorted;
      sorted.reserve(copies.size());
      for (std::size_t i : order) sorted.push_back(std::move(copies[i]));
      copies = std::move(sorted);
    }

    ArgBuffer scalar = launcher.scalar_args;
    const Domain domain = launcher.domain;
    node->label = rt.task_registry_[launcher.task].first + "@" + p.to_string();
    node->prof_name = rt.prof_ != nullptr ? rt.task_prof_names_[launcher.task] : 0;
    // Owner-only writes (racing identical stores from other shards would
    // still be data races); node_job reads them after schedule() publishes
    // the node through the pending counter.
    node->launch = seq;
    node->point = p;
    node->max_retries = launcher.max_retries;
    node->backoff_ms = launcher.retry_backoff_ms;
    node->timeout_ms = launcher.timeout_ms;
    node->work = [&body, p, domain, prof = rt.prof_, key,
                  scalar = std::move(scalar), regions = std::move(regions),
                  copies = std::move(copies)]() mutable {
      // Inter-shard data movement: dependencies guaranteed the producers
      // finished, so their replica bytes are stable to read.
      if (!copies.empty()) {
        ProfileScope exchange_scope(prof, ProfCategory::kExchange,
                                    Profiler::kNameShardExchange, key);
        for (const ResolvedCopy& copy : copies) {
          for (const auto& fc : copy.fields) {
            copy.overlap.for_each([&](const Point& q) {
              const auto off =
                  static_cast<std::size_t>(copy.bounds.linearize(q)) * fc.size;
              std::memcpy(fc.dst + off, fc.src + off, fc.size);
            });
          }
        }
      }
      TaskContext ctx;
      ctx.point = p;
      ctx.launch_domain = domain;
      ctx.scalar_args = &scalar;
      ctx.regions = std::move(regions);
      body(ctx);
    };
    rt.schedule(shard_, node, deps);
  });
  return result;
}

// --- RuntimeApi facade ----------------------------------------------------

LaunchResult ShardedRuntime::execute(const TaskLauncher&) {
  throw RuntimeError(
      "the sharded backend cannot launch single tasks: ShardContext has no "
      "partition-free region arguments. Use execute_index (or fill) — or "
      "the local/dist backends.");
}

LaunchResult ShardedRuntime::execute_index(const IndexLauncher& launcher) {
  IDXL_REQUIRE(launcher.result_redop == ReductionOp::kNone,
               "the sharded backend does not collect futures");
  LaunchResult result;
  result.launch_id = facade_launches_++;
  result.ran_as_index_launch = true;
  deferred_.push_back(launcher);
  return result;
}

void ShardedRuntime::wait_all() {
  if (deferred_.empty()) return;
  std::vector<IndexLauncher> batch = std::move(deferred_);
  deferred_.clear();
  const FaultReport flushed = run([&batch](ShardContext& ctx) {
    for (const IndexLauncher& l : batch) ctx.execute_index(l);
  });
  std::lock_guard<std::mutex> lock(history_mu_);
  facade_used_ = true;
  history_.failures.insert(history_.failures.end(), flushed.failures.begin(),
                           flushed.failures.end());
  history_.poisoned.insert(history_.poisoned.end(), flushed.poisoned.begin(),
                           flushed.poisoned.end());
}

FaultReport ShardedRuntime::fault_report() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  // Legacy run() callers see the current run's snapshot; the facade (which
  // resets faults_ once per flush) sees every flush merged.
  return facade_used_ ? history_ : faults_.report();
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  for (uint32_t s = 0; s < config_.shards; ++s) {
    const ShardStats ss = stats(s);
    out.runtime_calls += ss.runtime_calls;
    out.point_tasks += ss.local_tasks;
    out.dependence_edges += ss.remote_dependencies;
    // Launches are replicated: every shard issues every launch, so shard
    // 0's count is the program's.
    if (s == 0) out.index_launches = ss.launches_issued;
    // Pair analyses race to populate the shared cache (whichever shard
    // misses first pays), so the total work is the cross-shard sum; the skip
    // decision itself is replicated — shard 0's count is the program's.
    out.interference_pair_tests += ss.interference_pair_tests;
    if (s == 0) out.interference_skips = ss.interference_skips;
  }
  const InterferenceCache::Counters ic = interference_cache_.counters();
  out.interference_cache_hits = ic.hits;
  out.interference_cache_misses = ic.misses;
  out.interference_imported = ic.imported;
  out.interference_validated = ic.validated;
  out.interference_rejected = ic.rejected;
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  out.tasks_completed = out.point_tasks;
  out.tasks_failed = static_cast<uint64_t>(
      snap.value("idxl_fault_tasks_total", {{"kind", "exception"}}, 0) +
      snap.value("idxl_fault_tasks_total", {{"kind", "explicit"}}, 0) +
      snap.value("idxl_fault_tasks_total", {{"kind", "injected"}}, 0) +
      snap.value("idxl_fault_tasks_total", {{"kind", "timeout"}}, 0) +
      snap.value("idxl_fault_tasks_total", {{"kind", "cancelled"}}, 0));
  out.tasks_poisoned =
      static_cast<uint64_t>(snap.value("idxl_fault_poisoned_total", {}, 0));
  out.fault_injections =
      static_cast<uint64_t>(snap.value("idxl_fault_injections_total", {}, 0));
  out.retry_attempts =
      static_cast<uint64_t>(snap.value("idxl_retry_attempts_total", {}, 0));
  out.retries_succeeded =
      static_cast<uint64_t>(snap.value("idxl_retry_succeeded_total", {}, 0));
  return out;
}

void ShardedRuntime::sync_for_read() {
  wait_all();
  if (config_.distributed_storage) synchronize_storage();
}

void ShardedRuntime::fill_bytes_region(RegionId r, FieldId f,
                                       const void* pattern, std::size_t size) {
  IDXL_REQUIRE(size > 0, "empty fill pattern");
  IDXL_REQUIRE(forest_.field(forest_.region(r).fspace, f).size == size,
               "fill value type does not match the field size");
  // Fence first so the direct storage write is ordered against every
  // deferred launch; replicas re-seed from forest storage at the next run.
  sync_for_read();
  PhysicalRegion view(forest_, r, {f}, Privilege::kWrite, ReductionOp::kNone);
  view.fill_bytes(f, pattern, size);
}

}  // namespace idxl
