#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "analysis/hybrid.hpp"
#include "analysis/interference.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "runtime/dependence.hpp"
#include "runtime/fault.hpp"
#include "runtime/api.hpp"
#include "runtime/mapping.hpp"
#include "runtime/physical.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/types.hpp"

namespace idxl {

/// A *functional* model of dynamic control replication (Bauer et al. [6],
/// the §5 DCR mode) — not just the timing model in src/sim, but an
/// executing runtime:
///
///  * The application provides an SPMD `program`; every shard runs it in
///    its own thread, issuing the identical launch stream (control
///    replication). Divergence is detected by hashing each launch's
///    serialized descriptor and comparing across shards — the launch
///    stream must be bit-identical, as real DCR requires.
///  * Every shard performs the full (replicated) dependence analysis for
///    every point of every launch — this is exactly the O(P)-per-node cost
///    the paper shows index launches avoiding; per-shard stats expose it.
///  * A sharding functor assigns each launch point an owner; only the
///    owner builds an executable task. Cross-shard dependencies flow
///    through shared completion events ("the network"): a consumer on
///    shard A attaches to the producer node owned by shard B, and B's
///    completion hands the ready consumer to A's pool.
///
/// Scope: region/partition/task setup happens once, before run() (in real
/// DCR this metadata is replicated identically; sharing it is equivalent
/// and keeps the forest single-writer). Data lives in the shared forest
/// storage; coherence is the happens-before provided by the event graph —
/// the single-address-space stand-in for Legion's copies (DESIGN.md §1).
struct ShardedConfig {
  uint32_t shards = 2;
  unsigned workers_per_shard = 1;
  bool enable_index_launches = true;
  bool enable_dynamic_checks = true;
  /// Share one launch-site verdict cache across every shard's replicated
  /// safety analysis: the first shard to analyze a launch site pays for the
  /// analysis, the rest (and later iterations) hit the cache.
  bool enable_verdict_cache = true;
  /// Inter-launch interference analysis (certified kDisjoint pair verdicts
  /// short-circuit the replicated per-point conflict probe). The pair cache
  /// is shared across shards like the verdict cache; verdicts are
  /// deterministic, so every shard reaches the identical skip decision.
  bool enable_interference_analysis = true;
  std::shared_ptr<ShardingFunctor> sharding;  // default: BlockShardingFunctor
  /// When true, every shard owns a private replica of each root region's
  /// storage ("distributed memories"): tasks read and write their shard's
  /// replica, and the runtime copies producer subregions across shards
  /// before dependent tasks run — the data movement Legion performs
  /// implicitly (§2: "collections are not fixed in a specific memory but
  /// may be copied and migrated"). When false, all shards share the
  /// forest's storage and coherence is pure happens-before.
  bool distributed_storage = false;
  /// Record per-event spans (issuance, replicated analysis, task execution,
  /// inter-shard copies) into ShardedRuntime::profiler(). Off by default.
  bool enable_profiling = false;
  /// Deterministic fault injections (IDXL_FAULT_PLAN overrides at
  /// construction, exactly like RuntimeConfig::fault_plan). Because every
  /// shard sees the identical launch stream, the injected set — and hence
  /// the FaultReport — is identical no matter which shard owns each point.
  std::shared_ptr<const FaultPlan> fault_plan;
};

/// Per-shard counters for the current (or most recent) run(). Backed by
/// shard-labeled series in ShardedRuntime::metrics(), read through one
/// registry snapshot, so stats() is safe to call from any thread while the
/// run is in flight; each run() starts the view from zero (the registry
/// series themselves are monotone across runs, as counters must be).
struct ShardStats {
  uint64_t launches_issued = 0;   ///< replicated: every shard sees every launch
  uint64_t runtime_calls = 0;     ///< 1/launch with IDX, |D|/launch without
  uint64_t points_analyzed = 0;   ///< replicated analysis work
  uint64_t local_tasks = 0;       ///< tasks this shard actually executed
  uint64_t remote_dependencies = 0;  ///< edges that crossed a shard boundary
  uint64_t copies_planned = 0;    ///< inter-shard data movements (distributed storage)
  uint64_t interference_pair_tests = 0;  ///< pair analyses this shard ran (cache misses)
  uint64_t interference_skips = 0;  ///< per-arg conflict probes skipped on a certificate
};

class ShardedRuntime;

/// One write in the replicated write log (distributed-storage mode): which
/// shard's replica holds the authoritative bytes of `ispace`'s `fields`
/// after program point `seq`. Every shard derives the identical log from
/// the identical launch stream, so copy planning never waits on another
/// shard's progress.
struct ShardWriteRecord {
  uint64_t seq = 0;  // global task key: program order
  uint32_t root = 0;
  IndexSpaceId ispace;
  uint64_t fields = 0;
  uint32_t shard = 0;
};

/// Per-shard handle the SPMD program uses to issue work.
class ShardContext {
 public:
  uint32_t shard_id() const { return shard_; }
  uint32_t shard_count() const;

  /// Issue an index launch. The identical call must be made by every shard
  /// (checked). Unsafe launches throw — the sharded mode has no sequential
  /// fallback loop (it would defeat the replication contract). Returns the
  /// same LaunchResult shape as Runtime::execute_index (futures are not
  /// collected in sharded mode, so the future is never valid).
  LaunchResult execute_index(const IndexLauncher& launcher);

 private:
  friend class ShardedRuntime;
  ShardContext(ShardedRuntime& rt, uint32_t shard);

  ShardedRuntime* rt_;
  uint32_t shard_;
  DependenceTracker tracker_;  // per-shard replicated analysis state
  /// Launch-argument summaries this context issued (replicated, like the
  /// tracker): the "other side" of every inter-launch pair test. Lives
  /// exactly as long as tracker_ — one run(), no mid-run fences.
  InterferenceHistory interference_history_;
  uint64_t next_launch_ = 0;
  std::vector<ShardWriteRecord> write_log_;  // distributed-storage mode only
};

/// In-process control-replication backend of RuntimeApi. Two usage styles:
///
///  * Legacy/SPMD: run(program over ShardContext&) — the program runs on
///    every shard thread, issuing the identical stream.
///  * Facade: issue through the RuntimeApi surface (execute_index, fill,
///    wait_all). Launches are *deferred* and replayed SPMD across every
///    shard at the next fence — the facade is the single-threaded authoring
///    convenience; replication still happens per the contract. Single-task
///    execute() is not expressible through ShardContext (it has no
///    partition-free region arguments) and throws.
class ShardedRuntime : public RuntimeApi {
 public:
  explicit ShardedRuntime(ShardedConfig config = {});
  ~ShardedRuntime() override;

  RegionForest& forest() override { return forest_; }
  TaskFnId register_task(std::string name, TaskFn fn) override;

  // --- RuntimeApi facade (deferred issuance) -----------------------------

  /// Unsupported on this backend (see class comment): throws RuntimeError.
  LaunchResult execute(const TaskLauncher& launcher) override;

  /// Defer an index launch; it replays on every shard at the next
  /// wait_all(). The returned safety report is pending (analysis is
  /// replicated at flush time) and the future is never valid
  /// (result_redop must be kNone).
  LaunchResult execute_index(const IndexLauncher& launcher) override;

  /// Flush deferred launches through one SPMD run() and block until every
  /// task reached a terminal state.
  void wait_all() override;

  /// Aggregate per-shard counters mapped onto the common shape.
  RuntimeStats stats() const override;

  /// Fence, then (in distributed-storage mode) gather replicas into the
  /// forest storage so top-level reads see authoritative bytes.
  void sync_for_read() override;

  /// Fence, then fill the region's elements directly in forest storage
  /// (ordered: nothing is in flight after the fence).
  void fill_bytes_region(RegionId r, FieldId f, const void* pattern,
                         std::size_t size) override;

  using RuntimeApi::run;  // FaultReport run(program over RuntimeApi&)

  /// Run `program` on every shard (SPMD) and block until every task reached
  /// a terminal state. Rethrows the first *issuance* exception any shard
  /// thread raised (control divergence, unsafe launch); task-body failures
  /// do not throw — they land in the returned FaultReport, which aggregates
  /// faults across every shard (cross-shard poison flows over the same
  /// completion events as readiness). Empty report = clean run.
  FaultReport run(const std::function<void(ShardContext&)>& program);

  /// Faults accumulated since the last run() started (same snapshot run()
  /// returned; callable mid-run from any thread). Through the facade, the
  /// merged report of every flush since construction.
  FaultReport fault_report() const override;

  /// One shard's counters for the current/most recent run(), read through a
  /// registry snapshot — safe to call mid-run from any thread.
  ShardStats stats(uint32_t shard) const;

  /// The registry behind stats(): shard-labeled counter series
  /// (idxl_shard_*_total{shard="s"}) plus write-log size gauges.
  obs::MetricsRegistry& metrics() override { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The verdict cache shared by every shard (thread-safe; populated only
  /// when ShardedConfig::enable_verdict_cache is set).
  VerdictCache& verdict_cache() { return verdict_cache_; }
  const VerdictCache& verdict_cache() const { return verdict_cache_; }

  /// The inter-launch pair-verdict cache shared by every shard (thread-safe;
  /// populated only when ShardedConfig::enable_interference_analysis is set).
  InterferenceCache& interference_cache() { return interference_cache_; }
  const InterferenceCache& interference_cache() const {
    return interference_cache_;
  }

  /// Observability: one profiler spans all shards (lanes distinguish the
  /// issuing shard threads and per-shard pool workers). Records nothing
  /// unless ShardedConfig::enable_profiling was set.
  Profiler& profiler() { return *profiler_; }
  const Profiler& profiler() const { return *profiler_; }

  // read_region<T>() is inherited from RuntimeApi: it calls
  // sync_for_read(), which fences deferred launches and synchronizes
  // replicas — a superset of the old local definition.

 private:
  friend class ShardContext;

  /// Shared completion event / task node for global task `key`.
  TaskNodePtr event_for(uint64_t key);

  /// Register (first caller) or verify (others) the launch descriptor hash
  /// for launch sequence number `seq`.
  void check_replication(uint64_t seq, uint64_t hash);

  void schedule(uint32_t owner, const TaskNodePtr& node,
                const std::vector<TaskNodePtr>& deps);
  void make_ready(const TaskNodePtr& node);
  /// The pool job that executes `node` then fans out to ready successors,
  /// batched per owner pool through ThreadPool::submit_batch. Mirrors the
  /// single runtime's fault handling: poison gate, injection, timeout,
  /// retry with backoff on the owner pool's timer queue.
  std::function<void()> node_job(TaskNodePtr node);
  /// Terminal fault path: record, count, decrement outstanding_, fan out
  /// poison (the root-cause seq) to the dependence closure.
  void finish_fault(const TaskNodePtr& node, FaultKind kind, uint64_t root,
                    uint32_t attempts, std::string message);
  /// Completion fan-out shared by success and fault paths. `poison` is the
  /// root seq to propagate (UINT64_MAX = healthy completion); ready
  /// successors are batched per owner pool.
  void fan_out(const TaskNodePtr& node, uint64_t poison);
  obs::Counter& fault_cell(FaultKind kind);
  void drain();

  // --- distributed storage (config_.distributed_storage) ---
  /// One shard's private copy of a root region's storage.
  struct Replica {
    std::unordered_map<FieldId, std::vector<std::byte>> data;
  };
  /// Shard `shard`'s replica of root region `root`, created on first use by
  /// copying the forest's (setup-time) storage. Inter-shard copies are
  /// planned at issue time (the producers' write log determines sources)
  /// and resolved into the consuming task's closure, running after its
  /// dependencies — the producers — completed.
  Replica& replica(uint32_t shard, uint32_t root);
  /// Replay the write log into the forest storage so top-level readers see
  /// the authoritative values.
  void synchronize_storage();

  std::mutex replica_mu_;
  std::vector<std::unordered_map<uint32_t, Replica>> replicas_;  // [shard][root]
  std::vector<ShardWriteRecord> write_log_;  // final log, for synchronize_storage

  /// Registry-backed write side of stats(): one labeled series per shard.
  /// Counters are monotone across run() calls; `base_` holds each counter's
  /// value at the start of the current run so stats() reads per-run deltas.
  struct ShardCells {
    obs::Counter launches_issued, runtime_calls, points_analyzed, local_tasks,
        remote_dependencies, copies_planned, interference_pair_tests,
        interference_skips;
    obs::Gauge write_log;
  };

  /// Run-wide (not per-shard) fault/retry counters, mirroring the single
  /// runtime's idxl_fault_* / idxl_retry_* families.
  struct FaultCells {
    obs::Counter fault_exception, fault_explicit, fault_injected, fault_timeout,
        fault_cancelled, fault_poisoned, fault_injections, retry_attempts,
        retry_succeeded;
  };

  ShardedConfig config_;
  RegionForest forest_;
  VerdictCache verdict_cache_;  // shared across shard threads (internally locked)
  InterferenceCache interference_cache_;  // ditto: one pair cache per runtime
  std::mutex forest_mu_;  // guards subregion creation during run()
  // Observability precedes the pools: workers record until joined.
  obs::MetricsRegistry metrics_;
  std::vector<ShardCells> shard_cells_;
  FaultCells fault_cells_;
  std::vector<ShardStats> shard_base_;  ///< counter values at run() start
  FaultLog faults_;  ///< shared by every shard's workers (internally locked)
  std::unique_ptr<Profiler> profiler_;
  Profiler* prof_ = nullptr;  ///< == profiler_.get() iff profiling is enabled
  std::vector<std::pair<std::string, TaskFn>> task_registry_;
  std::vector<uint32_t> task_prof_names_;  ///< interned name per TaskFnId
  std::vector<std::unique_ptr<ThreadPool>> pools_;

  std::mutex table_mu_;
  std::unordered_map<uint64_t, TaskNodePtr> events_;
  std::unordered_map<uint64_t, uint64_t> launch_hashes_;
  std::atomic<int64_t> outstanding_{0};  // scheduled-but-incomplete tasks

  // --- RuntimeApi facade state (issuing thread only, except history_) ----
  std::vector<IndexLauncher> deferred_;
  uint64_t facade_launches_ = 0;
  mutable std::mutex history_mu_;
  FaultReport history_;  ///< merged reports of every facade flush
  bool facade_used_ = false;
};

}  // namespace idxl
