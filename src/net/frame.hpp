#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace idxl::net {

/// Transport framing for the distributed runtime: every message on the wire
/// is a 12-byte header followed by `payload_len` opaque payload bytes.
///
///   offset 0  u32  magic  "IDXL" (little-endian 0x4C584449)
///   offset 4  u8   protocol version (kNetVersion)
///   offset 5  u8   message type (src/dist/protocol.hpp enumerates them)
///   offset 6  u16  reserved, must be zero
///   offset 8  u32  payload length in bytes
///
/// This is deliberately a second, outer layer of versioning: the header
/// guards the *transport* (frame boundaries, peer compatibility), while the
/// serialized descriptors inside the payload carry their own
/// kWireMagic/kWireVersion header (src/runtime/serialize.hpp) guarding the
/// *encoding*. A mismatch in either direction is rejected loudly rather
/// than misparsed.
inline constexpr uint32_t kNetMagic = 0x4C584449;  // "IDXL"
inline constexpr uint8_t kNetVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;

/// Upper bound on a single frame's payload; a header announcing more is
/// treated as a protocol violation (corrupt stream / hostile peer), not an
/// allocation request.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

struct Frame {
  uint8_t type = 0;
  std::vector<std::byte> payload;
};

/// Serialize header + payload into one contiguous buffer (single send()).
std::vector<std::byte> encode_frame(uint8_t type, const std::byte* payload,
                                    std::size_t len);
inline std::vector<std::byte> encode_frame(uint8_t type,
                                           const std::vector<std::byte>& p) {
  return encode_frame(type, p.data(), p.size());
}

/// Incremental decoder for a TCP byte stream: feed() arbitrary chunks
/// (partial headers, coalesced messages — any split the kernel hands back),
/// poll() complete frames out. Throws RuntimeError on bad magic, version
/// mismatch, nonzero reserved bits or oversized payloads.
class FrameReader {
 public:
  void feed(const std::byte* data, std::size_t len);

  /// Extract the next complete frame, if any.
  bool poll(Frame& out);

  /// Bytes buffered but not yet returned as frames (diagnostics/tests).
  std::size_t pending_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already handed out
};

}  // namespace idxl::net
