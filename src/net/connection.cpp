#include "net/connection.hpp"

#include <sys/socket.h>

#include <chrono>

#include "support/error.hpp"

namespace idxl::net {

namespace {

uint64_t steady_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Connection::Connection(Socket sock, std::string peer, NetObs obs)
    : sock_(std::move(sock)), peer_(std::move(peer)), obs_(obs) {
  IDXL_REQUIRE(sock_.valid(), "Connection over an invalid socket");
  if (obs_.metrics != nullptr)
    queue_depth_ = obs_.metrics->gauge("idxl_net_send_queue_depth",
                                       "frames queued but not yet written",
                                       {{"peer", peer_}});
  sender_ = std::thread([this] { sender_main(); });
}

Connection::~Connection() { close(); }

void Connection::count(bool sent, uint8_t type, std::size_t bytes) {
  if (obs_.metrics != nullptr) {
    const uint16_t key = static_cast<uint16_t>(type) |
                         static_cast<uint16_t>(sent ? 0x100 : 0);
    DirCells* cells;
    {
      std::lock_guard<std::mutex> lock(cells_mu_);
      auto it = cells_.find(key);
      if (it == cells_.end()) {
        const char* tn =
            obs_.type_name != nullptr ? obs_.type_name(type) : "unknown";
        DirCells c;
        c.bytes = obs_.metrics->counter(
            sent ? "idxl_net_bytes_sent_total" : "idxl_net_bytes_recv_total",
            "frame bytes on the wire, header included",
            {{"peer", peer_}, {"type", tn}});
        c.frames = obs_.metrics->counter(
            sent ? "idxl_net_frames_sent_total" : "idxl_net_frames_recv_total",
            "frames on the wire", {{"peer", peer_}, {"type", tn}});
        it = cells_.emplace(key, c).first;
      }
      cells = &it->second;
    }
    cells->bytes.inc(bytes);
    cells->frames.inc();
  }
  if (obs_.recorder != nullptr) {
    obs::FlightEvent ev;
    ev.kind = sent ? obs::LifecycleEvent::kNetSend : obs::LifecycleEvent::kNetRecv;
    ev.seq = type;    // frame type, not a task — see the enum's doc comment
    ev.edge = bytes;
    obs_.recorder->record(ev);
  }
}

void Connection::send(uint8_t type, const std::vector<std::byte>& payload) {
  std::vector<std::byte> wire = encode_frame(type, payload);
  count(/*sent=*/true, type, wire.size());
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    IDXL_REQUIRE(!stop_sender_, "send() on a closed connection");
    send_queue_.push_back(std::move(wire));
    sender_idle_ = false;
    queue_depth_.add(1);
  }
  send_cv_.notify_one();
}

void Connection::sender_main() {
  for (;;) {
    std::vector<std::byte> wire;
    {
      std::unique_lock<std::mutex> lock(send_mu_);
      send_cv_.wait(lock, [&] { return stop_sender_ || !send_queue_.empty(); });
      if (send_queue_.empty()) {
        // stop requested and nothing left to flush
        sender_idle_ = true;
        drained_cv_.notify_all();
        return;
      }
      wire = std::move(send_queue_.front());
      send_queue_.pop_front();
      queue_depth_.sub(1);
    }
    try {
      sock_.write_all(wire.data(), wire.size());
    } catch (const std::exception&) {
      // Peer is gone; drop the rest of the queue so drain()/close() return.
      std::lock_guard<std::mutex> lock(send_mu_);
      queue_depth_.sub(static_cast<int64_t>(send_queue_.size()));
      send_queue_.clear();
      stop_sender_ = true;
      sender_idle_ = true;
      drained_cv_.notify_all();
      return;
    }
    std::lock_guard<std::mutex> lock(send_mu_);
    if (send_queue_.empty()) {
      sender_idle_ = true;
      drained_cv_.notify_all();
    }
  }
}

std::string Connection::recv_loop(const FrameHandler& on_frame) {
  FrameReader reader;
  Frame frame;
  std::vector<std::byte> buf(64 * 1024);
  try {
    for (;;) {
      const std::size_t n = sock_.read_some(buf.data(), buf.size());
      if (n == 0) {
        // EOF on a frame boundary is an orderly shutdown; EOF with a
        // partial frame buffered means the peer died mid-message.
        if (reader.pending_bytes() != 0)
          return "peer closed the connection mid-frame (" +
                 std::to_string(reader.pending_bytes()) +
                 " bytes of an incomplete frame)";
        return {};
      }
      reader.feed(buf.data(), n);
      while (reader.poll(frame)) {
        last_recv_ns_.store(steady_ns(), std::memory_order_release);
        count(/*sent=*/false, frame.type,
              kFrameHeaderSize + frame.payload.size());
        on_frame(frame);
      }
    }
  } catch (const std::exception& e) {
    return e.what();
  }
}

void Connection::start_recv(FrameHandler on_frame, CloseHandler on_close) {
  IDXL_REQUIRE(!receiver_.joinable(), "start_recv called twice");
  receiver_ = std::thread(
      [this, on_frame = std::move(on_frame), on_close = std::move(on_close)] {
        const std::string error = recv_loop(on_frame);
        if (on_close) on_close(error);
      });
}

void Connection::drain() {
  std::unique_lock<std::mutex> lock(send_mu_);
  drained_cv_.wait(lock, [&] { return sender_idle_; });
}

void Connection::shutdown_read() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RD);
}

void Connection::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) {
    // Second close: threads are already told to stop; just join.
  } else {
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      stop_sender_ = true;
    }
    send_cv_.notify_all();
  }
  if (sender_.joinable()) sender_.join();
  // Shut down reads so a blocked recv() returns; full close happens in ~Socket.
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
  if (receiver_.joinable()) receiver_.join();
}

PeerMonitor::PeerMonitor(std::vector<Connection*> peers, uint8_t ping_type,
                         uint32_t period_ms, uint32_t stall_window_ms,
                         obs::MetricsRegistry* metrics, StallHandler on_stall,
                         PingPayloadFn ping_payload)
    : peers_(std::move(peers)),
      stalled_(peers_.size(), false),
      ping_type_(ping_type),
      period_ms_(period_ms),
      window_ms_(stall_window_ms),
      on_stall_(std::move(on_stall)),
      ping_payload_(std::move(ping_payload)) {
  if (metrics != nullptr)
    stalls_ = metrics->counter("idxl_net_peer_stalls_total",
                               "peers silent past the stall window");
  thread_ = std::thread([this] { main(); });
}

PeerMonitor::~PeerMonitor() { stop(); }

void PeerMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // already stopped
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeerMonitor::main() {
  const uint64_t window_ns = uint64_t{window_ms_} * 1'000'000;
  const uint64_t start_ns = steady_ns();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                   [&] { return stop_; });
      if (stop_) return;
    }
    const uint64_t now = steady_ns();
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Connection* c = peers_[i];
      if (c->closed()) continue;
      try {
        // A fresh payload per peer: clock probes stamp send time, so one
        // shared buffer would skew every peer after the first.
        c->send(ping_type_, ping_payload_ ? ping_payload_()
                                          : std::vector<std::byte>{});
      } catch (const std::exception&) {
        continue;  // connection tore down between the check and the send
      }
      // A peer that has never spoken is measured from monitor start.
      const uint64_t last = c->last_recv_ns();
      const uint64_t ref = last != 0 ? last : start_ns;
      const bool quiet = now > ref && now - ref > window_ns;
      if (quiet && !stalled_[i]) {
        stalled_[i] = true;
        stalls_.inc();
        if (on_stall_) on_stall_(c->peer());
      } else if (!quiet) {
        stalled_[i] = false;
      }
    }
  }
}

}  // namespace idxl::net
