#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace idxl::net {

/// Observability wiring shared by every connection of one endpoint: the
/// `idxl_net_*` metric family, optional flight-recorder events, and a
/// human-readable name per protocol message type (for metric labels).
struct NetObs {
  obs::MetricsRegistry* metrics = nullptr;
  obs::FlightRecorder* recorder = nullptr;
  const char* (*type_name)(uint8_t type) = nullptr;
};

/// One peer connection: an async send queue drained by a dedicated sender
/// thread (so issuing threads never block on the kernel socket buffer) plus
/// a blocking receive loop, with per-message-type byte/frame counters.
///
/// Lifecycle: construct over a connected Socket; optionally start_recv();
/// send() until drain() (flush the queue, keep receiving) or close()
/// (teardown both directions). The destructor closes and joins.
class Connection {
 public:
  using FrameHandler = std::function<void(Frame&)>;
  /// Called once when the receive loop exits: `error` is empty on orderly
  /// peer shutdown, else the reason.
  using CloseHandler = std::function<void(const std::string& error)>;

  Connection(Socket sock, std::string peer, NetObs obs);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const std::string& peer() const { return peer_; }

  /// Enqueue one frame; the sender thread writes it out in FIFO order.
  /// Throws if the connection is already closed.
  void send(uint8_t type, const std::vector<std::byte>& payload);

  /// Run the receive loop on a background thread, one call per frame.
  void start_recv(FrameHandler on_frame, CloseHandler on_close = nullptr);

  /// Run the receive loop on the calling thread until the peer closes or an
  /// error tears the connection down. Returns the close reason ("" = clean).
  std::string recv_loop(const FrameHandler& on_frame);

  /// Block until every queued frame has been handed to the kernel.
  void drain();

  /// Drain, then shut both directions down and join the threads.
  void close();

  /// Shut down the read half only: a recv_loop blocked in recv() observes
  /// orderly EOF and returns cleanly. Safe to call from inside a frame
  /// handler (the worker's kShutdown path ends its own loop this way).
  void shutdown_read();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Steady-clock nanosecond timestamp of the last received frame; 0
  /// until the first one. PeerMonitor reads this to detect hung peers.
  uint64_t last_recv_ns() const {
    return last_recv_ns_.load(std::memory_order_acquire);
  }

 private:
  void sender_main();
  void count(bool sent, uint8_t type, std::size_t bytes);

  Socket sock_;
  std::string peer_;
  NetObs obs_;

  std::mutex send_mu_;
  std::condition_variable send_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::vector<std::byte>> send_queue_;
  bool stop_sender_ = false;
  bool sender_idle_ = true;

  std::thread sender_;
  std::thread receiver_;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> last_recv_ns_{0};

  obs::Gauge queue_depth_;
  std::mutex cells_mu_;
  struct DirCells {
    obs::Counter bytes;
    obs::Counter frames;
  };
  std::unordered_map<uint16_t, DirCells> cells_;  // key: type | (sent << 8)
};

/// Watchdog for a set of connections: a ping thread sends `ping_type`
/// frames every `period_ms`, and any peer silent for longer than
/// `stall_window_ms` raises `idxl_net_peer_stalls_total` and invokes the
/// callback (once per stall episode). Peers answering pings (or sending
/// anything at all) stay clear of the window. An optional payload provider
/// piggybacks data on each heartbeat — the clock probes (net/clock.hpp)
/// ride along this way, so offset estimation costs no extra frames.
class PeerMonitor {
 public:
  using StallHandler = std::function<void(const std::string& peer)>;
  using PingPayloadFn = std::function<std::vector<std::byte>()>;

  PeerMonitor(std::vector<Connection*> peers, uint8_t ping_type,
              uint32_t period_ms, uint32_t stall_window_ms,
              obs::MetricsRegistry* metrics, StallHandler on_stall,
              PingPayloadFn ping_payload = nullptr);
  ~PeerMonitor();

  void stop();

 private:
  void main();

  std::vector<Connection*> peers_;
  std::vector<bool> stalled_;
  uint8_t ping_type_;
  uint32_t period_ms_;
  uint32_t window_ms_;
  StallHandler on_stall_;
  PingPayloadFn ping_payload_;
  obs::Counter stalls_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace idxl::net
