#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace idxl::net {

/// One ping-pong clock probe, piggybacked on PeerMonitor heartbeats. The
/// originator stamps t1 when the ping leaves; the responder echoes t1 and
/// stamps t2 from its own clock; back at the originator (t3) the midpoint
/// method estimates the peer's clock offset as t2 - (t1+t3)/2, correct to
/// within ±rtt/2. All timestamps are absolute steady-clock nanoseconds.
struct ClockProbe {
  static constexpr std::size_t kWireSize = 17;

  uint8_t pong = 0;    ///< 0 = ping (request), 1 = pong (reply)
  uint64_t t1_ns = 0;  ///< originator's clock when the ping left
  uint64_t t2_ns = 0;  ///< responder's clock when it replied (pong only)

  std::vector<std::byte> encode() const;
  /// False when the payload is not a probe (e.g. a payload-less heartbeat
  /// from an older build) — callers treat that as liveness only.
  static bool decode(const std::vector<std::byte>& payload, ClockProbe& out);
};

/// A peer's estimated clock alignment, as exported to the trace merge.
struct ClockEstimate {
  bool valid = false;
  int64_t offset_ns = 0;  ///< peer steady clock minus local steady clock
  uint64_t rtt_ns = 0;    ///< smoothed probe round trip (error bound: ±rtt/2)
  uint64_t samples = 0;   ///< pongs absorbed
};

/// Per-peer clock-offset estimator: absorbs probe pongs, EWMA-smooths the
/// midpoint estimates, and exports `idxl_net_clock_offset_ns{rank}` /
/// `idxl_net_clock_rtt_ns{rank}` gauges. Thread-safe — probes arrive on
/// per-connection receive threads.
class ClockTable {
 public:
  explicit ClockTable(obs::MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// A fresh ping payload (t1 = now) — what PeerMonitor piggybacks on its
  /// heartbeats.
  static std::vector<std::byte> make_ping();

  /// Handle a probe received on the link to `peer_rank`. A ping returns
  /// the pong payload to send back; a pong is absorbed into the estimate
  /// and returns empty, as does an undecodable (legacy) heartbeat.
  std::vector<std::byte> on_probe(uint32_t peer_rank,
                                  const std::vector<std::byte>& payload);

  ClockEstimate estimate(uint32_t peer_rank) const;

 private:
  struct State {
    ClockEstimate est;
    obs::Gauge offset_gauge;
    obs::Gauge rtt_gauge;
  };

  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::unordered_map<uint32_t, State> states_;
};

}  // namespace idxl::net
