#include "net/frame.hpp"

#include <cstring>

#include "support/error.hpp"

namespace idxl::net {

namespace {

void put_u32(std::byte* p, uint32_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  p[2] = static_cast<std::byte>((v >> 16) & 0xFF);
  p[3] = static_cast<std::byte>((v >> 24) & 0xFF);
}

uint32_t get_u32(const std::byte* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Validate everything a 12-byte header alone can prove; returns the
/// announced payload length.
uint32_t check_header(const std::byte* h) {
  if (get_u32(h) != kNetMagic)
    throw RuntimeError("net frame: bad magic (not an idxl peer, or the "
                       "stream lost sync)");
  const auto version = static_cast<uint8_t>(h[4]);
  if (version != kNetVersion)
    throw RuntimeError("net frame: protocol version mismatch (peer speaks v" +
                       std::to_string(version) + ", this build speaks v" +
                       std::to_string(kNetVersion) + ")");
  if (h[6] != std::byte{0} || h[7] != std::byte{0})
    throw RuntimeError("net frame: nonzero reserved bits");
  const uint32_t len = get_u32(h + 8);
  if (len > kMaxFramePayload)
    throw RuntimeError("net frame: payload length " + std::to_string(len) +
                       " exceeds the frame size limit");
  return len;
}

}  // namespace

std::vector<std::byte> encode_frame(uint8_t type, const std::byte* payload,
                                    std::size_t len) {
  IDXL_REQUIRE(len <= kMaxFramePayload, "frame payload exceeds kMaxFramePayload");
  std::vector<std::byte> out(kFrameHeaderSize + len);
  put_u32(out.data(), kNetMagic);
  out[4] = static_cast<std::byte>(kNetVersion);
  out[5] = static_cast<std::byte>(type);
  out[6] = std::byte{0};
  out[7] = std::byte{0};
  put_u32(out.data() + 8, static_cast<uint32_t>(len));
  if (len > 0) std::memcpy(out.data() + kFrameHeaderSize, payload, len);
  return out;
}

void FrameReader::feed(const std::byte* data, std::size_t len) {
  // Drop the consumed prefix before growing — steady-state the buffer holds
  // at most one partial frame.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  // Fail fast: reject a corrupt or incompatible header the moment its 12
  // bytes exist, not when the (possibly never-arriving) payload completes.
  if (buf_.size() - consumed_ >= kFrameHeaderSize)
    check_header(buf_.data() + consumed_);
}

bool FrameReader::poll(Frame& out) {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return false;
  const std::byte* h = buf_.data() + consumed_;
  const uint32_t len = check_header(h);
  if (avail < kFrameHeaderSize + len) return false;
  out.type = static_cast<uint8_t>(h[5]);
  out.payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + len);
  consumed_ += kFrameHeaderSize + len;
  return true;
}

}  // namespace idxl::net
