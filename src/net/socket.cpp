#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace idxl::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw RuntimeError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

Socket Socket::listen_tcp(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd, backlog) != 0) throw_errno("listen");
  return s;
}

Socket Socket::connect_tcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw RuntimeError("connect_tcp: bad address " + host);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Socket Socket::listen_unix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  IDXL_REQUIRE(path.size() < sizeof(addr.sun_path), "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd, backlog) != 0) throw_errno("listen");
  return s;
}

Socket Socket::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  IDXL_REQUIRE(path.size() < sizeof(addr.sun_path), "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect");
  return s;
}

Socket Socket::accept() const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno != EINTR) throw_errno("accept");
  }
}

uint16_t Socket::bound_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

std::size_t Socket::read_some(void* buf, std::size_t len) const {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno != EINTR) throw_errno("recv");
  }
}

void Socket::write_all(const void* buf, std::size_t len) const {
  const auto* p = static_cast<const std::byte*>(buf);
  while (len > 0) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a process-killing
    // SIGPIPE, so connection teardown stays an exception path.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (errno != EINTR) throw_errno("send");
  }
}

}  // namespace idxl::net
