#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace idxl::net {

/// Thin RAII wrapper over a connected (or listening) POSIX socket. Move-only;
/// closing is idempotent. All factories throw RuntimeError on failure —
/// there is no half-constructed state to check.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// A connected AF_UNIX socket pair (fork-mode transport: the parent keeps
  /// one end, the child the other).
  static std::pair<Socket, Socket> pair();

  /// Listening TCP socket on 127.0.0.1:`port` (0 = ephemeral); bound_port()
  /// on the result reports the actual port.
  static Socket listen_tcp(uint16_t port, int backlog = 8);
  static Socket connect_tcp(const std::string& host, uint16_t port);

  /// Listening/connected AF_UNIX socket at `path`.
  static Socket listen_unix(const std::string& path, int backlog = 8);
  static Socket connect_unix(const std::string& path);

  Socket accept() const;
  uint16_t bound_port() const;

  /// Read up to `len` bytes. Returns 0 on orderly peer shutdown; retries
  /// EINTR; throws RuntimeError on hard errors.
  std::size_t read_some(void* buf, std::size_t len) const;

  /// Write all `len` bytes (loops over partial writes, retries EINTR).
  /// Throws RuntimeError when the peer is gone (EPIPE/ECONNRESET) — callers
  /// treat that as connection teardown, never as SIGPIPE.
  void write_all(const void* buf, std::size_t len) const;

 private:
  int fd_ = -1;
};

}  // namespace idxl::net
