#include "net/clock.hpp"

#include <chrono>
#include <string>

namespace idxl::net {

namespace {

uint64_t steady_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void put_u64(std::vector<std::byte>& out, std::size_t at, uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i)
    out[at + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

uint64_t get_u64(const std::vector<std::byte>& in, std::size_t at) {
  uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(std::to_integer<uint8_t>(in[at + i])) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::byte> ClockProbe::encode() const {
  std::vector<std::byte> out(kWireSize);
  out[0] = static_cast<std::byte>(pong);
  put_u64(out, 1, t1_ns);
  put_u64(out, 9, t2_ns);
  return out;
}

bool ClockProbe::decode(const std::vector<std::byte>& payload, ClockProbe& out) {
  if (payload.size() != kWireSize) return false;
  const auto tag = std::to_integer<uint8_t>(payload[0]);
  if (tag > 1) return false;
  out.pong = tag;
  out.t1_ns = get_u64(payload, 1);
  out.t2_ns = get_u64(payload, 9);
  return true;
}

std::vector<std::byte> ClockTable::make_ping() {
  ClockProbe probe;
  probe.pong = 0;
  probe.t1_ns = steady_ns();
  return probe.encode();
}

std::vector<std::byte> ClockTable::on_probe(uint32_t peer_rank,
                                            const std::vector<std::byte>& payload) {
  ClockProbe probe;
  if (!ClockProbe::decode(payload, probe)) return {};
  if (probe.pong == 0) {
    // Request: echo t1, stamp our clock as late as possible.
    ClockProbe reply = probe;
    reply.pong = 1;
    reply.t2_ns = steady_ns();
    return reply.encode();
  }
  // Reply: one midpoint sample, EWMA-smoothed into the peer's estimate.
  const uint64_t t3 = steady_ns();
  if (t3 < probe.t1_ns) return {};  // clock went backwards; drop the sample
  const uint64_t rtt = t3 - probe.t1_ns;
  const int64_t offset =
      static_cast<int64_t>(probe.t2_ns) -
      static_cast<int64_t>(probe.t1_ns / 2 + t3 / 2 + (probe.t1_ns & t3 & 1));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(peer_rank);
  if (it == states_.end()) {
    State st;
    if (metrics_ != nullptr) {
      const std::string rank = std::to_string(peer_rank);
      st.offset_gauge = metrics_->gauge(
          "idxl_net_clock_offset_ns",
          "peer steady clock minus local, midpoint estimate (EWMA)",
          {{"rank", rank}});
      st.rtt_gauge = metrics_->gauge("idxl_net_clock_rtt_ns",
                                     "clock-probe round trip (EWMA); the "
                                     "offset is correct to within half of it",
                                     {{"rank", rank}});
    }
    it = states_.emplace(peer_rank, std::move(st)).first;
  }
  ClockEstimate& est = it->second.est;
  if (!est.valid) {
    est.valid = true;
    est.offset_ns = offset;
    est.rtt_ns = rtt;
  } else {
    // EWMA with alpha = 1/4: new = old + (sample - old) / 4.
    est.offset_ns += (offset - est.offset_ns) / 4;
    est.rtt_ns =
        static_cast<uint64_t>(static_cast<int64_t>(est.rtt_ns) +
                              (static_cast<int64_t>(rtt) -
                               static_cast<int64_t>(est.rtt_ns)) /
                                  4);
  }
  ++est.samples;
  it->second.offset_gauge.set(est.offset_ns);
  it->second.rtt_gauge.set(static_cast<int64_t>(est.rtt_ns));
  return {};
}

ClockEstimate ClockTable::estimate(uint32_t peer_rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(peer_rank);
  return it != states_.end() ? it->second.est : ClockEstimate{};
}

}  // namespace idxl::net
