#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace idxl::obs {

/// Task-lifecycle stages the flight recorder tracks, in pipeline order,
/// plus the structural events (fences, trace boundaries, group fallbacks)
/// that explain why dependence state changed shape.
enum class LifecycleEvent : uint8_t {
  kIssued,         ///< the task (or launch) entered the runtime
  kAnalyzed,       ///< safety analysis verdict rendered (detail = verdict)
  kExpanded,       ///< an index launch finished expanding into point tasks
  kReady,          ///< every dependence satisfied (edge = last unblocker)
  kRunning,        ///< a worker started executing the task body
  kComplete,       ///< the task body returned
  kFence,          ///< wait_all() quiesced the pipeline
  kTraceBegin,     ///< begin_trace (capture or replay starts)
  kTraceEnd,       ///< end_trace
  kGroupFallback,  ///< a safe launch was forced onto the per-point path
  kStall,          ///< the watchdog declared a stall
  kFailed,         ///< the task body failed terminally (detail = fault cause)
  kPoisoned,       ///< skipped: an upstream failure poisoned this task
  kRetry,          ///< a failed attempt was re-enqueued (edge = attempt #)
  kCancelled,      ///< the task was cancelled (detail = timeout/cancel cause)
  kNetSend,        ///< a network frame was sent (seq = frame type, edge = bytes)
  kNetRecv,        ///< a network frame was received (same encoding as kNetSend)
  kSessionOpen,    ///< service: a client session was admitted (seq = session id)
  kSessionClose,   ///< service: a session ended cleanly (seq = session id)
  kAdmitted,       ///< service: a launch passed admission (seq = session id)
  kRejected,       ///< service: admission refused (seq = session id, edge = code)
  kEvicted,        ///< service: a session was forcibly torn down (seq = sid)
};

const char* lifecycle_event_name(LifecycleEvent e);

/// How kAnalyzed / kExpanded events qualify themselves (`detail` field).
enum class LifecycleDetail : uint8_t {
  kNone = 0,
  kSafeStatic,        ///< SafetyOutcome::kSafeStatic
  kSafeDynamic,       ///< SafetyOutcome::kSafeDynamic
  kSafeUnchecked,     ///< SafetyOutcome::kSafeUnchecked
  kUnsafe,            ///< SafetyOutcome::kUnsafe (fell back to the task loop)
  kAssumedVerified,   ///< launcher.assume_verified skipped the analysis
  kReplay,            ///< expansion replayed a captured trace
  kException,         ///< kFailed: the body threw
  kExplicitFail,      ///< kFailed: TaskContext::fail()
  kInjected,          ///< kFailed: a FaultPlan injection fired
  kTimeout,           ///< kFailed/kCancelled: the launch timeout expired
  kCancel,            ///< kCancelled: watchdog action or cancel_all()
};

const char* lifecycle_detail_name(LifecycleDetail d);

/// One lifecycle event. Launch-level events (kAnalyzed, kExpanded, fences,
/// trace boundaries) carry seq == kNone; task-level events name the task's
/// global sequence number, the launch it expanded from, its launch point,
/// and — for kReady — the dependence edge (predecessor seq) whose
/// completion unblocked it last. `ts_ns` is relative to the recorder's
/// construction (steady clock).
struct FlightEvent {
  static constexpr uint64_t kNone = UINT64_MAX;
  static constexpr int kMaxPointDim = 4;

  uint64_t ts_ns = 0;
  uint64_t seq = kNone;     ///< task id (TaskNode::seq)
  uint64_t launch = kNone;  ///< launch id (shared with the Chrome trace)
  uint64_t edge = kNone;    ///< predecessor seq that last unblocked (kReady)
  int64_t coord[kMaxPointDim] = {};
  LifecycleEvent kind = LifecycleEvent::kIssued;
  LifecycleDetail detail = LifecycleDetail::kNone;
  int8_t dim = 0;      ///< launch-point dimensionality; 0 = no point recorded
  int32_t worker = -1; ///< recording lane (-1: issuing thread)

  void set_point(const int64_t* c, int d) {
    dim = static_cast<int8_t>(d);
    for (int i = 0; i < d && i < kMaxPointDim; ++i) coord[i] = c[i];
  }
  /// "(1,2)" — empty when no point was recorded.
  std::string point_string() const;
};

/// Per-worker fixed-size ring buffers of task-lifecycle events — the
/// always-on black box the stall watchdog and post-mortems read. Each
/// recording thread appends to a ring only it writes; a ring holds the last
/// `capacity` events and silently overwrites older ones (that is the
/// point: bounded memory, most recent history always available).
///
/// The record path takes the ring's own mutex, which is uncontended in
/// steady state (readers only grab it during snapshot()/tail() — rare,
/// diagnostic moments), so recording stays cheap while snapshots are safe
/// to take mid-run — exactly what a watchdog needs and what a seqlock
/// would make thread-sanitizer-hostile. Batch variants amortize the lock
/// to one acquisition per chunk of events for the issue loop's per-point
/// records.
///
/// A disabled recorder drops every record on a single branch.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  /// `epoch_ns` anchors timestamps (pass Profiler::epoch_ns() so lifecycle
  /// events and profile spans share a timebase); 0 = now.
  explicit FlightRecorder(bool enabled = true,
                          std::size_t capacity = kDefaultCapacity,
                          uint64_t epoch_ns = 0);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_; }
  std::size_t capacity() const { return capacity_; }

  /// Nanoseconds since construction (steady clock). Callers may stamp one
  /// timestamp onto a batch of events instead of reading the clock per
  /// event — per-point issue records cost one clock read per launch.
  uint64_t now_ns() const;

  /// Append one event to the calling thread's ring. Events with ts_ns == 0
  /// are stamped with now_ns(); `worker` is filled from the calling
  /// thread's lane. No-op when disabled.
  void record(FlightEvent e);
  /// Append two events under one lock acquisition (kRunning + kComplete at
  /// task end).
  void record2(FlightEvent a, FlightEvent b);
  /// Append a pre-stamped batch under one lock acquisition.
  void record_batch(std::span<const FlightEvent> events);

  /// Merged copy of every ring, oldest first (sorted by ts_ns). Safe to
  /// call mid-run: takes each ring's mutex briefly.
  std::vector<FlightEvent> snapshot() const;
  /// The most recent `n` events across all rings, oldest first.
  std::vector<FlightEvent> tail(std::size_t n) const;

  /// Events recorded (monotone) and overwritten by ring wraparound, summed
  /// over all rings. Safe mid-run.
  uint64_t recorded() const;
  uint64_t overwritten() const;

  /// Events as a JSON array of objects (schema in docs/OBSERVABILITY.md).
  static std::string json(std::span<const FlightEvent> events);
  /// json(snapshot()).
  std::string json() const;

  /// Drop all recorded events (rings stay registered).
  void reset();

 private:
  struct Ring;

  Ring& local_ring();

  const bool enabled_;
  const std::size_t capacity_;
  const uint64_t id_;  ///< process-unique, keys the thread-local cache
  uint64_t epoch_ns_ = 0;

  mutable std::mutex mu_;  // guards rings_ registration
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace idxl::obs
