#include "obs/json.hpp"

#include <cstdio>

namespace idxl::obs {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  json_escape(out, s);
  out += '"';
  return out;
}

}  // namespace idxl::obs
