#include "obs/aggregate.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace idxl::obs {

namespace {

bool has_rank_label(const Labels& labels) {
  for (const auto& [k, v] : labels)
    if (k == "rank") return true;
  return false;
}

Labels with_rank(const Labels& labels, const std::string& rank) {
  Labels out = labels;
  out.emplace_back("rank", rank);
  std::sort(out.begin(), out.end());
  return out;
}

/// Stable key for grouping roll-up series by their rank-less label set.
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

struct RollUp {
  Labels labels;  // without the rank label
  uint64_t counter = 0;
  int64_t gauge = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::map<uint64_t, uint64_t> bucket_incs;  // le -> merged increment
};

/// Cumulative (le, count) pairs back to per-bucket increments.
void add_increments(const SeriesSnapshot& s, std::map<uint64_t, uint64_t>& incs) {
  uint64_t prev = 0;
  for (const auto& [le, cumulative] : s.buckets) {
    if (cumulative > prev) incs[le] += cumulative - prev;
    prev = cumulative;
  }
}

}  // namespace

MetricsSnapshot aggregate_cluster(
    const std::vector<std::pair<uint32_t, MetricsSnapshot>>& ranks) {
  MetricsSnapshot out;
  std::vector<std::map<std::string, RollUp>> rollups;  // parallel to families
  for (const auto& [rank, snap] : ranks) {
    out.taken_ns = std::max(out.taken_ns, snap.taken_ns);
    const std::string rank_str = std::to_string(rank);
    for (const FamilySnapshot& f : snap.families) {
      FamilySnapshot* family = nullptr;
      for (std::size_t i = 0; i < out.families.size(); ++i) {
        if (out.families[i].name == f.name) {
          family = &out.families[i];
          if (family->help.empty()) family->help = f.help;
          break;
        }
      }
      if (family == nullptr) {
        out.families.push_back({f.name, f.help, f.kind, {}});
        rollups.emplace_back();
        family = &out.families.back();
      }
      auto& roll = rollups[static_cast<std::size_t>(family - out.families.data())];
      for (const SeriesSnapshot& s : f.series) {
        SeriesSnapshot tagged = s;
        if (!has_rank_label(tagged.labels)) {
          tagged.labels = with_rank(tagged.labels, rank_str);
          RollUp& r = roll[label_key(s.labels)];
          r.labels = s.labels;
          r.counter += s.counter;
          r.gauge += s.gauge;
          r.count += s.count;
          r.sum += s.sum;
          if (f.kind == MetricKind::kHistogram) add_increments(s, r.bucket_incs);
        }
        family->series.push_back(std::move(tagged));
      }
    }
  }
  for (std::size_t i = 0; i < out.families.size(); ++i) {
    for (auto& [key, r] : rollups[i]) {
      SeriesSnapshot all;
      all.labels = with_rank(r.labels, "all");
      all.counter = r.counter;
      all.gauge = r.gauge;
      all.count = r.count;
      all.sum = r.sum;
      uint64_t cumulative = 0;
      for (const auto& [le, inc] : r.bucket_incs) {
        cumulative += inc;
        all.buckets.emplace_back(le, cumulative);
      }
      if (out.families[i].kind == MetricKind::kHistogram &&
          (all.buckets.empty() || all.buckets.back().first != UINT64_MAX))
        all.buckets.emplace_back(UINT64_MAX, cumulative);
      out.families[i].series.push_back(std::move(all));
    }
  }
  return out;
}

}  // namespace idxl::obs
