#pragma once

#include <string>
#include <string_view>

namespace idxl::obs {

/// Append `s` to `out` as the body of a JSON string literal: quotes,
/// backslashes, and control characters are escaped per RFC 8259. Every
/// exporter that writes user-controlled strings into JSON — the metrics
/// snapshot, the flight-recorder dump, the Chrome-trace writer — shares
/// this one definition, so a task named `evil"\name` cannot corrupt any of
/// the dumps.
void json_escape(std::string& out, std::string_view s);

/// `s` as a complete JSON string literal, surrounding quotes included.
std::string json_quote(std::string_view s);

}  // namespace idxl::obs
