#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace idxl::obs {

struct WatchdogConfig {
  /// How often the monitor thread samples the progress counters.
  uint32_t check_period_ms = 50;
  /// Declare a stall after this long with pending tasks and no completions.
  uint32_t stall_window_ms = 1000;
  /// How many flight-recorder events the dump includes.
  std::size_t tail_events = 32;
  /// Abort the process after dumping (post-mortem over hang).
  bool abort_on_stall = false;
  /// Run the stall action (Runtime wires Runtime::cancel_all) after dumping
  /// — graceful degradation: the stalled launch is cancelled and reported
  /// via the FaultReport instead of hanging forever.
  bool cancel_on_stall = false;
  /// Where the dump goes; empty = stderr.
  std::string dump_path;
};

/// One blocked task in the waits-for graph of a stall dump.
struct BlockedTask {
  uint64_t seq = 0;
  uint64_t launch = FlightEvent::kNone;
  std::string label;
  /// Seqs of the still-incomplete predecessors this task waits for.
  std::vector<uint64_t> waits_for;
};

/// Everything a stalled run leaves behind: the waits-for graph of blocked
/// tasks, the flight-recorder tail, and a metrics snapshot.
struct StallReport {
  uint64_t completed = 0;  ///< tasks completed when the stall was declared
  uint64_t pending = 0;    ///< tasks issued but not completed
  uint64_t window_ms = 0;  ///< how long progress had been absent
  std::vector<BlockedTask> blocked;
  std::vector<FlightEvent> recent;
  MetricsSnapshot metrics;

  /// Human-readable post-mortem (what the watchdog writes to stderr/file).
  std::string to_string() const;
};

/// Detects no-progress: a monitor thread samples (completed, pending)
/// counters; when tasks remain pending but the completion count has not
/// moved for a whole stall window, it builds a StallReport via the
/// supplied callback, dumps it, invokes the test hook, and optionally
/// aborts. Re-arms once progress resumes, so a transient near-stall
/// produces at most one dump per episode.
class Watchdog {
 public:
  /// `progress` returns {completed, pending} and must be callable from the
  /// monitor thread at any time (read atomics, not plain fields).
  /// `report` builds the dump; it runs only when a stall was declared.
  using ProgressFn = std::function<std::pair<uint64_t, uint64_t>()>;
  using ReportFn = std::function<StallReport()>;

  Watchdog(WatchdogConfig config, ProgressFn progress, ReportFn report);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop();
  bool running() const;

  /// Test hook, called with every stall report after it is dumped. Safe to
  /// set while the monitor thread runs.
  void set_on_stall(std::function<void(const StallReport&)> fn);

  /// Graceful-degradation action, run (before the test hook) on each stall
  /// when config.cancel_on_stall is set. The Runtime installs cancel_all().
  void set_stall_action(std::function<void()> fn);

  /// Stalls declared since construction.
  uint64_t stalls_detected() const;

  const WatchdogConfig& config() const { return config_; }

 private:
  void loop();
  void fire(uint64_t completed, uint64_t pending, uint64_t window_ms);

  const WatchdogConfig config_;
  const ProgressFn progress_;
  const ReportFn report_;
  std::function<void(const StallReport&)> on_stall_;
  std::function<void()> stall_action_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  std::atomic<uint64_t> stalls_{0};
};

}  // namespace idxl::obs
