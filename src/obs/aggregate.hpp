#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace idxl::obs {

/// Merge per-rank MetricsSnapshots into one cluster-wide view: every series
/// gains a `rank="<r>"` label naming the process it came from, and each
/// family additionally gets roll-up series labeled `rank="all"` — counters
/// and gauges summed, histograms bucket-merged on their shared
/// power-of-two boundaries (counts and sums add; cumulative bucket counts
/// are rebuilt from the merged increments). Families keep first-appearance
/// order so repeated exports diff cleanly; a series that already carries a
/// `rank` label is passed through untouched and excluded from the roll-up
/// (aggregating an aggregate would double-count).
MetricsSnapshot aggregate_cluster(
    const std::vector<std::pair<uint32_t, MetricsSnapshot>>& ranks);

}  // namespace idxl::obs
