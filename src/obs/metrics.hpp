#pragma once

#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace idxl::obs {

/// Labels identify one series within a metric family (Prometheus-style):
/// `idxl_pool_queue_depth{pool="0"}`. Keys are sorted at registration so the
/// same label set always names the same series regardless of argument order.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Number of power-of-two histogram buckets. Bucket `i` counts observations
/// with bit_width(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 counts v == 0.
/// 64 buckets cover the full uint64 range, so nanosecond latencies from
/// single digits to hours land in distinct buckets with zero configuration.
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

struct SeriesCell {
  /// One allocation per series; counters/gauges use `value`, histograms use
  /// all fields. Atomics only — the update path never takes a lock.
  std::atomic<uint64_t> value{0};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> buckets[kHistogramBuckets];
};

/// Shared sink for default-constructed (inert) handles: writes land here and
/// reads short-circuit to zero, so uninstrumented code needs no null checks.
SeriesCell& sink_cell();

}  // namespace detail

/// Monotone counter handle. Cheap to copy; values live in the registry, so
/// handles stay valid for the registry's lifetime. The default-constructed
/// handle is inert (writes go to a shared sink cell, reads return 0) so
/// instrumented code never branches on "is metrics wired up".
class Counter {
 public:
  Counter();
  void inc(uint64_t delta = 1) const { cell_->value.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const {
    if (cell_ == &detail::sink_cell()) return 0;
    return cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::SeriesCell* cell) : cell_(cell) {}
  detail::SeriesCell* cell_;
};

/// Gauge handle: a value that can go up and down (queue depth, in-flight
/// tasks). Stored as int64 two's complement in the shared cell.
class Gauge {
 public:
  Gauge();
  void set(int64_t v) const {
    cell_->value.store(static_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  void add(int64_t d) const {
    cell_->value.fetch_add(static_cast<uint64_t>(d), std::memory_order_relaxed);
  }
  void sub(int64_t d) const { add(-d); }
  int64_t value() const {
    if (cell_ == &detail::sink_cell()) return 0;
    return static_cast<int64_t>(cell_->value.load(std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::SeriesCell* cell) : cell_(cell) {}
  detail::SeriesCell* cell_;
};

/// Histogram handle with power-of-two buckets: observe() is three relaxed
/// atomic adds and a bit_width — no floating point, no bucket search.
class Histogram {
 public:
  Histogram();
  void observe(uint64_t v) const {
    cell_->buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    cell_->sum.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t count() const {
    if (cell_ == &detail::sink_cell()) return 0;
    return cell_->count.load(std::memory_order_relaxed);
  }
  uint64_t sum() const {
    if (cell_ == &detail::sink_cell()) return 0;
    return cell_->sum.load(std::memory_order_relaxed);
  }

  /// Bucket `i` holds observations with bit_width(v) == i, so boundaries
  /// are successive powers of two; the last bucket also absorbs the top
  /// bit_width to stay in range.
  static std::size_t bucket_index(uint64_t v) {
    const auto w = static_cast<std::size_t>(std::bit_width(v));  // 0..64
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }
  /// Exclusive upper bound of bucket `i` (the Prometheus `le` value);
  /// UINT64_MAX for the last bucket.
  static uint64_t bucket_bound(std::size_t i) {
    return i >= kHistogramBuckets - 1 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::SeriesCell* cell) : cell_(cell) {}
  detail::SeriesCell* cell_;
};

/// One series' values as read by snapshot(). Exactly one of
/// counter/gauge/histogram fields is meaningful, per `kind` of the family.
struct SeriesSnapshot {
  Labels labels;
  uint64_t counter = 0;
  int64_t gauge = 0;
  uint64_t count = 0;  // histogram
  uint64_t sum = 0;    // histogram
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, cumulative count)
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// A one-pass read of every series in a registry. All atomics are read in a
/// single traversal under the registry's registration lock (no new series
/// can appear halfway through), so the snapshot is as consistent as
/// lock-free counters allow: one coherent pass, not per-field reads spread
/// across the caller's control flow.
struct MetricsSnapshot {
  uint64_t taken_ns = 0;  ///< steady-clock time the snapshot was taken
  std::vector<FamilySnapshot> families;

  const FamilySnapshot* family(std::string_view name) const;
  /// The series of `name` matching `labels` exactly (order-insensitive);
  /// nullptr when absent.
  const SeriesSnapshot* series(std::string_view name, const Labels& labels = {}) const;
  /// Convenience: counter/gauge value of a series, or `fallback` if absent.
  uint64_t value(std::string_view name, const Labels& labels = {},
                 uint64_t fallback = 0) const;

  /// Prometheus text exposition format (one HELP/TYPE block per family,
  /// histogram as cumulative _bucket/_sum/_count).
  std::string prometheus_text() const;
  /// The same data as a JSON document.
  std::string json() const;
};

/// Process- or subsystem-wide registry of labeled metric families. Handle
/// creation takes a lock (setup-time); the update path through handles is
/// lock-free. Snapshots, exporters and collectors run under the lock and
/// are meant for readers (scrapes, dumps, tests), not hot paths.
///
/// Each Runtime owns a registry so concurrent runtimes (tests!) never share
/// series; `MetricsRegistry::global()` is the conventional place for
/// application- and bench-level metrics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Get-or-create the series `name{labels}`. `help` is recorded on first
  /// registration of the family. Registering an existing name with a
  /// different kind throws.
  Counter counter(std::string_view name, std::string_view help = "",
                  Labels labels = {});
  Gauge gauge(std::string_view name, std::string_view help = "", Labels labels = {});
  Histogram histogram(std::string_view name, std::string_view help = "",
                      Labels labels = {});

  /// Register a collector: a callback run at the start of every snapshot()
  /// (and by the sampler thread) to refresh gauges whose truth lives
  /// elsewhere — pool queue depth, cache hit counts, write-log sizes.
  void add_collector(std::function<void()> fn);

  /// Read every series in one pass (runs collectors first).
  MetricsSnapshot snapshot() const;

  /// Start a background thread that refreshes collectors (and thereby
  /// gauges) every `period_ms`, plus invokes `sample` if given — the hook
  /// for sampled histograms (queue-depth-over-time). No-op if running.
  void start_sampler(uint32_t period_ms, std::function<void()> sample = nullptr);
  void stop_sampler();
  bool sampler_running() const;

 private:
  struct Series {
    Labels labels;
    detail::SeriesCell cell;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    // deque: grows without moving existing cells (handles hold pointers).
    std::deque<Series> series;
  };

  detail::SeriesCell* series_cell(std::string_view name, std::string_view help,
                                  Labels&& labels, MetricKind kind);

  mutable std::mutex mu_;  // guards families_/collectors_ structure
  std::deque<Family> families_;
  std::vector<std::function<void()>> collectors_;

  mutable std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  std::thread sampler_;
  bool sampler_stop_ = false;
};

}  // namespace idxl::obs
