#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "obs/json.hpp"

namespace idxl {

namespace {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> next_profiler_id{1};

thread_local int tls_worker_id = -1;

/// One-entry cache: the buffer this thread last recorded into, keyed by the
/// owning profiler's process-unique id (ids are never reused, so a stale
/// entry can only miss — it can never alias a new profiler).
struct TlsCache {
  uint64_t profiler_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

double percentile(const std::vector<uint64_t>& sorted, double q) {
  IDXL_ASSERT(!sorted.empty());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

}  // namespace

const char* category_name(ProfCategory cat) {
  switch (cat) {
    case ProfCategory::kTask: return "task";
    case ProfCategory::kIssue: return "issue";
    case ProfCategory::kDependence: return "dependence";
    case ProfCategory::kSafety: return "safety";
    case ProfCategory::kTrace: return "trace";
    case ProfCategory::kReduce: return "reduce";
    case ProfCategory::kExchange: return "exchange";
    case ProfCategory::kPhase: return "phase";
    case ProfCategory::kRuntime: return "runtime";
  }
  return "unknown";
}

void prof_set_current_worker(int worker) { tls_worker_id = worker; }
int prof_current_worker() { return tls_worker_id; }

/// Per-thread event sink. Only the owning thread appends; readers merge
/// buffers at quiescent points, so the append path takes no lock.
struct Profiler::Buffer {
  std::thread::id owner;
  uint32_t tid = 0;
  int32_t worker = -1;
  std::vector<ProfileEvent> events;
  std::vector<TaskSample> edges;  // dur filled by join in task_samples()
};

Profiler::Profiler(bool enabled)
    : enabled_(enabled),
      id_(next_profiler_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(steady_now_ns()) {
  names_ = {"issue",         "dependence-analysis", "safety-check",
            "safety-check/static", "safety-check/dynamic", "safety-check/cache",
            "trace-capture", "trace-replay",        "future-reduce",
            "wait-all",      "shard-exchange",      "dependence-group",
            "dependence-materialize", "expand-chunk"};
  IDXL_ASSERT(names_.size() == kWellKnownCount);
  for (uint32_t i = 0; i < names_.size(); ++i) name_ids_.emplace(names_[i], i);
}

Profiler::~Profiler() = default;

uint64_t Profiler::now_ns() const { return steady_now_ns() - epoch_ns_; }

uint32_t Profiler::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Profiler::name(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  IDXL_REQUIRE(id < names_.size(), "unknown profile name id");
  return names_[id];
}

std::vector<std::string> Profiler::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

Profiler::Buffer& Profiler::local_buffer() {
  if (tls_cache.profiler_id == id_)
    return *static_cast<Buffer*>(tls_cache.buffer);
  // Slow path: first record from this thread (or the thread switched
  // profilers) — find or register its buffer under the lock.
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  Buffer* buf = nullptr;
  for (const auto& b : buffers_)
    if (b->owner == self) buf = b.get();
  if (buf == nullptr) {
    buffers_.push_back(std::make_unique<Buffer>());
    buf = buffers_.back().get();
    buf->owner = self;
    buf->tid = static_cast<uint32_t>(buffers_.size() - 1);
    buf->worker = tls_worker_id;
  }
  tls_cache = {id_, buf};
  return *buf;
}

void Profiler::record(ProfCategory cat, uint32_t name, uint64_t start_ns,
                      uint64_t end_ns, uint64_t seq, uint64_t queue_wait_ns,
                      uint64_t launch) {
  if (!enabled_) return;
  Buffer& buf = local_buffer();
  ProfileEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.worker = buf.worker;
  ev.tid = buf.tid;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns - start_ns;
  ev.seq = seq;
  ev.queue_wait_ns = queue_wait_ns;
  ev.launch = launch;
  buf.events.push_back(ev);
}

void Profiler::record(const ProfileEvent& event) {
  if (!enabled_) return;
  Buffer& buf = local_buffer();
  ProfileEvent ev = event;
  ev.worker = buf.worker;
  ev.tid = buf.tid;
  buf.events.push_back(ev);
}

void Profiler::record_edges(uint64_t seq, std::span<const uint64_t> deps) {
  if (!enabled_) return;
  Buffer& buf = local_buffer();
  TaskSample s;
  s.seq = seq;
  s.deps.assign(deps.begin(), deps.end());
  buf.edges.push_back(std::move(s));
}

std::vector<ProfileEvent> Profiler::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProfileEvent> all;
  for (const auto& b : buffers_)
    all.insert(all.end(), b->events.begin(), b->events.end());
  std::sort(all.begin(), all.end(), [](const ProfileEvent& a, const ProfileEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_ns < b.start_ns;
  });
  return all;
}

uint64_t Profiler::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

std::vector<TaskSample> Profiler::task_samples() const {
  std::vector<TaskSample> samples;
  std::unordered_map<uint64_t, std::size_t> index_of;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      for (const TaskSample& e : b->edges) {
        index_of.emplace(e.seq, samples.size());
        samples.push_back(e);
      }
    }
    // Join execution durations onto the issue-time edge records; tasks with
    // no edge record (none issued while profiling) become root samples.
    for (const auto& b : buffers_) {
      for (const ProfileEvent& ev : b->events) {
        if (ev.cat != ProfCategory::kTask || ev.seq == ProfileEvent::kNoSeq)
          continue;
        auto [it, inserted] = index_of.emplace(ev.seq, samples.size());
        if (inserted) samples.push_back(TaskSample{ev.seq, 0, {}});
        samples[it->second].dur_ns += ev.dur_ns;
      }
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const TaskSample& a, const TaskSample& b) { return a.seq < b.seq; });
  return samples;
}

CriticalPathReport critical_path(std::span<const TaskSample> samples) {
  CriticalPathReport report;
  // longest[seq] = (chain length ending at seq, predecessor seq on chain)
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> longest;
  longest.reserve(samples.size());
  uint64_t best = 0, best_seq = ProfileEvent::kNoSeq;
  for (const TaskSample& s : samples) {
    uint64_t chain = 0, pred = ProfileEvent::kNoSeq;
    for (uint64_t dep : s.deps) {
      const auto it = longest.find(dep);
      if (it != longest.end() && it->second.first > chain) {
        chain = it->second.first;
        pred = dep;
      }
    }
    chain += s.dur_ns;
    longest[s.seq] = {chain, pred};
    report.total_task_ns += s.dur_ns;
    if (chain > best) {
      best = chain;
      best_seq = s.seq;
    }
  }
  report.critical_path_ns = best;
  for (uint64_t seq = best_seq; seq != ProfileEvent::kNoSeq;
       seq = longest.at(seq).second)
    report.path.push_back(seq);
  std::reverse(report.path.begin(), report.path.end());
  return report;
}

CriticalPathReport Profiler::critical_path() const {
  const std::vector<TaskSample> samples = task_samples();
  return idxl::critical_path(samples);
}

std::string Profiler::chrome_trace_json() const {
  const std::vector<ProfileEvent> all = events();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  // Thread-name metadata so Perfetto labels lanes by worker.
  uint32_t max_tid = 0;
  std::vector<int32_t> lane_worker;
  for (const ProfileEvent& ev : all) {
    max_tid = std::max(max_tid, ev.tid);
    if (lane_worker.size() <= ev.tid) lane_worker.resize(ev.tid + 1, -1);
    lane_worker[ev.tid] = ev.worker;
  }
  bool first = true;
  for (uint32_t tid = 0; tid < lane_worker.size(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid,
                  lane_worker[tid] < 0
                      ? "issuer"
                      : ("worker " + std::to_string(lane_worker[tid])).c_str());
    out += buf;
    first = false;
  }
  for (const ProfileEvent& ev : all) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"", first ? "" : ",");
    out += buf;
    first = false;
    obs::json_escape(out, ev.name < names.size() ? names[ev.name] : "?");
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"worker\":%d",
                  category_name(ev.cat), ev.tid,
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3, ev.worker);
    out += buf;
    if (ev.seq != ProfileEvent::kNoSeq) {
      std::snprintf(buf, sizeof(buf), ",\"seq\":%" PRIu64 ",\"queue_wait_us\":%.3f",
                    ev.seq, static_cast<double>(ev.queue_wait_ns) / 1e3);
      out += buf;
    }
    if (ev.launch != ProfileEvent::kNoSeq) {
      std::snprintf(buf, sizeof(buf), ",\"launch\":%" PRIu64, ev.launch);
      out += buf;
    }
    if (ev.remote_parent()) {
      std::snprintf(buf, sizeof(buf), ",\"parent\":%" PRIu64 ",\"origin\":%u",
                    ev.parent, ev.origin);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void Profiler::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  IDXL_REQUIRE(f != nullptr, ("cannot open trace file " + path).c_str());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

std::string Profiler::summary() const {
  const std::vector<ProfileEvent> all = events();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
  }

  uint64_t cat_total[16] = {};
  uint64_t cat_count[16] = {};
  std::unordered_map<uint32_t, std::vector<uint64_t>> task_durs;
  std::unordered_map<uint32_t, std::vector<uint64_t>> task_waits;
  for (const ProfileEvent& ev : all) {
    cat_total[static_cast<std::size_t>(ev.cat)] += ev.dur_ns;
    cat_count[static_cast<std::size_t>(ev.cat)] += 1;
    if (ev.cat == ProfCategory::kTask) {
      task_durs[ev.name].push_back(ev.dur_ns);
      task_waits[ev.name].push_back(ev.queue_wait_ns);
    }
  }

  std::string out = "== idxl profile summary ==\n";
  char line[256];
  out += "-- busy time by category --\n";
  std::snprintf(line, sizeof(line), "%-14s%10s%14s\n", "category", "events", "busy ms");
  out += line;
  for (std::size_t c = 0; c < 16; ++c) {
    if (cat_count[c] == 0) continue;
    std::snprintf(line, sizeof(line), "%-14s%10" PRIu64 "%14.3f\n",
                  category_name(static_cast<ProfCategory>(c)), cat_count[c],
                  static_cast<double>(cat_total[c]) / 1e6);
    out += line;
  }

  if (!task_durs.empty()) {
    out += "-- task latencies (us) --\n";
    std::snprintf(line, sizeof(line), "%-20s%8s%12s%10s%10s%10s%12s\n", "task",
                  "count", "total ms", "p50", "p95", "max", "wait p95");
    out += line;
    std::vector<uint32_t> ids;
    ids.reserve(task_durs.size());
    for (const auto& [id, durs] : task_durs) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (uint32_t id : ids) {
      std::vector<uint64_t>& durs = task_durs[id];
      std::vector<uint64_t>& waits = task_waits[id];
      std::sort(durs.begin(), durs.end());
      std::sort(waits.begin(), waits.end());
      uint64_t total = 0;
      for (uint64_t d : durs) total += d;
      std::snprintf(line, sizeof(line),
                    "%-20s%8zu%12.3f%10.2f%10.2f%10.2f%12.2f\n",
                    (id < names.size() ? names[id] : "?").c_str(), durs.size(),
                    static_cast<double>(total) / 1e6, percentile(durs, 0.50) / 1e3,
                    percentile(durs, 0.95) / 1e3,
                    static_cast<double>(durs.back()) / 1e3,
                    percentile(waits, 0.95) / 1e3);
      out += line;
    }
  }

  const CriticalPathReport cp = critical_path();
  if (cp.total_task_ns > 0) {
    std::snprintf(line, sizeof(line),
                  "-- critical path --\ntotal task time %.3f ms, critical path "
                  "%.3f ms over %zu tasks -> max achievable speedup %.2fx\n",
                  static_cast<double>(cp.total_task_ns) / 1e6,
                  static_cast<double>(cp.critical_path_ns) / 1e6, cp.path.size(),
                  cp.max_speedup());
    out += line;
  }
  return out;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    b->events.clear();
    b->edges.clear();
  }
}

}  // namespace idxl
