#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace idxl::obs {

namespace {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// `{key="a",other="b"}`, or empty for the unlabeled series. The exposition
/// format escapes exactly backslash, double-quote, and newline inside label
/// values (a raw newline would terminate the sample line mid-value).
void append_label_set(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    for (char c : labels[i].second) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  out += '}';
}

/// Prometheus `le` label value for a power-of-two bucket bound.
std::string le_string(uint64_t bound) {
  if (bound == UINT64_MAX) return "+Inf";
  return std::to_string(bound);
}

}  // namespace

namespace detail {

SeriesCell& sink_cell() {
  static SeriesCell cell;
  return cell;
}

}  // namespace detail

Counter::Counter() : cell_(&detail::sink_cell()) {}
Gauge::Gauge() : cell_(&detail::sink_cell()) {}
Histogram::Histogram() : cell_(&detail::sink_cell()) {}

MetricsRegistry::~MetricsRegistry() { stop_sampler(); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

detail::SeriesCell* MetricsRegistry::series_cell(std::string_view name,
                                                std::string_view help,
                                                Labels&& labels, MetricKind kind) {
  IDXL_REQUIRE(!name.empty(), "metric name must not be empty");
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = nullptr;
  for (Family& f : families_)
    if (f.name == name) family = &f;
  if (family == nullptr) {
    families_.emplace_back();
    family = &families_.back();
    family->name = std::string(name);
    family->help = std::string(help);
    family->kind = kind;
  } else {
    IDXL_REQUIRE(family->kind == kind,
                 ("metric family registered twice with different kinds: " +
                  family->name)
                     .c_str());
    if (family->help.empty() && !help.empty()) family->help = std::string(help);
  }
  for (Series& s : family->series)
    if (s.labels == labels) return &s.cell;
  family->series.emplace_back();
  family->series.back().labels = std::move(labels);
  return &family->series.back().cell;
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help,
                                 Labels labels) {
  return Counter(series_cell(name, help, std::move(labels), MetricKind::kCounter));
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help,
                             Labels labels) {
  return Gauge(series_cell(name, help, std::move(labels), MetricKind::kGauge));
}

Histogram MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                     Labels labels) {
  return Histogram(
      series_cell(name, help, std::move(labels), MetricKind::kHistogram));
}

void MetricsRegistry::add_collector(std::function<void()> fn) {
  IDXL_REQUIRE(static_cast<bool>(fn), "collector must be callable");
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Collectors update gauges through their own handles (lock-free), so run
  // them before taking the structure lock — a collector that registers a
  // new series would otherwise deadlock.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn();

  MetricsSnapshot snap;
  snap.taken_ns = steady_now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  snap.families.reserve(families_.size());
  for (const Family& f : families_) {
    FamilySnapshot fs;
    fs.name = f.name;
    fs.help = f.help;
    fs.kind = f.kind;
    fs.series.reserve(f.series.size());
    for (const Series& s : f.series) {
      SeriesSnapshot ss;
      ss.labels = s.labels;
      switch (f.kind) {
        case MetricKind::kCounter:
          ss.counter = s.cell.value.load(std::memory_order_relaxed);
          break;
        case MetricKind::kGauge:
          ss.gauge = static_cast<int64_t>(
              s.cell.value.load(std::memory_order_relaxed));
          break;
        case MetricKind::kHistogram: {
          ss.count = s.cell.count.load(std::memory_order_relaxed);
          ss.sum = s.cell.sum.load(std::memory_order_relaxed);
          uint64_t cumulative = 0;
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            const uint64_t n = s.cell.buckets[b].load(std::memory_order_relaxed);
            cumulative += n;
            // Keep the exposition small: only boundaries that have counts
            // below them, plus the mandatory +Inf bucket.
            if (n != 0) ss.buckets.emplace_back(Histogram::bucket_bound(b), cumulative);
          }
          if (ss.buckets.empty() || ss.buckets.back().first != UINT64_MAX)
            ss.buckets.emplace_back(UINT64_MAX, cumulative);
          break;
        }
      }
      fs.series.push_back(std::move(ss));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

void MetricsRegistry::start_sampler(uint32_t period_ms,
                                    std::function<void()> sample) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  sampler_stop_ = false;
  if (period_ms == 0) period_ms = 1;
  sampler_ = std::thread([this, period_ms, sample = std::move(sample)] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(sampler_mu_);
        sampler_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                             [this] { return sampler_stop_; });
        if (sampler_stop_) return;
      }
      std::vector<std::function<void()>> collectors;
      {
        std::lock_guard<std::mutex> lock(mu_);
        collectors = collectors_;
      }
      for (const auto& fn : collectors) fn();
      if (sample) sample();
    }
  });
}

void MetricsRegistry::stop_sampler() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_.joinable()) return;
    sampler_stop_ = true;
    t = std::move(sampler_);
  }
  sampler_cv_.notify_all();
  t.join();
}

bool MetricsRegistry::sampler_running() const {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  return sampler_.joinable();
}

const FamilySnapshot* MetricsSnapshot::family(std::string_view name) const {
  for (const FamilySnapshot& f : families)
    if (f.name == name) return &f;
  return nullptr;
}

const SeriesSnapshot* MetricsSnapshot::series(std::string_view name,
                                              const Labels& labels) const {
  const FamilySnapshot* f = family(name);
  if (f == nullptr) return nullptr;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const SeriesSnapshot& s : f->series)
    if (s.labels == sorted) return &s;
  return nullptr;
}

uint64_t MetricsSnapshot::value(std::string_view name, const Labels& labels,
                                uint64_t fallback) const {
  const FamilySnapshot* f = family(name);
  if (f == nullptr) return fallback;
  const SeriesSnapshot* s = series(name, labels);
  if (s == nullptr) return fallback;
  return f->kind == MetricKind::kGauge ? static_cast<uint64_t>(s->gauge)
                                       : s->counter;
}

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  char buf[64];
  for (const FamilySnapshot& f : families) {
    if (!f.help.empty()) {
      out += "# HELP ";
      out += f.name;
      out += ' ';
      // HELP text escapes backslash and newline (a raw newline would start
      // a bogus exposition line mid-help).
      for (char c : f.help) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
      }
      out += '\n';
    }
    out += "# TYPE ";
    out += f.name;
    out += ' ';
    out += kind_name(f.kind);
    out += '\n';
    for (const SeriesSnapshot& s : f.series) {
      switch (f.kind) {
        case MetricKind::kCounter:
        case MetricKind::kGauge: {
          out += f.name;
          append_label_set(out, s.labels);
          if (f.kind == MetricKind::kCounter)
            std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.counter);
          else
            std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", s.gauge);
          out += buf;
          break;
        }
        case MetricKind::kHistogram: {
          for (const auto& [le, cumulative] : s.buckets) {
            out += f.name;
            out += "_bucket";
            Labels with_le = s.labels;
            with_le.emplace_back("le", le_string(le));
            append_label_set(out, with_le);
            std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
            out += buf;
          }
          out += f.name;
          out += "_sum";
          append_label_set(out, s.labels);
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.sum);
          out += buf;
          out += f.name;
          out += "_count";
          append_label_set(out, s.labels);
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.count);
          out += buf;
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  std::string out = "{\"metrics\":[";
  char buf[64];
  bool first_family = true;
  for (const FamilySnapshot& f : families) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"";
    json_escape(out, f.name);
    out += "\",\"type\":\"";
    out += kind_name(f.kind);
    out += "\",\"help\":\"";
    json_escape(out, f.help);
    out += "\",\"series\":[";
    bool first_series = true;
    for (const SeriesSnapshot& s : f.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":{";
      for (std::size_t i = 0; i < s.labels.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        json_escape(out, s.labels[i].first);
        out += "\":\"";
        json_escape(out, s.labels[i].second);
        out += '"';
      }
      out += '}';
      switch (f.kind) {
        case MetricKind::kCounter:
          std::snprintf(buf, sizeof(buf), ",\"value\":%" PRIu64, s.counter);
          out += buf;
          break;
        case MetricKind::kGauge:
          std::snprintf(buf, sizeof(buf), ",\"value\":%" PRId64, s.gauge);
          out += buf;
          break;
        case MetricKind::kHistogram: {
          std::snprintf(buf, sizeof(buf), ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64,
                        s.count, s.sum);
          out += buf;
          out += ",\"buckets\":[";
          for (std::size_t i = 0; i < s.buckets.size(); ++i) {
            if (i != 0) out += ',';
            const auto [le, cumulative] = s.buckets[i];
            if (le == UINT64_MAX)
              std::snprintf(buf, sizeof(buf), "{\"le\":\"+Inf\",\"count\":%" PRIu64 "}",
                            cumulative);
            else
              std::snprintf(buf, sizeof(buf),
                            "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}", le,
                            cumulative);
            out += buf;
          }
          out += ']';
          break;
        }
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace idxl::obs
