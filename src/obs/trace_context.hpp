#pragma once

#include <cstdint>

namespace idxl::obs {

/// Compact causal context carried on wire messages (launch descriptors,
/// kRoute/kRegionData, TaskDone) so a span recorded on one rank can name
/// the span that caused it on another. Control replication keeps launch
/// ids and task sequence numbers identical on every rank, so (origin,
/// span-seq) is enough to find the parent in the origin rank's trace.
struct TraceContext {
  static constexpr uint64_t kNone = UINT64_MAX;
  static constexpr uint32_t kNoRank = UINT32_MAX;

  uint64_t launch = kNone;  ///< launch id on the origin rank's stream
  uint64_t span = kNone;    ///< parent span's task sequence number
  uint32_t origin = kNoRank;  ///< rank whose trace holds the parent span

  bool valid() const { return origin != kNoRank; }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.launch == b.launch && a.span == b.span && a.origin == b.origin;
  }
};

}  // namespace idxl::obs
