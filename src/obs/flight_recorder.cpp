#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace idxl::obs {

namespace {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> next_recorder_id{1};

/// One-entry cache: the ring this thread last recorded into, keyed by the
/// owning recorder's process-unique id (ids are never reused, so a stale
/// entry can only miss — it can never alias a new recorder).
struct TlsCache {
  uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local TlsCache tls_cache;

}  // namespace

const char* lifecycle_event_name(LifecycleEvent e) {
  switch (e) {
    case LifecycleEvent::kIssued: return "issued";
    case LifecycleEvent::kAnalyzed: return "analyzed";
    case LifecycleEvent::kExpanded: return "expanded";
    case LifecycleEvent::kReady: return "ready";
    case LifecycleEvent::kRunning: return "running";
    case LifecycleEvent::kComplete: return "complete";
    case LifecycleEvent::kFence: return "fence";
    case LifecycleEvent::kTraceBegin: return "trace-begin";
    case LifecycleEvent::kTraceEnd: return "trace-end";
    case LifecycleEvent::kGroupFallback: return "group-fallback";
    case LifecycleEvent::kStall: return "stall";
    case LifecycleEvent::kFailed: return "failed";
    case LifecycleEvent::kPoisoned: return "poisoned";
    case LifecycleEvent::kRetry: return "retry";
    case LifecycleEvent::kCancelled: return "cancelled";
    case LifecycleEvent::kNetSend: return "net-send";
    case LifecycleEvent::kNetRecv: return "net-recv";
    case LifecycleEvent::kSessionOpen: return "session-open";
    case LifecycleEvent::kSessionClose: return "session-close";
    case LifecycleEvent::kAdmitted: return "admitted";
    case LifecycleEvent::kRejected: return "rejected";
    case LifecycleEvent::kEvicted: return "evicted";
  }
  return "unknown";
}

const char* lifecycle_detail_name(LifecycleDetail d) {
  switch (d) {
    case LifecycleDetail::kNone: return "none";
    case LifecycleDetail::kSafeStatic: return "safe-static";
    case LifecycleDetail::kSafeDynamic: return "safe-dynamic";
    case LifecycleDetail::kSafeUnchecked: return "safe-unchecked";
    case LifecycleDetail::kUnsafe: return "unsafe";
    case LifecycleDetail::kAssumedVerified: return "assumed-verified";
    case LifecycleDetail::kReplay: return "replay";
    case LifecycleDetail::kException: return "exception";
    case LifecycleDetail::kExplicitFail: return "explicit-fail";
    case LifecycleDetail::kInjected: return "injected";
    case LifecycleDetail::kTimeout: return "timeout";
    case LifecycleDetail::kCancel: return "cancel";
  }
  return "unknown";
}

std::string FlightEvent::point_string() const {
  if (dim <= 0) return {};
  std::string s = "(";
  for (int i = 0; i < dim && i < kMaxPointDim; ++i) {
    if (i != 0) s += ',';
    s += std::to_string(coord[i]);
  }
  s += ')';
  return s;
}

/// Per-thread event ring. The owning thread appends under the ring's own
/// mutex (uncontended except when a reader is dumping), so snapshots are
/// race-free mid-run without a seqlock.
struct FlightRecorder::Ring {
  std::thread::id owner;
  int32_t worker = -1;
  mutable std::mutex mu;
  std::vector<FlightEvent> buf;  // sized to capacity once, then overwritten
  uint64_t head = 0;             // events ever recorded into this ring

  void append(const FlightEvent& e, std::size_t capacity) {
    if (buf.size() < capacity) {
      buf.push_back(e);
    } else {
      buf[static_cast<std::size_t>(head % capacity)] = e;
    }
    ++head;
  }
};

FlightRecorder::FlightRecorder(bool enabled, std::size_t capacity,
                               uint64_t epoch_ns)
    : enabled_(enabled),
      capacity_(capacity == 0 ? 1 : capacity),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(epoch_ns != 0 ? epoch_ns : steady_now_ns()) {}

FlightRecorder::~FlightRecorder() = default;

uint64_t FlightRecorder::now_ns() const { return steady_now_ns() - epoch_ns_; }

FlightRecorder::Ring& FlightRecorder::local_ring() {
  if (tls_cache.recorder_id == id_) return *static_cast<Ring*>(tls_cache.ring);
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  Ring* ring = nullptr;
  for (const auto& r : rings_)
    if (r->owner == self) ring = r.get();
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->owner = self;
    ring->worker = prof_current_worker();
    ring->buf.reserve(capacity_);
  }
  tls_cache = {id_, ring};
  return *ring;
}

void FlightRecorder::record(FlightEvent e) {
  if (!enabled_) return;
  Ring& r = local_ring();
  if (e.ts_ns == 0) e.ts_ns = now_ns();
  e.worker = r.worker;
  std::lock_guard<std::mutex> lock(r.mu);
  r.append(e, capacity_);
}

void FlightRecorder::record2(FlightEvent a, FlightEvent b) {
  if (!enabled_) return;
  Ring& r = local_ring();
  if (a.ts_ns == 0) a.ts_ns = now_ns();
  if (b.ts_ns == 0) b.ts_ns = a.ts_ns;
  a.worker = r.worker;
  b.worker = r.worker;
  std::lock_guard<std::mutex> lock(r.mu);
  r.append(a, capacity_);
  r.append(b, capacity_);
}

void FlightRecorder::record_batch(std::span<const FlightEvent> events) {
  if (!enabled_ || events.empty()) return;
  Ring& r = local_ring();
  std::lock_guard<std::mutex> lock(r.mu);
  for (FlightEvent e : events) {
    e.worker = r.worker;
    r.append(e, capacity_);
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> ring_lock(r->mu);
      // Oldest-first within the ring: [head % cap, end) then [0, head % cap)
      // once wrapped; before wrapping the buffer is already in order.
      if (r->head <= r->buf.size()) {
        all.insert(all.end(), r->buf.begin(), r->buf.end());
      } else {
        const auto cut =
            static_cast<std::ptrdiff_t>(r->head % r->buf.size());
        all.insert(all.end(), r->buf.begin() + cut, r->buf.end());
        all.insert(all.end(), r->buf.begin(), r->buf.begin() + cut);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  std::vector<FlightEvent> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> ring_lock(r->mu);
    n += r->head;
  }
  return n;
}

uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> ring_lock(r->mu);
    if (r->head > capacity_) n += r->head - capacity_;
  }
  return n;
}

std::string FlightRecorder::json(std::span<const FlightEvent> events) {
  std::string out = "[";
  char buf[192];
  bool first = true;
  for (const FlightEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "%s{\"ts_ns\":%" PRIu64 ",\"event\":",
                  first ? "" : ",", e.ts_ns);
    out += buf;
    out += json_quote(lifecycle_event_name(e.kind));
    std::snprintf(buf, sizeof(buf), ",\"worker\":%d", e.worker);
    out += buf;
    first = false;
    if (e.seq != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), ",\"seq\":%" PRIu64, e.seq);
      out += buf;
    }
    if (e.launch != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), ",\"launch\":%" PRIu64, e.launch);
      out += buf;
    }
    if (e.edge != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), ",\"edge\":%" PRIu64, e.edge);
      out += buf;
    }
    if (e.detail != LifecycleDetail::kNone) {
      out += ",\"detail\":";
      out += json_quote(lifecycle_detail_name(e.detail));
    }
    if (e.dim > 0) {
      out += ",\"point\":[";
      for (int i = 0; i < e.dim && i < FlightEvent::kMaxPointDim; ++i) {
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%" PRId64, e.coord[i]);
        out += buf;
      }
      out += ']';
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string FlightRecorder::json() const { return json(snapshot()); }

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> ring_lock(r->mu);
    r->buf.clear();
    r->head = 0;
  }
}

}  // namespace idxl::obs
