#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"

namespace idxl::obs {

/// One rank's contribution to the merged cluster trace: its profiler spans
/// and name table, its issue-order task graph, a flight-recorder tail, and
/// the clock alignment the driver estimated for it.
struct RankTrace {
  uint32_t rank = 0;
  /// This rank's steady clock minus the driver's, estimated from the
  /// heartbeat ping-pong probes (0 for the driver itself). Subtracting it
  /// maps the rank's timestamps onto the driver's timeline.
  int64_t clock_offset_ns = 0;
  /// Smoothed probe round-trip time; the offset estimate is correct to
  /// within ±rtt/2 (midpoint method error bound).
  uint64_t rtt_ns = 0;
  /// Profiler epoch on the rank's own steady clock (absolute ns).
  uint64_t epoch_ns = 0;
  std::vector<std::string> names;   ///< profiler intern table, by name id
  std::vector<ProfileEvent> spans;
  std::vector<TaskSample> samples;  ///< issue-order task graph (seq + deps)
  std::vector<FlightEvent> recent;  ///< flight-recorder tail
};

/// A span claiming a cross-rank parent that the origin rank's trace does
/// not contain. An intact trace has none; any entry means a transfer
/// arrived whose producing span was never recorded (lost context).
struct OrphanSpan {
  uint32_t rank = 0;  ///< rank that recorded the orphaned span
  uint64_t seq = ProfileEvent::kNoSeq;
  uint64_t parent = ProfileEvent::kNoSeq;
  uint32_t origin = ProfileEvent::kNoRank;
};

/// The whole cluster's execution history, pulled to the driver at shutdown
/// (kTelemetry) and merged onto one timeline. Each rank becomes a Chrome
/// trace process lane; kRegionData transfers become flow events from the
/// producing task's span on the source rank to the apply span on the
/// destination rank.
struct ClusterTrace {
  std::vector<RankTrace> ranks;

  /// Spans whose cross-rank parent is missing (empty on an intact trace).
  std::vector<OrphanSpan> orphans() const;
  /// Remote-parented spans whose parent was found — the number of flow
  /// edges the Chrome export will draw.
  std::size_t transfer_edges() const;
  /// Critical path of the union task graph: dependence edges are unioned
  /// across ranks (control replication records them everywhere), durations
  /// come from the rank that actually executed each task.
  CriticalPathReport critical_path() const;

  /// Merged Chrome trace-event JSON: pid = rank, per-rank thread lanes,
  /// timestamps clock-aligned to the driver's timeline, flow events for
  /// every resolved transfer edge, and a cluster-critical-path instant
  /// event carrying the path summary.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;
};

/// One rank's stall evidence for the distributed watchdog merge.
struct RankStall {
  uint32_t rank = 0;
  StallReport report;
  /// Task seqs this rank is waiting to receive from other ranks (its
  /// pending externals) — the complement identifies the blocking rank.
  std::vector<uint64_t> pending_externals;
};

/// Merge every rank's stall report into one dump that names the blocking
/// task and the rank executing it: the head of the merged waits-for graph
/// is the lowest waited-on seq that is not itself blocked, and the rank
/// that does NOT list it as a pending external is the one that owes the
/// cluster its TaskDone.
std::string merged_stall_dump(const std::vector<RankStall>& ranks);

}  // namespace idxl::obs
