#include "obs/watchdog.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace idxl::obs {

std::string StallReport::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "== idxl stall report ==\n"
                "no completions for %" PRIu64 " ms: %" PRIu64
                " task(s) pending, %" PRIu64 " completed\n",
                window_ms, pending, completed);
  out += buf;

  out += "-- waits-for graph (blocked tasks) --\n";
  if (blocked.empty()) {
    out += "  (no live-task table; enable the watchdog to populate it)\n";
  }
  for (const BlockedTask& t : blocked) {
    std::snprintf(buf, sizeof(buf), "  task %" PRIu64, t.seq);
    out += buf;
    if (!t.label.empty()) {
      out += " [";
      out += t.label;
      out += ']';
    }
    if (t.launch != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), " launch %" PRIu64, t.launch);
      out += buf;
    }
    out += " waits for {";
    for (std::size_t i = 0; i < t.waits_for.size(); ++i) {
      if (i != 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, t.waits_for[i]);
      out += buf;
    }
    out += "}\n";
  }

  std::snprintf(buf, sizeof(buf), "-- last %zu lifecycle events --\n",
                recent.size());
  out += buf;
  for (const FlightEvent& e : recent) {
    std::snprintf(buf, sizeof(buf), "  [%12.6f ms] %-14s",
                  static_cast<double>(e.ts_ns) / 1e6,
                  lifecycle_event_name(e.kind));
    out += buf;
    if (e.seq != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), " seq=%" PRIu64, e.seq);
      out += buf;
    }
    if (e.launch != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), " launch=%" PRIu64, e.launch);
      out += buf;
    }
    if (e.edge != FlightEvent::kNone) {
      std::snprintf(buf, sizeof(buf), " edge=%" PRIu64, e.edge);
      out += buf;
    }
    if (e.detail != LifecycleDetail::kNone) {
      out += " detail=";
      out += lifecycle_detail_name(e.detail);
    }
    const std::string point = e.point_string();
    if (!point.empty()) {
      out += " point=";
      out += point;
    }
    std::snprintf(buf, sizeof(buf), " worker=%d\n", e.worker);
    out += buf;
  }

  out += "-- metrics snapshot --\n";
  out += metrics.prometheus_text();
  return out;
}

Watchdog::Watchdog(WatchdogConfig config, ProgressFn progress, ReportFn report)
    : config_(std::move(config)),
      progress_(std::move(progress)),
      report_(std::move(report)) {
  IDXL_REQUIRE(static_cast<bool>(progress_), "watchdog needs a progress callback");
  IDXL_REQUIRE(static_cast<bool>(report_), "watchdog needs a report callback");
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    t = std::move(thread_);
  }
  cv_.notify_all();
  t.join();
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_.joinable();
}

void Watchdog::set_on_stall(std::function<void(const StallReport&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_stall_ = std::move(fn);
}

void Watchdog::set_stall_action(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_action_ = std::move(fn);
}

uint64_t Watchdog::stalls_detected() const {
  return stalls_.load(std::memory_order_relaxed);
}

void Watchdog::loop() {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::milliseconds(
      config_.check_period_ms == 0 ? 1 : config_.check_period_ms);

  uint64_t last_completed = 0;
  clock::time_point last_progress = clock::now();
  bool armed = true;
  bool first_sample = true;

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, period, [this] { return stop_; });
      if (stop_) return;
    }
    const auto [completed, pending] = progress_();
    const clock::time_point now = clock::now();
    if (first_sample || completed != last_completed || pending == 0) {
      // Progress (or idle): reset the window and re-arm.
      last_completed = completed;
      last_progress = now;
      armed = true;
      first_sample = false;
      continue;
    }
    const auto stalled_for =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_progress);
    if (armed && stalled_for.count() >=
                     static_cast<int64_t>(config_.stall_window_ms)) {
      armed = false;  // one dump per stall episode
      fire(completed, pending, static_cast<uint64_t>(stalled_for.count()));
    }
  }
}

void Watchdog::fire(uint64_t completed, uint64_t pending, uint64_t window_ms) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  StallReport report = report_();
  report.completed = completed;
  report.pending = pending;
  report.window_ms = window_ms;

  const std::string text = report.to_string();
  if (!config_.dump_path.empty()) {
    if (std::FILE* f = std::fopen(config_.dump_path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "idxl watchdog: cannot open dump path %s\n",
                   config_.dump_path.c_str());
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
  } else {
    std::fwrite(text.data(), 1, text.size(), stderr);
  }

  std::function<void(const StallReport&)> hook;
  std::function<void()> action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = on_stall_;
    if (config_.cancel_on_stall) action = stall_action_;
  }
  if (action) {
    std::fprintf(stderr, "idxl watchdog: cancelling the stalled run\n");
    action();
  }
  if (hook) hook(report);

  if (config_.abort_on_stall) {
    std::fprintf(stderr, "idxl watchdog: aborting on stall\n");
    std::abort();
  }
}

}  // namespace idxl::obs
