#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace idxl {

/// Where a profiled span's time was spent — the pipeline stages the paper's
/// evaluation attributes time to (issuance, dependence analysis, safety
/// checks, execution), plus the subsystems layered on top of them.
enum class ProfCategory : uint8_t {
  kTask,        ///< a point task executing on a worker
  kIssue,       ///< execute()/execute_index() issuance, end to end
  kDependence,  ///< dependence discovery (tracker scan)
  kSafety,      ///< hybrid safety analysis (static + dynamic)
  kTrace,       ///< trace capture / replay bookkeeping
  kReduce,      ///< future reduction (Future::get)
  kExchange,    ///< cross-shard data movement (distributed storage copies)
  kPhase,       ///< application-defined phase timer
  kRuntime,     ///< other runtime work (wait_all, ...)
};

const char* category_name(ProfCategory cat);

/// Thread-pool worker identity of the calling thread, for event tagging.
/// Set once by each pool worker at startup; -1 on issuance threads.
void prof_set_current_worker(int worker);
int prof_current_worker();

/// One closed span. `tid` is the profiler lane (one per recording thread);
/// `worker` is the thread-pool worker id (-1 for issuance threads). Task
/// events additionally carry the task's global sequence number and the time
/// the task sat ready in the queue before a worker picked it up.
struct ProfileEvent {
  uint32_t name = 0;  ///< interned name id — see Profiler::name()
  ProfCategory cat = ProfCategory::kRuntime;
  int32_t worker = -1;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t seq = kNoSeq;
  uint64_t queue_wait_ns = 0;
  /// Launch id of the index/single launch a task span expanded from —
  /// shared with the flight recorder's events, so a Chrome-trace span and
  /// the recorder's lifecycle history cross-link by (launch, seq).
  uint64_t launch = kNoSeq;
  /// Causal parent on another rank: `parent` is the parent span's task
  /// sequence number and `origin` the rank whose trace holds it (control
  /// replication keeps seqs identical everywhere, so the pair is a global
  /// span id). kNoSeq/kNoRank on purely local spans.
  uint64_t parent = kNoSeq;
  uint32_t origin = kNoRank;

  static constexpr uint64_t kNoSeq = UINT64_MAX;
  static constexpr uint32_t kNoRank = UINT32_MAX;

  /// True when this span claims a parent span on another rank's trace.
  bool remote_parent() const { return origin != kNoRank && parent != kNoSeq; }
};

/// A task-graph node as the critical-path analyzer sees it: duration plus
/// the sequence numbers of its dependence-graph predecessors.
struct TaskSample {
  uint64_t seq = 0;
  uint64_t dur_ns = 0;
  std::vector<uint64_t> deps;
};

/// Longest weighted chain through the recorded task graph. With P workers
/// the program cannot finish faster than the critical path, so
/// `max_speedup()` bounds what any scheduler could achieve — the first
/// number to look at before blaming the runtime for poor scaling.
struct CriticalPathReport {
  uint64_t total_task_ns = 0;     ///< sum of all task durations
  uint64_t critical_path_ns = 0;  ///< longest dur-weighted dependence chain
  std::vector<uint64_t> path;     ///< seqs along that chain, program order
  double max_speedup() const {
    return critical_path_ns == 0
               ? 1.0
               : static_cast<double>(total_task_ns) /
                     static_cast<double>(critical_path_ns);
  }
};

/// Critical path over hand-supplied samples (exposed separately so tests
/// can validate the analysis on known graphs). Samples must be in issue
/// order: every dependence seq refers to an earlier sample.
CriticalPathReport critical_path(std::span<const TaskSample> samples);

/// Low-overhead span recorder. Each recording thread appends to a private
/// buffer it alone writes (registration of a new thread takes the mutex
/// once; the record path is wait-free), so workers never contend while
/// profiling. Reading — export, summary, critical path — merges the
/// buffers and is meant for quiescent moments (after wait_all()).
///
/// A disabled profiler records nothing and every record path bails on a
/// single branch; RuntimeConfig::enable_profiling is the gate.
class Profiler {
 public:
  /// Names the instrumentation records against fixed ids, pre-interned so
  /// the hot path never touches the intern table.
  enum WellKnown : uint32_t {
    kNameIssue = 0,
    kNameDependence,
    kNameSafetyCheck,
    kNameSafetyStatic,
    kNameSafetyDynamic,
    kNameSafetyCache,
    kNameTraceCapture,
    kNameTraceReplay,
    kNameFutureReduce,
    kNameWaitAll,
    kNameShardExchange,
    kNameGroupDependence,  ///< group-level (whole-partition) dependence pass
    kNameMaterialize,      ///< group state flushed into the per-point tracker
    kNameExpandChunk,      ///< one bulk-expansion chunk building closures
    kWellKnownCount,
  };

  explicit Profiler(bool enabled = true);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_; }

  /// Nanoseconds since this profiler was constructed (steady clock).
  uint64_t now_ns() const;
  /// The construction-time steady-clock origin — share it with a
  /// FlightRecorder so both subsystems stamp directly comparable times.
  uint64_t epoch_ns() const { return epoch_ns_; }

  /// Intern `name`, returning a stable id. Thread-safe; takes a lock — call
  /// at setup time (task registration), not per event.
  uint32_t intern(std::string_view name);
  const std::string& name(uint32_t id) const;
  /// Snapshot of the whole intern table, indexed by name id — ships with a
  /// rank's spans so the merged cluster trace can resolve names.
  std::vector<std::string> names() const;

  /// Append one closed span to the calling thread's buffer. No-op when
  /// disabled. `worker` tags thread-pool lanes (ThreadPool::current_worker()).
  void record(ProfCategory cat, uint32_t name, uint64_t start_ns, uint64_t end_ns,
              uint64_t seq = ProfileEvent::kNoSeq, uint64_t queue_wait_ns = 0,
              uint64_t launch = ProfileEvent::kNoSeq);

  /// Append a fully specified span (cross-rank parent and all). `tid` and
  /// `worker` are stamped from the calling thread's buffer; every other
  /// field is taken as given. No-op when disabled.
  void record(const ProfileEvent& event);

  /// Record task `seq`'s dependence-graph predecessors (for the critical
  /// path). Durations are joined later from the matching kTask events.
  void record_edges(uint64_t seq, std::span<const uint64_t> deps);

  /// Merged snapshot of every buffer, sorted by (tid, start). Quiescent use.
  std::vector<ProfileEvent> events() const;
  uint64_t event_count() const;

  /// The recorded task graph, joined and sorted by seq. Quiescent use.
  std::vector<TaskSample> task_samples() const;
  CriticalPathReport critical_path() const;

  /// Chrome trace-event JSON ("X" complete events, microsecond timestamps)
  /// — load in about:tracing or https://ui.perfetto.dev.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Plain-text report: per-task-name count/total/p50/p95/max plus busy
  /// time per category and the critical-path bound.
  std::string summary() const;

  /// Drop all recorded events and edges (buffers stay registered).
  void reset();

  /// RAII span: records [construction, destruction) under `name`. Inactive
  /// (single branch, no clock read) when `p` is null or disabled.
  class Scope {
   public:
    Scope() = default;
    Scope(Profiler* p, ProfCategory cat, uint32_t name,
          uint64_t seq = ProfileEvent::kNoSeq)
        : prof_(p != nullptr && p->enabled() ? p : nullptr),
          cat_(cat),
          name_(name),
          seq_(seq),
          start_(prof_ != nullptr ? prof_->now_ns() : 0) {}
    Scope(Scope&& other) noexcept { *this = std::move(other); }
    Scope& operator=(Scope&& other) noexcept {
      close();
      prof_ = other.prof_;
      cat_ = other.cat_;
      name_ = other.name_;
      seq_ = other.seq_;
      start_ = other.start_;
      other.prof_ = nullptr;
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { close(); }

    /// End the span now instead of at scope exit.
    void close() {
      if (prof_ == nullptr) return;
      prof_->record(cat_, name_, start_, prof_->now_ns(), seq_);
      prof_ = nullptr;
    }

   private:
    Profiler* prof_ = nullptr;
    ProfCategory cat_ = ProfCategory::kRuntime;
    uint32_t name_ = 0;
    uint64_t seq_ = ProfileEvent::kNoSeq;
    uint64_t start_ = 0;
  };

  /// Application phase timer: `auto s = prof.phase("init");`. Interns the
  /// name — fine at phase granularity.
  Scope phase(std::string_view name) {
    return Scope(this, ProfCategory::kPhase, enabled_ ? intern(name) : 0);
  }

 private:
  struct Buffer;

  Buffer& local_buffer();

  const bool enabled_;
  const uint64_t id_;  ///< process-unique, keys the thread-local cache
  uint64_t epoch_ns_ = 0;

  mutable std::mutex mu_;  // guards buffers_ registration and names_
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_ids_;
};

using ProfileScope = Profiler::Scope;

}  // namespace idxl
