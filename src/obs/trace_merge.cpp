#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace idxl::obs {

namespace {

/// A rank-local timestamp mapped onto the driver's timeline (absolute ns).
double aligned_ns(const RankTrace& r, uint64_t ts_ns) {
  return static_cast<double>(r.epoch_ns) - static_cast<double>(r.clock_offset_ns) +
         static_cast<double>(ts_ns);
}

/// Index of the kTask span for each seq on one rank (last one wins, so a
/// retried task resolves to the attempt that completed).
std::unordered_map<uint64_t, std::size_t> task_span_index(const RankTrace& r) {
  std::unordered_map<uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < r.spans.size(); ++i) {
    const ProfileEvent& ev = r.spans[i];
    if (ev.cat == ProfCategory::kTask && ev.seq != ProfileEvent::kNoSeq)
      index[ev.seq] = i;
  }
  return index;
}

}  // namespace

std::vector<OrphanSpan> ClusterTrace::orphans() const {
  std::vector<OrphanSpan> out;
  std::unordered_map<uint32_t, std::unordered_map<uint64_t, std::size_t>> by_rank;
  for (const RankTrace& r : ranks) by_rank.emplace(r.rank, task_span_index(r));
  for (const RankTrace& r : ranks) {
    for (const ProfileEvent& ev : r.spans) {
      if (!ev.remote_parent()) continue;
      const auto origin = by_rank.find(ev.origin);
      if (origin == by_rank.end() || origin->second.count(ev.parent) == 0)
        out.push_back({r.rank, ev.seq, ev.parent, ev.origin});
    }
  }
  return out;
}

std::size_t ClusterTrace::transfer_edges() const {
  std::size_t remote = 0;
  for (const RankTrace& r : ranks)
    for (const ProfileEvent& ev : r.spans)
      if (ev.remote_parent()) ++remote;
  return remote - orphans().size();
}

CriticalPathReport ClusterTrace::critical_path() const {
  // Union the replicated task graphs: every rank records the same issue
  // order and dependence edges, but only the executing rank has a nonzero
  // duration for a task — take the max so external (zero-dur) copies never
  // mask the real execution time.
  std::map<uint64_t, TaskSample> merged;
  for (const RankTrace& r : ranks) {
    for (const TaskSample& s : r.samples) {
      TaskSample& m = merged[s.seq];
      m.seq = s.seq;
      m.dur_ns = std::max(m.dur_ns, s.dur_ns);
      for (uint64_t dep : s.deps)
        if (std::find(m.deps.begin(), m.deps.end(), dep) == m.deps.end())
          m.deps.push_back(dep);
    }
  }
  std::vector<TaskSample> samples;
  samples.reserve(merged.size());
  for (auto& [seq, s] : merged) samples.push_back(std::move(s));
  return idxl::critical_path(samples);
}

std::string ClusterTrace::chrome_trace_json() const {
  // Zero of the merged timeline: the earliest aligned profiler epoch, so
  // every timestamp is positive and the driver's own spans keep their
  // relative positions.
  double base = 0.0;
  bool have_base = false;
  for (const RankTrace& r : ranks) {
    const double e = aligned_ns(r, 0);
    if (!have_base || e < base) base = e, have_base = true;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[224];
  bool first = true;
  auto emit = [&](const char* fmt, auto... args) {
    if (!first) out += ',';
    first = false;
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n >= 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
      out += buf;
      return;
    }
    // Oversized event (e.g. a long critical path): re-render into a buffer
    // that fits rather than emitting a truncated — and malformed — object.
    std::vector<char> big(static_cast<std::size_t>(n) + 1);
    std::snprintf(big.data(), big.size(), fmt, args...);
    out += big.data();
  };

  std::unordered_map<uint32_t, std::unordered_map<uint64_t, std::size_t>> by_rank;
  for (const RankTrace& r : ranks) by_rank.emplace(r.rank, task_span_index(r));

  for (const RankTrace& r : ranks) {
    emit("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
         "\"args\":{\"name\":\"rank %u\"}}",
         r.rank, r.rank);
    emit("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_sort_index\","
         "\"args\":{\"sort_index\":%u}}",
         r.rank, r.rank);
    std::vector<int32_t> lane_worker;
    for (const ProfileEvent& ev : r.spans) {
      if (lane_worker.size() <= ev.tid) lane_worker.resize(ev.tid + 1, -1);
      lane_worker[ev.tid] = ev.worker;
    }
    for (uint32_t tid = 0; tid < lane_worker.size(); ++tid)
      emit("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"%s\"}}",
           r.rank, tid,
           lane_worker[tid] < 0
               ? "issuer"
               : ("worker " + std::to_string(lane_worker[tid])).c_str());

    for (const ProfileEvent& ev : r.spans) {
      const double ts_us = (aligned_ns(r, ev.start_ns) - base) / 1e3;
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      json_escape(out, ev.name < r.names.size() ? r.names[ev.name] : "?");
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"worker\":%d",
                    category_name(ev.cat), r.rank, ev.tid, ts_us,
                    static_cast<double>(ev.dur_ns) / 1e3, ev.worker);
      out += buf;
      if (ev.seq != ProfileEvent::kNoSeq) {
        std::snprintf(buf, sizeof(buf), ",\"seq\":%" PRIu64, ev.seq);
        out += buf;
      }
      if (ev.launch != ProfileEvent::kNoSeq) {
        std::snprintf(buf, sizeof(buf), ",\"launch\":%" PRIu64, ev.launch);
        out += buf;
      }
      if (ev.remote_parent()) {
        std::snprintf(buf, sizeof(buf), ",\"parent\":%" PRIu64 ",\"origin\":%u",
                      ev.parent, ev.origin);
        out += buf;
      }
      out += "}}";
    }

    // Clock-alignment note per rank: how far its clock was judged off and
    // the probe RTT bounding the estimate's error.
    emit("{\"ph\":\"i\",\"s\":\"p\",\"name\":\"clock-align\",\"pid\":%u,"
         "\"tid\":0,\"ts\":%.3f,\"args\":{\"offset_ns\":%" PRId64
         ",\"rtt_ns\":%" PRIu64 "}}",
         r.rank, (aligned_ns(r, 0) - base) / 1e3, r.clock_offset_ns, r.rtt_ns);
  }

  // Flow events: connect each remote-parented apply span to the producing
  // task span on its origin rank. Transfer seqs are unique cluster-wide, so
  // the parent seq doubles as the flow id.
  for (const RankTrace& r : ranks) {
    for (const ProfileEvent& ev : r.spans) {
      if (!ev.remote_parent()) continue;
      const RankTrace* origin = nullptr;
      for (const RankTrace& o : ranks)
        if (o.rank == ev.origin) origin = &o;
      if (origin == nullptr) continue;
      const auto& index = by_rank.at(ev.origin);
      const auto it = index.find(ev.parent);
      if (it == index.end()) continue;
      const ProfileEvent& src = origin->spans[it->second];
      emit("{\"ph\":\"s\",\"id\":%" PRIu64
           ",\"name\":\"xfer\",\"cat\":\"net\",\"pid\":%u,\"tid\":%u,"
           "\"ts\":%.3f}",
           ev.parent, origin->rank, src.tid,
           (aligned_ns(*origin, src.start_ns + src.dur_ns) - base) / 1e3);
      emit("{\"ph\":\"f\",\"bp\":\"e\",\"id\":%" PRIu64
           ",\"name\":\"xfer\",\"cat\":\"net\",\"pid\":%u,\"tid\":%u,"
           "\"ts\":%.3f}",
           ev.parent, r.rank, ev.tid, (aligned_ns(r, ev.start_ns) - base) / 1e3);
    }
  }

  const CriticalPathReport cp = critical_path();
  if (cp.total_task_ns > 0) {
    std::string path = "[";
    for (std::size_t i = 0; i < cp.path.size() && i < 64; ++i) {
      if (i != 0) path += ',';
      path += std::to_string(cp.path[i]);
    }
    path += ']';
    emit("{\"ph\":\"i\",\"s\":\"g\",\"name\":\"cluster-critical-path\","
         "\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{\"critical_path_ms\":%.3f,"
         "\"total_task_ms\":%.3f,\"max_speedup\":%.2f,\"path\":%s}}",
         static_cast<double>(cp.critical_path_ns) / 1e6,
         static_cast<double>(cp.total_task_ns) / 1e6, cp.max_speedup(),
         path.c_str());
  }

  out += "]}";
  return out;
}

void ClusterTrace::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  IDXL_REQUIRE(f != nullptr, ("cannot open trace file " + path).c_str());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

std::string merged_stall_dump(const std::vector<RankStall>& ranks) {
  std::string out = "== idxl cluster stall dump (" +
                    std::to_string(ranks.size()) + " ranks) ==\n";

  // The merged waits-for graph: which seqs are blocked anywhere, and which
  // are waited on. The chain head is the lowest waited-on seq that is not
  // itself blocked — the task the whole cluster is stuck behind.
  std::unordered_set<uint64_t> blocked;
  std::set<uint64_t> waited;
  std::unordered_map<uint64_t, std::string> labels;
  for (const RankStall& r : ranks) {
    for (const BlockedTask& t : r.report.blocked) {
      blocked.insert(t.seq);
      if (!t.label.empty()) labels[t.seq] = t.label;
      for (uint64_t dep : t.waits_for) waited.insert(dep);
    }
  }
  uint64_t head = FlightEvent::kNone;
  for (uint64_t seq : waited)
    if (blocked.count(seq) == 0) {
      head = seq;
      break;
    }
  if (head == FlightEvent::kNone && !waited.empty()) head = *waited.begin();

  if (head != FlightEvent::kNone) {
    // The blocking rank is the one executing `head`: every other rank lists
    // it as a pending external (a TaskDone it still owes them).
    std::vector<uint32_t> owners, waiters;
    for (const RankStall& r : ranks) {
      const bool external = std::find(r.pending_externals.begin(),
                                      r.pending_externals.end(),
                                      head) != r.pending_externals.end();
      (external ? waiters : owners).push_back(r.rank);
    }
    char line[256];
    const auto label = labels.find(head);
    std::snprintf(line, sizeof(line),
                  "blocking task: seq %" PRIu64 "%s%s%s\n", head,
                  label != labels.end() ? " (" : "",
                  label != labels.end() ? label->second.c_str() : "",
                  label != labels.end() ? ")" : "");
    out += line;
    if (!owners.empty()) {
      out += "blocking rank:";
      for (uint32_t r : owners) out += ' ' + std::to_string(r);
      std::snprintf(line, sizeof(line),
                    " -- %zu rank(s) wait on its TaskDone(seq=%" PRIu64 ")\n",
                    waiters.size(), head);
      out += line;
    } else {
      out += "blocking rank: unknown (every rank lists the task as a "
             "pending external)\n";
    }
  } else {
    out += "no merged waits-for edges: stall is outside the task graph "
           "(handshake, fence ack, or transport)\n";
  }

  for (const RankStall& r : ranks) {
    out += "-- rank " + std::to_string(r.rank) + " --\n";
    if (!r.pending_externals.empty()) {
      out += "pending externals:";
      std::size_t shown = 0;
      for (uint64_t seq : r.pending_externals) {
        if (shown++ == 16) {
          out += " ...";
          break;
        }
        out += ' ' + std::to_string(seq);
      }
      out += '\n';
    }
    out += r.report.to_string();
  }
  return out;
}

}  // namespace idxl::obs
