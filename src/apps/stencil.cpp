#include "apps/stencil.hpp"

#include "region/partition_ops.hpp"

namespace idxl::apps {

double stencil_weight(int64_t offset, int64_t radius) {
  // PRK star weights: w(k) = 1 / (2 * k * radius) for offset k on an axis.
  IDXL_ASSERT(offset != 0 && std::abs(offset) <= radius);
  return 1.0 / (2.0 * static_cast<double>(std::abs(offset)) *
                static_cast<double>(radius)) *
         (offset > 0 ? 1.0 : -1.0);
}

StencilApp::StencilApp(RuntimeApi& rt, const StencilParams& params)
    : rt_(rt), params_(params) {
  IDXL_REQUIRE(params.nx / params.px > params.radius &&
                   params.ny / params.py > params.radius,
               "blocks must be larger than the stencil radius");
  auto& forest = rt_.forest();
  const IndexSpaceId grid_is =
      forest.create_index_space(Domain(Rect::box2(params.nx, params.ny)));
  const FieldSpaceId fs = forest.create_field_space();
  f_in_ = forest.allocate_field(fs, sizeof(double), "in");
  f_out_ = forest.allocate_field(fs, sizeof(double), "out");
  grid_ = forest.create_region(grid_is, fs);
  blocks_ = partition_equal(forest, grid_is, Rect::box2(params.px, params.py));
  halos_ = partition_halo(forest, grid_is, blocks_, params.radius);

  // PRK initial condition: in(x, y) = x + y, out = 0.
  {
    Accessor<double> in(forest, grid_, f_in_, Privilege::kWrite);
    Accessor<double> out(forest, grid_, f_out_, Privilege::kWrite);
    for (const Point& p : Rect::box2(params.nx, params.ny)) {
      in.write(p, static_cast<double>(p[0] + p[1]));
      out.write(p, 0.0);
    }
  }

  const FieldId fin = f_in_, fout = f_out_;
  const int64_t radius = params.radius;
  const Rect interior(Point::p2(radius, radius),
                      Point::p2(params.nx - 1 - radius, params.ny - 1 - radius));

  t_stencil_ = rt_.register_task("stencil", [fin, fout, radius, interior](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(fin);
    auto out = ctx.region(1).accessor<double>(fout);
    ctx.region(1).domain().for_each([&](const Point& p) {
      if (!interior.contains(p)) return;  // PRK skips the boundary ring
      double acc = out.read(p);
      for (int64_t k = 1; k <= radius; ++k) {
        acc += stencil_weight(k, radius) * in.read(Point::p2(p[0] + k, p[1]));
        acc += stencil_weight(-k, radius) * in.read(Point::p2(p[0] - k, p[1]));
        acc += stencil_weight(k, radius) * in.read(Point::p2(p[0], p[1] + k));
        acc += stencil_weight(-k, radius) * in.read(Point::p2(p[0], p[1] - k));
      }
      out.write(p, acc);
    });
  });

  t_increment_ = rt_.register_task("increment", [fin](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<double>(fin);
    ctx.region(0).domain().for_each([&](const Point& p) { in.write(p, in.read(p) + 1.0); });
  });
}

bool StencilApp::run_iteration() {
  const Domain launch_domain = Domain(Rect::box2(params_.px, params_.py));
  const auto id = ProjectionFunctor::identity(2);
  bool all_index = true;

  all_index &= rt_.execute_index(IndexLauncher::over(launch_domain)
                                     .with_task(t_stencil_)
                                     .region(grid_, halos_, id, {f_in_}, Privilege::kRead)
                                     .region(grid_, blocks_, id, {f_out_},
                                             Privilege::kReadWrite))
                   .ran_as_index_launch;

  all_index &= rt_.execute_index(IndexLauncher::over(launch_domain)
                                     .with_task(t_increment_)
                                     .region(grid_, blocks_, id, {f_in_},
                                             Privilege::kReadWrite))
                   .ran_as_index_launch;
  return all_index;
}

void StencilApp::run(int iterations) {
  for (int i = 0; i < iterations; ++i) run_iteration();
  rt_.wait_all();
}

std::vector<double> StencilApp::output() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(grid_, f_out_);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(params_.nx * params_.ny));
  for (const Point& p : Rect::box2(params_.nx, params_.ny)) out.push_back(acc.read(p));
  return out;
}

std::vector<double> StencilApp::input() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(grid_, f_in_);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(params_.nx * params_.ny));
  for (const Point& p : Rect::box2(params_.nx, params_.ny)) out.push_back(acc.read(p));
  return out;
}

std::vector<double> StencilApp::reference_output(const StencilParams& params,
                                                 int iterations) {
  const int64_t nx = params.nx, ny = params.ny, radius = params.radius;
  std::vector<double> in(static_cast<std::size_t>(nx * ny));
  std::vector<double> out(static_cast<std::size_t>(nx * ny), 0.0);
  auto at = [ny](int64_t x, int64_t y) { return static_cast<std::size_t>(x * ny + y); };
  for (int64_t x = 0; x < nx; ++x)
    for (int64_t y = 0; y < ny; ++y) in[at(x, y)] = static_cast<double>(x + y);

  for (int it = 0; it < iterations; ++it) {
    for (int64_t x = radius; x < nx - radius; ++x)
      for (int64_t y = radius; y < ny - radius; ++y) {
        double acc = out[at(x, y)];
        for (int64_t k = 1; k <= radius; ++k) {
          acc += stencil_weight(k, radius) * in[at(x + k, y)];
          acc += stencil_weight(-k, radius) * in[at(x - k, y)];
          acc += stencil_weight(k, radius) * in[at(x, y + k)];
          acc += stencil_weight(-k, radius) * in[at(x, y - k)];
        }
        out[at(x, y)] = acc;
      }
    for (auto& v : in) v += 1.0;
  }
  return out;
}

}  // namespace idxl::apps
