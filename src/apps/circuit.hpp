#pragma once

#include <vector>

#include "runtime/runtime.hpp"

namespace idxl::apps {

/// Configuration of the circuit simulation (Bauer et al. [6], §6.1): an
/// unstructured graph of circuit nodes connected by wires, partitioned into
/// pieces; a fraction of wires cross piece boundaries, creating the ghost
/// accesses that make the data model interesting.
struct CircuitParams {
  int64_t pieces = 4;
  int64_t nodes_per_piece = 16;
  int64_t wires_per_piece = 32;
  /// Percentage (0-100) of wires whose far end lives in another piece.
  int pct_external = 10;
  uint64_t seed = 12345;
  double dt = 1e-2;
  int iterations = 4;
};

/// The circuit application on the real runtime. Each iteration issues three
/// index launches with trivial (identity) projection functors — the paper's
/// statically verified case:
///
///   calc_new_currents   reads node voltages (aliased neighborhood
///                       partition), writes wire currents (disjoint)
///   distribute_charge   reads wire currents, *reduces* charge into the
///                       aliased neighborhood partition (safe: reductions
///                       are exempt from self-checks)
///   update_voltages     read-writes owned nodes (disjoint partition)
class CircuitApp {
 public:
  CircuitApp(Runtime& rt, const CircuitParams& params);

  /// Issue one timestep (3 index launches). Returns true if every launch
  /// ran as an index launch.
  bool run_iteration();
  void run(int iterations);

  /// Read back all node voltages (top-level; waits for completion).
  std::vector<double> voltages();
  /// Read back all wire currents.
  std::vector<double> currents();

  /// Serial reference simulation of the same circuit (same generator seed),
  /// for validation.
  static std::vector<double> reference_voltages(const CircuitParams& params,
                                                int iterations);

  RegionId node_region() const { return node_region_; }
  RegionId wire_region() const { return wire_region_; }

 private:
  Runtime& rt_;
  CircuitParams params_;

  RegionId node_region_;
  RegionId wire_region_;
  PartitionId owned_nodes_;     // disjoint, by piece
  PartitionId neighborhoods_;   // aliased: owned + ghost nodes per piece
  PartitionId piece_wires_;     // disjoint, by piece

  FieldId f_voltage_ = 0, f_charge_ = 0, f_cap_ = 0;
  FieldId f_in_ = 0, f_out_ = 0, f_res_ = 0, f_cur_ = 0;
  TaskFnId t_cnc_ = 0, t_dc_ = 0, t_uv_ = 0;
};

}  // namespace idxl::apps
