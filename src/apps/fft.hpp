#pragma once

#include <complex>
#include <vector>

#include "runtime/runtime.hpp"

namespace idxl::apps {

/// Distributed iterative radix-2 FFT — the "FFT" task-graph pattern of the
/// paper's Figure 1(c).
///
/// The array of n complex values is blocked into `blocks` pieces. Stages
/// whose butterfly span fits inside a block are block-local index launches
/// with identity functors (statically safe). Wider stages pair blocks at
/// distance d = span / (2·block_size); each task of those launches owns one
/// (lo, hi) block pair selected by the *division/modulo* projection
/// functors
///
///   lo(p) = (p / d)·2d + p mod d,     hi(p) = lo(p) + d
///
/// which no affine analysis can classify — the hybrid design's dynamic
/// check proves both injectivity (self-checks) and the disjointness of the
/// lo/hi images (cross-check) at run time. This is the butterfly-exchange
/// analogue of the paper's DOM plane projections.
struct FftParams {
  int64_t n = 64;       ///< power of two
  int64_t blocks = 8;   ///< power of two, <= n
  uint64_t seed = 7;
};

class FftApp {
 public:
  FftApp(Runtime& rt, const FftParams& params);

  /// Run the forward transform. Returns the number of launches that were
  /// verified by the dynamic check (the cross-block butterfly stages).
  int run_forward();

  /// Run the inverse transform of the current working values (conjugate /
  /// forward / conjugate-and-scale), so run_forward(); run_inverse()
  /// round-trips to the input.
  int run_inverse();

  std::vector<std::complex<double>> result();
  const std::vector<std::complex<double>>& input() const { return input_; }

  /// O(n^2) reference DFT of the same input.
  static std::vector<std::complex<double>> reference_dft(
      const std::vector<std::complex<double>>& input);

 private:
  Runtime& rt_;
  FftParams params_;
  std::vector<std::complex<double>> input_;

  RegionId data_;
  PartitionId block_part_;
  PartitionId whole_part_;  // single piece covering the array (for gathers)
  FieldId f_xre_ = 0, f_xim_ = 0;  // immutable input
  FieldId f_re_ = 0, f_im_ = 0;    // working values
  TaskFnId t_bitrev_ = 0, t_local_ = 0, t_cross_ = 0;
  TaskFnId t_conj_store_ = 0, t_scale_ = 0;

  int run_stages();  ///< bit-reverse + butterfly stages over xre/xim -> re/im
};

}  // namespace idxl::apps
