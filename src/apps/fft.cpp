#include "apps/fft.hpp"

#include <cmath>
#include <numbers>

#include "region/partition_ops.hpp"
#include "support/rng.hpp"

namespace idxl::apps {

namespace {

bool is_pow2(int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

int64_t bit_reverse(int64_t v, int bits) {
  int64_t r = 0;
  for (int b = 0; b < bits; ++b)
    if (v & (int64_t{1} << b)) r |= int64_t{1} << (bits - 1 - b);
  return r;
}

struct StageArgs {
  int64_t span;  // butterfly span of this stage
};

}  // namespace

FftApp::FftApp(Runtime& rt, const FftParams& p) : rt_(rt), params_(p) {
  IDXL_REQUIRE(is_pow2(p.n) && is_pow2(p.blocks) && p.blocks <= p.n,
               "FFT size and block count must be powers of two with blocks <= n");
  auto& forest = rt_.forest();
  const IndexSpaceId is = forest.create_index_space(Domain::line(p.n));
  const FieldSpaceId fs = forest.create_field_space();
  f_xre_ = forest.allocate_field(fs, sizeof(double), "xre");
  f_xim_ = forest.allocate_field(fs, sizeof(double), "xim");
  f_re_ = forest.allocate_field(fs, sizeof(double), "re");
  f_im_ = forest.allocate_field(fs, sizeof(double), "im");
  data_ = forest.create_region(is, fs);
  block_part_ = partition_equal(forest, is, Rect::line(p.blocks));
  whole_part_ = partition_equal(forest, is, Rect::line(1));

  // Deterministic pseudo-random input signal.
  Rng rng(p.seed);
  input_.reserve(static_cast<std::size_t>(p.n));
  {
    Accessor<double> xre(forest, data_, f_xre_, Privilege::kWrite);
    Accessor<double> xim(forest, data_, f_xim_, Privilege::kWrite);
    for (int64_t i = 0; i < p.n; ++i) {
      const std::complex<double> v(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
      input_.push_back(v);
      xre.write(Point::p1(i), v.real());
      xim.write(Point::p1(i), v.imag());
    }
  }

  const FieldId fxre = f_xre_, fxim = f_xim_, fre = f_re_, fim = f_im_;
  const int bits = static_cast<int>(std::llround(std::log2(static_cast<double>(p.n))));

  t_bitrev_ = rt_.register_task("fft_bitrev", [fxre, fxim, fre, fim, bits](TaskContext& ctx) {
    auto in_re = ctx.region(0).accessor<double>(fxre);
    auto in_im = ctx.region(0).accessor<double>(fxim);
    auto out_re = ctx.region(1).accessor<double>(fre);
    auto out_im = ctx.region(1).accessor<double>(fim);
    ctx.region(1).domain().for_each([&](const Point& g) {
      const Point src = Point::p1(bit_reverse(g[0], bits));
      out_re.write(g, in_re.read(src));
      out_im.write(g, in_im.read(src));
    });
  });

  // Butterflies fully inside one block.
  t_local_ = rt_.register_task("fft_local_stage", [fre, fim](TaskContext& ctx) {
    const int64_t span = ctx.arg<StageArgs>().span;
    const int64_t half = span / 2;
    auto re = ctx.region(0).accessor<double>(fre);
    auto im = ctx.region(0).accessor<double>(fim);
    const Rect bounds = ctx.region(0).domain().bounds();
    for (int64_t start = bounds.lo[0]; start <= bounds.hi[0]; start += span) {
      for (int64_t k = 0; k < half; ++k) {
        const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(span);
        const std::complex<double> w(std::cos(angle), std::sin(angle));
        const Point plo = Point::p1(start + k), phi = Point::p1(start + k + half);
        const std::complex<double> u(re.read(plo), im.read(plo));
        const std::complex<double> t =
            w * std::complex<double>(re.read(phi), im.read(phi));
        re.write(plo, (u + t).real());
        im.write(plo, (u + t).imag());
        re.write(phi, (u - t).real());
        im.write(phi, (u - t).imag());
      }
    }
  });

  // Conjugate the working values and store them back as the "input" fields
  // (first half of the inverse-transform trick).
  t_conj_store_ = rt_.register_task("fft_conj_store", [fxre, fxim, fre, fim](TaskContext& ctx) {
    auto re = ctx.region(0).accessor<double>(fre);
    auto im = ctx.region(0).accessor<double>(fim);
    auto xre = ctx.region(1).accessor<double>(fxre);
    auto xim = ctx.region(1).accessor<double>(fxim);
    ctx.region(1).domain().for_each([&](const Point& g) {
      xre.write(g, re.read(g));
      xim.write(g, -im.read(g));
    });
  });

  // Final conjugate-and-scale of the inverse transform.
  const double inv_n = 1.0 / static_cast<double>(p.n);
  t_scale_ = rt_.register_task("fft_scale", [fre, fim, inv_n](TaskContext& ctx) {
    auto re = ctx.region(0).accessor<double>(fre);
    auto im = ctx.region(0).accessor<double>(fim);
    ctx.region(0).domain().for_each([&](const Point& g) {
      re.write(g, re.read(g) * inv_n);
      im.write(g, -im.read(g) * inv_n);
    });
  });

  // Butterflies pairing two blocks: region(0) = lo block, region(1) = hi.
  t_cross_ = rt_.register_task("fft_cross_stage", [fre, fim](TaskContext& ctx) {
    const int64_t span = ctx.arg<StageArgs>().span;
    const int64_t half = span / 2;
    auto lo_re = ctx.region(0).accessor<double>(fre);
    auto lo_im = ctx.region(0).accessor<double>(fim);
    auto hi_re = ctx.region(1).accessor<double>(fre);
    auto hi_im = ctx.region(1).accessor<double>(fim);
    const Rect lo_bounds = ctx.region(0).domain().bounds();
    ctx.region(0).domain().for_each([&](const Point& plo) {
      (void)lo_bounds;
      const int64_t g = plo[0];
      const int64_t k = g % span;  // < half for lo-block elements
      const Point phi = Point::p1(g + half);
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(span);
      const std::complex<double> w(std::cos(angle), std::sin(angle));
      const std::complex<double> u(lo_re.read(plo), lo_im.read(plo));
      const std::complex<double> t =
          w * std::complex<double>(hi_re.read(phi), hi_im.read(phi));
      lo_re.write(plo, (u + t).real());
      lo_im.write(plo, (u + t).imag());
      hi_re.write(phi, (u - t).real());
      hi_im.write(phi, (u - t).imag());
    });
  });
}

int FftApp::run_forward() { return run_stages(); }

int FftApp::run_inverse() {
  const auto id = ProjectionFunctor::identity(1);
  // Conjugate the spectrum into the input fields...
  rt_.execute_index(
      IndexLauncher::over(Domain::line(params_.blocks))
          .with_task(t_conj_store_)
          .region(data_, block_part_, id, {f_re_, f_im_}, Privilege::kRead)
          .region(data_, block_part_, id, {f_xre_, f_xim_}, Privilege::kWrite));

  // ...forward-transform it...
  const int dynamic_checked = run_stages();

  // ...and conjugate + scale by 1/n.
  rt_.execute_index(IndexLauncher::over(Domain::line(params_.blocks))
                        .with_task(t_scale_)
                        .region(data_, block_part_, id, {f_re_, f_im_},
                                Privilege::kReadWrite));
  return dynamic_checked;
}

int FftApp::run_stages() {
  const int64_t n = params_.n, blocks = params_.blocks;
  const int64_t block_size = n / blocks;
  int dynamic_checked = 0;

  // Bit-reverse gather: read the whole array (constant functor), write own
  // block. Disjoint field sets keep the cross-check static.
  rt_.execute_index(
      IndexLauncher::over(Domain::line(blocks))
          .with_task(t_bitrev_)
          .region(data_, whole_part_, ProjectionFunctor::symbolic({make_const(0)}),
                  {f_xre_, f_xim_}, Privilege::kRead)
          .region(data_, block_part_, ProjectionFunctor::identity(1),
                  {f_re_, f_im_}, Privilege::kWrite));

  for (int64_t span = 2; span <= n; span *= 2) {
    if (span <= block_size) {
      const auto r = rt_.execute_index(
          IndexLauncher::over(Domain::line(blocks))
              .with_task(t_local_)
              .region(data_, block_part_, ProjectionFunctor::identity(1),
                      {f_re_, f_im_}, Privilege::kReadWrite)
              .scalars(StageArgs{span}));
      IDXL_ASSERT(r.ran_as_index_launch || !rt_.config().enable_index_launches);
      continue;
    }

    // Cross-block stage: pair p owns blocks lo(p) and lo(p) + d.
    const int64_t d = span / 2 / block_size;
    // lo(p) = (p / d)·2d + p mod d — the butterfly-exchange functor.
    const ExprPtr lo_expr =
        make_add(make_mul(make_div(make_coord(0), make_const(d)), make_const(2 * d)),
                 make_mod(make_coord(0), make_const(d)));
    const auto f_lo = ProjectionFunctor::symbolic({lo_expr}, "butterfly-lo");
    const auto f_hi = ProjectionFunctor::symbolic(
        {make_add(lo_expr, make_const(d))}, "butterfly-hi");

    const auto r = rt_.execute_index(
        IndexLauncher::over(Domain::line(blocks / 2))
            .with_task(t_cross_)
            .region(data_, block_part_, f_lo, {f_re_, f_im_},
                    Privilege::kReadWrite)
            .region(data_, block_part_, f_hi, {f_re_, f_im_},
                    Privilege::kReadWrite)
            .scalars(StageArgs{span}));
    IDXL_ASSERT_MSG(r.ran_as_index_launch || !rt_.config().enable_index_launches,
                    "butterfly launch must verify");
    if (r.safety.used_dynamic()) ++dynamic_checked;
  }
  return dynamic_checked;
}

std::vector<std::complex<double>> FftApp::result() {
  rt_.wait_all();
  auto re = rt_.read_region<double>(data_, f_re_);
  auto im = rt_.read_region<double>(data_, f_im_);
  std::vector<std::complex<double>> out;
  out.reserve(static_cast<std::size_t>(params_.n));
  for (int64_t i = 0; i < params_.n; ++i)
    out.emplace_back(re.read(Point::p1(i)), im.read(Point::p1(i)));
  return out;
}

std::vector<std::complex<double>> FftApp::reference_dft(
    const std::vector<std::complex<double>>& input) {
  const auto n = static_cast<int64_t>(input.size());
  std::vector<std::complex<double>> out(input.size());
  for (int64_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (int64_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += input[static_cast<std::size_t>(j)] *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

}  // namespace idxl::apps
