#include "apps/circuit.hpp"

#include "region/partition_ops.hpp"
#include "support/rng.hpp"

namespace idxl::apps {

namespace {

/// The generated unstructured graph, shared by the runtime app and the
/// serial reference so both simulate the identical circuit.
struct CircuitGraph {
  int64_t num_nodes = 0;
  int64_t num_wires = 0;
  std::vector<int64_t> wire_in, wire_out;
  std::vector<double> resistance;
  std::vector<double> capacitance;
  std::vector<double> init_voltage;
};

CircuitGraph generate_graph(const CircuitParams& p) {
  CircuitGraph g;
  g.num_nodes = p.pieces * p.nodes_per_piece;
  g.num_wires = p.pieces * p.wires_per_piece;
  g.wire_in.reserve(static_cast<std::size_t>(g.num_wires));
  g.wire_out.reserve(static_cast<std::size_t>(g.num_wires));
  g.resistance.reserve(static_cast<std::size_t>(g.num_wires));

  Rng rng(p.seed);
  for (int64_t piece = 0; piece < p.pieces; ++piece) {
    for (int64_t w = 0; w < p.wires_per_piece; ++w) {
      const int64_t in =
          piece * p.nodes_per_piece + static_cast<int64_t>(rng.next_below(
                                          static_cast<uint64_t>(p.nodes_per_piece)));
      int64_t out_piece = piece;
      if (p.pieces > 1 &&
          rng.next_below(100) < static_cast<uint64_t>(p.pct_external)) {
        // External wire: far end in a different piece.
        out_piece = static_cast<int64_t>(rng.next_below(
            static_cast<uint64_t>(p.pieces - 1)));
        if (out_piece >= piece) ++out_piece;
      }
      const int64_t out =
          out_piece * p.nodes_per_piece + static_cast<int64_t>(rng.next_below(
                                              static_cast<uint64_t>(p.nodes_per_piece)));
      g.wire_in.push_back(in);
      g.wire_out.push_back(out);
      g.resistance.push_back(1.0 + rng.next_double() * 9.0);
    }
  }
  g.capacitance.reserve(static_cast<std::size_t>(g.num_nodes));
  g.init_voltage.reserve(static_cast<std::size_t>(g.num_nodes));
  for (int64_t n = 0; n < g.num_nodes; ++n) {
    g.capacitance.push_back(1.0 + rng.next_double());
    g.init_voltage.push_back(rng.next_double() * 10.0 - 5.0);
  }
  return g;
}

}  // namespace

CircuitApp::CircuitApp(Runtime& rt, const CircuitParams& params)
    : rt_(rt), params_(params) {
  auto& forest = rt_.forest();
  const CircuitGraph graph = generate_graph(params);

  // --- regions ---
  const IndexSpaceId node_is = forest.create_index_space(Domain::line(graph.num_nodes));
  const IndexSpaceId wire_is = forest.create_index_space(Domain::line(graph.num_wires));
  const FieldSpaceId node_fs = forest.create_field_space();
  f_voltage_ = forest.allocate_field(node_fs, sizeof(double), "voltage");
  f_charge_ = forest.allocate_field(node_fs, sizeof(double), "charge");
  f_cap_ = forest.allocate_field(node_fs, sizeof(double), "capacitance");
  const FieldSpaceId wire_fs = forest.create_field_space();
  f_in_ = forest.allocate_field(wire_fs, sizeof(int64_t), "in_node");
  f_out_ = forest.allocate_field(wire_fs, sizeof(int64_t), "out_node");
  f_res_ = forest.allocate_field(wire_fs, sizeof(double), "resistance");
  f_cur_ = forest.allocate_field(wire_fs, sizeof(double), "current");
  node_region_ = forest.create_region(node_is, node_fs);
  wire_region_ = forest.create_region(wire_is, wire_fs);

  // --- partitions ---
  const Rect colors = Rect::line(params.pieces);
  const int64_t npp = params.nodes_per_piece;
  const int64_t wpp = params.wires_per_piece;
  piece_wires_ = partition_by_coloring(forest, wire_is, colors, [wpp](const Point& p) {
    return Point::p1(p[0] / wpp);
  });
  owned_nodes_ = partition_by_coloring(forest, node_is, colors, [npp](const Point& p) {
    return Point::p1(p[0] / npp);
  });
  // Neighborhood: every node a piece's wires touch (its accessed set,
  // owned + ghosts). Derived with dependent partitioning — the image of
  // each wire piece under the endpoint maps — exactly how the Legion
  // circuit derives its shared/ghost node regions. Aliased, since external
  // wires share far-end nodes between pieces.
  neighborhoods_ = partition_image_multi(
      forest, node_is, piece_wires_, [&graph](const Point& w, std::vector<Point>& out) {
        out.push_back(Point::p1(graph.wire_in[static_cast<std::size_t>(w[0])]));
        out.push_back(Point::p1(graph.wire_out[static_cast<std::size_t>(w[0])]));
      });

  // --- initial data (top-level, before any launch) ---
  {
    Accessor<double> v(forest, node_region_, f_voltage_, Privilege::kWrite);
    Accessor<double> q(forest, node_region_, f_charge_, Privilege::kWrite);
    Accessor<double> c(forest, node_region_, f_cap_, Privilege::kWrite);
    for (int64_t n = 0; n < graph.num_nodes; ++n) {
      v.write(Point::p1(n), graph.init_voltage[static_cast<std::size_t>(n)]);
      q.write(Point::p1(n), 0.0);
      c.write(Point::p1(n), graph.capacitance[static_cast<std::size_t>(n)]);
    }
    Accessor<int64_t> wi(forest, wire_region_, f_in_, Privilege::kWrite);
    Accessor<int64_t> wo(forest, wire_region_, f_out_, Privilege::kWrite);
    Accessor<double> wr(forest, wire_region_, f_res_, Privilege::kWrite);
    Accessor<double> wc(forest, wire_region_, f_cur_, Privilege::kWrite);
    for (int64_t w = 0; w < graph.num_wires; ++w) {
      wi.write(Point::p1(w), graph.wire_in[static_cast<std::size_t>(w)]);
      wo.write(Point::p1(w), graph.wire_out[static_cast<std::size_t>(w)]);
      wr.write(Point::p1(w), graph.resistance[static_cast<std::size_t>(w)]);
      wc.write(Point::p1(w), 0.0);
    }
  }

  // --- task bodies ---
  const FieldId fv = f_voltage_, fq = f_charge_, fc = f_cap_;
  const FieldId fi = f_in_, fo = f_out_, fr = f_res_, fcur = f_cur_;
  const double dt = params.dt;

  t_cnc_ = rt_.register_task("calc_new_currents", [fv, fi, fo, fr, fcur](TaskContext& ctx) {
    auto volt = ctx.region(0).accessor<double>(fv);
    auto in = ctx.region(1).accessor<int64_t>(fi);
    auto out = ctx.region(1).accessor<int64_t>(fo);
    auto res = ctx.region(1).accessor<double>(fr);
    auto cur = ctx.region(2).accessor<double>(fcur);
    ctx.region(1).domain().for_each([&](const Point& w) {
      const double v_in = volt.read(Point::p1(in.read(w)));
      const double v_out = volt.read(Point::p1(out.read(w)));
      cur.write(w, (v_in - v_out) / res.read(w));
    });
  });

  t_dc_ = rt_.register_task("distribute_charge", [fq, fi, fo, fcur, dt](TaskContext& ctx) {
    auto in = ctx.region(0).accessor<int64_t>(fi);
    auto out = ctx.region(0).accessor<int64_t>(fo);
    auto cur = ctx.region(0).accessor<double>(fcur);
    auto charge = ctx.region(1).accessor<double>(fq);
    ctx.region(0).domain().for_each([&](const Point& w) {
      const double i = cur.read(w);
      charge.reduce(Point::p1(in.read(w)), -dt * i);
      charge.reduce(Point::p1(out.read(w)), dt * i);
    });
  });

  t_uv_ = rt_.register_task("update_voltages", [fv, fq, fc](TaskContext& ctx) {
    auto volt = ctx.region(0).accessor<double>(fv);
    auto charge = ctx.region(0).accessor<double>(fq);
    auto cap = ctx.region(1).accessor<double>(fc);
    ctx.region(0).domain().for_each([&](const Point& n) {
      volt.write(n, volt.read(n) + charge.read(n) / cap.read(n));
      charge.write(n, 0.0);
    });
  });
}

bool CircuitApp::run_iteration() {
  const Domain launch_domain = Domain::line(params_.pieces);
  const auto id = ProjectionFunctor::identity(1);
  bool all_index = true;

  all_index &=
      rt_.execute_index(
             IndexLauncher::over(launch_domain)
                 .with_task(t_cnc_)
                 .region(node_region_, neighborhoods_, id, {f_voltage_},
                         Privilege::kRead)
                 .region(wire_region_, piece_wires_, id, {f_in_, f_out_, f_res_},
                         Privilege::kRead)
                 .region(wire_region_, piece_wires_, id, {f_cur_},
                         Privilege::kWrite))
          .ran_as_index_launch;

  all_index &=
      rt_.execute_index(
             IndexLauncher::over(launch_domain)
                 .with_task(t_dc_)
                 .region(wire_region_, piece_wires_, id, {f_in_, f_out_, f_cur_},
                         Privilege::kRead)
                 .region(node_region_, neighborhoods_, id, {f_charge_},
                         Privilege::kReduce, ReductionOp::kSum))
          .ran_as_index_launch;

  all_index &=
      rt_.execute_index(
             IndexLauncher::over(launch_domain)
                 .with_task(t_uv_)
                 .region(node_region_, owned_nodes_, id, {f_voltage_, f_charge_},
                         Privilege::kReadWrite)
                 .region(node_region_, owned_nodes_, id, {f_cap_},
                         Privilege::kRead))
          .ran_as_index_launch;
  return all_index;
}

void CircuitApp::run(int iterations) {
  for (int i = 0; i < iterations; ++i) run_iteration();
  rt_.wait_all();
}

std::vector<double> CircuitApp::voltages() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(node_region_, f_voltage_);
  std::vector<double> out;
  const int64_t n = params_.pieces * params_.nodes_per_piece;
  out.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> CircuitApp::currents() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(wire_region_, f_cur_);
  std::vector<double> out;
  const int64_t w = params_.pieces * params_.wires_per_piece;
  out.reserve(static_cast<std::size_t>(w));
  for (int64_t i = 0; i < w; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> CircuitApp::reference_voltages(const CircuitParams& params,
                                                   int iterations) {
  const CircuitGraph g = generate_graph(params);
  std::vector<double> voltage = g.init_voltage;
  std::vector<double> charge(static_cast<std::size_t>(g.num_nodes), 0.0);
  std::vector<double> current(static_cast<std::size_t>(g.num_wires), 0.0);

  for (int it = 0; it < iterations; ++it) {
    for (int64_t w = 0; w < g.num_wires; ++w) {
      const auto wi = static_cast<std::size_t>(w);
      current[wi] = (voltage[static_cast<std::size_t>(g.wire_in[wi])] -
                     voltage[static_cast<std::size_t>(g.wire_out[wi])]) /
                    g.resistance[wi];
    }
    for (int64_t w = 0; w < g.num_wires; ++w) {
      const auto wi = static_cast<std::size_t>(w);
      charge[static_cast<std::size_t>(g.wire_in[wi])] -= params.dt * current[wi];
      charge[static_cast<std::size_t>(g.wire_out[wi])] += params.dt * current[wi];
    }
    for (int64_t n = 0; n < g.num_nodes; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      voltage[ni] += charge[ni] / g.capacitance[ni];
      charge[ni] = 0.0;
    }
  }
  return voltage;
}

}  // namespace idxl::apps
