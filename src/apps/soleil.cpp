#include "apps/soleil.hpp"

#include "region/partition_ops.hpp"

namespace idxl::apps {

std::array<int, 3> sweep_signs(int direction) {
  IDXL_ASSERT(direction >= 0 && direction < 8);
  return {direction & 1 ? -1 : 1, direction & 2 ? -1 : 1, direction & 4 ? -1 : 1};
}

namespace {

/// Sweep depth of block coordinate `c` along an axis of `extent` blocks.
int64_t sweep_depth(int64_t c, int64_t extent, int sign) {
  return sign > 0 ? c : extent - 1 - c;
}

/// Deterministic, FP-exact initial temperature.
double initial_temperature(int64_t gx, int64_t gy, int64_t gz) {
  return 1.0 + 0.1 * static_cast<double>((gx * 7 + gy * 3 + gz) % 13);
}

struct SweepArgs {
  int direction;
};

}  // namespace

SoleilApp::SoleilApp(Runtime& rt, const SoleilParams& p) : rt_(rt), params_(p) {
  auto& forest = rt_.forest();
  const int64_t nx = p.bx * p.cx, ny = p.by * p.cy, nz = p.bz * p.cz;
  const Rect block_rect = Rect::box3(p.bx, p.by, p.bz);

  // --- fluid grid ---
  const IndexSpaceId fluid_is = forest.create_index_space(Domain(Rect::box3(nx, ny, nz)));
  const FieldSpaceId fluid_fs = forest.create_field_space();
  f_temp_ = forest.allocate_field(fluid_fs, sizeof(double), "T");
  f_temp_new_ = forest.allocate_field(fluid_fs, sizeof(double), "T_new");
  fluid_ = forest.create_region(fluid_is, fluid_fs);
  fluid_blocks_ = partition_equal(forest, fluid_is, block_rect);
  fluid_halos_ = partition_halo(forest, fluid_is, fluid_blocks_, 1);

  // --- block-granularity quantities ---
  const IndexSpaceId block_is = forest.create_index_space(Domain(block_rect));
  const FieldSpaceId block_fs = forest.create_field_space();
  f_source_ = forest.allocate_field(block_fs, sizeof(double), "source");
  for (int d = 0; d < 8; ++d)
    f_intensity_[static_cast<std::size_t>(d)] =
        forest.allocate_field(block_fs, sizeof(double), "I" + std::to_string(d));
  blockq_ = forest.create_region(block_is, block_fs);
  block_cells_ = partition_equal(forest, block_is, block_rect);  // one block per color

  // --- exchange planes ---
  auto make_plane = [&](int64_t a, int64_t b, std::array<FieldId, 8>& fields,
                        RegionId& region, PartitionId& part, const char* tag) {
    const IndexSpaceId is = forest.create_index_space(Domain(Rect::box2(a, b)));
    const FieldSpaceId fs = forest.create_field_space();
    for (int d = 0; d < 8; ++d)
      fields[static_cast<std::size_t>(d)] = forest.allocate_field(
          fs, sizeof(double), std::string(tag) + std::to_string(d));
    region = forest.create_region(is, fs);
    part = partition_equal(forest, is, Rect::box2(a, b));  // one cell per color
  };
  make_plane(p.bx, p.by, f_plane_xy_, plane_xy_, part_xy_, "Pxy");
  make_plane(p.by, p.bz, f_plane_yz_, plane_yz_, part_yz_, "Pyz");
  make_plane(p.bx, p.bz, f_plane_xz_, plane_xz_, part_xz_, "Pxz");

  // --- particles ---
  const int64_t nblocks = p.bx * p.by * p.bz;
  const int64_t nparticles = nblocks * p.particles_per_block;
  const IndexSpaceId part_is = forest.create_index_space(Domain::line(nparticles));
  const FieldSpaceId part_fs = forest.create_field_space();
  f_ppos_ = forest.allocate_field(part_fs, sizeof(int64_t), "pos");
  f_ptemp_ = forest.allocate_field(part_fs, sizeof(double), "ptemp");
  particles_ = forest.create_region(part_is, part_fs);
  const int64_t ppb = p.particles_per_block;
  const int64_t by_ = p.by, bz_ = p.bz;
  particle_blocks_ = partition_by_coloring(
      forest, part_is, block_rect, [ppb, by_, bz_](const Point& pt) {
        const int64_t b = pt[0] / ppb;
        return Point::p3(b / (by_ * bz_), (b / bz_) % by_, b % bz_);
      });

  // --- initial data ---
  {
    Accessor<double> t(forest, fluid_, f_temp_, Privilege::kWrite);
    Accessor<double> tn(forest, fluid_, f_temp_new_, Privilege::kWrite);
    for (const Point& c : Rect::box3(nx, ny, nz)) {
      t.write(c, initial_temperature(c[0], c[1], c[2]));
      tn.write(c, 0.0);
    }
    Accessor<double> src(forest, blockq_, f_source_, Privilege::kWrite);
    for (const Point& b : block_rect) src.write(b, 0.0);
    for (int d = 0; d < 8; ++d) {
      Accessor<double> i(forest, blockq_, f_intensity_[static_cast<std::size_t>(d)],
                         Privilege::kWrite);
      for (const Point& b : block_rect) i.write(b, 0.0);
    }
    Accessor<int64_t> pos(forest, particles_, f_ppos_, Privilege::kWrite);
    Accessor<double> ptemp(forest, particles_, f_ptemp_, Privilege::kWrite);
    const int64_t cells_per_block = p.cx * p.cy * p.cz;
    for (int64_t i = 0; i < nparticles; ++i) {
      pos.write(Point::p1(i), (i * 7 + 3) % cells_per_block);
      ptemp.write(Point::p1(i), 0.0);
    }
  }

  // --- task bodies ---
  const auto pp = params_;  // captured by value in the lambdas below
  const FieldId ft = f_temp_, ftn = f_temp_new_, fsrc = f_source_;
  const auto fint = f_intensity_;
  const auto fxy = f_plane_xy_, fyz = f_plane_yz_, fxz = f_plane_xz_;
  const FieldId fpos = f_ppos_, fptemp = f_ptemp_;

  t_diffuse_ = rt_.register_task("fluid_diffuse", [ft, ftn, pp](TaskContext& ctx) {
    auto t = ctx.region(0).accessor<double>(ft);
    auto tn = ctx.region(1).accessor<double>(ftn);
    const Domain& halo = ctx.region(0).domain();
    ctx.region(1).domain().for_each([&](const Point& c) {
      const double center = t.read(c);
      double lap = 0.0;
      for (int axis = 0; axis < 3; ++axis) {
        for (int s = -1; s <= 1; s += 2) {
          Point nb = c;
          nb[axis] += s;
          if (halo.contains(nb)) lap += t.read(nb) - center;
        }
      }
      tn.write(c, center + pp.alpha * lap);
    });
  });

  t_copy_ = rt_.register_task("fluid_copy", [ft, ftn](TaskContext& ctx) {
    auto tn = ctx.region(0).accessor<double>(ftn);
    auto t = ctx.region(1).accessor<double>(ft);
    ctx.region(1).domain().for_each([&](const Point& c) { t.write(c, tn.read(c)); });
  });

  t_collect_ = rt_.register_task("collect_source", [ft, fsrc](TaskContext& ctx) {
    auto t = ctx.region(0).accessor<double>(ft);
    auto src = ctx.region(1).accessor<double>(fsrc);
    double sum = 0.0;
    int64_t count = 0;
    ctx.region(0).domain().for_each([&](const Point& c) {
      sum += t.read(c);
      ++count;
    });
    src.write(ctx.point, sum / static_cast<double>(count));
  });

  t_plane_init_ = rt_.register_task("plane_init", [pp](TaskContext& ctx) {
    const FieldId field = ctx.arg<FieldId>();
    auto plane = ctx.region(0).accessor<double>(field);
    ctx.region(0).domain().for_each(
        [&](const Point& c) { plane.write(c, pp.boundary_intensity); });
  });

  t_sweep_ = rt_.register_task("dom_sweep", [pp, fxy, fyz, fxz, fint, fsrc](TaskContext& ctx) {
    const int d = ctx.arg<SweepArgs>().direction;
    const auto dd = static_cast<std::size_t>(d);
    auto pxy = ctx.region(0).accessor<double>(fxy[dd]);
    auto pyz = ctx.region(1).accessor<double>(fyz[dd]);
    auto pxz = ctx.region(2).accessor<double>(fxz[dd]);
    auto intensity = ctx.region(3).accessor<double>(fint[dd]);
    auto src = ctx.region(4).accessor<double>(fsrc);

    const Point b = ctx.point;  // block coordinates (X, Y, Z)
    const Point cxy = Point::p2(b[0], b[1]);
    const Point cyz = Point::p2(b[1], b[2]);
    const Point cxz = Point::p2(b[0], b[2]);
    const double in_x = pyz.read(cyz);  // incoming along x: plane ⟂ x
    const double in_y = pxz.read(cxz);
    const double in_z = pxy.read(cxy);
    const double value =
        (src.read(b) + (in_x + in_y + in_z) / 3.0) / (1.0 + pp.sigma);
    intensity.write(b, value);
    pyz.write(cyz, value);
    pxz.write(cxz, value);
    pxy.write(cxy, value);
  });

  t_feedback_ = rt_.register_task("radiation_feedback", [ft, fint, pp](TaskContext& ctx) {
    auto t = ctx.region(0).accessor<double>(ft);
    std::array<Accessor<double>, 8> intensities = {
        ctx.region(1).accessor<double>(fint[0]), ctx.region(1).accessor<double>(fint[1]),
        ctx.region(1).accessor<double>(fint[2]), ctx.region(1).accessor<double>(fint[3]),
        ctx.region(1).accessor<double>(fint[4]), ctx.region(1).accessor<double>(fint[5]),
        ctx.region(1).accessor<double>(fint[6]), ctx.region(1).accessor<double>(fint[7])};
    double total = 0.0;
    for (const auto& acc : intensities) total += acc.read(ctx.point);
    ctx.region(0).domain().for_each(
        [&](const Point& c) { t.write(c, t.read(c) + pp.feedback * total); });
  });

  t_particles_ = rt_.register_task("particle_advance", [ft, fpos, fptemp, pp](TaskContext& ctx) {
    auto pos = ctx.region(0).accessor<int64_t>(fpos);
    auto ptemp = ctx.region(0).accessor<double>(fptemp);
    auto t = ctx.region(1).accessor<double>(ft);
    const Point b = ctx.point;
    const int64_t cells = pp.cx * pp.cy * pp.cz;
    ctx.region(0).domain().for_each([&](const Point& i) {
      const int64_t local = pos.read(i);
      const Point cell = Point::p3(b[0] * pp.cx + local / (pp.cy * pp.cz),
                                   b[1] * pp.cy + (local / pp.cz) % pp.cy,
                                   b[2] * pp.cz + local % pp.cz);
      ptemp.write(i, ptemp.read(i) + pp.relax * (t.read(cell) - ptemp.read(i)));
      pos.write(i, (local + 1) % cells);
    });
  });
}

void SoleilApp::issue_sweep(int direction, IterationStats& stats) {
  const auto d = static_cast<std::size_t>(direction);
  const auto [sx, sy, sz] = sweep_signs(direction);
  const auto id2 = ProjectionFunctor::identity(2);

  // Reset the three exchange planes to the inflow boundary value.
  struct PlaneTarget {
    RegionId region;
    PartitionId part;
    FieldId field;
    Rect rect;
  };
  const PlaneTarget planes[3] = {
      {plane_xy_, part_xy_, f_plane_xy_[d], Rect::box2(params_.bx, params_.by)},
      {plane_yz_, part_yz_, f_plane_yz_[d], Rect::box2(params_.by, params_.bz)},
      {plane_xz_, part_xz_, f_plane_xz_[d], Rect::box2(params_.bx, params_.bz)}};
  for (const PlaneTarget& pt : planes) {
    const auto r = rt_.execute_index(
        IndexLauncher::over(Domain(pt.rect))
            .with_task(t_plane_init_)
            .region(pt.region, pt.part, id2, {pt.field}, Privilege::kWrite)
            .scalars(pt.field));
    ++stats.launches;
    stats.index_launches += r.ran_as_index_launch ? 1 : 0;
    stats.dynamic_checked += r.safety.used_dynamic() ? 1 : 0;
  }

  // The paper's non-trivial projection functors: 3-D wavefront -> 2-D
  // exchange planes.
  const auto fx_xy = ProjectionFunctor::symbolic({make_coord(0), make_coord(1)}, "xy");
  const auto fx_yz = ProjectionFunctor::symbolic({make_coord(1), make_coord(2)}, "yz");
  const auto fx_xz = ProjectionFunctor::symbolic({make_coord(0), make_coord(2)}, "xz");
  const auto id3 = ProjectionFunctor::identity(3);

  const int64_t max_depth = params_.bx + params_.by + params_.bz - 2;
  for (int64_t w = 0; w < max_depth; ++w) {
    std::vector<Point> wave;
    for (int64_t x = 0; x < params_.bx; ++x)
      for (int64_t y = 0; y < params_.by; ++y)
        for (int64_t z = 0; z < params_.bz; ++z)
          if (sweep_depth(x, params_.bx, sx) + sweep_depth(y, params_.by, sy) +
                  sweep_depth(z, params_.bz, sz) ==
              w)
            wave.push_back(Point::p3(x, y, z));
    IDXL_ASSERT(!wave.empty());

    const auto r = rt_.execute_index(
        IndexLauncher::over(Domain::from_points(std::move(wave)))
            .with_task(t_sweep_)
            .region(plane_xy_, part_xy_, fx_xy, {f_plane_xy_[d]},
                    Privilege::kReadWrite)
            .region(plane_yz_, part_yz_, fx_yz, {f_plane_yz_[d]},
                    Privilege::kReadWrite)
            .region(plane_xz_, part_xz_, fx_xz, {f_plane_xz_[d]},
                    Privilege::kReadWrite)
            .region(blockq_, block_cells_, id3, {f_intensity_[d]},
                    Privilege::kWrite)
            .region(blockq_, block_cells_, id3, {f_source_}, Privilege::kRead)
            .scalars(SweepArgs{direction}));
    ++stats.launches;
    stats.index_launches += r.ran_as_index_launch ? 1 : 0;
    stats.dynamic_checked += r.safety.used_dynamic() ? 1 : 0;
  }
}

SoleilApp::IterationStats SoleilApp::run_iteration() {
  IterationStats stats;
  const Rect block_rect = Rect::box3(params_.bx, params_.by, params_.bz);
  const Domain block_domain{block_rect};
  const auto id3 = ProjectionFunctor::identity(3);
  auto issue = [&](const IndexLauncher& l) {
    const auto r = rt_.execute_index(l);
    ++stats.launches;
    stats.index_launches += r.ran_as_index_launch ? 1 : 0;
    stats.dynamic_checked += r.safety.used_dynamic() ? 1 : 0;
  };

  // Fluid: diffuse into T_new, copy back.
  issue(IndexLauncher::over(block_domain)
            .with_task(t_diffuse_)
            .region(fluid_, fluid_halos_, id3, {f_temp_}, Privilege::kRead)
            .region(fluid_, fluid_blocks_, id3, {f_temp_new_},
                    Privilege::kWrite));

  issue(IndexLauncher::over(block_domain)
            .with_task(t_copy_)
            .region(fluid_, fluid_blocks_, id3, {f_temp_new_}, Privilege::kRead)
            .region(fluid_, fluid_blocks_, id3, {f_temp_}, Privilege::kWrite));

  if (params_.enable_dom) {
    // Radiation source from the fluid.
    issue(IndexLauncher::over(block_domain)
              .with_task(t_collect_)
              .region(fluid_, fluid_blocks_, id3, {f_temp_}, Privilege::kRead)
              .region(blockq_, block_cells_, id3, {f_source_},
                      Privilege::kWrite));

    // DOM: 8 corner sweeps.
    for (int dir = 0; dir < 8; ++dir) issue_sweep(dir, stats);

    // Radiation feedback into the fluid.
    std::vector<FieldId> all_intensity(f_intensity_.begin(), f_intensity_.end());
    issue(IndexLauncher::over(block_domain)
              .with_task(t_feedback_)
              .region(fluid_, fluid_blocks_, id3, {f_temp_},
                      Privilege::kReadWrite)
              .region(blockq_, block_cells_, id3, std::move(all_intensity),
                      Privilege::kRead));
  }

  if (params_.enable_particles) {
    issue(IndexLauncher::over(block_domain)
              .with_task(t_particles_)
              .region(particles_, particle_blocks_, id3, {f_ppos_, f_ptemp_},
                      Privilege::kReadWrite)
              .region(fluid_, fluid_blocks_, id3, {f_temp_}, Privilege::kRead));
  }

  return stats;
}

void SoleilApp::run(int iterations) {
  for (int i = 0; i < iterations; ++i) run_iteration();
  rt_.wait_all();
}

std::vector<double> SoleilApp::temperatures() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(fluid_, f_temp_);
  std::vector<double> out;
  const Rect r = Rect::box3(params_.bx * params_.cx, params_.by * params_.cy,
                            params_.bz * params_.cz);
  out.reserve(static_cast<std::size_t>(r.volume()));
  for (const Point& c : r) out.push_back(acc.read(c));
  return out;
}

std::vector<double> SoleilApp::intensity(int direction) {
  rt_.wait_all();
  auto acc =
      rt_.read_region<double>(blockq_, f_intensity_[static_cast<std::size_t>(direction)]);
  std::vector<double> out;
  for (const Point& b : Rect::box3(params_.bx, params_.by, params_.bz))
    out.push_back(acc.read(b));
  return out;
}

std::vector<double> SoleilApp::particle_temps() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(particles_, f_ptemp_);
  std::vector<double> out;
  const int64_t n = params_.bx * params_.by * params_.bz * params_.particles_per_block;
  for (int64_t i = 0; i < n; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

SoleilApp::Reference SoleilApp::reference(const SoleilParams& p, int iterations) {
  const int64_t nx = p.bx * p.cx, ny = p.by * p.cy, nz = p.bz * p.cz;
  const int64_t nblocks = p.bx * p.by * p.bz;
  auto cell_at = [ny, nz](int64_t x, int64_t y, int64_t z) {
    return static_cast<std::size_t>((x * ny + y) * nz + z);
  };
  auto block_at = [&p](int64_t X, int64_t Y, int64_t Z) {
    return static_cast<std::size_t>((X * p.by + Y) * p.bz + Z);
  };

  Reference ref;
  ref.temperature.resize(static_cast<std::size_t>(nx * ny * nz));
  for (int64_t x = 0; x < nx; ++x)
    for (int64_t y = 0; y < ny; ++y)
      for (int64_t z = 0; z < nz; ++z)
        ref.temperature[cell_at(x, y, z)] = initial_temperature(x, y, z);
  for (auto& i : ref.intensity) i.assign(static_cast<std::size_t>(nblocks), 0.0);
  const int64_t nparticles = nblocks * p.particles_per_block;
  ref.particle_temp.assign(static_cast<std::size_t>(nparticles), 0.0);
  std::vector<int64_t> ppos(static_cast<std::size_t>(nparticles));
  const int64_t cells_per_block = p.cx * p.cy * p.cz;
  for (int64_t i = 0; i < nparticles; ++i)
    ppos[static_cast<std::size_t>(i)] = (i * 7 + 3) % cells_per_block;

  std::vector<double> source(static_cast<std::size_t>(nblocks), 0.0);

  for (int it = 0; it < iterations; ++it) {
    // Fluid diffusion.
    std::vector<double> t_new(ref.temperature.size());
    for (int64_t x = 0; x < nx; ++x)
      for (int64_t y = 0; y < ny; ++y)
        for (int64_t z = 0; z < nz; ++z) {
          const double center = ref.temperature[cell_at(x, y, z)];
          double lap = 0.0;
          if (x > 0) lap += ref.temperature[cell_at(x - 1, y, z)] - center;
          if (x < nx - 1) lap += ref.temperature[cell_at(x + 1, y, z)] - center;
          if (y > 0) lap += ref.temperature[cell_at(x, y - 1, z)] - center;
          if (y < ny - 1) lap += ref.temperature[cell_at(x, y + 1, z)] - center;
          if (z > 0) lap += ref.temperature[cell_at(x, y, z - 1)] - center;
          if (z < nz - 1) lap += ref.temperature[cell_at(x, y, z + 1)] - center;
          t_new[cell_at(x, y, z)] = center + p.alpha * lap;
        }
    ref.temperature = t_new;

    // Source collection. The parallel task iterates its block's cells in
    // row-major order of the *global* domain restricted to the block,
    // which matches this loop order.
    if (p.enable_dom)
    for (int64_t X = 0; X < p.bx; ++X)
      for (int64_t Y = 0; Y < p.by; ++Y)
        for (int64_t Z = 0; Z < p.bz; ++Z) {
          double sum = 0.0;
          for (int64_t x = X * p.cx; x < (X + 1) * p.cx; ++x)
            for (int64_t y = Y * p.cy; y < (Y + 1) * p.cy; ++y)
              for (int64_t z = Z * p.cz; z < (Z + 1) * p.cz; ++z)
                sum += ref.temperature[cell_at(x, y, z)];
          source[block_at(X, Y, Z)] =
              sum / static_cast<double>(p.cx * p.cy * p.cz);
        }

    // DOM sweeps.
    if (p.enable_dom)
    for (int dir = 0; dir < 8; ++dir) {
      const auto [sx, sy, sz] = sweep_signs(dir);
      std::vector<double> pxy(static_cast<std::size_t>(p.bx * p.by),
                              p.boundary_intensity);
      std::vector<double> pyz(static_cast<std::size_t>(p.by * p.bz),
                              p.boundary_intensity);
      std::vector<double> pxz(static_cast<std::size_t>(p.bx * p.bz),
                              p.boundary_intensity);
      const int64_t max_depth = p.bx + p.by + p.bz - 2;
      for (int64_t w = 0; w < max_depth; ++w)
        for (int64_t X = 0; X < p.bx; ++X)
          for (int64_t Y = 0; Y < p.by; ++Y)
            for (int64_t Z = 0; Z < p.bz; ++Z) {
              if (sweep_depth(X, p.bx, sx) + sweep_depth(Y, p.by, sy) +
                      sweep_depth(Z, p.bz, sz) !=
                  w)
                continue;
              const auto ixy = static_cast<std::size_t>(X * p.by + Y);
              const auto iyz = static_cast<std::size_t>(Y * p.bz + Z);
              const auto ixz = static_cast<std::size_t>(X * p.bz + Z);
              const double value =
                  (source[block_at(X, Y, Z)] + (pyz[iyz] + pxz[ixz] + pxy[ixy]) / 3.0) /
                  (1.0 + p.sigma);
              ref.intensity[static_cast<std::size_t>(dir)][block_at(X, Y, Z)] = value;
              pyz[iyz] = value;
              pxz[ixz] = value;
              pxy[ixy] = value;
            }
    }

    // Radiation feedback.
    if (p.enable_dom)
    for (int64_t X = 0; X < p.bx; ++X)
      for (int64_t Y = 0; Y < p.by; ++Y)
        for (int64_t Z = 0; Z < p.bz; ++Z) {
          double total = 0.0;
          for (int dir = 0; dir < 8; ++dir)
            total += ref.intensity[static_cast<std::size_t>(dir)][block_at(X, Y, Z)];
          for (int64_t x = X * p.cx; x < (X + 1) * p.cx; ++x)
            for (int64_t y = Y * p.cy; y < (Y + 1) * p.cy; ++y)
              for (int64_t z = Z * p.cz; z < (Z + 1) * p.cz; ++z)
                ref.temperature[cell_at(x, y, z)] += p.feedback * total;
        }

    // Particles.
    if (p.enable_particles)
    for (int64_t i = 0; i < nparticles; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const int64_t b = i / p.particles_per_block;
      const int64_t X = b / (p.by * p.bz), Y = (b / p.bz) % p.by, Z = b % p.bz;
      const int64_t local = ppos[ii];
      const int64_t x = X * p.cx + local / (p.cy * p.cz);
      const int64_t y = Y * p.cy + (local / p.cz) % p.cy;
      const int64_t z = Z * p.cz + local % p.cz;
      ref.particle_temp[ii] +=
          p.relax * (ref.temperature[cell_at(x, y, z)] - ref.particle_temp[ii]);
      ppos[ii] = (local + 1) % cells_per_block;
    }
  }
  return ref;
}

}  // namespace idxl::apps
