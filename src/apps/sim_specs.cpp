#include "apps/sim_specs.hpp"

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace idxl::apps {

using sim::AppSpec;
using sim::LaunchSpec;

namespace {

/// P100-class per-element kernel rates for the three circuit phases,
/// seconds per wire. Calibrated so the 1-node weak-scaling point lands in
/// the regime of Fig. 5 (a few 1e6 wires/s per node).
constexpr double kCncPerWire = 100e-9;
constexpr double kDcPerWire = 70e-9;
constexpr double kUvPerWire = 50e-9;

/// Near-cubic factorization of `n` into (bx, by, bz) with bx*by*bz == n.
std::array<int64_t, 3> factor3(int64_t n) {
  std::array<int64_t, 3> best = {n, 1, 1};
  double best_score = 1e300;
  for (int64_t a = 1; a * a * a <= n; ++a) {
    if (n % a) continue;
    const int64_t rest = n / a;
    for (int64_t b = a; b * b <= rest; ++b) {
      if (rest % b) continue;
      const int64_t c = rest / b;
      const double score = static_cast<double>(c) / static_cast<double>(a);
      if (score < best_score) {
        best_score = score;
        best = {c, b, a};
      }
    }
  }
  return best;
}

}  // namespace

AppSpec circuit_spec(int64_t total_wires, uint32_t nodes, int tasks_per_gpu) {
  IDXL_REQUIRE(tasks_per_gpu >= 1, "need at least one task per GPU");
  AppSpec app;
  app.name = "circuit";
  const int64_t tasks = static_cast<int64_t>(nodes) * tasks_per_gpu;
  const double wires_per_task =
      static_cast<double>(total_wires) / static_cast<double>(tasks);
  // ~10% of wires are external; each carries a 16-byte voltage/charge pair.
  const double ghost_bytes = wires_per_task * 0.10 * 16.0;

  LaunchSpec cnc{"calc_new_currents", tasks, 3, wires_per_task * kCncPerWire,
                 ghost_bytes, false, 0, true, 0, {}};
  LaunchSpec dc{"distribute_charge", tasks, 2, wires_per_task * kDcPerWire,
                ghost_bytes, false, 0, true, 0, {}};
  LaunchSpec uv{"update_voltages", tasks, 2, wires_per_task * kUvPerWire,
                0.0, false, 0, true, 0, {}};
  app.iteration = {cnc, dc, uv};
  app.iterations = 10;
  return app;
}

AppSpec circuit_strong_spec(uint32_t nodes) {
  return circuit_spec(5'100'000, nodes);  // §6.1
}

AppSpec circuit_weak_spec(uint32_t nodes) {
  return circuit_spec(200'000 * static_cast<int64_t>(nodes), nodes);  // §6.1
}

AppSpec circuit_weak_overdecomposed_spec(uint32_t nodes) {
  return circuit_spec(200'000 * static_cast<int64_t>(nodes), nodes,
                      /*tasks_per_gpu=*/10);
}

AppSpec stencil_spec(int64_t total_cells, uint32_t nodes) {
  AppSpec app;
  app.name = "stencil";
  const int64_t tasks = nodes;  // 1 task per GPU per stage (§6.1)
  const double cells_per_task =
      static_cast<double>(total_cells) / static_cast<double>(tasks);
  // Radius-2 star on a P100: ~0.09 ns/cell for the 9-point update, ~0.02
  // ns/cell for the increment (bandwidth-bound).
  const double side = std::sqrt(cells_per_task);
  const double halo_bytes = 2.0 * 2.0 * side * 8.0;  // two ghost rows, 8 B/cell

  LaunchSpec st{"stencil", tasks, 2, cells_per_task * 0.09e-9,
                halo_bytes, false, 0, true, 0, {}};
  LaunchSpec inc{"increment", tasks, 1, cells_per_task * 0.02e-9,
                 0.0, false, 0, true, 0, {}};
  app.iteration = {st, inc};
  app.iterations = 10;
  return app;
}

AppSpec stencil_strong_spec(uint32_t nodes) {
  return stencil_spec(900'000'000, nodes);  // §6.1
}

AppSpec stencil_weak_spec(uint32_t nodes) {
  return stencil_spec(900'000'000 * static_cast<int64_t>(nodes), nodes);  // §6.1
}

AppSpec soleil_fluid_spec(uint32_t nodes) {
  AppSpec app;
  app.name = "soleil-fluid";
  const int64_t tasks = nodes;
  // The fluid module is a multi-stage RK solver with separate launches for
  // flux/update/boundary phases per stage: two dozen launches per timestep
  // of ~12 ms each at the per-node problem size used in the paper's weak
  // scaling (~3 iterations/s per node at small node counts, Fig. 9).
  for (int s = 0; s < 24; ++s) {
    LaunchSpec l{"fluid_stage" + std::to_string(s), tasks, 3, 12.4e-3,
                 /*halo*/ 256.0 * 1024.0, false, 0, true, 0, {}};
    app.iteration.push_back(l);
  }
  app.iterations = 10;
  return app;
}

AppSpec soleil_full_spec(uint32_t nodes) {
  AppSpec app;
  app.name = "soleil-full";
  // Soleil decomposes into tiles finer than the node count (4 per node
  // here), which is what gives the DOM sweeps pipeline parallelism.
  const int64_t tiles = 4 * static_cast<int64_t>(nodes);
  const int64_t tasks = tiles;
  const auto [bx, by, bz] = factor3(tiles);

  // Fluid (chain 0) — smaller per-node grid than the fluid-only runs, as in
  // the paper's full-simulation configuration.
  app.iteration.push_back({"fluid_a", tasks, 3, 2e-3, 128e3, false, 0, true, 0, {}, 0});
  app.iteration.push_back({"fluid_b", tasks, 3, 1.5e-3, 128e3, false, 0, true, 0, {}, 0});
  app.iteration.push_back(
      {"collect_source", tasks, 2, 0.25e-3, 0, false, 0, true, 0, {}, 0});

  // DOM: 8 sweep directions, one chain each, overlapping on the GPU.
  // Wavefront sizes follow the diagonal slices of the (bx, by, bz) tile
  // grid; every wavefront launch carries the non-trivial plane-projection
  // functors, so each pays the dynamic check when checks are enabled.
  const int64_t plane_bits = bx * by + by * bz + bx * bz;
  const double dom_kernel = 2.5e-3;  // per tile per direction
  const int64_t depth = bx + by + bz - 2;
  // Wave-major emission order (wavefront w of every direction before
  // wavefront w+1 of any): this is the order in which the tasks actually
  // become ready, so the simulator's in-order GPUs see the same overlap the
  // real runtime's dependence-driven scheduler would extract.
  for (int64_t w = 0; w < depth; ++w) {
    int64_t count = 0;  // blocks at diagonal depth w
    for (int64_t x = 0; x < bx; ++x)
      for (int64_t y = 0; y < by; ++y)
        for (int64_t z = 0; z < bz; ++z)
          if (x + y + z == w) ++count;
    if (count == 0) continue;
    for (int dir = 0; dir < 8; ++dir) {
      const int chain = dir + 1;
      LaunchSpec wave{"sweep_d" + std::to_string(dir) + "_w" + std::to_string(w),
                      count,
                      5,
                      dom_kernel,
                      /*plane exchange*/ 3.0 * 8.0,
                      /*nontrivial functor*/ true,
                      plane_bits,
                      /*depends_on_previous=*/w != 0,  // wave 0 starts the chain
                      chain,
                      w == 0 ? std::vector<int>{0} : std::vector<int>{},
                      /*shard_offset: wavefront blocks live on the owners of
                        diagonal slice w (sweeps pipeline across nodes)*/
                      static_cast<uint32_t>(w)};
      app.iteration.push_back(wave);
    }
  }

  // Radiation feedback joins all 8 sweep chains back into the fluid chain.
  LaunchSpec feedback{"radiation_feedback", tasks, 2, 0.5e-3, 0, false, 0, true, 0,
                      {1, 2, 3, 4, 5, 6, 7, 8}, 0};
  app.iteration.push_back(feedback);
  app.iteration.push_back(
      {"particle_advance", tasks, 2, 1e-3, 0, false, 0, true, 0, {}, 0});
  app.iterations = 10;
  return app;
}

}  // namespace idxl::apps
