#include "apps/spmv.hpp"

#include <cmath>

#include "region/partition_ops.hpp"
#include "support/rng.hpp"

namespace idxl::apps {

namespace {

struct Matrix {
  std::vector<int64_t> row, col;
  std::vector<double> val;
  std::vector<double> x0;
};

/// Deterministic sparse matrix: a strong diagonal plus nnz_per_row random
/// off-diagonal entries per row (diagonal dominance keeps power iteration
/// well-behaved), and a deterministic initial vector.
Matrix generate(const SpmvParams& p) {
  Matrix m;
  Rng rng(p.seed);
  for (int64_t r = 0; r < p.n; ++r) {
    m.row.push_back(r);
    m.col.push_back(r);
    m.val.push_back(4.0 + rng.next_double());
    for (int64_t k = 0; k < p.nnz_per_row; ++k) {
      m.row.push_back(r);
      m.col.push_back(static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(p.n))));
      m.val.push_back(rng.next_double() - 0.25);
    }
  }
  for (int64_t i = 0; i < p.n; ++i) m.x0.push_back(1.0 + rng.next_double() * 0.1);
  return m;
}

}  // namespace

SpmvApp::SpmvApp(Runtime& rt, const SpmvParams& p) : rt_(rt), params_(p) {
  IDXL_REQUIRE(p.n % p.row_blocks == 0, "row_blocks must divide n");
  auto& forest = rt_.forest();
  const Matrix m = generate(p);
  const auto nnz = static_cast<int64_t>(m.val.size());

  const IndexSpaceId entry_is = forest.create_index_space(Domain::line(nnz));
  const IndexSpaceId x_is = forest.create_index_space(Domain::line(p.n));
  const IndexSpaceId y_is = forest.create_index_space(Domain::line(p.n));
  const FieldSpaceId entry_fs = forest.create_field_space();
  f_row_ = forest.allocate_field(entry_fs, sizeof(int64_t), "row");
  f_col_ = forest.allocate_field(entry_fs, sizeof(int64_t), "col");
  f_val_ = forest.allocate_field(entry_fs, sizeof(double), "val");
  const FieldSpaceId vec_fs = forest.create_field_space();
  f_x_ = forest.allocate_field(vec_fs, sizeof(double), "v");
  f_y_ = f_x_;  // same field id in distinct regions
  entries_ = forest.create_region(entry_is, entry_fs);
  vec_x_ = forest.create_region(x_is, vec_fs);
  vec_y_ = forest.create_region(y_is, vec_fs);

  // Row partitions of the vectors.
  const Rect colors = Rect::line(p.row_blocks);
  y_rows_ = partition_equal(forest, y_is, colors);
  x_rows_ = partition_equal(forest, x_is, colors);

  // Derived partitions: entries by the row block they land in (preimage of
  // the row map), and the gather set of x each entry block reads (image of
  // the column map).
  const std::vector<int64_t> rows = m.row;
  entry_blocks_ = partition_preimage(
      forest, entry_is, y_rows_,
      [rows](const Point& e) { return Point::p1(rows[static_cast<std::size_t>(e[0])]); });
  const std::vector<int64_t> cols = m.col;
  x_gather_ = partition_image(
      forest, x_is, entry_blocks_,
      [cols](const Point& e) { return Point::p1(cols[static_cast<std::size_t>(e[0])]); });

  // Initial data.
  {
    Accessor<int64_t> row(forest, entries_, f_row_, Privilege::kWrite);
    Accessor<int64_t> col(forest, entries_, f_col_, Privilege::kWrite);
    Accessor<double> val(forest, entries_, f_val_, Privilege::kWrite);
    for (int64_t e = 0; e < nnz; ++e) {
      row.write(Point::p1(e), m.row[static_cast<std::size_t>(e)]);
      col.write(Point::p1(e), m.col[static_cast<std::size_t>(e)]);
      val.write(Point::p1(e), m.val[static_cast<std::size_t>(e)]);
    }
    Accessor<double> x(forest, vec_x_, f_x_, Privilege::kWrite);
    Accessor<double> y(forest, vec_y_, f_y_, Privilege::kWrite);
    for (int64_t i = 0; i < p.n; ++i) {
      x.write(Point::p1(i), m.x0[static_cast<std::size_t>(i)]);
      y.write(Point::p1(i), 0.0);
    }
  }

  const FieldId frow = f_row_, fcol = f_col_, fval = f_val_, fv = f_x_;
  t_spmv_ = rt_.register_task("spmv", [frow, fcol, fval, fv](TaskContext& ctx) {
    auto row = ctx.region(0).accessor<int64_t>(frow);
    auto col = ctx.region(0).accessor<int64_t>(fcol);
    auto val = ctx.region(0).accessor<double>(fval);
    auto x = ctx.region(1).accessor<double>(fv);
    auto y = ctx.region(2).accessor<double>(fv);
    ctx.region(2).domain().for_each([&](const Point& r) { y.write(r, 0.0); });
    ctx.region(0).domain().for_each([&](const Point& e) {
      const Point r = Point::p1(row.read(e));
      y.write(r, y.read(r) + val.read(e) * x.read(Point::p1(col.read(e))));
    });
  });

  t_norm_ = rt_.register_task("norm", [fv](TaskContext& ctx) {
    auto y = ctx.region(0).accessor<double>(fv);
    double sum = 0;
    ctx.region(0).domain().for_each([&](const Point& r) {
      sum += y.read(r) * y.read(r);
    });
    ctx.return_value = sum;
  });

  t_scale_ = rt_.register_task("scale", [fv](TaskContext& ctx) {
    const double inv_norm = ctx.arg<double>();
    auto y = ctx.region(0).accessor<double>(fv);
    auto x = ctx.region(1).accessor<double>(fv);
    // x and y rows share block structure; copy scaled values across.
    ctx.region(1).domain().for_each(
        [&](const Point& r) { x.write(r, y.read(r) * inv_norm); });
  });
}

void SpmvApp::multiply() {
  const auto id = ProjectionFunctor::identity(1);
  const auto r = rt_.execute_index(
      IndexLauncher::over(Domain::line(params_.row_blocks))
          .with_task(t_spmv_)
          .region(entries_, entry_blocks_, id, {f_row_, f_col_, f_val_},
                  Privilege::kRead)
          .region(vec_x_, x_gather_, id, {f_x_}, Privilege::kRead)
          .region(vec_y_, y_rows_, id, {f_y_}, Privilege::kReadWrite));
  IDXL_ASSERT(r.ran_as_index_launch || !rt_.config().enable_index_launches);
}

double SpmvApp::power_step() {
  multiply();

  const auto id = ProjectionFunctor::identity(1);
  const double norm2 =
      rt_.execute_index(IndexLauncher::over(Domain::line(params_.row_blocks))
                            .with_task(t_norm_)
                            .region(vec_y_, y_rows_, id, {f_y_}, Privilege::kRead)
                            .reduce(ReductionOp::kSum))
          .future.get(rt_);
  const double norm_value = std::sqrt(norm2);

  rt_.execute_index(IndexLauncher::over(Domain::line(params_.row_blocks))
                        .with_task(t_scale_)
                        .region(vec_y_, y_rows_, id, {f_y_}, Privilege::kRead)
                        .region(vec_x_, x_rows_, id, {f_x_}, Privilege::kWrite)
                        .scalars(1.0 / norm_value));
  return norm_value;
}

std::vector<double> SpmvApp::y() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(vec_y_, f_y_);
  std::vector<double> out;
  for (int64_t i = 0; i < params_.n; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> SpmvApp::x() {
  rt_.wait_all();
  auto acc = rt_.read_region<double>(vec_x_, f_x_);
  std::vector<double> out;
  for (int64_t i = 0; i < params_.n; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

std::vector<double> SpmvApp::reference_multiply(const SpmvParams& params,
                                                const std::vector<double>& x) {
  const Matrix m = generate(params);
  std::vector<double> y(static_cast<std::size_t>(params.n), 0.0);
  for (std::size_t e = 0; e < m.val.size(); ++e)
    y[static_cast<std::size_t>(m.row[e])] +=
        m.val[e] * x[static_cast<std::size_t>(m.col[e])];
  return y;
}

double SpmvApp::reference_power(const SpmvParams& params, int steps) {
  const Matrix m = generate(params);
  std::vector<double> x = m.x0;
  double norm_value = 0;
  for (int s = 0; s < steps; ++s) {
    std::vector<double> y(static_cast<std::size_t>(params.n), 0.0);
    for (std::size_t e = 0; e < m.val.size(); ++e)
      y[static_cast<std::size_t>(m.row[e])] +=
          m.val[e] * x[static_cast<std::size_t>(m.col[e])];
    double sum = 0;
    for (double v : y) sum += v * v;
    norm_value = std::sqrt(sum);
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] / norm_value;
  }
  return norm_value;
}

}  // namespace idxl::apps
