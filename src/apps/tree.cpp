#include "apps/tree.hpp"

#include "region/partition_ops.hpp"
#include "support/rng.hpp"

namespace idxl::apps {

namespace {
struct SeedArgs {
  double value;
  FieldId field;
};
}  // namespace

TreeApp::TreeApp(Runtime& rt, const TreeParams& p) : rt_(rt), params_(p) {
  IDXL_REQUIRE(p.levels >= 1 && p.levels < 24, "tree levels out of range");
  auto& forest = rt_.forest();
  const int64_t leaves = int64_t{1} << p.levels;
  const IndexSpaceId is = forest.create_index_space(Domain::line(leaves));
  const FieldSpaceId fs = forest.create_field_space();
  f_even_ = forest.allocate_field(fs, sizeof(double), "even");
  f_odd_ = forest.allocate_field(fs, sizeof(double), "odd");
  nodes_ = forest.create_region(is, fs);
  cells_ = partition_equal(forest, is, Rect::line(leaves));  // one cell per color

  Rng rng(p.seed);
  initial_.reserve(static_cast<std::size_t>(leaves));
  {
    Accessor<double> even(forest, nodes_, f_even_, Privilege::kWrite);
    Accessor<double> odd(forest, nodes_, f_odd_, Privilege::kWrite);
    for (int64_t i = 0; i < leaves; ++i) {
      const double v = rng.next_double() * 10 - 5;
      initial_.push_back(v);
      even.write(Point::p1(i), v);  // level 0 lives in the even field
      odd.write(Point::p1(i), 0.0);
    }
  }

  // combine: node <- left child + right child (fields by level parity).
  t_combine_ = rt_.register_task("tree_combine", [](TaskContext& ctx) {
    const FieldId in_field = ctx.arg<FieldId>();
    auto left = ctx.region(0).accessor<double>(in_field);
    auto right = ctx.region(1).accessor<double>(in_field);
    auto out = ctx.region(2).accessor<double>(in_field ^ 1u);
    double l = 0, r = 0;
    ctx.region(0).domain().for_each([&](const Point& q) { l = left.read(q); });
    ctx.region(1).domain().for_each([&](const Point& q) { r = right.read(q); });
    ctx.region(2).domain().for_each([&](const Point& q) { out.write(q, l + r); });
  });

  // spread: both children <- parent value (fields by level parity).
  t_spread_ = rt_.register_task("tree_spread", [](TaskContext& ctx) {
    const FieldId in_field = ctx.arg<FieldId>();
    auto parent = ctx.region(0).accessor<double>(in_field);
    auto left = ctx.region(1).accessor<double>(in_field ^ 1u);
    auto right = ctx.region(2).accessor<double>(in_field ^ 1u);
    double v = 0;
    ctx.region(0).domain().for_each([&](const Point& q) { v = parent.read(q); });
    ctx.region(1).domain().for_each([&](const Point& q) { left.write(q, v); });
    ctx.region(2).domain().for_each([&](const Point& q) { right.write(q, v); });
  });

  t_seed_ = rt_.register_task("tree_seed", [](TaskContext& ctx) {
    const auto& [v, field] = ctx.arg<SeedArgs>();
    auto out = ctx.region(0).accessor<double>(field);
    ctx.region(0).domain().for_each([&](const Point& q) { out.write(q, v); });
  });
}

double TreeApp::reduce_sum() {
  const auto id = ProjectionFunctor::identity(1);
  const auto left = ProjectionFunctor::affine1d(2, 0);
  const auto right = ProjectionFunctor::affine1d(2, 1);

  FieldId level_field = f_even_;
  for (int level = 0; level < params_.levels; ++level) {
    const int64_t width = int64_t{1} << (params_.levels - level - 1);
    const FieldId out_field = level_field ^ 1u;
    const auto r = rt_.execute_index(
        IndexLauncher::over(Domain::line(width))
            .with_task(t_combine_)
            .region(nodes_, cells_, left, {level_field}, Privilege::kRead)
            .region(nodes_, cells_, right, {level_field}, Privilege::kRead)
            .region(nodes_, cells_, id, {out_field}, Privilege::kWrite)
            .scalars(level_field));
    IDXL_ASSERT_MSG(r.ran_as_index_launch || !rt_.config().enable_index_launches,
                    "tree combine must verify");
    level_field = out_field;
  }
  rt_.wait_all();
  return rt_.read_region<double>(nodes_, level_field).read(Point::p1(0));
}

int TreeApp::broadcast(double value) {
  const auto id = ProjectionFunctor::identity(1);
  const auto left = ProjectionFunctor::affine1d(2, 0);
  const auto right = ProjectionFunctor::affine1d(2, 1);
  int dynamic_checked = 0;

  // Seed the root at the field the down-sweep starts from.
  FieldId level_field = (params_.levels % 2 == 0) ? f_even_ : f_odd_;
  rt_.execute_index(
      IndexLauncher::over(Domain::line(1))
          .with_task(t_seed_)
          .region(nodes_, cells_, id, {level_field}, Privilege::kWrite)
          .scalars(SeedArgs{value, level_field}));

  for (int level = params_.levels - 1; level >= 0; --level) {
    const int64_t width = int64_t{1} << (params_.levels - level - 1);
    const FieldId out_field = level_field ^ 1u;
    // Two *write* args with interleaved affine images (2i vs 2i+1): the
    // static image-box test can't separate them, the dynamic cross-check
    // can.
    const auto r = rt_.execute_index(
        IndexLauncher::over(Domain::line(width))
            .with_task(t_spread_)
            .region(nodes_, cells_, id, {level_field}, Privilege::kRead)
            .region(nodes_, cells_, left, {out_field}, Privilege::kWrite)
            .region(nodes_, cells_, right, {out_field}, Privilege::kWrite)
            .scalars(level_field));
    IDXL_ASSERT_MSG(r.ran_as_index_launch || !rt_.config().enable_index_launches,
                    "tree spread must verify");
    if (r.safety.used_dynamic()) ++dynamic_checked;
    level_field = out_field;
  }
  rt_.wait_all();
  return dynamic_checked;
}

std::vector<double> TreeApp::leaves() {
  rt_.wait_all();
  // After a full down-sweep of `levels` steps starting from parity
  // (levels % 2), the leaves land back in the even field.
  auto acc = rt_.read_region<double>(nodes_, f_even_);
  std::vector<double> out;
  const int64_t leaves = int64_t{1} << params_.levels;
  for (int64_t i = 0; i < leaves; ++i) out.push_back(acc.read(Point::p1(i)));
  return out;
}

}  // namespace idxl::apps
