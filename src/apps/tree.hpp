#pragma once

#include <vector>

#include "runtime/runtime.hpp"

namespace idxl::apps {

/// Binary-tree reduction and broadcast — the "Tree" task-graph pattern of
/// the paper's Figure 1(e).
///
/// The up-sweep halves the launch domain every level (launch domains need
/// not be iterative or fixed-width: exactly the flexibility claim of §1);
/// level l launches 2^(L-l-1) tasks, each reading its two children through
/// the affine functors 2i and 2i+1 and writing node i. Reads and writes
/// ping-pong between two fields per level so the per-field cross-check
/// stays static. The down-sweep broadcasts a value back to the leaves with
/// two *write* arguments (children 2i and 2i+1) whose image disjointness
/// only the dynamic check certifies — interleaved affine images are beyond
/// the static image test.
struct TreeParams {
  int levels = 6;  ///< leaves = 2^levels
  uint64_t seed = 11;
};

class TreeApp {
 public:
  TreeApp(Runtime& rt, const TreeParams& params);

  /// Up-sweep: returns the reduced sum of all leaves (read back from the
  /// root cell).
  double reduce_sum();

  /// Down-sweep: overwrite every leaf with `value`; returns how many
  /// launches needed the dynamic check.
  int broadcast(double value);

  std::vector<double> leaves();
  const std::vector<double>& initial_leaves() const { return initial_; }

 private:
  Runtime& rt_;
  TreeParams params_;
  std::vector<double> initial_;

  RegionId nodes_;         // 2^levels cells, one per widest level
  PartitionId cells_;      // one color per cell
  FieldId f_even_ = 0, f_odd_ = 0;  // ping-pong by level parity
  TaskFnId t_combine_ = 0, t_spread_ = 0, t_seed_ = 0;
};

}  // namespace idxl::apps
