#pragma once

#include <vector>

#include "runtime/runtime.hpp"

namespace idxl::apps {

/// Sparse matrix-vector multiplication and power iteration — the
/// "unstructured" pattern of the paper's Figure 1(f) driven entirely by
/// *derived* partitions:
///
///  * matrix entries are partitioned by the **preimage** of their row under
///    the row partition (each task owns the entries of its row block), and
///  * the gather partition of x is the **image** of each entry block under
///    entry -> column — the exact access set each task needs, aliased where
///    row blocks share columns.
///
/// Power iteration adds the futures extension: the global norm is an
/// index-launch reduction (`result_redop`), folded deterministically and
/// fed back as the next launch's by-value argument.
struct SpmvParams {
  int64_t n = 64;             ///< square matrix dimension
  int64_t row_blocks = 8;
  int64_t nnz_per_row = 4;    ///< off-diagonal entries per row
  uint64_t seed = 23;
};

class SpmvApp {
 public:
  SpmvApp(Runtime& rt, const SpmvParams& params);

  /// y = A x for the current x. All launches statically verified.
  void multiply();

  /// One power-iteration step: y = A x; x = y / ||y||. Returns ||y||.
  double power_step();

  std::vector<double> y();
  std::vector<double> x();

  /// Serial reference: y = A x for the same generated matrix and x0.
  static std::vector<double> reference_multiply(const SpmvParams& params,
                                                const std::vector<double>& x);
  /// Serial power iteration from the same initial vector.
  static double reference_power(const SpmvParams& params, int steps);

 private:
  Runtime& rt_;
  SpmvParams params_;

  RegionId entries_, vec_x_, vec_y_;
  PartitionId entry_blocks_;   // preimage: entries of each row block
  PartitionId x_gather_;       // image: columns each row block touches
  PartitionId y_rows_;         // disjoint row blocks of y
  PartitionId x_rows_;         // disjoint row blocks of x (for the scale step)
  FieldId f_row_ = 0, f_col_ = 0, f_val_ = 0;
  FieldId f_x_ = 0, f_y_ = 0;
  TaskFnId t_spmv_ = 0, t_norm_ = 0, t_scale_ = 0;
};

}  // namespace idxl::apps
