#pragma once

#include <vector>

#include "runtime/api.hpp"

namespace idxl::apps {

/// Configuration of the PRK-style 2-D star stencil (Van der Wijngaart &
/// Mattson [30], §6.1): out += W ⊛ in over a block-partitioned grid with
/// aliased halo partitions, followed by the PRK "in += 1" increment.
struct StencilParams {
  int64_t nx = 64, ny = 64;   ///< grid cells
  int64_t px = 2, py = 2;     ///< processor (task) grid
  int64_t radius = 2;         ///< star stencil radius
  int iterations = 4;
};

/// Two index launches per iteration, both with identity functors (the
/// paper's statically verified case):
///   stencil    reads `in` through the halo partition, read-writes `out`
///              through the disjoint block partition
///   increment  read-writes `in` through the block partition
class StencilApp {
 public:
  /// Backend-independent: runs unmodified on the local, sharded and
  /// distributed backends (construct `rt` via dist::make_runtime).
  StencilApp(RuntimeApi& rt, const StencilParams& params);

  bool run_iteration();
  void run(int iterations);

  std::vector<double> output();  ///< row-major `out` field
  std::vector<double> input();   ///< row-major `in` field

  /// Serial reference of the same computation.
  static std::vector<double> reference_output(const StencilParams& params,
                                              int iterations);

 private:
  RuntimeApi& rt_;
  StencilParams params_;
  RegionId grid_;
  PartitionId blocks_;
  PartitionId halos_;
  FieldId f_in_ = 0, f_out_ = 0;
  TaskFnId t_stencil_ = 0, t_increment_ = 0;
};

/// Star-stencil weights: weight(dx, dy) for |dx|+|dy| <= radius on the two
/// axes (PRK normalization).
double stencil_weight(int64_t offset, int64_t radius);

}  // namespace idxl::apps
