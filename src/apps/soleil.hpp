#pragma once

#include <array>
#include <vector>

#include "runtime/runtime.hpp"

namespace idxl::apps {

/// Configuration of MiniSoleil, our stand-in for Soleil-X (Torres &
/// Iaccarino [28], §6.1): a multi-physics step with turbulent-fluid,
/// particle and discrete-ordinates (DOM) radiation modules on a 3-D
/// block-decomposed grid.
struct SoleilParams {
  int64_t bx = 2, by = 2, bz = 2;   ///< block grid (1 task per block)
  int64_t cx = 4, cy = 4, cz = 4;   ///< cells per block per dimension
  int64_t particles_per_block = 8;
  double alpha = 0.1;               ///< fluid diffusion coefficient
  double sigma = 0.5;               ///< radiation absorption
  double boundary_intensity = 1.0;  ///< DOM inflow boundary value
  double feedback = 1e-3;           ///< radiation -> fluid coupling
  double relax = 0.25;              ///< particle temperature relaxation
  int iterations = 3;
  /// Module toggles matching the paper's two evaluated configurations:
  /// fluid-only (Fig. 9) vs fluid + particles + DOM (Fig. 10).
  bool enable_particles = true;
  bool enable_dom = true;
};

/// One iteration issues, in order:
///   fluid diffuse + copy   (identity functors, statically safe)
///   collect source         (fluid blocks -> per-block radiation source)
///   8 DOM sweeps           one per corner direction; each is a chain of
///                          wavefront launches over *sparse diagonal*
///                          domains whose exchange-plane arguments use the
///                          paper's non-trivial projection functors
///                          (x,y)/(y,z)/(x,z) — verifiable only by the
///                          dynamic check (§6.2.3)
///   radiation feedback     (adds intensity back into the fluid)
///   particle advance       (per-block particles relax to fluid temperature)
class SoleilApp {
 public:
  SoleilApp(Runtime& rt, const SoleilParams& params);

  /// Issue one timestep. Returns the number of launches that ran as index
  /// launches (out of the total issued).
  struct IterationStats {
    int launches = 0;
    int index_launches = 0;
    int dynamic_checked = 0;  ///< launches verified by the dynamic check
  };
  IterationStats run_iteration();
  void run(int iterations);

  std::vector<double> temperatures();               ///< cell-major fluid T
  std::vector<double> intensity(int direction);     ///< per-block I_d
  std::vector<double> particle_temps();

  /// Serial reference of the full multi-physics step.
  struct Reference {
    std::vector<double> temperature;
    std::array<std::vector<double>, 8> intensity;
    std::vector<double> particle_temp;
  };
  static Reference reference(const SoleilParams& params, int iterations);

 private:
  void issue_sweep(int direction, IterationStats& stats);

  Runtime& rt_;
  SoleilParams params_;

  // Fluid grid (cells).
  RegionId fluid_;
  PartitionId fluid_blocks_;
  PartitionId fluid_halos_;
  FieldId f_temp_ = 0, f_temp_new_ = 0;

  // Block-granularity quantities (source + 8 intensity fields).
  RegionId blockq_;
  PartitionId block_cells_;  // one color per block
  FieldId f_source_ = 0;
  std::array<FieldId, 8> f_intensity_{};

  // Exchange planes, one region per orientation, one field per direction.
  RegionId plane_xy_, plane_yz_, plane_xz_;
  PartitionId part_xy_, part_yz_, part_xz_;
  std::array<FieldId, 8> f_plane_xy_{}, f_plane_yz_{}, f_plane_xz_{};

  // Particles.
  RegionId particles_;
  PartitionId particle_blocks_;
  FieldId f_ppos_ = 0, f_ptemp_ = 0;

  TaskFnId t_diffuse_ = 0, t_copy_ = 0, t_collect_ = 0, t_plane_init_ = 0,
           t_sweep_ = 0, t_feedback_ = 0, t_particles_ = 0;
};

/// Direction d (0..7) decoded into per-axis signs (+1 or -1).
std::array<int, 3> sweep_signs(int direction);

}  // namespace idxl::apps
