#pragma once

#include "sim/spec.hpp"

namespace idxl::apps {

/// Simulator workload descriptions of the three evaluation codes (§6.1),
/// mirroring the launch structure of the real implementations in this
/// directory and the experiment setups of [6]/the paper.

/// Circuit: 3 launches per timestep (calc-new-currents, distribute-charge,
/// update-voltages), `tasks_per_gpu` tasks per node per launch. Kernel
/// costs are charged per wire at P100-class rates.
sim::AppSpec circuit_spec(int64_t total_wires, uint32_t nodes, int tasks_per_gpu = 1);

/// Circuit strong scaling: 5.1e6 wires total (§6.1).
sim::AppSpec circuit_strong_spec(uint32_t nodes);
/// Circuit weak scaling: 2e5 wires per node (§6.1).
sim::AppSpec circuit_weak_spec(uint32_t nodes);
/// Fig. 6: weak scaling, overdecomposed 10x (10 tasks per GPU).
sim::AppSpec circuit_weak_overdecomposed_spec(uint32_t nodes);

/// Stencil: 2 launches per timestep (stencil, increment).
sim::AppSpec stencil_spec(int64_t total_cells, uint32_t nodes);
/// Stencil strong scaling: 9e8 cells total (§6.1).
sim::AppSpec stencil_strong_spec(uint32_t nodes);
/// Stencil weak scaling: 9e8 cells per node (§6.1).
sim::AppSpec stencil_weak_spec(uint32_t nodes);

/// Soleil-X fluid-only weak scaling (Fig. 9): the fluid solver's launch
/// sequence, one block per node.
sim::AppSpec soleil_fluid_spec(uint32_t nodes);

/// Soleil-X full configuration (Fig. 10): fluid + particles + DOM. The DOM
/// module contributes 8 sweep chains of wavefront launches over diagonal
/// block slices; each wavefront launch carries the non-trivial projection
/// functors whose dynamic-check cost the figure isolates.
sim::AppSpec soleil_full_spec(uint32_t nodes);

}  // namespace idxl::apps
