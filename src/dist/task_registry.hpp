#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runtime/physical.hpp"

namespace idxl::dist {

/// Process-global name → body registry for exec-mode workers: a task body
/// cannot cross a process boundary, so `idxl-noded` resolves the task
/// *names* the driver ships (Setup message, registration order) against
/// bodies linked into its own binary. Fork-mode runs never consult this —
/// the child inherits the driver's registered bodies directly.
///
/// Register at static-init time with IDXL_DIST_REGISTER_TASK so driver and
/// daemon binaries that link the same task library agree by construction.
void register_named_task(const std::string& name, TaskFn fn);

/// nullptr when `name` was never registered.
const TaskFn* find_named_task(const std::string& name);

/// Every registered (name, body), sorted by name. The service runtime
/// pre-registers the whole table at startup in this deterministic order so
/// all backends (including replicated ones, which require identical
/// registration order on every process) agree on TaskFnIds.
std::vector<std::pair<std::string, TaskFn>> all_named_tasks();

namespace detail {
struct TaskRegistration {
  TaskRegistration(const char* name, TaskFn fn);
};
}  // namespace detail

/// IDXL_DIST_REGISTER_TASK(my_task, [](TaskContext& ctx) { ... });
#define IDXL_DIST_REGISTER_TASK(name, ...)                            \
  static const ::idxl::dist::detail::TaskRegistration                 \
      idxl_dist_task_registration_##name {                            \
    #name, __VA_ARGS__                                                \
  }

}  // namespace idxl::dist
