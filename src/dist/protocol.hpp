#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "region/region_forest.hpp"
#include "runtime/fault.hpp"
#include "runtime/serialize.hpp"
#include "runtime/task_graph.hpp"

namespace idxl::dist {

/// Protocol messages of the distributed runtime, carried as the `type` byte
/// of a net frame (src/net/frame.hpp). Control replication keeps the
/// vocabulary small: the driver broadcasts the launch stream verbatim and
/// the only data that crosses per task is its terminal outcome.
enum class Msg : uint8_t {
  kHello = 1,   ///< driver -> worker: rank assignment + run parameters
  kHelloAck,    ///< worker -> driver: handshake complete
  kSetup,       ///< driver -> worker (exec mode): forest journal + task names
  kLaunch,      ///< driver -> worker: one serialized IndexLauncher
  kSingle,      ///< driver -> worker: one serialized TaskLauncher
  kTaskDone,    ///< owner -> everyone (via driver): terminal task outcome
  kFence,       ///< driver -> worker: quiesce and report
  kFenceAck,    ///< worker -> driver: fence id + serialized FaultReport
  kShutdown,    ///< driver -> worker: drain and exit
  kBye,         ///< worker -> driver: teardown complete
  kPing,        ///< heartbeat, either direction; ignored beyond liveness
};

/// Metric-label name per message type (NetObs::type_name).
const char* msg_name(uint8_t type);

// --- payload codecs ------------------------------------------------------

struct Hello {
  uint32_t rank = 0;
  uint32_t nranks = 0;
  uint32_t workers = 0;           ///< local thread-pool width per process
  uint32_t heartbeat_period_ms = 1000;
  uint32_t peer_stall_window_ms = 10000;
  std::string fault_plan;         ///< FaultPlan::to_string spec; "" = none
};
std::vector<std::byte> encode_hello(const Hello& h);
Hello decode_hello(const std::vector<std::byte>& bytes);

/// Exec-mode bootstrap: everything a fresh process needs to mirror the
/// driver's pre-launch state — the forest construction journal, the task
/// names in registration order (resolved against the worker's named task
/// registry), and the current root-region storage bytes.
struct Setup {
  std::vector<SetupOp> journal;
  std::vector<std::string> tasks;
  /// (root region id, field id, bytes) triples.
  struct Storage {
    uint32_t region = 0;
    FieldId field = 0;
    std::vector<std::byte> bytes;
  };
  std::vector<Storage> storage;
};
std::vector<std::byte> encode_setup(const Setup& s);
Setup decode_setup(const std::vector<std::byte>& bytes);

/// Terminal outcome of one owned task, broadcast so every other rank can
/// complete its external placeholder node. Success carries the return value
/// and the written-region bytes (copy_out order); faults carry the fault
/// fields and no bytes.
struct TaskDone {
  uint64_t seq = 0;
  RemoteOutcome outcome;
};
std::vector<std::byte> encode_task_done(const TaskDone& t);
TaskDone decode_task_done(const std::vector<std::byte>& bytes);

struct FenceAck {
  uint64_t fence = 0;
  FaultReport report;
};
std::vector<std::byte> encode_fence(uint64_t fence);
uint64_t decode_fence(const std::vector<std::byte>& bytes);
std::vector<std::byte> encode_fence_ack(const FenceAck& a);
FenceAck decode_fence_ack(const std::vector<std::byte>& bytes);

}  // namespace idxl::dist
