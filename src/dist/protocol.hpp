#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"
#include "region/region_forest.hpp"
#include "runtime/fault.hpp"
#include "runtime/physical.hpp"
#include "runtime/serialize.hpp"
#include "runtime/task_graph.hpp"

namespace idxl::dist {

/// Steady-clock nanoseconds; stamps RegionData::sent_ns (same-host latency).
uint64_t steady_now_ns();

/// Delta mode ships written bytes only for footprints the driver can mirror
/// in its coherence map: dense write domains. Any sparse write domain makes
/// the whole task fall back to a full-block broadcast outcome. This must
/// compute identically on the owning rank (from the mapped regions) and on
/// the driver's planner (from the forest), or currency tracking diverges.
inline bool needs_full_outcome(const TaskContext& ctx) {
  for (const PhysicalRegion& pr : ctx.regions)
    if (privilege_writes(pr.privilege()) && !pr.domain().dense()) return true;
  return false;
}

/// Protocol messages of the distributed runtime, carried as the `type` byte
/// of a net frame (src/net/frame.hpp). Control replication keeps the
/// vocabulary small: the driver broadcasts the launch stream verbatim and
/// the only data that crosses per task is its terminal outcome.
enum class Msg : uint8_t {
  kHello = 1,   ///< driver -> worker: rank assignment + run parameters
  kHelloAck,    ///< worker -> driver: handshake complete
  kSetup,       ///< driver -> worker (exec mode): forest journal + task names
  kLaunch,      ///< driver -> worker: one serialized IndexLauncher
  kSingle,      ///< driver -> worker: one serialized TaskLauncher
  kTaskDone,    ///< owner -> everyone (via driver): terminal task outcome
  kFence,       ///< driver -> worker: quiesce and report
  kFenceAck,    ///< worker -> driver: fence id + serialized FaultReport
  kShutdown,    ///< driver -> worker: drain and exit
  kBye,         ///< worker -> driver: teardown complete
  kPing,          ///< heartbeat + clock probe, either direction (net/clock.hpp)
  kRoute,         ///< driver -> worker: delta-transfer directive (v3)
  kRegionData,    ///< src rank -> dest rank, direct or driver-relayed (v3)
  kTelemetryReq,  ///< driver -> worker: ship your trace + metrics (v4)
  kTelemetry,     ///< worker -> driver: spans, recorder tail, metrics (v4)
};

/// Metric-label name per message type (NetObs::type_name).
const char* msg_name(uint8_t type);

// --- payload codecs ------------------------------------------------------

struct Hello {
  uint32_t rank = 0;
  uint32_t nranks = 0;
  uint32_t workers = 0;           ///< local thread-pool width per process
  uint32_t heartbeat_period_ms = 1000;
  uint32_t peer_stall_window_ms = 10000;
  uint8_t delta_transfers = 1;    ///< 0 = star-hub full-block baseline
  uint8_t p2p = 0;                ///< direct worker links available (fork mode)
  uint8_t enable_profiling = 0;   ///< record spans for the cluster trace (v4)
  std::string fault_plan;         ///< FaultPlan::to_string spec; "" = none
};
std::vector<std::byte> encode_hello(const Hello& h);
Hello decode_hello(const std::vector<std::byte>& bytes);

/// Exec-mode bootstrap: everything a fresh process needs to mirror the
/// driver's pre-launch state — the forest construction journal, the task
/// names in registration order (resolved against the worker's named task
/// registry), and the current root-region storage bytes.
struct Setup {
  std::vector<SetupOp> journal;
  std::vector<std::string> tasks;
  /// (root region id, field id, bytes) triples.
  struct Storage {
    uint32_t region = 0;
    FieldId field = 0;
    std::vector<std::byte> bytes;
  };
  std::vector<Storage> storage;
};
std::vector<std::byte> encode_setup(const Setup& s);
Setup decode_setup(const std::vector<std::byte>& bytes);

/// Terminal outcome of one owned task, broadcast so every other rank can
/// complete its external placeholder node. In star-hub mode success carries
/// the full written-region bytes (copy_out order); in delta mode most
/// outcomes are slim (has_data = false) and the bytes travel separately as
/// kRegionData to the one rank that needs them (`data_dest`). Faults carry
/// the fault fields and no bytes.
struct TaskDone {
  /// data_dest value meaning "no separate data message for this outcome".
  static constexpr uint32_t kNoDest = UINT32_MAX;

  uint64_t seq = 0;
  /// Rank receiving this task's bytes via kRegionData (transfer tasks
  /// only); the driver excludes it from the TaskDone relay.
  uint32_t data_dest = kNoDest;
  /// Causal parent of the external completion: the executing rank and the
  /// task's launch id there (span = seq; replication makes it global).
  obs::TraceContext ctx;
  RemoteOutcome outcome;
};
std::vector<std::byte> encode_task_done(const TaskDone& t);
TaskDone decode_task_done(const std::vector<std::byte>& bytes);

/// Scalar argument of the replicated no-op transfer task ("idxl_xfer").
/// Must stay trivially copyable: it ships inside the launcher's ArgBuffer.
struct XferArgs {
  FieldId field = 0;
  uint32_t dest = 0;
  uint64_t version = 0;
  Rect rect;
};

/// Routing directive (wire v3): every rank must issue the same replicated
/// transfer task, pinned to `src`, pushing `rect` x `field` of the root
/// behind `producer` to `dest`. Payload-free — the bytes move as
/// kRegionData from src directly (or via driver relay on peer-link loss).
struct Route {
  uint32_t src = 0;
  uint32_t dest = 0;
  RegionId producer;  ///< subregion argument of the transfer task
  FieldId field = 0;
  uint64_t version = 0;
  Rect rect;
  /// Launch id the replicated transfer task will be assigned — identical
  /// on every rank by control replication, so receivers assert equality
  /// (a mismatch means the launch streams diverged) and spans correlate.
  uint64_t launch = UINT64_MAX;
};
std::vector<std::byte> encode_route(const Route& r);
Route decode_route(const std::vector<std::byte>& bytes);

/// The launcher every rank builds from a Route — identical by construction,
/// so seq numbers and launch ids stay replicated. `.at(p1(src), line(n))`
/// pins execution to rank src under owner_of.
TaskLauncher make_xfer_launcher(TaskFnId task, const Route& r, uint32_t nranks);

/// Delta payload: the patches completing external node `seq` on rank
/// `dest`. Travels src -> dest on a direct worker link when one is up,
/// src -> driver -> dest otherwise (dest 0 terminates at the driver).
struct RegionData {
  uint64_t seq = 0;
  uint32_t dest = 0;
  uint64_t sent_ns = 0;  ///< sender steady-clock; same-host latency probe
  /// Causal parent: the producing transfer task's span on the sending rank
  /// (span = seq — replicated — so origin + seq finds it in the merge).
  obs::TraceContext ctx;
  std::vector<RegionPatch> patches;
};
std::vector<std::byte> encode_region_data(const RegionData& r);
RegionData decode_region_data(const std::vector<std::byte>& bytes);

/// Cumulative per-process data-plane byte counters, piggybacked on every
/// FenceAck so the driver can aggregate bytes-moved across all ranks
/// (including direct worker->worker legs it never sees).
struct DataPlaneCounters {
  uint64_t bytes_hub = 0;    ///< full-block outcome payload bytes sent
  uint64_t bytes_relay = 0;  ///< delta patch bytes sent via the driver
  uint64_t bytes_p2p = 0;    ///< delta patch bytes sent on direct links
  uint64_t transfers = 0;    ///< kRegionData messages sent
};

struct FenceAck {
  uint64_t fence = 0;
  FaultReport report;
  DataPlaneCounters net;
  /// Serialized MetricsSnapshot of the worker's registry (may be empty):
  /// fences are rare and snapshots small, so every ack refreshes the
  /// driver's per-rank metrics view for cluster aggregation.
  std::vector<std::byte> metrics;
};
std::vector<std::byte> encode_fence(uint64_t fence);
uint64_t decode_fence(const std::vector<std::byte>& bytes);
std::vector<std::byte> encode_fence_ack(const FenceAck& a);
FenceAck decode_fence_ack(const std::vector<std::byte>& bytes);

/// MetricsSnapshot codec, reused by FenceAck piggybacking and kTelemetry.
std::vector<std::byte> serialize_metrics_snapshot(const obs::MetricsSnapshot& m);
obs::MetricsSnapshot deserialize_metrics_snapshot(
    const std::vector<std::byte>& bytes);

/// Why a rank shipped its telemetry.
enum class TelemetryFlavor : uint8_t {
  kShutdownPull = 0,  ///< answering the driver's kTelemetryReq at shutdown
  kStallPush = 1,     ///< the rank's own watchdog declared a stall
};

/// One rank's observability state on the wire: everything the driver needs
/// for the clock-aligned trace merge (spans + intern table + epoch), the
/// flight-recorder tail, a metrics snapshot, and — for stall pushes — the
/// waits-for graph so the distributed watchdog can name the blocking rank.
struct Telemetry {
  uint32_t rank = 0;
  uint8_t flavor = 0;     ///< TelemetryFlavor
  uint64_t epoch_ns = 0;  ///< profiler epoch, absolute steady-clock ns
  std::vector<std::string> names;  ///< profiler intern table
  std::vector<ProfileEvent> spans;
  std::vector<TaskSample> samples;
  std::vector<obs::FlightEvent> recent;
  obs::MetricsSnapshot metrics;
  // Stall-push fields (zero/empty on shutdown pulls).
  uint64_t completed = 0;
  uint64_t pending = 0;
  uint64_t window_ms = 0;
  std::vector<obs::BlockedTask> blocked;
  /// Task seqs this rank still expects TaskDone/kRegionData for.
  std::vector<uint64_t> pending_externals;
};
std::vector<std::byte> encode_telemetry(const Telemetry& t);
Telemetry decode_telemetry(const std::vector<std::byte>& bytes);

}  // namespace idxl::dist
