#include "dist/worker.hpp"

#include <cstring>

#include "dist/dist_runtime.hpp"
#include "dist/task_registry.hpp"
#include "support/error.hpp"

namespace idxl::dist {

WorkerSession::WorkerSession(net::Socket sock, uint32_t rank, uint32_t nranks,
                             RuntimeConfig config,
                             std::shared_ptr<RegionForest> forest,
                             const std::vector<std::pair<std::string, TaskFn>>& tasks,
                             uint32_t heartbeat_period_ms, uint32_t stall_window_ms)
    : rank_(rank), heartbeat_ms_(heartbeat_period_ms), window_ms_(stall_window_ms) {
  // The hooks capture `this`; they only ever fire from run()'s frame
  // processing, by which time conn_ exists.
  config.point_owned = [rank, nranks](uint64_t, const Point& p,
                                      const Domain& domain) {
    return owner_of(domain, p, nranks) == rank;
  };
  // Workers never run the interference analysis themselves: pair verdicts
  // arrive as certificate bundles on launch descriptors and are re-validated
  // by the arithmetic checker before any probe is skipped. An uncertified
  // pair falls back to the full dependence walk (fail closed).
  config.interference_import_only = true;
  config.on_task_success = [this](uint64_t seq, uint64_t, const Point&,
                                  TaskContext& ctx) {
    TaskDone td;
    td.seq = seq;
    td.outcome.ret = ctx.return_value;
    for (PhysicalRegion& pr : ctx.regions)
      if (privilege_writes(pr.privilege())) pr.copy_out(td.outcome.region_bytes);
    conn_->send(static_cast<uint8_t>(Msg::kTaskDone), encode_task_done(td));
  };
  config.on_task_fault = [this](const TaskFault& fault) {
    TaskDone td;
    td.seq = fault.seq;
    td.outcome.kind = fault.kind;
    td.outcome.root = fault.root;
    td.outcome.attempts = fault.attempts;
    td.outcome.message = fault.message;
    conn_->send(static_cast<uint8_t>(Msg::kTaskDone), encode_task_done(td));
  };
  rt_ = std::make_unique<Runtime>(std::move(config), std::move(forest));
  for (const auto& [name, fn] : tasks) rt_->register_task(name, fn);
  net::NetObs obs;
  obs.metrics = &rt_->metrics();
  obs.recorder =
      rt_->config().enable_flight_recorder ? &rt_->flight_recorder() : nullptr;
  obs.type_name = msg_name;
  conn_ = std::make_unique<net::Connection>(std::move(sock), "driver", obs);
}

void WorkerSession::run() {
  monitor_ = std::make_unique<net::PeerMonitor>(
      std::vector<net::Connection*>{conn_.get()},
      static_cast<uint8_t>(Msg::kPing), heartbeat_ms_, window_ms_,
      &rt_->metrics(), nullptr);
  conn_->send(static_cast<uint8_t>(Msg::kHelloAck), {});
  const std::string err =
      conn_->recv_loop([this](net::Frame& frame) { on_frame(frame); });
  monitor_->stop();
  // Whether the driver said goodbye or just vanished, nothing further will
  // arrive: resolve any still-pending externals so teardown cannot hang.
  rt_->abandon_externals(err.empty() ? "driver connection closed" : err);
  rt_->wait_all();
  conn_->close();
}

void WorkerSession::on_frame(net::Frame& frame) {
  switch (static_cast<Msg>(frame.type)) {
    case Msg::kLaunch:
      rt_->execute_index(deserialize_launcher(frame.payload));
      break;
    case Msg::kSingle:
      rt_->execute(deserialize_task_launcher(frame.payload));
      break;
    case Msg::kTaskDone: {
      TaskDone td = decode_task_done(frame.payload);
      rt_->complete_external(td.seq, std::move(td.outcome));
      break;
    }
    case Msg::kFence: {
      // Safe to fence on the receive thread: every outcome this rank's
      // externals need was forwarded before the fence on the same FIFO
      // connection, so wait_all() cannot depend on an unread frame.
      const uint64_t id = decode_fence(frame.payload);
      rt_->wait_all();
      FenceAck ack;
      ack.fence = id;
      ack.report = rt_->fault_report();
      conn_->send(static_cast<uint8_t>(Msg::kFenceAck), encode_fence_ack(ack));
      break;
    }
    case Msg::kShutdown:
      conn_->send(static_cast<uint8_t>(Msg::kBye), {});
      conn_->drain();
      // Returns recv_loop cleanly; the driver closes its end after kBye.
      conn_->shutdown_read();
      break;
    case Msg::kPing:
      break;
    default:
      IDXL_REQUIRE(false, "worker received unexpected frame type " +
                              std::to_string(frame.type) + " (" +
                              msg_name(frame.type) + ")");
  }
}

void WorkerSession::serve(net::Socket sock) {
  // Bootstrap frames (kHello, kSetup) are read synchronously off the raw
  // socket; the Connection takes over afterwards.
  net::FrameReader reader;
  std::vector<std::byte> buf(64 * 1024);
  auto next_frame = [&](net::Frame& out) {
    while (!reader.poll(out)) {
      const std::size_t n = sock.read_some(buf.data(), buf.size());
      IDXL_REQUIRE(n > 0, "driver closed the connection during bootstrap");
      reader.feed(buf.data(), n);
    }
  };

  net::Frame frame;
  next_frame(frame);
  IDXL_REQUIRE(frame.type == static_cast<uint8_t>(Msg::kHello),
               "expected hello frame, got " + std::string(msg_name(frame.type)));
  const Hello hello = decode_hello(frame.payload);
  IDXL_REQUIRE(hello.rank > 0 && hello.rank < hello.nranks,
               "hello assigns an invalid worker rank");

  next_frame(frame);
  IDXL_REQUIRE(frame.type == static_cast<uint8_t>(Msg::kSetup),
               "expected setup frame, got " + std::string(msg_name(frame.type)));
  const Setup setup = decode_setup(frame.payload);
  IDXL_REQUIRE(reader.pending_bytes() == 0,
               "unexpected data after bootstrap frames");

  auto forest = std::make_shared<RegionForest>();
  forest->replay_setup(setup.journal);
  for (const Setup::Storage& st : setup.storage) {
    const RegionId rid{st.region};
    const RegionInfo& info = forest->region(rid);
    IDXL_REQUIRE(info.root == info.handle,
                 "setup storage names a non-root region");
    const std::size_t fsize = forest->field(info.fspace, st.field).size;
    const std::size_t expect =
        static_cast<std::size_t>(forest->storage_bounds(rid).volume()) *
        fsize;
    IDXL_REQUIRE(st.bytes.size() == expect,
                 "setup storage size does not match region geometry");
    std::memcpy(forest->field_data(rid, st.field), st.bytes.data(),
                st.bytes.size());
  }

  std::vector<std::pair<std::string, TaskFn>> tasks;
  tasks.reserve(setup.tasks.size());
  for (const std::string& name : setup.tasks) {
    const TaskFn* fn = find_named_task(name);
    IDXL_REQUIRE(fn != nullptr,
                 "task '" + name +
                     "' is not registered in this daemon "
                     "(IDXL_DIST_REGISTER_TASK it and relink idxl-noded)");
    tasks.emplace_back(name, *fn);
  }

  RuntimeConfig rc;
  rc.workers = hello.workers;
  if (!hello.fault_plan.empty())
    rc.fault_plan =
        std::make_shared<const FaultPlan>(FaultPlan::parse(hello.fault_plan));

  WorkerSession session(std::move(sock), hello.rank, hello.nranks,
                        std::move(rc), std::move(forest), tasks,
                        hello.heartbeat_period_ms, hello.peer_stall_window_ms);
  session.run();
}

}  // namespace idxl::dist
