#include "dist/worker.hpp"

#include <cstring>

#include "dist/dist_runtime.hpp"
#include "dist/task_registry.hpp"
#include "support/error.hpp"

namespace idxl::dist {

WorkerSession::WorkerSession(net::Socket sock, uint32_t rank, uint32_t nranks,
                             RuntimeConfig config,
                             std::shared_ptr<RegionForest> forest,
                             const std::vector<std::pair<std::string, TaskFn>>& tasks,
                             uint32_t heartbeat_period_ms, uint32_t stall_window_ms,
                             WorkerDataPlane data_plane)
    : rank_(rank),
      nranks_(nranks),
      dp_(std::move(data_plane)),
      heartbeat_ms_(heartbeat_period_ms),
      window_ms_(stall_window_ms) {
  // The hooks capture `this`; they only ever fire from run()'s frame
  // processing, by which time conn_ exists.
  config.point_owned = [rank, nranks](uint64_t, const Point& p,
                                      const Domain& domain) {
    return owner_of(domain, p, nranks) == rank;
  };
  // Workers never run the interference analysis themselves: pair verdicts
  // arrive as certificate bundles on launch descriptors and are re-validated
  // by the arithmetic checker before any probe is skipped. An uncertified
  // pair falls back to the full dependence walk (fail closed).
  config.interference_import_only = true;
  config.on_task_success = [this](uint64_t seq, uint64_t launch, const Point&,
                                  TaskContext& ctx) {
    if (dp_.delta && ctx.fn == dp_.xfer_task) {
      send_xfer_data(seq, launch, ctx);
      return;
    }
    TaskDone td;
    td.seq = seq;
    td.ctx = obs::TraceContext{launch, seq, rank_};
    td.outcome.ret = ctx.return_value;
    if (!dp_.delta || needs_full_outcome(ctx)) {
      for (PhysicalRegion& pr : ctx.regions)
        if (privilege_writes(pr.privilege())) pr.copy_out(td.outcome.region_bytes);
    } else {
      // Delta mode: the written data stays here; the driver's coherence map
      // knows this rank produced it and will route it on demand.
      td.outcome.has_data = false;
    }
    net_.bytes_hub.fetch_add(td.outcome.region_bytes.size(),
                             std::memory_order_relaxed);
    conn_->send(static_cast<uint8_t>(Msg::kTaskDone), encode_task_done(td));
  };
  config.on_task_fault = [this](const TaskFault& fault) {
    TaskDone td;
    td.seq = fault.seq;
    td.ctx = obs::TraceContext{fault.launch, fault.seq, rank_};
    td.outcome.kind = fault.kind;
    td.outcome.root = fault.root;
    td.outcome.attempts = fault.attempts;
    td.outcome.message = fault.message;
    conn_->send(static_cast<uint8_t>(Msg::kTaskDone), encode_task_done(td));
  };
  rt_ = std::make_unique<Runtime>(std::move(config), std::move(forest));
  for (const auto& [name, fn] : tasks) rt_->register_task(name, fn);
  clocks_ = std::make_unique<net::ClockTable>(&rt_->metrics());
  name_xfer_apply_ = rt_->profiler().intern("xfer-apply");
  name_done_apply_ = rt_->profiler().intern("done-apply");
  net::NetObs obs;
  obs.metrics = &rt_->metrics();
  obs.recorder =
      rt_->config().enable_flight_recorder ? &rt_->flight_recorder() : nullptr;
  obs.type_name = msg_name;
  conn_ = std::make_unique<net::Connection>(std::move(sock), "driver", obs);

  xfer_size_ = rt_->metrics().histogram("idxl_net_transfer_bytes",
                                        "Per-transfer payload bytes (sender side)");
  xfer_latency_ = rt_->metrics().histogram(
      "idxl_net_transfer_latency_ns",
      "Transfer send-to-apply latency, steady-clock ns (receiver side)");

  // Direct worker<->worker links. Each link's receive thread only completes
  // external nodes, so it cannot deadlock with the issuing (driver
  // connection) thread.
  for (auto& [peer_rank, psock] : dp_.peers) {
    auto pconn = std::make_unique<net::Connection>(
        std::move(psock), "peer-" + std::to_string(peer_rank), obs);
    net::Connection* raw = pconn.get();
    pconn->start_recv(
        [this, peer_rank = peer_rank, raw](net::Frame& frame) {
          if (frame.type == static_cast<uint8_t>(Msg::kRegionData))
            apply_region_data(decode_region_data(frame.payload));
          else if (frame.type == static_cast<uint8_t>(Msg::kPing))
            handle_ping(peer_rank, *raw, frame.payload);
          // anything else: liveness only.
        },
        [](const std::string&) {
          // A dead peer link only disables the direct path; send_xfer_data
          // falls back to the driver relay on the next send.
        });
    peers_.emplace_back(peer_rank, std::move(pconn));
  }
  dp_.peers.clear();
  if (dp_.fail_peer_links) {
    // Test hook: links exist, then die — every direct send now throws and
    // the relay fallback is genuinely exercised.
    for (auto& [peer_rank, c] : peers_) c->close();
  }

  // Distributed watchdog: a locally declared stall is pushed to the driver
  // (waits-for graph, recorder tail, metrics, and the seqs of outcomes this
  // rank is still owed), so the driver-side dump can merge all ranks and
  // name the one that is actually blocking.
  if (obs::Watchdog* wd = rt_->watchdog()) {
    wd->set_on_stall([this](const obs::StallReport& report) {
      Telemetry t = make_telemetry(TelemetryFlavor::kStallPush);
      t.completed = report.completed;
      t.pending = report.pending;
      t.window_ms = report.window_ms;
      t.blocked = report.blocked;
      try {
        conn_->send(static_cast<uint8_t>(Msg::kTelemetry), encode_telemetry(t));
      } catch (const std::exception&) {
        // Driver is gone; the local dump already went to stderr.
      }
    });
  }
}

void WorkerSession::handle_ping(uint32_t peer_rank, net::Connection& conn,
                                const std::vector<std::byte>& payload) {
  const std::vector<std::byte> reply = clocks_->on_probe(peer_rank, payload);
  if (reply.empty()) return;
  try {
    conn.send(static_cast<uint8_t>(Msg::kPing), reply);
  } catch (const std::exception&) {
    // Connection tearing down; the next heartbeat will probe again.
  }
}

void WorkerSession::record_apply_span(uint32_t name, uint64_t seq,
                                      const obs::TraceContext& ctx,
                                      uint64_t start_ns) {
  Profiler& prof = rt_->profiler();
  if (!prof.enabled() || !ctx.valid()) return;
  ProfileEvent ev;
  ev.name = name;
  ev.cat = ProfCategory::kExchange;
  ev.start_ns = start_ns;
  ev.dur_ns = prof.now_ns() - start_ns;
  ev.seq = seq;
  ev.launch = ctx.launch;
  ev.parent = ctx.span;
  ev.origin = ctx.origin;
  prof.record(ev);
}

Telemetry WorkerSession::make_telemetry(TelemetryFlavor flavor) {
  Telemetry t;
  t.rank = rank_;
  t.flavor = static_cast<uint8_t>(flavor);
  Profiler& prof = rt_->profiler();
  t.epoch_ns = prof.epoch_ns();
  if (prof.enabled()) {
    t.names = prof.names();
    t.spans = prof.events();
    t.samples = prof.task_samples();
  }
  t.recent = rt_->flight_recorder().tail(256);
  t.metrics = rt_->metrics().snapshot();
  for (const auto& [seq, label] : rt_->pending_externals())
    t.pending_externals.push_back(seq);
  return t;
}

net::Connection* WorkerSession::peer_conn(uint32_t rank) {
  for (auto& [peer_rank, c] : peers_)
    if (peer_rank == rank) return c.get();
  return nullptr;
}

void WorkerSession::send_xfer_data(uint64_t seq, uint64_t launch,
                                   TaskContext& ctx) {
  const XferArgs xa = ctx.arg<XferArgs>();
  RegionData rd;
  rd.seq = seq;
  rd.dest = xa.dest;
  rd.sent_ns = steady_now_ns();
  rd.ctx = obs::TraceContext{launch, seq, rank_};
  RegionPatch patch;
  patch.arg = 0;
  patch.field = xa.field;
  patch.rect = xa.rect;
  ctx.region(0).copy_out_rect(xa.field, xa.rect, patch.bytes);
  const uint64_t nbytes = patch.bytes.size();
  rd.patches.push_back(std::move(patch));
  const std::vector<std::byte> payload = encode_region_data(rd);

  // Fallback ladder: direct link if one is up, driver relay otherwise
  // (dest 0 is the driver itself — always the relay path).
  bool direct = false;
  if (net::Connection* peer = xa.dest == 0 ? nullptr : peer_conn(xa.dest)) {
    try {
      peer->send(static_cast<uint8_t>(Msg::kRegionData), payload);
      direct = true;
    } catch (const std::exception&) {
      // Peer link down; relay below.
    }
  }
  if (direct) {
    net_.bytes_p2p.fetch_add(nbytes, std::memory_order_relaxed);
  } else {
    conn_->send(static_cast<uint8_t>(Msg::kRegionData), payload);
    net_.bytes_relay.fetch_add(nbytes, std::memory_order_relaxed);
  }
  net_.transfers.fetch_add(1, std::memory_order_relaxed);
  xfer_size_.observe(nbytes);

  // Slim completion for every other rank. The driver excludes `data_dest`
  // from the relay: the destination's copy of this outcome is the
  // kRegionData payload above.
  TaskDone td;
  td.seq = seq;
  td.data_dest = xa.dest;
  td.ctx = obs::TraceContext{launch, seq, rank_};
  td.outcome.ret = ctx.return_value;
  td.outcome.has_data = false;
  conn_->send(static_cast<uint8_t>(Msg::kTaskDone), encode_task_done(td));
}

void WorkerSession::apply_region_data(RegionData rd) {
  IDXL_REQUIRE(rd.dest == rank_,
               "region-data payload delivered to the wrong rank");
  const uint64_t now = steady_now_ns();
  if (rd.sent_ns != 0 && now >= rd.sent_ns) xfer_latency_.observe(now - rd.sent_ns);
  const uint64_t span_start = rt_->profiler().now_ns();
  const uint64_t seq = rd.seq;
  const obs::TraceContext ctx = rd.ctx;
  RemoteOutcome o;
  o.has_data = false;
  o.patches = std::move(rd.patches);
  // May arrive before this rank issued the transfer task (direct links race
  // the driver's kRoute); complete_external buffers unknown seqs.
  rt_->complete_external(seq, std::move(o));
  // The receiving half of the transfer edge: parented on the producing
  // transfer span of the sending rank, so the merged trace can draw a flow
  // arrow from the source lane into this one.
  record_apply_span(name_xfer_apply_, seq, ctx, span_start);
}

void WorkerSession::run() {
  std::vector<net::Connection*> monitored{conn_.get()};
  for (auto& [peer_rank, c] : peers_)
    if (!dp_.fail_peer_links) monitored.push_back(c.get());
  monitor_ = std::make_unique<net::PeerMonitor>(
      std::move(monitored), static_cast<uint8_t>(Msg::kPing), heartbeat_ms_,
      window_ms_, &rt_->metrics(), nullptr, &net::ClockTable::make_ping);
  conn_->send(static_cast<uint8_t>(Msg::kHelloAck), {});
  const std::string err =
      conn_->recv_loop([this](net::Frame& frame) { on_frame(frame); });
  monitor_->stop();
  // Whether the driver said goodbye or just vanished, nothing further will
  // arrive: resolve any still-pending externals so teardown cannot hang.
  rt_->abandon_externals(err.empty() ? "driver connection closed" : err);
  rt_->wait_all();
  for (auto& [peer_rank, c] : peers_) c->close();
  conn_->close();
}

void WorkerSession::on_frame(net::Frame& frame) {
  switch (static_cast<Msg>(frame.type)) {
    case Msg::kLaunch:
      rt_->execute_index(deserialize_launcher(frame.payload));
      break;
    case Msg::kSingle:
      rt_->execute(deserialize_task_launcher(frame.payload));
      break;
    case Msg::kRoute: {
      // Replicated transfer issuance: every rank builds the identical
      // launcher, so seq numbers stay aligned; only `src` runs the body.
      const Route r = decode_route(frame.payload);
      IDXL_REQUIRE(r.launch == UINT64_MAX ||
                       r.launch == rt_->peek_next_launch_id(),
                   "transfer launch id diverged from the routing directive "
                   "(control replication bug)");
      rt_->execute(make_xfer_launcher(dp_.xfer_task, r, nranks_));
      break;
    }
    case Msg::kRegionData:
      // Driver-relayed delta payload for this rank.
      apply_region_data(decode_region_data(frame.payload));
      break;
    case Msg::kTaskDone: {
      TaskDone td = decode_task_done(frame.payload);
      const uint64_t span_start = rt_->profiler().now_ns();
      const uint64_t seq = td.seq;
      const obs::TraceContext ctx = td.ctx;
      rt_->complete_external(seq, std::move(td.outcome));
      record_apply_span(name_done_apply_, seq, ctx, span_start);
      break;
    }
    case Msg::kFence: {
      // Safe to fence on the receive thread: every outcome this rank's
      // externals need was forwarded before the fence on the same FIFO
      // connection (or arrives on an independent peer link), so wait_all()
      // cannot depend on an unread driver frame.
      const uint64_t id = decode_fence(frame.payload);
      rt_->wait_all();
      FenceAck ack;
      ack.fence = id;
      ack.report = rt_->fault_report();
      ack.net.bytes_hub = net_.bytes_hub.load(std::memory_order_relaxed);
      ack.net.bytes_relay = net_.bytes_relay.load(std::memory_order_relaxed);
      ack.net.bytes_p2p = net_.bytes_p2p.load(std::memory_order_relaxed);
      ack.net.transfers = net_.transfers.load(std::memory_order_relaxed);
      // Piggyback a metrics snapshot: fences are rare and snapshots small,
      // so every ack refreshes the driver's per-rank cluster view.
      ack.metrics = serialize_metrics_snapshot(rt_->metrics().snapshot());
      conn_->send(static_cast<uint8_t>(Msg::kFenceAck), encode_fence_ack(ack));
      break;
    }
    case Msg::kTelemetryReq:
      // Only sent at quiescent moments (post-fence), so reading the profiler
      // and recorder buffers from this — the issuing — thread is safe.
      conn_->send(static_cast<uint8_t>(Msg::kTelemetry),
                  encode_telemetry(make_telemetry(TelemetryFlavor::kShutdownPull)));
      break;
    case Msg::kShutdown:
      conn_->send(static_cast<uint8_t>(Msg::kBye), {});
      conn_->drain();
      // Returns recv_loop cleanly; the driver closes its end after kBye.
      conn_->shutdown_read();
      break;
    case Msg::kPing:
      handle_ping(/*peer_rank=*/0, *conn_, frame.payload);
      break;
    default:
      IDXL_REQUIRE(false, "worker received unexpected frame type " +
                              std::to_string(frame.type) + " (" +
                              msg_name(frame.type) + ")");
  }
}

void WorkerSession::serve(net::Socket sock) {
  // Bootstrap frames (kHello, kSetup) are read synchronously off the raw
  // socket; the Connection takes over afterwards.
  net::FrameReader reader;
  std::vector<std::byte> buf(64 * 1024);
  auto next_frame = [&](net::Frame& out) {
    while (!reader.poll(out)) {
      const std::size_t n = sock.read_some(buf.data(), buf.size());
      IDXL_REQUIRE(n > 0, "driver closed the connection during bootstrap");
      reader.feed(buf.data(), n);
    }
  };

  net::Frame frame;
  next_frame(frame);
  IDXL_REQUIRE(frame.type == static_cast<uint8_t>(Msg::kHello),
               "expected hello frame, got " + std::string(msg_name(frame.type)));
  const Hello hello = decode_hello(frame.payload);
  IDXL_REQUIRE(hello.rank > 0 && hello.rank < hello.nranks,
               "hello assigns an invalid worker rank");

  next_frame(frame);
  IDXL_REQUIRE(frame.type == static_cast<uint8_t>(Msg::kSetup),
               "expected setup frame, got " + std::string(msg_name(frame.type)));
  const Setup setup = decode_setup(frame.payload);
  IDXL_REQUIRE(reader.pending_bytes() == 0,
               "unexpected data after bootstrap frames");

  auto forest = std::make_shared<RegionForest>();
  forest->replay_setup(setup.journal);
  for (const Setup::Storage& st : setup.storage) {
    const RegionId rid{st.region};
    const RegionInfo& info = forest->region(rid);
    IDXL_REQUIRE(info.root == info.handle,
                 "setup storage names a non-root region");
    const std::size_t fsize = forest->field(info.fspace, st.field).size;
    const std::size_t expect =
        static_cast<std::size_t>(forest->storage_bounds(rid).volume()) *
        fsize;
    IDXL_REQUIRE(st.bytes.size() == expect,
                 "setup storage size does not match region geometry");
    std::memcpy(forest->field_data(rid, st.field), st.bytes.data(),
                st.bytes.size());
  }

  std::vector<std::pair<std::string, TaskFn>> tasks;
  tasks.reserve(setup.tasks.size());
  for (const std::string& name : setup.tasks) {
    const TaskFn* fn = find_named_task(name);
    IDXL_REQUIRE(fn != nullptr,
                 "task '" + name +
                     "' is not registered in this daemon "
                     "(IDXL_DIST_REGISTER_TASK it and relink idxl-noded)");
    tasks.emplace_back(name, *fn);
  }

  RuntimeConfig rc;
  rc.workers = hello.workers;
  rc.enable_profiling = hello.enable_profiling != 0;
  if (!hello.fault_plan.empty())
    rc.fault_plan =
        std::make_shared<const FaultPlan>(FaultPlan::parse(hello.fault_plan));

  // Exec daemons have no direct route to each other: delta payloads always
  // relay through the driver (hello.p2p is informative only today).
  WorkerDataPlane dp;
  dp.delta = hello.delta_transfers != 0;
  if (dp.delta) {
    for (std::size_t i = 0; i < setup.tasks.size(); ++i)
      if (setup.tasks[i] == "idxl_xfer") dp.xfer_task = static_cast<TaskFnId>(i);
    IDXL_REQUIRE(dp.xfer_task != UINT32_MAX,
                 "delta transfers enabled but task 'idxl_xfer' is missing "
                 "from the setup task list");
  }

  WorkerSession session(std::move(sock), hello.rank, hello.nranks,
                        std::move(rc), std::move(forest), tasks,
                        hello.heartbeat_period_ms, hello.peer_stall_window_ms,
                        std::move(dp));
  session.run();
}

}  // namespace idxl::dist
