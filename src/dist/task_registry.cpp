#include "dist/task_registry.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "dist/fill_task.hpp"
#include "support/error.hpp"

namespace idxl::dist {

namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, TaskFn> tasks;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

}  // namespace

void register_named_task(const std::string& name, TaskFn fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const bool inserted = r.tasks.emplace(name, std::move(fn)).second;
  IDXL_REQUIRE(inserted, "task name registered twice: " + name);
}

const TaskFn* find_named_task(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.tasks.find(name);
  return it == r.tasks.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, TaskFn>> all_named_tasks() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, TaskFn>> out(r.tasks.begin(), r.tasks.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace detail {
TaskRegistration::TaskRegistration(const char* name, TaskFn fn) {
  register_named_task(name, std::move(fn));
}
}  // namespace detail

namespace {

void dist_fill_body(TaskContext& ctx) {
  const auto& args = ctx.arg<DistFillArgs>();
  ctx.region(0).fill_bytes(args.field, args.pattern, args.size);
}

IDXL_DIST_REGISTER_TASK(idxl_dist_fill, dist_fill_body);

// The delta-transfer task is deliberately a no-op: it exists to occupy a
// replicated slot in every rank's task graph (ordered after the producer
// and before the consumer by its region argument). The data movement
// happens in the distributed runtime's on_task_success hook on the source
// rank, which extracts the routed rect and ships it as kRegionData.
void dist_xfer_body(TaskContext&) {}

IDXL_DIST_REGISTER_TASK(idxl_xfer, dist_xfer_body);

}  // namespace

}  // namespace idxl::dist
