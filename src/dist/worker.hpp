#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/clock.hpp"
#include "net/connection.hpp"
#include "dist/protocol.hpp"
#include "runtime/runtime.hpp"

namespace idxl::dist {

/// Everything a worker needs to participate in the delta data plane. Fork
/// mode fills `peers` with pre-forked socketpair ends; exec mode has no
/// route between daemons and leaves it empty (payloads relay via the
/// driver).
struct WorkerDataPlane {
  bool delta = false;            ///< slim outcomes + kRoute/kRegionData
  bool p2p = false;              ///< direct worker links were provisioned
  bool fail_peer_links = false;  ///< test hook: sever links before first use
  TaskFnId xfer_task = UINT32_MAX;
  /// (peer worker rank, socket) — one end of each of this worker's links.
  std::vector<std::pair<uint32_t, net::Socket>> peers;
};

/// One worker process's half of the protocol: a local Runtime issued from
/// the driver's replicated launch stream. The receive loop runs on the
/// calling thread and doubles as the issuing thread, so issuance stays
/// single-threaded by construction; owned-task outcomes flow back through
/// the connection's async send queue.
class WorkerSession {
 public:
  /// Fork mode: forest and task bodies were inherited from the parent.
  /// Exec mode reaches this too, after serve() rebuilt them from Setup.
  WorkerSession(net::Socket sock, uint32_t rank, uint32_t nranks,
                RuntimeConfig config, std::shared_ptr<RegionForest> forest,
                const std::vector<std::pair<std::string, TaskFn>>& tasks,
                uint32_t heartbeat_period_ms, uint32_t stall_window_ms,
                WorkerDataPlane data_plane = {});

  /// Exec mode (idxl-noded): read Hello + Setup off the socket, rebuild the
  /// forest from the journal, resolve task names against the named-task
  /// registry, then run. Returns when the driver sends kShutdown.
  static void serve(net::Socket sock);

  /// Process frames until kShutdown (or the driver vanishes).
  void run();

 private:
  void on_frame(net::Frame& frame);
  /// on_task_success arm for the transfer task: extract the routed rect,
  /// push it to the destination (direct link first, driver relay as the
  /// fallback), then announce a slim outcome upward.
  void send_xfer_data(uint64_t seq, uint64_t launch, TaskContext& ctx);
  /// A kRegionData payload for this rank (direct or driver-relayed):
  /// complete the external transfer node with its patches.
  void apply_region_data(RegionData rd);
  net::Connection* peer_conn(uint32_t rank);
  /// Answer a clock probe riding a kPing frame from `peer_rank`; the reply
  /// (a pong, when the probe was a ping) goes back on `conn`.
  void handle_ping(uint32_t peer_rank, net::Connection& conn,
                   const std::vector<std::byte>& payload);
  /// Record the receiving half of a remote span pair: a kExchange span
  /// whose parent is `ctx` on the origin rank. No-op unless profiling.
  void record_apply_span(uint32_t name, uint64_t seq,
                         const obs::TraceContext& ctx, uint64_t start_ns);
  /// This rank's observability state for the driver (kTelemetry payload).
  Telemetry make_telemetry(TelemetryFlavor flavor);

  uint32_t rank_;
  uint32_t nranks_;
  WorkerDataPlane dp_;  ///< peers moved out into peers_ at construction
  std::unique_ptr<Runtime> rt_;
  std::unique_ptr<net::Connection> conn_;
  /// Direct links, (peer worker rank, connection); frames arrive on each
  /// link's own receive thread, feeding complete_external only — never
  /// issuance, which stays on the driver-connection thread.
  std::vector<std::pair<uint32_t, std::unique_ptr<net::Connection>>> peers_;
  std::unique_ptr<net::PeerMonitor> monitor_;
  uint32_t heartbeat_ms_;
  uint32_t window_ms_;

  /// Data-plane accounting, reported cumulatively on every fence ack.
  /// Atomics: success hooks fire on pool threads.
  struct NetCells {
    std::atomic<uint64_t> bytes_hub{0};
    std::atomic<uint64_t> bytes_relay{0};
    std::atomic<uint64_t> bytes_p2p{0};
    std::atomic<uint64_t> transfers{0};
  } net_;
  obs::Histogram xfer_size_, xfer_latency_;

  /// Per-peer clock-offset estimates from probes riding the heartbeats.
  std::unique_ptr<net::ClockTable> clocks_;
  /// Interned profiler names for the remote-parent apply spans.
  uint32_t name_xfer_apply_ = 0;
  uint32_t name_done_apply_ = 0;
};

}  // namespace idxl::dist
