#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/connection.hpp"
#include "dist/protocol.hpp"
#include "runtime/runtime.hpp"

namespace idxl::dist {

/// One worker process's half of the protocol: a local Runtime issued from
/// the driver's replicated launch stream. The receive loop runs on the
/// calling thread and doubles as the issuing thread, so issuance stays
/// single-threaded by construction; owned-task outcomes flow back through
/// the connection's async send queue.
class WorkerSession {
 public:
  /// Fork mode: forest and task bodies were inherited from the parent.
  /// Exec mode reaches this too, after serve() rebuilt them from Setup.
  WorkerSession(net::Socket sock, uint32_t rank, uint32_t nranks,
                RuntimeConfig config, std::shared_ptr<RegionForest> forest,
                const std::vector<std::pair<std::string, TaskFn>>& tasks,
                uint32_t heartbeat_period_ms, uint32_t stall_window_ms);

  /// Exec mode (idxl-noded): read Hello + Setup off the socket, rebuild the
  /// forest from the journal, resolve task names against the named-task
  /// registry, then run. Returns when the driver sends kShutdown.
  static void serve(net::Socket sock);

  /// Process frames until kShutdown (or the driver vanishes).
  void run();

 private:
  void on_frame(net::Frame& frame);

  uint32_t rank_;
  std::unique_ptr<Runtime> rt_;
  std::unique_ptr<net::Connection> conn_;
  std::unique_ptr<net::PeerMonitor> monitor_;
  uint32_t heartbeat_ms_;
  uint32_t window_ms_;
};

}  // namespace idxl::dist
