#include "dist/dist_runtime.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "dist/fill_task.hpp"
#include "dist/task_registry.hpp"
#include "dist/worker.hpp"
#include "support/error.hpp"

namespace idxl::dist {

namespace {

bool reports_equal(const FaultReport& a, const FaultReport& b) {
  return a.failures == b.failures && a.poisoned == b.poisoned;
}

}  // namespace

DistributedRuntime::DistributedRuntime(DistConfig config)
    : config_(std::move(config)), forest_(std::make_shared<RegionForest>()) {
  IDXL_REQUIRE(config_.ranks >= 1, "DistConfig::ranks must be >= 1");
  IDXL_REQUIRE(config_.workers.empty() ||
                   config_.workers.size() == config_.ranks - 1,
               "DistConfig::workers must list exactly ranks - 1 endpoints");
  // Pre-register the fill task: Runtime's own lazy "idxl_fill" registration
  // would assign ids in first-use order, which cannot be replicated.
  const TaskFn* fill = find_named_task("idxl_dist_fill");
  tasks_.emplace_back("idxl_dist_fill", *fill);
  fill_task_ = 0;
}

DistributedRuntime::~DistributedRuntime() {
  try {
    shutdown();
  } catch (const std::exception&) {
    // Destructor: peers may already be gone; nothing useful to do.
  }
}

TaskFnId DistributedRuntime::register_task(std::string name, TaskFn fn) {
  IDXL_REQUIRE(!started_,
               "register_task after the first launch: task ids are "
               "positional and must be fixed before workers start");
  tasks_.emplace_back(std::move(name), std::move(fn));
  return static_cast<TaskFnId>(tasks_.size() - 1);
}

std::string DistributedRuntime::fault_plan_spec() const {
  if (config_.runtime.fault_plan != nullptr)
    return config_.runtime.fault_plan->to_string();
  // Exec-mode daemons do not inherit this process's environment; forward
  // the env plan explicitly so IDXL_FAULT_PLAN works across processes.
  if (auto env = FaultPlan::from_env(); env != nullptr) return env->to_string();
  return {};
}

std::vector<std::byte> DistributedRuntime::setup_bytes() const {
  Setup su;
  su.journal = forest_->setup_journal();
  for (const auto& [name, fn] : tasks_) su.tasks.push_back(name);
  for (uint32_t i = 0; i < forest_->region_count(); ++i) {
    const RegionId r{i};
    const RegionInfo& info = forest_->region(r);
    if (info.root != info.handle) continue;
    const std::size_t vol =
        static_cast<std::size_t>(forest_->storage_bounds(r).volume());
    for (const FieldInfo& fi : forest_->fields(info.fspace)) {
      Setup::Storage st;
      st.region = i;
      st.field = fi.id;
      const std::byte* data = forest_->field_data(r, fi.id);
      st.bytes.assign(data, data + vol * fi.size);
      su.storage.push_back(std::move(st));
    }
  }
  return encode_setup(su);
}

std::vector<net::Socket> DistributedRuntime::start_fork_workers() {
  const uint32_t nranks = config_.ranks;
  const std::size_t nworkers = nranks - 1;
  // All pairs exist before the first fork so each child can drop every fd
  // that is not its own. Forking here is safe precisely because no Runtime,
  // Connection or monitor thread exists yet.
  std::vector<std::pair<net::Socket, net::Socket>> pairs;
  pairs.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i) pairs.push_back(net::Socket::pair());
  for (std::size_t i = 0; i < nworkers; ++i) {
    const pid_t pid = ::fork();
    IDXL_REQUIRE(pid >= 0, "fork failed");
    if (pid == 0) {
      int status = 0;
      {
        net::Socket mine = std::move(pairs[i].second);
        pairs.clear();  // closes every other end, parent sides included
        try {
          WorkerSession session(std::move(mine), static_cast<uint32_t>(i + 1),
                                nranks, config_.runtime, forest_, tasks_,
                                config_.heartbeat_period_ms,
                                config_.peer_stall_window_ms);
          session.run();
        } catch (const std::exception&) {
          status = 1;
        }
      }
      ::_exit(status);
    }
    children_.push_back(pid);
    pairs[i].second = net::Socket();  // parent drops the child's end
  }
  std::vector<net::Socket> driver_ends;
  driver_ends.reserve(nworkers);
  for (auto& p : pairs) driver_ends.push_back(std::move(p.first));
  return driver_ends;
}

std::vector<net::Socket> DistributedRuntime::start_exec_workers() {
  std::vector<net::Socket> socks;
  socks.reserve(config_.workers.size());
  for (const std::string& endpoint : config_.workers) {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      socks.push_back(net::Socket::connect_unix(endpoint));
    } else {
      const std::string host = endpoint.substr(0, colon);
      const int port = std::stoi(endpoint.substr(colon + 1));
      socks.push_back(net::Socket::connect_tcp(host, static_cast<uint16_t>(port)));
    }
  }
  return socks;
}

void DistributedRuntime::ensure_started() {
  if (started_) return;
  started_ = true;
  const std::size_t nworkers = config_.ranks - 1;
  peer_errors_.assign(nworkers, "");
  worker_closed_.assign(nworkers, false);

  const bool exec_mode = !config_.workers.empty();
  std::vector<net::Socket> socks =
      nworkers == 0 ? std::vector<net::Socket>{}
      : exec_mode   ? start_exec_workers()
                    : start_fork_workers();

  // The driver is rank 0 of the replicated run: same hooks as any worker,
  // with outcomes broadcast instead of sent up.
  RuntimeConfig rc = config_.runtime;
  const uint32_t nranks = config_.ranks;
  rc.point_owned = [nranks](uint64_t, const Point& p, const Domain& domain) {
    return owner_of(domain, p, nranks) == 0;
  };
  rc.on_task_success = [this](uint64_t seq, uint64_t, const Point&,
                              TaskContext& ctx) {
    TaskDone td;
    td.seq = seq;
    td.outcome.ret = ctx.return_value;
    for (PhysicalRegion& pr : ctx.regions)
      if (privilege_writes(pr.privilege())) pr.copy_out(td.outcome.region_bytes);
    send_task_done(td);
  };
  rc.on_task_fault = [this](const TaskFault& fault) {
    TaskDone td;
    td.seq = fault.seq;
    td.outcome.kind = fault.kind;
    td.outcome.root = fault.root;
    td.outcome.attempts = fault.attempts;
    td.outcome.message = fault.message;
    send_task_done(td);
  };
  local_ = std::make_unique<Runtime>(std::move(rc), forest_);
  for (const auto& [name, fn] : tasks_) local_->register_task(name, fn);
  if (nworkers == 0) return;

  net::NetObs obs;
  obs.metrics = &local_->metrics();
  obs.recorder = local_->config().enable_flight_recorder
                     ? &local_->flight_recorder()
                     : nullptr;
  obs.type_name = msg_name;
  conns_.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i)
    conns_.push_back(std::make_unique<net::Connection>(
        std::move(socks[i]), "rank-" + std::to_string(i + 1), obs));

  if (exec_mode) {
    const std::vector<std::byte> setup = setup_bytes();
    for (std::size_t i = 0; i < nworkers; ++i) {
      Hello h;
      h.rank = static_cast<uint32_t>(i + 1);
      h.nranks = nranks;
      h.workers = config_.runtime.workers;
      h.heartbeat_period_ms = config_.heartbeat_period_ms;
      h.peer_stall_window_ms = config_.peer_stall_window_ms;
      h.fault_plan = fault_plan_spec();
      conns_[i]->send(static_cast<uint8_t>(Msg::kHello), encode_hello(h));
      conns_[i]->send(static_cast<uint8_t>(Msg::kSetup), setup);
    }
  }

  for (std::size_t i = 0; i < nworkers; ++i)
    conns_[i]->start_recv(
        [this, i](net::Frame& frame) { on_worker_frame(i, frame); },
        [this, i](const std::string& error) { on_worker_close(i, error); });

  // Handshake: every worker acks (or is declared lost) before first launch.
  {
    std::unique_lock<std::mutex> lk(fence_mu_);
    fence_cv_.wait(lk, [&] {
      return hello_acks_ + closed_count_locked() >= nworkers;
    });
    for (std::size_t i = 0; i < nworkers; ++i)
      IDXL_REQUIRE(!worker_closed_[i], "worker rank " + std::to_string(i + 1) +
                                           " lost during handshake: " +
                                           peer_errors_[i]);
  }

  std::vector<net::Connection*> peers;
  for (auto& c : conns_) peers.push_back(c.get());
  monitor_ = std::make_unique<net::PeerMonitor>(
      std::move(peers), static_cast<uint8_t>(Msg::kPing),
      config_.heartbeat_period_ms, config_.peer_stall_window_ms,
      &local_->metrics(), nullptr);
}

std::size_t DistributedRuntime::closed_count_locked() const {
  std::size_t n = 0;
  for (const bool c : worker_closed_)
    if (c) ++n;
  return n;
}

void DistributedRuntime::broadcast(Msg type, const std::vector<std::byte>& payload) {
  for (auto& c : conns_) {
    try {
      c->send(static_cast<uint8_t>(type), payload);
    } catch (const std::exception&) {
      // Dead peer; fence() reports the loss.
    }
  }
}

void DistributedRuntime::send_task_done(const TaskDone& done) {
  broadcast(Msg::kTaskDone, encode_task_done(done));
}

void DistributedRuntime::on_worker_frame(std::size_t worker, net::Frame& frame) {
  switch (static_cast<Msg>(frame.type)) {
    case Msg::kHelloAck: {
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        ++hello_acks_;
      }
      fence_cv_.notify_all();
      break;
    }
    case Msg::kTaskDone: {
      // Star topology: relay the owner's outcome to the other workers
      // *before* completing locally, so on every per-connection FIFO all
      // outcomes a fence depends on precede the fence frame itself.
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (i == worker) continue;
        try {
          conns_[i]->send(frame.type, frame.payload);
        } catch (const std::exception&) {
        }
      }
      TaskDone td = decode_task_done(frame.payload);
      local_->complete_external(td.seq, std::move(td.outcome));
      break;
    }
    case Msg::kFenceAck: {
      FenceAck ack = decode_fence_ack(frame.payload);
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        fence_acks_[ack.fence].emplace(worker, std::move(ack.report));
      }
      fence_cv_.notify_all();
      break;
    }
    case Msg::kBye:
      break;  // the recv loop ends right after; on_worker_close records it
    case Msg::kPing:
      break;
    default:
      // Throwing here lands in recv_loop's catch: the connection is
      // reported closed with this message.
      IDXL_REQUIRE(false, "driver received unexpected frame type " +
                              std::to_string(frame.type) + " (" +
                              msg_name(frame.type) + ")");
  }
}

void DistributedRuntime::on_worker_close(std::size_t worker,
                                         const std::string& error) {
  bool teardown;
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    worker_closed_[worker] = true;
    if (!error.empty() && peer_errors_[worker].empty())
      peer_errors_[worker] = error;
    teardown = tearing_down_;
  }
  if (!teardown) {
    // Outcomes owned by this worker will never arrive; resolve its
    // externals as cancelled so wait_all()/teardown cannot hang. (Externals
    // owned by still-live workers are cancelled too — a lost rank ends the
    // run, matching the fence error below.)
    local_->abandon_externals("worker rank " + std::to_string(worker + 1) +
                              " lost: " +
                              (error.empty() ? "connection closed" : error));
  }
  fence_cv_.notify_all();
}

bool DistributedRuntime::fence(bool nothrow) {
  local_->wait_all();
  const std::size_t nworkers = conns_.size();
  if (nworkers == 0) return true;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    id = ++next_fence_;
  }
  broadcast(Msg::kFence, encode_fence(id));
  std::map<std::size_t, FaultReport> acks;
  std::string problem;
  {
    std::unique_lock<std::mutex> lk(fence_mu_);
    fence_cv_.wait(lk, [&] {
      const auto it = fence_acks_.find(id);
      for (std::size_t i = 0; i < nworkers; ++i) {
        const bool acked = it != fence_acks_.end() && it->second.count(i) != 0;
        if (!acked && !worker_closed_[i]) return false;
      }
      return true;
    });
    acks = std::move(fence_acks_[id]);
    fence_acks_.erase(id);
    for (std::size_t i = 0; i < nworkers; ++i) {
      if (acks.count(i) != 0) continue;
      problem = "worker rank " + std::to_string(i + 1) +
                " lost before fence " + std::to_string(id) + ": " +
                (peer_errors_[i].empty() ? "connection closed"
                                         : peer_errors_[i]);
      break;
    }
  }
  if (problem.empty() && config_.verify_reports) {
    const FaultReport mine = local_->fault_report();
    for (const auto& [worker, report] : acks) {
      if (reports_equal(mine, report)) continue;
      problem = "fault-report divergence at fence " + std::to_string(id) +
                ": rank " + std::to_string(worker + 1) + " disagrees with "
                "rank 0 (control replication bug — reports must be "
                "identical on every rank)";
      break;
    }
  }
  if (problem.empty()) return true;
  if (nothrow) return false;
  throw RuntimeError(problem);
}

LaunchResult DistributedRuntime::execute(const TaskLauncher& launcher) {
  ensure_started();
  if (!conns_.empty()) {
    // Serialize first: an unserializable launcher must throw before any
    // rank sees the frame, or the replicated streams diverge.
    broadcast(Msg::kSingle, serialize_task_launcher(launcher));
  }
  return local_->execute(launcher);
}

LaunchResult DistributedRuntime::execute_index(const IndexLauncher& launcher) {
  ensure_started();
  if (conns_.empty()) return local_->execute_index(launcher);
  // Validate serializability before any rank (rank 0 included) observes the
  // launch: a throw here must leave every replicated stream untouched.
  (void)serialize_launcher(launcher);
  // Issue on the driver first — rank 0's analysis populates the certificate
  // cache with this launch's pair verdicts — then ship the cache as a bundle
  // on the descriptor, so import-only workers validate the certificates
  // instead of re-running the analysis. Issue order is preserved: frames go
  // out on this thread in program order, and issuance is asynchronous, so
  // no task outcome can precede its launch frame.
  LaunchResult result = local_->execute_index(launcher);
  IndexLauncher annotated = launcher;
  annotated.analysis_bundle = local_->export_interference_bundle();
  broadcast(Msg::kLaunch, serialize_launcher(annotated));
  return result;
}

void DistributedRuntime::wait_all() {
  if (!started_) return;
  fence(/*nothrow=*/false);
}

FaultReport DistributedRuntime::fault_report() const {
  return local_ != nullptr ? local_->fault_report() : FaultReport{};
}

RuntimeStats DistributedRuntime::stats() const {
  return local_ != nullptr ? local_->stats() : RuntimeStats{};
}

obs::MetricsRegistry& DistributedRuntime::metrics() {
  ensure_started();
  return local_->metrics();
}

void DistributedRuntime::fill_bytes_region(RegionId r, FieldId f,
                                           const void* pattern,
                                           std::size_t size) {
  DistFillArgs args{};
  IDXL_REQUIRE(size > 0 && size <= sizeof(args.pattern),
               "fill pattern too large");
  IDXL_REQUIRE(forest_->field(forest_->region(r).fspace, f).size == size,
               "fill value type does not match the field size");
  args.field = f;
  args.size = size;
  std::memcpy(args.pattern, pattern, size);
  TaskLauncher launcher;
  launcher.task = fill_task_;
  launcher.scalar_args = ArgBuffer::of(args);
  launcher.args = {{r, {f}, Privilege::kWrite, ReductionOp::kNone}};
  execute(launcher);
}

void DistributedRuntime::shutdown() {
  if (!started_ || local_ == nullptr) {
    local_.reset();
    return;
  }
  if (!conns_.empty()) {
    fence(/*nothrow=*/true);
    if (monitor_ != nullptr) monitor_->stop();
    {
      std::lock_guard<std::mutex> lock(fence_mu_);
      tearing_down_ = true;
    }
    broadcast(Msg::kShutdown, {});
    {
      std::unique_lock<std::mutex> lk(fence_mu_);
      fence_cv_.wait_for(lk, std::chrono::seconds(30), [&] {
        return closed_count_locked() >= conns_.size();
      });
    }
    for (auto& c : conns_) c->close();
    conns_.clear();
  }
  for (const pid_t pid : children_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  children_.clear();
  local_.reset();
  started_ = false;
}

}  // namespace idxl::dist
