#include "dist/dist_runtime.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "dist/fill_task.hpp"
#include "dist/task_registry.hpp"
#include "dist/worker.hpp"
#include "obs/aggregate.hpp"
#include "support/error.hpp"

namespace idxl::dist {

namespace {

bool reports_equal(const FaultReport& a, const FaultReport& b) {
  return a.failures == b.failures && a.poisoned == b.poisoned;
}

}  // namespace

DistributedRuntime::DistributedRuntime(DistConfig config)
    : config_(std::move(config)), forest_(std::make_shared<RegionForest>()) {
  IDXL_REQUIRE(config_.ranks >= 1, "DistConfig::ranks must be >= 1");
  IDXL_REQUIRE(config_.workers.empty() ||
                   config_.workers.size() == config_.ranks - 1,
               "DistConfig::workers must list exactly ranks - 1 endpoints");
  // Pre-register the runtime helper tasks: Runtime's own lazy registration
  // would assign ids in first-use order, which cannot be replicated. Ids are
  // positional — fill is 0, the delta transfer task is 1 — on every rank.
  const TaskFn* fill = find_named_task("idxl_dist_fill");
  tasks_.emplace_back("idxl_dist_fill", *fill);
  fill_task_ = 0;
  const TaskFn* xfer = find_named_task("idxl_xfer");
  tasks_.emplace_back("idxl_xfer", *xfer);
  xfer_task_ = 1;
}

DistributedRuntime::~DistributedRuntime() {
  try {
    shutdown();
  } catch (const std::exception&) {
    // Destructor: peers may already be gone; nothing useful to do.
  }
}

TaskFnId DistributedRuntime::register_task(std::string name, TaskFn fn) {
  IDXL_REQUIRE(!started_,
               "register_task after the first launch: task ids are "
               "positional and must be fixed before workers start");
  tasks_.emplace_back(std::move(name), std::move(fn));
  return static_cast<TaskFnId>(tasks_.size() - 1);
}

std::string DistributedRuntime::fault_plan_spec() const {
  if (config_.runtime.fault_plan != nullptr)
    return config_.runtime.fault_plan->to_string();
  // Exec-mode daemons do not inherit this process's environment; forward
  // the env plan explicitly so IDXL_FAULT_PLAN works across processes.
  if (auto env = FaultPlan::from_env(); env != nullptr) return env->to_string();
  return {};
}

std::vector<std::byte> DistributedRuntime::setup_bytes() const {
  Setup su;
  su.journal = forest_->setup_journal();
  for (const auto& [name, fn] : tasks_) su.tasks.push_back(name);
  for (uint32_t i = 0; i < forest_->region_count(); ++i) {
    const RegionId r{i};
    const RegionInfo& info = forest_->region(r);
    if (info.root != info.handle) continue;
    const std::size_t vol =
        static_cast<std::size_t>(forest_->storage_bounds(r).volume());
    for (const FieldInfo& fi : forest_->fields(info.fspace)) {
      Setup::Storage st;
      st.region = i;
      st.field = fi.id;
      const std::byte* data = forest_->field_data(r, fi.id);
      st.bytes.assign(data, data + vol * fi.size);
      su.storage.push_back(std::move(st));
    }
  }
  return encode_setup(su);
}

std::vector<net::Socket> DistributedRuntime::start_fork_workers() {
  const uint32_t nranks = config_.ranks;
  const std::size_t nworkers = nranks - 1;
  // All pairs exist before the first fork so each child can drop every fd
  // that is not its own. Forking here is safe precisely because no Runtime,
  // Connection or monitor thread exists yet.
  std::vector<std::pair<net::Socket, net::Socket>> pairs;
  pairs.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i) pairs.push_back(net::Socket::pair());
  // Direct worker<->worker links: one socketpair per worker pair, also all
  // created up front. Rank a keeps the first end, rank b the second; every
  // child drops the rows that are not its own, and the driver drops them
  // all.
  const bool p2p = delta_ && config_.p2p && nworkers >= 2;
  struct PeerPair {
    uint32_t a, b;  // worker ranks, a < b
    std::pair<net::Socket, net::Socket> socks;
  };
  std::vector<PeerPair> peer_pairs;
  if (p2p)
    for (uint32_t a = 1; a <= nworkers; ++a)
      for (uint32_t b = a + 1; b <= nworkers; ++b)
        peer_pairs.push_back(PeerPair{a, b, net::Socket::pair()});
  for (std::size_t i = 0; i < nworkers; ++i) {
    const pid_t pid = ::fork();
    IDXL_REQUIRE(pid >= 0, "fork failed");
    if (pid == 0) {
      int status = 0;
      {
        const uint32_t rank = static_cast<uint32_t>(i + 1);
        net::Socket mine = std::move(pairs[i].second);
        pairs.clear();  // closes every other end, parent sides included
        WorkerDataPlane dp;
        dp.delta = delta_;
        dp.p2p = p2p;
        dp.fail_peer_links = config_.fail_peer_links;
        dp.xfer_task = xfer_task_;
        for (PeerPair& pp : peer_pairs) {
          if (pp.a == rank)
            dp.peers.emplace_back(pp.b, std::move(pp.socks.first));
          else if (pp.b == rank)
            dp.peers.emplace_back(pp.a, std::move(pp.socks.second));
        }
        peer_pairs.clear();  // closes every link end that is not this child's
        try {
          WorkerSession session(std::move(mine), rank, nranks, config_.runtime,
                                forest_, tasks_, config_.heartbeat_period_ms,
                                config_.peer_stall_window_ms, std::move(dp));
          session.run();
        } catch (const std::exception&) {
          status = 1;
        }
      }
      ::_exit(status);
    }
    children_.push_back(pid);
    pairs[i].second = net::Socket();  // parent drops the child's end
  }
  peer_pairs.clear();  // the driver holds no peer-link ends
  std::vector<net::Socket> driver_ends;
  driver_ends.reserve(nworkers);
  for (auto& p : pairs) driver_ends.push_back(std::move(p.first));
  return driver_ends;
}

std::vector<net::Socket> DistributedRuntime::start_exec_workers() {
  std::vector<net::Socket> socks;
  socks.reserve(config_.workers.size());
  for (const std::string& endpoint : config_.workers) {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      socks.push_back(net::Socket::connect_unix(endpoint));
    } else {
      const std::string host = endpoint.substr(0, colon);
      const int port = std::stoi(endpoint.substr(colon + 1));
      socks.push_back(net::Socket::connect_tcp(host, static_cast<uint16_t>(port)));
    }
  }
  return socks;
}

void DistributedRuntime::ensure_started() {
  if (started_) return;
  started_ = true;
  const std::size_t nworkers = config_.ranks - 1;
  peer_errors_.assign(nworkers, "");
  worker_closed_.assign(nworkers, false);
  worker_net_.assign(nworkers, DataPlaneCounters{});
  worker_metrics_.assign(nworkers, obs::MetricsSnapshot{});

  // Cluster tracing: IDXL_TRACE overrides DistConfig::trace_path, and a
  // requested trace forces profiling on everywhere. This must run before
  // the fork below — fork-mode workers inherit config_.runtime by memory.
  trace_path_ = config_.trace_path;
  if (const char* v = std::getenv("IDXL_TRACE"); v != nullptr && v[0] != '\0') {
    if (v[0] == '0' && v[1] == '\0') {
      trace_path_.clear();
    } else {
      trace_path_ = (v[0] == '1' && v[1] == '\0') ? "idxl_trace.json" : v;
    }
  }
  if (!trace_path_.empty()) config_.runtime.enable_profiling = true;

  // Effective data-plane mode: delta needs at least one worker to talk to
  // and at most 64 ranks (the coherence map's currency bitmask). The
  // star-hub baseline has no such limits.
  delta_ = config_.delta_transfers && nworkers > 0 && config_.ranks <= 64;
  if (delta_) vmap_ = std::make_unique<VersionMap>(config_.ranks);

  const bool exec_mode = !config_.workers.empty();
  std::vector<net::Socket> socks =
      nworkers == 0 ? std::vector<net::Socket>{}
      : exec_mode   ? start_exec_workers()
                    : start_fork_workers();

  // The driver is rank 0 of the replicated run: same hooks as any worker,
  // with outcomes broadcast instead of sent up.
  RuntimeConfig rc = config_.runtime;
  const uint32_t nranks = config_.ranks;
  rc.point_owned = [nranks](uint64_t, const Point& p, const Domain& domain) {
    return owner_of(domain, p, nranks) == 0;
  };
  rc.on_task_success = [this](uint64_t seq, uint64_t launch, const Point&,
                              TaskContext& ctx) {
    if (delta_ && ctx.fn == xfer_task_) {
      send_xfer_data(seq, launch, ctx);
      return;
    }
    TaskDone td;
    td.seq = seq;
    td.ctx = obs::TraceContext{launch, seq, 0};
    td.outcome.ret = ctx.return_value;
    if (!delta_ || needs_full_outcome(ctx)) {
      for (PhysicalRegion& pr : ctx.regions)
        if (privilege_writes(pr.privilege())) pr.copy_out(td.outcome.region_bytes);
    } else {
      // Delta mode: the written data stays on rank 0; the coherence map
      // routes it on demand.
      td.outcome.has_data = false;
    }
    if (!td.outcome.region_bytes.empty())
      net_.bytes_hub.fetch_add(td.outcome.region_bytes.size() * conns_.size(),
                               std::memory_order_relaxed);
    send_task_done(td);
  };
  rc.on_task_fault = [this](const TaskFault& fault) {
    TaskDone td;
    td.seq = fault.seq;
    td.ctx = obs::TraceContext{fault.launch, fault.seq, 0};
    td.outcome.kind = fault.kind;
    td.outcome.root = fault.root;
    td.outcome.attempts = fault.attempts;
    td.outcome.message = fault.message;
    send_task_done(td);
  };
  local_ = std::make_unique<Runtime>(std::move(rc), forest_);
  for (const auto& [name, fn] : tasks_) local_->register_task(name, fn);
  clocks_ = std::make_unique<net::ClockTable>(&local_->metrics());
  name_xfer_apply_ = local_->profiler().intern("xfer-apply");
  name_done_apply_ = local_->profiler().intern("done-apply");
  // Distributed watchdog: when the driver's own watchdog fires, follow the
  // local dump with the merged cross-rank view (worker watchdogs push their
  // stall state as kTelemetry; see distributed_stall_dump).
  if (obs::Watchdog* wd = local_->watchdog())
    wd->set_on_stall([this](const obs::StallReport&) {
      std::fputs(distributed_stall_dump().c_str(), stderr);
    });

  obs::MetricsRegistry& mreg = local_->metrics();
  m_bytes_hub_ = mreg.counter("idxl_net_data_bytes_total",
                              "Data-plane payload bytes moved, by kind and route",
                              {{"kind", "full"}, {"route", "hub"}});
  m_bytes_relay_ = mreg.counter("idxl_net_data_bytes_total",
                                "Data-plane payload bytes moved, by kind and route",
                                {{"kind", "delta"}, {"route", "relay"}});
  m_bytes_p2p_ = mreg.counter("idxl_net_data_bytes_total",
                              "Data-plane payload bytes moved, by kind and route",
                              {{"kind", "delta"}, {"route", "p2p"}});
  m_transfers_ = mreg.counter("idxl_net_transfers_total",
                              "kRegionData transfer messages sent, run-wide");
  m_xfer_size_ = mreg.histogram("idxl_net_transfer_bytes",
                                "Per-transfer payload bytes (sender side)");
  m_xfer_latency_ = mreg.histogram(
      "idxl_net_transfer_latency_ns",
      "Transfer send-to-apply latency, steady-clock ns (receiver side)");

  if (nworkers == 0) return;

  net::NetObs obs;
  obs.metrics = &local_->metrics();
  obs.recorder = local_->config().enable_flight_recorder
                     ? &local_->flight_recorder()
                     : nullptr;
  obs.type_name = msg_name;
  conns_.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i)
    conns_.push_back(std::make_unique<net::Connection>(
        std::move(socks[i]), "rank-" + std::to_string(i + 1), obs));

  if (exec_mode) {
    const std::vector<std::byte> setup = setup_bytes();
    for (std::size_t i = 0; i < nworkers; ++i) {
      Hello h;
      h.rank = static_cast<uint32_t>(i + 1);
      h.nranks = nranks;
      h.workers = config_.runtime.workers;
      h.heartbeat_period_ms = config_.heartbeat_period_ms;
      h.peer_stall_window_ms = config_.peer_stall_window_ms;
      h.delta_transfers = delta_ ? 1 : 0;
      h.p2p = 0;  // exec daemons have no route to each other
      h.enable_profiling = config_.runtime.enable_profiling ? 1 : 0;
      h.fault_plan = fault_plan_spec();
      conns_[i]->send(static_cast<uint8_t>(Msg::kHello), encode_hello(h));
      conns_[i]->send(static_cast<uint8_t>(Msg::kSetup), setup);
    }
  }

  for (std::size_t i = 0; i < nworkers; ++i)
    conns_[i]->start_recv(
        [this, i](net::Frame& frame) { on_worker_frame(i, frame); },
        [this, i](const std::string& error) { on_worker_close(i, error); });

  // Handshake: every worker acks (or is declared lost) before first launch.
  {
    std::unique_lock<std::mutex> lk(fence_mu_);
    fence_cv_.wait(lk, [&] {
      return hello_acks_ + closed_count_locked() >= nworkers;
    });
    for (std::size_t i = 0; i < nworkers; ++i)
      IDXL_REQUIRE(!worker_closed_[i], "worker rank " + std::to_string(i + 1) +
                                           " lost during handshake: " +
                                           peer_errors_[i]);
  }

  std::vector<net::Connection*> peers;
  for (auto& c : conns_) peers.push_back(c.get());
  monitor_ = std::make_unique<net::PeerMonitor>(
      std::move(peers), static_cast<uint8_t>(Msg::kPing),
      config_.heartbeat_period_ms, config_.peer_stall_window_ms,
      &local_->metrics(), nullptr, &net::ClockTable::make_ping);
}

std::size_t DistributedRuntime::closed_count_locked() const {
  std::size_t n = 0;
  for (const bool c : worker_closed_)
    if (c) ++n;
  return n;
}

void DistributedRuntime::broadcast(Msg type, const std::vector<std::byte>& payload) {
  for (auto& c : conns_) {
    try {
      c->send(static_cast<uint8_t>(type), payload);
    } catch (const std::exception&) {
      // Dead peer; fence() reports the loss.
    }
  }
}

void DistributedRuntime::send_task_done(const TaskDone& done) {
  broadcast(Msg::kTaskDone, encode_task_done(done));
}

// --- delta data plane (driver side) ----------------------------------------

void DistributedRuntime::issue_transfer(const Transfer& t, uint32_t dest) {
  Route r;
  r.src = t.src;
  r.dest = dest;
  r.producer = t.producer;
  r.field = t.field;
  r.version = t.version;
  r.rect = t.rect;
  // The launch id the replicated transfer will be assigned — identical on
  // every rank, so receivers assert their streams stayed aligned.
  r.launch = local_->peek_next_launch_id();
  // Directive first, on every connection, then the identical local issue:
  // all ranks observe the transfer at the same place in the launch stream.
  broadcast(Msg::kRoute, encode_route(r));
  local_->execute(make_xfer_launcher(xfer_task_, r, config_.ranks));
}

void DistributedRuntime::plan_point_task(const Domain& domain, const Point& p,
                                         const std::vector<RegionArg>& args) {
  const uint32_t owner = owner_of(domain, p, config_.ranks);
  // Reads first: every transfer the consumer depends on must enter the
  // stream (kRoute + replicated issue) before the consumer itself.
  std::vector<Transfer> transfers;
  for (const RegionArg& ra : args) {
    if (ra.privilege == Privilege::kWrite) continue;  // no read half
    const RegionInfo& info = forest_->region(ra.region);
    const Rect bounds = forest_->region_domain(ra.region).bounds();
    for (FieldId f : ra.fields) {
      transfers.clear();
      vmap_->plan_read(info.root, f, bounds, owner, transfers);
      for (const Transfer& t : transfers) issue_transfer(t, owner);
    }
  }
  // Writes. A sparse write footprint makes the owner broadcast the whole
  // task outcome (needs_full_outcome) — mirror that here, or the map would
  // claim data that never shipped.
  bool full = false;
  for (const RegionArg& ra : args)
    if (privilege_writes(ra.privilege) &&
        !forest_->region_domain(ra.region).dense())
      full = true;
  for (const RegionArg& ra : args) {
    if (!privilege_writes(ra.privilege)) continue;
    const RegionInfo& info = forest_->region(ra.region);
    const Domain& dom = forest_->region_domain(ra.region);
    for (FieldId f : ra.fields) {
      if (!full) {
        vmap_->note_write(info.root, f, dom.bounds(), owner, ra.region);
      } else if (dom.dense()) {
        vmap_->note_write_everywhere(info.root, f, dom.bounds(), owner,
                                     ra.region);
      } else {
        // A sparse footprint's bounding box would erase records of newer
        // data the task never touched — record the exact points instead.
        dom.for_each([&](const Point& q) {
          vmap_->note_write_everywhere(info.root, f, Rect(q, q), owner,
                                       ra.region);
        });
      }
    }
  }
}

void DistributedRuntime::plan_index_launch(const IndexLauncher& launcher) {
  // Planning runs before the launch is broadcast, so any subregion the plan
  // is first to touch gets its RegionId here, on the driver only. Force the
  // same argument-major table order Runtime::execute_index uses, or the
  // lazily-assigned ids diverge from the workers' and the RegionIds shipped
  // in kRoute directives resolve to the wrong subregion remotely.
  for (const ProjectedArg& pa : launcher.args)
    forest_->subregion_table(pa.parent, pa.partition);
  launcher.domain.for_each([&](const Point& p) {
    std::vector<RegionArg> args;
    args.reserve(launcher.args.size());
    for (const ProjectedArg& pa : launcher.args)
      args.push_back(RegionArg{
          forest_->subregion(pa.parent, pa.partition, pa.functor(p)),
          pa.fields, pa.privilege, pa.redop});
    plan_point_task(launcher.domain, p, args);
  });
}

void DistributedRuntime::send_xfer_data(uint64_t seq, uint64_t launch,
                                        TaskContext& ctx) {
  const XferArgs xa = ctx.arg<XferArgs>();
  IDXL_REQUIRE(xa.dest >= 1 && xa.dest <= conns_.size(),
               "driver transfer task routed to an invalid destination");
  RegionData rd;
  rd.seq = seq;
  rd.dest = xa.dest;
  rd.sent_ns = steady_now_ns();
  rd.ctx = obs::TraceContext{launch, seq, 0};
  RegionPatch patch;
  patch.arg = 0;
  patch.field = xa.field;
  patch.rect = xa.rect;
  ctx.region(0).copy_out_rect(xa.field, xa.rect, patch.bytes);
  const uint64_t nbytes = patch.bytes.size();
  rd.patches.push_back(std::move(patch));
  try {
    conns_[xa.dest - 1]->send(static_cast<uint8_t>(Msg::kRegionData),
                              encode_region_data(rd));
    net_.bytes_relay.fetch_add(nbytes, std::memory_order_relaxed);
    net_.transfers.fetch_add(1, std::memory_order_relaxed);
    m_xfer_size_.observe(nbytes);
  } catch (const std::exception&) {
    // Dead peer; fence() reports the loss.
  }
  // Slim completion for every rank except the destination, whose copy of
  // this outcome is the kRegionData payload above (FIFO on its connection).
  TaskDone td;
  td.seq = seq;
  td.data_dest = xa.dest;
  td.ctx = obs::TraceContext{launch, seq, 0};
  td.outcome.ret = ctx.return_value;
  td.outcome.has_data = false;
  const std::vector<std::byte> payload = encode_task_done(td);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (i + 1 == xa.dest) continue;
    try {
      conns_[i]->send(static_cast<uint8_t>(Msg::kTaskDone), payload);
    } catch (const std::exception&) {
    }
  }
}

void DistributedRuntime::on_worker_frame(std::size_t worker, net::Frame& frame) {
  switch (static_cast<Msg>(frame.type)) {
    case Msg::kHelloAck: {
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        ++hello_acks_;
      }
      fence_cv_.notify_all();
      break;
    }
    case Msg::kTaskDone: {
      // Star topology: relay the owner's outcome to the other workers
      // *before* completing locally, so on every per-connection FIFO all
      // outcomes a fence depends on precede the fence frame itself. The
      // rank named by data_dest is excluded — its copy of the outcome is a
      // kRegionData payload travelling a direct link or the relay below.
      TaskDone td = decode_task_done(frame.payload);
      const std::size_t skip =
          (td.data_dest != TaskDone::kNoDest && td.data_dest != 0)
              ? static_cast<std::size_t>(td.data_dest - 1)
              : SIZE_MAX;
      std::size_t relays = 0;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (i == worker || i == skip) continue;
        try {
          conns_[i]->send(frame.type, frame.payload);
          ++relays;
        } catch (const std::exception&) {
        }
      }
      if (!td.outcome.region_bytes.empty())
        net_.bytes_hub.fetch_add(td.outcome.region_bytes.size() * relays,
                                 std::memory_order_relaxed);
      // data_dest == 0: the driver itself was the destination; adopt the
      // patches stashed by the kRegionData frame that preceded this one on
      // the same FIFO. Completing here — not at kRegionData time — keeps
      // the driver's wait_all() blocked until this handler ran, so the
      // relays above are on every connection before any fence frame. (If
      // wait_all() could pass on the kRegionData alone, a fence could
      // overtake this relay and strand the other workers' externals behind
      // their own fence handler.)
      if (td.data_dest == 0) {
        std::lock_guard<std::mutex> lock(xdata_mu_);
        auto it = driver_patches_.find(td.seq);
        IDXL_REQUIRE(it != driver_patches_.end(),
                     "transfer outcome arrived without its data payload");
        td.outcome.patches = std::move(it->second);
        driver_patches_.erase(it);
      }
      const uint64_t span_start = local_->profiler().now_ns();
      const uint64_t seq = td.seq;
      const bool adopted = td.data_dest == 0;
      const obs::TraceContext ctx = td.ctx;
      local_->complete_external(seq, std::move(td.outcome));
      record_apply_span(adopted ? name_xfer_apply_ : name_done_apply_, seq,
                        ctx, span_start);
      break;
    }
    case Msg::kRegionData: {
      RegionData rd = decode_region_data(frame.payload);
      if (rd.dest == 0) {
        // Terminates here — but the node completes at the sender's slim
        // kTaskDone, the next frame on this FIFO (see there for why). Only
        // stash the payload.
        const uint64_t now = steady_now_ns();
        if (rd.sent_ns != 0 && now >= rd.sent_ns)
          m_xfer_latency_.observe(now - rd.sent_ns);
        std::lock_guard<std::mutex> lock(xdata_mu_);
        driver_patches_[rd.seq] = std::move(rd.patches);
        break;
      }
      // Relay leg of the fallback ladder: forward verbatim to the
      // destination. The second wire hop is counted — route labels measure
      // bytes on wires, not logical transfers.
      IDXL_REQUIRE(rd.dest <= conns_.size(),
                   "region-data frame routed to an invalid destination");
      uint64_t nbytes = 0;
      for (const RegionPatch& p : rd.patches) nbytes += p.bytes.size();
      try {
        conns_[rd.dest - 1]->send(frame.type, frame.payload);
        net_.bytes_relay.fetch_add(nbytes, std::memory_order_relaxed);
      } catch (const std::exception&) {
      }
      break;
    }
    case Msg::kFenceAck: {
      FenceAck ack = decode_fence_ack(frame.payload);
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        fence_acks_[ack.fence].emplace(worker, std::move(ack));
      }
      fence_cv_.notify_all();
      break;
    }
    case Msg::kTelemetry: {
      Telemetry t = decode_telemetry(frame.payload);
      const bool stall =
          t.flavor == static_cast<uint8_t>(TelemetryFlavor::kStallPush);
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        (stall ? stall_push_ : telemetry_)[t.rank] = std::move(t);
      }
      if (!stall) fence_cv_.notify_all();
      break;
    }
    case Msg::kBye:
      break;  // the recv loop ends right after; on_worker_close records it
    case Msg::kPing: {
      // Heartbeat carrying a clock probe: answer pings with a stamped pong,
      // fold pongs into this worker's offset estimate.
      const std::vector<std::byte> reply =
          clocks_->on_probe(static_cast<uint32_t>(worker + 1), frame.payload);
      if (!reply.empty()) {
        try {
          conns_[worker]->send(static_cast<uint8_t>(Msg::kPing), reply);
        } catch (const std::exception&) {
          // Dead peer; fence() reports the loss.
        }
      }
      break;
    }
    default:
      // Throwing here lands in recv_loop's catch: the connection is
      // reported closed with this message.
      IDXL_REQUIRE(false, "driver received unexpected frame type " +
                              std::to_string(frame.type) + " (" +
                              msg_name(frame.type) + ")");
  }
}

void DistributedRuntime::record_apply_span(uint32_t name, uint64_t seq,
                                           const obs::TraceContext& ctx,
                                           uint64_t start_ns) {
  Profiler& prof = local_->profiler();
  if (!prof.enabled() || !ctx.valid()) return;
  ProfileEvent ev;
  ev.name = name;
  ev.cat = ProfCategory::kExchange;
  ev.start_ns = start_ns;
  ev.dur_ns = prof.now_ns() - start_ns;
  ev.seq = seq;
  ev.launch = ctx.launch;
  ev.parent = ctx.span;
  ev.origin = ctx.origin;
  prof.record(ev);
}

void DistributedRuntime::on_worker_close(std::size_t worker,
                                         const std::string& error) {
  bool teardown;
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    worker_closed_[worker] = true;
    if (!error.empty() && peer_errors_[worker].empty())
      peer_errors_[worker] = error;
    teardown = tearing_down_;
  }
  if (!teardown) {
    // Outcomes owned by this worker will never arrive; resolve its
    // externals as cancelled so wait_all()/teardown cannot hang. (Externals
    // owned by still-live workers are cancelled too — a lost rank ends the
    // run, matching the fence error below.)
    local_->abandon_externals("worker rank " + std::to_string(worker + 1) +
                              " lost: " +
                              (error.empty() ? "connection closed" : error));
  }
  fence_cv_.notify_all();
}

void DistributedRuntime::publish_net_metrics_locked() {
  DataPlaneStats t;
  t.bytes_hub = net_.bytes_hub.load(std::memory_order_relaxed);
  t.bytes_relay = net_.bytes_relay.load(std::memory_order_relaxed);
  t.bytes_p2p = net_.bytes_p2p.load(std::memory_order_relaxed);
  t.transfers = net_.transfers.load(std::memory_order_relaxed);
  for (const DataPlaneCounters& w : worker_net_) {
    t.bytes_hub += w.bytes_hub;
    t.bytes_relay += w.bytes_relay;
    t.bytes_p2p += w.bytes_p2p;
    t.transfers += w.transfers;
  }
  m_bytes_hub_.inc(t.bytes_hub - metrics_emitted_.bytes_hub);
  m_bytes_relay_.inc(t.bytes_relay - metrics_emitted_.bytes_relay);
  m_bytes_p2p_.inc(t.bytes_p2p - metrics_emitted_.bytes_p2p);
  m_transfers_.inc(t.transfers - metrics_emitted_.transfers);
  metrics_emitted_ = t;
}

bool DistributedRuntime::fence(bool nothrow) {
  local_->wait_all();
  const std::size_t nworkers = conns_.size();
  if (nworkers == 0) return true;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    id = ++next_fence_;
  }
  broadcast(Msg::kFence, encode_fence(id));
  std::map<std::size_t, FenceAck> acks;
  std::string problem;
  {
    std::unique_lock<std::mutex> lk(fence_mu_);
    fence_cv_.wait(lk, [&] {
      const auto it = fence_acks_.find(id);
      for (std::size_t i = 0; i < nworkers; ++i) {
        const bool acked = it != fence_acks_.end() && it->second.count(i) != 0;
        if (!acked && !worker_closed_[i]) return false;
      }
      return true;
    });
    acks = std::move(fence_acks_[id]);
    fence_acks_.erase(id);
    // Fold each worker's cumulative data-plane counters in, then publish
    // run-wide totals to the idxl_net_* series. The piggybacked metrics
    // snapshot refreshes the per-rank cluster view.
    for (const auto& [worker, ack] : acks) {
      worker_net_[worker] = ack.net;
      if (!ack.metrics.empty())
        worker_metrics_[worker] = deserialize_metrics_snapshot(ack.metrics);
    }
    publish_net_metrics_locked();
    for (std::size_t i = 0; i < nworkers; ++i) {
      if (acks.count(i) != 0) continue;
      problem = "worker rank " + std::to_string(i + 1) +
                " lost before fence " + std::to_string(id) + ": " +
                (peer_errors_[i].empty() ? "connection closed"
                                         : peer_errors_[i]);
      break;
    }
  }
  if (problem.empty() && config_.verify_reports) {
    const FaultReport mine = local_->fault_report();
    for (const auto& [worker, ack] : acks) {
      if (reports_equal(mine, ack.report)) continue;
      problem = "fault-report divergence at fence " + std::to_string(id) +
                ": rank " + std::to_string(worker + 1) + " disagrees with "
                "rank 0 (control replication bug — reports must be "
                "identical on every rank)";
      break;
    }
  }
  if (problem.empty()) return true;
  if (nothrow) return false;
  throw RuntimeError(problem);
}

LaunchResult DistributedRuntime::execute(const TaskLauncher& launcher) {
  ensure_started();
  if (conns_.empty()) return local_->execute(launcher);
  // Serialize first: an unserializable launcher must throw before any
  // rank sees a frame, or the replicated streams diverge.
  (void)serialize_task_launcher(launcher);
  // Plan before the consumer's frame goes out: its kRoute directives must
  // precede it on every connection so all replicated streams agree.
  if (delta_ && !launcher.internal)
    plan_point_task(launcher.launch_domain, launcher.point, launcher.args);
  // Stamp the trace context after planning — the plan's transfer issues
  // consume launch ids, so only now is the next id this descriptor's.
  TaskLauncher annotated = launcher;
  annotated.trace_ctx = obs::TraceContext{local_->peek_next_launch_id(),
                                          obs::TraceContext::kNone, 0};
  broadcast(Msg::kSingle, serialize_task_launcher(annotated));
  return local_->execute(annotated);
}

LaunchResult DistributedRuntime::execute_index(const IndexLauncher& launcher) {
  ensure_started();
  if (conns_.empty()) return local_->execute_index(launcher);
  // Validate serializability before any rank (rank 0 included) observes the
  // launch: a throw here must leave every replicated stream untouched.
  (void)serialize_launcher(launcher);
  if (delta_) plan_index_launch(launcher);
  // Issue on the driver first — rank 0's analysis populates the certificate
  // cache with this launch's pair verdicts — then ship the cache as a bundle
  // on the descriptor, so import-only workers validate the certificates
  // instead of re-running the analysis. Issue order is preserved: frames go
  // out on this thread in program order, and issuance is asynchronous, so
  // no task outcome can precede its launch frame.
  LaunchResult result = local_->execute_index(launcher);
  IndexLauncher annotated = launcher;
  annotated.analysis_bundle = local_->export_interference_bundle();
  // Replicas assert they assign the same launch id rank 0 just did.
  annotated.trace_ctx =
      obs::TraceContext{result.launch_id, obs::TraceContext::kNone, 0};
  broadcast(Msg::kLaunch, serialize_launcher(annotated));
  return result;
}

void DistributedRuntime::wait_all() {
  if (!started_) return;
  fence(/*nothrow=*/false);
}

void DistributedRuntime::sync_for_read() {
  if (started_ && delta_ && local_ != nullptr && !conns_.empty()) {
    // Recall: route every span some worker produced back to rank 0 so a
    // direct read of the forest sees current data. Spans already current
    // here ship nothing.
    for (uint32_t i = 0; i < forest_->region_count(); ++i) {
      const RegionId r{i};
      const RegionInfo& info = forest_->region(r);
      if (info.root != info.handle) continue;
      const Rect bounds = forest_->storage_bounds(r);
      std::vector<Transfer> transfers;
      for (const FieldInfo& fi : forest_->fields(info.fspace)) {
        transfers.clear();
        vmap_->plan_read(r, fi.id, bounds, /*dest=*/0, transfers);
        for (const Transfer& t : transfers) issue_transfer(t, /*dest=*/0);
      }
    }
  }
  wait_all();
}

DataPlaneStats DistributedRuntime::data_plane_stats() {
  // A fence pulls every worker's current counters in via its ack.
  if (started_ && local_ != nullptr && !conns_.empty()) fence(/*nothrow=*/true);
  std::lock_guard<std::mutex> lock(fence_mu_);
  DataPlaneStats t;
  t.bytes_hub = net_.bytes_hub.load(std::memory_order_relaxed);
  t.bytes_relay = net_.bytes_relay.load(std::memory_order_relaxed);
  t.bytes_p2p = net_.bytes_p2p.load(std::memory_order_relaxed);
  t.transfers = net_.transfers.load(std::memory_order_relaxed);
  for (const DataPlaneCounters& w : worker_net_) {
    t.bytes_hub += w.bytes_hub;
    t.bytes_relay += w.bytes_relay;
    t.bytes_p2p += w.bytes_p2p;
    t.transfers += w.transfers;
  }
  return t;
}

obs::MetricsSnapshot DistributedRuntime::cluster_metrics() {
  ensure_started();
  // A fence refreshes every worker's snapshot via its ack.
  if (local_ != nullptr && !conns_.empty()) fence(/*nothrow=*/true);
  std::vector<std::pair<uint32_t, obs::MetricsSnapshot>> ranks;
  ranks.emplace_back(0, local_->metrics().snapshot());
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    for (std::size_t i = 0; i < worker_metrics_.size(); ++i)
      if (!worker_metrics_[i].families.empty())
        ranks.emplace_back(static_cast<uint32_t>(i + 1), worker_metrics_[i]);
  }
  return obs::aggregate_cluster(ranks);
}

std::string DistributedRuntime::cluster_prometheus() {
  return cluster_metrics().prometheus_text();
}

std::string DistributedRuntime::cluster_metrics_json() {
  return cluster_metrics().json();
}

obs::ClusterTrace DistributedRuntime::collect_cluster_trace() {
  ensure_started();
  obs::ClusterTrace trace;
  if (!conns_.empty()) {
    // Quiesce first: workers' recv threads are their issuing threads, and a
    // telemetry read of the span buffers is only safe with idle pools.
    fence(/*nothrow=*/true);
    {
      std::lock_guard<std::mutex> lock(fence_mu_);
      telemetry_.clear();
    }
    broadcast(Msg::kTelemetryReq, {});
    std::unique_lock<std::mutex> lk(fence_mu_);
    fence_cv_.wait_for(lk, std::chrono::seconds(10), [&] {
      return telemetry_.size() + closed_count_locked() >= conns_.size();
    });
  }
  obs::RankTrace r0;
  r0.rank = 0;
  const Profiler& prof = local_->profiler();
  r0.epoch_ns = prof.epoch_ns();
  if (prof.enabled()) {
    r0.names = prof.names();
    r0.spans = prof.events();
    r0.samples = prof.task_samples();
  }
  r0.recent = local_->flight_recorder().tail(256);
  trace.ranks.push_back(std::move(r0));
  std::lock_guard<std::mutex> lock(fence_mu_);
  for (auto& [rank, t] : telemetry_) {
    obs::RankTrace rt;
    rt.rank = rank;
    const net::ClockEstimate est = clocks_->estimate(rank);
    rt.clock_offset_ns = est.valid ? est.offset_ns : 0;
    rt.rtt_ns = est.valid ? est.rtt_ns : 0;
    rt.epoch_ns = t.epoch_ns;
    rt.names = std::move(t.names);
    rt.spans = std::move(t.spans);
    rt.samples = std::move(t.samples);
    rt.recent = std::move(t.recent);
    trace.ranks.push_back(std::move(rt));
  }
  telemetry_.clear();
  return trace;
}

void DistributedRuntime::write_merged_trace(const std::string& path) {
  collect_cluster_trace().write_chrome_trace(path);
}

std::string DistributedRuntime::distributed_stall_dump() {
  std::vector<obs::RankStall> ranks;
  obs::RankStall mine;
  mine.rank = 0;
  mine.report = local_->stall_report();
  for (const auto& [seq, label] : local_->pending_externals())
    mine.pending_externals.push_back(seq);
  ranks.push_back(std::move(mine));
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    for (const auto& [rank, t] : stall_push_) {
      obs::RankStall rs;
      rs.rank = rank;
      rs.report.completed = t.completed;
      rs.report.pending = t.pending;
      rs.report.window_ms = t.window_ms;
      rs.report.blocked = t.blocked;
      rs.report.recent = t.recent;
      rs.report.metrics = t.metrics;
      rs.pending_externals = t.pending_externals;
      ranks.push_back(std::move(rs));
    }
  }
  return obs::merged_stall_dump(ranks);
}

FaultReport DistributedRuntime::fault_report() const {
  return local_ != nullptr ? local_->fault_report() : FaultReport{};
}

RuntimeStats DistributedRuntime::stats() const {
  return local_ != nullptr ? local_->stats() : RuntimeStats{};
}

obs::MetricsRegistry& DistributedRuntime::metrics() {
  ensure_started();
  return local_->metrics();
}

void DistributedRuntime::fill_bytes_region(RegionId r, FieldId f,
                                           const void* pattern,
                                           std::size_t size) {
  DistFillArgs args{};
  IDXL_REQUIRE(size > 0 && size <= sizeof(args.pattern),
               "fill pattern too large");
  IDXL_REQUIRE(forest_->field(forest_->region(r).fspace, f).size == size,
               "fill value type does not match the field size");
  args.field = f;
  args.size = size;
  std::memcpy(args.pattern, pattern, size);
  TaskLauncher launcher;
  launcher.task = fill_task_;
  launcher.scalar_args = ArgBuffer::of(args);
  launcher.args = {{r, {f}, Privilege::kWrite, ReductionOp::kNone}};
  execute(launcher);
}

void DistributedRuntime::shutdown() {
  if (!started_ || local_ == nullptr) {
    local_.reset();
    return;
  }
  if (!trace_path_.empty()) {
    // Workers are quiescent after the fence inside collect_cluster_trace()
    // and still listening — the last moment every rank's spans are whole.
    try {
      write_merged_trace(trace_path_);
    } catch (const std::exception&) {
      // Tracing must never turn a clean shutdown into a failure.
    }
  }
  if (!conns_.empty()) {
    fence(/*nothrow=*/true);
    if (monitor_ != nullptr) monitor_->stop();
    {
      std::lock_guard<std::mutex> lock(fence_mu_);
      tearing_down_ = true;
    }
    broadcast(Msg::kShutdown, {});
    {
      std::unique_lock<std::mutex> lk(fence_mu_);
      fence_cv_.wait_for(lk, std::chrono::seconds(30), [&] {
        return closed_count_locked() >= conns_.size();
      });
    }
    for (auto& c : conns_) c->close();
    conns_.clear();
  }
  for (const pid_t pid : children_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  children_.clear();
  local_.reset();
  started_ = false;
}

}  // namespace idxl::dist
